// Package tmdb is a query processor for a complex object model implementing
// the nested-query optimization techniques of Steenhagen, Apers & Blanken,
// "Optimization of Nested Queries in a Complex Object Model" (EDBT 1994).
//
// It provides:
//
//   - a TM-style data model: arbitrarily nested tuples, duplicate-free sets,
//     lists, and basic values, with classes, extensions, and sorts;
//   - the orthogonal SELECT-FROM-WHERE query language of the paper, with
//     quantifiers, aggregates, set comparisons, WITH, and UNNEST;
//   - the paper's unnesting optimizer: predicates between query blocks are
//     classified (Table 2 / Theorem 1); flattenable queries compile to
//     semijoins and antijoins, the rest to the paper's nest join operator,
//     which groups while joining and preserves dangling tuples without NULLs;
//   - baselines: naive nested-loop evaluation, Kim's group-then-join
//     transformation (exhibiting the generalized COUNT bug), and the
//     outerjoin + ν* repair;
//   - physical operators: nested-loop / hash / sort-merge implementations of
//     joins and nest joins, hash semijoins/antijoins, outerjoins, ν, ν*, μ;
//   - a unified cost-driven optimizer: with Options left zero the engine
//     enumerates the correct strategies × logical alternatives (each
//     translation as produced, its §6 rewrite, and bushy/left-deep join
//     orders for multi-FROM blocks) × join implementations × parallelism
//     degrees, costs them against per-table statistics (see Analyze), and
//     executes the cheapest; Engine.Explain renders the chosen physical plan
//     with per-operator estimated rows and cost plus the full candidate
//     table. Options.Rewrite is a compatibility override that pins the
//     §6-rewritten alternative (the optimizer weighs rewrites regardless);
//     Options.PinAlt pins any alternative by its candidate-table label;
//   - histogram/sketch statistics: tables above a threshold are summarized
//     by equi-depth histograms and KMV distinct-count sketches (selectivity,
//     NDV, and dangling fractions become bounded-error estimates), tiny
//     tables keep exact figures;
//   - morsel-driven parallel execution: hash joins and hash nest joins run
//     as batch-sized morsels on a work-stealing scheduler sized by
//     Options.Parallelism (under the auto strategy the degree is sized from
//     table statistics, capped at GOMAXPROCS, and the cost model decides
//     whether parallelism pays; fixed strategies opt in explicitly). Idle
//     workers steal morsels from skewed partitions, Options.NoSteal pins
//     morsels to their home worker as an ablation knob, scheduler counters
//     (morsels dispatched/stolen, busy time) surface on Result.Sched, and
//     results are bit-identical to serial execution at any degree and any
//     steal schedule;
//   - vectorized batch execution: the hot path (scans, filters, projections,
//     hash joins, and the parallel exchange) moves rows in batches of up to
//     Options.BatchSize with pre-encoded join keys, costed against
//     row-at-a-time execution as a physical dimension (0 lets the cost model
//     decide, n > 0 pins batches of n, negative pins rows); results are
//     byte-identical to the row engine and EXPLAIN annotates batched
//     operators with [batch=n];
//   - mutable storage with per-table invalidation: tables are bulk-loaded,
//     sealed, and then mutated in place (Engine.Insert / Engine.Delete /
//     Engine.InsertValue / Engine.DeleteValue, or the storage-level
//     InsertSealed / Delete / DeleteWhere / Unseal→reseal cycle). Every
//     mutation advances the table's epoch; statistics recollect lazily for
//     exactly the mutated table, and cached plans carry the epoch vector of
//     the tables they read, so a mutation invalidates the plans and
//     statistics of that table — and only that table;
//   - persistent secondary indexes: Engine.CreateIndex registers a hash
//     index on an ordered attribute list — one attribute for the classic
//     equi-key index, several for a composite index whose every prefix is
//     probeable (rebuilt on Seal, maintained incrementally by mutations).
//     The optimizer costs an idxjoin family (IndexJoins) that probes the
//     index per outer row instead of draining and hashing the inner table
//     (composite indexes serve multi-key equi-joins with no residual), and
//     an idxscan access path (Options.Access) that answers single-table
//     equality selections σ[x.a = c](X) from the matching bucket without
//     scanning — probe costs come from per-bucket depth statistics, EXPLAIN
//     lists both candidate kinds, and the cost-based path picks them when
//     statistics favor it. Engine.DropIndex removes an index; compiled
//     plans pin a copy-on-write index snapshot at plan time, so dropping
//     an index under concurrent queries never fails them — affected
//     cached plans are swept and recompile against the shrunken registry;
//   - a bounded per-engine plan cache memoizing (bound query, options,
//     table epochs) → physical plan with LRU eviction (default capacity
//     256, see Engine.SetPlanCacheCapacity), so repeated queries skip
//     translation and candidate enumeration; mutations invalidate per
//     table (epoch mismatch + sweep), Engine.PlanCacheStats reports hits,
//     misses, evictions, and invalidations;
//   - end-to-end cancellation and resource governance: context-observing
//     APIs (Engine.QueryContext, Prepared.QueryContext), per-query
//     wall-clock deadlines and row / build-byte budgets (Options.Limits)
//     honored cooperatively by every operator including parallel workers, a
//     typed abort taxonomy (ErrCanceled, ErrDeadlineExceeded,
//     ErrBudgetExceeded, ErrTableDropped) with partial-work accounting
//     (AbortError), panic isolation (PanicError), and a deterministic
//     seed-addressable fault-injection harness (internal/faultinject)
//     backing a chaos conformance suite.
//
// Quickstart:
//
//	cat, db := tmdb.CompanyExample(4, 20, 1)
//	eng := tmdb.New(cat, db)
//	res, err := eng.Query(`SELECT d.name FROM DEPT d`, tmdb.Options{})
//	fmt.Println(res.Value)
//
// See examples/ for complete programs and EXPERIMENTS.md for the paper
// reproduction.
package tmdb

import (
	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/exec"
	"tmdb/internal/planner"
	"tmdb/internal/schema"
	"tmdb/internal/server"
	"tmdb/internal/stats"
	"tmdb/internal/storage"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// Engine executes TM queries. Construct with New.
type Engine = engine.Engine

// Options configure one query execution.
type Options = engine.Options

// Result is a query outcome: value, plan, timings.
type Result = engine.Result

// Strategy selects how nested queries are processed.
type Strategy = core.Strategy

// Strategies.
const (
	// Auto (the zero value, so an unset Options picks it) lets the
	// cost-based planner choose among the correct strategies × join
	// implementations using per-table statistics. Kim is never
	// auto-selected: it loses dangling tuples.
	Auto = core.StrategyAuto
	// Naive evaluates nested queries by tuple-at-a-time nested loops.
	Naive = core.StrategyNaive
	// NestJoin is the paper's strategy: semijoin/antijoin where Theorem 1
	// permits, nest join otherwise.
	NestJoin = core.StrategyNestJoin
	// Kim is the relational group-then-join baseline; it loses dangling
	// tuples (the COUNT bug) and exists for the paper's experiments.
	Kim = core.StrategyKim
	// OuterJoin is the relational repair: outerjoin followed by the
	// NULL-aware nest ν*.
	OuterJoin = core.StrategyOuterJoin
)

// Logical-alternative labels for Options.PinAlt and Result.Alt. Join-order
// alternatives use the "order:…" labels shown in EXPLAIN's candidate table.
const (
	// AltBase is a strategy's translation as produced.
	AltBase = planner.AltBase
	// AltRewrite is the §6 rewrite fixpoint of a translation.
	AltRewrite = planner.AltRewrite
)

// JoinImpl selects the physical join family.
type JoinImpl = planner.JoinImpl

// Physical join implementations.
const (
	// AutoJoins picks hash joins when an equi-key exists, else nested loops.
	AutoJoins = planner.ImplAuto
	// NestedLoopJoins forces nested-loop implementations.
	NestedLoopJoins = planner.ImplNestedLoop
	// HashJoins forces hash implementations (errors without equi-keys).
	HashJoins = planner.ImplHash
	// MergeJoins uses sort-merge for nest joins (hash elsewhere).
	MergeJoins = planner.ImplMerge
	// IndexJoins probes persistent per-table hash indexes (see
	// Engine.CreateIndex) where one covers a prefix of the join keys,
	// falling back to the auto mapping elsewhere. Shown as "idxjoin" in
	// EXPLAIN.
	IndexJoins = planner.ImplIndex
)

// AccessPath selects how leaf selections read their tables.
type AccessPath = planner.AccessPath

// Access paths for Options.Access and Result.Access.
const (
	// AutoAccess (the zero value) lets the cost-based planner weigh index
	// scans against full scans wherever a selection's equality conjuncts
	// cover a live index prefix.
	AutoAccess = planner.AccessAuto
	// ScanAccess pins full scans (the pre-index behavior).
	ScanAccess = planner.AccessScan
	// IndexAccess pins index scans where a live index matches, with
	// per-selection fallback to scans. Shown as "idxscan" in EXPLAIN.
	IndexAccess = planner.AccessIndex
)

// Catalog is a TM schema: classes with extensions and sorts.
type Catalog = schema.Catalog

// DB is an in-memory complex-object store addressed by extension name.
type DB = storage.DB

// Table is one extension's stored tuples.
type Table = storage.Table

// Value is a TM complex-object value.
type Value = value.Value

// Type is a TM type.
type Type = types.Type

// CacheStats reports the engine's plan-cache entry and hit/miss counts
// (see Engine.PlanCacheStats).
type CacheStats = engine.CacheStats

// SchedStats are one query's morsel-scheduler counters, surfaced on
// Result.Sched: morsels dispatched and stolen, and per-worker busy time.
// Stolen > 0 says work stealing actually rebalanced a skewed partition;
// Options.NoSteal pins morsels to their home worker (an ablation knob —
// results are identical either way, only the counters move).
type SchedStats = exec.SchedStats

// Prepared is a parsed-and-bound statement that executes without re-parsing
// and shares the engine's plan cache (see Engine.Prepare). Safe for
// concurrent use.
type Prepared = engine.Prepared

// Limits are per-query execution bounds — wall-clock timeout, result-row
// budget, and hash/sort build-byte budget — set on Options.Limits and
// enforced cooperatively by every operator. Cancellation and deadlines also
// flow in through Engine.QueryContext / Prepared.QueryContext. The zero
// value is unlimited.
type Limits = engine.Limits

// Governance error taxonomy. Aborted queries surface typed errors matchable
// with errors.Is/errors.As regardless of how deep in the plan they stopped:
//
//	ErrCanceled         — the caller's context was canceled mid-execution
//	ErrDeadlineExceeded — Limits.Timeout (or the context deadline) expired
//	ErrBudgetExceeded   — a Limits budget tripped (*BudgetError has which)
//	ErrTableDropped     — a referenced table was dropped (*TableDroppedError)
var (
	ErrCanceled         = exec.ErrCanceled
	ErrDeadlineExceeded = exec.ErrDeadlineExceeded
	ErrBudgetExceeded   = exec.ErrBudgetExceeded
	ErrTableDropped     = engine.ErrTableDropped
)

// BudgetError reports which resource budget tripped, its limit, and usage.
type BudgetError = exec.BudgetError

// PanicError is a panic recovered during execution, isolated to the failing
// query (the engine stays up); Val and Stack carry the recovery context.
type PanicError = engine.PanicError

// AbortError wraps a governance abort with the partial work the query had
// already performed (rows produced, build bytes materialized) — all
// discarded. Unwrap exposes the cause.
type AbortError = engine.AbortError

// TableDroppedError reports execution against a dropped table, typically a
// prepared statement outliving Engine.DropTable.
type TableDroppedError = engine.TableDroppedError

// Server serves one engine over an HTTP/JSON API with sessions, prepared
// statements, admission control, and graceful shutdown (see cmd/tmserver).
type Server = server.Server

// ServerConfig parameterizes a Server.
type ServerConfig = server.Config

// WireOptions is the JSON form of Options used by the server API.
type WireOptions = server.WireOptions

// Client is a typed client for the server's HTTP/JSON API: queries,
// prepared statements, EXPLAIN, stats, and the mutation endpoints
// (Insert, Delete, CreateIndex, DropIndex).
type Client = server.Client

// RetryPolicy bounds a Client's automatic retry of transient server
// rejections (queue_timeout, draining) on idempotent requests. Mutation
// requests are never retried automatically: a timed-out insert may have
// applied, so re-sending is the caller's decision.
type RetryPolicy = server.RetryPolicy

// NewServer returns an HTTP query server over eng.
func NewServer(eng *Engine, cfg ServerConfig) *Server { return server.New(eng, cfg) }

// NewServerClient returns a client for the server at base
// (e.g. "http://127.0.0.1:8080").
func NewServerClient(base string) *Client { return server.NewClient(base, nil) }

// Stats is a per-table statistics catalog (cardinality, distinct counts,
// set-attribute fan-out, dangling fractions) backing the cost-based planner.
type Stats = stats.Catalog

// TableStats summarizes one extension table for the cost model.
type TableStats = stats.TableStats

// Analyze scans every table of db and returns the statistics catalog — the
// ANALYZE entry point. Engines collect the same statistics lazily; use
// Engine.Analyze to refresh an engine's cached catalog.
func Analyze(db *DB) *Stats { return stats.Analyze(db) }

// New returns an engine over the given schema and data.
func New(cat *Catalog, db *DB) *Engine { return engine.New(cat, db) }

// NewCatalog returns an empty schema catalog.
func NewCatalog() *Catalog { return schema.NewCatalog() }

// NewDB returns an empty database.
func NewDB() *DB { return storage.NewDB() }

// CompanySchema returns the paper's §3.2 example schema (classes Employee
// and Department with extensions EMP and DEPT, sort Address).
func CompanySchema() *Catalog { return schema.Company() }

// CompanyExample returns the company schema populated with a deterministic
// synthetic instance of nDept departments and nEmp employees.
func CompanyExample(nDept, nEmp int, seed int64) (*Catalog, *DB) {
	return datagen.Company(nDept, nEmp, seed)
}
