package benchkit

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

func TestTablePrinting(t *testing.T) {
	tab := Table{Title: "demo", Headers: []string{"a", "bee"}}
	tab.Add(1, "x")
	tab.Add(2.5, 10*time.Millisecond)
	tab.Note("hello %d", 7)
	var buf bytes.Buffer
	tab.Print(&buf)
	out := buf.String()
	for _, frag := range []string{"== demo ==", "a", "bee", "2.50", "10.00ms", "note: hello 7"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
}

func TestFormatDuration(t *testing.T) {
	cases := map[time.Duration]string{
		500 * time.Microsecond: "500µs",
		2 * time.Millisecond:   "2.00ms",
		3 * time.Second:        "3.00s",
	}
	for d, want := range cases {
		if got := formatDuration(d); got != want {
			t.Errorf("formatDuration(%v) = %s, want %s", d, got, want)
		}
	}
}

func TestMeasureAndCheck(t *testing.T) {
	cat, db := datagen.Table1()
	eng := engine.New(cat, db)
	r := Measure(eng, "SELECT x FROM X x", core.StrategyNaive, planner.ImplAuto, 2)
	if r.Err != nil || r.Value.Len() != 3 {
		t.Fatalf("Measure: %+v", r)
	}
	if got := CheckAgainst(r.Value, r); got != "ok" {
		t.Errorf("CheckAgainst ok = %s", got)
	}
	other := Run{Value: value.SetOf(value.Int(1))}
	if got := CheckAgainst(r.Value, other); !strings.Contains(got, "WRONG") {
		t.Errorf("CheckAgainst wrong = %s", got)
	}
	bad := Measure(eng, "SELECT", core.StrategyNaive, planner.ImplAuto, 1)
	if bad.Err == nil {
		t.Error("Measure should surface errors")
	}
	if got := CheckAgainst(r.Value, bad); !strings.Contains(got, "ERR") {
		t.Errorf("CheckAgainst err = %s", got)
	}
}

func TestSpeedup(t *testing.T) {
	if got := Speedup(100*time.Millisecond, 10*time.Millisecond); got != "10.0x" {
		t.Errorf("Speedup = %s", got)
	}
	if got := Speedup(time.Second, 0); got != "inf" {
		t.Errorf("Speedup zero = %s", got)
	}
}

// TestAllExperimentsQuick runs the entire reproduction suite in quick mode —
// the same code paths cmd/repro exercises — and asserts no experiment errors
// and that every table mentions its key artifact.
func TestAllExperimentsQuick(t *testing.T) {
	wantFrags := map[string]string{
		"T1":  "dangling tuple (2,2) survives",
		"T2":  "antijoin",
		"Q12": "kept nested",
		"CB":  "the COUNT-bug pattern",
		"SB":  "SUBSETEQ",
		"S8":  "NestJoin",
		"EQ":  "identity holds",
		"B1":  "speedup",
		"B2":  "nest join + σ",
		"B3":  "kim",
		"B4":  "sort-merge",
		"B5":  "blocks",
		"B9":  "vectorized batches",
	}
	for _, exp := range All() {
		var buf bytes.Buffer
		if err := exp.Run(&buf, true); err != nil {
			t.Errorf("experiment %s failed: %v", exp.ID, err)
			continue
		}
		out := buf.String()
		if frag := wantFrags[exp.ID]; frag != "" && !strings.Contains(out, frag) {
			t.Errorf("experiment %s output missing %q:\n%s", exp.ID, frag, out)
		}
		if strings.Contains(out, "WRONG") && exp.ID != "CB" && exp.ID != "SB" && exp.ID != "B3" {
			t.Errorf("experiment %s reports an unexpected WRONG:\n%s", exp.ID, out)
		}
	}
}
