// Package benchkit is the experiment harness behind cmd/repro and the
// repository benchmarks: it runs queries under the four strategies over
// parameterized workloads, measures wall-clock time and machine-independent
// evaluation steps, checks answers against the naive oracle, and prints
// aligned tables in the style of the paper's artifacts.
package benchkit

import (
	"fmt"
	"io"
	"strings"
	"time"

	"tmdb/internal/core"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/schema"
	"tmdb/internal/storage"
	"tmdb/internal/value"
)

// Table is a printable experiment table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
	Notes   []string
}

// Add appends a row; cells are stringified with %v.
func (t *Table) Add(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		case time.Duration:
			row[i] = formatDuration(v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Note appends a footnote line.
func (t *Table) Note(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

func formatDuration(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d.Microseconds())/1000)
	default:
		return fmt.Sprintf("%dµs", d.Microseconds())
	}
}

// Print renders the table with aligned columns.
func (t *Table) Print(w io.Writer) {
	fmt.Fprintf(w, "\n== %s ==\n", t.Title)
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		var sb strings.Builder
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(cells)-1 {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		fmt.Fprintln(w, "  "+sb.String())
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.Rows {
		line(r)
	}
	for _, n := range t.Notes {
		fmt.Fprintln(w, "  note: "+n)
	}
}

// Run is one measured execution.
type Run struct {
	Strategy core.Strategy
	Joins    planner.JoinImpl
	Value    value.Value
	Duration time.Duration
	Steps    int64
	Batch    int // rows per vectorized batch the run executed with (0 = row-at-a-time)
	Err      error
}

// Measure executes the query under the given strategy/impl, repeating reps
// times and keeping the minimum duration (steady-state figure).
func Measure(eng *engine.Engine, q string, s core.Strategy, ji planner.JoinImpl, reps int) Run {
	if reps < 1 {
		reps = 1
	}
	out := Run{Strategy: s, Joins: ji}
	for i := 0; i < reps; i++ {
		res, err := eng.Query(q, engine.Options{Strategy: s, Joins: ji})
		if err != nil {
			out.Err = err
			return out
		}
		if i == 0 || res.Duration < out.Duration {
			out.Duration = res.Duration
			out.Steps = res.EvalSteps
		}
		out.Value = res.Value
	}
	return out
}

// Speedup formats a×/b as a factor string ("12.3x"), guarding zero.
func Speedup(base, other time.Duration) string {
	if other <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(other))
}

// VerifyAgainst returns an error when a run that must preserve nested
// semantics disagrees with the oracle (or failed outright). Experiments use
// it so cmd/repro exits non-zero on real regressions while CheckAgainst
// keeps formatting the intentional mismatches (Kim) for display.
func VerifyAgainst(label string, oracle value.Value, r Run) error {
	if r.Err != nil {
		return fmt.Errorf("%s: %w", label, r.Err)
	}
	if !value.Equal(r.Value, oracle) {
		lost := value.Diff(oracle, r.Value)
		extra := value.Diff(r.Value, oracle)
		return fmt.Errorf("%s: result mismatch vs oracle (lost %d, extra %d)",
			label, lost.Len(), extra.Len())
	}
	return nil
}

// VerifyKimLoses returns an error unless Kim's transformation actually lost
// tuples — the bug these experiments exist to reproduce. A Kim run that
// matches the oracle on dangling-tuple data means the reproduction broke.
func VerifyKimLoses(label string, oracle value.Value, r Run) error {
	if r.Err != nil {
		return fmt.Errorf("%s: %w", label, r.Err)
	}
	if value.Diff(oracle, r.Value).Len() == 0 {
		return fmt.Errorf("%s: Kim lost no tuples — the COUNT bug failed to reproduce", label)
	}
	if extra := value.Diff(r.Value, oracle); extra.Len() > 0 {
		return fmt.Errorf("%s: Kim produced %d tuples outside the nested semantics", label, extra.Len())
	}
	return nil
}

// CheckAgainst compares a run's value to the oracle; it returns "ok" or a
// short discrepancy description (the COUNT-bug report format).
func CheckAgainst(oracle value.Value, r Run) string {
	if r.Err != nil {
		return "ERR: " + r.Err.Error()
	}
	if value.Equal(r.Value, oracle) {
		return "ok"
	}
	lost := value.Diff(oracle, r.Value)
	extra := value.Diff(r.Value, oracle)
	return fmt.Sprintf("WRONG (lost %d, extra %d)", lost.Len(), extra.Len())
}

// Env couples a catalog and database for experiment setup.
type Env struct {
	Cat *schema.Catalog
	DB  *storage.DB
}

// Engine returns a fresh engine over the environment.
func (e Env) Engine() *engine.Engine { return engine.New(e.Cat, e.DB) }
