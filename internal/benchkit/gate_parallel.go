package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
)

// Parallel-speedup gating (cmd/benchdiff -parallel): the committed
// BENCH_parallel.json records serial-vs-partitioned speedups, but those
// numbers only mean anything when both the artifact and the current host had
// real cores — on one usable CPU the partitioned operators cannot convert
// into wall-clock and speedup ≈ 1× (or worse) by construction. Rather than
// silently passing in that situation, the gate reports an explicit "skipped"
// status with the reason, so CI logs show the comparison did not run.
//
// Regenerating the artifact on a multi-core host:
//
//	go run ./cmd/repro -parbench BENCH_parallel.json
//
// (commit it; the report embeds GOMAXPROCS/NumCPU so the gate can tell
// whether its speedup column is trustworthy).

// ParallelGateResult is one checked parallel-mode measurement.
type ParallelGateResult struct {
	ID          string  `json:"id"`
	Parallelism int     `json:"parallelism"`
	Speedup     float64 `json:"speedup_vs_serial"`
	OK          bool    `json:"ok"`
}

// ParallelGate is the outcome of gating a parallel bench report.
type ParallelGate struct {
	// Status is "ok", "failed", or "skipped". Skipped is an explicit
	// outcome, not a pass: the speedup comparison did not run, and Reason
	// says why.
	Status     string               `json:"status"`
	Reason     string               `json:"reason,omitempty"`
	MinSpeedup float64              `json:"min_speedup"`
	Checked    []ParallelGateResult `json:"checked,omitempty"`
	Failures   int                  `json:"failures"`
}

// GateParallel checks every parallel-mode result of report against
// minSpeedup. curProcs is the current host's GOMAXPROCS. The comparison is
// skipped — with an explicit reason, never a silent pass — when:
//
//   - the artifact carries the single-CPU warning;
//   - the artifact was measured with GOMAXPROCS or NumCPU < 2 (committed
//     reports may predate the warning field, so the recorded processor
//     counts are checked independently);
//   - the current host has fewer than 2 usable CPUs (a regression observed
//     here could not be reproduced, and regenerating the artifact locally
//     would itself be skipped).
func GateParallel(report *ParallelBenchReport, minSpeedup float64, curProcs int) *ParallelGate {
	g := &ParallelGate{MinSpeedup: minSpeedup}
	switch {
	case report.Warning != "":
		g.Status = "skipped"
		g.Reason = "artifact warning: " + report.Warning
	case report.GOMAXPROCS < 2 || report.NumCPU < 2:
		g.Status = "skipped"
		g.Reason = fmt.Sprintf("artifact measured on a single-CPU host (gomaxprocs=%d, num_cpu=%d): speedup column is not meaningful",
			report.GOMAXPROCS, report.NumCPU)
	case curProcs < 2:
		g.Status = "skipped"
		g.Reason = fmt.Sprintf("current host has GOMAXPROCS=%d: cannot reproduce parallel speedups here", curProcs)
	}
	if g.Status == "skipped" {
		g.Reason += " — regenerate on a multi-core host with: go run ./cmd/repro -parbench BENCH_parallel.json"
		return g
	}
	g.Status = "ok"
	for _, r := range report.Results {
		if r.Mode != "parallel" {
			continue
		}
		ok := r.SpeedupVsSerial >= minSpeedup
		if !ok {
			g.Failures++
		}
		g.Checked = append(g.Checked, ParallelGateResult{
			ID: r.ID, Parallelism: r.Parallelism, Speedup: r.SpeedupVsSerial, OK: ok,
		})
	}
	if g.Failures > 0 {
		g.Status = "failed"
	}
	return g
}

// ReadParallelReport parses a BENCH_parallel.json artifact.
func ReadParallelReport(r io.Reader) (*ParallelBenchReport, error) {
	var rep ParallelBenchReport
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("parsing parallel bench report: %w", err)
	}
	if len(rep.Results) == 0 {
		return nil, fmt.Errorf("parallel bench report has no results")
	}
	return &rep, nil
}

// Print renders the gate outcome.
func (g *ParallelGate) Print(w io.Writer) {
	if g.Status == "skipped" {
		fmt.Fprintf(w, "parallel-speedup gate: SKIPPED — %s\n", g.Reason)
		return
	}
	out := Table{
		Title:   fmt.Sprintf("parallel-speedup gate (min %.2fx)", g.MinSpeedup),
		Headers: []string{"exp", "par", "speedup", "status"},
	}
	for _, r := range g.Checked {
		status := "ok"
		if !r.OK {
			status = "below floor"
		}
		out.Add(r.ID, r.Parallelism, fmt.Sprintf("%.2fx", r.Speedup), status)
	}
	if g.Failures > 0 {
		out.Note("%d parallel configuration(s) below the %.2fx speedup floor", g.Failures, g.MinSpeedup)
	}
	out.Print(w)
}
