package benchkit

import (
	"fmt"
	"io"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Experiment is a named, runnable reproduction artifact.
type Experiment struct {
	ID    string
	Short string
	Run   func(w io.Writer, quick bool) error
}

// All returns the full experiment suite in presentation order. quick=true
// shrinks workload sizes (used by tests; cmd/repro passes false).
func All() []Experiment {
	return []Experiment{
		{"T1", "Table 1: the nest equijoin example", RunTable1},
		{"T2", "Table 2: rewriting TM predicates", RunTable2},
		{"Q12", "Queries Q1 and Q2 (§3.2)", RunQ12},
		{"CB", "The COUNT bug (§2)", RunCountBug},
		{"SB", "The SUBSETEQ bug (§4.1)", RunSubsetEqBug},
		{"S8", "§8 three-block query: plans and strategies", RunSection8},
		{"EQ", "§6 algebraic identity: △ = ν* ∘ ⟗", RunIdentity},
		{"B1", "flattening vs nested-loop processing", RunB1},
		{"B2", "semijoin/antijoin vs nest join (Theorem 1 payoff)", RunB2},
		{"B3", "nest join vs outerjoin+ν* vs Kim", RunB3},
		{"B4", "nest join physical implementations", RunB4},
		{"B5", "nesting depth (linear chains)", RunB5},
		{"B9", "vectorized batch pipeline vs row-at-a-time", RunB9},
		{"B10", "morsel scheduling vs partition-dedicated under skew", RunB10},
	}
}

// RunTable1 regenerates the paper's Table 1: relations X and Y and their
// nest equijoin on the second attribute (identity join function).
func RunTable1(w io.Writer, quick bool) error {
	env := table1Env()
	eng := env.Engine()

	dump := func(name string) error {
		tab, _ := env.DB.Table(name)
		tt := Table{Title: name, Headers: labelsOf(tab.Rows()[0])}
		for _, r := range tab.Rows() {
			cells := make([]any, 0, 2)
			for _, f := range r.Fields() {
				cells = append(cells, f.V.String())
			}
			tt.Add(cells...)
		}
		tt.Print(w)
		return nil
	}
	if err := dump("X"); err != nil {
		return err
	}
	if err := dump("Y"); err != nil {
		return err
	}

	q := `SELECT (e = x.e, d = x.d, s = SELECT y FROM Y y WHERE x.d = y.b) FROM X x`
	out := Table{
		Title:   "X nest-equijoin Y on d = b (paper Table 1)",
		Headers: []string{"e", "d", "s(e,d)"},
	}
	for _, ji := range []planner.JoinImpl{planner.ImplNestedLoop, planner.ImplHash, planner.ImplMerge} {
		r := Measure(eng, q, core.StrategyNestJoin, ji, 1)
		if r.Err != nil {
			return r.Err
		}
		if ji == planner.ImplNestedLoop {
			for _, row := range r.Value.Elems() {
				out.Add(row.MustGet("e").String(), row.MustGet("d").String(), row.MustGet("s").String())
			}
		}
	}
	out.Note("identical output from nested-loop, hash, and sort-merge nest joins")
	out.Note("dangling tuple (2,2) survives with s = {} — no NULLs needed")
	out.Print(w)
	return nil
}

func table1Env() Env {
	cat, db := datagen.Table1()
	return Env{Cat: cat, DB: db}
}

func labelsOf(v value.Value) []string {
	ls := v.Labels()
	return ls
}

// RunTable2 regenerates the paper's Table 2: each predicate form and its
// rewriting.
func RunTable2(w io.Writer, quick bool) error {
	preds := []string{
		"z = {}",
		"COUNT(z) = 0",
		"x.a = COUNT(z)",
		"x.a IN z",
		"x.a NOT IN z",
		"x.a SUBSET z",
		"x.a SUBSETEQ z",
		"x.a SUPSET z",
		"x.a SUPSETEQ z",
		"x.a = z",
		"x.a INTERSECT z = {}",
		"x.a INTERSECT z <> {}",
		"FORALL w IN x.a (w IN z)",
		"FORALL w IN x.a (w NOT IN z)",
	}
	out := Table{
		Title:   "Rewriting TM predicates (paper Table 2)",
		Headers: []string{"P(x, z)", "rewriting", "join operator"},
	}
	for _, p := range preds {
		e, err := tmql.Parse(p)
		if err != nil {
			return err
		}
		n := 0
		cls := core.Classify(e, "z", func() string { n++; return fmt.Sprintf("v%d", n) })
		switch cls.Class {
		case core.ClassExists:
			out.Add(p, fmt.Sprintf("EXISTS %s IN z (%s)", cls.V, tmql.Format(cls.Inner)), "semijoin")
		case core.ClassNotExists:
			out.Add(p, fmt.Sprintf("NOT EXISTS %s IN z (%s)", cls.V, tmql.Format(cls.Inner)), "antijoin")
		default:
			out.Add(p, "—", "nest join (grouping)")
		}
	}
	out.Print(w)
	return nil
}

// RunQ12 runs the paper's example queries Q1 and Q2 over the company schema,
// showing that Q1 (set-valued operand) stays nested while Q2 (SELECT-clause
// nesting over an extension) becomes a nest join.
func RunQ12(w io.Writer, quick bool) error {
	n := 200
	if quick {
		n = 30
	}
	cat, db := datagen.Company(n/10, n, 17)
	eng := engine.New(cat, db)

	q1 := `SELECT d FROM DEPT d
	WHERE (s = d.address.street, c = d.address.city)
	  IN SELECT (s = e.address.street, c = e.address.city) FROM d.emps e`
	q2 := `SELECT (dname = d.name,
	        emps = SELECT e.name FROM EMP e WHERE e.address.city = d.address.city)
	      FROM DEPT d`

	out := Table{
		Title:   "Q1 and Q2 (§3.2)",
		Headers: []string{"query", "strategy", "plan", "|result|", "time", "check"},
	}
	for _, qc := range []struct{ name, q string }{{"Q1", q1}, {"Q2", q2}} {
		oracle := Measure(eng, qc.q, core.StrategyNaive, planner.ImplAuto, 1)
		if oracle.Err != nil {
			return oracle.Err
		}
		nj := Measure(eng, qc.q, core.StrategyNestJoin, planner.ImplAuto, 1)
		plan, err := eng.Explain(qc.q, engine.Options{Strategy: core.StrategyNestJoin})
		if err != nil {
			return err
		}
		shape := "nest join"
		if !containsOp(plan, "NestJoin") {
			shape = "kept nested (set-valued operand)"
		}
		out.Add(qc.name, "naive", "nested loops", oracle.Value.Len(), oracle.Duration, "ok")
		out.Add(qc.name, "nestjoin", shape, nj.Value.Len(), nj.Duration, CheckAgainst(oracle.Value, nj))
		if err := VerifyAgainst("Q12 "+qc.name+" nestjoin", oracle.Value, nj); err != nil {
			return err
		}
	}
	out.Print(w)
	return nil
}

func containsOp(explain, op string) bool {
	return len(explain) > 0 && (stringContains(explain, op))
}

func stringContains(s, sub string) bool {
	return len(sub) == 0 || (len(s) >= len(sub) && indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// RunCountBug reproduces the §2 COUNT bug: all four strategies on
// R.B = COUNT(subquery), with correctness checked against the nested
// semantics.
func RunCountBug(w io.Writer, quick bool) error {
	nR, nS := 400, 800
	if quick {
		nR, nS = 40, 80
	}
	cat, db := datagen.RS(nR, nS, nR/5, 0.3, 11)
	eng := engine.New(cat, db)
	q := `SELECT r FROM R r WHERE r.B = COUNT(SELECT s.D FROM S s WHERE r.C = s.C)`

	oracle := Measure(eng, q, core.StrategyNaive, planner.ImplAuto, 1)
	if oracle.Err != nil {
		return oracle.Err
	}
	out := Table{
		Title:   "COUNT bug (§2): SELECT r FROM R r WHERE r.B = COUNT(σ S)",
		Headers: []string{"strategy", "|result|", "time", "steps", "correct?"},
	}
	out.Add("naive (oracle)", oracle.Value.Len(), oracle.Duration, oracle.Steps, "ok")
	for _, s := range []core.Strategy{core.StrategyKim, core.StrategyOuterJoin, core.StrategyNestJoin} {
		r := Measure(eng, q, s, planner.ImplAuto, 1)
		out.Add(s.String(), r.Value.Len(), r.Duration, r.Steps, CheckAgainst(oracle.Value, r))
		if s != core.StrategyKim {
			if err := VerifyAgainst("CB "+s.String(), oracle.Value, r); err != nil {
				return err
			}
		}
	}
	kim := Measure(eng, q, core.StrategyKim, planner.ImplAuto, 1)
	if err := VerifyKimLoses("CB kim", oracle.Value, kim); err != nil {
		return err
	}
	lost := value.Diff(oracle.Value, kim.Value)
	allZero := true
	for _, r := range lost.Elems() {
		if r.MustGet("B").AsInt() != 0 {
			allZero = false
		}
	}
	out.Note("Kim loses %d dangling tuples; all have B = 0: %v (the COUNT-bug pattern)",
		lost.Len(), allZero)
	out.Print(w)
	return nil
}

// RunSubsetEqBug reproduces the §4.1 SUBSETEQ bug on x.a ⊆ subquery.
func RunSubsetEqBug(w io.Writer, quick bool) error {
	spec := datagen.Spec{NX: 300, NY: 600, NZ: 0, Keys: 40, DanglingFrac: 0.3, SetAttrCard: 2, Seed: 3}
	if quick {
		spec.NX, spec.NY = 30, 60
		spec.Keys = 6
	}
	cat, db := datagen.XYZ(spec)
	eng := engine.New(cat, db)
	q := `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`

	oracle := Measure(eng, q, core.StrategyNaive, planner.ImplAuto, 1)
	if oracle.Err != nil {
		return oracle.Err
	}
	out := Table{
		Title:   "SUBSETEQ bug (§4.1): x.a ⊆ subquery",
		Headers: []string{"strategy", "|result|", "time", "correct?"},
	}
	out.Add("naive (oracle)", oracle.Value.Len(), oracle.Duration, "ok")
	for _, s := range []core.Strategy{core.StrategyKim, core.StrategyOuterJoin, core.StrategyNestJoin} {
		r := Measure(eng, q, s, planner.ImplAuto, 1)
		out.Add(s.String(), r.Value.Len(), r.Duration, CheckAgainst(oracle.Value, r))
		if s != core.StrategyKim {
			if err := VerifyAgainst("SB "+s.String(), oracle.Value, r); err != nil {
				return err
			}
		}
	}
	kim := Measure(eng, q, core.StrategyKim, planner.ImplAuto, 1)
	lost := value.Diff(oracle.Value, kim.Value)
	emptyA := 0
	for _, x := range lost.Elems() {
		if x.MustGet("a").IsEmptySet() {
			emptyA++
		}
	}
	out.Note("Kim loses %d tuples, %d of them with x.a = ∅ (dangling, ∅ ⊆ ∅ holds)",
		lost.Len(), emptyA)
	out.Print(w)
	return nil
}

// RunSection8 shows the bottom-up strategy for the §8 three-block query and
// its flat (∈/∉) variant: plans under the paper's strategy plus timing of
// all strategies.
func RunSection8(w io.Writer, quick bool) error {
	spec := datagen.Spec{NX: 200, NY: 400, NZ: 300, Keys: 30, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 1}
	if quick {
		spec = datagen.DefaultSpec()
	}
	cat, db := datagen.XYZ(spec)
	eng := engine.New(cat, db)

	grouped := `SELECT x FROM X x
 WHERE x.a SUBSETEQ
   SELECT y.a FROM Y y
   WHERE x.b = y.b AND
     y.c SUBSETEQ SELECT z.c FROM Z z WHERE y.d = z.d`
	flat := `SELECT x FROM X x
 WHERE x.b IN
   SELECT y.a FROM Y y
   WHERE x.b = y.b AND
     y.a NOT IN SELECT z.c FROM Z z WHERE y.d = z.d`

	for _, qc := range []struct{ name, q string }{
		{"grouping variant (two nest joins)", grouped},
		{"flat variant (semijoin + antijoin)", flat},
	} {
		plan, err := eng.Explain(qc.q, engine.Options{Strategy: core.StrategyNestJoin})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "\n== §8 %s ==\n%s", qc.name, plan)
		oracle := Measure(eng, qc.q, core.StrategyNaive, planner.ImplAuto, 1)
		out := Table{
			Title:   "execution: " + qc.name,
			Headers: []string{"strategy", "|result|", "time", "steps", "speedup vs naive", "correct?"},
		}
		out.Add("naive", oracle.Value.Len(), oracle.Duration, oracle.Steps, "1.0x", "ok")
		r := Measure(eng, qc.q, core.StrategyNestJoin, planner.ImplAuto, 3)
		out.Add("nestjoin (paper §8)", r.Value.Len(), r.Duration, r.Steps,
			Speedup(oracle.Duration, r.Duration), CheckAgainst(oracle.Value, r))
		if err := VerifyAgainst("S8 "+qc.name, oracle.Value, r); err != nil {
			return err
		}
		out.Print(w)
	}
	return nil
}

// RunIdentity demonstrates the §6 identity X △ Y = ν*(X ⟗ Y) as executed
// plans (the outerjoin strategy materializes exactly the right-hand side).
func RunIdentity(w io.Writer, quick bool) error {
	spec := datagen.DefaultSpec()
	cat, db := datagen.XYZ(spec)
	eng := engine.New(cat, db)
	q := `SELECT (b = x.b, ys = SELECT y.a FROM Y y WHERE x.b = y.b) FROM X x`

	nj := Measure(eng, q, core.StrategyNestJoin, planner.ImplAuto, 1)
	if nj.Err != nil {
		return nj.Err
	}
	// The outerjoin strategy only applies to WHERE nesting; build the ν*∘⟗
	// equivalent for this SELECT nesting through the grouped WHERE query.
	qw := `SELECT x FROM X x WHERE COUNT(SELECT y.a FROM Y y WHERE x.b = y.b) = COUNT(SELECT y.a FROM Y y WHERE x.b = y.b)`
	oj := Measure(eng, qw, core.StrategyOuterJoin, planner.ImplAuto, 1)
	njW := Measure(eng, qw, core.StrategyNestJoin, planner.ImplAuto, 1)
	naive := Measure(eng, qw, core.StrategyNaive, planner.ImplAuto, 1)

	out := Table{
		Title:   "△ vs ν* ∘ ⟗ (§6 identity, executed)",
		Headers: []string{"plan", "|result|", "time", "check"},
	}
	out.Add("nest join (SELECT nesting)", nj.Value.Len(), nj.Duration, "ok")
	out.Add("nestjoin strategy (WHERE form)", njW.Value.Len(), njW.Duration, CheckAgainst(naive.Value, njW))
	out.Add("outerjoin + ν* (WHERE form)", oj.Value.Len(), oj.Duration, CheckAgainst(naive.Value, oj))
	out.Note("both strategies return identical sets — the identity holds on data")
	out.Print(w)
	if err := VerifyAgainst("EQ nestjoin", naive.Value, njW); err != nil {
		return err
	}
	return VerifyAgainst("EQ outerjoin+ν*", naive.Value, oj)
}

// RunB1 measures flattening vs nested-loop processing as |X| and |Y| grow —
// the paper's core motivation (§1, §2).
func RunB1(w io.Writer, quick bool) error {
	sizes := [][2]int{{50, 100}, {100, 200}, {200, 400}, {400, 800}, {800, 1600}}
	if quick {
		sizes = [][2]int{{20, 40}, {40, 80}}
	}
	q := `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`
	out := Table{
		Title:   "B1: nested-loop processing vs flattened plans (IN predicate)",
		Headers: []string{"|X|", "|Y|", "naive", "semijoin(NL)", "semijoin(hash)", "speedup(hash)", "check"},
	}
	for _, sz := range sizes {
		cat, db := datagen.XYZ(datagen.Spec{
			NX: sz[0], NY: sz[1], NZ: 0, Keys: sz[0] / 4, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 7,
		})
		eng := engine.New(cat, db)
		naive := Measure(eng, q, core.StrategyNaive, planner.ImplAuto, 1)
		nl := Measure(eng, q, core.StrategyNestJoin, planner.ImplNestedLoop, 3)
		hash := Measure(eng, q, core.StrategyNestJoin, planner.ImplHash, 3)
		out.Add(sz[0], sz[1], naive.Duration, nl.Duration, hash.Duration,
			Speedup(naive.Duration, hash.Duration), CheckAgainst(naive.Value, hash))
		if err := VerifyAgainst("B1 semijoin(nl)", naive.Value, nl); err != nil {
			return err
		}
		if err := VerifyAgainst("B1 semijoin(hash)", naive.Value, hash); err != nil {
			return err
		}
	}
	out.Note("shape: naive grows ~|X|·|Y|; hash semijoin ~|X|+|Y| — gap widens with size")
	out.Print(w)
	return nil
}

// RunB2 measures the payoff of Theorem 1: when the predicate is flat-
// classifiable, a semijoin (or antijoin) beats the nest-join-plus-selection
// plan that a grouping-only optimizer would emit.
func RunB2(w io.Writer, quick bool) error {
	sizes := [][2]int{{200, 400}, {400, 800}, {800, 1600}, {1600, 3200}}
	if quick {
		sizes = [][2]int{{40, 80}}
	}
	out := Table{
		Title:   "B2: semijoin/antijoin vs nest join when grouping is unnecessary",
		Headers: []string{"|X|", "|Y|", "pred", "flat (Theorem 1)", "nest join + σ", "flat speedup", "check"},
	}
	for _, sz := range sizes {
		cat, db := datagen.XYZ(datagen.Spec{
			NX: sz[0], NY: sz[1], NZ: 0, Keys: sz[0] / 8, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 7,
		})
		eng := engine.New(cat, db)
		cases := []struct{ name, flat, grouped string }{
			{
				"IN",
				`SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
				// Equivalent formulation the classifier cannot flatten (COUNT ≥ 1
				// via grouped cardinality comparison) — forces the nest join.
				`SELECT x FROM X x WHERE COUNT(SELECT y.a FROM Y y WHERE x.b = y.d AND y.d = x.b) >= COUNT({1})`,
			},
			{
				"NOT IN",
				`SELECT x FROM X x WHERE x.b NOT IN SELECT y.d FROM Y y WHERE x.b = y.d`,
				`SELECT x FROM X x WHERE COUNT(SELECT y.a FROM Y y WHERE x.b = y.d AND y.d = x.b) < COUNT({1})`,
			},
		}
		for _, c := range cases {
			flat := Measure(eng, c.flat, core.StrategyNestJoin, planner.ImplAuto, 3)
			grouped := Measure(eng, c.grouped, core.StrategyNestJoin, planner.ImplAuto, 3)
			oracle := Measure(eng, c.flat, core.StrategyNaive, planner.ImplAuto, 1)
			out.Add(sz[0], sz[1], c.name, flat.Duration, grouped.Duration,
				Speedup(grouped.Duration, flat.Duration), CheckAgainst(oracle.Value, flat))
			if err := VerifyAgainst("B2 "+c.name, oracle.Value, flat); err != nil {
				return err
			}
		}
	}
	out.Note("flat plans probe and stop at the first match; nest joins materialize every group")
	out.Print(w)
	return nil
}

// RunB3 compares the three correct grouping strategies (nest join, outerjoin
// + ν*, Kim-when-right) on a COUNT-between-blocks query.
func RunB3(w io.Writer, quick bool) error {
	sizes := [][2]int{{200, 400}, {400, 800}, {800, 1600}}
	if quick {
		sizes = [][2]int{{40, 80}}
	}
	q := `SELECT r FROM R r WHERE r.B = COUNT(SELECT s.D FROM S s WHERE r.C = s.C)`
	out := Table{
		Title:   "B3: nest join vs outerjoin+ν* vs Kim (COUNT between blocks)",
		Headers: []string{"|R|", "|S|", "nestjoin", "outerjoin+ν*", "kim", "kim correct?"},
	}
	for _, sz := range sizes {
		cat, db := datagen.RS(sz[0], sz[1], sz[0]/5, 0.3, 11)
		eng := engine.New(cat, db)
		oracle := Measure(eng, q, core.StrategyNaive, planner.ImplAuto, 1)
		nj := Measure(eng, q, core.StrategyNestJoin, planner.ImplAuto, 3)
		oj := Measure(eng, q, core.StrategyOuterJoin, planner.ImplAuto, 3)
		kim := Measure(eng, q, core.StrategyKim, planner.ImplAuto, 3)
		out.Add(sz[0], sz[1], nj.Duration, oj.Duration, kim.Duration, CheckAgainst(oracle.Value, kim))
		if err := VerifyAgainst("B3 nestjoin", oracle.Value, nj); err != nil {
			return err
		}
		if err := VerifyAgainst("B3 outerjoin+ν*", oracle.Value, oj); err != nil {
			return err
		}
		if err := VerifyKimLoses("B3 kim", oracle.Value, kim); err != nil {
			return err
		}
	}
	out.Note("nest join does one pass; outerjoin+ν* pays NULL padding plus a regrouping pass")
	out.Note("Kim is fast but WRONG on dangling tuples — the paper's point")
	out.Print(w)
	return nil
}

// RunB4 ablates the physical nest-join implementations (§6 Implementation).
func RunB4(w io.Writer, quick bool) error {
	sizes := [][2]int{{200, 2000}, {400, 4000}, {800, 8000}}
	if quick {
		sizes = [][2]int{{40, 200}}
	}
	q := `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`
	out := Table{
		Title:   "B4: nest join implementations (right operand is always the build side)",
		Headers: []string{"|X|", "|Y|", "nested-loop", "hash", "sort-merge", "hash speedup"},
	}
	for _, sz := range sizes {
		cat, db := datagen.XYZ(datagen.Spec{
			NX: sz[0], NY: sz[1], NZ: 0, Keys: sz[0] / 4, DanglingFrac: 0.2, SetAttrCard: 3, Seed: 5,
		})
		eng := engine.New(cat, db)
		nl := Measure(eng, q, core.StrategyNestJoin, planner.ImplNestedLoop, 1)
		hash := Measure(eng, q, core.StrategyNestJoin, planner.ImplHash, 3)
		merge := Measure(eng, q, core.StrategyNestJoin, planner.ImplMerge, 3)
		if !value.Equal(nl.Value, hash.Value) || !value.Equal(nl.Value, merge.Value) {
			out.Add(sz[0], sz[1], "IMPLEMENTATIONS DISAGREE", "", "", "")
			continue
		}
		out.Add(sz[0], sz[1], nl.Duration, hash.Duration, merge.Duration,
			Speedup(nl.Duration, hash.Duration))
	}
	out.Print(w)
	return nil
}

// RunB5 measures linear nesting depth: two- and three-block chains, naive vs
// the §8 bottom-up strategy.
func RunB5(w io.Writer, quick bool) error {
	sizes := []int{100, 200, 400}
	if quick {
		sizes = []int{30}
	}
	q2 := `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`
	q3 := `SELECT x FROM X x
 WHERE x.a SUBSETEQ
   SELECT y.a FROM Y y
   WHERE x.b = y.b AND
     y.c SUBSETEQ SELECT z.c FROM Z z WHERE y.d = z.d`
	out := Table{
		Title:   "B5: nesting depth — naive vs bottom-up nest joins (§8)",
		Headers: []string{"n", "blocks", "naive", "nestjoin", "speedup", "check"},
	}
	for _, n := range sizes {
		cat, db := datagen.XYZ(datagen.Spec{
			NX: n, NY: 2 * n, NZ: 2 * n, Keys: n / 4, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 13,
		})
		eng := engine.New(cat, db)
		for blocks, q := range map[int]string{2: q2, 3: q3} {
			naive := Measure(eng, q, core.StrategyNaive, planner.ImplAuto, 1)
			nj := Measure(eng, q, core.StrategyNestJoin, planner.ImplAuto, 3)
			out.Add(n, blocks, naive.Duration, nj.Duration,
				Speedup(naive.Duration, nj.Duration), CheckAgainst(naive.Value, nj))
			if err := VerifyAgainst(fmt.Sprintf("B5 %d-block", blocks), naive.Value, nj); err != nil {
				return err
			}
		}
	}
	out.Note("naive cost multiplies per nesting level; the unnested chain stays near-linear")
	out.Print(w)
	return nil
}
