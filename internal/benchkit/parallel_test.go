package benchkit

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

// TestParallelCasesBitIdentical executes every B-series parallel-bench case
// once serial and once partitioned (the correctness gate RunParallelBench
// applies before measuring) without the slow benchmark driver.
func TestParallelCasesBitIdentical(t *testing.T) {
	for _, c := range parallelCases(true) {
		env := c.env(c.n)
		eng := env.Engine()
		serial, err := eng.Query(c.query, engine.Options{
			Strategy: core.StrategyNestJoin, Joins: planner.ImplHash, Parallelism: 1,
		})
		if err != nil {
			t.Fatalf("%s serial: %v", c.id, err)
		}
		par, err := eng.Query(c.query, engine.Options{
			Strategy: core.StrategyNestJoin, Joins: planner.ImplHash, Parallelism: 4,
		})
		if err != nil {
			t.Fatalf("%s parallel: %v", c.id, err)
		}
		if value.Key(par.Value) != value.Key(serial.Value) {
			t.Errorf("%s: parallel result not bit-identical to serial", c.id)
		}
		if serial.Value.Len() == 0 {
			t.Errorf("%s: empty result — workload too degenerate to measure", c.id)
		}
		if par.EvalSteps != serial.EvalSteps {
			t.Errorf("%s: eval steps differ: serial %d parallel %d", c.id, serial.EvalSteps, par.EvalSteps)
		}
	}
}

// TestParallelReportJSONRoundTrip pins the BENCH_parallel.json shape.
func TestParallelReportJSONRoundTrip(t *testing.T) {
	report := &ParallelBenchReport{
		GOMAXPROCS: 4, NumCPU: 4, Quick: true,
		Results: []ParallelBenchResult{
			{ID: "B1", Query: "q", N: 2000, Mode: "serial", Parallelism: 1,
				Ops: 10, NsPerOp: 1000, AllocsPerOp: 50, BytesPerOp: 4096,
				EvalSteps: 12345, SpeedupVsSerial: 1.0},
			{ID: "B1", Query: "q", N: 2000, Mode: "parallel", Parallelism: 4,
				Ops: 20, NsPerOp: 400, AllocsPerOp: 60, BytesPerOp: 5000,
				EvalSteps: 12345, SpeedupVsSerial: 2.5},
		},
	}
	var buf bytes.Buffer
	if err := report.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"ns_per_op"`, `"allocs_per_op"`, `"speedup_vs_serial"`, `"gomaxprocs"`} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("JSON misses %s:\n%s", want, buf.String())
		}
	}
	var back ParallelBenchReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != 2 || back.Results[1].SpeedupVsSerial != 2.5 {
		t.Errorf("round trip lost data: %+v", back)
	}
	var tbl bytes.Buffer
	report.Print(&tbl)
	if !strings.Contains(tbl.String(), "B1") || !strings.Contains(tbl.String(), "2.50x") {
		t.Errorf("table rendering:\n%s", tbl.String())
	}
}
