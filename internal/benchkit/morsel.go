package benchkit

import (
	"fmt"
	"io"
	"runtime"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/exec"
	"tmdb/internal/planner"
)

// B10: morsel scheduling under skew. The partitioned hash join splits work by
// join-key hash, so a 90/10-skewed key distribution lands ~90% of the probe
// rows in one partition. A partition-dedicated runtime (NoSteal: each worker
// pinned to its home partition's morsels) serializes on that hot partition;
// the work-stealing scheduler lets idle workers drain it. Both modes produce
// byte-identical results — the experiment measures only the wall-clock gap
// the stealing buys.

// MeasureMorsel executes the query under explicit scheduler options,
// repeating reps times and keeping the minimum duration (steady-state
// figure) together with that run's scheduler counters.
func MeasureMorsel(eng *engine.Engine, q string, opts engine.Options, reps int) (Run, exec.SchedStats) {
	if reps < 1 {
		reps = 1
	}
	out := Run{Strategy: opts.Strategy, Joins: opts.Joins}
	var stats exec.SchedStats
	for i := 0; i < reps; i++ {
		res, err := eng.Query(q, opts)
		if err != nil {
			out.Err = err
			return out, stats
		}
		if i == 0 || res.Duration < out.Duration {
			out.Duration = res.Duration
			out.Steps = res.EvalSteps
			stats = res.Sched
		}
		out.Value = res.Value
	}
	return out, stats
}

// RunB10 measures the morsel scheduler against the partition-dedicated
// ablation on a 90/10-skewed semijoin at n=2000: serial oracle, degree-4
// with stealing, and degree-4 with NoSteal (every worker pinned to its home
// partition — the pre-morsel partitioned runtime). All three must be
// byte-identical; at full scale on a multi-core host the stealing run must
// clear 1.3× the partition-dedicated run. On a single usable CPU the bar is
// explicitly skipped — interleaved workers cannot convert stolen morsels
// into wall-clock, so the ratio is ≈1× by construction, not a regression.
func RunB10(w io.Writer, quick bool) error {
	n := 2000
	if quick {
		n = 200
	}
	const par = 4
	// SkewFrac collapses 90% of the matched join keys onto key 0, so one of
	// the hash join's partitions carries almost all probe morsels — the
	// workload shape stealing exists for.
	cat, db := datagen.XYZ(datagen.Spec{
		NX: n, NY: 2 * n, NZ: 0, Keys: 16, DanglingFrac: 0.2, SetAttrCard: 3,
		SkewFrac: 0.9, Seed: 7,
	})
	eng := engine.New(cat, db)
	q := `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`

	pin := engine.Options{Strategy: core.StrategyNestJoin, Joins: planner.ImplHash}
	serialOpts, stealOpts, noStealOpts := pin, pin, pin
	serialOpts.Parallelism = 1
	stealOpts.Parallelism = par
	noStealOpts.Parallelism = par
	noStealOpts.NoSteal = true

	serial, _ := MeasureMorsel(eng, q, serialOpts, 5)
	if serial.Err != nil {
		return fmt.Errorf("B10 serial: %w", serial.Err)
	}
	steal, stealStats := MeasureMorsel(eng, q, stealOpts, 5)
	if err := VerifyAgainst("B10 steal", serial.Value, steal); err != nil {
		return err
	}
	noSteal, noStealStats := MeasureMorsel(eng, q, noStealOpts, 5)
	if err := VerifyAgainst("B10 nosteal", serial.Value, noSteal); err != nil {
		return err
	}

	out := Table{
		Title:   fmt.Sprintf("B10: morsel scheduling under 90/10 skew (hash semijoin, n=%d, degree %d)", n, par),
		Headers: []string{"runtime", "|result|", "time", "dispatched", "stolen", "speedup vs nosteal", "check"},
	}
	out.Add("serial", serial.Value.Len(), serial.Duration, "-", "-", "-", "ok")
	out.Add("partition-dedicated (nosteal)", noSteal.Value.Len(), noSteal.Duration,
		noStealStats.Dispatched, noStealStats.Stolen, "1.0x", CheckAgainst(serial.Value, noSteal))
	out.Add("morsel (steal)", steal.Value.Len(), steal.Duration,
		stealStats.Dispatched, stealStats.Stolen,
		Speedup(noSteal.Duration, steal.Duration), CheckAgainst(serial.Value, steal))
	out.Note("identical results in all three modes — stealing changes only who executes each morsel")

	procs := runtime.GOMAXPROCS(0)
	switch {
	case quick:
		// Quick workloads are too small for a stable ratio; identity above is
		// the only claim checked.
	case procs < 2:
		out.Note("speedup bar SKIPPED: GOMAXPROCS=%d — stolen morsels cannot convert into wall-clock on one CPU (rerun on a multi-core host)", procs)
	}
	out.Print(w)

	// Acceptance bar (full scale, multi-core only): stealing must clear 1.3×
	// the partition-dedicated runtime on the skewed workload. Skipping on one
	// CPU is reported above — never a silent pass.
	if !quick && procs >= 2 && steal.Duration > 0 &&
		float64(noSteal.Duration)/float64(steal.Duration) < 1.3 {
		return fmt.Errorf("B10: morsel scheduling %.2fx over partition-dedicated under skew, want >= 1.3x",
			float64(noSteal.Duration)/float64(steal.Duration))
	}
	return nil
}
