package benchkit

import (
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"runtime"
	"sort"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

// Bench-regression gating (cmd/benchdiff): a fixed scenario set drawn from
// the B1/B6/B7/B8/B9 experiments is measured with testing.Benchmark and
// compared against a committed baseline (BENCH_baseline.json). allocs/op is
// machine-independent and compared directly. ns/op is not — CI runners
// differ from the machine that wrote the baseline — so the baseline also
// records a calibration figure (a fixed pure-CPU workload measured at
// baseline time); current ns/op numbers are compared against the baseline
// scaled by the calibration ratio, which cancels the machine-speed
// difference while preserving genuine per-operation regressions.
//
// Refreshing the baseline after an intentional perf change:
//
//	go run ./cmd/benchdiff -update
//
// which rewrites BENCH_baseline.json (commit it with the change).

// RegressScenario is one gated measurement.
type RegressScenario struct {
	Name  string
	Query string
	run   func() (*engine.Engine, engine.Options, error)
}

// BaselineEntry is one benchmark's committed reference numbers.
type BaselineEntry struct {
	NsPerOp     int64 `json:"ns_per_op"`
	AllocsPerOp int64 `json:"allocs_per_op"`
}

// Baseline is the BENCH_baseline.json payload.
type Baseline struct {
	// CalibrationNsPerOp is the calibration loop's ns/op on the machine that
	// wrote the baseline; current runs rescale ns/op comparisons by it.
	CalibrationNsPerOp int64 `json:"calibration_ns_per_op"`
	// GOMAXPROCS records the baseline host (informational).
	GOMAXPROCS int                      `json:"gomaxprocs"`
	Benches    map[string]BaselineEntry `json:"benches"`
}

// RegressResult is one compared benchmark in the report.
type RegressResult struct {
	Name        string  `json:"name"`
	NsPerOp     int64   `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BaseNs      int64   `json:"baseline_ns_per_op"`
	BaseAllocs  int64   `json:"baseline_allocs_per_op"`
	ScaledNs    float64 `json:"scaled_baseline_ns_per_op"`
	NsRatio     float64 `json:"ns_ratio"`     // current / scaled baseline
	AllocsRatio float64 `json:"allocs_ratio"` // current / baseline
	Status      string  `json:"status"`       // ok | regression | new
}

// RegressReport is the benchdiff report artifact.
type RegressReport struct {
	Tolerance          float64         `json:"tolerance"`
	CalibrationNsPerOp int64           `json:"calibration_ns_per_op"`
	CalibrationScale   float64         `json:"calibration_scale"`
	GOMAXPROCS         int             `json:"gomaxprocs"`
	Results            []RegressResult `json:"results"`
	Regressions        int             `json:"regressions"`
}

// regressScenarios returns the gated scenario set. Sizes are CI-sized: each
// scenario is measured by testing.Benchmark for its default ~1s.
func regressScenarios() []RegressScenario {
	xyz := func(nx, ny int, index func(*engine.Engine) error, opts engine.Options) func() (*engine.Engine, engine.Options, error) {
		return func() (*engine.Engine, engine.Options, error) {
			cat, db := datagen.XYZ(datagen.Spec{
				NX: nx, NY: ny, NZ: 0, Keys: max(1, nx/4), DanglingFrac: 0.25, SetAttrCard: 3, Seed: 7,
			})
			eng := engine.New(cat, db)
			if index != nil {
				if err := index(eng); err != nil {
					return nil, engine.Options{}, err
				}
			}
			return eng, opts, nil
		}
	}
	noIndex := (func(*engine.Engine) error)(nil)
	ixYd := func(eng *engine.Engine) error { return eng.CreateIndex("Y", "d") }
	ixXb := func(eng *engine.Engine) error { return eng.CreateIndex("X", "b") }
	ixYbd := func(eng *engine.Engine) error { return eng.CreateIndex("Y", "b", "d") }
	// The B9 pipeline runs over a wide key space (Keys = n) so its cost sits
	// in the scan/filter/probe loops rather than output materialization —
	// the same workload RunB9 uses for the batch-vs-row acceptance bar.
	xyzWide := func(n int, opts engine.Options) func() (*engine.Engine, engine.Options, error) {
		return func() (*engine.Engine, engine.Options, error) {
			cat, db := datagen.XYZ(datagen.Spec{
				NX: n, NY: n, NZ: 0, Keys: n, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 7,
			})
			return engine.New(cat, db), opts, nil
		}
	}
	// The B10 scenarios run the skewed semijoin RunB10 gates: one hash
	// partition holds ~90% of the probe rows, so the steal/nosteal pair
	// tracks the scheduler's own overhead (ns/op is calibration-scaled; on a
	// single-CPU runner the two coincide, which is fine — the gate compares
	// each against its own baseline, not against each other).
	xyzSkew := func(n int, opts engine.Options) func() (*engine.Engine, engine.Options, error) {
		return func() (*engine.Engine, engine.Options, error) {
			cat, db := datagen.XYZ(datagen.Spec{
				NX: n, NY: 2 * n, NZ: 0, Keys: 16, DanglingFrac: 0.2, SetAttrCard: 3,
				SkewFrac: 0.9, Seed: 7,
			})
			return engine.New(cat, db), opts, nil
		}
	}
	serial := engine.Options{Parallelism: 1}
	fixedHash := engine.Options{Strategy: core.StrategyNestJoin, Joins: planner.ImplHash, Parallelism: 1}
	fixedIdx := engine.Options{Strategy: core.StrategyNestJoin, Joins: planner.ImplIndex, Parallelism: 1}
	scanPin := engine.Options{Access: planner.AccessScan, Parallelism: 1}
	idxPin := engine.Options{Access: planner.AccessIndex, Parallelism: 1}
	rowPin := engine.Options{Parallelism: 1, BatchSize: -1}
	batchPin := engine.Options{Parallelism: 1, BatchSize: 256}
	morselHash := engine.Options{Strategy: core.StrategyNestJoin, Joins: planner.ImplHash, Parallelism: 4}
	morselNoSteal := morselHash
	morselNoSteal.NoSteal = true

	const b1 = `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`
	const b6 = `SELECT x.b FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b) AND x.b < 0`
	const b8 = `SELECT x FROM X x WHERE x.b = 3`
	const b8c = `SELECT y.a FROM Y y WHERE y.b = 3 AND y.d = 2`
	const b9 = `SELECT x.b FROM X x, Y y WHERE x.b = y.d AND y.a < 3 AND x.b < 250`
	return []RegressScenario{
		{Name: "B1/semijoin-hash/n=400", Query: b1, run: xyz(400, 800, noIndex, fixedHash)},
		{Name: "B1/semijoin-auto/n=400", Query: b1, run: xyz(400, 800, noIndex, serial)},
		{Name: "B6/pushdown-auto/n=400", Query: b6, run: xyz(400, 1200, noIndex, serial)},
		{Name: "B7/idxjoin/n=400", Query: b1, run: xyz(400, 2000, ixYd, fixedIdx)},
		{Name: "B7/hash/n=400", Query: b1, run: xyz(400, 2000, ixYd, fixedHash)},
		{Name: "B8/fullscan/n=2000", Query: b8, run: xyz(2000, 2000, ixXb, scanPin)},
		{Name: "B8/idxscan/n=2000", Query: b8, run: xyz(2000, 2000, ixXb, idxPin)},
		{Name: "B8/composite-idxscan/n=2000", Query: b8c, run: xyz(2000, 2000, ixYbd, idxPin)},
		{Name: "B9/pipeline-row/n=2000", Query: b9, run: xyzWide(2000, rowPin)},
		{Name: "B9/pipeline-batch/n=2000", Query: b9, run: xyzWide(2000, batchPin)},
		{Name: "B9/pipeline-auto/n=2000", Query: b9, run: xyzWide(2000, serial)},
		{Name: "B10/morsel-steal/n=2000", Query: b1, run: xyzSkew(2000, morselHash)},
		{Name: "B10/morsel-nosteal/n=2000", Query: b1, run: xyzSkew(2000, morselNoSteal)},
	}
}

// calibrate measures the fixed pure-CPU workload (FNV-1a over a 64 KiB
// buffer) that anchors cross-machine ns/op comparisons.
func calibrate() int64 {
	buf := make([]byte, 64<<10)
	for i := range buf {
		buf[i] = byte(i * 31)
	}
	best := int64(0)
	for attempt := 0; attempt < 2; attempt++ {
		res := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				h := fnv.New64a()
				h.Write(buf)
				if h.Sum64() == 0 {
					b.Fatal("impossible")
				}
			}
		})
		if attempt == 0 || res.NsPerOp() < best {
			best = res.NsPerOp()
		}
	}
	return best
}

// measureScenarios runs every gated scenario, verifying index-path results
// byte-identical to their scan/hash references before timing.
func measureScenarios() (map[string]BaselineEntry, error) {
	out := make(map[string]BaselineEntry)
	for _, sc := range regressScenarios() {
		eng, opts, err := sc.run()
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		ref, err := eng.Query(sc.Query, engine.Options{Strategy: core.StrategyNaive})
		if err != nil {
			return nil, fmt.Errorf("%s naive reference: %w", sc.Name, err)
		}
		got, err := eng.Query(sc.Query, opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", sc.Name, err)
		}
		if value.Key(got.Value) != value.Key(ref.Value) {
			return nil, fmt.Errorf("%s: result not byte-identical to the naive reference", sc.Name)
		}
		// ns/op is noisy on shared CI runners: measure each scenario twice
		// and keep the faster run (the standard noise floor — slowdowns are
		// noise, speedups are not), so a transient neighbor blip does not
		// trip the gate. allocs/op is deterministic; either run serves.
		var entry BaselineEntry
		for attempt := 0; attempt < 2; attempt++ {
			res := testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := eng.Query(sc.Query, opts); err != nil {
						b.Fatal(err)
					}
				}
			})
			if attempt == 0 || res.NsPerOp() < entry.NsPerOp {
				entry = BaselineEntry{NsPerOp: res.NsPerOp(), AllocsPerOp: res.AllocsPerOp()}
			}
		}
		out[sc.Name] = entry
	}
	return out, nil
}

// WriteBaseline measures the scenario set and writes a fresh baseline.
func WriteBaseline(w io.Writer) error {
	benches, err := measureScenarios()
	if err != nil {
		return err
	}
	b := Baseline{
		CalibrationNsPerOp: calibrate(),
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
		Benches:            benches,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// RunRegressGate measures the scenario set and compares it against the
// baseline: a benchmark regresses when its allocs/op exceed the baseline by
// more than tolerance, or its ns/op exceed the calibration-scaled baseline
// by more than tolerance. Missing baseline entries are reported as "new"
// (not failures), so adding a scenario does not require a lockstep baseline
// refresh.
func RunRegressGate(base *Baseline, tolerance float64) (*RegressReport, error) {
	benches, err := measureScenarios()
	if err != nil {
		return nil, err
	}
	calib := calibrate()
	scale := 1.0
	if base.CalibrationNsPerOp > 0 && calib > 0 {
		scale = float64(calib) / float64(base.CalibrationNsPerOp)
	}
	report := &RegressReport{
		Tolerance:          tolerance,
		CalibrationNsPerOp: calib,
		CalibrationScale:   scale,
		GOMAXPROCS:         runtime.GOMAXPROCS(0),
	}
	names := make([]string, 0, len(benches))
	for n := range benches {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		cur := benches[name]
		r := RegressResult{Name: name, NsPerOp: cur.NsPerOp, AllocsPerOp: cur.AllocsPerOp}
		b, ok := base.Benches[name]
		if !ok {
			r.Status = "new"
			report.Results = append(report.Results, r)
			continue
		}
		r.BaseNs, r.BaseAllocs = b.NsPerOp, b.AllocsPerOp
		r.ScaledNs = float64(b.NsPerOp) * scale
		if r.ScaledNs > 0 {
			r.NsRatio = float64(cur.NsPerOp) / r.ScaledNs
		}
		if b.AllocsPerOp > 0 {
			r.AllocsRatio = float64(cur.AllocsPerOp) / float64(b.AllocsPerOp)
		}
		r.Status = "ok"
		if r.NsRatio > 1+tolerance || r.AllocsRatio > 1+tolerance {
			r.Status = "regression"
			report.Regressions++
		}
		report.Results = append(report.Results, r)
	}
	return report, nil
}

// ReadBaseline parses a committed baseline.
func ReadBaseline(r io.Reader) (*Baseline, error) {
	var b Baseline
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("parsing baseline: %w", err)
	}
	if b.Benches == nil {
		return nil, fmt.Errorf("baseline has no benches")
	}
	return &b, nil
}

// WriteJSON emits the report as indented JSON.
func (r *RegressReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print renders the report as an aligned table.
func (r *RegressReport) Print(w io.Writer) {
	out := Table{
		Title:   fmt.Sprintf("bench-regression gate (tolerance %.0f%%, calibration scale %.2fx)", r.Tolerance*100, r.CalibrationScale),
		Headers: []string{"bench", "ns/op", "base(scaled)", "ns ratio", "allocs", "base", "ratio", "status"},
	}
	for _, res := range r.Results {
		out.Add(res.Name, res.NsPerOp, fmt.Sprintf("%.0f", res.ScaledNs),
			fmt.Sprintf("%.2f", res.NsRatio), res.AllocsPerOp, res.BaseAllocs,
			fmt.Sprintf("%.2f", res.AllocsRatio), res.Status)
	}
	out.Note("ns/op compared against the baseline scaled by the calibration ratio; allocs/op compared directly")
	if r.Regressions > 0 {
		out.Note("%d benchmark(s) regressed beyond the tolerance — refresh the baseline only for intentional changes (go run ./cmd/benchdiff -update)", r.Regressions)
	}
	out.Print(w)
}
