package benchkit

import (
	"fmt"
	"io"

	"tmdb/internal/datagen"
	"tmdb/internal/engine"
)

// B9: the vectorized batch pipeline. The B1–B8 experiments compare logical
// strategies, join implementations, and access paths; B9 holds the plan
// fixed — one scan→filter→hash-join→project shape — and varies only the
// physical row-movement protocol: row-at-a-time Volcano iteration, fixed
// batch sizes, and the cost model's auto choice. The gap is pure per-tuple
// interface dispatch plus governor polling, which is exactly what the batch
// protocol exists to amortize.

// MeasureBatch executes the query serially with an explicit batch-size pin
// (-1 = row-at-a-time, 0 = cost-chosen, n > 0 = batches of n), repeating
// reps times and keeping the minimum duration.
func MeasureBatch(eng *engine.Engine, q string, batch, reps int) Run {
	if reps < 1 {
		reps = 1
	}
	out := Run{}
	for i := 0; i < reps; i++ {
		res, err := eng.Query(q, engine.Options{Parallelism: 1, BatchSize: batch})
		if err != nil {
			out.Err = err
			return out
		}
		if i == 0 || res.Duration < out.Duration {
			out.Duration = res.Duration
			out.Steps = res.EvalSteps
		}
		out.Value = res.Value
		out.Batch = res.Batch
	}
	return out
}

// RunB9 measures the vectorized batch pipeline: scan→filter→hash-join→
// project at n=2000, row-at-a-time vs fixed batch sizes vs the auto
// (cost-chosen) protocol, with every variant checked byte-identical to the
// row run. At full scale the 1024-row batch must clear 1.5× the row
// throughput — the acceptance bar for the vectorized core.
func RunB9(w io.Writer, quick bool) error {
	n := 2000
	if quick {
		n = 200
	}
	// Keys = n keeps the join selective, so the pipeline's cost sits in the
	// scans, filters, and probes — the loops the batch protocol tightens —
	// rather than in materializing a large duplicate-heavy output.
	cat, db := datagen.XYZ(datagen.Spec{
		NX: n, NY: n, NZ: 0, Keys: n, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 7,
	})
	eng := engine.New(cat, db)
	q := `SELECT x.b FROM X x, Y y WHERE x.b = y.d AND y.a < 3 AND x.b < 250`

	row := MeasureBatch(eng, q, -1, 7)
	if row.Err != nil {
		return fmt.Errorf("B9 row: %w", row.Err)
	}
	out := Table{
		Title:   fmt.Sprintf("B9: vectorized batch pipeline (scan→filter→hash join→project, n=%d)", n),
		Headers: []string{"execution", "batch", "|result|", "time", "speedup vs row", "check"},
	}
	out.Add("row-at-a-time", "row", row.Value.Len(), row.Duration, "1.0x", "ok")

	var best Run
	for _, size := range []int{64, 256, 1024} {
		r := MeasureBatch(eng, q, size, 7)
		if err := VerifyAgainst(fmt.Sprintf("B9 batch=%d", size), row.Value, r); err != nil {
			return err
		}
		out.Add("batched", size, r.Value.Len(), r.Duration, Speedup(row.Duration, r.Duration),
			CheckAgainst(row.Value, r))
		if best.Duration == 0 || r.Duration < best.Duration {
			best = r
		}
	}
	auto := MeasureBatch(eng, q, 0, 7)
	if err := VerifyAgainst("B9 auto", row.Value, auto); err != nil {
		return err
	}
	autoBatch := "row"
	if auto.Batch > 0 {
		autoBatch = fmt.Sprintf("%d", auto.Batch)
	}
	out.Add("auto (cost-chosen)", autoBatch, auto.Value.Len(), auto.Duration,
		Speedup(row.Duration, auto.Duration), CheckAgainst(row.Value, auto))
	out.Note("same plan throughout — only the row-movement protocol varies (vectorized batches amortize per-tuple dispatch and governor polling)")
	out.Print(w)

	// Acceptance bar (full scale only; quick workloads are too small for a
	// stable ratio): the best batch size must clear 1.5× row throughput.
	if !quick && best.Duration > 0 && float64(row.Duration)/float64(best.Duration) < 1.5 {
		return fmt.Errorf("B9: batch execution %.2fx over row-at-a-time, want >= 1.5x",
			float64(row.Duration)/float64(best.Duration))
	}
	return nil
}
