package benchkit

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

// Parallel benchmark reporting: the B-series experiments re-run serial vs
// partitioned-parallel over the hash join family, measured with the standard
// testing.Benchmark machinery (ops, ns/op, allocs/op, bytes/op), and emitted
// as BENCH_parallel.json so the performance trajectory — wall-clock speedup
// and the allocation count of the key path — is tracked across PRs.
// Correctness is enforced inline: a parallel run whose result is not
// bit-identical to the serial run fails the report.

// ParallelBenchResult is one measured (experiment, degree) configuration.
type ParallelBenchResult struct {
	ID          string `json:"id"`
	Query       string `json:"query"`
	N           int    `json:"n"`
	Mode        string `json:"mode"` // "serial" | "parallel"
	Parallelism int    `json:"parallelism"`
	Ops         int    `json:"ops"`
	NsPerOp     int64  `json:"ns_per_op"`
	AllocsPerOp int64  `json:"allocs_per_op"`
	BytesPerOp  int64  `json:"bytes_per_op"`
	// EvalSteps is the machine-independent work measure for one execution;
	// serial and parallel perform identical evaluation work by construction.
	EvalSteps int64 `json:"eval_steps"`
	// SpeedupVsSerial is serial ns/op ÷ this configuration's ns/op (1.0 for
	// the serial rows). On a single-core host this hovers near 1; the
	// partitioned operators need real cores to convert into wall-clock.
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

// ParallelBenchReport is the BENCH_parallel.json payload. GOMAXPROCS and
// NumCPU record the hardware the numbers were measured on — consumers must
// read them before trusting SpeedupVsSerial, since a single-core host cannot
// convert partitioned execution into wall-clock speedup.
type ParallelBenchReport struct {
	GOMAXPROCS int  `json:"gomaxprocs"`
	NumCPU     int  `json:"num_cpu"`
	Quick      bool `json:"quick"`
	// Warning is set when the measurement environment makes the speedup
	// column misleading (one usable core → speedup ≈ 1× by construction).
	Warning string                `json:"warning,omitempty"`
	Results []ParallelBenchResult `json:"results"`
}

// singleCPUWarning is recorded in the artifact and printed whenever parallel
// speedup is measured without real parallelism available.
const singleCPUWarning = "measured with a single usable CPU: parallel speedup ≈ 1x is an artifact " +
	"of the hardware, not the operators; re-run on a multi-core host for wall-clock effects"

// parallelCase is one B-series workload in the serial-vs-parallel ablation.
type parallelCase struct {
	id    string
	query string
	env   func(n int) Env
	n     int
}

// parallelCases returns the B1–B5 workloads at benchmark scale (n >= 2000
// rows on the outer relation; quick shrinks for CI smoke).
func parallelCases(quick bool) []parallelCase {
	n := 2000
	if quick {
		n = 200
	}
	xyz := func(ny, nz int) func(int) Env {
		return func(n int) Env {
			cat, db := datagen.XYZ(datagen.Spec{
				NX: n, NY: ny * n / 1000, NZ: nz * n / 1000,
				Keys: n / 4, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 7,
			})
			return Env{Cat: cat, DB: db}
		}
	}
	rs := func(n int) Env {
		cat, db := datagen.RS(n, 2*n, n/5, 0.3, 11)
		return Env{Cat: cat, DB: db}
	}
	return []parallelCase{
		{"B1", `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`, xyz(2000, 0), n},
		{"B2", `SELECT x FROM X x WHERE x.b NOT IN SELECT y.d FROM Y y WHERE x.b = y.d`, xyz(2000, 0), n},
		{"B3", `SELECT r FROM R r WHERE r.B = COUNT(SELECT s.D FROM S s WHERE r.C = s.C)`, rs, n},
		{"B4", `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`, xyz(4000, 0), n},
		{"B5", `SELECT x FROM X x
 WHERE x.a SUBSETEQ
   SELECT y.a FROM Y y
   WHERE x.b = y.b AND
     y.c SUBSETEQ SELECT z.c FROM Z z WHERE y.d = z.d`, xyz(2000, 2000), n},
	}
}

// RunParallelBench measures every B-series case serial vs parallel at the
// given degree (<= 0 picks GOMAXPROCS, floored at 4 so the partitioned path
// is exercised even on small hosts) and returns the report. A parallel
// result that is not bit-identical to the serial result is an error.
func RunParallelBench(quick bool, par int) (*ParallelBenchReport, error) {
	if par <= 0 {
		par = runtime.GOMAXPROCS(0)
		if par < 4 {
			par = 4
		}
	}
	report := &ParallelBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
	}
	if report.GOMAXPROCS < 2 || report.NumCPU < 2 {
		report.Warning = singleCPUWarning
	}
	for _, c := range parallelCases(quick) {
		env := c.env(c.n)
		eng := env.Engine()
		serialOpts := engine.Options{Strategy: core.StrategyNestJoin, Joins: planner.ImplHash, Parallelism: 1}
		parOpts := serialOpts
		parOpts.Parallelism = par

		serialRes, err := eng.Query(c.query, serialOpts)
		if err != nil {
			return nil, fmt.Errorf("%s serial: %w", c.id, err)
		}
		parRes, err := eng.Query(c.query, parOpts)
		if err != nil {
			return nil, fmt.Errorf("%s parallel: %w", c.id, err)
		}
		if value.Key(parRes.Value) != value.Key(serialRes.Value) {
			return nil, fmt.Errorf("%s: parallel result not bit-identical to serial", c.id)
		}

		serialBench := benchQuery(eng, c.query, serialOpts)
		parBench := benchQuery(eng, c.query, parOpts)
		speedup := 0.0
		if parBench.NsPerOp() > 0 {
			speedup = float64(serialBench.NsPerOp()) / float64(parBench.NsPerOp())
		}
		report.Results = append(report.Results,
			ParallelBenchResult{
				ID: c.id, Query: c.query, N: c.n, Mode: "serial", Parallelism: 1,
				Ops: serialBench.N, NsPerOp: serialBench.NsPerOp(),
				AllocsPerOp: serialBench.AllocsPerOp(), BytesPerOp: serialBench.AllocedBytesPerOp(),
				EvalSteps: serialRes.EvalSteps, SpeedupVsSerial: 1.0,
			},
			ParallelBenchResult{
				ID: c.id, Query: c.query, N: c.n, Mode: "parallel", Parallelism: par,
				Ops: parBench.N, NsPerOp: parBench.NsPerOp(),
				AllocsPerOp: parBench.AllocsPerOp(), BytesPerOp: parBench.AllocedBytesPerOp(),
				EvalSteps: parRes.EvalSteps, SpeedupVsSerial: speedup,
			})
	}
	return report, nil
}

// benchQuery measures one configuration with the standard benchmark driver.
func benchQuery(eng *engine.Engine, q string, opts engine.Options) testing.BenchmarkResult {
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := eng.Query(q, opts); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// WriteJSON emits the report as indented JSON.
func (r *ParallelBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Print renders the report as an aligned table (the human-readable twin of
// the JSON artifact).
func (r *ParallelBenchReport) Print(w io.Writer) {
	out := Table{
		Title:   fmt.Sprintf("serial vs parallel hash joins (GOMAXPROCS=%d)", r.GOMAXPROCS),
		Headers: []string{"exp", "n", "mode", "par", "ns/op", "allocs/op", "speedup"},
	}
	for _, res := range r.Results {
		out.Add(res.ID, res.N, res.Mode, res.Parallelism, res.NsPerOp, res.AllocsPerOp,
			fmt.Sprintf("%.2fx", res.SpeedupVsSerial))
	}
	out.Note("parallel results verified bit-identical to serial before measuring")
	if r.Warning != "" {
		out.Note("WARNING: %s", r.Warning)
	}
	out.Print(w)
}
