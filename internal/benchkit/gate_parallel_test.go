package benchkit

import (
	"os"
	"strings"
	"testing"
)

func multiCoreReport() *ParallelBenchReport {
	return &ParallelBenchReport{
		GOMAXPROCS: 8, NumCPU: 8,
		Results: []ParallelBenchResult{
			{ID: "B1", Mode: "serial", Parallelism: 1, SpeedupVsSerial: 1.0},
			{ID: "B1", Mode: "parallel", Parallelism: 4, SpeedupVsSerial: 2.4},
			{ID: "B2", Mode: "serial", Parallelism: 1, SpeedupVsSerial: 1.0},
			{ID: "B2", Mode: "parallel", Parallelism: 4, SpeedupVsSerial: 1.7},
		},
	}
}

func TestGateParallelOKAndFailed(t *testing.T) {
	g := GateParallel(multiCoreReport(), 1.5, 8)
	if g.Status != "ok" || g.Failures != 0 || len(g.Checked) != 2 {
		t.Fatalf("gate = %+v, want ok over 2 parallel rows", g)
	}
	g = GateParallel(multiCoreReport(), 2.0, 8)
	if g.Status != "failed" || g.Failures != 1 {
		t.Fatalf("gate = %+v, want failed with 1 failure (B2 at 1.7x < 2.0x)", g)
	}
}

// TestGateParallelSkipsExplicitly locks in the skip semantics: a warning in
// the artifact, a single-CPU artifact (even without the warning field — older
// committed reports predate it), or a single-CPU current host each produce an
// explicit skipped status carrying the regeneration recipe, never a silent
// pass.
func TestGateParallelSkipsExplicitly(t *testing.T) {
	cases := []struct {
		name   string
		report *ParallelBenchReport
		procs  int
		why    string
	}{
		{"artifact-warning", &ParallelBenchReport{GOMAXPROCS: 8, NumCPU: 8, Warning: singleCPUWarning,
			Results: multiCoreReport().Results}, 8, "artifact warning"},
		{"artifact-single-cpu-no-warning", &ParallelBenchReport{GOMAXPROCS: 1, NumCPU: 1,
			Results: multiCoreReport().Results}, 8, "single-CPU host"},
		{"current-host-single-cpu", multiCoreReport(), 1, "GOMAXPROCS=1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			g := GateParallel(tc.report, 1.5, tc.procs)
			if g.Status != "skipped" {
				t.Fatalf("status = %q, want skipped", g.Status)
			}
			if !strings.Contains(g.Reason, tc.why) {
				t.Fatalf("reason %q does not name the cause %q", g.Reason, tc.why)
			}
			if !strings.Contains(g.Reason, "go run ./cmd/repro -parbench") {
				t.Fatalf("reason %q lost the regeneration recipe", g.Reason)
			}
			if g.Failures != 0 || len(g.Checked) != 0 {
				t.Fatalf("skipped gate still checked rows: %+v", g)
			}
			var sb strings.Builder
			g.Print(&sb)
			if !strings.Contains(sb.String(), "SKIPPED") {
				t.Fatalf("printed gate does not say SKIPPED:\n%s", sb.String())
			}
		})
	}
}

// TestGateParallelCommittedArtifact runs the gate over the repo's committed
// BENCH_parallel.json: measured on a single-CPU host, it must skip, not pass.
func TestGateParallelCommittedArtifact(t *testing.T) {
	f, err := os.Open("../../BENCH_parallel.json")
	if err != nil {
		t.Skipf("no committed artifact: %v", err)
	}
	defer f.Close()
	rep, err := ReadParallelReport(f)
	if err != nil {
		t.Fatal(err)
	}
	g := GateParallel(rep, 1.5, 8)
	if rep.GOMAXPROCS < 2 || rep.NumCPU < 2 || rep.Warning != "" {
		if g.Status != "skipped" {
			t.Fatalf("single-CPU committed artifact gated as %q, want skipped", g.Status)
		}
	} else if g.Status == "skipped" {
		t.Fatalf("multi-core committed artifact skipped: %s", g.Reason)
	}
}
