package enginetest

import (
	"fmt"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

// The acceptance property for the cost-based planner, measured in EvalSteps
// (the engine's machine-independent work counter) over the bench_test.go XYZ
// workload shapes: the auto-selected plan must never do more work than the
// worst fixed strategy × join combination, and on the larger instances it
// must land with the best combination's family rather than a quadratic
// fallback.

type fixedCombo struct {
	s  core.Strategy
	ji planner.JoinImpl
}

func fixedCombos() []fixedCombo {
	var out []fixedCombo
	for _, s := range []core.Strategy{core.StrategyNaive, core.StrategyNestJoin, core.StrategyOuterJoin} {
		for _, ji := range []planner.JoinImpl{planner.ImplNestedLoop, planner.ImplHash, planner.ImplMerge} {
			out = append(out, fixedCombo{s, ji})
		}
	}
	return out
}

func TestAutoNeverWorseThanWorstFixed(t *testing.T) {
	workloads := []struct {
		name string
		n    int
		q    string
	}{
		{"b1-in-subquery", 200, `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`},
		{"b2-grouped-count", 120, `SELECT x FROM X x WHERE COUNT(SELECT y.a FROM Y y WHERE x.b = y.d AND y.d = x.b) >= COUNT({1})`},
		{"b4-subseteq-nest", 150, `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`},
	}
	for _, w := range workloads {
		t.Run(w.name, func(t *testing.T) {
			cat, db := datagen.XYZ(datagen.Spec{
				NX: w.n, NY: 2 * w.n, NZ: 0, Keys: max(1, w.n/4),
				DanglingFrac: 0.25, SetAttrCard: 3, Seed: 7,
			})
			eng := engine.New(cat, db)

			var worst, best int64 = 0, 1 << 62
			var oracle value.Value
			ran := 0
			for _, c := range fixedCombos() {
				res, err := eng.Query(w.q, engine.Options{Strategy: c.s, Joins: c.ji})
				if err != nil {
					if SkippableError(err) {
						continue
					}
					t.Fatalf("%s×%s: %v", c.s, c.ji, err)
				}
				ran++
				if oracle.Kind() == 0 && c.s == core.StrategyNaive {
					oracle = res.Value
				}
				if res.EvalSteps > worst {
					worst = res.EvalSteps
				}
				if res.EvalSteps < best {
					best = res.EvalSteps
				}
			}
			if ran < 3 {
				t.Fatalf("only %d fixed combinations ran", ran)
			}

			auto, err := eng.Query(w.q, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if !auto.Auto {
				t.Fatal("zero Options did not take the cost-based path")
			}
			if !value.Equal(auto.Value, oracle) {
				t.Error("auto result differs from the naive oracle")
			}
			if auto.EvalSteps > worst {
				t.Errorf("auto (%d steps) is worse than the worst fixed combination (%d steps)",
					auto.EvalSteps, worst)
			}
			// On these equi-key workloads the winner is a flattening strategy
			// with a non-quadratic join family; auto must land within 2× of
			// the measured best, not merely beat the worst.
			if auto.EvalSteps > 2*best {
				t.Errorf("auto (%d steps) is not competitive with the best fixed combination (%d steps)",
					auto.EvalSteps, best)
			}
			if auto.Strategy == core.StrategyNaive {
				t.Error("auto picked naive evaluation on a flattenable workload")
			}
			if auto.Joins == planner.ImplNestedLoop {
				t.Error("auto picked nested loops despite an extractable equi-key")
			}
		})
	}
}

// TestAutoTracksBestAsInputGrows pins the large-N acceptance criterion: as
// the workload grows, the auto choice must coincide with the family of the
// measured-best fixed combination (flattening + hash-family join).
func TestAutoTracksBestAsInputGrows(t *testing.T) {
	q := `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`
	for _, n := range []int{100, 400} {
		t.Run(fmt.Sprintf("n=%d", n), func(t *testing.T) {
			cat, db := datagen.XYZ(datagen.Spec{
				NX: n, NY: 10 * n, NZ: 0, Keys: max(1, n/4),
				DanglingFrac: 0.25, SetAttrCard: 3, Seed: 7,
			})
			eng := engine.New(cat, db)

			var bestCombo fixedCombo
			var bestSteps int64 = 1 << 62
			for _, c := range fixedCombos() {
				res, err := eng.Query(q, engine.Options{Strategy: c.s, Joins: c.ji})
				if err != nil {
					if SkippableError(err) {
						continue
					}
					t.Fatal(err)
				}
				if res.EvalSteps < bestSteps {
					bestSteps, bestCombo = res.EvalSteps, c
				}
			}
			auto, err := eng.Query(q, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if auto.Strategy != bestCombo.s {
				t.Errorf("auto strategy %s, measured best %s (%d steps)",
					auto.Strategy, bestCombo.s, bestSteps)
			}
			if auto.EvalSteps > 2*bestSteps {
				t.Errorf("auto %d steps vs best %d", auto.EvalSteps, bestSteps)
			}
		})
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
