package enginetest

import (
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

// Conformance across mutations: the engine-level guarantee that a mutated
// table never serves stale plans or statistics. Each phase mutates the data
// a different way (sealed insert through the engine, predicate delete,
// direct storage seal→unseal→bulk-load→reseal cycle), and after every phase
// the cost-based auto path must agree byte-for-byte with a freshly computed
// naive oracle — at parallelism degrees 1, 2, and 8, and with persistent
// indexes registered so the idxjoin family participates. CI runs this
// package under -race, which also exercises the copy-on-write snapshot
// contract between mutators and parallel workers.

// mutationQueries are the conformance queries for the mutation cycles; they
// jointly touch X, Y, and Z through semijoin, antijoin, and nest-join paths.
var mutationQueries = []string{
	`SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
	`SELECT x FROM X x WHERE x.b NOT IN SELECT y.d FROM Y y WHERE x.b = y.d`,
	`SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`,
	`SELECT (xb = x.b, zc = z.c) FROM X x, Z z WHERE x.b = z.d`,
}

func yRow(a, b, c, d int64) value.Value {
	return value.TupleOf(
		value.F("a", value.Int(a)), value.F("b", value.Int(b)),
		value.F("c", value.SetOf(value.Int(c))), value.F("d", value.Int(d)),
	)
}

// TestConformanceAcrossMutationCycles is the seal→mutate→reseal conformance
// axis: auto ≡ naive, byte-identical, after every mutation phase and at
// every parallelism degree.
func TestConformanceAcrossMutationCycles(t *testing.T) {
	eng := OpenDB("xyz")
	for _, ix := range [][2]string{{"Y", "d"}, {"Y", "b"}, {"Z", "d"}} {
		if err := eng.CreateIndex(ix[0], ix[1]); err != nil {
			t.Fatal(err)
		}
	}

	phases := []struct {
		name   string
		mutate func(t *testing.T)
	}{
		{"initial", func(t *testing.T) {}},
		{"engine-insert", func(t *testing.T) {
			if _, err := eng.InsertValue("Y", yRow(1, 2, 3, 424242)); err != nil {
				t.Fatal(err)
			}
			if _, err := eng.InsertValue("Y", yRow(1, 3, 4, 0)); err != nil {
				t.Fatal(err)
			}
		}},
		{"engine-delete", func(t *testing.T) {
			n, err := eng.Delete("Y", "y", "y.d < 0")
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Fatal("delete phase removed nothing (dangling Y rows expected)")
			}
		}},
		{"storage-reseal-cycle", func(t *testing.T) {
			// Bypass the engine entirely: the epoch vector in the plan-cache
			// key must still invalidate, with no explicit sweep.
			tab, _ := eng.DB().Table("Z")
			tab.Unseal()
			tab.MustInsert(value.TupleOf(value.F("c", value.Int(77)), value.F("d", value.Int(1))))
			tab.MustInsert(value.TupleOf(value.F("c", value.Int(78)), value.F("d", value.Int(-5))))
			tab.Seal()
		}},
	}

	for _, ph := range phases {
		ph.mutate(t)
		for qi, q := range mutationQueries {
			oracle, err := eng.Query(q, engine.Options{Strategy: core.StrategyNaive})
			if err != nil {
				t.Fatalf("%s q%d naive: %v", ph.name, qi, err)
			}
			oracleKey := value.Key(oracle.Value)
			for _, par := range []int{1, 2, 8} {
				res, err := eng.Query(q, engine.Options{Parallelism: par})
				if err != nil {
					t.Fatalf("%s q%d par %d: %v", ph.name, qi, par, err)
				}
				if value.Key(res.Value) != oracleKey {
					t.Errorf("%s q%d par %d: auto result not byte-identical to naive oracle",
						ph.name, qi, par)
				}
			}
			// The pinned idxjoin family must agree too (index probes after
			// incremental maintenance and full rebuilds).
			res, err := eng.Query(q, engine.Options{Strategy: core.StrategyNestJoin, Joins: planner.ImplIndex})
			if err != nil {
				t.Fatalf("%s q%d idxjoin: %v", ph.name, qi, err)
			}
			if value.Key(res.Value) != oracleKey {
				t.Errorf("%s q%d: idxjoin result not byte-identical to naive oracle", ph.name, qi)
			}
		}
	}
}

// TestMutationInvalidationIsPerTable checks the cache behavior end to end in
// the harness environment: mutating Y discards only plans touching Y —
// including via the epoch vector when storage is mutated directly — while
// plans over other tables keep hitting.
func TestMutationInvalidationIsPerTable(t *testing.T) {
	eng := OpenDB("xyz")
	qY := mutationQueries[0] // touches X and Y
	qZ := `SELECT z.c FROM Z z WHERE z.d = 1`
	for _, q := range []string{qY, qZ} {
		if _, err := eng.Query(q, engine.Options{}); err != nil {
			t.Fatal(err)
		}
	}

	// Direct storage mutation: no engine sweep runs, the epoch vector alone
	// must force the replan.
	tab, _ := eng.DB().Table("Y")
	if _, err := tab.InsertSealed(yRow(9, 9, 9, 909090)); err != nil {
		t.Fatal(err)
	}
	resY, err := eng.Query(qY, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if resY.CacheHit {
		t.Error("epoch mismatch must force a replan after direct storage mutation")
	}
	resZ, err := eng.Query(qZ, engine.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !resZ.CacheHit {
		t.Error("plans over untouched tables must stay cached")
	}
}

// TestGoldensWithIndexesStayConformant re-runs the full golden table with
// indexes registered on every integer key attribute of the sample databases,
// so index-backed candidates compete everywhere the shapes allow, under the
// full strategy × family matrix.
func TestGoldensWithIndexesStayConformant(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix; covered by the enginetest race job")
	}
	indexed := map[string][][2]string{
		"xyz":    {{"X", "b"}, {"Y", "b"}, {"Y", "d"}, {"Z", "c"}, {"Z", "d"}},
		"rs":     {{"R", "C"}, {"S", "C"}},
		"table1": {{"X", "d"}, {"Y", "b"}},
	}
	for _, g := range Goldens {
		ixs, ok := indexed[g.DB]
		if !ok {
			continue
		}
		t.Run(g.Name, func(t *testing.T) {
			eng := OpenDB(g.DB)
			for _, ix := range ixs {
				if err := eng.CreateIndex(ix[0], ix[1]); err != nil {
					t.Fatal(err)
				}
			}
			oracle, err := eng.Query(g.Query, engine.Options{Strategy: core.StrategyNaive})
			if err != nil {
				t.Fatal(err)
			}
			for _, s := range Strategies() {
				for _, ji := range JoinImpls() {
					res, err := eng.Query(g.Query, engine.Options{Strategy: s, Joins: ji})
					if err != nil {
						if SkippableError(err) {
							continue
						}
						t.Errorf("%s×%s: %v", s, ji, err)
						continue
					}
					if value.Equal(res.Value, oracle.Value) {
						continue
					}
					if s == core.StrategyKim && g.KimBuggy {
						continue
					}
					t.Errorf("%s×%s: result differs from naive oracle (%d vs %d rows)",
						s, ji, res.Value.Len(), oracle.Value.Len())
				}
			}
		})
	}
}

// TestIndexedGoldenExplainsShowIdxJoin: with indexes registered, at least
// one golden must actually have the optimizer choose the idxjoin family —
// otherwise the index-aware candidates have gone stale.
func TestIndexedGoldenExplainsShowIdxJoin(t *testing.T) {
	eng := OpenDB("xyz")
	for _, ix := range [][2]string{{"Y", "b"}, {"Y", "d"}, {"Z", "d"}} {
		if err := eng.CreateIndex(ix[0], ix[1]); err != nil {
			t.Fatal(err)
		}
	}
	chosen := 0
	for _, g := range Goldens {
		if g.DB != "xyz" {
			continue
		}
		res, err := eng.Query(g.Query, engine.Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if res.Joins == planner.ImplIndex {
			chosen++
		}
	}
	if chosen == 0 {
		t.Error("no xyz golden picks the idxjoin family despite live indexes")
	}
}
