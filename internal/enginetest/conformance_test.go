package enginetest

import (
	"fmt"
	"strings"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/engine"
	"tmdb/internal/value"
)

// TestConformance executes every golden query under every strategy × join
// implementation and asserts all combinations agree with the naive oracle
// (order-normalized: results are canonical sets). Kim is allowed to lose
// dangling tuples on queries flagged KimBuggy; hash/merge combinations are
// skipped where the plan has no equi-key.
func TestConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy × impl matrix; run without -short (CI's dedicated enginetest race job covers it)")
	}
	for _, g := range Goldens {
		t.Run(g.Name, func(t *testing.T) {
			eng := OpenDB(g.DB)
			oracle, err := eng.Query(g.Query, engine.Options{Strategy: core.StrategyNaive})
			if err != nil {
				t.Fatalf("naive oracle: %v", err)
			}
			ran, skipped := 0, 0
			for _, s := range Strategies() {
				for _, ji := range JoinImpls() {
					name := fmt.Sprintf("%s×%s", s, ji)
					res, err := eng.Query(g.Query, engine.Options{Strategy: s, Joins: ji})
					if err != nil {
						if SkippableError(err) {
							skipped++
							continue
						}
						t.Errorf("%s: %v", name, err)
						continue
					}
					ran++
					if value.Equal(res.Value, oracle.Value) {
						continue
					}
					if s == core.StrategyKim && g.KimBuggy {
						// The documented COUNT-bug family: Kim may lose
						// dangling tuples, never invent extra ones.
						if extra := value.Diff(res.Value, oracle.Value); extra.Len() > 0 {
							t.Errorf("%s: Kim produced %d tuples outside the nested semantics", name, extra.Len())
						}
						continue
					}
					lost := value.Diff(oracle.Value, res.Value)
					extra := value.Diff(res.Value, oracle.Value)
					t.Errorf("%s: result differs from naive oracle (lost %d, extra %d)",
						name, lost.Len(), extra.Len())
				}
			}
			if ran == 0 {
				t.Fatal("no combination executed")
			}
			// Auto and naive never skip, so the matrix can't silently shrink
			// to nothing; cross-check the bookkeeping.
			if ran+skipped != len(Strategies())*len(JoinImpls()) {
				t.Fatalf("matrix accounting broken: ran=%d skipped=%d", ran, skipped)
			}
		})
	}
}

// TestConformanceKimBugReproduces pins the flag semantics: at least one
// KimBuggy golden must actually exhibit the bug, or the flags have gone
// stale.
func TestConformanceKimBugReproduces(t *testing.T) {
	exhibited := 0
	for _, g := range Goldens {
		if !g.KimBuggy {
			continue
		}
		eng := OpenDB(g.DB)
		oracle, err := eng.Query(g.Query, engine.Options{Strategy: core.StrategyNaive})
		if err != nil {
			t.Fatal(err)
		}
		kim, err := eng.Query(g.Query, engine.Options{Strategy: core.StrategyKim})
		if err != nil {
			continue
		}
		if value.Diff(oracle.Value, kim.Value).Len() > 0 {
			exhibited++
		}
	}
	if exhibited == 0 {
		t.Error("no KimBuggy golden actually reproduces the COUNT bug")
	}
}

// TestConformanceExplainRenders asserts EXPLAIN renders for every golden
// query under the auto strategy: a header with the chosen combination and
// per-operator estimates.
func TestConformanceExplainRenders(t *testing.T) {
	for _, g := range Goldens {
		eng := OpenDB(g.DB)
		out, err := eng.Explain(g.Query, engine.Options{})
		if err != nil {
			t.Errorf("%s: Explain: %v", g.Name, err)
			continue
		}
		if !strings.HasPrefix(out, "strategy=") || !strings.Contains(out, " alt=") ||
			!strings.Contains(out, "rows≈") {
			t.Errorf("%s: malformed Explain output:\n%s", g.Name, out)
		}
	}
}
