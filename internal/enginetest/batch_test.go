package enginetest

import (
	"fmt"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/value"
)

// BatchSizes is the set of vectorized batch sizes the harness exercises:
// single-row batches (every per-batch boundary crossed per row), a mid-size,
// and the default capacity.
func BatchSizes() []int { return []int{1, 64, 1024} }

// TestConformanceBatchDeterminism executes every golden query under every
// strategy at every batch size — serially and through the partition
// exchange — and asserts results are bit-identical to the row-at-a-time
// run: not just set-equal but byte-equal under the canonical value
// encoding. Batch size 0 additionally covers the cost-chosen auto path.
func TestConformanceBatchDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy × batch matrix; run without -short (CI's dedicated enginetest race job covers it)")
	}
	for _, g := range Goldens {
		t.Run(g.Name, func(t *testing.T) {
			eng := OpenDB(g.DB)
			for _, s := range Strategies() {
				for _, par := range []int{1, 4} {
					row, err := eng.Query(g.Query, engine.Options{Strategy: s, Parallelism: par, BatchSize: -1})
					if err != nil {
						if SkippableError(err) {
							break // infeasible regardless of batch size
						}
						t.Errorf("%s×par=%d row: %v", s, par, err)
						break
					}
					rowKey := value.Key(row.Value)
					for _, size := range append([]int{0}, BatchSizes()...) {
						name := fmt.Sprintf("%s×par=%d×batch=%d", s, par, size)
						res, err := eng.Query(g.Query, engine.Options{Strategy: s, Parallelism: par, BatchSize: size})
						if err != nil {
							t.Errorf("%s: %v", name, err)
							continue
						}
						if got := value.Key(res.Value); got != rowKey {
							lost := value.Diff(row.Value, res.Value)
							extra := value.Diff(res.Value, row.Value)
							t.Errorf("%s: result not bit-identical to row execution (lost %d, extra %d)",
								name, lost.Len(), extra.Len())
						}
						if size > 0 && res.Batch != size {
							t.Errorf("%s: Result.Batch = %d, want %d", name, res.Batch, size)
						}
					}
				}
			}
		})
	}
}

// TestConformanceBatchExplain asserts EXPLAIN carries the batch size in its
// header for golden queries when vectorized execution is pinned, and stays
// on "row" when pinned off.
func TestConformanceBatchExplain(t *testing.T) {
	for _, g := range Goldens {
		eng := OpenDB(g.DB)
		out, err := eng.Explain(g.Query, engine.Options{BatchSize: 1024})
		if err != nil {
			t.Errorf("%s: Explain: %v", g.Name, err)
			continue
		}
		if !contains(out, "batch=1024") {
			t.Errorf("%s: EXPLAIN misses the batch header:\n%s", g.Name, out)
		}
		if out, err := eng.Explain(g.Query, engine.Options{BatchSize: -1}); err != nil || !contains(out, "batch=row") {
			t.Errorf("%s: row-pinned EXPLAIN misses batch=row (err %v):\n%s", g.Name, err, out)
		}
	}
}

// FuzzBatchMatchesRow is the vectorized-determinism property: over generated
// XYZ schemas and every fuzz query shape, executing at batch sizes 1, 64,
// and 1024 — serially and partitioned — must produce results bit-identical
// to row-at-a-time execution, under both the auto planner and the paper's
// fixed nest-join strategy.
func FuzzBatchMatchesRow(f *testing.F) {
	for qi := range fuzzQueries {
		f.Add(uint8(24), uint8(72), uint8(6), uint8(25), int64(1), uint8(qi))
	}
	f.Add(uint8(0), uint8(0), uint8(0), uint8(99), int64(3), uint8(0))
	f.Add(uint8(47), uint8(95), uint8(11), uint8(50), int64(5), uint8(4))

	f.Fuzz(func(t *testing.T, nx, ny, keys, dangPct uint8, seed int64, qi uint8) {
		spec := fuzzSpec(nx, ny, keys, dangPct, seed)
		cat, db := datagen.XYZ(spec)
		eng := engine.New(cat, db)
		q := fuzzQueries[int(qi)%len(fuzzQueries)]
		for _, s := range []core.Strategy{core.StrategyAuto, core.StrategyNestJoin} {
			for _, par := range []int{1, 4} {
				row, err := eng.Query(q, engine.Options{Strategy: s, Parallelism: par, BatchSize: -1})
				if err != nil {
					t.Fatalf("%s par=%d row: %v", s, par, err)
				}
				want := value.Key(row.Value)
				for _, size := range BatchSizes() {
					res, err := eng.Query(q, engine.Options{Strategy: s, Parallelism: par, BatchSize: size})
					if err != nil {
						t.Fatalf("%s par=%d batch=%d: %v", s, par, size, err)
					}
					if value.Key(res.Value) != want {
						t.Fatalf("%s par=%d batch=%d differs from row execution on spec %+v:\nquery: %s",
							s, par, size, spec, q)
					}
				}
			}
		}
	})
}
