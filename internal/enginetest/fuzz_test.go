package enginetest

import (
	"strings"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/value"
)

// fuzzQueries are the shapes the property runs over generated schemas: each
// exercises a different translation path (semijoin, antijoin, nest join,
// flat join, chain, naive fallback).
var fuzzQueries = []string{
	`SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
	`SELECT x FROM X x WHERE x.b NOT IN SELECT y.d FROM Y y WHERE x.b = y.d`,
	`SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`,
	`SELECT (xb = x.b, zc = z.c) FROM X x, Z z WHERE x.b = z.d`,
	`SELECT x FROM X x
 WHERE x.a SUBSETEQ
   SELECT y.a FROM Y y
   WHERE x.b = y.b AND
     y.c SUBSETEQ SELECT z.c FROM Z z WHERE y.d = z.d`,
	`SELECT (b = x.b, n = COUNT(SELECT y.a FROM Y y WHERE x.b = y.d)) FROM X x`,
}

// fuzzSpec clamps raw fuzz inputs into a valid, small generator spec.
func fuzzSpec(nx, ny, keys, dangPct uint8, seed int64) datagen.Spec {
	return datagen.Spec{
		NX:           1 + int(nx)%48,
		NY:           1 + int(ny)%96,
		NZ:           1 + int(ny)%48,
		Keys:         1 + int(keys)%12,
		DanglingFrac: float64(dangPct%100) / 100,
		SetAttrCard:  1 + int(keys)%4,
		Seed:         seed,
	}
}

// FuzzAutoMatchesNaive is the planner property test: over generated XYZ
// schemas, the cost-based plan's result must equal the naive oracle's, and
// EXPLAIN must render without error. The seed corpus covers every query
// shape and runs under plain `go test`; `go test -fuzz=FuzzAutoMatchesNaive`
// explores further.
func FuzzAutoMatchesNaive(f *testing.F) {
	for qi := range fuzzQueries {
		f.Add(uint8(24), uint8(72), uint8(6), uint8(25), int64(1), uint8(qi))
	}
	// Degenerate corners: single-row tables, all-dangling, single key.
	f.Add(uint8(0), uint8(0), uint8(0), uint8(99), int64(3), uint8(0))
	f.Add(uint8(1), uint8(48), uint8(0), uint8(0), int64(4), uint8(2))
	f.Add(uint8(47), uint8(95), uint8(11), uint8(50), int64(5), uint8(4))

	f.Fuzz(func(t *testing.T, nx, ny, keys, dangPct uint8, seed int64, qi uint8) {
		spec := fuzzSpec(nx, ny, keys, dangPct, seed)
		cat, db := datagen.XYZ(spec)
		eng := engine.New(cat, db)
		q := fuzzQueries[int(qi)%len(fuzzQueries)]

		oracle, err := eng.Query(q, engine.Options{Strategy: core.StrategyNaive})
		if err != nil {
			t.Fatalf("naive oracle failed on valid query: %v", err)
		}
		auto, err := eng.Query(q, engine.Options{})
		if err != nil {
			t.Fatalf("auto failed where naive succeeded: %v", err)
		}
		if !value.Equal(auto.Value, oracle.Value) {
			t.Fatalf("auto (%s × %s) differs from naive on spec %+v:\nquery: %s",
				auto.Strategy, auto.Joins, spec, q)
		}
		if auto.Strategy == core.StrategyKim {
			t.Fatal("auto selected Kim")
		}

		out, err := eng.Explain(q, engine.Options{})
		if err != nil {
			t.Fatalf("Explain: %v", err)
		}
		if !strings.HasPrefix(out, "strategy=") || !strings.Contains(out, "rows≈") {
			t.Fatalf("malformed Explain:\n%s", out)
		}
	})
}

// FuzzStatsAnalyze hardens the statistics collector against arbitrary
// generator parameters: Analyze must never panic and must report sane
// figures (cardinality within bounds, selectivities in (0, 1]).
func FuzzStatsAnalyze(f *testing.F) {
	f.Add(uint8(10), uint8(20), uint8(3), uint8(30), int64(2))
	f.Add(uint8(0), uint8(0), uint8(0), uint8(0), int64(0))
	f.Fuzz(func(t *testing.T, nx, ny, keys, dangPct uint8, seed int64) {
		spec := fuzzSpec(nx, ny, keys, dangPct, seed)
		cat, db := datagen.XYZ(spec)
		eng := engine.New(cat, db)
		sc := eng.Analyze()
		for _, name := range sc.Names() {
			ts := sc.Table(name)
			tab, ok := eng.DB().Table(name)
			if !ok || ts.Card != tab.Len() {
				t.Fatalf("%s: card %d", name, ts.Card)
			}
			for attr, d := range ts.Distinct {
				if d <= 0 || d > ts.Card {
					t.Fatalf("%s.%s: distinct %d of %d rows", name, attr, d, ts.Card)
				}
				if s := ts.Selectivity(attr); s <= 0 || s > 1 {
					t.Fatalf("%s.%s: selectivity %v", name, attr, s)
				}
			}
		}
		if fr := sc.DanglingFrac("X", "b", "Y", "d"); fr < 0 || fr > 1 {
			t.Fatalf("dangling fraction %v", fr)
		}
	})
}
