package enginetest

import (
	"fmt"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/value"
)

// ParallelDegrees is the set of partitioned-execution degrees the harness
// exercises: serial, the smallest parallel degree, and one well above any
// CI core count (degree may exceed GOMAXPROCS; partitions just share cores).
func ParallelDegrees() []int { return []int{1, 2, 8} }

// TestConformanceParallelDeterminism executes every golden query under every
// strategy at every parallelism degree and asserts results are bit-identical
// to the serial run: not just set-equal but byte-equal under the canonical
// value encoding, the strongest determinism statement the model offers.
func TestConformanceParallelDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("full strategy × degree matrix; run without -short (CI's dedicated enginetest race job covers it)")
	}
	for _, g := range Goldens {
		t.Run(g.Name, func(t *testing.T) {
			eng := OpenDB(g.DB)
			for _, s := range Strategies() {
				var serialKey string
				var serial value.Value
				for _, par := range ParallelDegrees() {
					name := fmt.Sprintf("%s×par=%d", s, par)
					res, err := eng.Query(g.Query, engine.Options{Strategy: s, Parallelism: par})
					if err != nil {
						if SkippableError(err) {
							break // infeasible regardless of degree
						}
						t.Errorf("%s: %v", name, err)
						break
					}
					if par == 1 {
						serial = res.Value
						serialKey = value.Key(res.Value)
						continue
					}
					if got := value.Key(res.Value); got != serialKey {
						lost := value.Diff(serial, res.Value)
						extra := value.Diff(res.Value, serial)
						t.Errorf("%s: result not bit-identical to serial (lost %d, extra %d)",
							name, lost.Len(), extra.Len())
					}
				}
			}
		})
	}
}

// TestConformanceParallelExplain asserts EXPLAIN renders the degree for
// golden queries when a parallel degree is requested.
func TestConformanceParallelExplain(t *testing.T) {
	for _, g := range Goldens {
		eng := OpenDB(g.DB)
		out, err := eng.Explain(g.Query, engine.Options{Parallelism: 4})
		if err != nil {
			t.Errorf("%s: Explain: %v", g.Name, err)
			continue
		}
		if !contains(out, "parallelism=") {
			t.Errorf("%s: EXPLAIN misses the parallelism header:\n%s", g.Name, out)
		}
		if !contains(out, "sched=") || !contains(out, "morsel=") {
			t.Errorf("%s: EXPLAIN misses the scheduler header (sched=/morsel=):\n%s", g.Name, out)
		}
	}
}

// TestConformanceParallelSkewDeterminism executes every fuzz query shape on
// a 90/10-skewed XYZ instance — one join key holding ~90% of the matched
// rows, so one hash partition carries almost all the join work and the
// scheduler's stealing is what evens it out — at every degree, asserting
// byte-identity to serial under both the auto planner and the paper's fixed
// nest-join strategy.
func TestConformanceParallelSkewDeterminism(t *testing.T) {
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 300, NY: 600, NZ: 300, Keys: 10, DanglingFrac: 0.2,
		SetAttrCard: 3, SkewFrac: 0.9, Seed: 7,
	})
	eng := engine.New(cat, db)
	for qi, q := range fuzzQueries {
		for _, s := range []core.Strategy{core.StrategyAuto, core.StrategyNestJoin} {
			var want string
			for _, par := range ParallelDegrees() {
				res, err := eng.Query(q, engine.Options{Strategy: s, Parallelism: par})
				if err != nil {
					if SkippableError(err) {
						break
					}
					t.Errorf("query %d %s par=%d: %v", qi, s, par, err)
					break
				}
				if par == 1 {
					want = value.Key(res.Value)
					continue
				}
				if value.Key(res.Value) != want {
					t.Errorf("query %d %s par=%d: skewed result not byte-identical to serial", qi, s, par)
				}
			}
		}
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

// FuzzParallelMatchesSerial is the parallel-determinism property: over
// generated XYZ schemas and every fuzz query shape, executing at degrees 2
// and 8 must produce results bit-identical to degree 1, under both the auto
// planner and the paper's fixed nest-join strategy.
func FuzzParallelMatchesSerial(f *testing.F) {
	for qi := range fuzzQueries {
		f.Add(uint8(24), uint8(72), uint8(6), uint8(25), int64(1), uint8(qi))
	}
	f.Add(uint8(0), uint8(0), uint8(0), uint8(99), int64(3), uint8(0))
	f.Add(uint8(47), uint8(95), uint8(11), uint8(50), int64(5), uint8(4))

	f.Fuzz(func(t *testing.T, nx, ny, keys, dangPct uint8, seed int64, qi uint8) {
		spec := fuzzSpec(nx, ny, keys, dangPct, seed)
		cat, db := datagen.XYZ(spec)
		eng := engine.New(cat, db)
		q := fuzzQueries[int(qi)%len(fuzzQueries)]
		for _, s := range []core.Strategy{core.StrategyAuto, core.StrategyNestJoin} {
			serial, err := eng.Query(q, engine.Options{Strategy: s, Parallelism: 1})
			if err != nil {
				t.Fatalf("%s serial: %v", s, err)
			}
			want := value.Key(serial.Value)
			for _, par := range []int{2, 8} {
				res, err := eng.Query(q, engine.Options{Strategy: s, Parallelism: par})
				if err != nil {
					t.Fatalf("%s par=%d: %v", s, par, err)
				}
				if value.Key(res.Value) != want {
					t.Fatalf("%s par=%d differs from serial on spec %+v:\nquery: %s",
						s, par, spec, q)
				}
			}
		}
	})
}
