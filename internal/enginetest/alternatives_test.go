package enginetest

import (
	"strings"
	"testing"

	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

// TestConformanceAlternativesByteIdentical is the correctness condition for
// the unified optimizer's logical alternatives: for every golden query, the
// free-choosing optimizer and each pinned logical alternative (as-translated,
// §6 rewrite, every join order) must produce byte-identical results —
// rewrites must never change semantics, the paper's side condition for
// flattening.
func TestConformanceAlternativesByteIdentical(t *testing.T) {
	totalAlts := 0
	for _, g := range Goldens {
		t.Run(g.Name, func(t *testing.T) {
			eng := OpenDB(g.DB)
			free, err := eng.Query(g.Query, engine.Options{})
			if err != nil {
				t.Fatalf("free choice: %v", err)
			}
			freeKey := value.Key(free.Value)
			cands, err := eng.PlanCandidates(g.Query, engine.Options{})
			if err != nil {
				t.Fatal(err)
			}
			alts := map[string]bool{}
			for _, c := range cands {
				if c.Infeasible == "" {
					alts[c.Alt] = true
				}
			}
			if len(alts) == 0 {
				t.Fatal("no feasible alternatives enumerated")
			}
			for alt := range alts {
				res, err := eng.Query(g.Query, engine.Options{PinAlt: alt})
				if err != nil {
					t.Errorf("pin %s: %v", alt, err)
					continue
				}
				totalAlts++
				if res.Alt != alt {
					t.Errorf("pin %s executed alternative %s", alt, res.Alt)
				}
				if value.Key(res.Value) != freeKey {
					t.Errorf("alternative %s is not byte-identical to the free choice", alt)
				}
			}
		})
	}
	// The matrix must actually exercise non-base alternatives, or the
	// generator has gone stale.
	if totalAlts == 0 {
		t.Fatal("no alternatives ran")
	}
}

// TestConformanceRewriteAndOrdersEnumerated pins the golden set's coverage:
// at least one golden must generate a rewrite alternative that wins, one
// must keep the nested original (base) despite peers, and one must generate
// join-order alternatives.
func TestConformanceRewriteAndOrdersEnumerated(t *testing.T) {
	rewriteWins, baseWinsWithPeers, ordersSeen := false, false, false
	for _, g := range Goldens {
		eng := OpenDB(g.DB)
		res, err := eng.Query(g.Query, engine.Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		cands, err := eng.PlanCandidates(g.Query, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		peers := map[string]bool{}
		for _, c := range cands {
			peers[c.Alt] = true
			if _, ok := planner.OrderLabel(c.Alt); ok {
				ordersSeen = true
			}
		}
		switch {
		case res.Alt == planner.AltRewrite:
			rewriteWins = true
		case res.Alt == planner.AltBase && len(peers) > 1:
			baseWinsWithPeers = true
		}
	}
	if !rewriteWins {
		t.Error("no golden has the §6 rewrite alternative winning")
	}
	if !baseWinsWithPeers {
		t.Error("no golden keeps the original translation against enumerated peers")
	}
	if !ordersSeen {
		t.Error("no golden generates join-order alternatives")
	}
}

// TestConformanceExplainShowsAlternatives: EXPLAIN on the flagship goldens
// must render the alternative column and the candidate table rows for
// rewrites and join orders.
func TestConformanceExplainShowsAlternatives(t *testing.T) {
	for _, g := range Goldens {
		if g.Name != "rewrite-pushdown-wins" && g.Name != "three-table-join-order" {
			continue
		}
		eng := OpenDB(g.DB)
		out, err := eng.Explain(g.Query, engine.Options{})
		if err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		if !strings.Contains(out, "alt=") || !strings.Contains(out, "candidates considered:") {
			t.Errorf("%s: Explain misses alternatives:\n%s", g.Name, out)
		}
		if g.Name == "rewrite-pushdown-wins" && !strings.Contains(out, "alt=rewrite") {
			t.Errorf("%s: rewrite must win:\n%s", g.Name, out)
		}
		if g.Name == "three-table-join-order" && !strings.Contains(out, "order:(") {
			t.Errorf("%s: no join-order candidates:\n%s", g.Name, out)
		}
	}
}
