package enginetest

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"testing"
	"time"

	"tmdb/internal/engine"
	"tmdb/internal/faultinject"
)

// chaosSeeds is the fixed seed matrix the CI chaos job runs: each seed
// expands deterministically into a fault schedule, so a failure reproduces
// with `go test -run TestChaosGoldens/seed=<n>`.
var chaosSeeds = []uint64{1, 7, 42, 1337}

// chaosSchedule expands a seed into a randomized-but-deterministic fault
// schedule: one to three rules over the execution fault points, mixing
// delays, typed errors, and panics at moderate trigger rates.
func chaosSchedule(seed uint64) faultinject.Schedule {
	r := rand.New(rand.NewSource(int64(seed)))
	points := []string{
		faultinject.PointScan, faultinject.PointHashBuild, faultinject.PointHashProbe,
		faultinject.PointPartitionSend, faultinject.PointSortBuild,
		faultinject.PointSchedMorsel,
	}
	kinds := []faultinject.Kind{faultinject.Delay, faultinject.Error, faultinject.Panic}
	n := 1 + r.Intn(3)
	rules := make([]faultinject.Rule, 0, n)
	for i := 0; i < n; i++ {
		rules = append(rules, faultinject.Rule{
			Point:  points[r.Intn(len(points))],
			Kind:   kinds[r.Intn(len(kinds))],
			OneInN: uint64(20 + r.Intn(200)),
			Delay:  time.Duration(r.Intn(200)) * time.Microsecond,
		})
	}
	return faultinject.Schedule{Seed: seed, Rules: rules}
}

// chaosTaxonomy reports whether a failed chaos run died inside the documented
// error taxonomy: an injected typed error, an isolated injected panic, or the
// harness's known planner skip. Anything else is a genuine bug surfaced by
// the fault schedule.
func chaosTaxonomy(err error) bool {
	var ie *faultinject.InjectedError
	if errors.As(err, &ie) {
		return true
	}
	var pe *engine.PanicError
	if errors.As(err, &pe) {
		_, ok := pe.Val.(*faultinject.InjectedPanic)
		return ok
	}
	return SkippableError(err)
}

// TestChaosGoldens runs the conformance goldens under randomized fault
// schedules (fixed seed matrix, serial and partitioned execution) and asserts
// the PR's chaos contract: when a query survives the faults its result is
// byte-identical to the fault-free oracle; when it fails, the error is inside
// the documented taxonomy; and no run leaks goroutines. A final fault-free
// sweep proves the storm left the engines uncorrupted.
func TestChaosGoldens(t *testing.T) {
	optCombos := []struct {
		name string
		opts engine.Options
	}{
		{"serial", engine.Options{}},
		{"par=4", engine.Options{Parallelism: 4}},
	}

	engines := map[string]*engine.Engine{}
	for _, g := range Goldens {
		if engines[g.DB] == nil {
			engines[g.DB] = OpenDB(g.DB)
		}
	}
	oracles := map[string]string{}
	for _, g := range Goldens {
		for _, oc := range optCombos {
			res, err := engines[g.DB].Query(g.Query, oc.opts)
			if err != nil {
				t.Fatalf("fault-free oracle %s/%s: %v", g.Name, oc.name, err)
			}
			oracles[g.Name+"/"+oc.name] = res.Value.String()
		}
	}

	for _, seed := range chaosSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			base := runtime.NumGoroutine()
			schedule := chaosSchedule(seed)
			for _, g := range Goldens {
				for _, oc := range optCombos {
					deactivate := faultinject.Activate(schedule)
					res, err := engines[g.DB].Query(g.Query, oc.opts)
					deactivate()
					switch {
					case err == nil:
						if got := res.Value.String(); got != oracles[g.Name+"/"+oc.name] {
							t.Errorf("%s/%s: survived faults but diverged from oracle:\nwant %s\ngot  %s",
								g.Name, oc.name, oracles[g.Name+"/"+oc.name], got)
						}
					case !chaosTaxonomy(err):
						t.Errorf("%s/%s: failed outside the documented taxonomy: %v", g.Name, oc.name, err)
					}
				}
			}
			deadline := time.Now().Add(5 * time.Second)
			for time.Now().Before(deadline) && runtime.NumGoroutine() > base+2 {
				time.Sleep(10 * time.Millisecond)
			}
			if n := runtime.NumGoroutine(); n > base+2 {
				t.Fatalf("goroutine leak under seed %d: %d at start, %d now", seed, base, n)
			}
		})
	}

	for _, g := range Goldens {
		for _, oc := range optCombos {
			res, err := engines[g.DB].Query(g.Query, oc.opts)
			if err != nil {
				t.Fatalf("post-chaos %s/%s: %v", g.Name, oc.name, err)
			}
			if got := res.Value.String(); got != oracles[g.Name+"/"+oc.name] {
				t.Fatalf("post-chaos %s/%s diverged from oracle", g.Name, oc.name)
			}
		}
	}
}

// TestChaosGovernedGoldens layers budgets and deadlines on top of fault
// schedules: every golden runs with a generous deadline and row budget under
// an error-heavy schedule, asserting that whatever abort wins is still a
// typed, documented one.
func TestChaosGovernedGoldens(t *testing.T) {
	engines := map[string]*engine.Engine{}
	for _, g := range Goldens {
		if engines[g.DB] == nil {
			engines[g.DB] = OpenDB(g.DB)
		}
	}
	defer faultinject.Activate(faultinject.Schedule{
		Seed: 99,
		Rules: []faultinject.Rule{
			{Point: faultinject.PointScan, Kind: faultinject.Error, OneInN: 30},
			{Point: faultinject.PointHashBuild, Kind: faultinject.Panic, OneInN: 200},
		},
	})()
	opts := engine.Options{Limits: engine.Limits{
		Timeout: 5 * time.Second, MaxRows: 1 << 20, MaxBuildBytes: 1 << 30,
	}}
	for _, g := range Goldens {
		_, err := engines[g.DB].Query(g.Query, opts)
		if err == nil {
			continue
		}
		if !chaosTaxonomy(err) {
			t.Errorf("%s: governed chaos run failed outside the taxonomy: %v", g.Name, err)
		}
		var ab *engine.AbortError
		var pe *engine.PanicError
		if errors.As(err, &pe) && !errors.As(err, &ab) {
			t.Errorf("%s: isolated panic lost its partial-work accounting: %v", g.Name, err)
		}
	}
}
