// Package enginetest is an engine-level conformance harness in the style of
// go-mysql-server's enginetest: a table of golden queries, each executed
// under every unnesting strategy × physical join implementation, asserting
// that all combinations return identical results. Results are sets with a
// canonical element order (exec.Collect builds them through the value
// package's canonicalizing set builder), so plain value.Equal is the
// order-normalized comparison.
//
// Two classes of combination legitimately deviate:
//
//   - Kim's transformation loses dangling tuples by design (the COUNT bug
//     the paper reproduces); queries whose data contains dangling outer
//     tuples mark KimBuggy and tolerate — but do not require — a mismatch.
//   - The hash and sort-merge families need an extractable equi-key; on
//     plans without one the planner refuses with a "no equi-key" error,
//     which the harness records as a skip, not a failure.
package enginetest

import (
	"strings"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
)

// Golden is one conformance query.
type Golden struct {
	Name  string
	DB    string // sample database: table1 | xyz | rs | company
	Query string
	// KimBuggy marks queries over data with dangling outer tuples, where
	// Kim's group-then-join transformation is allowed to lose tuples.
	KimBuggy bool
}

// Goldens is the conformance table. Keep queries deterministic and small:
// every entry runs under |Strategies| × |JoinImpls| combinations.
var Goldens = []Golden{
	{
		Name:  "single-block-select",
		DB:    "table1",
		Query: `SELECT x.e FROM X x WHERE x.d = 1`,
	},
	{
		Name:  "nest-equijoin-table1",
		DB:    "table1",
		Query: `SELECT (e = x.e, d = x.d, s = SELECT y FROM Y y WHERE x.d = y.b) FROM X x`,
	},
	{
		Name:     "in-subquery-semijoin",
		DB:       "xyz",
		Query:    `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
		KimBuggy: true,
	},
	{
		Name:     "not-in-antijoin",
		DB:       "xyz",
		Query:    `SELECT x FROM X x WHERE x.b NOT IN SELECT y.d FROM Y y WHERE x.b = y.d`,
		KimBuggy: true,
	},
	{
		Name:     "subseteq-nest-join",
		DB:       "xyz",
		Query:    `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`,
		KimBuggy: true,
	},
	{
		Name:     "count-between-blocks",
		DB:       "rs",
		Query:    `SELECT r FROM R r WHERE r.B = COUNT(SELECT s.D FROM S s WHERE r.C = s.C)`,
		KimBuggy: true,
	},
	{
		Name: "three-block-chain",
		DB:   "xyz",
		Query: `SELECT x FROM X x
 WHERE x.a SUBSETEQ
   SELECT y.a FROM Y y
   WHERE x.b = y.b AND
     y.c SUBSETEQ SELECT z.c FROM Z z WHERE y.d = z.d`,
		KimBuggy: true,
	},
	{
		Name:     "select-clause-nesting",
		DB:       "xyz",
		Query:    `SELECT (b = x.b, ys = SELECT y.a FROM Y y WHERE x.b = y.d) FROM X x`,
		KimBuggy: true,
	},
	{
		Name:     "unnest-collapse",
		DB:       "xyz",
		Query:    `UNNEST(SELECT (SELECT (a = x.b, b = y.a) FROM Y y WHERE x.b = y.d) FROM X x)`,
		KimBuggy: true,
	},
	{
		Name:  "flat-two-table-join",
		DB:    "xyz",
		Query: `SELECT (xb = x.b, zc = z.c) FROM X x, Z z WHERE x.b = z.d`,
	},
	{
		Name:  "theta-join-no-equi-key",
		DB:    "table1",
		Query: `SELECT (e = x.e, a = y.a) FROM X x, Y y WHERE x.d < y.b`,
	},
	{
		Name:  "exists-over-set-attribute",
		DB:    "company",
		Query: `SELECT d.name FROM DEPT d WHERE EXISTS e IN d.emps (e.sal > 3500)`,
	},
	{
		Name:     "count-per-group-company",
		DB:       "company",
		Query:    `SELECT (d = d.name, n = COUNT(SELECT e FROM EMP e WHERE e.address.city = d.address.city)) FROM DEPT d`,
		KimBuggy: true,
	},
	{
		Name:  "quantified-forall",
		DB:    "company",
		Query: `SELECT d.name FROM DEPT d WHERE FORALL e IN d.emps (e.sal > 1000)`,
	},
	{
		// The unified optimizer's flagship: the grouping conjunct first and
		// the plain restriction second puts a selection above the nest-join
		// projection, so the §6 pushdown rewrite is a strictly cheaper peer
		// candidate the pre-unified engine could never consider.
		Name:     "rewrite-pushdown-wins",
		DB:       "xyz",
		Query:    `SELECT x.b FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b) AND x.b < 0`,
		KimBuggy: true,
	},
	{
		// Three-source flat block: the join-order search contributes
		// reordered bushy/left-deep alternatives.
		Name:  "three-table-join-order",
		DB:    "xyz",
		Query: `SELECT (xb = x.b, zc = z.c) FROM X x, Y y, Z z WHERE x.b = y.d AND y.b = z.d`,
	},
	{
		// Single-table equality selection: with an index on X.b registered
		// (see AccessIndexes) the idxscan access path serves it; without one
		// it is a plain filtered scan. Either way every combination must
		// agree with the oracle.
		Name:  "indexable-selection",
		DB:    "xyz",
		Query: `SELECT x FROM X x WHERE x.b = 3`,
	},
	{
		// Multi-attribute equality conjunction: the composite index Y(b,d)
		// covers both conjuncts, so the idxscan path probes one composite
		// point with no residual.
		Name:  "composite-indexable-selection",
		DB:    "xyz",
		Query: `SELECT y.a FROM Y y WHERE y.b = 3 AND y.d = 2`,
	},
}

// AccessIndexSpec names one persistent index to register: a table and its
// ordered attribute list (one attribute = equi-key index, several =
// composite).
type AccessIndexSpec struct {
	Table string
	Attrs []string
}

// AccessIndexes lists, per sample database, the persistent indexes the
// access-path conformance tests register before pinning the idxscan path:
// single-attribute and composite, covering the goldens' selection and join
// attributes.
var AccessIndexes = map[string][]AccessIndexSpec{
	"xyz": {
		{Table: "X", Attrs: []string{"b"}},
		{Table: "Y", Attrs: []string{"b", "d"}},
		{Table: "Y", Attrs: []string{"d"}},
	},
	"table1": {
		{Table: "X", Attrs: []string{"d"}},
		{Table: "Y", Attrs: []string{"b"}},
	},
	"rs": {
		{Table: "S", Attrs: []string{"C"}},
	},
}

// Strategies returns every strategy the harness exercises, including the
// cost-based auto path.
func Strategies() []core.Strategy {
	return []core.Strategy{
		core.StrategyAuto,
		core.StrategyNaive,
		core.StrategyNestJoin,
		core.StrategyKim,
		core.StrategyOuterJoin,
	}
}

// JoinImpls returns every physical join family the harness exercises.
// ImplIndex runs everywhere: without registered indexes it is the auto
// fallback (exercising the fallback path), with them it probes persistent
// indexes — both must agree with the oracle.
func JoinImpls() []planner.JoinImpl {
	return []planner.JoinImpl{
		planner.ImplAuto,
		planner.ImplNestedLoop,
		planner.ImplHash,
		planner.ImplMerge,
		planner.ImplIndex,
	}
}

// OpenDB builds a deterministic small instance of the named sample database
// (sized for running the full conformance matrix quickly).
func OpenDB(name string) *engine.Engine {
	switch name {
	case "table1":
		cat, db := datagen.Table1()
		return engine.New(cat, db)
	case "xyz":
		cat, db := datagen.XYZ(datagen.Spec{
			NX: 30, NY: 90, NZ: 60, Keys: 8, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 1,
		})
		return engine.New(cat, db)
	case "rs":
		cat, db := datagen.RS(40, 100, 8, 0.3, 1)
		return engine.New(cat, db)
	case "company":
		cat, db := datagen.Company(5, 40, 1)
		return engine.New(cat, db)
	}
	panic("enginetest: unknown sample database " + name)
}

// SkippableError reports whether err is the planner's refusal to compile a
// keyless plan under a hash/merge family — an expected infeasibility the
// conformance matrix records as a skip.
func SkippableError(err error) bool {
	return err != nil && strings.Contains(err.Error(), "no equi-key")
}
