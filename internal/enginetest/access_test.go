package enginetest

import (
	"fmt"
	"testing"

	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

// Access-path conformance: with persistent indexes registered, every golden
// query must return byte-identical results whether leaf selections read
// through full scans (AccessScan), pinned index scans (AccessIndex — with
// per-selection fallback where no index matches), or free cost-based choice
// (AccessAuto). This is the access-path analog of the strategy × join-impl
// matrix.

// registerAccessIndexes registers the per-database index set on an engine.
func registerAccessIndexes(t *testing.T, eng *engine.Engine, db string) {
	t.Helper()
	for _, spec := range AccessIndexes[db] {
		if err := eng.CreateIndex(spec.Table, spec.Attrs...); err != nil {
			t.Fatalf("CreateIndex(%s, %v): %v", spec.Table, spec.Attrs, err)
		}
	}
}

// TestGoldensAccessPathsByteIdentical runs every golden with indexes
// registered under the three access pins and asserts byte-identical results.
func TestGoldensAccessPathsByteIdentical(t *testing.T) {
	for _, g := range Goldens {
		t.Run(g.Name, func(t *testing.T) {
			eng := OpenDB(g.DB)
			registerAccessIndexes(t, eng, g.DB)
			ref, err := eng.Query(g.Query, engine.Options{Access: planner.AccessScan})
			if err != nil {
				t.Fatal(err)
			}
			for _, access := range []planner.AccessPath{planner.AccessAuto, planner.AccessIndex} {
				res, err := eng.Query(g.Query, engine.Options{Access: access})
				if err != nil {
					t.Errorf("access=%s: %v", access, err)
					continue
				}
				if value.Key(res.Value) != value.Key(ref.Value) {
					t.Errorf("access=%s: result not byte-identical to scan path (%d vs %d rows)",
						access, res.Value.Len(), ref.Value.Len())
				}
			}
		})
	}
}

// TestIndexScanChosenOnGolden: the access-path machinery is live end to end
// — the indexable goldens actually pick idxscan under free choice, so the
// byte-identical matrix above is not vacuously comparing scans to scans.
func TestIndexScanChosenOnGolden(t *testing.T) {
	chosen := 0
	for _, g := range Goldens {
		if g.DB != "xyz" {
			continue
		}
		eng := OpenDB(g.DB)
		registerAccessIndexes(t, eng, g.DB)
		res, err := eng.Query(g.Query, engine.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Access == planner.AccessIndex {
			chosen++
		}
	}
	if chosen == 0 {
		t.Error("no golden picked the idxscan access path under free choice")
	}
}

// TestIndexScanEqualsFilteredScanProperty is the generated-data property
// test: over several generated databases and every live key value (plus
// misses and composite points), a pinned index scan returns exactly the
// filtered full scan, byte for byte.
func TestIndexScanEqualsFilteredScanProperty(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		cat, db := datagen.XYZ(datagen.Spec{
			NX: 60 + 10*int(seed), NY: 150, NZ: 90,
			Keys: 6 + int(seed), DanglingFrac: 0.2, SetAttrCard: 3, Seed: seed,
		})
		eng := engine.New(cat, db)
		if err := eng.CreateIndex("X", "b"); err != nil {
			t.Fatal(err)
		}
		if err := eng.CreateIndex("Y", "b", "d"); err != nil {
			t.Fatal(err)
		}
		check := func(q string) {
			t.Helper()
			scan, err := eng.Query(q, engine.Options{Access: planner.AccessScan})
			if err != nil {
				t.Fatalf("seed %d scan %q: %v", seed, q, err)
			}
			idx, err := eng.Query(q, engine.Options{Access: planner.AccessIndex})
			if err != nil {
				t.Fatalf("seed %d idx %q: %v", seed, q, err)
			}
			if value.Key(scan.Value) != value.Key(idx.Value) {
				t.Errorf("seed %d %q: idxscan %d rows != scan %d rows",
					seed, q, idx.Value.Len(), scan.Value.Len())
			}
		}
		for k := -3; k < 10; k++ {
			check(fmt.Sprintf(`SELECT x FROM X x WHERE x.b = %d`, k))
			check(fmt.Sprintf(`SELECT y.a FROM Y y WHERE y.b = %d AND y.d = %d`, k, (k+1)%7))
			check(fmt.Sprintf(`SELECT y FROM Y y WHERE y.b = %d AND y.a > 1`, k))
		}
		// Mutate, then re-check: the incremental index maintenance must keep
		// the property.
		if _, err := eng.InsertValue("Y", datagen.YRow(1, 4, 2, 5)); err != nil {
			t.Fatal(err)
		}
		if _, err := eng.Delete("X", "x", "x.b = 2"); err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 6; k++ {
			check(fmt.Sprintf(`SELECT x FROM X x WHERE x.b = %d`, k))
			check(fmt.Sprintf(`SELECT y.a FROM Y y WHERE y.b = %d AND y.d = %d`, k, (k+2)%7))
		}
	}
}
