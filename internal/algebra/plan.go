// Package algebra defines the logical complex-object algebra the paper's
// optimizer targets — the NF² algebra of Schek & Scholl extended with the
// join family the paper works with: regular join, semijoin, antijoin,
// outerjoin, and the paper's contribution, the nest join (§6), together with
// the restructuring operators nest ν, the NULL-aware nest ν* (§6, "Algebraic
// Properties"), and unnest μ.
//
// Plans are immutable trees. Constructors validate operand types, bind and
// type the embedded TM expressions, and compute the element type of the
// operator's output, so an ill-typed plan cannot be built. Expressions inside
// operators (predicates, join functions, map bodies) are ordinary tmql ASTs
// evaluated under bindings for the operator's iteration variables.
package algebra

import (
	"fmt"

	"tmdb/internal/schema"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
)

// Plan is a logical operator tree producing a collection of values (usually
// tuples) of a fixed element type.
type Plan interface {
	// Elem returns the element type of the operator's output.
	Elem() *types.Type
	// Children returns the input plans, left to right.
	Children() []Plan
	// Describe returns a one-line rendering of this node (without inputs).
	Describe() string
}

// Builder constructs validated plans against a catalog. The catalog is used
// to resolve extension names inside embedded expressions (a predicate may
// itself contain an uncorrelated subquery) and table element types for scans.
type Builder struct {
	cat    *schema.Catalog
	binder *tmql.Binder
}

// NewBuilder returns a plan builder over the catalog (nil means empty).
func NewBuilder(cat *schema.Catalog) *Builder {
	if cat == nil {
		cat = schema.NewCatalog()
	}
	return &Builder{cat: cat, binder: tmql.NewBinder(cat)}
}

// Catalog returns the catalog the builder resolves names against.
func (b *Builder) Catalog() *schema.Catalog { return b.cat }

// --- Scan ---

// Scan reads a stored extension table.
type Scan struct {
	Table string
	elem  *types.Type
}

// Scan builds a scan of the named extension.
func (b *Builder) Scan(table string) (*Scan, error) {
	elem, err := b.cat.ElementType(table)
	if err != nil {
		return nil, fmt.Errorf("algebra: %w", err)
	}
	return &Scan{Table: table, elem: elem}, nil
}

func (s *Scan) Elem() *types.Type { return s.elem }
func (s *Scan) Children() []Plan  { return nil }
func (s *Scan) Describe() string  { return fmt.Sprintf("Scan(%s)", s.Table) }

// --- Select (σ) ---

// Select filters input elements by a boolean predicate over Var.
type Select struct {
	In   Plan
	Var  string
	Pred tmql.Expr
	elem *types.Type
}

// Select builds σ[pred(var)](in).
func (b *Builder) Select(in Plan, v string, pred tmql.Expr) (*Select, error) {
	bp, err := b.binder.BindIn(pred, tmql.VarBinding{Name: v, Type: in.Elem()})
	if err != nil {
		return nil, err
	}
	if !types.AssignableTo(bp.Type(), types.Bool) {
		return nil, fmt.Errorf("algebra: Select predicate must be BOOL, got %s", bp.Type())
	}
	return &Select{In: in, Var: v, Pred: bp, elem: in.Elem()}, nil
}

func (s *Select) Elem() *types.Type { return s.elem }
func (s *Select) Children() []Plan  { return []Plan{s.In} }
func (s *Select) Describe() string {
	return fmt.Sprintf("Select[%s](%s)", tmql.Format(s.Pred), s.Var)
}

// --- Map (function application / projection) ---

// Map applies an expression to every input element (the algebra's projection
// and general function application).
type Map struct {
	In   Plan
	Var  string
	Out  tmql.Expr
	elem *types.Type
}

// Map builds map[out(var)](in).
func (b *Builder) Map(in Plan, v string, out tmql.Expr) (*Map, error) {
	bo, err := b.binder.BindIn(out, tmql.VarBinding{Name: v, Type: in.Elem()})
	if err != nil {
		return nil, err
	}
	return &Map{In: in, Var: v, Out: bo, elem: bo.Type()}, nil
}

// Project builds the common special case of Map keeping a subset of top-level
// attributes.
func (b *Builder) Project(in Plan, v string, labels ...string) (*Map, error) {
	fields := make([]tmql.TupleField, len(labels))
	for i, l := range labels {
		fields[i] = tmql.TupleField{Label: l, E: &tmql.FieldSel{X: &tmql.Var{Name: v}, Label: l}}
	}
	return b.Map(in, v, &tmql.TupleCons{Fields: fields})
}

func (m *Map) Elem() *types.Type { return m.elem }
func (m *Map) Children() []Plan  { return []Plan{m.In} }
func (m *Map) Describe() string {
	return fmt.Sprintf("Map[%s](%s)", tmql.Format(m.Out), m.Var)
}

// --- Join family ---

// JoinKind discriminates the flat join variants sharing operand/predicate
// structure.
type JoinKind uint8

// Join variants. Semi and Anti produce left elements only; Outer pads
// dangling left elements with NULLs (the relational repair the paper replaces
// with the nest join).
const (
	JoinInner JoinKind = iota
	JoinSemi
	JoinAnti
	JoinLeftOuter
)

// String names the join kind.
func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "Join"
	case JoinSemi:
		return "SemiJoin"
	case JoinAnti:
		return "AntiJoin"
	case JoinLeftOuter:
		return "OuterJoin"
	}
	return "Join?"
}

// Join is the flat join family: inner join emits l ++ r; semijoin emits l
// when a match exists; antijoin emits l when no match exists; left outerjoin
// emits l ++ r for matches and l ++ NULLs for dangling l.
type Join struct {
	Kind       JoinKind
	L, R       Plan
	LVar, RVar string
	Pred       tmql.Expr
	elem       *types.Type
}

// Join builds the requested join variant. For inner and outer joins both
// element types must be tuples with disjoint top-level labels (the algebra's
// concatenation requirement).
func (b *Builder) Join(kind JoinKind, l, r Plan, lv, rv string, pred tmql.Expr) (*Join, error) {
	if lv == rv {
		return nil, fmt.Errorf("algebra: join variables must differ, both are %s", lv)
	}
	bp, err := b.binder.BindIn(pred,
		tmql.VarBinding{Name: lv, Type: l.Elem()},
		tmql.VarBinding{Name: rv, Type: r.Elem()},
	)
	if err != nil {
		return nil, err
	}
	if !types.AssignableTo(bp.Type(), types.Bool) {
		return nil, fmt.Errorf("algebra: join predicate must be BOOL, got %s", bp.Type())
	}
	j := &Join{Kind: kind, L: l, R: r, LVar: lv, RVar: rv, Pred: bp}
	switch kind {
	case JoinSemi, JoinAnti:
		j.elem = l.Elem()
	case JoinInner, JoinLeftOuter:
		elem, err := concatType(l.Elem(), r.Elem())
		if err != nil {
			return nil, err
		}
		j.elem = elem
	default:
		return nil, fmt.Errorf("algebra: unknown join kind %d", kind)
	}
	return j, nil
}

func concatType(l, r *types.Type) (*types.Type, error) {
	if l.Kind != types.KTuple || r.Kind != types.KTuple {
		return nil, fmt.Errorf("algebra: join concatenation needs tuple elements, got %s and %s", l, r)
	}
	fs := make([]types.Field, 0, len(l.Fields)+len(r.Fields))
	fs = append(fs, l.Fields...)
	for _, f := range r.Fields {
		if _, dup := l.Field(f.Label); dup {
			return nil, fmt.Errorf("algebra: join label collision on %s", f.Label)
		}
		fs = append(fs, f)
	}
	return types.Tuple(fs...), nil
}

func (j *Join) Elem() *types.Type { return j.elem }
func (j *Join) Children() []Plan  { return []Plan{j.L, j.R} }
func (j *Join) Describe() string {
	return fmt.Sprintf("%s[%s](%s, %s)", j.Kind, tmql.Format(j.Pred), j.LVar, j.RVar)
}

// --- Nest join (△) — the paper's §6 operator ---

// NestJoin extends each left element x with Label = { Fn(x,y) | y ∈ R,
// Pred(x,y) }. Dangling left elements survive with Label = ∅; grouping is
// explicit in the set-valued output attribute. Table 1 of the paper is the
// identity-function equijoin instance of this operator.
type NestJoin struct {
	L, R       Plan
	LVar, RVar string
	Pred       tmql.Expr
	// Fn is the nest join function G applied to matching pairs; it may
	// reference both variables (the paper's G(x, y)).
	Fn    tmql.Expr
	Label string
	elem  *types.Type
}

// NestJoin builds X △[pred, fn; label] Y. The label must not collide with
// the left element's top-level attributes (the paper's freshness side
// condition).
func (b *Builder) NestJoin(l, r Plan, lv, rv string, pred, fn tmql.Expr, label string) (*NestJoin, error) {
	if lv == rv {
		return nil, fmt.Errorf("algebra: nest join variables must differ, both are %s", lv)
	}
	if l.Elem().Kind != types.KTuple {
		return nil, fmt.Errorf("algebra: nest join left element must be a tuple, got %s", l.Elem())
	}
	if _, dup := l.Elem().Field(label); dup {
		return nil, fmt.Errorf("algebra: nest join label %s already occurs in left element %s", label, l.Elem())
	}
	bp, err := b.binder.BindIn(pred,
		tmql.VarBinding{Name: lv, Type: l.Elem()},
		tmql.VarBinding{Name: rv, Type: r.Elem()},
	)
	if err != nil {
		return nil, err
	}
	if !types.AssignableTo(bp.Type(), types.Bool) {
		return nil, fmt.Errorf("algebra: nest join predicate must be BOOL, got %s", bp.Type())
	}
	if fn == nil {
		fn = &tmql.Var{Name: rv} // identity nest join function
	}
	bf, err := b.binder.BindIn(fn,
		tmql.VarBinding{Name: lv, Type: l.Elem()},
		tmql.VarBinding{Name: rv, Type: r.Elem()},
	)
	if err != nil {
		return nil, err
	}
	fs := append([]types.Field{}, l.Elem().Fields...)
	fs = append(fs, types.F(label, types.SetOf(bf.Type())))
	return &NestJoin{
		L: l, R: r, LVar: lv, RVar: rv, Pred: bp, Fn: bf, Label: label,
		elem: types.Tuple(fs...),
	}, nil
}

func (n *NestJoin) Elem() *types.Type { return n.elem }
func (n *NestJoin) Children() []Plan  { return []Plan{n.L, n.R} }
func (n *NestJoin) Describe() string {
	return fmt.Sprintf("NestJoin[%s; %s; %s](%s, %s)",
		tmql.Format(n.Pred), tmql.Format(n.Fn), n.Label, n.LVar, n.RVar)
}

// --- Nest (ν) and NULL-aware nest (ν*) ---

// Nest is the NF² nest operator ν[attrs → label]: input tuples are grouped
// by all attributes except Attrs; each group becomes one tuple carrying the
// grouping attributes plus Label = the set of Attrs-projections of the
// group's members. NullAware selects ν* (§6): a group whose every member has
// only NULLs in Attrs yields ∅ — the operator that, composed with the
// outerjoin, re-expresses the nest join.
type Nest struct {
	In        Plan
	Attrs     []string
	Label     string
	NullAware bool
	elem      *types.Type
}

// Nest builds ν[attrs→label](in) (or ν* when nullAware).
func (b *Builder) Nest(in Plan, attrs []string, label string, nullAware bool) (*Nest, error) {
	et := in.Elem()
	if et.Kind != types.KTuple {
		return nil, fmt.Errorf("algebra: nest needs tuple elements, got %s", et)
	}
	if len(attrs) == 0 {
		return nil, fmt.Errorf("algebra: nest needs at least one attribute")
	}
	nested := make(map[string]bool, len(attrs))
	nestedFields := make([]types.Field, 0, len(attrs))
	for _, a := range attrs {
		ft, ok := et.Field(a)
		if !ok {
			return nil, fmt.Errorf("algebra: nest attribute %s not in element %s", a, et)
		}
		if nested[a] {
			return nil, fmt.Errorf("algebra: duplicate nest attribute %s", a)
		}
		nested[a] = true
		nestedFields = append(nestedFields, types.F(a, ft))
	}
	var groupFields []types.Field
	for _, f := range et.Fields {
		if !nested[f.Label] {
			groupFields = append(groupFields, f)
		}
	}
	if _, dup := et.Field(label); dup && !nested[label] {
		return nil, fmt.Errorf("algebra: nest label %s collides with a grouping attribute", label)
	}
	out := append([]types.Field{}, groupFields...)
	out = append(out, types.F(label, types.SetOf(types.Tuple(nestedFields...))))
	return &Nest{In: in, Attrs: attrs, Label: label, NullAware: nullAware,
		elem: types.Tuple(out...)}, nil
}

func (n *Nest) Elem() *types.Type { return n.elem }
func (n *Nest) Children() []Plan  { return []Plan{n.In} }
func (n *Nest) Describe() string {
	op := "Nest"
	if n.NullAware {
		op = "Nest*"
	}
	return fmt.Sprintf("%s[%v -> %s]", op, n.Attrs, n.Label)
}

// --- Unnest (μ) ---

// Unnest flattens the set-valued attribute Attr: each input tuple t yields
// one output tuple t − Attr ++ e per element e of t.Attr (tuple elements are
// concatenated, scalar elements keep the attribute's label). Tuples with
// t.Attr = ∅ vanish — the information loss that makes μ only a partial
// inverse of ν, which is precisely why the nest join must preserve dangling
// tuples itself.
type Unnest struct {
	In   Plan
	Attr string
	elem *types.Type
	// scalar records whether set elements are non-tuples (kept under Attr).
	scalar bool
}

// Unnest builds μ[attr](in).
func (b *Builder) Unnest(in Plan, attr string) (*Unnest, error) {
	et := in.Elem()
	if et.Kind != types.KTuple {
		return nil, fmt.Errorf("algebra: unnest needs tuple elements, got %s", et)
	}
	ft, ok := et.Field(attr)
	if !ok {
		return nil, fmt.Errorf("algebra: unnest attribute %s not in element %s", attr, et)
	}
	if ft.Kind != types.KSet {
		return nil, fmt.Errorf("algebra: unnest attribute %s must be set-valued, got %s", attr, ft)
	}
	var rest []types.Field
	for _, f := range et.Fields {
		if f.Label != attr {
			rest = append(rest, f)
		}
	}
	u := &Unnest{In: in, Attr: attr}
	if ft.Elem.Kind == types.KTuple {
		fs := append([]types.Field{}, rest...)
		for _, f := range ft.Elem.Fields {
			if _, dup := types.Tuple(rest...).Field(f.Label); dup {
				return nil, fmt.Errorf("algebra: unnest label collision on %s", f.Label)
			}
			fs = append(fs, f)
		}
		u.elem = types.Tuple(fs...)
	} else {
		fs := append([]types.Field{}, rest...)
		fs = append(fs, types.F(attr, ft.Elem))
		u.elem = types.Tuple(fs...)
		u.scalar = true
	}
	return u, nil
}

// Scalar reports whether the unnested elements are non-tuples.
func (u *Unnest) Scalar() bool { return u.scalar }

func (u *Unnest) Elem() *types.Type { return u.elem }
func (u *Unnest) Children() []Plan  { return []Plan{u.In} }
func (u *Unnest) Describe() string  { return fmt.Sprintf("Unnest[%s]", u.Attr) }

// --- Set operations over plans ---

// SetOpKind discriminates plan-level set operations.
type SetOpKind uint8

// Plan-level set operations.
const (
	SetUnion SetOpKind = iota
	SetIntersect
	SetDiff
)

// String names the set operation.
func (k SetOpKind) String() string {
	switch k {
	case SetUnion:
		return "Union"
	case SetIntersect:
		return "Intersect"
	case SetDiff:
		return "Diff"
	}
	return "SetOp?"
}

// SetOp combines two inputs by union, intersection, or difference.
type SetOp struct {
	Kind SetOpKind
	L, R Plan
	elem *types.Type
}

// SetOp builds the plan-level set operation; element types must unify.
func (b *Builder) SetOp(kind SetOpKind, l, r Plan) (*SetOp, error) {
	u := types.Unify(l.Elem(), r.Elem())
	if u == nil {
		return nil, fmt.Errorf("algebra: set operation over incompatible element types %s and %s",
			l.Elem(), r.Elem())
	}
	return &SetOp{Kind: kind, L: l, R: r, elem: u}, nil
}

func (s *SetOp) Elem() *types.Type { return s.elem }
func (s *SetOp) Children() []Plan  { return []Plan{s.L, s.R} }
func (s *SetOp) Describe() string  { return s.Kind.String() }

// --- Remote (naive) evaluation node ---

// EvalNode evaluates an arbitrary closed TM expression producing a set — the
// escape hatch the translator uses for blocks it cannot (or must not)
// flatten, e.g. subqueries over set-valued attributes (§3.2). The expression
// is evaluated by the naive evaluator.
type EvalNode struct {
	Expr tmql.Expr
	elem *types.Type
}

// EvalSet wraps a bound set-typed expression as a plan leaf.
func (b *Builder) EvalSet(e tmql.Expr) (*EvalNode, error) {
	be := e
	if be.Type() == nil {
		var err error
		be, err = b.binder.Bind(e)
		if err != nil {
			return nil, err
		}
	}
	t := be.Type()
	if t.Kind != types.KSet && t.Kind != types.KAny {
		return nil, fmt.Errorf("algebra: EvalSet needs a set-typed expression, got %s", t)
	}
	elem := types.Any
	if t.Kind == types.KSet {
		elem = t.Elem
	}
	return &EvalNode{Expr: be, elem: elem}, nil
}

func (e *EvalNode) Elem() *types.Type { return e.elem }
func (e *EvalNode) Children() []Plan  { return nil }
func (e *EvalNode) Describe() string  { return fmt.Sprintf("Eval[%s]", tmql.Format(e.Expr)) }
