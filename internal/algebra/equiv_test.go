package algebra

import (
	"fmt"
	"strings"
	"testing"

	"tmdb/internal/datagen"
	"tmdb/internal/schema"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// evalPlan executes a logical plan directly through a tiny interpreter local
// to this test (the algebra package cannot import planner/exec without a
// cycle). It implements the denotational semantics of each operator and is
// deliberately independent from internal/exec, giving the equivalence tests
// a second executable semantics to agree with.
func evalPlan(t *testing.T, db *storage.DB, p Plan) value.Value {
	t.Helper()
	v, err := evalPlanE(db, p)
	if err != nil {
		t.Fatalf("evalPlan(%s): %v", p.Describe(), err)
	}
	return v
}

func evalPlanE(db *storage.DB, p Plan) (value.Value, error) {
	ev := neweval(db)
	return ev.plan(p)
}

type planEval struct {
	db *storage.DB
}

func neweval(db *storage.DB) *planEval { return &planEval{db: db} }

func (pe *planEval) plan(p Plan) (value.Value, error) {
	switch n := p.(type) {
	case *Scan:
		tab, ok := pe.db.Table(n.Table)
		if !ok {
			return value.Value{}, errf("no table %s", n.Table)
		}
		return tab.AsSet(), nil
	case *Select:
		in, err := pe.plan(n.In)
		if err != nil {
			return value.Value{}, err
		}
		b := value.NewSetBuilder(0)
		for _, e := range in.Elems() {
			ok, err := pe.pred(n.Pred, env{n.Var: e})
			if err != nil {
				return value.Value{}, err
			}
			if ok {
				b.Add(e)
			}
		}
		return b.Build(), nil
	case *Map:
		in, err := pe.plan(n.In)
		if err != nil {
			return value.Value{}, err
		}
		b := value.NewSetBuilder(0)
		for _, e := range in.Elems() {
			v, err := pe.expr(n.Out, env{n.Var: e})
			if err != nil {
				return value.Value{}, err
			}
			b.Add(v)
		}
		return b.Build(), nil
	case *Join:
		l, err := pe.plan(n.L)
		if err != nil {
			return value.Value{}, err
		}
		r, err := pe.plan(n.R)
		if err != nil {
			return value.Value{}, err
		}
		b := value.NewSetBuilder(0)
		for _, le := range l.Elems() {
			matched := false
			for _, re := range r.Elems() {
				ok, err := pe.pred(n.Pred, env{n.LVar: le, n.RVar: re})
				if err != nil {
					return value.Value{}, err
				}
				if !ok {
					continue
				}
				matched = true
				if n.Kind == JoinInner || n.Kind == JoinLeftOuter {
					b.Add(le.Concat(re))
				}
			}
			switch n.Kind {
			case JoinSemi:
				if matched {
					b.Add(le)
				}
			case JoinAnti:
				if !matched {
					b.Add(le)
				}
			case JoinLeftOuter:
				if !matched {
					pad := make([]value.Field, 0)
					for _, f := range n.R.Elem().Fields {
						pad = append(pad, value.F(f.Label, value.Null))
					}
					b.Add(le.Concat(value.TupleOf(pad...)))
				}
			}
		}
		return b.Build(), nil
	case *NestJoin:
		l, err := pe.plan(n.L)
		if err != nil {
			return value.Value{}, err
		}
		r, err := pe.plan(n.R)
		if err != nil {
			return value.Value{}, err
		}
		b := value.NewSetBuilder(0)
		for _, le := range l.Elems() {
			grp := value.NewSetBuilder(0)
			for _, re := range r.Elems() {
				ok, err := pe.pred(n.Pred, env{n.LVar: le, n.RVar: re})
				if err != nil {
					return value.Value{}, err
				}
				if !ok {
					continue
				}
				g, err := pe.expr(n.Fn, env{n.LVar: le, n.RVar: re})
				if err != nil {
					return value.Value{}, err
				}
				grp.Add(g)
			}
			b.Add(le.Extend(n.Label, grp.Build()))
		}
		return b.Build(), nil
	default:
		return value.Value{}, errf("planEval: unhandled %T", p)
	}
}

type env map[string]value.Value

func (pe *planEval) pred(e tmql.Expr, en env) (bool, error) {
	v, err := pe.expr(e, en)
	if err != nil {
		return false, err
	}
	return v.AsBool(), nil
}

// expr evaluates the tiny expression subset the tests use: literals, vars,
// field selection, =, <, AND, IN.
func (pe *planEval) expr(e tmql.Expr, en env) (value.Value, error) {
	switch n := e.(type) {
	case *tmql.Lit:
		return n.V, nil
	case *tmql.Var:
		v, ok := en[n.Name]
		if !ok {
			return value.Value{}, errf("unbound %s", n.Name)
		}
		return v, nil
	case *tmql.FieldSel:
		x, err := pe.expr(n.X, en)
		if err != nil {
			return value.Value{}, err
		}
		return x.MustGet(n.Label), nil
	case *tmql.TupleCons:
		fs := make([]value.Field, 0, len(n.Fields))
		for _, f := range n.Fields {
			v, err := pe.expr(f.E, en)
			if err != nil {
				return value.Value{}, err
			}
			fs = append(fs, value.F(f.Label, v))
		}
		return value.TupleOf(fs...), nil
	case *tmql.Binary:
		l, err := pe.expr(n.L, en)
		if err != nil {
			return value.Value{}, err
		}
		r, err := pe.expr(n.R, en)
		if err != nil {
			return value.Value{}, err
		}
		switch n.Op {
		case tmql.OpEq:
			return value.Bool(value.Equal(l, r)), nil
		case tmql.OpLt:
			return value.Bool(value.Compare(l, r) < 0), nil
		case tmql.OpGt:
			return value.Bool(value.Compare(l, r) > 0), nil
		case tmql.OpAnd:
			return value.Bool(l.AsBool() && r.AsBool()), nil
		case tmql.OpIn:
			return value.Bool(value.Contains(r, l)), nil
		}
	}
	return value.Value{}, errf("planEval expr: unhandled %s", tmql.Format(e))
}

func errf(format string, args ...any) error {
	return fmt.Errorf("planEval: "+format, args...)
}

// --- fixtures ---

func equivEnv() (*schema.Catalog, *storage.DB, *Builder) {
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 25, NY: 60, NZ: 40, Keys: 8, DanglingFrac: 0.3, SetAttrCard: 3, Seed: 21,
	})
	return cat, db, NewBuilder(cat)
}

// TestProjectionEliminationIdentity checks πX(X △ Y) = X (§6) both as an
// executed equivalence and as a rewrite performed by Optimize.
func TestProjectionEliminationIdentity(t *testing.T) {
	_, db, b := equivEnv()
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, err := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), nil, "s")
	if err != nil {
		t.Fatal(err)
	}
	proj, err := b.Project(nj, "v", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	// Executed equivalence.
	lhs := evalPlan(t, db, proj)
	xOnly, _ := b.Project(x, "v", "a", "b")
	rhs := evalPlan(t, db, xOnly)
	if !value.Equal(lhs, rhs) {
		t.Errorf("πX(X △ Y) ≠ X:\n lhs %s\n rhs %s", lhs, rhs)
	}
	// Rewrite performed.
	opt, err := Optimize(b, proj)
	if err != nil {
		t.Fatal(err)
	}
	if CountOps(opt)["NestJoin"] != 0 {
		t.Errorf("Optimize did not eliminate the dead nest join:\n%s", Explain(opt))
	}
	if got := evalPlan(t, db, opt); !value.Equal(got, lhs) {
		t.Error("Optimize changed semantics")
	}
}

// TestProjectionUsingLabelNotEliminated: the rule must not fire when the
// projection reads the group.
func TestProjectionUsingLabelNotEliminated(t *testing.T) {
	_, _, b := equivEnv()
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, _ := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), nil, "s")
	m, err := b.Map(nj, "v", tmql.MustParse("(b = v.b, s = v.s)"))
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(b, m)
	if err != nil {
		t.Fatal(err)
	}
	if CountOps(opt)["NestJoin"] != 1 {
		t.Errorf("nest join wrongly eliminated:\n%s", Explain(opt))
	}
	// Whole-tuple use also blocks elimination.
	m2, _ := b.Map(nj, "v", &tmql.Var{Name: "v"})
	opt2, _ := Optimize(b, m2)
	if CountOps(opt2)["NestJoin"] != 1 {
		t.Error("whole-tuple map must keep the nest join")
	}
}

// TestSelectionPushdown checks σp(x)(X △ Y) = σp(x)(X) △ Y executed and as a
// rewrite.
func TestSelectionPushdown(t *testing.T) {
	_, db, b := equivEnv()
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, _ := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), nil, "s")
	sel, err := b.Select(nj, "v", tmql.MustParse("v.b > 2"))
	if err != nil {
		t.Fatal(err)
	}
	lhs := evalPlan(t, db, sel)

	pushedX, _ := b.Select(x, "x", tmql.MustParse("x.b > 2"))
	nj2, _ := b.NestJoin(pushedX, y, "x", "y", tmql.MustParse("x.b = y.b"), nil, "s")
	rhs := evalPlan(t, db, nj2)
	if !value.Equal(lhs, rhs) {
		t.Errorf("selection pushdown identity fails:\n lhs %s\n rhs %s", lhs, rhs)
	}

	opt, err := Optimize(b, sel)
	if err != nil {
		t.Fatal(err)
	}
	// After rewriting the Select must sit below the NestJoin.
	if njTop, ok := opt.(*NestJoin); !ok {
		t.Errorf("pushdown did not fire:\n%s", Explain(opt))
	} else if _, ok := njTop.L.(*Select); !ok {
		t.Errorf("Select not pushed to the left operand:\n%s", Explain(opt))
	}
	if got := evalPlan(t, db, opt); !value.Equal(got, lhs) {
		t.Error("Optimize changed semantics")
	}
}

// TestSelectionOnLabelNotPushed: predicates reading the group must stay
// above the nest join.
func TestSelectionOnLabelNotPushed(t *testing.T) {
	_, _, b := equivEnv()
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, _ := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), tmql.MustParse("y.a"), "s")
	sel, _ := b.Select(nj, "v", tmql.MustParse("1 IN v.s"))
	opt, err := Optimize(b, sel)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := opt.(*Select); !ok {
		t.Errorf("label-reading selection must not move:\n%s", Explain(opt))
	}
}

// TestNestJoinJoinCommutation verifies the paper's §6 equivalence
//
//	(X ⋈r(x,y) Y) △r(x,z) Z = (X △r(x,z) Z) ⋈r(x,y) Y
//
// on data (both predicates reference only the operands named; the join and
// the nest join touch disjoint right-hand operands).
func TestNestJoinJoinCommutation(t *testing.T) {
	_, db, b := equivEnv()
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	y, _ := b.Scan("Y")
	// Wrap Y to avoid label collisions with X in the concat.
	yw, err := b.Map(y, "y", tmql.MustParse("(ya = y.a, yb = y.b)"))
	if err != nil {
		t.Fatal(err)
	}

	// LHS: (X ⋈ Yw) △ Z.
	j1, err := b.Join(JoinInner, x, yw, "x", "y", tmql.MustParse("x.b = y.yb"))
	if err != nil {
		t.Fatal(err)
	}
	lhsPlan, err := b.NestJoin(j1, z, "v", "z", tmql.MustParse("v.b = z.d"), tmql.MustParse("z.c"), "zs")
	if err != nil {
		t.Fatal(err)
	}
	// RHS: (X △ Z) ⋈ Yw.
	nj2, err := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d"), tmql.MustParse("z.c"), "zs")
	if err != nil {
		t.Fatal(err)
	}
	rhsPlan, err := b.Join(JoinInner, nj2, yw, "v", "y", tmql.MustParse("v.b = y.yb"))
	if err != nil {
		t.Fatal(err)
	}

	lhs := evalPlan(t, db, lhsPlan)
	rhs := evalPlan(t, db, rhsPlan)
	if !value.Equal(lhs, rhs) {
		t.Errorf("(X⋈Y)△Z ≠ (X△Z)⋈Y:\n lhs %d elems\n rhs %d elems", lhs.Len(), rhs.Len())
	}
}

// TestJoinNestJoinAssociationRight verifies the paper's second §6 form
//
//	(X ⋈r(x,y) Y) △r(y,z) Z = X ⋈r(x,y) (Y △r(y,z) Z)
func TestJoinNestJoinAssociationRight(t *testing.T) {
	_, db, b := equivEnv()
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	y, _ := b.Scan("Y")
	yw, _ := b.Map(y, "y", tmql.MustParse("(ya = y.a, yb = y.b, yd = y.d)"))

	// LHS: (X ⋈ Yw) △ Z on the Y part of the concat.
	j1, _ := b.Join(JoinInner, x, yw, "x", "y", tmql.MustParse("x.b = y.yb"))
	lhsPlan, err := b.NestJoin(j1, z, "v", "z", tmql.MustParse("v.yd = z.d"), tmql.MustParse("z.c"), "zs")
	if err != nil {
		t.Fatal(err)
	}
	// RHS: X ⋈ (Yw △ Z).
	nj2, err := b.NestJoin(yw, z, "y", "z", tmql.MustParse("y.yd = z.d"), tmql.MustParse("z.c"), "zs")
	if err != nil {
		t.Fatal(err)
	}
	rhsPlan, err := b.Join(JoinInner, x, nj2, "x", "v", tmql.MustParse("x.b = v.yb"))
	if err != nil {
		t.Fatal(err)
	}

	lhs := evalPlan(t, db, lhsPlan)
	rhs := evalPlan(t, db, rhsPlan)
	if !value.Equal(lhs, rhs) {
		t.Errorf("(X⋈Y)△Z ≠ X⋈(Y△Z) when the nest join hangs off Y")
	}
}

// TestNestJoinNotCommutative documents the §6 negative result: X △ Y and
// Y △ X differ (already in type, and on data).
func TestNestJoinNotCommutative(t *testing.T) {
	_, db, b := equivEnv()
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	xy, err := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d"), tmql.MustParse("z.c"), "s")
	if err != nil {
		t.Fatal(err)
	}
	yx, err := b.NestJoin(z, x, "z", "x", tmql.MustParse("x.b = z.d"), tmql.MustParse("x.b"), "s")
	if err != nil {
		t.Fatal(err)
	}
	l := evalPlan(t, db, xy)
	r := evalPlan(t, db, yx)
	if value.Equal(l, r) {
		t.Error("nest join unexpectedly commuted on this instance")
	}
}

func TestMergeSelectsAndSelectTrue(t *testing.T) {
	_, db, b := equivEnv()
	x, _ := b.Scan("X")
	s1, _ := b.Select(x, "u", tmql.MustParse("u.b > 1"))
	s2, _ := b.Select(s1, "w", tmql.MustParse("w.b < 5"))
	opt, err := Optimize(b, s2)
	if err != nil {
		t.Fatal(err)
	}
	// One Select with the conjunction remains.
	if CountOps(opt)["Select"] != 1 {
		t.Errorf("selects not merged:\n%s", Explain(opt))
	}
	if !value.Equal(evalPlan(t, db, opt), evalPlan(t, db, s2)) {
		t.Error("merge changed semantics")
	}

	st, _ := b.Select(x, "u", tmql.MustParse("TRUE"))
	opt2, _ := Optimize(b, st)
	if CountOps(opt2)["Select"] != 0 {
		t.Errorf("σ[true] not dropped:\n%s", Explain(opt2))
	}
}

func TestOptimizeDescendsThroughOperators(t *testing.T) {
	_, db, b := equivEnv()
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	st, _ := b.Select(x, "u", tmql.MustParse("TRUE"))
	nj, _ := b.NestJoin(st, y, "x", "y", tmql.MustParse("x.b = y.b"), nil, "s")
	m, _ := b.Map(nj, "v", tmql.MustParse("(b = v.b, s = v.s)"))
	opt, err := Optimize(b, m)
	if err != nil {
		t.Fatal(err)
	}
	if CountOps(opt)["Select"] != 0 {
		t.Errorf("σ[true] under nest join not dropped:\n%s", Explain(opt))
	}
	if !value.Equal(evalPlan(t, db, opt), evalPlan(t, db, m)) {
		t.Error("optimization changed semantics")
	}
	if !strings.Contains(Explain(opt), "NestJoin") {
		t.Error("needed nest join vanished")
	}
}

// TestSplitSelectionPushdown: a mixed predicate (one label-reading conjunct,
// one left-only conjunct) must split — the left-only part sinks into the
// nest join's left operand, the label part stays above — without changing
// semantics.
func TestSplitSelectionPushdown(t *testing.T) {
	_, db, b := equivEnv()
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, _ := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), tmql.MustParse("y.a"), "s")
	sel, err := b.Select(nj, "v", tmql.MustParse("1 IN v.s AND v.b > 2"))
	if err != nil {
		t.Fatal(err)
	}
	want := evalPlan(t, db, sel)
	opt, err := Optimize(b, sel)
	if err != nil {
		t.Fatal(err)
	}
	top, ok := opt.(*Select)
	if !ok {
		t.Fatalf("label conjunct must keep a Select on top:\n%s", Explain(opt))
	}
	njTop, ok := top.In.(*NestJoin)
	if !ok {
		t.Fatalf("expected Select over NestJoin:\n%s", Explain(opt))
	}
	if _, ok := njTop.L.(*Select); !ok {
		t.Errorf("left-only conjunct not pushed into the left operand:\n%s", Explain(opt))
	}
	if got := evalPlan(t, db, opt); !value.Equal(got, want) {
		t.Error("split pushdown changed semantics")
	}
}

// TestSelectThroughProject: a selection above a label projection commutes
// with it, and composed with the pushdown it reaches the scan below a nest
// join — the plan shape the translator produces for "subquery conjunct, then
// plain conjunct" WHERE clauses.
func TestSelectThroughProject(t *testing.T) {
	_, db, b := equivEnv()
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, _ := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), tmql.MustParse("y.a"), "s")
	proj, err := b.Project(nj, "x", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := b.Select(proj, "v", tmql.MustParse("v.b > 2"))
	if err != nil {
		t.Fatal(err)
	}
	want := evalPlan(t, db, sel)
	opt, err := Optimize(b, sel)
	if err != nil {
		t.Fatal(err)
	}
	// The selection must cross the projection; with only left attributes
	// used, projection elimination and pushdown then collapse the plan all
	// the way to σ over the scan.
	if _, ok := opt.(*Select); ok {
		t.Errorf("selection did not cross the projection:\n%s", Explain(opt))
	}
	if got := evalPlan(t, db, opt); !value.Equal(got, want) {
		t.Error("select-through-project changed semantics")
	}
}
