package algebra

import (
	"strings"
	"testing"

	"tmdb/internal/datagen"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
)

func builder() *Builder {
	cat, _ := datagen.XYZ(datagen.DefaultSpec())
	return NewBuilder(cat)
}

func TestScanTyping(t *testing.T) {
	b := builder()
	s, err := b.Scan("X")
	if err != nil {
		t.Fatal(err)
	}
	xT, _, _ := datagen.XYZTypes()
	if !types.Equal(s.Elem(), xT) {
		t.Errorf("Scan elem = %s", s.Elem())
	}
	if _, err := b.Scan("NOPE"); err == nil {
		t.Error("unknown extension should fail")
	}
}

func TestSelectTyping(t *testing.T) {
	b := builder()
	s, _ := b.Scan("X")
	sel, err := b.Select(s, "x", tmql.MustParse("x.b > 1"))
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(sel.Elem(), s.Elem()) {
		t.Error("Select must preserve element type")
	}
	if _, err := b.Select(s, "x", tmql.MustParse("x.b + 1")); err == nil {
		t.Error("non-boolean predicate should fail")
	}
	if _, err := b.Select(s, "x", tmql.MustParse("x.nosuch = 1")); err == nil {
		t.Error("unknown field should fail")
	}
}

func TestMapAndProjectTyping(t *testing.T) {
	b := builder()
	s, _ := b.Scan("X")
	m, err := b.Map(s, "x", tmql.MustParse("(n = x.b + 1)"))
	if err != nil {
		t.Fatal(err)
	}
	if m.Elem().String() != "(n : INT)" {
		t.Errorf("Map elem = %s", m.Elem())
	}
	p, err := b.Project(s, "x", "b")
	if err != nil {
		t.Fatal(err)
	}
	if p.Elem().String() != "(b : INT)" {
		t.Errorf("Project elem = %s", p.Elem())
	}
	if _, err := b.Project(s, "x", "nosuch"); err == nil {
		t.Error("projecting unknown label should fail")
	}
}

func TestJoinTyping(t *testing.T) {
	b := builder()
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	j, err := b.Join(JoinInner, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	if err != nil {
		t.Fatal(err)
	}
	if len(j.Elem().Fields) != 4 { // a, b from X; c, d from Z
		t.Errorf("join elem = %s", j.Elem())
	}
	// Semijoin keeps left type.
	sj, err := b.Join(JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(sj.Elem(), x.Elem()) {
		t.Error("semijoin must keep left element type")
	}
	// Label collision: X and Y both have attributes a and b.
	y, _ := b.Scan("Y")
	if _, err := b.Join(JoinInner, x, y, "x", "y", tmql.MustParse("x.b = y.b")); err == nil ||
		!strings.Contains(err.Error(), "collision") {
		t.Errorf("collision should fail: %v", err)
	}
	// Same variable name on both sides.
	if _, err := b.Join(JoinInner, x, z, "v", "v", tmql.MustParse("TRUE")); err == nil {
		t.Error("identical join variables should fail")
	}
	// Non-boolean predicate.
	if _, err := b.Join(JoinInner, x, z, "x", "z", tmql.MustParse("x.b + z.d")); err == nil {
		t.Error("non-boolean join predicate should fail")
	}
}

func TestNestJoinTyping(t *testing.T) {
	b := builder()
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, err := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), tmql.MustParse("y.a"), "zs")
	if err != nil {
		t.Fatal(err)
	}
	ft, ok := nj.Elem().Field("zs")
	if !ok || ft.String() != "P INT" {
		t.Errorf("nest join label type = %v", ft)
	}
	// Default function is the identity on the right variable.
	nj2, err := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), nil, "ys")
	if err != nil {
		t.Fatal(err)
	}
	ft2, _ := nj2.Elem().Field("ys")
	if !types.Equal(ft2, types.SetOf(y.Elem())) {
		t.Errorf("identity nest join label type = %s", ft2)
	}
	// Label freshness (paper side condition): X already has attribute a.
	if _, err := b.NestJoin(x, y, "x", "y", tmql.MustParse("TRUE"), nil, "a"); err == nil ||
		!strings.Contains(err.Error(), "already occurs") {
		t.Errorf("label collision should fail: %v", err)
	}
}

func TestNestTyping(t *testing.T) {
	b := builder()
	y, _ := b.Scan("Y")
	n, err := b.Nest(y, []string{"a", "c"}, "grp", false)
	if err != nil {
		t.Fatal(err)
	}
	et := n.Elem()
	if _, ok := et.Field("a"); ok {
		t.Error("nested attribute must leave the top level")
	}
	g, ok := et.Field("grp")
	if !ok || g.Kind != types.KSet || g.Elem.Kind != types.KTuple {
		t.Errorf("grp type = %v", g)
	}
	if _, err := b.Nest(y, []string{"nosuch"}, "g", false); err == nil {
		t.Error("unknown nest attribute should fail")
	}
	if _, err := b.Nest(y, nil, "g", false); err == nil {
		t.Error("empty nest attribute list should fail")
	}
	if _, err := b.Nest(y, []string{"a", "a"}, "g", false); err == nil {
		t.Error("duplicate nest attribute should fail")
	}
	if _, err := b.Nest(y, []string{"a"}, "b", false); err == nil {
		t.Error("label colliding with grouping attribute should fail")
	}
}

func TestUnnestTyping(t *testing.T) {
	b := builder()
	x, _ := b.Scan("X") // a : P INT (scalar elements), b : INT
	u, err := b.Unnest(x, "a")
	if err != nil {
		t.Fatal(err)
	}
	if !u.Scalar() {
		t.Error("unnesting P INT should be scalar")
	}
	if ft, _ := u.Elem().Field("a"); ft != types.Int {
		t.Errorf("unnested a type = %v", ft)
	}
	// Tuple-element unnest via a nest first.
	y, _ := b.Scan("Y")
	n, _ := b.Nest(y, []string{"a"}, "grp", false)
	u2, err := b.Unnest(n, "grp")
	if err != nil {
		t.Fatal(err)
	}
	if u2.Scalar() {
		t.Error("unnesting tuples should not be scalar")
	}
	if _, ok := u2.Elem().Field("a"); !ok {
		t.Errorf("unnest elem = %s", u2.Elem())
	}
	if _, err := b.Unnest(x, "b"); err == nil {
		t.Error("unnesting non-set attribute should fail")
	}
	if _, err := b.Unnest(x, "nosuch"); err == nil {
		t.Error("unknown attribute should fail")
	}
}

func TestSetOpTyping(t *testing.T) {
	b := builder()
	x1, _ := b.Scan("X")
	x2, _ := b.Scan("X")
	s, err := b.SetOp(SetUnion, x1, x2)
	if err != nil {
		t.Fatal(err)
	}
	if !types.Equal(s.Elem(), x1.Elem()) {
		t.Errorf("union elem = %s", s.Elem())
	}
	z, _ := b.Scan("Z")
	if _, err := b.SetOp(SetDiff, x1, z); err == nil {
		t.Error("set op over incompatible elements should fail")
	}
}

func TestEvalSetTyping(t *testing.T) {
	b := builder()
	e, err := b.EvalSet(tmql.MustParse("{1, 2}"))
	if err != nil {
		t.Fatal(err)
	}
	if e.Elem() != types.Int {
		t.Errorf("EvalSet elem = %s", e.Elem())
	}
	if _, err := b.EvalSet(tmql.MustParse("1 + 1")); err == nil {
		t.Error("EvalSet over scalar should fail")
	}
}

func TestExplainAndCountOps(t *testing.T) {
	b := builder()
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, _ := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), tmql.MustParse("y.a"), "zs")
	sel, _ := b.Select(nj, "x", tmql.MustParse("x.a SUBSETEQ x.zs"))
	proj, _ := b.Project(sel, "x", "a", "b")
	out := Explain(proj)
	for _, frag := range []string{"Map", "Select", "NestJoin", "Scan(X)", "Scan(Y)"} {
		if !strings.Contains(out, frag) {
			t.Errorf("Explain output missing %s:\n%s", frag, out)
		}
	}
	// Children are indented deeper than parents.
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 || strings.HasPrefix(lines[0], " ") || !strings.HasPrefix(lines[4], "      ") {
		t.Errorf("Explain indentation wrong:\n%s", out)
	}
	ops := CountOps(proj)
	want := map[string]int{"Map": 1, "Select": 1, "NestJoin": 1, "Scan": 2}
	for k, v := range want {
		if ops[k] != v {
			t.Errorf("CountOps[%s] = %d, want %d", k, ops[k], v)
		}
	}
}

func TestPlanWalkEarlyStop(t *testing.T) {
	b := builder()
	x, _ := b.Scan("X")
	sel, _ := b.Select(x, "x", tmql.MustParse("TRUE"))
	var n int
	Walk(sel, func(Plan) bool { n++; return false })
	if n != 1 {
		t.Errorf("Walk early stop visited %d", n)
	}
}

func TestJoinKindStrings(t *testing.T) {
	names := map[JoinKind]string{
		JoinInner: "Join", JoinSemi: "SemiJoin", JoinAnti: "AntiJoin", JoinLeftOuter: "OuterJoin",
	}
	for k, want := range names {
		if k.String() != want {
			t.Errorf("%v.String() = %s", k, k.String())
		}
	}
	if SetUnion.String() != "Union" || SetIntersect.String() != "Intersect" || SetDiff.String() != "Diff" {
		t.Error("SetOpKind strings broken")
	}
}
