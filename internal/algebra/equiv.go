package algebra

import (
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// Rewrite rules over logical plans implementing the §6 algebraic properties
// of the nest join and standard cleanup rules. The nest join has "less
// pleasant algebraic properties" than the regular join — it is neither
// commutative nor associative — so the rule set is deliberately small and
// every rule matches one of the identities the paper states:
//
//	πX(X △ Y) = X                            (projection elimination)
//	σp∧q(X △ Y) = σq(σp(X) △ Y)              (selection pushdown: the nest
//	                                          join preserves X's tuples
//	                                          one-to-one, so the left-only
//	                                          conjuncts p commute; the rest q
//	                                          stays above)
//	σp(map[t](X)) = map[t](σp∘t(X))          (selection through projection,
//	                                          the enabling step for the
//	                                          pushdown above)
//	(X ⋈r(x,y) Y) △r(x,z) Z = (X △r(x,z) Z) ⋈r(x,y) Y   — not implemented as
//	a rewrite (it needs cost guidance to be useful) but verified as a tested
//	equivalence in equiv_test.go.
//
// Optimize applies the rules bottom-up until a fixpoint. It is semantics-
// preserving (property-tested against execution of both plans). Since the
// unified optimizer, it is no longer a pre-planning pass: the planner's
// logical-alternative generator calls it to produce the "rewrite" peer
// candidate that competes on cost with the as-translated plan (see
// planner.Alternatives); Options.Rewrite merely pins that candidate.
func Optimize(b *Builder, p Plan) (Plan, error) {
	for {
		q, changed, err := rewriteOnce(b, p)
		if err != nil {
			return nil, err
		}
		if !changed {
			return q, nil
		}
		p = q
	}
}

func rewriteOnce(b *Builder, p Plan) (Plan, bool, error) {
	// Rewrite children first.
	switch n := p.(type) {
	case *Select:
		in, ch, err := rewriteOnce(b, n.In)
		if err != nil {
			return nil, false, err
		}
		if ch {
			s, err := b.Select(in, n.Var, n.Pred)
			return s, true, err
		}
	case *Map:
		in, ch, err := rewriteOnce(b, n.In)
		if err != nil {
			return nil, false, err
		}
		if ch {
			m, err := b.Map(in, n.Var, n.Out)
			return m, true, err
		}
	case *Join:
		l, chL, err := rewriteOnce(b, n.L)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := rewriteOnce(b, n.R)
		if err != nil {
			return nil, false, err
		}
		if chL || chR {
			j, err := b.Join(n.Kind, l, r, n.LVar, n.RVar, n.Pred)
			return j, true, err
		}
	case *NestJoin:
		l, chL, err := rewriteOnce(b, n.L)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := rewriteOnce(b, n.R)
		if err != nil {
			return nil, false, err
		}
		if chL || chR {
			j, err := b.NestJoin(l, r, n.LVar, n.RVar, n.Pred, n.Fn, n.Label)
			return j, true, err
		}
	case *Nest:
		in, ch, err := rewriteOnce(b, n.In)
		if err != nil {
			return nil, false, err
		}
		if ch {
			nn, err := b.Nest(in, n.Attrs, n.Label, n.NullAware)
			return nn, true, err
		}
	case *Unnest:
		in, ch, err := rewriteOnce(b, n.In)
		if err != nil {
			return nil, false, err
		}
		if ch {
			u, err := b.Unnest(in, n.Attr)
			return u, true, err
		}
	case *SetOp:
		l, chL, err := rewriteOnce(b, n.L)
		if err != nil {
			return nil, false, err
		}
		r, chR, err := rewriteOnce(b, n.R)
		if err != nil {
			return nil, false, err
		}
		if chL || chR {
			s, err := b.SetOp(n.Kind, l, r)
			return s, true, err
		}
	}

	// Root rules.
	if q, ok, err := ruleSelectTrue(p); err != nil || ok {
		return q, ok, err
	}
	if q, ok, err := ruleMergeSelects(b, p); err != nil || ok {
		return q, ok, err
	}
	if q, ok, err := ruleSelectThroughProject(b, p); err != nil || ok {
		return q, ok, err
	}
	if q, ok, err := rulePushSelectLeftOfNestJoin(b, p); err != nil || ok {
		return q, ok, err
	}
	if q, ok, err := ruleProjectAwayNestJoin(b, p); err != nil || ok {
		return q, ok, err
	}
	return p, false, nil
}

// ruleSelectTrue drops σ[true].
func ruleSelectTrue(p Plan) (Plan, bool, error) {
	s, ok := p.(*Select)
	if !ok {
		return p, false, nil
	}
	if lit, ok := s.Pred.(*tmql.Lit); ok && lit.V.Kind() == value.KindBool && lit.V.AsBool() {
		return s.In, true, nil
	}
	return p, false, nil
}

// ruleMergeSelects fuses σp(σq(X)) into σ(p ∧ q)(X), renaming q's variable
// to p's.
func ruleMergeSelects(b *Builder, p Plan) (Plan, bool, error) {
	outer, ok := p.(*Select)
	if !ok {
		return p, false, nil
	}
	inner, ok := outer.In.(*Select)
	if !ok {
		return p, false, nil
	}
	innerPred := renameVar(inner.Pred, inner.Var, outer.Var)
	merged := &tmql.Binary{Op: tmql.OpAnd, L: innerPred, R: outer.Pred}
	s, err := b.Select(inner.In, outer.Var, merged)
	return s, err == nil, err
}

// rulePushSelectLeftOfNestJoin pushes the left-only conjuncts of
// σ[p(x)](X △ Y) into the left operand: σ[rest](σ[pushable](X) △ Y). A
// conjunct is pushable when it references neither the nest-join label nor
// any attribute outside L's element type. Sound because the nest join emits
// each left tuple exactly once, extended — left-only predicates see the same
// values before and after. Splitting the conjunction (rather than requiring
// the whole predicate to be left-only) lets the classification selection on
// the grouped attribute stay above while outer-table restrictions shrink the
// nest-join input — the §6 selection-pushdown the cost-based optimizer
// weighs as a logical alternative.
func rulePushSelectLeftOfNestJoin(b *Builder, p Plan) (Plan, bool, error) {
	s, ok := p.(*Select)
	if !ok {
		return p, false, nil
	}
	nj, ok := s.In.(*NestJoin)
	if !ok {
		return p, false, nil
	}
	var push, keep []tmql.Expr
	for _, c := range tmql.SplitAnd(s.Pred) {
		if !exprUsesLabel(c, s.Var, nj.Label) && fieldsSubset(c, s.Var, nj.L.Elem()) {
			push = append(push, c)
		} else {
			keep = append(keep, c)
		}
	}
	if len(push) == 0 {
		return p, false, nil
	}
	pushed, err := b.Select(nj.L, nj.LVar, renameVar(tmql.JoinAnd(push), s.Var, nj.LVar))
	if err != nil {
		return p, false, nil
	}
	out, err := b.NestJoin(pushed, nj.R, nj.LVar, nj.RVar, nj.Pred, nj.Fn, nj.Label)
	if err != nil {
		return nil, false, err
	}
	if len(keep) > 0 {
		kept, err := b.Select(out, s.Var, tmql.JoinAnd(keep))
		if err != nil {
			return nil, false, err
		}
		return kept, true, nil
	}
	return out, true, nil
}

// ruleSelectThroughProject commutes a selection with a tuple-constructing
// Map: σ[p](map[(l₁ = e₁, …)](X)) = map[…](σ[p′](X)) where p′ replaces every
// v.lᵢ by eᵢ. Applicable when the predicate observes the map's output only
// through field selections of constructed labels (never the whole tuple).
// This is what lets a restriction that the translator placed above a
// label-projection sink toward the nest join below it, where
// rulePushSelectLeftOfNestJoin can take over.
func ruleSelectThroughProject(b *Builder, p Plan) (Plan, bool, error) {
	s, ok := p.(*Select)
	if !ok {
		return p, false, nil
	}
	m, ok := s.In.(*Map)
	if !ok {
		return p, false, nil
	}
	cons, ok := m.Out.(*tmql.TupleCons)
	if !ok {
		return p, false, nil
	}
	fields := make(map[string]tmql.Expr, len(cons.Fields))
	for _, f := range cons.Fields {
		fields[f.Label] = f.E
	}
	if usesVarOutsideFields(s.Pred, s.Var, fields) {
		return p, false, nil
	}
	inner, err := b.Select(m.In, m.Var, substVarFields(s.Pred, s.Var, fields))
	if err != nil {
		return p, false, nil
	}
	out, err := b.Map(inner, m.Var, m.Out)
	return out, err == nil, err
}

// ruleProjectAwayNestJoin implements πX(X △ Y) = X: a Map over a NestJoin
// that projects exactly (a subset of) the left operand's attributes never
// observes the group, so the nest join is dead.
func ruleProjectAwayNestJoin(b *Builder, p Plan) (Plan, bool, error) {
	m, ok := p.(*Map)
	if !ok {
		return p, false, nil
	}
	nj, ok := m.In.(*NestJoin)
	if !ok {
		return p, false, nil
	}
	if exprUsesLabel(m.Out, m.Var, nj.Label) {
		return p, false, nil
	}
	if !fieldsSubset(m.Out, m.Var, nj.L.Elem()) {
		return p, false, nil
	}
	out, err := b.Map(nj.L, nj.LVar, renameVar(m.Out, m.Var, nj.LVar))
	if err != nil {
		return p, false, nil
	}
	return out, true, nil
}

// exprUsesLabel reports whether e contains v.label (field selection of the
// nest-join label on the operator variable) or uses v whole (which would
// expose the label).
func exprUsesLabel(e tmql.Expr, v, label string) bool {
	exposed := false
	var walk func(n tmql.Expr)
	walk = func(n tmql.Expr) {
		if exposed || n == nil {
			return
		}
		if fs, ok := n.(*tmql.FieldSel); ok {
			if inner, ok := fs.X.(*tmql.Var); ok && inner.Name == v {
				if fs.Label == label {
					exposed = true
				}
				return // v is consumed by this selection
			}
			walk(fs.X)
			return
		}
		if vr, ok := n.(*tmql.Var); ok {
			if vr.Name == v {
				exposed = true // whole-tuple use
			}
			return
		}
		for _, c := range childrenOf(n) {
			walk(c)
		}
	}
	walk(e)
	return exposed
}

// fieldsSubset reports whether every v.field selection in e names a field of
// elem (so e is evaluable against elem) and e does not use v whole unless
// elem covers it — conservatively false on whole-tuple use.
func fieldsSubset(e tmql.Expr, v string, elem *types.Type) bool {
	ok := true
	var walk func(n tmql.Expr)
	walk = func(n tmql.Expr) {
		if !ok || n == nil {
			return
		}
		if fs, isFS := n.(*tmql.FieldSel); isFS {
			if inner, isVar := fs.X.(*tmql.Var); isVar && inner.Name == v {
				if _, has := elem.Field(fs.Label); !has {
					ok = false
				}
				return
			}
			walk(fs.X)
			return
		}
		if vr, isVar := n.(*tmql.Var); isVar {
			if vr.Name == v {
				ok = false // whole-tuple use: not a pure projection of elem
			}
			return
		}
		for _, c := range childrenOf(n) {
			walk(c)
		}
	}
	walk(e)
	return ok
}

// usesVarOutsideFields reports whether e observes v other than through field
// selections whose labels are keys of fields — whole-tuple use or a
// selection of an unconstructed label.
func usesVarOutsideFields(e tmql.Expr, v string, fields map[string]tmql.Expr) bool {
	outside := false
	var walk func(n tmql.Expr)
	walk = func(n tmql.Expr) {
		if outside || n == nil {
			return
		}
		if fs, ok := n.(*tmql.FieldSel); ok {
			if inner, ok := fs.X.(*tmql.Var); ok && inner.Name == v {
				if _, has := fields[fs.Label]; !has {
					outside = true
				}
				return
			}
			walk(fs.X)
			return
		}
		if vr, ok := n.(*tmql.Var); ok {
			if vr.Name == v {
				outside = true
			}
			return
		}
		for _, c := range childrenOf(n) {
			walk(c)
		}
	}
	walk(e)
	return outside
}

// substVarFields replaces every free field selection v.l in e by fields[l]
// (shadow-aware via the shared tmql rewriter). Callers must have established
// via usesVarOutsideFields that v is never used whole and every selected
// label is present.
func substVarFields(e tmql.Expr, v string, fields map[string]tmql.Expr) tmql.Expr {
	return tmql.SubstFieldSel(e, func(u, l string) tmql.Expr {
		if u != v {
			return nil
		}
		return fields[l]
	})
}

// childrenOf returns the direct child expressions of n (binders included —
// callers above only inspect Var/FieldSel patterns that shadowing cannot
// produce for operator variables, which are fresh by construction).
func childrenOf(n tmql.Expr) []tmql.Expr {
	var out []tmql.Expr
	first := true
	tmql.Walk(n, func(c tmql.Expr) bool {
		if first {
			first = false
			return true
		}
		out = append(out, c)
		return false
	})
	return out
}

// renameVar renames free occurrences of old to new inside e.
func renameVar(e tmql.Expr, old, newName string) tmql.Expr {
	if old == newName {
		return e
	}
	return substFreeVar(e, old, newName)
}

func substFreeVar(e tmql.Expr, old, newName string) tmql.Expr {
	switch n := e.(type) {
	case nil:
		return nil
	case *tmql.Var:
		if n.Name == old {
			return &tmql.Var{Name: newName}
		}
		return n
	case *tmql.Lit, *tmql.TableRef:
		return e
	case *tmql.FieldSel:
		return &tmql.FieldSel{X: substFreeVar(n.X, old, newName), Label: n.Label}
	case *tmql.TupleCons:
		fs := make([]tmql.TupleField, len(n.Fields))
		for i, f := range n.Fields {
			fs[i] = tmql.TupleField{Label: f.Label, E: substFreeVar(f.E, old, newName)}
		}
		return &tmql.TupleCons{Fields: fs}
	case *tmql.SetCons:
		es := make([]tmql.Expr, len(n.Elems))
		for i, el := range n.Elems {
			es[i] = substFreeVar(el, old, newName)
		}
		return &tmql.SetCons{Elems: es}
	case *tmql.ListCons:
		es := make([]tmql.Expr, len(n.Elems))
		for i, el := range n.Elems {
			es[i] = substFreeVar(el, old, newName)
		}
		return &tmql.ListCons{Elems: es}
	case *tmql.Binary:
		return &tmql.Binary{Op: n.Op, L: substFreeVar(n.L, old, newName), R: substFreeVar(n.R, old, newName)}
	case *tmql.Unary:
		return &tmql.Unary{Op: n.Op, X: substFreeVar(n.X, old, newName)}
	case *tmql.Agg:
		return &tmql.Agg{Kind: n.Kind, X: substFreeVar(n.X, old, newName)}
	case *tmql.Quant:
		over := substFreeVar(n.Over, old, newName)
		pred := n.Pred
		if n.Var != old {
			pred = substFreeVar(n.Pred, old, newName)
		}
		return &tmql.Quant{Kind: n.Kind, Var: n.Var, Over: over, Pred: pred}
	case *tmql.SFW:
		froms := make([]tmql.FromItem, len(n.Froms))
		shadowed := false
		for i, f := range n.Froms {
			src := f.Src
			if !shadowed {
				src = substFreeVar(f.Src, old, newName)
			}
			froms[i] = tmql.FromItem{Var: f.Var, Src: src}
			if f.Var == old {
				shadowed = true
			}
		}
		where, result := n.Where, n.Result
		if !shadowed {
			where = substFreeVar(n.Where, old, newName)
			result = substFreeVar(n.Result, old, newName)
		}
		return &tmql.SFW{Result: result, Froms: froms, Where: where}
	case *tmql.Let:
		def := substFreeVar(n.Def, old, newName)
		body := n.Body
		if n.V != old {
			body = substFreeVar(n.Body, old, newName)
		}
		return &tmql.Let{V: n.V, Def: def, Body: body}
	case *tmql.Unnest:
		return &tmql.Unnest{X: substFreeVar(n.X, old, newName)}
	}
	return e
}
