package algebra

import (
	"strings"
)

// Explain renders a plan tree as an indented multi-line string, one operator
// per line, children indented below their parent — the format printed by
// `tmql -explain` and by EXPERIMENTS.md plan listings.
func Explain(p Plan) string {
	var sb strings.Builder
	explain(&sb, p, 0)
	return sb.String()
}

func explain(sb *strings.Builder, p Plan, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	sb.WriteString(p.Describe())
	sb.WriteByte('\n')
	for _, c := range p.Children() {
		explain(sb, c, depth+1)
	}
}

// Walk visits p and all descendants in preorder.
func Walk(p Plan, fn func(Plan) bool) {
	if p == nil || !fn(p) {
		return
	}
	for _, c := range p.Children() {
		Walk(c, fn)
	}
}

// CountOps returns the number of operator nodes per Describe()-prefix kind,
// used by tests asserting plan shapes (e.g. "the ∈ variant uses a SemiJoin
// and no NestJoin").
func CountOps(p Plan) map[string]int {
	out := make(map[string]int)
	Walk(p, func(n Plan) bool {
		switch n.(type) {
		case *Scan:
			out["Scan"]++
		case *Select:
			out["Select"]++
		case *Map:
			out["Map"]++
		case *Join:
			out[n.(*Join).Kind.String()]++
		case *NestJoin:
			out["NestJoin"]++
		case *Nest:
			if n.(*Nest).NullAware {
				out["Nest*"]++
			} else {
				out["Nest"]++
			}
		case *Unnest:
			out["Unnest"]++
		case *SetOp:
			out[n.(*SetOp).Kind.String()]++
		case *EvalNode:
			out["Eval"]++
		}
		return true
	})
	return out
}
