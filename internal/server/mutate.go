package server

import (
	"net/http"
	"strings"
)

// Mutation endpoints: data (POST /insert, /delete) and DDL (POST
// /index/create, /index/drop) operations over the engine's typed mutation
// surface. They ride the same drain gate and admission semaphore as queries —
// a delete's predicate evaluation is engine work like any query — and their
// errors map through the query taxonomy (422 query_error for unknown tables,
// bad expressions, missing indexes). None of them are idempotent, so the
// client's retry policy never replays them (see RetryPolicy).

// insertRequest is the POST /insert body: Value is a closed TM expression
// (typically a tuple constructor) inserted into Table.
type insertRequest struct {
	Table string `json:"table"`
	Value string `json:"value"`
}

// deleteRequest is the POST /delete body: every tuple of Table satisfying
// Predicate — with Var bound to the candidate tuple — is removed.
type deleteRequest struct {
	Table     string `json:"table"`
	Var       string `json:"var"`
	Predicate string `json:"predicate"`
}

// indexRequest is the POST /index/create and /index/drop body: the table and
// the index's ordered attribute list.
type indexRequest struct {
	Table string   `json:"table"`
	Attrs []string `json:"attrs"`
}

// MutateResponse is the response body of all four mutation endpoints. Added
// is meaningful for /insert (set semantics: false when the tuple was already
// present), Deleted for /delete, Index for the DDL pair.
type MutateResponse struct {
	RequestID string `json:"request_id"`
	Table     string `json:"table"`
	Added     bool   `json:"added,omitempty"`
	Deleted   int    `json:"deleted,omitempty"`
	Index     string `json:"index,omitempty"`
}

func (s *Server) handleInsert(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	var req insertRequest
	if !decode(w, r, reqID, &req) {
		return
	}
	if req.Table == "" || req.Value == "" {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "insert needs both table and value")
		return
	}
	if !s.admit(w, r, reqID) {
		return
	}
	defer s.release()
	added, err := s.eng.Insert(req.Table, req.Value)
	if err != nil {
		s.writeEngineError(w, reqID, err)
		return
	}
	s.inserts.Add(1)
	writeJSON(w, http.StatusOK, reqID, MutateResponse{RequestID: reqID, Table: req.Table, Added: added})
}

func (s *Server) handleDelete(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	var req deleteRequest
	if !decode(w, r, reqID, &req) {
		return
	}
	if req.Table == "" || req.Var == "" || req.Predicate == "" {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "delete needs table, var, and predicate")
		return
	}
	if !s.admit(w, r, reqID) {
		return
	}
	defer s.release()
	n, err := s.eng.Delete(req.Table, req.Var, req.Predicate)
	if err != nil {
		s.writeEngineError(w, reqID, err)
		return
	}
	s.deletes.Add(1)
	writeJSON(w, http.StatusOK, reqID, MutateResponse{RequestID: reqID, Table: req.Table, Deleted: n})
}

func (s *Server) handleIndexCreate(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	var req indexRequest
	if !decode(w, r, reqID, &req) {
		return
	}
	if req.Table == "" || len(req.Attrs) == 0 {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "index create needs table and attrs")
		return
	}
	if !s.admit(w, r, reqID) {
		return
	}
	defer s.release()
	if err := s.eng.CreateIndex(req.Table, req.Attrs...); err != nil {
		s.writeEngineError(w, reqID, err)
		return
	}
	s.indexCreates.Add(1)
	writeJSON(w, http.StatusOK, reqID, MutateResponse{
		RequestID: reqID, Table: req.Table, Index: strings.Join(req.Attrs, ","),
	})
}

func (s *Server) handleIndexDrop(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	var req indexRequest
	if !decode(w, r, reqID, &req) {
		return
	}
	if req.Table == "" || len(req.Attrs) == 0 {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "index drop needs table and attrs")
		return
	}
	if !s.admit(w, r, reqID) {
		return
	}
	defer s.release()
	if err := s.eng.DropIndex(req.Table, req.Attrs...); err != nil {
		s.writeEngineError(w, reqID, err)
		return
	}
	s.indexDrops.Add(1)
	writeJSON(w, http.StatusOK, reqID, MutateResponse{
		RequestID: reqID, Table: req.Table, Index: strings.Join(req.Attrs, ","),
	})
}
