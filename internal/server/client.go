package server

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"time"
)

// Client is a thin typed wrapper over the server's HTTP/JSON API, used by the
// conformance tests and handy for tooling. A Client is safe for concurrent
// use (the underlying http.Client is).
type Client struct {
	base string
	hc   *http.Client
	// SessionID, when set, is attached to every request that supports one.
	SessionID string
	// Retry, when enabled, re-sends transient rejections (429 queue_timeout,
	// 503 draining) of idempotent requests with bounded exponential backoff.
	// The zero value disables retry. Set before first use; not synchronized.
	Retry RetryPolicy
}

// RetryPolicy bounds the client's automatic retry of transient server
// rejections. Only idempotent requests are ever retried — POST /query,
// POST /explain, GET /stats, GET /healthz — and only on the transient codes
// queue_timeout and draining; mutating endpoints (/session, /prepare,
// /insert, /delete, /index/*) and prepared-statement execution are never
// re-sent, and non-transient errors
// (query errors, deadline/budget breaches, cancellations) fail immediately.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, first included (1 = no
	// retry). 0 disables retry entirely.
	MaxAttempts int
	// BaseDelay is the first backoff step, doubling each retry; each sleep is
	// equal-jittered (half fixed, half random). 0 means 25ms.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff step. 0 means 1s.
	MaxDelay time.Duration
}

// retryable reports whether a (method, path) pair is safe to re-send: it must
// not create, mutate, or consume server-side state when repeated.
func retryable(method, path string) bool {
	switch {
	case method == "POST" && (path == "/query" || path == "/explain"):
		return true
	case method == "GET" && (path == "/stats" || path == "/healthz"):
		return true
	}
	return false
}

// transient reports whether err is a server rejection worth retrying.
func transient(err error) bool {
	var se *ServerError
	if !errors.As(err, &se) {
		return false
	}
	return se.Code == "queue_timeout" || se.Code == "draining"
}

// backoff returns the sleep before retry number attempt (0-based): an
// exponentially growing step, capped, with equal jitter so synchronized
// clients fan out.
func (p RetryPolicy) backoff(attempt int) time.Duration {
	base := p.BaseDelay
	if base <= 0 {
		base = 25 * time.Millisecond
	}
	max := p.MaxDelay
	if max <= 0 {
		max = time.Second
	}
	step := base << uint(attempt)
	if step <= 0 || step > max {
		step = max
	}
	return step/2 + rand.N(step/2+1)
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// ServerError is a structured error response from the server.
type ServerError struct {
	Code      string
	Message   string
	RequestID string
	// HTTPStatus is the response's status code.
	HTTPStatus int
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server: %s (%s, http %d)", e.Message, e.Code, e.HTTPStatus)
}

func (c *Client) do(method, path string, body, into any) error {
	var buf []byte
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		buf = b
	}
	attempts := 1
	if c.Retry.MaxAttempts > 1 && retryable(method, path) {
		attempts = c.Retry.MaxAttempts
	}
	var err error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.Retry.backoff(attempt - 1))
		}
		err = c.doOnce(method, path, buf, into)
		if err == nil || !transient(err) {
			return err
		}
	}
	return err
}

// doOnce sends one request (body pre-marshaled so retries re-send identical
// bytes) and decodes the response.
func (c *Client) doOnce(method, path string, body []byte, into any) error {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error.Code != "" {
			return &ServerError{
				Code: er.Error.Code, Message: er.Error.Message,
				RequestID: er.RequestID, HTTPStatus: resp.StatusCode,
			}
		}
		return fmt.Errorf("server: http %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(raw, into)
}

// NewSession registers a session with the given options and stores its ID on
// the client for subsequent calls.
func (c *Client) NewSession(opts WireOptions) (string, error) {
	var resp sessionResponse
	if err := c.do("POST", "/session", sessionRequest{Options: opts}, &resp); err != nil {
		return "", err
	}
	c.SessionID = resp.SessionID
	return resp.SessionID, nil
}

// CloseSession closes the client's session (a no-op if none was created).
func (c *Client) CloseSession() error {
	if c.SessionID == "" {
		return nil
	}
	err := c.do("DELETE", "/session/"+c.SessionID, nil, nil)
	if err == nil {
		c.SessionID = ""
	}
	return err
}

// Query runs a one-shot query. opts may be nil to use the session's options.
func (c *Client) Query(query string, opts *WireOptions) (*QueryResponse, error) {
	var resp QueryResponse
	err := c.do("POST", "/query", queryRequest{SessionID: c.SessionID, Query: query, Options: opts}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Prepare registers a named prepared statement in the client's session.
func (c *Client) Prepare(name, query string) ([]string, error) {
	var resp prepareResponse
	err := c.do("POST", "/prepare", prepareRequest{SessionID: c.SessionID, Name: name, Query: query}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Execute runs a prepared statement by name. opts may be nil to use the
// session's options.
func (c *Client) Execute(name string, opts *WireOptions) (*QueryResponse, error) {
	var resp QueryResponse
	err := c.do("POST", "/execute", queryRequest{SessionID: c.SessionID, Name: name, Options: opts}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explain returns the plan description of a query (or, with name != "", of a
// prepared statement).
func (c *Client) Explain(query, name string, opts *WireOptions) (string, error) {
	var resp explainResponse
	err := c.do("POST", "/explain", queryRequest{SessionID: c.SessionID, Query: query, Name: name, Options: opts}, &resp)
	if err != nil {
		return "", err
	}
	return resp.Explain, nil
}

// Insert inserts a closed TM expression (typically a tuple constructor) into
// a table, reporting whether it was actually added (false: already present,
// set semantics). Never retried — insertion is not idempotent.
func (c *Client) Insert(table, value string) (bool, error) {
	var resp MutateResponse
	if err := c.do("POST", "/insert", insertRequest{Table: table, Value: value}, &resp); err != nil {
		return false, err
	}
	return resp.Added, nil
}

// Delete removes every tuple of the table satisfying the predicate (with
// varName bound to the candidate tuple), returning the number removed.
func (c *Client) Delete(table, varName, predicate string) (int, error) {
	var resp MutateResponse
	if err := c.do("POST", "/delete", deleteRequest{Table: table, Var: varName, Predicate: predicate}, &resp); err != nil {
		return 0, err
	}
	return resp.Deleted, nil
}

// CreateIndex registers and builds a persistent hash index on the table's
// ordered attribute list.
func (c *Client) CreateIndex(table string, attrs ...string) error {
	return c.do("POST", "/index/create", indexRequest{Table: table, Attrs: attrs}, nil)
}

// DropIndex unregisters the persistent index on the table's ordered
// attribute list.
func (c *Client) DropIndex(table string, attrs ...string) error {
	return c.do("POST", "/index/drop", indexRequest{Table: table, Attrs: attrs}, nil)
}

// Stats fetches the server's counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do("GET", "/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health reports whether the server is accepting requests.
func (c *Client) Health() error {
	return c.do("GET", "/healthz", nil, nil)
}
