package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a thin typed wrapper over the server's HTTP/JSON API, used by the
// conformance tests and handy for tooling. A Client is safe for concurrent
// use (the underlying http.Client is).
type Client struct {
	base string
	hc   *http.Client
	// SessionID, when set, is attached to every request that supports one.
	SessionID string
}

// NewClient returns a client for the server at base (e.g.
// "http://127.0.0.1:8080"). hc may be nil for http.DefaultClient.
func NewClient(base string, hc *http.Client) *Client {
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{base: base, hc: hc}
}

// ServerError is a structured error response from the server.
type ServerError struct {
	Code      string
	Message   string
	RequestID string
	// HTTPStatus is the response's status code.
	HTTPStatus int
}

func (e *ServerError) Error() string {
	return fmt.Sprintf("server: %s (%s, http %d)", e.Message, e.Code, e.HTTPStatus)
}

func (c *Client) do(method, path string, body, into any) error {
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		var er errorResponse
		if json.Unmarshal(raw, &er) == nil && er.Error.Code != "" {
			return &ServerError{
				Code: er.Error.Code, Message: er.Error.Message,
				RequestID: er.RequestID, HTTPStatus: resp.StatusCode,
			}
		}
		return fmt.Errorf("server: http %d: %s", resp.StatusCode, bytes.TrimSpace(raw))
	}
	if into == nil {
		return nil
	}
	return json.Unmarshal(raw, into)
}

// NewSession registers a session with the given options and stores its ID on
// the client for subsequent calls.
func (c *Client) NewSession(opts WireOptions) (string, error) {
	var resp sessionResponse
	if err := c.do("POST", "/session", sessionRequest{Options: opts}, &resp); err != nil {
		return "", err
	}
	c.SessionID = resp.SessionID
	return resp.SessionID, nil
}

// CloseSession closes the client's session (a no-op if none was created).
func (c *Client) CloseSession() error {
	if c.SessionID == "" {
		return nil
	}
	err := c.do("DELETE", "/session/"+c.SessionID, nil, nil)
	if err == nil {
		c.SessionID = ""
	}
	return err
}

// Query runs a one-shot query. opts may be nil to use the session's options.
func (c *Client) Query(query string, opts *WireOptions) (*QueryResponse, error) {
	var resp QueryResponse
	err := c.do("POST", "/query", queryRequest{SessionID: c.SessionID, Query: query, Options: opts}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Prepare registers a named prepared statement in the client's session.
func (c *Client) Prepare(name, query string) ([]string, error) {
	var resp prepareResponse
	err := c.do("POST", "/prepare", prepareRequest{SessionID: c.SessionID, Name: name, Query: query}, &resp)
	if err != nil {
		return nil, err
	}
	return resp.Tables, nil
}

// Execute runs a prepared statement by name. opts may be nil to use the
// session's options.
func (c *Client) Execute(name string, opts *WireOptions) (*QueryResponse, error) {
	var resp QueryResponse
	err := c.do("POST", "/execute", queryRequest{SessionID: c.SessionID, Name: name, Options: opts}, &resp)
	if err != nil {
		return nil, err
	}
	return &resp, nil
}

// Explain returns the plan description of a query (or, with name != "", of a
// prepared statement).
func (c *Client) Explain(query, name string, opts *WireOptions) (string, error) {
	var resp explainResponse
	err := c.do("POST", "/explain", queryRequest{SessionID: c.SessionID, Query: query, Name: name, Options: opts}, &resp)
	if err != nil {
		return "", err
	}
	return resp.Explain, nil
}

// Stats fetches the server's counters.
func (c *Client) Stats() (*StatsResponse, error) {
	var resp StatsResponse
	if err := c.do("GET", "/stats", nil, &resp); err != nil {
		return nil, err
	}
	return &resp, nil
}

// Health reports whether the server is accepting requests.
func (c *Client) Health() error {
	return c.do("GET", "/healthz", nil, nil)
}
