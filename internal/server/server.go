// Package server is the network-facing query server over one engine: a
// multi-goroutine single-node HTTP/JSON service in the shape of the N1QL
// query engine, whose parse → prepare → execute split maps onto the engine's
// bind → plan → exec pipeline.
//
// The pieces:
//
//   - Sessions: POST /session registers per-session engine.Options (strategy,
//     join family, access path, parallelism, pins); subsequent requests name
//     the session and inherit them. Requests without a session run under the
//     server's default options. Sessions also namespace prepared statements.
//   - Prepared statements: POST /prepare parses and binds once
//     (engine.Prepare); POST /execute re-executes the bound tree, going
//     straight to the engine's plan cache — whose keys carry the
//     mutation-epoch vector of the referenced tables, so re-execution after a
//     mutation replans instead of serving a stale plan.
//   - Admission control: at most Config.MaxConcurrency queries execute at
//     once; excess requests queue up to Config.QueueTimeout and then fail
//     with a structured queue_timeout error rather than piling onto the
//     engine.
//   - Graceful shutdown: Shutdown stops admitting (requests fail fast with a
//     draining error, /healthz turns 503) and blocks until every in-flight
//     query has drained.
//   - Cancellation and budgets: the request's context is threaded through
//     admission and execution, so a client that disconnects mid-queue frees
//     its slot (counted as client_gone in /stats) and one that disconnects
//     mid-query aborts the executor. Per-session or per-request timeout_ms /
//     max_rows / max_build_bytes map onto engine.Limits; breaches come back
//     as structured 408 deadline_exceeded / 413 budget_exceeded documents,
//     with the discarded partial work accounted in /stats.
//   - Panic isolation: a panic anywhere in a request becomes a 500 internal
//     error document carrying the request ID; the server stays up. (The
//     engine already isolates execution panics into *engine.PanicError; the
//     ServeHTTP recover is defense in depth for the handler layer itself.)
//
// Every response carries a request ID (X-Request-ID header and request_id
// field); errors are structured {"error": {"code", "message"}} documents.
// The engine itself is safe for concurrent use (see ARCHITECTURE.md
// "Thread-safety contract"), so the server adds no query-path locking beyond
// the admission semaphore.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"tmdb/internal/engine"
	"tmdb/internal/exec"
)

// Config parameterizes a Server.
type Config struct {
	// MaxConcurrency bounds the number of queries executing at once
	// (admission control). 0 means 4 × GOMAXPROCS.
	MaxConcurrency int
	// QueueTimeout is how long an admitted-over-capacity request waits for an
	// execution slot before failing with code "queue_timeout". 0 means 2s.
	QueueTimeout time.Duration
	// DefaultOptions are the engine options of requests that name no session.
	DefaultOptions engine.Options
}

// withDefaults resolves zero fields.
func (c Config) withDefaults() Config {
	if c.MaxConcurrency <= 0 {
		c.MaxConcurrency = 4 * runtime.GOMAXPROCS(0)
	}
	if c.QueueTimeout <= 0 {
		c.QueueTimeout = 2 * time.Second
	}
	return c
}

// Server serves one engine over HTTP/JSON. Construct with New; it implements
// http.Handler. All methods are safe for concurrent use.
type Server struct {
	eng *engine.Engine
	cfg Config
	mux *http.ServeMux

	// sem is the admission semaphore: one token per concurrently executing
	// query.
	sem chan struct{}

	// reqSeq numbers requests for the X-Request-ID header.
	reqSeq atomic.Uint64

	// sessions registry. The default session (key "") is created eagerly and
	// cannot be closed.
	mu       sync.RWMutex
	sessions map[string]*session
	sessSeq  uint64

	// drain gate: tracks in-flight requests and rejects new ones while
	// draining.
	drain drainGate

	// counters for /stats.
	admitted      atomic.Uint64
	queueTimeouts atomic.Uint64
	drainRejects  atomic.Uint64

	// governance counters for /stats: aborted-query taxonomy plus the partial
	// work those aborts discarded.
	clientGone       atomic.Uint64
	deadlineExceeded atomic.Uint64
	budgetExceeded   atomic.Uint64
	canceled         atomic.Uint64
	panics           atomic.Uint64
	discardedRows    atomic.Int64
	discardedBytes   atomic.Int64

	// morsel-scheduler counters for /stats, aggregated across completed
	// queries (see exec.SchedStats).
	morselsDispatched atomic.Int64
	morselsStolen     atomic.Int64
	schedBusyNs       atomic.Int64

	// mutation counters for /stats: successful data and DDL operations.
	inserts      atomic.Uint64
	deletes      atomic.Uint64
	indexCreates atomic.Uint64
	indexDrops   atomic.Uint64

	// statsSeq numbers /stats snapshots: each response carries a unique,
	// strictly increasing seq, so concurrent scrapers can order their
	// snapshots and compute deltas without coordinating.
	statsSeq atomic.Uint64
}

// New returns a server over eng.
func New(eng *engine.Engine, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		eng:      eng,
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.MaxConcurrency),
		sessions: map[string]*session{"": newSession("", cfg.DefaultOptions)},
	}
	s.drain.idle = make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /session", s.handleSessionNew)
	mux.HandleFunc("DELETE /session/{id}", s.handleSessionClose)
	mux.HandleFunc("POST /query", s.handleQuery)
	mux.HandleFunc("POST /prepare", s.handlePrepare)
	mux.HandleFunc("POST /execute", s.handleExecute)
	mux.HandleFunc("POST /explain", s.handleExplain)
	mux.HandleFunc("POST /insert", s.handleInsert)
	mux.HandleFunc("POST /delete", s.handleDelete)
	mux.HandleFunc("POST /index/create", s.handleIndexCreate)
	mux.HandleFunc("POST /index/drop", s.handleIndexDrop)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux = mux
	return s
}

// Engine returns the engine the server fronts.
func (s *Server) Engine() *engine.Engine { return s.eng }

// statusClientClosedRequest is nginx's non-standard 499 "client closed
// request": the client went away, so no one will read the body, but the
// status still distinguishes the case in logs and tests.
const statusClientClosedRequest = 499

// ServeHTTP implements http.Handler. It wraps every request in panic
// isolation: a panic escaping a handler becomes a 500 internal error document
// and the server keeps serving. (http.ErrAbortHandler is re-raised — that is
// net/http's sanctioned way to abort a response.)
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	defer func() {
		p := recover()
		if p == nil {
			return
		}
		if p == http.ErrAbortHandler {
			panic(p)
		}
		s.panics.Add(1)
		reqID := s.nextRequestID()
		writeError(w, http.StatusInternalServerError, reqID, "internal",
			"internal error (request %s): %v", reqID, p)
	}()
	s.mux.ServeHTTP(w, r)
}

// Shutdown drains the server: new requests are rejected with code "draining"
// (and /healthz turns 503) while every in-flight request runs to completion.
// It returns nil once drained, or the context's error if it expires first —
// in-flight queries are never cancelled mid-execution either way. Shutdown is
// idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	return s.drain.wait(ctx)
}

// Draining reports whether Shutdown has been called.
func (s *Server) Draining() bool { return s.drain.draining() }

// InFlight returns the number of requests currently being served.
func (s *Server) InFlight() int { return s.drain.inFlight() }

// drainGate tracks in-flight requests and coordinates graceful shutdown
// without sync.WaitGroup's Add-after-Wait restriction: enter refuses once
// draining, and wait closes idle exactly when the count reaches zero.
type drainGate struct {
	mu   sync.Mutex
	n    int
	down bool
	idle chan struct{}
}

func (g *drainGate) enter() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.down {
		return false
	}
	g.n++
	return true
}

func (g *drainGate) leave() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.n--
	if g.down && g.n == 0 {
		select {
		case <-g.idle:
		default:
			close(g.idle)
		}
	}
}

func (g *drainGate) wait(ctx context.Context) error {
	g.mu.Lock()
	if !g.down {
		g.down = true
	}
	if g.n == 0 {
		select {
		case <-g.idle:
		default:
			close(g.idle)
		}
	}
	g.mu.Unlock()
	select {
	case <-g.idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (g *drainGate) draining() bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.down
}

func (g *drainGate) inFlight() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

// session is one registered client context: resolved engine options plus a
// namespace of prepared statements.
type session struct {
	id      string
	opts    engine.Options
	created time.Time

	mu       sync.RWMutex
	prepared map[string]*engine.Prepared
}

func newSession(id string, opts engine.Options) *session {
	return &session{id: id, opts: opts, created: time.Now(), prepared: make(map[string]*engine.Prepared)}
}

func (ss *session) stmt(name string) (*engine.Prepared, bool) {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	p, ok := ss.prepared[name]
	return p, ok
}

func (ss *session) setStmt(name string, p *engine.Prepared) error {
	ss.mu.Lock()
	defer ss.mu.Unlock()
	if _, dup := ss.prepared[name]; dup {
		return fmt.Errorf("statement %q already prepared in this session", name)
	}
	ss.prepared[name] = p
	return nil
}

func (ss *session) stmtCount() int {
	ss.mu.RLock()
	defer ss.mu.RUnlock()
	return len(ss.prepared)
}

// lookupSession resolves a session ID ("" = the default session).
func (s *Server) lookupSession(id string) (*session, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	ss, ok := s.sessions[id]
	return ss, ok
}

// --- wire types ---

// wireError is the structured error document body.
type wireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

type errorResponse struct {
	RequestID string    `json:"request_id"`
	Error     wireError `json:"error"`
}

// sessionRequest is the POST /session body.
type sessionRequest struct {
	Options WireOptions `json:"options"`
}

type sessionResponse struct {
	RequestID string `json:"request_id"`
	SessionID string `json:"session_id"`
}

// queryRequest is the POST /query, /execute, and /explain body: /query takes
// Query, /execute takes Name, /explain takes either (Name wins). Options, if
// present, replace the session's options for this request.
type queryRequest struct {
	SessionID string       `json:"session_id,omitempty"`
	Query     string       `json:"query,omitempty"`
	Name      string       `json:"name,omitempty"`
	Options   *WireOptions `json:"options,omitempty"`
}

// prepareRequest is the POST /prepare body.
type prepareRequest struct {
	SessionID string `json:"session_id,omitempty"`
	Name      string `json:"name"`
	Query     string `json:"query"`
}

type prepareResponse struct {
	RequestID string   `json:"request_id"`
	SessionID string   `json:"session_id,omitempty"`
	Name      string   `json:"name"`
	Tables    []string `json:"tables"`
}

// QueryResponse is the /query and /execute response body. Result is the
// value's canonical JSON (sets in canonical element order), so two responses
// are byte-comparable.
type QueryResponse struct {
	RequestID   string          `json:"request_id"`
	Result      json.RawMessage `json:"result"`
	Rows        int             `json:"rows"`
	Strategy    string          `json:"strategy"`
	Alt         string          `json:"alt,omitempty"`
	Joins       string          `json:"joins"`
	Access      string          `json:"access"`
	Parallelism int             `json:"parallelism"`
	Batch       int             `json:"batch"`
	Auto        bool            `json:"auto"`
	CacheHit    bool            `json:"cache_hit"`
	DurationNs  int64           `json:"duration_ns"`
	EvalSteps   int64           `json:"eval_steps"`
	// Morsel-scheduler counters for this query: morsels run by their home
	// worker, morsels stolen by idle workers, and summed worker busy time.
	// All zero for serial plans.
	SchedDispatched int64 `json:"sched_dispatched"`
	SchedStolen     int64 `json:"sched_stolen"`
	SchedBusyNs     int64 `json:"sched_busy_ns"`
}

type explainResponse struct {
	RequestID string `json:"request_id"`
	Explain   string `json:"explain"`
}

// StatsResponse is the GET /stats body. Every counter is cumulative since
// server start (never reset), so any two snapshots yield a well-defined
// delta; Seq and UnixNanos identify and order the snapshot itself.
type StatsResponse struct {
	RequestID string `json:"request_id"`
	// Seq is unique and strictly increasing across /stats responses —
	// concurrent scrapers can order their snapshots without coordination.
	// UnixNanos is the wall-clock capture time.
	Seq            uint64            `json:"seq"`
	UnixNanos      int64             `json:"unix_nanos"`
	Sessions       int               `json:"sessions"`
	Prepared       int               `json:"prepared"`
	InFlight       int               `json:"in_flight"`
	MaxConcurrency int               `json:"max_concurrency"`
	QueueTimeoutMs int64             `json:"queue_timeout_ms"`
	Admitted       uint64            `json:"admitted"`
	QueueTimeouts  uint64            `json:"queue_timeouts"`
	DrainRejects   uint64            `json:"drain_rejects"`
	Draining       bool              `json:"draining"`
	PlanCache      engine.CacheStats `json:"plan_cache"`

	// Governance: aborted-query taxonomy counters and the partial work those
	// aborts had already materialized (all of it discarded).
	ClientGone          uint64 `json:"client_gone"`
	DeadlineExceeded    uint64 `json:"deadline_exceeded"`
	BudgetExceeded      uint64 `json:"budget_exceeded"`
	Canceled            uint64 `json:"canceled"`
	Panics              uint64 `json:"panics"`
	DiscardedRows       int64  `json:"discarded_rows"`
	DiscardedBuildBytes int64  `json:"discarded_build_bytes"`

	// Morsel scheduler: per-query exec.SchedStats summed across completed
	// queries — dispatched/stolen morsel counts and worker busy time.
	MorselsDispatched int64 `json:"morsels_dispatched"`
	MorselsStolen     int64 `json:"morsels_stolen"`
	SchedBusyNs       int64 `json:"sched_busy_ns"`

	// Mutations: successful data and DDL operations served.
	Inserts      uint64 `json:"inserts"`
	Deletes      uint64 `json:"deletes"`
	IndexCreates uint64 `json:"index_creates"`
	IndexDrops   uint64 `json:"index_drops"`
}

// --- plumbing ---

func (s *Server) nextRequestID() string {
	return fmt.Sprintf("req-%d", s.reqSeq.Add(1))
}

func writeJSON(w http.ResponseWriter, status int, reqID string, body any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Request-ID", reqID)
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	_ = enc.Encode(body)
}

func writeError(w http.ResponseWriter, status int, reqID, code string, format string, args ...any) {
	writeJSON(w, status, reqID, errorResponse{
		RequestID: reqID,
		Error:     wireError{Code: code, Message: fmt.Sprintf(format, args...)},
	})
}

// writeEngineError maps an engine execution error onto the wire taxonomy:
//
//	408 deadline_exceeded — per-query timeout_ms (or the request deadline) hit
//	413 budget_exceeded   — max_rows / max_build_bytes breached
//	499 canceled          — client went away mid-execution
//	410 table_dropped     — referenced table dropped since binding
//	500 internal          — panic isolated by the engine
//	422 query_error       — everything else (parse, bind, type errors)
//
// Aborted queries carry partial-work accounting (*engine.AbortError); the
// rows and build bytes they had already materialized are added to the
// discarded counters surfaced in /stats.
func (s *Server) writeEngineError(w http.ResponseWriter, reqID string, err error) {
	var ab *engine.AbortError
	if errors.As(err, &ab) {
		s.discardedRows.Add(ab.PartialRows)
		s.discardedBytes.Add(ab.PartialBuildBytes)
	}
	var pe *engine.PanicError
	switch {
	case errors.Is(err, exec.ErrDeadlineExceeded):
		s.deadlineExceeded.Add(1)
		writeError(w, http.StatusRequestTimeout, reqID, "deadline_exceeded", "%v", err)
	case errors.Is(err, exec.ErrBudgetExceeded):
		s.budgetExceeded.Add(1)
		writeError(w, http.StatusRequestEntityTooLarge, reqID, "budget_exceeded", "%v", err)
	case errors.Is(err, exec.ErrCanceled):
		s.canceled.Add(1)
		writeError(w, statusClientClosedRequest, reqID, "canceled", "%v", err)
	case errors.Is(err, engine.ErrTableDropped):
		writeError(w, http.StatusGone, reqID, "table_dropped", "%v", err)
	case errors.As(err, &pe):
		s.panics.Add(1)
		writeError(w, http.StatusInternalServerError, reqID, "internal",
			"internal error (request %s): %v", reqID, pe.Val)
	default:
		writeError(w, http.StatusUnprocessableEntity, reqID, "query_error", "%v", err)
	}
}

// decode parses a JSON request body, returning false (response written) on
// malformed input.
func decode(w http.ResponseWriter, r *http.Request, reqID string, into any) bool {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(into); err != nil {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "malformed request body: %v", err)
		return false
	}
	return true
}

// begin gates one request through the drain gate, returning false (response
// written) while the server is shutting down.
func (s *Server) begin(w http.ResponseWriter, reqID string) bool {
	if !s.drain.enter() {
		s.drainRejects.Add(1)
		writeError(w, http.StatusServiceUnavailable, reqID, "draining", "server is shutting down")
		return false
	}
	return true
}

// admit acquires an execution slot, queueing up to the configured timeout.
// Returns false (response written) on queue timeout or client disconnect.
// Callers must release() on true.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, reqID string) bool {
	select {
	case s.sem <- struct{}{}:
		s.admitted.Add(1)
		return true
	default:
	}
	t := time.NewTimer(s.cfg.QueueTimeout)
	defer t.Stop()
	select {
	case s.sem <- struct{}{}:
		s.admitted.Add(1)
		return true
	case <-t.C:
		s.queueTimeouts.Add(1)
		writeError(w, http.StatusTooManyRequests, reqID, "queue_timeout",
			"no execution slot within %s (max_concurrency %d)", s.cfg.QueueTimeout, s.cfg.MaxConcurrency)
		return false
	case <-r.Context().Done():
		s.clientGone.Add(1)
		writeError(w, statusClientClosedRequest, reqID, "client_gone", "client went away while queued")
		return false
	}
}

func (s *Server) release() { <-s.sem }

// requestOptions resolves the effective engine options of a request: the
// named session's, unless the request carries options of its own.
func (s *Server) requestOptions(w http.ResponseWriter, reqID string, sessID string, override *WireOptions) (engine.Options, *session, bool) {
	ss, ok := s.lookupSession(sessID)
	if !ok {
		writeError(w, http.StatusNotFound, reqID, "unknown_session", "no session %q (create one with POST /session)", sessID)
		return engine.Options{}, nil, false
	}
	opts := ss.opts
	if override != nil {
		var err error
		opts, err = override.Engine()
		if err != nil {
			writeError(w, http.StatusBadRequest, reqID, "bad_options", "%v", err)
			return engine.Options{}, nil, false
		}
	}
	return opts, ss, true
}

// --- handlers ---

func (s *Server) handleSessionNew(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	var req sessionRequest
	if !decode(w, r, reqID, &req) {
		return
	}
	opts, err := req.Options.Engine()
	if err != nil {
		writeError(w, http.StatusBadRequest, reqID, "bad_options", "%v", err)
		return
	}
	s.mu.Lock()
	s.sessSeq++
	id := fmt.Sprintf("s-%d", s.sessSeq)
	s.sessions[id] = newSession(id, opts)
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, reqID, sessionResponse{RequestID: reqID, SessionID: id})
}

func (s *Server) handleSessionClose(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	id := r.PathValue("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "missing session id")
		return
	}
	s.mu.Lock()
	_, ok := s.sessions[id]
	if ok {
		delete(s.sessions, id)
	}
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, reqID, "unknown_session", "no session %q", id)
		return
	}
	writeJSON(w, http.StatusOK, reqID, sessionResponse{RequestID: reqID, SessionID: id})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	var req queryRequest
	if !decode(w, r, reqID, &req) {
		return
	}
	if req.Query == "" {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "missing query")
		return
	}
	opts, _, ok := s.requestOptions(w, reqID, req.SessionID, req.Options)
	if !ok {
		return
	}
	if !s.admit(w, r, reqID) {
		return
	}
	defer s.release()
	res, err := s.eng.QueryContext(r.Context(), req.Query, opts)
	if err != nil {
		s.writeEngineError(w, reqID, err)
		return
	}
	s.writeResult(w, reqID, res)
}

func (s *Server) handlePrepare(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	var req prepareRequest
	if !decode(w, r, reqID, &req) {
		return
	}
	if req.Name == "" || req.Query == "" {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "prepare needs both name and query")
		return
	}
	ss, ok := s.lookupSession(req.SessionID)
	if !ok {
		writeError(w, http.StatusNotFound, reqID, "unknown_session", "no session %q (create one with POST /session)", req.SessionID)
		return
	}
	stmt, err := s.eng.Prepare(req.Query)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, reqID, "query_error", "%v", err)
		return
	}
	if err := ss.setStmt(req.Name, stmt); err != nil {
		writeError(w, http.StatusConflict, reqID, "duplicate_statement", "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, reqID, prepareResponse{
		RequestID: reqID, SessionID: req.SessionID, Name: req.Name, Tables: stmt.Tables(),
	})
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	var req queryRequest
	if !decode(w, r, reqID, &req) {
		return
	}
	if req.Name == "" {
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "missing prepared-statement name")
		return
	}
	opts, ss, ok := s.requestOptions(w, reqID, req.SessionID, req.Options)
	if !ok {
		return
	}
	stmt, ok := ss.stmt(req.Name)
	if !ok {
		writeError(w, http.StatusNotFound, reqID, "unknown_statement", "no prepared statement %q in session %q", req.Name, req.SessionID)
		return
	}
	if !s.admit(w, r, reqID) {
		return
	}
	defer s.release()
	res, err := stmt.QueryContext(r.Context(), opts)
	if err != nil {
		s.writeEngineError(w, reqID, err)
		return
	}
	s.writeResult(w, reqID, res)
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if !s.begin(w, reqID) {
		return
	}
	defer s.drain.leave()
	var req queryRequest
	if !decode(w, r, reqID, &req) {
		return
	}
	opts, ss, ok := s.requestOptions(w, reqID, req.SessionID, req.Options)
	if !ok {
		return
	}
	if !s.admit(w, r, reqID) {
		return
	}
	defer s.release()
	var text string
	var err error
	switch {
	case req.Name != "":
		stmt, ok := ss.stmt(req.Name)
		if !ok {
			writeError(w, http.StatusNotFound, reqID, "unknown_statement", "no prepared statement %q in session %q", req.Name, req.SessionID)
			return
		}
		text, err = stmt.ExplainContext(r.Context(), opts)
	case req.Query != "":
		text, err = s.eng.ExplainContext(r.Context(), req.Query, opts)
	default:
		writeError(w, http.StatusBadRequest, reqID, "bad_request", "explain needs a query or a prepared-statement name")
		return
	}
	if err != nil {
		s.writeEngineError(w, reqID, err)
		return
	}
	writeJSON(w, http.StatusOK, reqID, explainResponse{RequestID: reqID, Explain: text})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	s.mu.RLock()
	sessions := len(s.sessions)
	prepared := 0
	for _, ss := range s.sessions {
		prepared += ss.stmtCount()
	}
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, reqID, StatsResponse{
		RequestID:      reqID,
		Seq:            s.statsSeq.Add(1),
		UnixNanos:      time.Now().UnixNano(),
		Sessions:       sessions,
		Prepared:       prepared,
		InFlight:       s.InFlight(),
		MaxConcurrency: s.cfg.MaxConcurrency,
		QueueTimeoutMs: s.cfg.QueueTimeout.Milliseconds(),
		Admitted:       s.admitted.Load(),
		QueueTimeouts:  s.queueTimeouts.Load(),
		DrainRejects:   s.drainRejects.Load(),
		Draining:       s.Draining(),
		PlanCache:      s.eng.PlanCacheStats(),

		ClientGone:          s.clientGone.Load(),
		DeadlineExceeded:    s.deadlineExceeded.Load(),
		BudgetExceeded:      s.budgetExceeded.Load(),
		Canceled:            s.canceled.Load(),
		Panics:              s.panics.Load(),
		DiscardedRows:       s.discardedRows.Load(),
		DiscardedBuildBytes: s.discardedBytes.Load(),

		MorselsDispatched: s.morselsDispatched.Load(),
		MorselsStolen:     s.morselsStolen.Load(),
		SchedBusyNs:       s.schedBusyNs.Load(),

		Inserts:      s.inserts.Load(),
		Deletes:      s.deletes.Load(),
		IndexCreates: s.indexCreates.Load(),
		IndexDrops:   s.indexDrops.Load(),
	})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	reqID := s.nextRequestID()
	if s.Draining() {
		writeJSON(w, http.StatusServiceUnavailable, reqID, map[string]string{"status": "draining", "request_id": reqID})
		return
	}
	writeJSON(w, http.StatusOK, reqID, map[string]string{"status": "ok", "request_id": reqID})
}

// writeResult renders an engine result as a QueryResponse and folds the
// query's scheduler counters into the server-wide /stats aggregates.
func (s *Server) writeResult(w http.ResponseWriter, reqID string, res *engine.Result) {
	raw, err := json.Marshal(res.Value)
	if err != nil {
		writeError(w, http.StatusInternalServerError, reqID, "internal", "encoding result: %v", err)
		return
	}
	s.morselsDispatched.Add(res.Sched.Dispatched)
	s.morselsStolen.Add(res.Sched.Stolen)
	s.schedBusyNs.Add(res.Sched.BusyNanos)
	alt := res.Alt
	if alt == "base" {
		alt = ""
	}
	writeJSON(w, http.StatusOK, reqID, QueryResponse{
		RequestID:   reqID,
		Result:      raw,
		Rows:        res.Value.Len(),
		Strategy:    res.Strategy.String(),
		Alt:         alt,
		Joins:       res.Joins.String(),
		Access:      res.Access.String(),
		Parallelism: res.Parallelism,
		Batch:       res.Batch,
		Auto:        res.Auto,
		CacheHit:    res.CacheHit,
		DurationNs:  res.Duration.Nanoseconds(),
		EvalSteps:   res.EvalSteps,

		SchedDispatched: res.Sched.Dispatched,
		SchedStolen:     res.Sched.Stolen,
		SchedBusyNs:     res.Sched.BusyNanos,
	})
}
