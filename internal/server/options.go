package server

import (
	"fmt"

	"tmdb/internal/core"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
)

// WireOptions is the JSON form of engine.Options used by the HTTP API: every
// field is a human-readable name (the same vocabulary as cmd/tmql's flags),
// and the zero value maps to the engine's cost-based defaults. Sessions carry
// one resolved engine.Options; a request may also attach WireOptions of its
// own, which replace the session's for that request only.
type WireOptions struct {
	// Strategy: auto | naive | nestjoin | kim | outerjoin.
	Strategy string `json:"strategy,omitempty"`
	// Joins: auto | nl | hash | merge | index.
	Joins string `json:"joins,omitempty"`
	// Access: auto | scan | index.
	Access string `json:"access,omitempty"`
	// Parallelism: 0 = planner default, 1 = serial, n >= 2 = degree.
	Parallelism int `json:"parallelism,omitempty"`
	// Rewrite pins the §6-rewritten logical alternative.
	Rewrite bool `json:"rewrite,omitempty"`
	// PinAlt pins a logical alternative by its candidate-table label.
	PinAlt string `json:"pin_alt,omitempty"`
}

// Engine resolves the wire form into engine.Options, rejecting unknown names.
func (w WireOptions) Engine() (engine.Options, error) {
	var opts engine.Options
	if w.Strategy != "" {
		s, err := core.ParseStrategy(w.Strategy)
		if err != nil {
			return opts, fmt.Errorf("unknown strategy %q (auto | naive | nestjoin | kim | outerjoin)", w.Strategy)
		}
		opts.Strategy = s
	}
	switch w.Joins {
	case "", "auto":
		opts.Joins = planner.ImplAuto
	case "nl":
		opts.Joins = planner.ImplNestedLoop
	case "hash":
		opts.Joins = planner.ImplHash
	case "merge":
		opts.Joins = planner.ImplMerge
	case "index", "idx":
		opts.Joins = planner.ImplIndex
	default:
		return opts, fmt.Errorf("unknown join impl %q (auto | nl | hash | merge | index)", w.Joins)
	}
	switch w.Access {
	case "", "auto":
		opts.Access = planner.AccessAuto
	case "scan":
		opts.Access = planner.AccessScan
	case "index", "idx", "idxscan":
		opts.Access = planner.AccessIndex
	default:
		return opts, fmt.Errorf("unknown access path %q (auto | scan | index)", w.Access)
	}
	if w.Parallelism < 0 {
		return opts, fmt.Errorf("parallelism must be >= 0, got %d", w.Parallelism)
	}
	opts.Parallelism = w.Parallelism
	opts.Rewrite = w.Rewrite
	opts.PinAlt = w.PinAlt
	return opts, nil
}
