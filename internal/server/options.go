package server

import (
	"fmt"
	"time"

	"tmdb/internal/core"
	"tmdb/internal/engine"
	"tmdb/internal/planner"
)

// WireOptions is the JSON form of engine.Options used by the HTTP API: every
// field is a human-readable name (the same vocabulary as cmd/tmql's flags),
// and the zero value maps to the engine's cost-based defaults. Sessions carry
// one resolved engine.Options; a request may also attach WireOptions of its
// own, which replace the session's for that request only.
type WireOptions struct {
	// Strategy: auto | naive | nestjoin | kim | outerjoin.
	Strategy string `json:"strategy,omitempty"`
	// Joins: auto | nl | hash | merge | index.
	Joins string `json:"joins,omitempty"`
	// Access: auto | scan | index.
	Access string `json:"access,omitempty"`
	// Parallelism sizes the morsel scheduler: 0 = planner default,
	// 1 = serial, n >= 2 = worker-pool size (= hash partition count).
	Parallelism int `json:"parallelism,omitempty"`
	// NoSteal disables work stealing in the morsel scheduler (ablation /
	// diagnostics; results are identical either way).
	NoSteal bool `json:"no_steal,omitempty"`
	// BatchSize: 0 = planner default (cost-chosen), n > 0 = vectorized
	// execution at n rows per batch, -1 = row-at-a-time.
	BatchSize int `json:"batch_size,omitempty"`
	// Rewrite pins the §6-rewritten logical alternative.
	Rewrite bool `json:"rewrite,omitempty"`
	// PinAlt pins a logical alternative by its candidate-table label.
	PinAlt string `json:"pin_alt,omitempty"`
	// TimeoutMs is the per-query wall-clock deadline in milliseconds
	// (0 = none). On expiry the request fails with 408 deadline_exceeded.
	TimeoutMs int64 `json:"timeout_ms,omitempty"`
	// MaxRows bounds result rows produced (pre-deduplication; 0 = unlimited).
	// On breach the request fails with 413 budget_exceeded.
	MaxRows int64 `json:"max_rows,omitempty"`
	// MaxBuildBytes bounds the approximate bytes materialized in hash/sort
	// build sides (0 = unlimited). On breach: 413 budget_exceeded.
	MaxBuildBytes int64 `json:"max_build_bytes,omitempty"`
}

// Engine resolves the wire form into engine.Options, rejecting unknown names.
func (w WireOptions) Engine() (engine.Options, error) {
	var opts engine.Options
	if w.Strategy != "" {
		s, err := core.ParseStrategy(w.Strategy)
		if err != nil {
			return opts, fmt.Errorf("unknown strategy %q (auto | naive | nestjoin | kim | outerjoin)", w.Strategy)
		}
		opts.Strategy = s
	}
	switch w.Joins {
	case "", "auto":
		opts.Joins = planner.ImplAuto
	case "nl":
		opts.Joins = planner.ImplNestedLoop
	case "hash":
		opts.Joins = planner.ImplHash
	case "merge":
		opts.Joins = planner.ImplMerge
	case "index", "idx":
		opts.Joins = planner.ImplIndex
	default:
		return opts, fmt.Errorf("unknown join impl %q (auto | nl | hash | merge | index)", w.Joins)
	}
	switch w.Access {
	case "", "auto":
		opts.Access = planner.AccessAuto
	case "scan":
		opts.Access = planner.AccessScan
	case "index", "idx", "idxscan":
		opts.Access = planner.AccessIndex
	default:
		return opts, fmt.Errorf("unknown access path %q (auto | scan | index)", w.Access)
	}
	if w.Parallelism < 0 {
		return opts, fmt.Errorf("parallelism must be >= 0, got %d", w.Parallelism)
	}
	opts.Parallelism = w.Parallelism
	opts.NoSteal = w.NoSteal
	if w.BatchSize < -1 {
		return opts, fmt.Errorf("batch_size must be >= -1, got %d", w.BatchSize)
	}
	opts.BatchSize = w.BatchSize
	opts.Rewrite = w.Rewrite
	opts.PinAlt = w.PinAlt
	if w.TimeoutMs < 0 {
		return opts, fmt.Errorf("timeout_ms must be >= 0, got %d", w.TimeoutMs)
	}
	if w.MaxRows < 0 {
		return opts, fmt.Errorf("max_rows must be >= 0, got %d", w.MaxRows)
	}
	if w.MaxBuildBytes < 0 {
		return opts, fmt.Errorf("max_build_bytes must be >= 0, got %d", w.MaxBuildBytes)
	}
	opts.Limits = engine.Limits{
		Timeout:       time.Duration(w.TimeoutMs) * time.Millisecond,
		MaxRows:       w.MaxRows,
		MaxBuildBytes: w.MaxBuildBytes,
	}
	return opts, nil
}
