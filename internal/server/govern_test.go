package server

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"tmdb/internal/faultinject"
)

const flatJoinQuery = `SELECT (xb = x.b, zc = z.c) FROM X x, Z z WHERE x.b = z.d`

// slowScans arms a per-row scan delay so queries over the xyz sample database
// take hundreds of milliseconds without burning CPU.
func slowScans(d time.Duration) func() {
	return faultinject.Activate(faultinject.Schedule{
		Seed: 1,
		Rules: []faultinject.Rule{
			{Point: faultinject.PointScan, Kind: faultinject.Delay, OneInN: 1, Delay: d},
		},
	})
}

// wantServerError asserts err is a *ServerError with the given code and HTTP
// status.
func wantServerError(t *testing.T, err error, code string, status int) *ServerError {
	t.Helper()
	se, ok := err.(*ServerError)
	if !ok {
		t.Fatalf("want *ServerError %s/%d, got %T: %v", code, status, err, err)
	}
	if se.Code != code || se.HTTPStatus != status {
		t.Fatalf("want %s/%d, got %s/%d (%s)", code, status, se.Code, se.HTTPStatus, se.Message)
	}
	return se
}

// TestTimeoutReturns408 wires a per-request timeout_ms through to the engine:
// a query slowed to ~10× its deadline must come back as a structured 408
// deadline_exceeded document, quickly, and count in /stats (with its partial
// work accounted as discarded).
func TestTimeoutReturns408(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	defer slowScans(2 * time.Millisecond)()
	c := NewClient(hs.URL, hs.Client())

	start := time.Now()
	// batch_size -1 pins row-at-a-time execution so the per-row delay keeps
	// the plan slow (and exercises the wire option's row pin end to end).
	_, err := c.Query(flatJoinQuery, &WireOptions{Joins: "hash", BatchSize: -1, TimeoutMs: 20})
	elapsed := time.Since(start)
	wantServerError(t, err, "deadline_exceeded", http.StatusRequestTimeout)
	if elapsed > time.Second {
		t.Fatalf("deadline abort took %v", elapsed)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.DeadlineExceeded != 1 {
		t.Fatalf("stats deadline_exceeded = %d, want 1", st.DeadlineExceeded)
	}

	// Per-session timeouts ride on the session's options the same way.
	if _, err := c.NewSession(WireOptions{Joins: "hash", BatchSize: -1, TimeoutMs: 20}); err != nil {
		t.Fatal(err)
	}
	_, err = c.Query(flatJoinQuery, nil)
	wantServerError(t, err, "deadline_exceeded", http.StatusRequestTimeout)
}

// TestBudgetReturns413 maps budget breaches onto 413 budget_exceeded and
// accounts the discarded partial rows in /stats.
func TestBudgetReturns413(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	c := NewClient(hs.URL, hs.Client())

	_, err := c.Query(flatJoinQuery, &WireOptions{Joins: "hash", MaxRows: 1})
	wantServerError(t, err, "budget_exceeded", http.StatusRequestEntityTooLarge)
	_, err = c.Query(flatJoinQuery, &WireOptions{Joins: "hash", MaxBuildBytes: 64})
	wantServerError(t, err, "budget_exceeded", http.StatusRequestEntityTooLarge)

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.BudgetExceeded != 2 {
		t.Fatalf("stats budget_exceeded = %d, want 2", st.BudgetExceeded)
	}
	if st.DiscardedRows < 1 {
		t.Fatalf("stats discarded_rows = %d, want >= 1", st.DiscardedRows)
	}
	if st.DiscardedBuildBytes < 64 {
		t.Fatalf("stats discarded_build_bytes = %d, want >= 64", st.DiscardedBuildBytes)
	}
}

// TestBadLimitOptionsRejected pins wire-level validation of the new options.
func TestBadLimitOptionsRejected(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	c := NewClient(hs.URL, hs.Client())
	for _, opts := range []WireOptions{
		{TimeoutMs: -1}, {MaxRows: -5}, {MaxBuildBytes: -1}, {BatchSize: -2},
	} {
		_, err := c.Query(flatJoinQuery, &opts)
		wantServerError(t, err, "bad_options", http.StatusBadRequest)
	}
}

// TestPanicReturns500AndServerStaysUp covers both panic-isolation layers: an
// injected execution panic becomes a 500 internal document via the engine's
// typed recovery, a panic thrown straight out of a handler is caught by the
// ServeHTTP middleware, and in both cases the server keeps answering.
func TestPanicReturns500AndServerStaysUp(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	c := NewClient(hs.URL, hs.Client())

	deactivate := faultinject.Activate(faultinject.Schedule{
		Seed: 3,
		Rules: []faultinject.Rule{
			{Point: faultinject.PointHashBuild, Kind: faultinject.Panic, OneInN: 1},
		},
	})
	_, err := c.Query(flatJoinQuery, &WireOptions{Joins: "hash"})
	deactivate()
	se := wantServerError(t, err, "internal", http.StatusInternalServerError)
	if !strings.Contains(se.Message, "request") {
		t.Fatalf("internal error must reference the request ID, got %q", se.Message)
	}

	// Handler-layer panic: the ServeHTTP recover is the backstop.
	srv.mux.HandleFunc("GET /boom", func(http.ResponseWriter, *http.Request) { panic("boom") })
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("handler panic returned %d, want 500", rec.Code)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code != "internal" {
		t.Fatalf("handler panic body %q, want internal error document", rec.Body)
	}

	// The server is still alive and correct.
	res, err := c.Query(flatJoinQuery, &WireOptions{Joins: "hash"})
	if err != nil {
		t.Fatalf("server did not survive the panics: %v", err)
	}
	if res.Rows == 0 {
		t.Fatal("post-panic query returned no rows")
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Panics < 2 {
		t.Fatalf("stats panics = %d, want >= 2", st.Panics)
	}
}

// TestClientGoneWhileQueued is the admission-control satellite: a queued
// request whose client disconnects must release its place, be counted as
// client_gone (not queue_timeout), and leave the slot usable.
func TestClientGoneWhileQueued(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxConcurrency: 1, QueueTimeout: 5 * time.Second})

	srv.sem <- struct{}{} // occupy the only slot
	gone, cancel := context.WithCancel(context.Background())
	cancel()
	body := strings.NewReader(`{"query":"SELECT x.b FROM X x WHERE x.b = 3"}`)
	req := httptest.NewRequest("POST", "/query", body).WithContext(gone)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != statusClientClosedRequest {
		t.Fatalf("client-gone admission returned %d, want %d", rec.Code, statusClientClosedRequest)
	}
	var er errorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.Error.Code != "client_gone" {
		t.Fatalf("client-gone body %q, want code client_gone", rec.Body)
	}
	<-srv.sem // free the slot

	c := NewClient(hs.URL, hs.Client())
	if _, err := c.Query(`SELECT x.b FROM X x WHERE x.b = 3`, nil); err != nil {
		t.Fatalf("slot not reclaimed after client_gone: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.ClientGone != 1 {
		t.Fatalf("stats client_gone = %d, want 1", st.ClientGone)
	}
	if st.QueueTimeouts != 0 {
		t.Fatalf("client_gone miscounted as queue_timeout (%d)", st.QueueTimeouts)
	}
}

// TestTableDroppedReturns410 maps the typed dropped-table error onto 410.
func TestTableDroppedReturns410(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	c := NewClient(hs.URL, hs.Client())
	if _, err := c.Prepare("q", `SELECT y.a FROM Y y WHERE y.d = 2`); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Execute("q", nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.Engine().DropTable("Y"); err != nil {
		t.Fatal(err)
	}
	_, err := c.Execute("q", nil)
	wantServerError(t, err, "table_dropped", http.StatusGone)
}

// retryProbe is a handler that rejects the first fail requests per path with
// the given code, then delegates to ok.
type retryProbe struct {
	fail  int
	code  string
	seen  map[string]int
	okFor func(w http.ResponseWriter, path string)
}

func (p *retryProbe) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if p.seen == nil {
		p.seen = map[string]int{}
	}
	p.seen[r.URL.Path]++
	if p.seen[r.URL.Path] <= p.fail {
		status := http.StatusTooManyRequests
		if p.code == "draining" {
			status = http.StatusServiceUnavailable
		}
		writeError(w, status, "req-x", p.code, "transient rejection %d", p.seen[r.URL.Path])
		return
	}
	p.okFor(w, r.URL.Path)
}

// TestClientRetryTransient pins the retry satellite: idempotent requests
// retry transient queue_timeout/draining rejections with bounded attempts;
// non-transient errors and non-idempotent endpoints never retry.
func TestClientRetryTransient(t *testing.T) {
	probe := &retryProbe{fail: 2, code: "queue_timeout", okFor: func(w http.ResponseWriter, path string) {
		switch path {
		case "/query":
			writeJSON(w, http.StatusOK, "req-x", QueryResponse{RequestID: "req-x", Result: json.RawMessage(`{}`), Rows: 1})
		case "/stats":
			writeJSON(w, http.StatusOK, "req-x", StatsResponse{RequestID: "req-x"})
		default:
			writeJSON(w, http.StatusOK, "req-x", prepareResponse{RequestID: "req-x", Name: "q"})
		}
	}}
	hs := httptest.NewServer(probe)
	defer hs.Close()

	c := NewClient(hs.URL, hs.Client())
	c.Retry = RetryPolicy{MaxAttempts: 4, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond}

	if _, err := c.Query("q", nil); err != nil {
		t.Fatalf("retryable query did not recover: %v", err)
	}
	if got := probe.seen["/query"]; got != 3 {
		t.Fatalf("query attempted %d times, want 3", got)
	}
	if _, err := c.Stats(); err != nil {
		t.Fatalf("retryable stats did not recover: %v", err)
	}

	// Non-idempotent: /prepare must not retry even on a transient code.
	_, err := c.Prepare("q", "SELECT 1")
	wantServerError(t, err, "queue_timeout", http.StatusTooManyRequests)
	if got := probe.seen["/prepare"]; got != 1 {
		t.Fatalf("prepare attempted %d times, want 1 (never retried)", got)
	}

	// Capped attempts: a server that never recovers exhausts MaxAttempts.
	stuck := &retryProbe{fail: 1 << 30, code: "draining", okFor: func(http.ResponseWriter, string) {}}
	hs2 := httptest.NewServer(stuck)
	defer hs2.Close()
	c2 := NewClient(hs2.URL, hs2.Client())
	c2.Retry = RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}
	_, err = c2.Query("q", nil)
	wantServerError(t, err, "draining", http.StatusServiceUnavailable)
	if got := stuck.seen["/query"]; got != 3 {
		t.Fatalf("stuck query attempted %d times, want exactly MaxAttempts=3", got)
	}

	// Non-transient errors never retry.
	bad := &retryProbe{fail: 1 << 30, code: "query_error", okFor: func(http.ResponseWriter, string) {}}
	hs3 := httptest.NewServer(bad)
	defer hs3.Close()
	c3 := NewClient(hs3.URL, hs3.Client())
	c3.Retry = RetryPolicy{MaxAttempts: 5, BaseDelay: time.Millisecond}
	if _, err := c3.Query("q", nil); err == nil {
		t.Fatal("want error")
	}
	if got := bad.seen["/query"]; got != 1 {
		t.Fatalf("non-transient error retried (%d attempts)", got)
	}
}

// TestRetryAgainstRealServer drives the retry policy against an actual
// draining server: requests during drain fail transiently; the retry loop
// gives up with the transient error rather than hanging.
func TestRetryAgainstRealServer(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	c := NewClient(hs.URL, hs.Client())
	c.Retry = RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond}
	_, err := c.Query(flatJoinQuery, nil)
	wantServerError(t, err, "draining", http.StatusServiceUnavailable)
}
