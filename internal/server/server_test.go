package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/enginetest"
)

// xyzGoldens are the conformance queries answerable by the xyz sample
// database — the one engine every server test serves.
func xyzGoldens() []enginetest.Golden {
	var out []enginetest.Golden
	for _, g := range enginetest.Goldens {
		if g.DB == "xyz" {
			out = append(out, g)
		}
	}
	return out
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(enginetest.OpenDB("xyz"), cfg)
	hs := httptest.NewServer(srv)
	t.Cleanup(hs.Close)
	return srv, hs
}

// TestConcurrentSessionsMatchSerialOracle is the server conformance test: 64
// concurrent sessions each run every golden query over HTTP and must get
// responses byte-identical to a serial oracle computed through the engine
// directly. Byte identity works because value.Value marshals sets in
// canonical element order.
func TestConcurrentSessionsMatchSerialOracle(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxConcurrency: 8})
	goldens := xyzGoldens()
	if len(goldens) == 0 {
		t.Fatal("no xyz goldens")
	}

	// Serial oracle: the canonical JSON of each golden's result.
	oracle := make(map[string][]byte, len(goldens))
	for _, g := range goldens {
		res, err := srv.Engine().Query(g.Query, engine.Options{})
		if err != nil {
			t.Fatalf("oracle %s: %v", g.Name, err)
		}
		raw, err := json.Marshal(res.Value)
		if err != nil {
			t.Fatal(err)
		}
		oracle[g.Name] = raw
	}

	sessions := 64
	if testing.Short() {
		sessions = 16
	}
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(cid int) {
			defer wg.Done()
			c := NewClient(hs.URL, hs.Client())
			if _, err := c.NewSession(WireOptions{}); err != nil {
				errs <- fmt.Errorf("client %d: new session: %w", cid, err)
				return
			}
			for _, g := range goldens {
				resp, err := c.Query(g.Query, nil)
				if err != nil {
					errs <- fmt.Errorf("client %d %s: %w", cid, g.Name, err)
					return
				}
				if !bytes.Equal(resp.Result, oracle[g.Name]) {
					errs <- fmt.Errorf("client %d %s: result diverged from serial oracle:\n  got:  %s\n  want: %s",
						cid, g.Name, resp.Result, oracle[g.Name])
					return
				}
			}
			if err := c.CloseSession(); err != nil {
				errs <- fmt.Errorf("client %d: close session: %w", cid, err)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestPreparedOverHTTPReplansAfterMutation drives the prepare/execute
// endpoints: re-execution after a table mutation must replan (the plan-cache
// key's epoch vector misses) and observe the new row.
func TestPreparedOverHTTPReplansAfterMutation(t *testing.T) {
	srv, hs := newTestServer(t, Config{})
	c := NewClient(hs.URL, hs.Client())
	if _, err := c.NewSession(WireOptions{}); err != nil {
		t.Fatal(err)
	}
	tables, err := c.Prepare("q", `SELECT y.a FROM Y y WHERE y.b = 777`)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || tables[0] != "Y" {
		t.Fatalf("prepare tables = %v, want [Y]", tables)
	}
	first, err := c.Execute("q", nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Rows != 0 {
		t.Fatalf("expected no rows before the insert, got %d", first.Rows)
	}
	if _, err := c.Execute("q", nil); err != nil {
		t.Fatal(err)
	}
	added, err := srv.Engine().InsertValue("Y", datagen.YRow(42, 777, 5, 9))
	if err != nil || !added {
		t.Fatalf("InsertValue: added=%v err=%v", added, err)
	}
	after, err := c.Execute("q", nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.CacheHit {
		t.Fatal("execute after a mutation served a stale cached plan")
	}
	if after.Rows != 1 {
		t.Fatalf("inserted row not visible through the prepared statement: rows = %d", after.Rows)
	}
	// Re-preparing the same name is a structured conflict.
	if _, err := c.Prepare("q", `SELECT y.a FROM Y y`); err == nil {
		t.Fatal("duplicate prepare succeeded")
	} else if se, ok := err.(*ServerError); !ok || se.Code != "duplicate_statement" {
		t.Fatalf("duplicate prepare error = %v, want code duplicate_statement", err)
	}
}

// TestSessionOptionsAndOverride checks that a session's options shape
// execution and that per-request options replace them.
func TestSessionOptionsAndOverride(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	c := NewClient(hs.URL, hs.Client())
	if _, err := c.NewSession(WireOptions{Strategy: "naive"}); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT y.a FROM Y y WHERE y.b = 3`
	resp, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Strategy != "naive" || resp.Auto {
		t.Fatalf("session options ignored: strategy=%s auto=%v", resp.Strategy, resp.Auto)
	}
	over, err := c.Query(q, &WireOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !over.Auto {
		t.Fatalf("request options did not replace the session's: auto=%v strategy=%s", over.Auto, over.Strategy)
	}
	if !bytes.Equal(resp.Result, over.Result) {
		t.Fatalf("naive and auto disagree:\n  naive: %s\n  auto:  %s", resp.Result, over.Result)
	}
	// Unknown vocabulary is a structured bad_options error.
	if _, err := c.Query(q, &WireOptions{Joins: "quantum"}); err == nil {
		t.Fatal("bogus join impl accepted")
	} else if se, ok := err.(*ServerError); !ok || se.Code != "bad_options" {
		t.Fatalf("bogus join impl error = %v, want code bad_options", err)
	}
}

// TestBatchSizeOverWire pins the batch_size option end to end: a pinned
// vectorized query reports its batch in the response and answers
// byte-identically to the row-pinned plan.
func TestBatchSizeOverWire(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	c := NewClient(hs.URL, hs.Client())
	const q = `SELECT (xb = x.b, zc = z.c) FROM X x, Z z WHERE x.b = z.d`
	row, err := c.Query(q, &WireOptions{Joins: "hash", BatchSize: -1})
	if err != nil {
		t.Fatal(err)
	}
	if row.Batch != 0 {
		t.Fatalf("row-pinned response batch = %d, want 0", row.Batch)
	}
	bat, err := c.Query(q, &WireOptions{Joins: "hash", BatchSize: 256})
	if err != nil {
		t.Fatal(err)
	}
	if bat.Batch != 256 {
		t.Fatalf("batch-pinned response batch = %d, want 256", bat.Batch)
	}
	if !bytes.Equal(row.Result, bat.Result) {
		t.Fatalf("batched result diverged from row result:\n  row:   %s\n  batch: %s", row.Result, bat.Result)
	}
}

// TestStructuredErrors covers the remaining error codes and the request-ID
// plumbing.
func TestStructuredErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{})
	c := NewClient(hs.URL, hs.Client())

	check := func(err error, code string, status int) {
		t.Helper()
		se, ok := err.(*ServerError)
		if !ok {
			t.Fatalf("error = %v, want *ServerError with code %s", err, code)
		}
		if se.Code != code || se.HTTPStatus != status {
			t.Fatalf("error = code %s http %d, want code %s http %d", se.Code, se.HTTPStatus, code, status)
		}
		if se.RequestID == "" {
			t.Fatalf("error %s carries no request ID", code)
		}
	}

	c.SessionID = "s-999"
	_, err := c.Query(`SELECT y FROM Y y`, nil)
	check(err, "unknown_session", http.StatusNotFound)
	c.SessionID = ""

	_, err = c.Execute("nope", nil)
	check(err, "unknown_statement", http.StatusNotFound)

	_, err = c.Query(`SELEKT broken`, nil)
	check(err, "query_error", http.StatusUnprocessableEntity)

	// Infeasible pinned join family fails identically to the engine API.
	_, err = c.Query(`SELECT (xb = x.b, yb = y.b) FROM X x, Y y WHERE x.b < y.b`,
		&WireOptions{Strategy: "nestjoin", Joins: "hash"})
	check(err, "query_error", http.StatusUnprocessableEntity)
	if !strings.Contains(err.Error(), "join requested but") {
		t.Fatalf("infeasible-join error lost the engine's text: %v", err)
	}

	// Malformed body.
	resp, err := hs.Client().Post(hs.URL+"/query", "application/json", strings.NewReader(`{"quer`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body: http %d, want 400", resp.StatusCode)
	}
	if resp.Header.Get("X-Request-ID") == "" {
		t.Fatal("response carries no X-Request-ID header")
	}
}

// TestAdmissionQueueTimeout fills every execution slot and asserts the next
// request fails with the structured queue_timeout error instead of piling up.
func TestAdmissionQueueTimeout(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxConcurrency: 2, QueueTimeout: 50 * time.Millisecond})
	// Occupy both slots from the test (white-box: the handlers' admit() will
	// find the semaphore full and queue).
	srv.sem <- struct{}{}
	srv.sem <- struct{}{}
	c := NewClient(hs.URL, hs.Client())
	start := time.Now()
	_, err := c.Query(`SELECT y.a FROM Y y WHERE y.b = 3`, nil)
	se, ok := err.(*ServerError)
	if !ok || se.Code != "queue_timeout" || se.HTTPStatus != http.StatusTooManyRequests {
		t.Fatalf("saturated server error = %v, want code queue_timeout http 429", err)
	}
	if d := time.Since(start); d < 50*time.Millisecond {
		t.Fatalf("queue timeout fired after %s, before the configured 50ms", d)
	}
	// Free a slot: the same request is admitted and succeeds.
	<-srv.sem
	if _, err := c.Query(`SELECT y.a FROM Y y WHERE y.b = 3`, nil); err != nil {
		t.Fatalf("query after slot freed: %v", err)
	}
	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.QueueTimeouts != 1 {
		t.Fatalf("stats queue_timeouts = %d, want 1", st.QueueTimeouts)
	}
	<-srv.sem
}

// TestGracefulShutdownDrains asserts the acceptance criterion: during
// shutdown new requests are rejected with the draining error, in-flight
// requests run to completion, Shutdown returns only once drained, and no
// goroutines leak.
func TestGracefulShutdownDrains(t *testing.T) {
	before := runtime.NumGoroutine()
	srv, hs := newTestServer(t, Config{})
	c := NewClient(hs.URL, hs.Client())

	// Simulate an in-flight request holding the drain gate.
	if !srv.drain.enter() {
		t.Fatal("gate rejected before draining")
	}
	done := make(chan error, 1)
	go func() { done <- srv.Shutdown(context.Background()) }()

	// Shutdown must block on the in-flight request.
	deadline := time.Now().Add(time.Second)
	for !srv.Draining() {
		if time.Now().After(deadline) {
			t.Fatal("server never started draining")
		}
		time.Sleep(time.Millisecond)
	}
	select {
	case err := <-done:
		t.Fatalf("Shutdown returned (%v) while a request was in flight", err)
	case <-time.After(20 * time.Millisecond):
	}

	// New requests are rejected with the structured draining error...
	_, err := c.Query(`SELECT y.a FROM Y y WHERE y.b = 3`, nil)
	se, ok := err.(*ServerError)
	if !ok || se.Code != "draining" || se.HTTPStatus != http.StatusServiceUnavailable {
		t.Fatalf("query during drain error = %v, want code draining http 503", err)
	}
	// ...and health turns 503.
	if err := c.Health(); err == nil {
		t.Fatal("healthz still ok while draining")
	}

	// The in-flight request finishing releases Shutdown.
	srv.drain.leave()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(time.Second):
		t.Fatal("Shutdown did not return after the last in-flight request finished")
	}
	if n := srv.InFlight(); n != 0 {
		t.Fatalf("in-flight count after drain = %d", n)
	}
	// Shutdown is idempotent.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatalf("second Shutdown: %v", err)
	}

	// No goroutine leaks once the listener is closed (allow the runtime a
	// moment to reap handler goroutines).
	hs.Close()
	deadline = time.Now().Add(2 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= before {
			break
		} else if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown", before, n)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownContextExpiry: a drain that cannot finish honors the context.
func TestShutdownContextExpiry(t *testing.T) {
	srv, _ := newTestServer(t, Config{})
	if !srv.drain.enter() {
		t.Fatal("gate rejected before draining")
	}
	defer srv.drain.leave()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); err != context.DeadlineExceeded {
		t.Fatalf("Shutdown with stuck request = %v, want context.DeadlineExceeded", err)
	}
}

// TestServerConcurrentMixedLoad exercises the whole API surface from many
// goroutines at once — run under -race this is the server-side half of the
// concurrency sweep.
func TestServerConcurrentMixedLoad(t *testing.T) {
	srv, hs := newTestServer(t, Config{MaxConcurrency: 4, QueueTimeout: 5 * time.Second})
	const workers = 8
	iters := 15
	if testing.Short() {
		iters = 5
	}
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(gid int) {
			defer wg.Done()
			c := NewClient(hs.URL, hs.Client())
			if _, err := c.NewSession(WireOptions{}); err != nil {
				errs <- err
				return
			}
			name := fmt.Sprintf("w%d", gid)
			if _, err := c.Prepare(name, `SELECT y.a FROM Y y WHERE y.d = 2`); err != nil {
				errs <- err
				return
			}
			for i := 0; i < iters; i++ {
				switch i % 4 {
				case 0:
					if _, err := c.Query(`SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`, nil); err != nil {
						errs <- err
						return
					}
				case 1:
					if _, err := c.Execute(name, nil); err != nil {
						errs <- err
						return
					}
				case 2:
					if _, err := c.Explain(`SELECT y.a FROM Y y WHERE y.b = 3`, "", nil); err != nil {
						errs <- err
						return
					}
				case 3:
					if _, err := c.Stats(); err != nil {
						errs <- err
						return
					}
				}
			}
			errs <- c.CloseSession()
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
	if got := srv.InFlight(); got != 0 {
		t.Fatalf("in-flight after load = %d", got)
	}
}
