package server

import (
	"errors"
	"sort"
	"sync"
	"testing"
)

// TestMutationEndpoints drives the four mutation endpoints through the typed
// client: an insert becomes visible to queries, a delete removes it, the DDL
// pair registers and unregisters an index (observable through the stats
// counters), and the error taxonomy covers unknown tables and missing
// indexes.
func TestMutationEndpoints(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrency: 4})
	c := NewClient(hs.URL, nil)

	const q = `SELECT y FROM Y y WHERE y.d = 424242`
	before, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if before.Rows != 0 {
		t.Fatalf("sentinel already present: %d rows", before.Rows)
	}

	added, err := c.Insert("Y", `(a = 2, b = 7, c = {1}, d = 424242)`)
	if err != nil {
		t.Fatal(err)
	}
	if !added {
		t.Error("insert of a fresh tuple reported added=false")
	}
	// Set semantics: re-inserting the same tuple is a no-op.
	added, err = c.Insert("Y", `(a = 2, b = 7, c = {1}, d = 424242)`)
	if err != nil {
		t.Fatal(err)
	}
	if added {
		t.Error("duplicate insert reported added=true")
	}
	after, err := c.Query(q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if after.Rows != 1 {
		t.Errorf("query sees %d rows after insert, want 1", after.Rows)
	}

	n, err := c.Delete("Y", "y", "y.d = 424242")
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("delete removed %d rows, want 1", n)
	}

	if err := c.CreateIndex("Y", "d"); err != nil {
		t.Fatal(err)
	}
	if err := c.DropIndex("Y", "d"); err != nil {
		t.Fatal(err)
	}

	st, err := c.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Inserts != 2 || st.Deletes != 1 || st.IndexCreates != 1 || st.IndexDrops != 1 {
		t.Errorf("mutation counters = %d/%d/%d/%d, want 2/1/1/1",
			st.Inserts, st.Deletes, st.IndexCreates, st.IndexDrops)
	}

	// Error taxonomy: unknown table and missing index map to query_error.
	var se *ServerError
	if _, err := c.Insert("GHOST", `(a = 1)`); !errors.As(err, &se) || se.Code != "query_error" {
		t.Errorf("insert into unknown table: err = %v, want query_error", err)
	}
	if err := c.DropIndex("Y", "d"); !errors.As(err, &se) || se.Code != "query_error" {
		t.Errorf("drop of a missing index: err = %v, want query_error", err)
	}
	if _, err := c.Delete("Y", "y", "y.d"); !errors.As(err, &se) || se.Code != "query_error" {
		t.Errorf("non-BOOL delete predicate: err = %v, want query_error", err)
	}
}

// TestStatsSnapshotSeq pins the snapshot-identity contract concurrent
// scrapers rely on: every /stats response carries a unique seq, strictly
// increasing within any one scraper's sequence of calls, so two uncoordinated
// scrapers can order their snapshots and compute deltas.
func TestStatsSnapshotSeq(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrency: 4})

	const scrapers, perScraper = 8, 25
	seqs := make([][]uint64, scrapers)
	var wg sync.WaitGroup
	for g := 0; g < scrapers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			c := NewClient(hs.URL, nil)
			for i := 0; i < perScraper; i++ {
				st, err := c.Stats()
				if err != nil {
					t.Errorf("scraper %d: %v", g, err)
					return
				}
				seqs[g] = append(seqs[g], st.Seq)
				if st.UnixNanos == 0 {
					t.Errorf("scraper %d: snapshot without a timestamp", g)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	var all []uint64
	for g, s := range seqs {
		for i := 1; i < len(s); i++ {
			if s[i] <= s[i-1] {
				t.Errorf("scraper %d: seq not strictly increasing: %d then %d", g, s[i-1], s[i])
			}
		}
		all = append(all, s...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	for i := 1; i < len(all); i++ {
		if all[i] == all[i-1] {
			t.Errorf("duplicate snapshot seq %d across scrapers", all[i])
		}
	}
	if len(all) != scrapers*perScraper {
		t.Errorf("collected %d seqs, want %d", len(all), scrapers*perScraper)
	}
}
