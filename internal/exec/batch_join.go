package exec

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/faultinject"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// BatchHashJoin is the batched HashJoin: the right input is drained batch by
// batch into the hash table, then each left batch is probed in one tight
// loop and its join outputs emitted as one batch. All flat join kinds
// (inner, semi, anti, left-outer) are supported with the row operator's
// exact semantics; key extraction and residual evaluation run compiled where
// the expressions allow.
//
// Governance follows the batched contract: one governor poll and one fault
// point per batch on both build and probe sides, build-byte budget charges
// summed per build batch.
type BatchHashJoin struct {
	Ctx        *Ctx
	Kind       algebra.JoinKind
	L, R       BatchIterator
	LVar, RVar string
	// LKeys/RKeys are the equi-key expressions over LVar and RVar; the i-th
	// left key matches the i-th right key.
	LKeys, RKeys []tmql.Expr
	// Residual is the remaining predicate (may be nil).
	Residual tmql.Expr
	// RElem is required for the outer join's NULL padding.
	RElem *types.Type

	table   *hashTable
	lenc    *keyEncoder
	res     *pairPredicate
	scratch []byte
	pad     value.Value
	out     Batch
}

// Open drains the right input into the hash table and opens the left.
func (j *BatchHashJoin) Open() error {
	if len(j.LKeys) == 0 || len(j.LKeys) != len(j.RKeys) {
		return fmt.Errorf("exec: BatchHashJoin needs matching non-empty key lists")
	}
	if err := j.R.Open(); err != nil {
		return err
	}
	renc := newKeyEncoder(j.Ctx, j.RKeys, j.RVar, false)
	j.table = newHashTable(0)
	for {
		bt, ok, err := j.R.NextBatch()
		if err != nil {
			j.R.Close()
			return err
		}
		if !ok {
			break
		}
		if err := j.buildBatch(bt, renc); err != nil {
			j.R.Close()
			return err
		}
	}
	if err := j.R.Close(); err != nil {
		return err
	}
	if j.Kind == algebra.JoinLeftOuter {
		if j.RElem == nil {
			return fmt.Errorf("exec: outer BatchHashJoin needs RElem for NULL padding")
		}
		j.pad = nullTuple(j.RElem)
	}
	j.lenc = newKeyEncoder(j.Ctx, j.LKeys, j.LVar, false)
	j.res = newPairPredicate(j.Ctx, j.Residual, j.LVar, j.RVar)
	return j.L.Open()
}

// buildBatch inserts one right batch into the hash table.
func (j *BatchHashJoin) buildBatch(bt *Batch, renc *keyEncoder) error {
	if err := j.Ctx.checkBatch(); err != nil {
		return err
	}
	if err := faultinject.Hit(faultinject.PointHashBuild); err != nil {
		return err
	}
	var batchBytes int64
	for _, r := range bt.Rows {
		buf, err := renc.appendKey(j.scratch[:0], r)
		if err != nil {
			return err
		}
		j.scratch = buf[:0]
		batchBytes += int64(len(buf)) + buildRowOverhead
		j.table.add(buf, r)
	}
	if j.Ctx.Gov != nil {
		if err := j.Ctx.Gov.AddBuildBytes(batchBytes); err != nil {
			return err
		}
	}
	return nil
}

// NextBatch probes left batches until one produces output. Output batch size
// follows the left batch (times the join fanout), so a high-fanout bucket
// can emit more rows than the configured size — batches bound governor poll
// spacing on the input side, which is what the latency bound needs.
func (j *BatchHashJoin) NextBatch() (*Batch, bool, error) {
	for {
		bt, ok, err := j.L.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		if err := j.Ctx.checkBatch(); err != nil {
			return nil, false, err
		}
		if err := faultinject.Hit(faultinject.PointHashProbe); err != nil {
			return nil, false, err
		}
		if err := bt.encodeKeys(j.lenc); err != nil {
			return nil, false, err
		}
		j.out.reset()
		for i, l := range bt.Rows {
			bucket := j.table.bucket(bt.Key(i))
			switch j.Kind {
			case algebra.JoinSemi, algebra.JoinAnti:
				m, err := j.probeAny(l, bucket)
				if err != nil {
					return nil, false, err
				}
				if m == (j.Kind == algebra.JoinSemi) {
					j.out.Rows = append(j.out.Rows, l)
				}
			default:
				matched := false
				for _, r := range bucket {
					if j.Residual != nil {
						ok, err := j.res.eval(l, r)
						if err != nil {
							return nil, false, err
						}
						if !ok {
							continue
						}
					}
					matched = true
					j.out.Rows = append(j.out.Rows, l.Concat(r))
				}
				if j.Kind == algebra.JoinLeftOuter && !matched {
					j.out.Rows = append(j.out.Rows, l.Concat(j.pad))
				}
			}
		}
		if j.out.Len() > 0 {
			return &j.out, true, nil
		}
	}
}

// probeAny reports whether any bucket candidate passes the residual, through
// the compiled residual when available.
func (j *BatchHashJoin) probeAny(l value.Value, bucket []value.Value) (bool, error) {
	if j.Residual == nil {
		return len(bucket) > 0, nil
	}
	for _, r := range bucket {
		ok, err := j.res.eval(l, r)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Close releases the hash table and closes the left input.
func (j *BatchHashJoin) Close() error {
	j.table = nil
	return j.L.Close()
}
