package exec

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
)

// Query governance: cancellation, deadlines, and resource budgets, threaded
// through every operator. A Governor is shared by a query's whole operator
// tree — including the forked contexts of parallel workers, whose atomic
// counters make accounting race-free — and is consulted through Ctx.check()
// at every Next()/build loop. Ungoverned queries (Ctx.Gov == nil) pay a
// single nil check, keeping hot benchmark paths at their pre-governance
// cost.
//
// The error taxonomy operators surface (and the server maps to wire codes):
//
//	ErrCanceled          the caller's context was canceled (client gone)
//	ErrDeadlineExceeded  the wall-clock deadline expired
//	*BudgetError         a resource budget was exhausted; matches
//	                     errors.Is(err, ErrBudgetExceeded) and carries the
//	                     resource, limit, and observed usage

// ErrCanceled reports that the query's context was canceled.
var ErrCanceled = errors.New("exec: query canceled")

// ErrDeadlineExceeded reports that the query's wall-clock deadline expired.
var ErrDeadlineExceeded = errors.New("exec: query deadline exceeded")

// ErrBudgetExceeded is the errors.Is target every *BudgetError matches.
var ErrBudgetExceeded = errors.New("exec: query budget exceeded")

// ErrStaleIndex reports a plan that probes a persistent index which no longer
// exists — dropped (or the table unsealed) between planning and Open. It is
// not a governance abort: the query did nothing wrong, its cached plan went
// stale, and the engine responds by replanning once transparently (see
// engine.execBound) before surfacing the error to callers.
var ErrStaleIndex = errors.New("exec: stale index")

// BudgetError reports an exhausted resource budget.
type BudgetError struct {
	// Resource names the exhausted budget: "rows" or "build_bytes".
	Resource string
	// Limit is the configured budget; Used is the usage that tripped it.
	Limit, Used int64
}

func (e *BudgetError) Error() string {
	return fmt.Sprintf("exec: %s budget exceeded (limit %d, used %d)", e.Resource, e.Limit, e.Used)
}

// Is makes errors.Is(err, ErrBudgetExceeded) match any BudgetError.
func (e *BudgetError) Is(target error) bool { return target == ErrBudgetExceeded }

// Limits are the per-query resource budgets. Zero fields are unlimited.
type Limits struct {
	// MaxRows bounds the number of rows added to the query's result set
	// (counted pre-deduplication, as produced by the plan root).
	MaxRows int64
	// MaxBuildBytes bounds the approximate bytes materialized into hash
	// tables and sort runs, summed across all build sites of the plan
	// (including every parallel partition). The accounting is an estimate —
	// encoded key bytes plus a fixed per-row overhead — not an allocator
	// measurement; it exists to bound runaway builds, not to meter memory.
	MaxBuildBytes int64
}

// buildRowOverhead is the flat per-row estimate added to build-byte
// accounting on top of encoded key bytes (slice headers, bucket slots,
// retained value headers).
const buildRowOverhead = 48

// Governor enforces one query's cancellation and budgets. All methods are
// safe for concurrent use by parallel workers.
type Governor struct {
	done   <-chan struct{}
	ctx    context.Context
	limits Limits

	rows       atomic.Int64
	buildBytes atomic.Int64
}

// NewGovernor returns a governor observing ctx and enforcing limits, or nil
// when there is nothing to govern (background context with no budgets) — the
// nil Governor is the documented "free" fast path.
func NewGovernor(ctx context.Context, limits Limits) *Governor {
	if ctx == nil {
		ctx = context.Background()
	}
	if ctx.Done() == nil && limits == (Limits{}) {
		return nil
	}
	return &Governor{done: ctx.Done(), ctx: ctx, limits: limits}
}

// Err reports the query's cancellation state without blocking: nil while
// live, ErrDeadlineExceeded or ErrCanceled once the context is done.
func (g *Governor) Err() error {
	if g == nil || g.done == nil {
		return nil
	}
	select {
	case <-g.done:
		if errors.Is(g.ctx.Err(), context.DeadlineExceeded) {
			return ErrDeadlineExceeded
		}
		return ErrCanceled
	default:
		return nil
	}
}

// AddRows accounts n result rows against the row budget.
func (g *Governor) AddRows(n int64) error {
	if g == nil {
		return nil
	}
	used := g.rows.Add(n)
	if g.limits.MaxRows > 0 && used > g.limits.MaxRows {
		return &BudgetError{Resource: "rows", Limit: g.limits.MaxRows, Used: used}
	}
	return nil
}

// AddBuildBytes accounts n materialized bytes against the build budget.
func (g *Governor) AddBuildBytes(n int64) error {
	if g == nil {
		return nil
	}
	used := g.buildBytes.Add(n)
	if g.limits.MaxBuildBytes > 0 && used > g.limits.MaxBuildBytes {
		return &BudgetError{Resource: "build_bytes", Limit: g.limits.MaxBuildBytes, Used: used}
	}
	return nil
}

// Rows returns the rows accounted so far (partial-work reporting on abort).
func (g *Governor) Rows() int64 {
	if g == nil {
		return 0
	}
	return g.rows.Load()
}

// BuildBytes returns the build bytes accounted so far.
func (g *Governor) BuildBytes() int64 {
	if g == nil {
		return 0
	}
	return g.buildBytes.Load()
}

// checkEvery is the tick mask of Ctx.check: the governor's channel poll runs
// once per this many calls, so per-row checks in tight loops cost a counter
// increment and a branch between polls.
const checkEvery = 64

// check is the cancel-check every operator calls in its Next()/build loop.
// Ungoverned contexts return immediately on the nil check; governed ones
// poll the governor once per checkEvery calls. See ARCHITECTURE.md
// "Cancellation, budgets, and fault injection" for the operator-author
// contract.
func (c *Ctx) check() error {
	if c.Gov == nil {
		return nil
	}
	c.ticks++
	if c.ticks&(checkEvery-1) != 0 {
		return nil
	}
	return c.Gov.Err()
}

// addBuild accounts one build-side row (key bytes + flat overhead) and
// returns any budget error.
func (c *Ctx) addBuild(keyBytes int) error {
	if c.Gov == nil {
		return nil
	}
	return c.Gov.AddBuildBytes(int64(keyBytes) + buildRowOverhead)
}
