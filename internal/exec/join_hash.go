package exec

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/faultinject"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// HashJoin is the hash implementation of the flat join family on equi-keys.
// The right input is always the build side; the left streams and probes. A
// residual predicate (the non-equi remainder of the join condition) is
// re-checked against each bucket candidate.
//
// For the regular join one would pick the smaller operand to build; the
// interface fixes build = right because the planner shares this operator
// shape with the nest join, where §6 requires the right operand to be the
// build table whenever the key is not unique on the right.
//
// Keys take the allocation-lean path: encodings are appended onto a reusable
// scratch buffer and the table is probed via string(buf) (no allocation), so
// the probe side allocates nothing per row beyond the emitted tuples.
type HashJoin struct {
	Ctx        *Ctx
	Kind       algebra.JoinKind
	L, R       Iterator
	LVar, RVar string
	// LKeys/RKeys are the equi-key expressions over LVar and RVar; the i-th
	// left key matches the i-th right key.
	LKeys, RKeys []tmql.Expr
	// Residual is the remaining predicate (may be nil).
	Residual tmql.Expr
	// RElem is required for the outer join's NULL padding.
	RElem *types.Type

	table   *hashTable
	scratch []byte
	cur     value.Value
	bucket  []value.Value
	bi      int
	matched bool
	state   nlState
	pad     value.Value
}

// Open drains the right input into the hash table and opens the left.
func (j *HashJoin) Open() error {
	if len(j.LKeys) == 0 || len(j.LKeys) != len(j.RKeys) {
		return fmt.Errorf("exec: HashJoin needs matching non-empty key lists")
	}
	rows, err := Drain(j.R)
	if err != nil {
		return err
	}
	j.table = newHashTable(len(rows))
	for _, r := range rows {
		if err := buildCheck(j.Ctx); err != nil {
			return err
		}
		buf, err := appendRowKey(j.Ctx, j.RKeys, j.RVar, r, j.scratch[:0])
		if err != nil {
			return err
		}
		if err := j.Ctx.addBuild(len(buf)); err != nil {
			return err
		}
		j.scratch = buf[:0]
		j.table.add(buf, r)
	}
	if j.Kind == algebra.JoinLeftOuter {
		if j.RElem == nil {
			return fmt.Errorf("exec: outer HashJoin needs RElem for NULL padding")
		}
		j.pad = nullTuple(j.RElem)
	}
	j.state = nlNeedLeft
	return j.L.Open()
}

// Next produces the next output tuple.
func (j *HashJoin) Next() (value.Value, bool, error) {
	for {
		switch j.state {
		case nlDone:
			return value.Value{}, false, nil
		case nlNeedLeft:
			l, ok, err := j.L.Next()
			if err != nil {
				return value.Value{}, false, err
			}
			if !ok {
				j.state = nlDone
				return value.Value{}, false, nil
			}
			if err := probeCheck(j.Ctx); err != nil {
				return value.Value{}, false, err
			}
			j.cur = l
			buf, err := appendRowKey(j.Ctx, j.LKeys, j.LVar, l, j.scratch[:0])
			if err != nil {
				return value.Value{}, false, err
			}
			j.scratch = buf[:0]
			j.bucket = j.table.bucket(buf)
			j.bi = 0
			j.matched = false
			switch j.Kind {
			case algebra.JoinSemi, algebra.JoinAnti:
				m, err := j.probeAny()
				if err != nil {
					return value.Value{}, false, err
				}
				if m == (j.Kind == algebra.JoinSemi) {
					return j.cur, true, nil
				}
				continue
			default:
				j.state = nlScanRight
			}
		case nlScanRight:
			for j.bi < len(j.bucket) {
				r := j.bucket[j.bi]
				j.bi++
				if j.Residual != nil {
					ok, err := j.Ctx.evalPred(j.Residual, env2(j.LVar, j.cur, j.RVar, r))
					if err != nil {
						return value.Value{}, false, err
					}
					if !ok {
						continue
					}
				}
				j.matched = true
				return j.cur.Concat(r), true, nil
			}
			j.state = nlNeedLeft
			if j.Kind == algebra.JoinLeftOuter && !j.matched {
				return j.cur.Concat(j.pad), true, nil
			}
		}
	}
}

// probeAny reports whether any bucket candidate passes the residual —
// the semijoin's early-out probe that never builds a group, the efficiency
// edge §8 exploits when grouping is provably unnecessary. With no residual
// the bucket membership already answers it, with no per-row predicate calls.
func (j *HashJoin) probeAny() (bool, error) {
	return probeAnyBucket(j.Ctx, j.cur, j.bucket, j.LVar, j.RVar, j.Residual)
}

// Close releases the hash table and closes the left input.
func (j *HashJoin) Close() error {
	j.table = nil
	j.bucket = nil
	return j.L.Close()
}

// HashNestJoin is the hash implementation of the nest join. The right
// operand is the build table (§6's restriction: output must stay grouped by
// left elements, so the probing side must be the left); each left element
// probes its bucket, applies the join function to qualifying elements, and
// emits exactly one output tuple once the whole group is known.
type HashNestJoin struct {
	Ctx          *Ctx
	L, R         Iterator
	LVar, RVar   string
	LKeys, RKeys []tmql.Expr
	Residual     tmql.Expr
	Fn           tmql.Expr
	Label        string

	table   *hashTable
	scratch []byte
}

// Open builds the hash table on the right input.
func (j *HashNestJoin) Open() error {
	if len(j.LKeys) == 0 || len(j.LKeys) != len(j.RKeys) {
		return fmt.Errorf("exec: HashNestJoin needs matching non-empty key lists")
	}
	rows, err := Drain(j.R)
	if err != nil {
		return err
	}
	j.table = newHashTable(len(rows))
	for _, r := range rows {
		if err := buildCheck(j.Ctx); err != nil {
			return err
		}
		buf, err := appendRowKey(j.Ctx, j.RKeys, j.RVar, r, j.scratch[:0])
		if err != nil {
			return err
		}
		if err := j.Ctx.addBuild(len(buf)); err != nil {
			return err
		}
		j.scratch = buf[:0]
		j.table.add(buf, r)
	}
	return j.L.Open()
}

// buildCheck is the per-row governance + fault-injection gate of every hash
// build loop; probeCheck the same for probe loops.
func buildCheck(c *Ctx) error {
	if err := c.check(); err != nil {
		return err
	}
	return faultinject.Hit(faultinject.PointHashBuild)
}

func probeCheck(c *Ctx) error {
	if err := c.check(); err != nil {
		return err
	}
	return faultinject.Hit(faultinject.PointHashProbe)
}

// Next emits the next left element extended with its group.
func (j *HashNestJoin) Next() (value.Value, bool, error) {
	l, ok, err := j.L.Next()
	if err != nil || !ok {
		return value.Value{}, false, err
	}
	if err := probeCheck(j.Ctx); err != nil {
		return value.Value{}, false, err
	}
	buf, err := appendRowKey(j.Ctx, j.LKeys, j.LVar, l, j.scratch[:0])
	if err != nil {
		return value.Value{}, false, err
	}
	j.scratch = buf[:0]
	bucket := j.table.bucket(buf)
	group, err := nestGroup(j.Ctx, l, bucket, j.LVar, j.RVar, j.Residual, j.Fn)
	if err != nil {
		return value.Value{}, false, err
	}
	return l.Extend(j.Label, group), true, nil
}

// nestGroup applies the nest join's per-left-element grouping: the join
// function over the bucket candidates passing the residual, canonicalized
// into a set. The builder is sized by the bucket — the group is at most the
// bucket — so group construction never regrows. Shared by the serial and
// parallel nest joins.
func nestGroup(c *Ctx, l value.Value, bucket []value.Value,
	lvar, rvar string, residual, fn tmql.Expr) (value.Value, error) {
	group := value.NewSetBuilder(len(bucket))
	for _, r := range bucket {
		env := env2(lvar, l, rvar, r)
		if residual != nil {
			match, err := c.evalPred(residual, env)
			if err != nil {
				return value.Value{}, err
			}
			if !match {
				continue
			}
		}
		g, err := c.evalIn(fn, env)
		if err != nil {
			return value.Value{}, err
		}
		group.Add(g)
	}
	return group.Build(), nil
}

// Close releases the hash table and closes the left input.
func (j *HashNestJoin) Close() error {
	j.table = nil
	return j.L.Close()
}
