package exec

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// Index-backed join operators: the right operand is a stored table with a
// persistent hash index covering a prefix of the equi-key attributes
// (storage.Table.CreateIndex), so there is no build phase at all — each left
// row evaluates its key expressions and probes the index's bucket directly.
// This is the physical family behind planner.ImplIndex ("idxjoin"): it wins
// over the per-query hash build whenever the index exists, because the right
// input is never drained. Composite indexes serve multi-key equi-joins: the
// probe covers as many leading index attributes as the predicate pairs, and
// only the uncovered remainder is re-checked per candidate.
//
// Like the hash family, the probing side is the left operand — §6's
// restriction for the nest join (output grouped by left elements) is
// trivially preserved. Residual predicates (the non-indexed remainder of the
// join condition, including uncovered equi-key pairs) are re-checked per
// bucket candidate.

// indexProbeSide holds the index snapshot probed per left row and evaluates
// the left key prefix (allocation-lean: encodings append onto a reused
// scratch buffer); shared by IndexJoin, IndexNestJoin, and IndexScan. The
// planner resolves the *HashIndex at compile time and pre-seeds ix — index
// buckets are copy-on-write, so the snapshot stays probeable even if the
// registry entry is dropped mid-query, exactly like a scan's row snapshot.
// An operator constructed without the pre-resolved handle resolves at Open
// and surfaces the typed ErrStaleIndex when the registry no longer serves
// the index (dropped, or the table unsealed, since planning).
type indexProbeSide struct {
	ctx *Ctx
	// table and index locate the persistent index: the scanned extension and
	// the index's canonical registry name (storage.IndexName).
	table, index string
	lvar         string
	// lkeys are the probe-key expressions over lvar, ordered by the index's
	// attribute order; len(lkeys) is the probed prefix depth.
	lkeys   []tmql.Expr
	ix      *storage.HashIndex
	scratch []byte
}

func (s *indexProbeSide) open() error {
	if len(s.lkeys) == 0 {
		return fmt.Errorf("exec: index probe on %s.%s needs at least one key", s.table, s.index)
	}
	if s.ix == nil {
		t, ok := s.ctx.DB.Table(s.table)
		if !ok {
			return fmt.Errorf("exec: unknown table %s", s.table)
		}
		ix, ok := t.Index(s.index)
		if !ok {
			return fmt.Errorf("no live index on %s(%s) (table unsealed or index dropped since planning): %w",
				s.table, s.index, ErrStaleIndex)
		}
		s.ix = ix
	}
	if len(s.lkeys) > len(s.ix.Attrs()) {
		return fmt.Errorf("exec: probe depth %d exceeds index %s(%s)", len(s.lkeys), s.table, s.index)
	}
	return nil
}

// bucket returns the index bucket matching the left row's key prefix.
func (s *indexProbeSide) bucket(l value.Value) ([]value.Value, error) {
	env := env1(s.lvar, l)
	buf := s.scratch[:0]
	for _, k := range s.lkeys {
		kv, err := s.ctx.evalIn(k, env)
		if err != nil {
			return nil, err
		}
		buf = value.AppendKey(buf, kv)
	}
	s.scratch = buf[:0]
	return s.ix.LookupEncoded(string(buf), len(s.lkeys)), nil
}

// IndexJoin is the index-backed implementation of the flat join family
// (inner, semi, anti, left-outer) on equi-keys with a persistent index.
type IndexJoin struct {
	Ctx  *Ctx
	Kind algebra.JoinKind
	L    Iterator
	// Table and Index name the right side: the indexed stored table and the
	// index's canonical registry name (storage.IndexName of its attributes).
	Table, Index string
	// Ix is the index snapshot resolved by the planner at compile time;
	// nil falls back to registry resolution at Open (typed-stale on miss).
	Ix         *storage.HashIndex
	LVar, RVar string
	// LKeys are the probe-key expressions over LVar (the left halves of the
	// equi-key pairs the index prefix covers, in index attribute order).
	LKeys []tmql.Expr
	// Residual is the remaining predicate (may be nil).
	Residual tmql.Expr
	// RElem is required for the outer join's NULL padding.
	RElem *types.Type

	probe   indexProbeSide
	cur     value.Value
	bucket  []value.Value
	bi      int
	matched bool
	state   nlState
	pad     value.Value
}

// Open resolves the index and opens the left input. The right table is never
// scanned.
func (j *IndexJoin) Open() error {
	j.probe = indexProbeSide{ctx: j.Ctx, table: j.Table, index: j.Index, lvar: j.LVar, lkeys: j.LKeys, ix: j.Ix}
	if err := j.probe.open(); err != nil {
		return err
	}
	if j.Kind == algebra.JoinLeftOuter {
		if j.RElem == nil {
			return fmt.Errorf("exec: outer IndexJoin needs RElem for NULL padding")
		}
		j.pad = nullTuple(j.RElem)
	}
	j.state = nlNeedLeft
	return j.L.Open()
}

// Next produces the next output tuple.
func (j *IndexJoin) Next() (value.Value, bool, error) {
	for {
		switch j.state {
		case nlDone:
			return value.Value{}, false, nil
		case nlNeedLeft:
			l, ok, err := j.L.Next()
			if err != nil {
				return value.Value{}, false, err
			}
			if !ok {
				j.state = nlDone
				return value.Value{}, false, nil
			}
			if err := probeCheck(j.Ctx); err != nil {
				return value.Value{}, false, err
			}
			j.cur = l
			j.bucket, err = j.probe.bucket(l)
			if err != nil {
				return value.Value{}, false, err
			}
			j.bi = 0
			j.matched = false
			switch j.Kind {
			case algebra.JoinSemi, algebra.JoinAnti:
				m, err := probeAnyBucket(j.Ctx, j.cur, j.bucket, j.LVar, j.RVar, j.Residual)
				if err != nil {
					return value.Value{}, false, err
				}
				if m == (j.Kind == algebra.JoinSemi) {
					return j.cur, true, nil
				}
				continue
			default:
				j.state = nlScanRight
			}
		case nlScanRight:
			for j.bi < len(j.bucket) {
				r := j.bucket[j.bi]
				j.bi++
				if j.Residual != nil {
					ok, err := j.Ctx.evalPred(j.Residual, env2(j.LVar, j.cur, j.RVar, r))
					if err != nil {
						return value.Value{}, false, err
					}
					if !ok {
						continue
					}
				}
				j.matched = true
				return j.cur.Concat(r), true, nil
			}
			j.state = nlNeedLeft
			if j.Kind == algebra.JoinLeftOuter && !j.matched {
				return j.cur.Concat(j.pad), true, nil
			}
		}
	}
}

// Close releases the bucket and closes the left input.
func (j *IndexJoin) Close() error {
	j.probe.ix = nil
	j.bucket = nil
	return j.L.Close()
}

// IndexNestJoin is the index-backed implementation of the nest join: each
// left element probes the persistent index, applies the join function to
// qualifying candidates, and emits one output tuple carrying the whole group
// (§6's grouping restriction, trivially satisfied — no build table needed).
type IndexNestJoin struct {
	Ctx          *Ctx
	L            Iterator
	Table, Index string
	// Ix is the index snapshot resolved by the planner at compile time;
	// nil falls back to registry resolution at Open (typed-stale on miss).
	Ix         *storage.HashIndex
	LVar, RVar string
	LKeys      []tmql.Expr
	Residual   tmql.Expr
	Fn         tmql.Expr
	Label      string

	probe indexProbeSide
}

// Open resolves the index and opens the left input.
func (j *IndexNestJoin) Open() error {
	j.probe = indexProbeSide{ctx: j.Ctx, table: j.Table, index: j.Index, lvar: j.LVar, lkeys: j.LKeys, ix: j.Ix}
	if err := j.probe.open(); err != nil {
		return err
	}
	return j.L.Open()
}

// Next emits the next left element extended with its group.
func (j *IndexNestJoin) Next() (value.Value, bool, error) {
	l, ok, err := j.L.Next()
	if err != nil || !ok {
		return value.Value{}, false, err
	}
	if err := probeCheck(j.Ctx); err != nil {
		return value.Value{}, false, err
	}
	bucket, err := j.probe.bucket(l)
	if err != nil {
		return value.Value{}, false, err
	}
	group, err := nestGroup(j.Ctx, l, bucket, j.LVar, j.RVar, j.Residual, j.Fn)
	if err != nil {
		return value.Value{}, false, err
	}
	return l.Extend(j.Label, group), true, nil
}

// Close releases the index reference and closes the left input.
func (j *IndexNestJoin) Close() error {
	j.probe.ix = nil
	return j.L.Close()
}
