package exec

import (
	"fmt"

	"tmdb/internal/faultinject"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// IndexScan is the index-backed access path for single-table selections: a
// selection whose equality conjuncts cover a prefix of a persistent index
// (σ[x.a = c AND …](X)) reads exactly the matching bucket(s) instead of
// scanning the table. The base scan is never materialized — Open resolves
// the index and the point keys, Next streams the bucket rows through the
// residual predicate. This is the physical family behind the planner's
// AccessIndex ("idxscan") access path.
//
// Points holds one or more key points. Each point is a list of closed key
// expressions (no free variables — the planner only matches conjuncts whose
// non-attribute side is constant at plan time), one per covered index
// attribute in index order. Distinct points address disjoint buckets (the
// key encoding is injective per depth), so multi-point scans concatenate
// buckets without deduplication.
type IndexScan struct {
	Ctx *Ctx
	// Table and Index locate the persistent index: the scanned extension and
	// the index's canonical registry name (storage.IndexName).
	Table, Index string
	// Ix is the index snapshot resolved by the planner at compile time;
	// nil falls back to registry resolution at Open (typed-stale on miss).
	Ix *storage.HashIndex
	// Depth is the number of leading index attributes each point covers.
	Depth int
	// Points are the key points, each a list of Depth closed expressions.
	Points [][]tmql.Expr
	// Var and Residual re-check the selection's uncovered conjuncts per
	// bucket row (Residual may be nil when the index covers everything).
	Var      string
	Residual tmql.Expr

	probe   indexProbeSide
	buckets [][]value.Value
	pi, ri  int
}

// Open resolves the index, evaluates every point's keys, and fetches the
// matching buckets. The base table's rows are never touched beyond them.
func (s *IndexScan) Open() error {
	if s.Depth < 1 || len(s.Points) == 0 {
		return fmt.Errorf("exec: IndexScan on %s(%s) needs a positive depth and at least one point", s.Table, s.Index)
	}
	// Reuse the probe side's index resolution; key evaluation differs (closed
	// expressions, evaluated once here rather than per left row).
	s.probe = indexProbeSide{ctx: s.Ctx, table: s.Table, index: s.Index, lvar: s.Var,
		lkeys: make([]tmql.Expr, s.Depth), ix: s.Ix}
	if err := s.probe.open(); err != nil {
		return err
	}
	s.buckets = s.buckets[:0]
	var buf []byte
	for _, pt := range s.Points {
		if len(pt) != s.Depth {
			return fmt.Errorf("exec: IndexScan point has %d keys, want depth %d", len(pt), s.Depth)
		}
		buf = buf[:0]
		for _, k := range pt {
			kv, err := s.Ctx.evalIn(k, nil)
			if err != nil {
				return err
			}
			buf = value.AppendKey(buf, kv)
		}
		if b := s.probe.ix.LookupEncoded(string(buf), s.Depth); len(b) > 0 {
			s.buckets = append(s.buckets, b)
		}
	}
	s.pi, s.ri = 0, 0
	return nil
}

// Next returns the next bucket row passing the residual predicate.
func (s *IndexScan) Next() (value.Value, bool, error) {
	for s.pi < len(s.buckets) {
		b := s.buckets[s.pi]
		for s.ri < len(b) {
			if err := s.Ctx.check(); err != nil {
				return value.Value{}, false, err
			}
			if err := faultinject.Hit(faultinject.PointScan); err != nil {
				return value.Value{}, false, err
			}
			v := b[s.ri]
			s.ri++
			if s.Residual != nil {
				keep, err := s.Ctx.evalPred(s.Residual, env1(s.Var, v))
				if err != nil {
					return value.Value{}, false, err
				}
				if !keep {
					continue
				}
			}
			return v, true, nil
		}
		s.pi++
		s.ri = 0
	}
	return value.Value{}, false, nil
}

// Close releases the buckets and the index reference.
func (s *IndexScan) Close() error {
	s.probe.ix = nil
	s.buckets = nil
	return nil
}
