package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tmdb/internal/algebra"
	"tmdb/internal/faultinject"
	"tmdb/internal/tmql"
)

// waitGoroutines polls until the goroutine count returns to (roughly) base,
// failing if partitioned-join workers are still alive after the deadline —
// the leak check of the cancellation contract.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("goroutine leak after cancellation: %d at start, %d now", base, runtime.NumGoroutine())
}

// slowPoint arms a 1ms-per-hit delay at the given fault point, making the
// targeted phase take ~1s of wall clock per thousand rows without burning CPU.
func slowPoint(point string) func() {
	return faultinject.Activate(faultinject.Schedule{
		Seed: 1,
		Rules: []faultinject.Rule{
			{Point: point, Kind: faultinject.Delay, OneInN: 1, Delay: time.Millisecond},
		},
	})
}

// TestParHashJoinCancellation cancels ParHashJoin mid-build and mid-probe at
// degrees 2 and 8: the workers must observe the cancellation, drain, and exit
// without leaking goroutines, Collect must surface ErrCanceled, and an
// identical query afterwards (faults off) must be byte-identical to the
// serial oracle.
func TestParHashJoinCancellation(t *testing.T) {
	l, r := genRows(2000, 13, "k", "v"), genRows(1000, 7, "j", "w")
	serial, _ := parJoinPair(NewCtx(nil), algebra.JoinInner, l, r, nil, 0)
	want := collect(t, serial).String()

	phases := []struct{ name, point string }{
		{"build", faultinject.PointHashBuild},
		{"probe", faultinject.PointHashProbe},
	}
	for _, ph := range phases {
		for _, degree := range []int{2, 8} {
			t.Run(fmt.Sprintf("%s/p=%d", ph.name, degree), func(t *testing.T) {
				base := runtime.NumGoroutine()
				deactivate := slowPoint(ph.point)
				defer deactivate()

				cctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				gov := NewGovernor(cctx, Limits{})
				ctx := NewCtxGoverned(nil, gov)
				_, par := parJoinPair(ctx, algebra.JoinInner, l, r, nil, degree)

				done := make(chan error, 1)
				go func() {
					_, err := CollectGoverned(gov, par)
					done <- err
				}()
				time.Sleep(20 * time.Millisecond)
				cancel()
				select {
				case err := <-done:
					if !errors.Is(err, ErrCanceled) {
						t.Fatalf("want ErrCanceled, got %v", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("cancellation did not interrupt the join within 5s")
				}
				deactivate()
				waitGoroutines(t, base)

				_, rerun := parJoinPair(NewCtx(nil), algebra.JoinInner, l, r, nil, degree)
				if got := collect(t, rerun).String(); got != want {
					t.Fatalf("post-cancel rerun diverged from oracle:\nwant %s\ngot  %s", want, got)
				}
			})
		}
	}
}

// TestParHashNestJoinCancellation is the same contract for the parallel nest
// join (build-side and probe-side cancellation at degrees 2 and 8).
func TestParHashNestJoinCancellation(t *testing.T) {
	l, r := genRows(2000, 17, "k", "v"), genRows(1000, 11, "j", "w")
	lk, rk := []tmql.Expr{pred("x.k")}, []tmql.Expr{pred("y.j")}
	fn := pred("y")
	mk := func(ctx *Ctx, degree int) Iterator {
		if degree < 2 {
			return &HashNestJoin{
				Ctx: ctx, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
				LVar: "x", RVar: "y", LKeys: lk, RKeys: rk, Fn: fn, Label: "s",
			}
		}
		return &ParHashNestJoin{
			Ctx: ctx, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
			LVar: "x", RVar: "y", LKeys: lk, RKeys: rk, Fn: fn, Label: "s",
			Degree: degree,
		}
	}
	want := collect(t, mk(NewCtx(nil), 0)).String()

	phases := []struct{ name, point string }{
		{"build", faultinject.PointHashBuild},
		{"probe", faultinject.PointHashProbe},
	}
	for _, ph := range phases {
		for _, degree := range []int{2, 8} {
			t.Run(fmt.Sprintf("%s/p=%d", ph.name, degree), func(t *testing.T) {
				base := runtime.NumGoroutine()
				deactivate := slowPoint(ph.point)
				defer deactivate()

				cctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				gov := NewGovernor(cctx, Limits{})
				ctx := NewCtxGoverned(nil, gov)

				done := make(chan error, 1)
				go func() {
					_, err := CollectGoverned(gov, mk(ctx, degree))
					done <- err
				}()
				time.Sleep(20 * time.Millisecond)
				cancel()
				select {
				case err := <-done:
					if !errors.Is(err, ErrCanceled) {
						t.Fatalf("want ErrCanceled, got %v", err)
					}
				case <-time.After(5 * time.Second):
					t.Fatal("cancellation did not interrupt the nest join within 5s")
				}
				deactivate()
				waitGoroutines(t, base)

				if got := collect(t, mk(NewCtx(nil), degree)).String(); got != want {
					t.Fatalf("post-cancel rerun diverged from oracle:\nwant %s\ngot  %s", want, got)
				}
			})
		}
	}
}

// TestGovernorBudgets pins the budget taxonomy at the exec layer: a row
// budget trips in CollectGoverned, a build budget trips inside the hash
// build, and both surface as *BudgetError matching ErrBudgetExceeded.
func TestGovernorBudgets(t *testing.T) {
	l, r := genRows(500, 13, "k", "v"), genRows(300, 7, "j", "w")

	gov := NewGovernor(context.Background(), Limits{MaxRows: 5})
	ctx := NewCtxGoverned(nil, gov)
	rowsJoin, _ := parJoinPair(ctx, algebra.JoinInner, l, r, nil, 0)
	_, err := CollectGoverned(gov, rowsJoin)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "rows" {
		t.Fatalf("want rows BudgetError, got %v", err)
	}
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("BudgetError must match ErrBudgetExceeded, got %v", err)
	}

	gov = NewGovernor(context.Background(), Limits{MaxBuildBytes: 64})
	ctx = NewCtxGoverned(nil, gov)
	serial, _ := parJoinPair(ctx, algebra.JoinInner, l, r, nil, 0)
	_, err = CollectGoverned(gov, serial)
	if !errors.As(err, &be) || be.Resource != "build_bytes" {
		t.Fatalf("want build_bytes BudgetError, got %v", err)
	}

	gov = NewGovernor(context.Background(), Limits{MaxBuildBytes: 64})
	ctx = NewCtxGoverned(nil, gov)
	_, par8 := parJoinPair(ctx, algebra.JoinInner, l, r, nil, 8)
	if _, err = CollectGoverned(gov, par8); !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("parallel build must observe the shared build budget, got %v", err)
	}
}

// TestSchedulerPanicPropagates pins the worker panic contract: a panic
// inside a scheduled morsel resurfaces on the calling goroutine (where the
// engine's recover can isolate it) instead of crashing the process from a
// worker, and the pool drains first.
func TestSchedulerPanicPropagates(t *testing.T) {
	l, r := genRows(2000, 13, "k", "v"), genRows(1000, 7, "j", "w")
	deactivate := faultinject.Activate(faultinject.Schedule{
		Seed: 7,
		Rules: []faultinject.Rule{
			{Point: faultinject.PointHashBuild, Kind: faultinject.Panic, OneInN: 50},
		},
	})
	defer deactivate()
	base := runtime.NumGoroutine()
	func() {
		defer func() {
			p := recover()
			if p == nil {
				t.Fatal("worker panic did not propagate to the caller")
			}
			if _, ok := p.(*faultinject.InjectedPanic); !ok {
				t.Fatalf("propagated panic is %T, want *faultinject.InjectedPanic", p)
			}
		}()
		ctx := NewCtx(nil)
		_, par := parJoinPair(ctx, algebra.JoinInner, l, r, nil, 4)
		_, _ = Collect(par)
	}()
	deactivate()
	waitGoroutines(t, base)
}
