package exec

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"testing"
	"time"

	"tmdb/internal/algebra"
	"tmdb/internal/faultinject"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// skewRows builds n rows where ~90% share join key 0 and the rest spread
// over keys 1..9, so one hash partition carries almost all the join work —
// the workload the scheduler's stealing exists for.
func skewRows(n int, key, val string) []value.Value {
	out := make([]value.Value, n)
	for i := 0; i < n; i++ {
		k := 0
		if i%10 == 9 {
			k = 1 + i%9
		}
		out[i] = tup(key, k, val, i)
	}
	return out
}

// TestSchedulerStealsUnderSkew pins the tentpole's load-balancing claim: with
// 90% of rows in one partition, idle workers steal the hot partition's probe
// morsels (nonzero steal counter), with stealing disabled every morsel runs on
// its home worker (zero steal counter), and either way the result is
// byte-identical to the serial oracle at degrees 2 and 8.
func TestSchedulerStealsUnderSkew(t *testing.T) {
	l, r := skewRows(2000, "k", "v"), skewRows(1000, "j", "w")
	relem := types.Tuple(types.F("j", types.Int), types.F("w", types.Int))
	mk := func(ctx *Ctx, degree int) Iterator {
		if degree < 2 {
			return &HashJoin{
				Ctx: ctx, Kind: algebra.JoinSemi, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
				LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.j")},
				RElem: relem,
			}
		}
		return &ParHashJoin{
			Ctx: ctx, Kind: algebra.JoinSemi, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
			LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.j")},
			RElem: relem, Degree: degree, BatchSize: 64,
		}
	}
	want := value.Key(collect(t, mk(NewCtx(nil), 0)))

	for _, degree := range []int{2, 8} {
		t.Run(fmt.Sprintf("steal/p=%d", degree), func(t *testing.T) {
			// Hold every morsel for 1ms at the scheduler's gate: the home
			// worker cannot drain its deque before the idle workers come up,
			// so steals happen on every run, not just on lucky schedules.
			deactivate := slowPoint(faultinject.PointSchedMorsel)
			defer deactivate()
			ctx := NewCtx(nil)
			ctx.Sched = NewScheduler(SchedConfig{Workers: degree, MorselSize: 64})
			got := value.Key(collect(t, mk(ctx, degree)))
			if got != want {
				t.Fatalf("p=%d: skewed parallel result not byte-identical to serial", degree)
			}
			stats := ctx.Sched.Stats()
			if stats.Dispatched == 0 {
				t.Fatal("scheduler reported zero dispatched morsels")
			}
			if stats.Stolen == 0 {
				t.Errorf("no morsels stolen under 90/10 skew (dispatched %d)", stats.Dispatched)
			}
		})
		t.Run(fmt.Sprintf("nosteal/p=%d", degree), func(t *testing.T) {
			ctx := NewCtx(nil)
			ctx.Sched = NewScheduler(SchedConfig{Workers: degree, MorselSize: 64, NoSteal: true})
			got := value.Key(collect(t, mk(ctx, degree)))
			if got != want {
				t.Fatalf("p=%d: NoSteal result not byte-identical to serial", degree)
			}
			if stolen := ctx.Sched.Stats().Stolen; stolen != 0 {
				t.Errorf("NoSteal scheduler stole %d morsels", stolen)
			}
		})
	}
}

// TestSchedulerSkewCancellationMidSteal cancels the skewed join while morsels
// are being stolen (every morsel held 1ms at the scheduler gate): the pool
// must drain without leaking goroutines, Collect must surface ErrCanceled,
// and a rerun with faults off must be byte-identical to the serial oracle.
func TestSchedulerSkewCancellationMidSteal(t *testing.T) {
	l, r := skewRows(2000, "k", "v"), skewRows(1000, "j", "w")
	relem := types.Tuple(types.F("j", types.Int), types.F("w", types.Int))
	mk := func(ctx *Ctx, degree int) *ParHashJoin {
		return &ParHashJoin{
			Ctx: ctx, Kind: algebra.JoinSemi, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
			LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.j")},
			RElem: relem, Degree: degree, BatchSize: 64,
		}
	}
	serial := &HashJoin{
		Ctx: NewCtx(nil), Kind: algebra.JoinSemi, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
		LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.j")},
		RElem: relem,
	}
	want := value.Key(collect(t, serial))

	for _, degree := range []int{2, 8} {
		t.Run(fmt.Sprintf("p=%d", degree), func(t *testing.T) {
			base := runtime.NumGoroutine()
			deactivate := slowPoint(faultinject.PointSchedMorsel)
			defer deactivate()

			cctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			gov := NewGovernor(cctx, Limits{})
			ctx := NewCtxGoverned(nil, gov)
			ctx.Sched = NewScheduler(SchedConfig{Workers: degree, MorselSize: 64})

			done := make(chan error, 1)
			go func() {
				_, err := CollectGoverned(gov, mk(ctx, degree))
				done <- err
			}()
			time.Sleep(20 * time.Millisecond)
			cancel()
			select {
			case err := <-done:
				if !errors.Is(err, ErrCanceled) {
					t.Fatalf("want ErrCanceled, got %v", err)
				}
			case <-time.After(5 * time.Second):
				t.Fatal("cancellation did not interrupt the skewed join within 5s")
			}
			deactivate()
			waitGoroutines(t, base)

			rctx := NewCtx(nil)
			rctx.Sched = NewScheduler(SchedConfig{Workers: degree, MorselSize: 64})
			if got := value.Key(collect(t, mk(rctx, degree))); got != want {
				t.Fatalf("post-cancel rerun diverged from serial oracle")
			}
		})
	}
}
