package exec

import (
	"fmt"

	"tmdb/internal/faultinject"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Batched forms of the hot-path leaf and unary operators. Each polls the
// governor and hits its fault point once per batch (see batch.go for the
// protocol), and runs its per-row work in a tight loop over the batch slice
// through compiled row programs where the expressions allow.

// BatchTableScan reads a stored table one zero-copy batch at a time: each
// emitted batch's Rows is a subslice of the table's row snapshot.
type BatchTableScan struct {
	Ctx   *Ctx
	Table string
	Size  int
	rows  []value.Value
	i     int
	b     Batch
}

// Open resolves the table.
func (s *BatchTableScan) Open() error {
	t, ok := s.Ctx.DB.Table(s.Table)
	if !ok {
		return fmt.Errorf("exec: unknown table %s", s.Table)
	}
	s.rows = t.Rows()
	s.i = 0
	s.Size = NormalizeBatchSize(s.Size)
	return nil
}

// NextBatch returns the next batch of rows.
func (s *BatchTableScan) NextBatch() (*Batch, bool, error) {
	if s.i >= len(s.rows) {
		return nil, false, nil
	}
	if err := s.Ctx.checkBatch(); err != nil {
		return nil, false, err
	}
	if err := faultinject.Hit(faultinject.PointScan); err != nil {
		return nil, false, err
	}
	end := s.i + s.Size
	if end > len(s.rows) {
		end = len(s.rows)
	}
	s.b.reset()
	s.b.Rows = s.rows[s.i:end]
	s.i = end
	return &s.b, true, nil
}

// Close releases the row slice.
func (s *BatchTableScan) Close() error { s.rows = nil; return nil }

// BatchSliceScan iterates a fixed slice in zero-copy batches; the batched
// SliceScan.
type BatchSliceScan struct {
	Rows []value.Value
	Size int
	i    int
	b    Batch
}

// Open resets the cursor.
func (s *BatchSliceScan) Open() error {
	s.i = 0
	s.Size = NormalizeBatchSize(s.Size)
	return nil
}

// NextBatch returns the next batch of elements.
func (s *BatchSliceScan) NextBatch() (*Batch, bool, error) {
	if s.i >= len(s.Rows) {
		return nil, false, nil
	}
	end := s.i + s.Size
	if end > len(s.Rows) {
		end = len(s.Rows)
	}
	s.b.reset()
	s.b.Rows = s.Rows[s.i:end]
	s.i = end
	return &s.b, true, nil
}

// Close is a no-op.
func (s *BatchSliceScan) Close() error { return nil }

// BatchFilter is the batched σ: it emits the input batch's qualifying rows.
type BatchFilter struct {
	Ctx  *Ctx
	In   BatchIterator
	Var  string
	Pred tmql.Expr
	pred *rowPredicate
	out  Batch
}

// Open compiles the predicate and opens the input.
func (f *BatchFilter) Open() error {
	f.pred = newRowPredicate(f.Ctx, f.Pred, f.Var)
	return f.In.Open()
}

// NextBatch filters input batches until one yields at least one row.
func (f *BatchFilter) NextBatch() (*Batch, bool, error) {
	for {
		bt, ok, err := f.In.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		if err := f.Ctx.checkBatch(); err != nil {
			return nil, false, err
		}
		f.out.reset()
		for _, v := range bt.Rows {
			keep, err := f.pred.eval(v)
			if err != nil {
				return nil, false, err
			}
			if keep {
				f.out.Rows = append(f.out.Rows, v)
			}
		}
		if f.out.Len() > 0 {
			return &f.out, true, nil
		}
	}
}

// Close closes the input.
func (f *BatchFilter) Close() error { return f.In.Close() }

// BatchMap applies Out(Var) to every row of every input batch.
type BatchMap struct {
	Ctx  *Ctx
	In   BatchIterator
	Var  string
	Out  tmql.Expr
	proj *rowProjector
	out  Batch
}

// Open compiles the projection and opens the input.
func (m *BatchMap) Open() error {
	m.proj = newRowProjector(m.Ctx, m.Out, m.Var)
	return m.In.Open()
}

// NextBatch maps the next input batch.
func (m *BatchMap) NextBatch() (*Batch, bool, error) {
	bt, ok, err := m.In.NextBatch()
	if err != nil || !ok {
		return nil, false, err
	}
	if err := m.Ctx.checkBatch(); err != nil {
		return nil, false, err
	}
	m.out.reset()
	for _, v := range bt.Rows {
		ov, err := m.proj.eval(v)
		if err != nil {
			return nil, false, err
		}
		m.out.Rows = append(m.out.Rows, ov)
	}
	return &m.out, true, nil
}

// Close closes the input.
func (m *BatchMap) Close() error { return m.In.Close() }

// BatchDistinct removes duplicates across batches. It dedups on the
// canonical key encoding (the same identity value.Key gives the row
// Distinct), looked up allocation-free via string(buf); only first-seen rows
// pay a retained key-string allocation.
type BatchDistinct struct {
	Ctx     *Ctx
	In      BatchIterator
	seen    map[string]bool
	scratch []byte
	out     Batch
}

// Open opens the input and resets the seen table.
func (d *BatchDistinct) Open() error {
	d.seen = make(map[string]bool)
	return d.In.Open()
}

// NextBatch dedups input batches until one yields a not-yet-seen row.
func (d *BatchDistinct) NextBatch() (*Batch, bool, error) {
	for {
		bt, ok, err := d.In.NextBatch()
		if err != nil || !ok {
			return nil, false, err
		}
		if err := d.Ctx.checkBatch(); err != nil {
			return nil, false, err
		}
		d.out.reset()
		for _, v := range bt.Rows {
			buf := value.AppendKey(d.scratch[:0], v)
			d.scratch = buf[:0]
			if !d.seen[string(buf)] {
				d.seen[string(buf)] = true
				d.out.Rows = append(d.out.Rows, v)
			}
		}
		if d.out.Len() > 0 {
			return &d.out, true, nil
		}
	}
}

// Close closes the input.
func (d *BatchDistinct) Close() error { d.seen = nil; return d.In.Close() }
