package exec

import (
	"sort"

	"tmdb/internal/faultinject"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Filter implements σ: it yields input elements satisfying Pred(Var).
type Filter struct {
	Ctx  *Ctx
	In   Iterator
	Var  string
	Pred tmql.Expr
}

// Open opens the input.
func (f *Filter) Open() error { return f.In.Open() }

// Next returns the next qualifying element.
func (f *Filter) Next() (value.Value, bool, error) {
	for {
		v, ok, err := f.In.Next()
		if err != nil || !ok {
			return value.Value{}, false, err
		}
		keep, err := f.Ctx.evalPred(f.Pred, env1(f.Var, v))
		if err != nil {
			return value.Value{}, false, err
		}
		if keep {
			return v, true, nil
		}
	}
}

// Close closes the input.
func (f *Filter) Close() error { return f.In.Close() }

// MapIter applies Out(Var) to every input element.
type MapIter struct {
	Ctx *Ctx
	In  Iterator
	Var string
	Out tmql.Expr
}

// Open opens the input.
func (m *MapIter) Open() error { return m.In.Open() }

// Next returns Out applied to the next input element.
func (m *MapIter) Next() (value.Value, bool, error) {
	v, ok, err := m.In.Next()
	if err != nil || !ok {
		return value.Value{}, false, err
	}
	out, err := m.Ctx.evalIn(m.Out, env1(m.Var, v))
	if err != nil {
		return value.Value{}, false, err
	}
	return out, true, nil
}

// Close closes the input.
func (m *MapIter) Close() error { return m.In.Close() }

// Distinct removes duplicates (TM collections are sets; operators such as Map
// may introduce duplicates that must not reach set-valued results).
type Distinct struct {
	// Ctx may be nil (tests); the planner always wires it so the dedup loop
	// observes cancellation.
	Ctx  *Ctx
	In   Iterator
	seen map[string]bool
}

// Open opens the input and resets the seen table.
func (d *Distinct) Open() error {
	d.seen = make(map[string]bool)
	return d.In.Open()
}

// Next returns the next not-yet-seen element.
func (d *Distinct) Next() (value.Value, bool, error) {
	for {
		v, ok, err := d.In.Next()
		if err != nil || !ok {
			return value.Value{}, false, err
		}
		if d.Ctx != nil {
			if err := d.Ctx.check(); err != nil {
				return value.Value{}, false, err
			}
		}
		k := value.Key(v)
		if !d.seen[k] {
			d.seen[k] = true
			return v, true, nil
		}
	}
}

// Close closes the input.
func (d *Distinct) Close() error { d.seen = nil; return d.In.Close() }

// Sort materializes its input in Open and emits it ordered by the canonical
// value order of the key expressions (then by the full element, making the
// order total and deterministic). It underlies the sort-merge join variants.
//
// The input is either a row iterator (In) or a batch iterator (BIn): when BIn
// is set, the build drains whole batches with per-batch governance and never
// pays the row-adapter hop. Both builds feed the same comparator, so the
// sorted runs — and therefore every downstream result — are byte-identical.
type Sort struct {
	Ctx *Ctx
	// In is the row-at-a-time input; ignored when BIn is set.
	In Iterator
	// BIn, when non-nil, is the batch-native input.
	BIn  BatchIterator
	Var  string
	Keys []tmql.Expr
	rows []sortedRow
	i    int
}

type sortedRow struct {
	key value.Value // tuple of key values (label-free list encoded as a list value)
	v   value.Value
}

// Open drains and sorts the input.
func (s *Sort) Open() error {
	if s.BIn != nil {
		rows, err := drainSortedBatches(s.Ctx, s.BIn, s.Var, s.Keys)
		if err != nil {
			return err
		}
		s.rows = rows
		s.i = 0
		return nil
	}
	if err := s.In.Open(); err != nil {
		return err
	}
	defer s.In.Close()
	s.rows = s.rows[:0]
	for {
		v, ok, err := s.In.Next()
		if err != nil {
			return err
		}
		if !ok {
			break
		}
		if err := sortBuildCheck(s.Ctx); err != nil {
			return err
		}
		k, err := evalKey(s.Ctx, s.Keys, s.Var, v)
		if err != nil {
			return err
		}
		s.rows = append(s.rows, sortedRow{key: k, v: v})
	}
	sortRowsStable(s.rows)
	s.i = 0
	return nil
}

// Next returns the next element in key order.
func (s *Sort) Next() (value.Value, bool, error) {
	if s.i >= len(s.rows) {
		return value.Value{}, false, nil
	}
	v := s.rows[s.i].v
	s.i++
	return v, true, nil
}

// Close releases the sorted rows.
func (s *Sort) Close() error { s.rows = nil; return nil }

// sortBuildCheck is the per-row governance + fault-injection + budget gate
// of every sort-run build loop (Sort and the merge joins' sorted drains).
// Sort rows carry no pre-encoded key, so the build budget charges the flat
// per-row overhead only.
func sortBuildCheck(c *Ctx) error {
	if err := c.check(); err != nil {
		return err
	}
	if err := faultinject.Hit(faultinject.PointSortBuild); err != nil {
		return err
	}
	return c.addBuild(0)
}

// sortBuildCheckBatch is sortBuildCheck under the batched contract: one
// governor poll and one fault point per batch, the flat per-row build
// overhead charged for all n rows in one budget call.
func sortBuildCheckBatch(c *Ctx, n int) error {
	if err := c.checkBatch(); err != nil {
		return err
	}
	if err := faultinject.Hit(faultinject.PointSortBuild); err != nil {
		return err
	}
	if c.Gov == nil {
		return nil
	}
	return c.Gov.AddBuildBytes(int64(n) * buildRowOverhead)
}

// sortRowsStable orders a sorted-run build by the canonical key order, ties
// broken by the full element. Row and batch builds share this comparator, so
// their runs are byte-identical.
func sortRowsStable(rows []sortedRow) {
	sort.SliceStable(rows, func(i, j int) bool {
		if c := value.Compare(rows[i].key, rows[j].key); c != 0 {
			return c < 0
		}
		return value.Less(rows[i].v, rows[j].v)
	})
}

// drainSortedBatches drains a batch input into one sorted run: the
// batch-native counterpart of the merge joins' drainSorted and Sort's row
// build. Retaining a row out of a batch is a struct copy (value.Value is
// immutable; only the batch's backing slice is reused), so the per-row work
// left is key evaluation.
func drainSortedBatches(c *Ctx, in BatchIterator, varName string, keys []tmql.Expr) ([]sortedRow, error) {
	if err := in.Open(); err != nil {
		return nil, err
	}
	defer in.Close()
	var out []sortedRow
	for {
		bt, ok, err := in.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			break
		}
		if err := sortBuildCheckBatch(c, len(bt.Rows)); err != nil {
			return nil, err
		}
		for _, v := range bt.Rows {
			k, err := evalKey(c, keys, varName, v)
			if err != nil {
				return nil, err
			}
			out = append(out, sortedRow{key: k, v: v})
		}
	}
	sortRowsStable(out)
	return out, nil
}

// evalKey evaluates the key expressions for element v bound to varName and
// packs them into one list value (lists compare lexicographically, which is
// exactly the composite-key order the merge joins need).
func evalKey(c *Ctx, keys []tmql.Expr, varName string, v value.Value) (value.Value, error) {
	env := env1(varName, v)
	ks := make([]value.Value, len(keys))
	for i, k := range keys {
		kv, err := c.evalIn(k, env)
		if err != nil {
			return value.Value{}, err
		}
		ks[i] = kv
	}
	return value.ListOf(ks...), nil
}
