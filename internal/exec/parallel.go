package exec

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"tmdb/internal/algebra"
	"tmdb/internal/eval"
	"tmdb/internal/faultinject"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// Parallel partitioned execution of the hash join family: the build (right)
// and probe (left) inputs are partitioned by key hash across P partitions,
// and P workers each build and probe one partition independently — the
// exchange-style plan shape. Results are correct because rows that can ever
// match share identical key bytes and therefore land in the same partition;
// results are deterministic because every query result passes through the
// set canonicalization in exec.Collect, which erases arrival order, so the
// final value is bit-identical to serial execution at any worker count.
//
// Each worker runs over a forked Ctx with its own evaluator, so the
// EvalSteps counter is sharded per worker — no races, no false sharing —
// and folded back into the parent at the end of Open. Key encodings are
// computed once during partitioning and stored as offsets into per-fragment
// byte arenas; build and probe reuse them, keeping the per-row key cost to
// a single evaluation and zero string allocations on the probe side.

// minParallelRows is the input size below which the partitioned operators
// run their phases inline on the calling goroutine: the partitioned
// algorithm (and thus the result) is unchanged, only the goroutine fan-out
// is skipped where it could not pay for itself.
const minParallelRows = 256

// fragment is one producer's contribution to one partition: rows plus their
// encoded keys packed into an arena (offs[i]..offs[i+1] delimits row i's key).
type fragment struct {
	rows []value.Value
	offs []uint32
	keys []byte
}

func (f *fragment) add(v value.Value, key []byte) {
	if len(f.offs) == 0 {
		f.offs = append(f.offs, 0)
	}
	f.rows = append(f.rows, v)
	f.keys = append(f.keys, key...)
	f.offs = append(f.offs, uint32(len(f.keys)))
}

func (f *fragment) key(i int) []byte { return f.keys[f.offs[i]:f.offs[i+1]] }

// partitionSet is the result of the exchange: parts[p] holds partition p's
// fragments in producer order, making per-partition row order deterministic
// for a fixed producer count.
type partitionSet struct {
	parts [][]fragment
	total int
}

// rowCount returns the number of rows routed to partition p.
func (ps *partitionSet) rowCount(p int) int {
	n := 0
	for i := range ps.parts[p] {
		n += len(ps.parts[p][i].rows)
	}
	return n
}

// each visits partition p's rows in fragment order.
func (ps *partitionSet) each(p int, fn func(v value.Value, key []byte) error) error {
	for i := range ps.parts[p] {
		f := &ps.parts[p][i]
		for r := range f.rows {
			if err := fn(f.rows[r], f.key(r)); err != nil {
				return err
			}
		}
	}
	return nil
}

// fork returns a context over the same database with a fresh evaluator, so
// parallel workers never share a step counter; callers fold the forked
// counters back into the parent once the workers are done. The Governor is
// shared, not forked: cancellation and budget accounting are query-global,
// and its methods are atomic precisely so workers need no coordination.
func (c *Ctx) fork() *Ctx {
	f := &Ctx{DB: c.DB, Ev: eval.New(c.DB), Gov: c.Gov}
	if c.Gov != nil {
		f.Ev.Check = c.Gov.Err
	}
	return f
}

// runWorkers invokes fn(0..n-1), on goroutines when n > 1, inline otherwise.
// It always waits for every worker before returning — cancellation makes
// workers return early, never leak — and a worker panic is re-raised on the
// calling goroutine after the others drain, so serial and parallel plans
// surface panics identically (and the engine's recovery isolates both).
func runWorkers(n int, fn func(w int)) {
	if n <= 1 {
		if n == 1 {
			fn(0)
		}
		return
	}
	panics := make([]any, n)
	var wg sync.WaitGroup
	wg.Add(n)
	for w := 0; w < n; w++ {
		go func(w int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					panics[w] = p
				}
			}()
			fn(w)
		}(w)
	}
	wg.Wait()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
}

// firstError returns the lowest-indexed non-nil error, keeping error
// reporting deterministic under concurrency.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// seqRows is one feeder send: a batch's rows copied into an owned slice,
// tagged with the batch's input sequence number so partition contents can be
// reassembled in input order regardless of which producer handled which
// batch.
type seqRows struct {
	seq  int
	rows []value.Value
}

// seqFragment is one producer's routing of one batch into one partition.
type seqFragment struct {
	fragment
	seq int
}

// routeBatch routes one batch's rows into per-partition fragments, encoding
// each row's key on the way (the per-row hot cost the producers parallelize),
// and appends the non-empty fragments to acc. scratch is the reusable key
// buffer, returned extended for reuse.
func routeBatch(enc *keyEncoder, sb seqRows, nparts int, acc [][]seqFragment, scratch []byte) ([]byte, error) {
	frs := make([]fragment, nparts)
	for _, r := range sb.rows {
		buf, err := enc.appendKey(scratch[:0], r)
		if err != nil {
			return scratch, err
		}
		scratch = buf[:0]
		frs[hashKeyBytes(buf)%uint64(nparts)].add(r, buf)
	}
	for p := range frs {
		if len(frs[p].rows) > 0 {
			acc[p] = append(acc[p], seqFragment{fragment: frs[p], seq: sb.seq})
		}
	}
	return scratch, nil
}

// assemblePartitions merges per-producer fragment accumulators into a
// partitionSet, ordering each partition's fragments by input sequence so the
// partition contents are deterministic — input order filtered by partition —
// independent of producer scheduling.
func assemblePartitions(accs [][][]seqFragment, nparts, total int) *partitionSet {
	ps := &partitionSet{parts: make([][]fragment, nparts), total: total}
	for p := 0; p < nparts; p++ {
		var sfs []seqFragment
		for _, acc := range accs {
			sfs = append(sfs, acc[p]...)
		}
		sort.Slice(sfs, func(i, j int) bool { return sfs[i].seq < sfs[j].seq })
		for _, sf := range sfs {
			ps.parts[p] = append(ps.parts[p], sf.fragment)
		}
	}
	return ps
}

// partitionInput drains src and routes every row to one of nparts partitions
// by the hash of its encoded key — the exchange. Rows move from the feeder
// (the calling goroutine, which owns the source iterator) to up to nparts
// producer goroutines in batches, one channel send per batch; producers
// encode keys on forked contexts and route rows to per-partition fragments.
// Inputs that end below minParallelRows are routed inline with no goroutine
// fan-out. The source is always closed before returning. Key encoding takes
// the step-counting path so serial and parallel plans over the same rows
// report identical EvalSteps. Returns the partitions and the evaluation
// steps performed by the producers.
func partitionInput(c *Ctx, src BatchIterator, keys []tmql.Expr, varName string, nparts int) (*partitionSet, int64, error) {
	if err := src.Open(); err != nil {
		src.Close()
		return nil, 0, err
	}
	// feed pulls the next batch, polls the governor, and hits the exchange
	// fault point — once per batch.
	feed := func() (seqRows, bool, error) {
		bt, ok, err := src.NextBatch()
		if err != nil || !ok {
			return seqRows{}, false, err
		}
		if err := c.checkBatch(); err != nil {
			return seqRows{}, false, err
		}
		if err := faultinject.Hit(faultinject.PointPartitionSend); err != nil {
			return seqRows{}, false, err
		}
		return seqRows{rows: append([]value.Value(nil), bt.Rows...)}, true, nil
	}
	// Buffer until the input proves large enough to pay for goroutines.
	var pending []seqRows
	var feedErr error
	total, seq, more := 0, 0, false
	for total < minParallelRows {
		sb, ok, err := feed()
		if err != nil {
			feedErr = err
			break
		}
		if !ok {
			break
		}
		sb.seq = seq
		seq++
		total += len(sb.rows)
		pending = append(pending, sb)
		more = total >= minParallelRows
	}
	if feedErr != nil || !more {
		// Small input (or an early feed error): route what arrived inline on
		// a single forked context — partitioning, and thus the result, is
		// unchanged; only the fan-out is skipped.
		src.Close()
		ctx := c.fork()
		enc := newKeyEncoder(ctx, keys, varName, true)
		acc := make([][]seqFragment, nparts)
		var scratch []byte
		var err error
		for _, sb := range pending {
			if scratch, err = routeBatch(enc, sb, nparts, acc, scratch); err != nil {
				break
			}
		}
		if feedErr == nil {
			feedErr = err
		}
		if feedErr != nil {
			return nil, ctx.Ev.Steps, feedErr
		}
		return assemblePartitions([][][]seqFragment{acc}, nparts, total), ctx.Ev.Steps, nil
	}
	// Large input: stream the rest through a channel to nparts producers.
	ch := make(chan seqRows, nparts)
	var stop atomic.Bool
	producers := nparts
	accs := make([][][]seqFragment, producers)
	errs := make([]error, producers)
	steps := make([]int64, producers)
	panics := make([]any, producers)
	var wg sync.WaitGroup
	wg.Add(producers)
	for w := 0; w < producers; w++ {
		go func(w int) {
			defer wg.Done()
			ctx := c.fork()
			enc := newKeyEncoder(ctx, keys, varName, true)
			acc := make([][]seqFragment, nparts)
			var scratch []byte
			for sb := range ch {
				// The range always drains the channel — even after an error
				// or panic — so the feeder can never block on a send; the
				// per-batch recover keeps a panicking producer draining and
				// re-raises on the caller after Wait, like runWorkers.
				if stop.Load() {
					continue
				}
				func() {
					defer func() {
						if p := recover(); p != nil {
							panics[w] = p
							stop.Store(true)
						}
					}()
					var err error
					if scratch, err = routeBatch(enc, sb, nparts, acc, scratch); err != nil {
						errs[w] = err
						stop.Store(true)
					}
				}()
			}
			accs[w] = acc
			steps[w] = ctx.Ev.Steps
		}(w)
	}
	for _, sb := range pending {
		ch <- sb
	}
	for !stop.Load() {
		sb, ok, err := feed()
		if err != nil {
			feedErr = err
			break
		}
		if !ok {
			break
		}
		sb.seq = seq
		seq++
		total += len(sb.rows)
		ch <- sb
	}
	close(ch)
	wg.Wait()
	src.Close()
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	var totalSteps int64
	for _, s := range steps {
		totalSteps += s
	}
	if err := firstError(append([]error{feedErr}, errs...)); err != nil {
		return nil, totalSteps, err
	}
	return assemblePartitions(accs, nparts, total), totalSteps, nil
}


// parOutput is the shared output stage of the partitioned operators: Open
// materializes per-partition result slices, Next (or NextBatch) streams them
// in partition order, Close releases them (both inputs were drained — and
// closed — in Open, so there is nothing else to tear down).
type parOutput struct {
	out   [][]value.Value
	pi    int
	oi    int
	bsize int
	b     Batch
}

func (o *parOutput) reset(nparts, bsize int) {
	if nparts < 0 {
		nparts = 0 // invalid degrees are rejected by runPartitioned right after
	}
	o.out = make([][]value.Value, nparts)
	o.pi, o.oi = 0, 0
	o.bsize = NormalizeBatchSize(bsize)
}

// Next streams the materialized output partition by partition.
func (o *parOutput) Next() (value.Value, bool, error) {
	for o.pi < len(o.out) {
		if o.oi < len(o.out[o.pi]) {
			v := o.out[o.pi][o.oi]
			o.oi++
			return v, true, nil
		}
		o.pi++
		o.oi = 0
	}
	return value.Value{}, false, nil
}

// NextBatch streams the materialized output as zero-copy slices of the
// per-partition result vectors, making the partitioned operators batch
// sources for batched plans.
func (o *parOutput) NextBatch() (*Batch, bool, error) {
	for o.pi < len(o.out) {
		part := o.out[o.pi]
		if o.oi < len(part) {
			end := o.oi + o.bsize
			if end > len(part) {
				end = len(part)
			}
			o.b.reset()
			o.b.Rows = part[o.oi:end]
			o.oi = end
			return &o.b, true, nil
		}
		o.pi++
		o.oi = 0
	}
	return nil, false, nil
}

// Close releases the output.
func (o *parOutput) Close() error {
	o.out = nil
	return nil
}

// batchInput returns the batch form of a partitioned operator's input: the
// batch iterator itself when the planner compiled the child batched, the row
// iterator adapted otherwise.
func batchInput(it Iterator, bit BatchIterator, size int) BatchIterator {
	if bit != nil {
		return bit
	}
	return &RowsToBatch{It: it, Size: size}
}

// runPartitioned is the shared orchestration of the partitioned operators:
// validate the degree, partition both inputs, run perPartition(ctx, rp, lp,
// part) for every partition across worker goroutines (inline below the
// threshold), and fold every forked evaluator's steps back into c. The
// perPartition callback runs the operator-specific build/probe for one
// partition on a worker-owned context.
func runPartitioned(c *Ctx, degree int, l, r BatchIterator,
	lkeys, rkeys []tmql.Expr, lvar, rvar string,
	perPartition func(ctx *Ctx, rp, lp *partitionSet, part int) error) error {
	if len(lkeys) == 0 || len(lkeys) != len(rkeys) {
		return fmt.Errorf("exec: partitioned join needs matching non-empty key lists")
	}
	if degree < 2 {
		return fmt.Errorf("exec: partitioned join needs Degree >= 2, got %d", degree)
	}
	rp, rsteps, err := partitionInput(c, r, rkeys, rvar, degree)
	c.Ev.Steps += rsteps
	if err != nil {
		return err
	}
	lp, lsteps, err := partitionInput(c, l, lkeys, lvar, degree)
	c.Ev.Steps += lsteps
	if err != nil {
		return err
	}
	errs := make([]error, degree)
	steps := make([]int64, degree)
	workers := degree
	if rp.total+lp.total < minParallelRows {
		workers = 1
	}
	runWorkers(workers, func(w int) {
		ctx := c.fork()
		for part := w; part < degree; part += workers {
			if errs[w] != nil {
				break
			}
			errs[w] = perPartition(ctx, rp, lp, part)
		}
		steps[w] = ctx.Ev.Steps
	})
	for _, s := range steps {
		c.Ev.Steps += s
	}
	return firstError(errs)
}

// buildPartition builds a hash table over one partition's rows, reusing the
// keys encoded during partitioning. Build rows are accounted against the
// build-byte budget and pass the hash.build fault point, like the serial
// build.
func buildPartition(c *Ctx, ps *partitionSet, p int) (*hashTable, error) {
	table := newHashTable(ps.rowCount(p))
	err := ps.each(p, func(v value.Value, key []byte) error {
		if err := c.check(); err != nil {
			return err
		}
		if err := faultinject.Hit(faultinject.PointHashBuild); err != nil {
			return err
		}
		if err := c.addBuild(len(key)); err != nil {
			return err
		}
		table.add(key, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// ParHashJoin is the parallel partitioned form of HashJoin: inner, semi,
// anti, and left-outer flat joins on equi-keys, partitioned by key hash
// across Degree workers. Open materializes the full output; Next streams it.
type ParHashJoin struct {
	Ctx          *Ctx
	Kind         algebra.JoinKind
	L, R         Iterator
	LVar, RVar   string
	LKeys, RKeys []tmql.Expr
	Residual     tmql.Expr
	RElem        *types.Type
	// Degree is the number of partitions (and maximum worker goroutines).
	Degree int
	// BL/BR, when set, feed the exchange directly with batches (batched
	// plans); otherwise L/R are adapted. BatchSize sizes the exchange feed
	// and the output batches (0 = default).
	BL, BR    BatchIterator
	BatchSize int

	parOutput
	pad value.Value
}

// Open partitions both inputs, joins each partition on its own worker, and
// folds the workers' evaluation steps into the parent context.
func (j *ParHashJoin) Open() error {
	if j.Kind == algebra.JoinLeftOuter {
		if j.RElem == nil {
			return fmt.Errorf("exec: outer ParHashJoin needs RElem for NULL padding")
		}
		j.pad = nullTuple(j.RElem)
	}
	j.reset(j.Degree, j.BatchSize)
	return runPartitioned(j.Ctx, j.Degree,
		batchInput(j.L, j.BL, j.BatchSize), batchInput(j.R, j.BR, j.BatchSize),
		j.LKeys, j.RKeys, j.LVar, j.RVar, j.joinPartition)
}

// joinPartition runs the serial hash-join algorithm over one partition,
// appending outputs to j.out[part].
func (j *ParHashJoin) joinPartition(ctx *Ctx, rp, lp *partitionSet, part int) error {
	table, err := buildPartition(ctx, rp, part)
	if err != nil {
		return err
	}
	var out []value.Value
	err = lp.each(part, func(l value.Value, key []byte) error {
		if err := ctx.check(); err != nil {
			return err
		}
		if err := faultinject.Hit(faultinject.PointHashProbe); err != nil {
			return err
		}
		bucket := table.bucket(key)
		switch j.Kind {
		case algebra.JoinSemi, algebra.JoinAnti:
			m, err := probeAnyBucket(ctx, l, bucket, j.LVar, j.RVar, j.Residual)
			if err != nil {
				return err
			}
			if m == (j.Kind == algebra.JoinSemi) {
				out = append(out, l)
			}
			return nil
		default:
			matched := false
			for _, r := range bucket {
				if j.Residual != nil {
					ok, err := ctx.evalPred(j.Residual, env2(j.LVar, l, j.RVar, r))
					if err != nil {
						return err
					}
					if !ok {
						continue
					}
				}
				matched = true
				out = append(out, l.Concat(r))
			}
			if j.Kind == algebra.JoinLeftOuter && !matched {
				out = append(out, l.Concat(j.pad))
			}
			return nil
		}
	})
	j.out[part] = out
	return err
}

// probeAnyBucket reports whether any bucket candidate passes the residual;
// with no residual, bucket membership already answers it.
func probeAnyBucket(c *Ctx, l value.Value, bucket []value.Value,
	lvar, rvar string, residual tmql.Expr) (bool, error) {
	if residual == nil {
		return len(bucket) > 0, nil
	}
	for _, r := range bucket {
		ok, err := c.evalPred(residual, env2(lvar, l, rvar, r))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// ParHashNestJoin is the parallel partitioned form of HashNestJoin. The §6
// restrictions carry over unchanged: the right operand is the build side and
// each left element's entire group is known before its output tuple is
// emitted — a left element's matches all share its key and therefore its
// partition, so the group is complete within one worker.
type ParHashNestJoin struct {
	Ctx          *Ctx
	L, R         Iterator
	LVar, RVar   string
	LKeys, RKeys []tmql.Expr
	Residual     tmql.Expr
	Fn           tmql.Expr
	Label        string
	Degree       int
	// BL/BR/BatchSize mirror ParHashJoin's batched inputs.
	BL, BR    BatchIterator
	BatchSize int

	parOutput
}

// Open partitions both inputs and builds each partition's groups on its own
// worker.
func (j *ParHashNestJoin) Open() error {
	j.reset(j.Degree, j.BatchSize)
	return runPartitioned(j.Ctx, j.Degree,
		batchInput(j.L, j.BL, j.BatchSize), batchInput(j.R, j.BR, j.BatchSize),
		j.LKeys, j.RKeys, j.LVar, j.RVar,
		func(ctx *Ctx, rp, lp *partitionSet, part int) error {
			table, err := buildPartition(ctx, rp, part)
			if err != nil {
				return err
			}
			var out []value.Value
			err = lp.each(part, func(l value.Value, key []byte) error {
				if err := ctx.check(); err != nil {
					return err
				}
				if err := faultinject.Hit(faultinject.PointHashProbe); err != nil {
					return err
				}
				group, err := nestGroup(ctx, l, table.bucket(key), j.LVar, j.RVar, j.Residual, j.Fn)
				if err != nil {
					return err
				}
				out = append(out, l.Extend(j.Label, group))
				return nil
			})
			j.out[part] = out
			return err
		})
}
