package exec

import (
	"fmt"
	"sort"

	"tmdb/internal/algebra"
	"tmdb/internal/eval"
	"tmdb/internal/faultinject"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// Parallel partitioned execution of the hash join family on the morsel
// scheduler (see sched.go): the build (right) and probe (left) inputs are
// partitioned by key hash across Degree partitions through the scheduler's
// exchange pump, then each partition's hash build runs as one morsel and
// each probe-side fragment — at most one input batch of rows by construction
// — runs as its own morsel with a statically assigned output slot. Morsels
// start on their partition's home worker and can be stolen by idle workers,
// so a skewed partition no longer serializes on one goroutine. Results are
// correct because rows that can ever match share identical key bytes and
// therefore land in the same partition; results are deterministic because
// output slots are concatenated in static (partition, fragment) order and
// every query result passes through the set canonicalization in
// exec.Collect, which erases arrival order — so the final value is
// bit-identical to serial execution at any degree and any steal schedule.
//
// Each worker runs over a forked Ctx with its own evaluator, so the
// EvalSteps counter is sharded per worker — no races, no false sharing —
// and folded back into the parent by the scheduler. Key encodings are
// computed once during partitioning and stored as offsets into per-fragment
// byte arenas; build and probe reuse them, keeping the per-row key cost to
// a single evaluation and zero string allocations on the probe side.

// minParallelRows is the input size below which the partitioned operators
// run their morsels inline on the calling goroutine: the partitioned
// algorithm (and thus the result) is unchanged, only the goroutine fan-out
// is skipped where it could not pay for itself.
const minParallelRows = 256

// fragment is one producer's contribution to one partition: rows plus their
// encoded keys packed into an arena (offs[i]..offs[i+1] delimits row i's key).
type fragment struct {
	rows []value.Value
	offs []uint32
	keys []byte
}

func (f *fragment) add(v value.Value, key []byte) {
	if len(f.offs) == 0 {
		f.offs = append(f.offs, 0)
	}
	f.rows = append(f.rows, v)
	f.keys = append(f.keys, key...)
	f.offs = append(f.offs, uint32(len(f.keys)))
}

func (f *fragment) key(i int) []byte { return f.keys[f.offs[i]:f.offs[i+1]] }

// partitionSet is the result of the exchange: parts[p] holds partition p's
// fragments in input-sequence order, making per-partition row order
// deterministic regardless of which pump worker routed which batch.
type partitionSet struct {
	parts [][]fragment
	total int
}

// rowCount returns the number of rows routed to partition p.
func (ps *partitionSet) rowCount(p int) int {
	n := 0
	for i := range ps.parts[p] {
		n += len(ps.parts[p][i].rows)
	}
	return n
}

// each visits partition p's rows in fragment order.
func (ps *partitionSet) each(p int, fn func(v value.Value, key []byte) error) error {
	for i := range ps.parts[p] {
		f := &ps.parts[p][i]
		for r := range f.rows {
			if err := fn(f.rows[r], f.key(r)); err != nil {
				return err
			}
		}
	}
	return nil
}

// fork returns a context over the same database with a fresh evaluator, so
// parallel workers never share a step counter; the scheduler folds the
// forked counters back into the parent once the workers join. The Governor
// is shared, not forked: cancellation and budget accounting are
// query-global, and its methods are atomic precisely so workers need no
// coordination. The Scheduler rides along for the same reason — its
// counters are query-global atomics.
func (c *Ctx) fork() *Ctx {
	f := &Ctx{DB: c.DB, Ev: eval.New(c.DB), Gov: c.Gov, Sched: c.Sched}
	if c.Gov != nil {
		f.Ev.Check = c.Gov.Err
	}
	return f
}

// firstError returns the lowest-indexed non-nil error, keeping error
// reporting deterministic under concurrency.
func firstError(errs []error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// seqRows is one feeder send: a batch's rows copied into an owned slice,
// tagged with the batch's input sequence number so partition contents can be
// reassembled in input order regardless of which pump worker handled which
// batch.
type seqRows struct {
	seq  int
	rows []value.Value
}

// seqFragment is one producer's routing of one batch into one partition.
type seqFragment struct {
	fragment
	seq int
}

// routeBatch routes one batch's rows into per-partition fragments, encoding
// each row's key on the way (the per-row hot cost the pump parallelizes),
// and appends the non-empty fragments to acc. scratch is the reusable key
// buffer, returned extended for reuse.
func routeBatch(enc *keyEncoder, sb seqRows, nparts int, acc [][]seqFragment, scratch []byte) ([]byte, error) {
	frs := make([]fragment, nparts)
	for _, r := range sb.rows {
		buf, err := enc.appendKey(scratch[:0], r)
		if err != nil {
			return scratch, err
		}
		scratch = buf[:0]
		frs[hashKeyBytes(buf)%uint64(nparts)].add(r, buf)
	}
	for p := range frs {
		if len(frs[p].rows) > 0 {
			acc[p] = append(acc[p], seqFragment{fragment: frs[p], seq: sb.seq})
		}
	}
	return scratch, nil
}

// assemblePartitions merges per-producer fragment accumulators into a
// partitionSet, ordering each partition's fragments by input sequence so the
// partition contents are deterministic — input order filtered by partition —
// independent of worker scheduling.
func assemblePartitions(accs [][][]seqFragment, nparts, total int) *partitionSet {
	ps := &partitionSet{parts: make([][]fragment, nparts), total: total}
	for p := 0; p < nparts; p++ {
		var sfs []seqFragment
		for _, acc := range accs {
			sfs = append(sfs, acc[p]...)
		}
		sort.Slice(sfs, func(i, j int) bool { return sfs[i].seq < sfs[j].seq })
		for _, sf := range sfs {
			ps.parts[p] = append(ps.parts[p], sf.fragment)
		}
	}
	return ps
}

// partitionInput drains src and routes every row to one of nparts partitions
// by the hash of its encoded key — the exchange. Rows move from the feeder
// (the calling goroutine, which owns the source iterator) to the scheduler's
// pump workers one batch-sized morsel per send; workers encode keys on
// forked contexts and route rows to per-partition fragments. Inputs that end
// below minParallelRows are routed inline with no goroutine fan-out. The
// source is always closed before returning. Key encoding takes the
// step-counting path so serial and parallel plans over the same rows report
// identical EvalSteps (folded into c by the scheduler).
func partitionInput(c *Ctx, s *Scheduler, src BatchIterator, keys []tmql.Expr, varName string, nparts int) (*partitionSet, error) {
	if err := src.Open(); err != nil {
		src.Close()
		return nil, err
	}
	// feed pulls the next batch, polls the governor, and hits the exchange
	// fault point — once per batch.
	total, seq := 0, 0
	feed := func() (seqRows, bool, error) {
		bt, ok, err := src.NextBatch()
		if err != nil || !ok {
			return seqRows{}, false, err
		}
		if err := c.checkBatch(); err != nil {
			return seqRows{}, false, err
		}
		if err := faultinject.Hit(faultinject.PointPartitionSend); err != nil {
			return seqRows{}, false, err
		}
		sb := seqRows{seq: seq, rows: append([]value.Value(nil), bt.Rows...)}
		seq++
		total += len(sb.rows)
		return sb, true, nil
	}
	// Buffer until the input proves large enough to pay for goroutines.
	var pending []seqRows
	var feedErr error
	for total < minParallelRows {
		sb, ok, err := feed()
		if err != nil {
			feedErr = err
			break
		}
		if !ok {
			break
		}
		pending = append(pending, sb)
	}
	if feedErr != nil || total < minParallelRows {
		// Small input (or an early feed error): route what arrived inline on
		// a single forked context — partitioning, and thus the result, is
		// unchanged; only the fan-out is skipped.
		src.Close()
		ctx := c.fork()
		enc := newKeyEncoder(ctx, keys, varName, true)
		acc := make([][]seqFragment, nparts)
		var scratch []byte
		var err error
		for _, sb := range pending {
			if scratch, err = routeBatch(enc, sb, nparts, acc, scratch); err != nil {
				break
			}
		}
		c.Ev.Steps += ctx.Ev.Steps
		if feedErr == nil {
			feedErr = err
		}
		if feedErr != nil {
			return nil, feedErr
		}
		return assemblePartitions([][][]seqFragment{acc}, nparts, total), nil
	}
	// Large input: replay the buffered batches and stream the rest through
	// the scheduler's pump. Per-worker accumulators and key encoders are
	// created lazily — each index is only ever touched by its own worker.
	pi := 0
	feedAll := func() (seqRows, bool, error) {
		if pi < len(pending) {
			sb := pending[pi]
			pi++
			return sb, true, nil
		}
		return feed()
	}
	accs := make([][][]seqFragment, s.Workers())
	encs := make([]*keyEncoder, s.Workers())
	scratches := make([][]byte, s.Workers())
	err := s.pump(c, feedAll, func(w int, ctx *Ctx, sb seqRows) error {
		if accs[w] == nil {
			accs[w] = make([][]seqFragment, nparts)
			encs[w] = newKeyEncoder(ctx, keys, varName, true)
		}
		var rerr error
		scratches[w], rerr = routeBatch(encs[w], sb, nparts, accs[w], scratches[w])
		return rerr
	})
	src.Close()
	if err != nil {
		return nil, err
	}
	filled := accs[:0]
	for _, acc := range accs {
		if acc != nil {
			filled = append(filled, acc)
		}
	}
	return assemblePartitions(filled, nparts, total), nil
}

// parOutput is the shared output stage of the partitioned operators: Open
// materializes per-partition result slices, Next (or NextBatch) streams them
// in partition order, Close releases them (both inputs were drained — and
// closed — in Open, so there is nothing else to tear down).
type parOutput struct {
	out   [][]value.Value
	pi    int
	oi    int
	bsize int
	b     Batch
}

func (o *parOutput) reset(nparts, bsize int) {
	if nparts < 0 {
		nparts = 0 // invalid degrees are rejected by runPartitioned right after
	}
	o.out = make([][]value.Value, nparts)
	o.pi, o.oi = 0, 0
	o.bsize = NormalizeBatchSize(bsize)
}

// Next streams the materialized output partition by partition.
func (o *parOutput) Next() (value.Value, bool, error) {
	for o.pi < len(o.out) {
		if o.oi < len(o.out[o.pi]) {
			v := o.out[o.pi][o.oi]
			o.oi++
			return v, true, nil
		}
		o.pi++
		o.oi = 0
	}
	return value.Value{}, false, nil
}

// NextBatch streams the materialized output as zero-copy slices of the
// per-partition result vectors, making the partitioned operators batch
// sources for batched plans.
func (o *parOutput) NextBatch() (*Batch, bool, error) {
	for o.pi < len(o.out) {
		part := o.out[o.pi]
		if o.oi < len(part) {
			end := o.oi + o.bsize
			if end > len(part) {
				end = len(part)
			}
			o.b.reset()
			o.b.Rows = part[o.oi:end]
			o.oi = end
			return &o.b, true, nil
		}
		o.pi++
		o.oi = 0
	}
	return nil, false, nil
}

// Close releases the output.
func (o *parOutput) Close() error {
	o.out = nil
	return nil
}

// batchInput returns the batch form of a partitioned operator's input: the
// batch iterator itself when the planner compiled the child batched, the row
// iterator adapted otherwise.
func batchInput(it Iterator, bit BatchIterator, size int) BatchIterator {
	if bit != nil {
		return bit
	}
	return &RowsToBatch{It: it, Size: size}
}

// runPartitioned is the shared orchestration of the partitioned operators on
// the morsel scheduler: validate the degree, exchange-partition both inputs
// through the pump, then run two scheduled phases with a barrier between —
// build (one morsel per partition, via buildPart) and probe (one morsel per
// (partition, fragment), via probeFragment) — and concatenate the probe
// slots into out[part] in static order. Inputs below minParallelRows run
// the same morsels inline on one worker.
func runPartitioned(c *Ctx, degree int, l, r BatchIterator,
	lkeys, rkeys []tmql.Expr, lvar, rvar string,
	probeFragment func(ctx *Ctx, table *hashTable, f *fragment) ([]value.Value, error),
	out [][]value.Value) error {
	if len(lkeys) == 0 || len(lkeys) != len(rkeys) {
		return fmt.Errorf("exec: partitioned join needs matching non-empty key lists")
	}
	if degree < 2 {
		return fmt.Errorf("exec: partitioned join needs Degree >= 2, got %d", degree)
	}
	s := c.scheduler(degree, 0)
	rp, err := partitionInput(c, s, r, rkeys, rvar, degree)
	if err != nil {
		return err
	}
	lp, err := partitionInput(c, s, l, lkeys, lvar, degree)
	if err != nil {
		return err
	}
	maxWorkers := s.Workers()
	if rp.total+lp.total < minParallelRows {
		maxWorkers = 1
	}

	// Build phase: one morsel per partition, homed on partition index.
	tables := make([]*hashTable, degree)
	btasks := make([]morselTask, degree)
	for p := 0; p < degree; p++ {
		p := p
		btasks[p] = morselTask{home: p, fn: func(ctx *Ctx) error {
			t, err := buildPartition(ctx, rp, p)
			if err != nil {
				return err
			}
			tables[p] = t
			return nil
		}}
	}
	if err := s.run(c, btasks, maxWorkers); err != nil {
		return err
	}

	// Probe phase: one morsel per (partition, fragment). A fragment holds at
	// most one input batch of rows, so this is the morsel granularity that
	// lets idle workers steal into a skewed partition; each morsel writes a
	// statically assigned slot, so stealing can never reorder output.
	slots := make([][][]value.Value, degree)
	var ptasks []morselTask
	for p := 0; p < degree; p++ {
		slots[p] = make([][]value.Value, len(lp.parts[p]))
		for fi := range lp.parts[p] {
			p, fi := p, fi
			ptasks = append(ptasks, morselTask{home: p, fn: func(ctx *Ctx) error {
				res, err := probeFragment(ctx, tables[p], &lp.parts[p][fi])
				if err != nil {
					return err
				}
				slots[p][fi] = res
				return nil
			}})
		}
	}
	if err := s.run(c, ptasks, maxWorkers); err != nil {
		return err
	}
	for p := 0; p < degree; p++ {
		n := 0
		for _, fo := range slots[p] {
			n += len(fo)
		}
		if n == 0 {
			continue
		}
		merged := make([]value.Value, 0, n)
		for _, fo := range slots[p] {
			merged = append(merged, fo...)
		}
		out[p] = merged
	}
	return nil
}

// buildPartition builds a hash table over one partition's rows, reusing the
// keys encoded during partitioning. Build rows are accounted against the
// build-byte budget and pass the hash.build fault point, like the serial
// build.
func buildPartition(c *Ctx, ps *partitionSet, p int) (*hashTable, error) {
	table := newHashTable(ps.rowCount(p))
	err := ps.each(p, func(v value.Value, key []byte) error {
		if err := c.check(); err != nil {
			return err
		}
		if err := faultinject.Hit(faultinject.PointHashBuild); err != nil {
			return err
		}
		if err := c.addBuild(len(key)); err != nil {
			return err
		}
		table.add(key, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return table, nil
}

// ParHashJoin is the parallel partitioned form of HashJoin: inner, semi,
// anti, and left-outer flat joins on equi-keys, partitioned by key hash
// across Degree partitions and scheduled as morsels on the query's worker
// pool. Open materializes the full output; Next streams it.
type ParHashJoin struct {
	Ctx          *Ctx
	Kind         algebra.JoinKind
	L, R         Iterator
	LVar, RVar   string
	LKeys, RKeys []tmql.Expr
	Residual     tmql.Expr
	RElem        *types.Type
	// Degree is the number of hash partitions. The worker-pool size comes
	// from the query's Scheduler (Degree doubles as the pool hint when the
	// context carries none).
	Degree int
	// BL/BR, when set, feed the exchange directly with batches (batched
	// plans); otherwise L/R are adapted. BatchSize sizes the exchange feed
	// and the output batches (0 = default).
	BL, BR    BatchIterator
	BatchSize int

	parOutput
	pad value.Value
}

// Open partitions both inputs, schedules each partition's build and probe
// morsels on the worker pool, and folds the workers' evaluation steps into
// the parent context.
func (j *ParHashJoin) Open() error {
	if j.Kind == algebra.JoinLeftOuter {
		if j.RElem == nil {
			return fmt.Errorf("exec: outer ParHashJoin needs RElem for NULL padding")
		}
		j.pad = nullTuple(j.RElem)
	}
	j.reset(j.Degree, j.BatchSize)
	return runPartitioned(j.Ctx, j.Degree,
		batchInput(j.L, j.BL, j.BatchSize), batchInput(j.R, j.BR, j.BatchSize),
		j.LKeys, j.RKeys, j.LVar, j.RVar, j.probeFragment, j.out)
}

// probeFragment runs the serial hash-join probe over one fragment's rows
// against its partition's table, returning the fragment's output slot.
func (j *ParHashJoin) probeFragment(ctx *Ctx, table *hashTable, f *fragment) ([]value.Value, error) {
	var out []value.Value
	for i := range f.rows {
		l, key := f.rows[i], f.key(i)
		if err := ctx.check(); err != nil {
			return nil, err
		}
		if err := faultinject.Hit(faultinject.PointHashProbe); err != nil {
			return nil, err
		}
		bucket := table.bucket(key)
		switch j.Kind {
		case algebra.JoinSemi, algebra.JoinAnti:
			m, err := probeAnyBucket(ctx, l, bucket, j.LVar, j.RVar, j.Residual)
			if err != nil {
				return nil, err
			}
			if m == (j.Kind == algebra.JoinSemi) {
				out = append(out, l)
			}
		default:
			matched := false
			for _, r := range bucket {
				if j.Residual != nil {
					ok, err := ctx.evalPred(j.Residual, env2(j.LVar, l, j.RVar, r))
					if err != nil {
						return nil, err
					}
					if !ok {
						continue
					}
				}
				matched = true
				out = append(out, l.Concat(r))
			}
			if j.Kind == algebra.JoinLeftOuter && !matched {
				out = append(out, l.Concat(j.pad))
			}
		}
	}
	return out, nil
}

// probeAnyBucket reports whether any bucket candidate passes the residual;
// with no residual, bucket membership already answers it.
func probeAnyBucket(c *Ctx, l value.Value, bucket []value.Value,
	lvar, rvar string, residual tmql.Expr) (bool, error) {
	if residual == nil {
		return len(bucket) > 0, nil
	}
	for _, r := range bucket {
		ok, err := c.evalPred(residual, env2(lvar, l, rvar, r))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// ParHashNestJoin is the parallel partitioned form of HashNestJoin. The §6
// restrictions carry over unchanged: the right operand is the build side and
// each left element's entire group is known before its output tuple is
// emitted — a left element's matches all share its key and therefore its
// partition, so the group is complete within one probe morsel.
type ParHashNestJoin struct {
	Ctx          *Ctx
	L, R         Iterator
	LVar, RVar   string
	LKeys, RKeys []tmql.Expr
	Residual     tmql.Expr
	Fn           tmql.Expr
	Label        string
	Degree       int
	// BL/BR/BatchSize mirror ParHashJoin's batched inputs.
	BL, BR    BatchIterator
	BatchSize int

	parOutput
}

// Open partitions both inputs and schedules each partition's build and
// per-fragment group-probe morsels on the worker pool.
func (j *ParHashNestJoin) Open() error {
	j.reset(j.Degree, j.BatchSize)
	return runPartitioned(j.Ctx, j.Degree,
		batchInput(j.L, j.BL, j.BatchSize), batchInput(j.R, j.BR, j.BatchSize),
		j.LKeys, j.RKeys, j.LVar, j.RVar, j.probeFragment, j.out)
}

// probeFragment builds each left row's nested group from its partition's
// bucket, returning the fragment's output slot.
func (j *ParHashNestJoin) probeFragment(ctx *Ctx, table *hashTable, f *fragment) ([]value.Value, error) {
	var out []value.Value
	for i := range f.rows {
		l, key := f.rows[i], f.key(i)
		if err := ctx.check(); err != nil {
			return nil, err
		}
		if err := faultinject.Hit(faultinject.PointHashProbe); err != nil {
			return nil, err
		}
		group, err := nestGroup(ctx, l, table.bucket(key), j.LVar, j.RVar, j.Residual, j.Fn)
		if err != nil {
			return nil, err
		}
		out = append(out, l.Extend(j.Label, group))
	}
	return out, nil
}
