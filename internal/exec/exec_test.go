package exec

import (
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

func tup(pairs ...any) value.Value {
	var fs []value.Field
	for i := 0; i < len(pairs); i += 2 {
		label := pairs[i].(string)
		var v value.Value
		switch x := pairs[i+1].(type) {
		case int:
			v = value.Int(int64(x))
		case string:
			v = value.Str(x)
		case value.Value:
			v = x
		default:
			panic("bad tup arg")
		}
		fs = append(fs, value.F(label, v))
	}
	return value.TupleOf(fs...)
}

func ints(ns ...int64) value.Value {
	es := make([]value.Value, len(ns))
	for i, n := range ns {
		es[i] = value.Int(n)
	}
	return value.SetOf(es...)
}

// xyRows returns the Table 1 relations as slices.
func xyRows() (x, y []value.Value) {
	x = []value.Value{
		tup("e", 1, "d", 1),
		tup("e", 2, "d", 2),
		tup("e", 3, "d", 3),
	}
	y = []value.Value{
		tup("a", 1, "b", 1),
		tup("a", 2, "b", 1),
		tup("a", 3, "b", 3),
	}
	return
}

func pred(src string) tmql.Expr { return tmql.MustParse(src) }

func collect(t *testing.T, it Iterator) value.Value {
	t.Helper()
	v, err := Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// table1Want is the expected nest equijoin of Table 1.
func table1Want() value.Value {
	return value.SetOf(
		tup("e", 1, "d", 1, "s", value.SetOf(tup("a", 1, "b", 1), tup("a", 2, "b", 1))),
		tup("e", 2, "d", 2, "s", value.EmptySet),
		tup("e", 3, "d", 3, "s", value.SetOf(tup("a", 3, "b", 3))),
	)
}

func nestJoinIters(ctx *Ctx, x, y []value.Value) map[string]Iterator {
	keysL := []tmql.Expr{pred("x.d")}
	keysR := []tmql.Expr{pred("y.b")}
	return map[string]Iterator{
		"nl": &NLNestJoin{
			Ctx: ctx, L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
			LVar: "x", RVar: "y", Pred: pred("x.d = y.b"), Fn: pred("y"), Label: "s",
		},
		"hash": &HashNestJoin{
			Ctx: ctx, L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
			LVar: "x", RVar: "y", LKeys: keysL, RKeys: keysR, Fn: pred("y"), Label: "s",
		},
		"merge": &MergeNestJoin{
			Ctx: ctx, L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
			LVar: "x", RVar: "y", LKeys: keysL, RKeys: keysR, Fn: pred("y"), Label: "s",
		},
	}
}

// TestTable1 reproduces the paper's Table 1 (the nest equijoin example) with
// all three nest-join implementations.
func TestTable1(t *testing.T) {
	x, y := xyRows()
	want := table1Want()
	for name, it := range nestJoinIters(NewCtx(nil), x, y) {
		got := collect(t, it)
		if !value.Equal(got, want) {
			t.Errorf("%s nest join:\n got %s\nwant %s", name, got, want)
		}
	}
}

func TestNestJoinFunctionProjection(t *testing.T) {
	// Fn projects y.a — the §8 step (1) shape.
	x, y := xyRows()
	it := &HashNestJoin{
		Ctx: NewCtx(nil), L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
		LVar: "x", RVar: "y",
		LKeys: []tmql.Expr{pred("x.d")}, RKeys: []tmql.Expr{pred("y.b")},
		Fn: pred("y.a"), Label: "zs",
	}
	got := collect(t, it)
	want := value.SetOf(
		tup("e", 1, "d", 1, "zs", ints(1, 2)),
		tup("e", 2, "d", 2, "zs", value.EmptySet),
		tup("e", 3, "d", 3, "zs", ints(3)),
	)
	if !value.Equal(got, want) {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

func TestNestJoinResidualPredicate(t *testing.T) {
	// Equi-key plus residual: x.d = y.b AND y.a > 1.
	x, y := xyRows()
	for _, impl := range []Iterator{
		&HashNestJoin{
			Ctx: NewCtx(nil), L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
			LVar: "x", RVar: "y",
			LKeys: []tmql.Expr{pred("x.d")}, RKeys: []tmql.Expr{pred("y.b")},
			Residual: pred("y.a > 1"), Fn: pred("y.a"), Label: "zs",
		},
		&MergeNestJoin{
			Ctx: NewCtx(nil), L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
			LVar: "x", RVar: "y",
			LKeys: []tmql.Expr{pred("x.d")}, RKeys: []tmql.Expr{pred("y.b")},
			Residual: pred("y.a > 1"), Fn: pred("y.a"), Label: "zs",
		},
		&NLNestJoin{
			Ctx: NewCtx(nil), L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
			LVar: "x", RVar: "y", Pred: pred("x.d = y.b AND y.a > 1"),
			Fn: pred("y.a"), Label: "zs",
		},
	} {
		got := collect(t, impl)
		want := value.SetOf(
			tup("e", 1, "d", 1, "zs", ints(2)),
			tup("e", 2, "d", 2, "zs", value.EmptySet),
			tup("e", 3, "d", 3, "zs", ints(3)),
		)
		if !value.Equal(got, want) {
			t.Errorf("%T: got %s\nwant %s", impl, got, want)
		}
	}
}

func TestFlatJoins(t *testing.T) {
	x, y := xyRows()
	wantInner := value.SetOf(
		tup("e", 1, "d", 1, "a", 1, "b", 1),
		tup("e", 1, "d", 1, "a", 2, "b", 1),
		tup("e", 3, "d", 3, "a", 3, "b", 3),
	)
	wantSemi := value.SetOf(tup("e", 1, "d", 1), tup("e", 3, "d", 3))
	wantAnti := value.SetOf(tup("e", 2, "d", 2))
	wantOuter := value.SetOf(
		tup("e", 1, "d", 1, "a", 1, "b", 1),
		tup("e", 1, "d", 1, "a", 2, "b", 1),
		tup("e", 2, "d", 2, "a", value.Null, "b", value.Null),
		tup("e", 3, "d", 3, "a", 3, "b", 3),
	)
	cases := []struct {
		kind algebra.JoinKind
		want value.Value
	}{
		{algebra.JoinInner, wantInner},
		{algebra.JoinSemi, wantSemi},
		{algebra.JoinAnti, wantAnti},
		{algebra.JoinLeftOuter, wantOuter},
	}
	yElem := yElemType()
	for _, c := range cases {
		nl := &NLJoin{
			Ctx: NewCtx(nil), Kind: c.kind, L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
			LVar: "x", RVar: "y", Pred: pred("x.d = y.b"), RElem: yElem,
		}
		if got := collect(t, nl); !value.Equal(got, c.want) {
			t.Errorf("NLJoin %s:\n got %s\nwant %s", c.kind, got, c.want)
		}
		hj := &HashJoin{
			Ctx: NewCtx(nil), Kind: c.kind, L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
			LVar: "x", RVar: "y",
			LKeys: []tmql.Expr{pred("x.d")}, RKeys: []tmql.Expr{pred("y.b")},
			RElem: yElem,
		}
		if got := collect(t, hj); !value.Equal(got, c.want) {
			t.Errorf("HashJoin %s:\n got %s\nwant %s", c.kind, got, c.want)
		}
	}
}

func yElemType() *types.Type {
	return types.Tuple(types.F("a", types.Int), types.F("b", types.Int))
}

func wrapType() *types.Type {
	return types.Tuple(types.F("w", yElemType()))
}

func TestFilterMapDistinct(t *testing.T) {
	x, _ := xyRows()
	ctx := NewCtx(nil)
	f := &Filter{Ctx: ctx, In: &SliceScan{Rows: x}, Var: "x", Pred: pred("x.e > 1")}
	if got := collect(t, f); got.Len() != 2 {
		t.Errorf("Filter: %s", got)
	}
	m := &MapIter{Ctx: ctx, In: &SliceScan{Rows: x}, Var: "x", Out: pred("x.e + 10")}
	if got := collect(t, m); !value.Equal(got, ints(11, 12, 13)) {
		t.Errorf("Map: %s", got)
	}
	dup := []value.Value{value.Int(1), value.Int(1), value.Int(2)}
	d := &Distinct{In: &SliceScan{Rows: dup}}
	rows, err := Drain(d)
	if err != nil || len(rows) != 2 {
		t.Errorf("Distinct: %v %v", rows, err)
	}
}

func TestSortIter(t *testing.T) {
	x, _ := xyRows()
	// Sort descending via key -x.e.
	s := &Sort{Ctx: NewCtx(nil), In: &SliceScan{Rows: x}, Var: "x", Keys: []tmql.Expr{pred("-x.e")}}
	rows, err := Drain(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 || rows[0].MustGet("e").AsInt() != 3 {
		t.Errorf("Sort: %v", rows)
	}
}

func TestNestAndNestStar(t *testing.T) {
	rows := []value.Value{
		tup("g", 1, "a", 10),
		tup("g", 1, "a", 20),
		tup("g", 2, "a", 30),
	}
	n := &NestIter{In: &SliceScan{Rows: rows}, Attrs: []string{"a"}, Label: "as"}
	got := collect(t, n)
	want := value.SetOf(
		tup("g", 1, "as", value.SetOf(tup("a", 10), tup("a", 20))),
		tup("g", 2, "as", value.SetOf(tup("a", 30))),
	)
	if !value.Equal(got, want) {
		t.Errorf("Nest: got %s want %s", got, want)
	}

	// ν*: NULL rows nest to ∅; plain ν would keep the NULL tuple.
	rowsNull := []value.Value{
		tup("g", 1, "a", value.Null),
		tup("g", 2, "a", 30),
	}
	ns := &NestIter{In: &SliceScan{Rows: rowsNull}, Attrs: []string{"a"}, Label: "as", NullAware: true}
	got = collect(t, ns)
	want = value.SetOf(
		tup("g", 1, "as", value.EmptySet),
		tup("g", 2, "as", value.SetOf(tup("a", 30))),
	)
	if !value.Equal(got, want) {
		t.Errorf("Nest*: got %s want %s", got, want)
	}
	nv := &NestIter{In: &SliceScan{Rows: rowsNull}, Attrs: []string{"a"}, Label: "as"}
	got = collect(t, nv)
	if value.Equal(got, want) {
		t.Error("plain ν should keep the NULL tuple, differing from ν*")
	}
}

func TestUnnestIter(t *testing.T) {
	rows := []value.Value{
		tup("g", 1, "as", value.SetOf(tup("a", 10), tup("a", 20))),
		tup("g", 2, "as", value.EmptySet), // dangling: vanishes under μ
	}
	u := &UnnestIter{In: &SliceScan{Rows: rows}, Attr: "as"}
	got := collect(t, u)
	want := value.SetOf(tup("g", 1, "a", 10), tup("g", 1, "a", 20))
	if !value.Equal(got, want) {
		t.Errorf("Unnest: got %s want %s", got, want)
	}

	// Scalar elements keep the attribute label.
	rows2 := []value.Value{tup("g", 1, "vs", ints(7, 8))}
	u2 := &UnnestIter{In: &SliceScan{Rows: rows2}, Attr: "vs", Scalar: true}
	got = collect(t, u2)
	want = value.SetOf(tup("g", 1, "vs", 7), tup("g", 1, "vs", 8))
	if !value.Equal(got, want) {
		t.Errorf("Unnest scalar: got %s want %s", got, want)
	}
}

// TestNestJoinEqualsOuterJoinNestStar verifies the §6 identity
// X △ Y = ν*[s](X ⟗ Y) on Table 1 (with the right side wrapped so padding
// detection is exact).
func TestNestJoinEqualsOuterJoinNestStar(t *testing.T) {
	x, y := xyRows()
	ctx := NewCtx(nil)

	// Left: nest join (identity function, wrapped right rows to mirror).
	nj := &NLNestJoin{
		Ctx: ctx, L: &SliceScan{Rows: x}, R: &SliceScan{Rows: y},
		LVar: "x", RVar: "y", Pred: pred("x.d = y.b"), Fn: pred("y"), Label: "s",
	}
	njOut := collect(t, nj)

	// Right: outerjoin then ν*. Wrap y rows as (w = y) to avoid label
	// collisions and make the NULL-padding pattern exact.
	wrapped := make([]value.Value, len(y))
	for i, r := range y {
		wrapped[i] = tup("w", r)
	}
	oj := &NLJoin{
		Ctx: ctx, Kind: algebra.JoinLeftOuter,
		L: &SliceScan{Rows: x}, R: &SliceScan{Rows: wrapped},
		LVar: "x", RVar: "y", Pred: pred("x.d = y.w.b"), RElem: wrapType(),
	}
	rows, err := Drain(oj)
	if err != nil {
		t.Fatal(err)
	}
	ns := &NestIter{In: &SliceScan{Rows: rows}, Attrs: []string{"w"}, Label: "s", NullAware: true}
	nsRows, err := Drain(ns)
	if err != nil {
		t.Fatal(err)
	}
	// Unwrap: s is a set of (w = y-row); map to the set of y-rows.
	b := value.NewSetBuilder(len(nsRows))
	for _, r := range nsRows {
		g := value.NewSetBuilder(0)
		for _, e := range r.MustGet("s").Elems() {
			g.Add(e.MustGet("w"))
		}
		b.Add(r.Drop("s").Extend("s", g.Build()))
	}
	ojOut := b.Build()

	if !value.Equal(njOut, ojOut) {
		t.Errorf("△ vs ν*∘⟗:\n got %s\nwant %s", ojOut, njOut)
	}
}

func TestSetOpIter(t *testing.T) {
	a := []value.Value{value.Int(1), value.Int(2), value.Int(3)}
	b := []value.Value{value.Int(2), value.Int(4)}
	cases := []struct {
		kind int
		want value.Value
	}{
		{0, ints(1, 2, 3, 4)},
		{1, ints(2)},
		{2, ints(1, 3)},
	}
	for _, c := range cases {
		it := &SetOpIter{Kind: c.kind, L: &SliceScan{Rows: a}, R: &SliceScan{Rows: b}}
		if got := collect(t, it); !value.Equal(got, c.want) {
			t.Errorf("SetOp %d: got %s want %s", c.kind, got, c.want)
		}
	}
}

func TestEvalScan(t *testing.T) {
	ctx := NewCtx(nil)
	es := &EvalScan{Ctx: ctx, Expr: pred("{1, 2} UNION {3}")}
	if got := collect(t, es); !value.Equal(got, ints(1, 2, 3)) {
		t.Errorf("EvalScan: %s", got)
	}
	bad := &EvalScan{Ctx: ctx, Expr: pred("1 + 1")}
	if err := bad.Open(); err == nil {
		t.Error("EvalScan over scalar should fail")
	}
}

func TestTableScanUnknown(t *testing.T) {
	_, db := datagen.Table1()
	ctx := NewCtx(db)
	ts := &TableScan{Ctx: ctx, Table: "NOPE"}
	if err := ts.Open(); err == nil {
		t.Error("unknown table should fail")
	}
	ok := &TableScan{Ctx: ctx, Table: "X"}
	if got := collect(t, ok); got.Len() != 3 {
		t.Errorf("X scan: %s", got)
	}
}

func TestHashJoinKeyValidation(t *testing.T) {
	hj := &HashJoin{Ctx: NewCtx(nil), L: &SliceScan{}, R: &SliceScan{}, LVar: "x", RVar: "y"}
	if err := hj.Open(); err == nil {
		t.Error("HashJoin without keys should fail to open")
	}
	hnj := &HashNestJoin{Ctx: NewCtx(nil), L: &SliceScan{}, R: &SliceScan{}, LVar: "x", RVar: "y"}
	if err := hnj.Open(); err == nil {
		t.Error("HashNestJoin without keys should fail to open")
	}
	mnj := &MergeNestJoin{Ctx: NewCtx(nil), L: &SliceScan{}, R: &SliceScan{}, LVar: "x", RVar: "y"}
	if err := mnj.Open(); err == nil {
		t.Error("MergeNestJoin without keys should fail to open")
	}
}
