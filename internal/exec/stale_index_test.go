package exec

import (
	"errors"
	"testing"

	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
)

// TestStaleIndexTyped pins the error taxonomy of index resolution at Open: a
// registered index that vanished between planning and Open (dropped, or the
// table unsealed) surfaces ErrStaleIndex — the signal engine.execBound turns
// into one transparent replan — while an unknown table stays an ordinary
// untyped failure (the liveness pre-check owns that case).
func TestStaleIndexTyped(t *testing.T) {
	db := storage.NewDB()
	elem := types.Tuple(types.F("a", types.Int))
	tab := db.MustCreate("T", elem)
	tab.Seal()

	key, err := tmql.Parse("1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := NewCtx(db)

	probe := &indexProbeSide{ctx: ctx, table: "T", index: "a", lvar: "x", lkeys: []tmql.Expr{key}}
	if err := probe.open(); !errors.Is(err, ErrStaleIndex) {
		t.Errorf("missing index: open() = %v, want ErrStaleIndex", err)
	}

	unknown := &indexProbeSide{ctx: ctx, table: "nope", index: "a", lvar: "x", lkeys: []tmql.Expr{key}}
	if err := unknown.open(); err == nil || errors.Is(err, ErrStaleIndex) {
		t.Errorf("unknown table: open() = %v, want an untyped (non-stale) error", err)
	}

	// A live index opens. After a drop, a probe side holding the resolved
	// snapshot reopens fine (compile-time resolution pins the snapshot), while
	// a fresh name-resolving probe observes the stale error.
	if err := tab.CreateIndex("a"); err != nil {
		t.Fatal(err)
	}
	live := &indexProbeSide{ctx: ctx, table: "T", index: "a", lvar: "x", lkeys: []tmql.Expr{key}}
	if err := live.open(); err != nil {
		t.Fatalf("live index failed to open: %v", err)
	}
	if !tab.DropIndex("a") {
		t.Fatal("DropIndex reported false")
	}
	if err := live.open(); err != nil {
		t.Errorf("resolved snapshot failed to reopen after drop: %v", err)
	}
	fresh := &indexProbeSide{ctx: ctx, table: "T", index: "a", lvar: "x", lkeys: []tmql.Expr{key}}
	if err := fresh.open(); !errors.Is(err, ErrStaleIndex) {
		t.Errorf("dropped index: open() = %v, want ErrStaleIndex", err)
	}

	// The compile-time path: a pre-resolved Ix is served as-is.
	pre := &indexProbeSide{ctx: ctx, table: "T", index: "a", lvar: "x", lkeys: []tmql.Expr{key}, ix: live.ix}
	if err := pre.open(); err != nil {
		t.Errorf("pre-resolved probe failed to open: %v", err)
	}
}
