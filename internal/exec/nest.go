package exec

import (
	"fmt"

	"tmdb/internal/value"
)

// NestIter implements the NF² nest ν[attrs→label] and its NULL-aware variant
// ν* (§6): input tuples are grouped by all attributes outside Attrs; each
// group yields one tuple of the grouping attributes extended with Label = the
// set of Attrs-projections. Under NullAware, a projection whose every
// attribute is NULL is dropped from the group set, so an outerjoin's padding
// rows nest to ∅ — the identity X △ Y = ν*[a](X ⟗ Y) depends on exactly
// this.
type NestIter struct {
	// Ctx may be nil (tests); the planner wires it so the grouping loop
	// observes cancellation.
	Ctx       *Ctx
	In        Iterator
	Attrs     []string
	Label     string
	NullAware bool

	out []value.Value
	i   int
}

// Open materializes the input and performs the grouping.
func (n *NestIter) Open() error {
	rows, err := Drain(n.In)
	if err != nil {
		return err
	}
	nested := make(map[string]bool, len(n.Attrs))
	for _, a := range n.Attrs {
		nested[a] = true
	}
	type group struct {
		rest value.Value
		b    *value.SetBuilder
	}
	order := make([]string, 0)
	groups := make(map[string]*group)
	for _, r := range rows {
		if n.Ctx != nil {
			if err := n.Ctx.check(); err != nil {
				return err
			}
		}
		if r.Kind() != value.KindTuple {
			return fmt.Errorf("exec: nest over non-tuple %s", r)
		}
		var restFields, projFields []value.Field
		allNull := true
		for _, f := range r.Fields() {
			if nested[f.Label] {
				projFields = append(projFields, f)
				if !f.V.IsNull() {
					allNull = false
				}
			} else {
				restFields = append(restFields, f)
			}
		}
		rest := value.TupleOf(restFields...)
		k := value.Key(rest)
		g, ok := groups[k]
		if !ok {
			g = &group{rest: rest, b: value.NewSetBuilder(1)}
			groups[k] = g
			order = append(order, k)
		}
		if n.NullAware && allNull {
			continue // ν*: NULL padding nests to the empty set
		}
		g.b.Add(value.TupleOf(projFields...))
	}
	n.out = n.out[:0]
	for _, k := range order {
		g := groups[k]
		n.out = append(n.out, g.rest.Extend(n.Label, g.b.Build()))
	}
	n.i = 0
	return nil
}

// Next returns the next group tuple.
func (n *NestIter) Next() (value.Value, bool, error) {
	if n.i >= len(n.out) {
		return value.Value{}, false, nil
	}
	v := n.out[n.i]
	n.i++
	return v, true, nil
}

// Close releases the grouped output.
func (n *NestIter) Close() error { n.out = nil; return nil }

// UnnestIter implements μ[attr]: each input tuple t yields one tuple per
// element of the set t.attr; tuples with t.attr = ∅ produce nothing (the
// dangling-tuple loss that motivates the nest join). Tuple-typed elements are
// concatenated into the remainder of t; scalar elements are re-attached under
// the attribute's own label.
type UnnestIter struct {
	// Ctx may be nil (tests); the planner wires it so the flattening loop
	// observes cancellation.
	Ctx  *Ctx
	In   Iterator
	Attr string
	// Scalar selects the scalar-element behavior (set by the planner from
	// the algebra node's typing).
	Scalar bool

	cur   value.Value // current input tuple with Attr dropped
	elems []value.Value
	ei    int
	done  bool
}

// Open opens the input.
func (u *UnnestIter) Open() error {
	u.done = false
	u.elems = nil
	u.ei = 0
	return u.In.Open()
}

// Next returns the next flattened tuple.
func (u *UnnestIter) Next() (value.Value, bool, error) {
	for {
		if u.Ctx != nil {
			if err := u.Ctx.check(); err != nil {
				return value.Value{}, false, err
			}
		}
		if u.ei < len(u.elems) {
			e := u.elems[u.ei]
			u.ei++
			if u.Scalar {
				return u.cur.Extend(u.Attr, e), true, nil
			}
			if e.Kind() != value.KindTuple {
				return value.Value{}, false, fmt.Errorf("exec: unnest element %s is not a tuple", e)
			}
			return u.cur.Concat(e), true, nil
		}
		if u.done {
			return value.Value{}, false, nil
		}
		t, ok, err := u.In.Next()
		if err != nil {
			return value.Value{}, false, err
		}
		if !ok {
			u.done = true
			continue
		}
		s, found := t.Get(u.Attr)
		if !found {
			return value.Value{}, false, fmt.Errorf("exec: unnest attribute %s missing in %s", u.Attr, t)
		}
		if s.Kind() != value.KindSet {
			return value.Value{}, false, fmt.Errorf("exec: unnest attribute %s is not a set in %s", u.Attr, t)
		}
		u.cur = t.Drop(u.Attr)
		u.elems = s.Elems()
		u.ei = 0
	}
}

// Close closes the input.
func (u *UnnestIter) Close() error { return u.In.Close() }

// SetOpIter implements plan-level Union / Intersect / Diff by materializing
// the right input into a key set and streaming the left. Union additionally
// emits right elements unseen on the left.
type SetOpIter struct {
	// Ctx may be nil (tests); the planner wires it so the streaming loop
	// observes cancellation.
	Ctx *Ctx
	// Kind: 0 = union, 1 = intersect, 2 = diff (mirrors algebra.SetOpKind).
	Kind int
	L, R Iterator

	right     map[string]value.Value
	rightKeys []string
	seen      map[string]bool
	phase     int // 0 = streaming left, 1 = draining right (union only)
	ri        int
}

// Open materializes the right input.
func (s *SetOpIter) Open() error {
	rows, err := Drain(s.R)
	if err != nil {
		return err
	}
	s.right = make(map[string]value.Value, len(rows))
	s.rightKeys = s.rightKeys[:0]
	for _, r := range rows {
		k := value.Key(r)
		if _, dup := s.right[k]; !dup {
			s.right[k] = r
			s.rightKeys = append(s.rightKeys, k)
		}
	}
	s.seen = make(map[string]bool)
	s.phase = 0
	s.ri = 0
	return s.L.Open()
}

// Next returns the next element of the combination.
func (s *SetOpIter) Next() (value.Value, bool, error) {
	for s.phase == 0 {
		v, ok, err := s.L.Next()
		if err != nil {
			return value.Value{}, false, err
		}
		if s.Ctx != nil {
			if cerr := s.Ctx.check(); cerr != nil {
				return value.Value{}, false, cerr
			}
		}
		if !ok {
			if s.Kind == 0 {
				s.phase = 1
				break
			}
			return value.Value{}, false, nil
		}
		k := value.Key(v)
		if s.seen[k] {
			continue
		}
		s.seen[k] = true
		_, inRight := s.right[k]
		switch s.Kind {
		case 0: // union: left always passes
			return v, true, nil
		case 1: // intersect
			if inRight {
				return v, true, nil
			}
		case 2: // diff
			if !inRight {
				return v, true, nil
			}
		}
	}
	// Union phase 1: right elements not already emitted.
	for s.ri < len(s.rightKeys) {
		k := s.rightKeys[s.ri]
		s.ri++
		if !s.seen[k] {
			s.seen[k] = true
			return s.right[k], true, nil
		}
	}
	return value.Value{}, false, nil
}

// Close releases state and closes the left input.
func (s *SetOpIter) Close() error {
	s.right = nil
	s.seen = nil
	return s.L.Close()
}
