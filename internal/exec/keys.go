package exec

import (
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// The allocation-lean key path shared by the hash join family (serial and
// parallel): key expressions are evaluated per row and their canonical
// encodings appended onto a reusable scratch buffer instead of materializing
// a value.Key string per row. Map lookups go through string(buf), which the
// Go compiler performs without allocating; only the first insertion of a
// distinct key pays a string allocation (see hashTable).

// appendRowKey appends the canonical encodings of the key expressions,
// evaluated for v bound to varName, onto buf and returns the extended slice.
// value.AppendKey encodings are self-delimiting, so the concatenation is
// injective for a fixed key arity — two rows produce identical bytes iff
// their key tuples are Equal.
func appendRowKey(c *Ctx, keys []tmql.Expr, varName string, v value.Value, buf []byte) ([]byte, error) {
	env := env1(varName, v)
	for _, k := range keys {
		kv, err := c.evalIn(k, env)
		if err != nil {
			return nil, err
		}
		buf = value.AppendKey(buf, kv)
	}
	return buf, nil
}

// hashTable is an exact (collision-free) multimap from encoded key bytes to
// row buckets. The indirection through idx exists so that adding a row to an
// existing bucket never converts the byte key to a string: the idx lookup
// with string(key) is allocation-free, and buckets are addressed by slot.
type hashTable struct {
	idx     map[string]int
	buckets [][]value.Value
}

func newHashTable(capacity int) *hashTable {
	return &hashTable{idx: make(map[string]int, capacity)}
}

// add appends v to the bucket for key, creating it if needed. Only the first
// row of a distinct key allocates (the retained map key string).
func (t *hashTable) add(key []byte, v value.Value) {
	if i, ok := t.idx[string(key)]; ok {
		t.buckets[i] = append(t.buckets[i], v)
		return
	}
	t.idx[string(key)] = len(t.buckets)
	t.buckets = append(t.buckets, []value.Value{v})
}

// bucket returns the rows stored under key (nil if none). Allocation-free.
func (t *hashTable) bucket(key []byte) []value.Value {
	if i, ok := t.idx[string(key)]; ok {
		return t.buckets[i]
	}
	return nil
}

// hashKeyBytes hashes an encoded key (FNV-1a). It is deterministic across
// runs — unlike maphash — so parallel partition assignment, and therefore
// the bytes each worker sees, is reproducible for a given input.
func hashKeyBytes(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	return h
}
