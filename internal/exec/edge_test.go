package exec

import (
	"errors"
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// failingIter errors on Open or on the nth Next, for error-propagation
// tests.
type failingIter struct {
	failOpen bool
	n        int
	i        int
}

func (f *failingIter) Open() error {
	if f.failOpen {
		return errors.New("boom-open")
	}
	return nil
}

func (f *failingIter) Next() (value.Value, bool, error) {
	if f.i >= f.n {
		return value.Value{}, false, errors.New("boom-next")
	}
	f.i++
	return value.TupleOf(value.F("k", value.Int(int64(f.i)))), true, nil
}

func (f *failingIter) Close() error { return nil }

func TestErrorPropagation(t *testing.T) {
	ctx := NewCtx(nil)
	iters := []Iterator{
		&Filter{Ctx: ctx, In: &failingIter{failOpen: true}, Var: "x", Pred: pred("TRUE")},
		&MapIter{Ctx: ctx, In: &failingIter{n: 1}, Var: "x", Out: pred("x.k")},
		&Sort{Ctx: ctx, In: &failingIter{n: 2}, Var: "x", Keys: []tmql.Expr{pred("x.k")}},
		&Distinct{In: &failingIter{n: 1}},
		&NLJoin{Ctx: ctx, Kind: algebra.JoinInner, L: &SliceScan{}, R: &failingIter{failOpen: true},
			LVar: "x", RVar: "y", Pred: pred("TRUE")},
		&HashNestJoin{Ctx: ctx, L: &SliceScan{}, R: &failingIter{n: 1},
			LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.k")},
			Fn: pred("y"), Label: "s"},
		&NestIter{In: &failingIter{n: 2}, Attrs: []string{"k"}, Label: "s"},
		&UnnestIter{In: &failingIter{n: 1}, Attr: "k"},
		&SetOpIter{Kind: 0, L: &SliceScan{}, R: &failingIter{n: 1}},
	}
	for _, it := range iters {
		if _, err := Collect(it); err == nil {
			t.Errorf("%T should surface input errors", it)
		}
	}
}

func TestPredicateTypeErrors(t *testing.T) {
	ctx := NewCtx(nil)
	rows := []value.Value{tup("k", 1)}
	// Predicate yields a non-boolean.
	f := &Filter{Ctx: ctx, In: &SliceScan{Rows: rows}, Var: "x", Pred: pred("x.k + 1")}
	if _, err := Collect(f); err == nil || !strings.Contains(err.Error(), "not BOOL") {
		t.Errorf("non-boolean predicate: %v", err)
	}
	// Predicate references missing field.
	f2 := &Filter{Ctx: ctx, In: &SliceScan{Rows: rows}, Var: "x", Pred: pred("x.nosuch = 1")}
	if _, err := Collect(f2); err == nil {
		t.Error("missing field should error at evaluation")
	}
}

func TestJoinsOnEmptyInputs(t *testing.T) {
	ctx := NewCtx(nil)
	rows := []value.Value{tup("e", 1, "d", 1)}
	yElem := yElemType()

	// Empty right side.
	for _, kind := range []algebra.JoinKind{algebra.JoinInner, algebra.JoinSemi, algebra.JoinAnti, algebra.JoinLeftOuter} {
		nl := &NLJoin{Ctx: ctx, Kind: kind, L: &SliceScan{Rows: rows}, R: &SliceScan{},
			LVar: "x", RVar: "y", Pred: pred("x.d = y.b"), RElem: yElem}
		got := collect(t, nl)
		switch kind {
		case algebra.JoinInner, algebra.JoinSemi:
			if got.Len() != 0 {
				t.Errorf("%s on empty right: %s", kind, got)
			}
		case algebra.JoinAnti:
			if got.Len() != 1 {
				t.Errorf("antijoin on empty right should keep left: %s", got)
			}
		case algebra.JoinLeftOuter:
			if got.Len() != 1 {
				t.Errorf("outer join on empty right should pad: %s", got)
			}
		}
	}

	// Empty left side: everything empty.
	hj := &HashJoin{Ctx: ctx, Kind: algebra.JoinInner, L: &SliceScan{}, R: &SliceScan{Rows: rows},
		LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.d")}, RKeys: []tmql.Expr{pred("y.e")}}
	if got := collect(t, hj); got.Len() != 0 {
		t.Errorf("hash join on empty left: %s", got)
	}

	// Nest join on empty right: every left extended with ∅.
	for _, it := range nestJoinIters(ctx, rows, nil) {
		got := collect(t, it)
		if got.Len() != 1 || !got.Elems()[0].MustGet("s").IsEmptySet() {
			t.Errorf("nest join on empty right: %s", got)
		}
	}
	// Nest join on empty left: empty.
	_, ys := xyRows()
	for name, it := range nestJoinIters(ctx, nil, ys) {
		if got := collect(t, it); got.Len() != 0 {
			t.Errorf("%s nest join on empty left: %s", name, got)
		}
	}
}

func TestMergeNestJoinDuplicateKeys(t *testing.T) {
	// Many left rows sharing a key; right runs must be re-scanned per left
	// element without losing group members.
	var xs, ys []value.Value
	for i := 0; i < 4; i++ {
		xs = append(xs, tup("e", i, "d", 1))
	}
	for i := 0; i < 3; i++ {
		ys = append(ys, tup("a", 10+i, "b", 1))
	}
	ys = append(ys, tup("a", 99, "b", 2))
	mj := &MergeNestJoin{
		Ctx: NewCtx(nil), L: &SliceScan{Rows: xs}, R: &SliceScan{Rows: ys},
		LVar: "x", RVar: "y",
		LKeys: []tmql.Expr{pred("x.d")}, RKeys: []tmql.Expr{pred("y.b")},
		Fn: pred("y.a"), Label: "s",
	}
	got := collect(t, mj)
	if got.Len() != 4 {
		t.Fatalf("expected 4 groups, got %s", got)
	}
	for _, r := range got.Elems() {
		if !value.Equal(r.MustGet("s"), ints(10, 11, 12)) {
			t.Errorf("group wrong: %s", r)
		}
	}
}

func TestNestJoinDuplicateFnImages(t *testing.T) {
	// Two right rows mapping to the same G image: the group is a set and
	// must deduplicate.
	xs := []value.Value{tup("e", 1, "d", 1)}
	ys := []value.Value{tup("a", 5, "b", 1), tup("a", 5, "b", 1), tup("a", 6, "b", 1)}
	nj := &NLNestJoin{
		Ctx: NewCtx(nil), L: &SliceScan{Rows: xs}, R: &SliceScan{Rows: ys},
		LVar: "x", RVar: "y", Pred: pred("x.d = y.b"), Fn: pred("y.a"), Label: "s",
	}
	got := collect(t, nj)
	if !value.Equal(got.Elems()[0].MustGet("s"), ints(5, 6)) {
		t.Errorf("group should deduplicate: %s", got)
	}
}

func TestUnnestErrors(t *testing.T) {
	// Attribute missing.
	u := &UnnestIter{In: &SliceScan{Rows: []value.Value{tup("k", 1)}}, Attr: "zs"}
	if _, err := Collect(u); err == nil {
		t.Error("missing attribute should error")
	}
	// Attribute not a set.
	u2 := &UnnestIter{In: &SliceScan{Rows: []value.Value{tup("zs", 1)}}, Attr: "zs"}
	if _, err := Collect(u2); err == nil {
		t.Error("non-set attribute should error")
	}
	// Non-tuple element without Scalar.
	u3 := &UnnestIter{In: &SliceScan{Rows: []value.Value{tup("zs", ints(1, 2))}}, Attr: "zs"}
	if _, err := Collect(u3); err == nil {
		t.Error("scalar elements need Scalar=true")
	}
}

func TestNestOverNonTuple(t *testing.T) {
	n := &NestIter{In: &SliceScan{Rows: []value.Value{value.Int(1)}}, Attrs: []string{"a"}, Label: "s"}
	if _, err := Collect(n); err == nil {
		t.Error("nest over scalars should error")
	}
}

func TestOuterJoinWithoutRElem(t *testing.T) {
	nl := &NLJoin{Ctx: NewCtx(nil), Kind: algebra.JoinLeftOuter, L: &SliceScan{}, R: &SliceScan{},
		LVar: "x", RVar: "y", Pred: pred("TRUE")}
	if err := nl.Open(); err == nil {
		t.Error("outer NLJoin without RElem should fail to open")
	}
	hj := &HashJoin{Ctx: NewCtx(nil), Kind: algebra.JoinLeftOuter, L: &SliceScan{}, R: &SliceScan{},
		LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.k")}}
	if err := hj.Open(); err == nil {
		t.Error("outer HashJoin without RElem should fail to open")
	}
}

func TestSemiJoinEarlyOutProbesLess(t *testing.T) {
	// Semijoin should touch fewer right candidates than the nest join when
	// matches are plentiful: verify via the evaluator step counter.
	var xs, ys []value.Value
	for i := 0; i < 50; i++ {
		xs = append(xs, tup("e", i, "d", 1))
	}
	for i := 0; i < 200; i++ {
		ys = append(ys, tup("a", i, "b", 1))
	}
	ctxSemi := NewCtx(nil)
	semi := &HashJoin{Ctx: ctxSemi, Kind: algebra.JoinSemi,
		L: &SliceScan{Rows: xs}, R: &SliceScan{Rows: ys}, LVar: "x", RVar: "y",
		LKeys: []tmql.Expr{pred("x.d")}, RKeys: []tmql.Expr{pred("y.b")},
		Residual: pred("y.a >= 0")}
	if _, err := Collect(semi); err != nil {
		t.Fatal(err)
	}
	ctxNest := NewCtx(nil)
	nest := &HashNestJoin{Ctx: ctxNest,
		L: &SliceScan{Rows: xs}, R: &SliceScan{Rows: ys}, LVar: "x", RVar: "y",
		LKeys: []tmql.Expr{pred("x.d")}, RKeys: []tmql.Expr{pred("y.b")},
		Residual: pred("y.a >= 0"), Fn: pred("y.a"), Label: "s"}
	if _, err := Collect(nest); err != nil {
		t.Fatal(err)
	}
	if ctxSemi.Ev.Steps >= ctxNest.Ev.Steps {
		t.Errorf("semijoin early-out should do less work: semi=%d nest=%d",
			ctxSemi.Ev.Steps, ctxNest.Ev.Steps)
	}
}
