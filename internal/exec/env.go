package exec

import (
	"tmdb/internal/eval"
	"tmdb/internal/value"
)

// env1 and env2 build the small environments operators evaluate their
// embedded expressions under.
func env1(name string, v value.Value) *eval.Env {
	return (*eval.Env)(nil).Bind(name, v)
}

func env2(n1 string, v1 value.Value, n2 string, v2 value.Value) *eval.Env {
	return (*eval.Env)(nil).Bind(n1, v1).Bind(n2, v2)
}
