package exec

import (
	"fmt"

	"tmdb/internal/eval"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Compiled row programs for the batched operators. The expressions that
// dominate hot plans — field selections off the row variable, comparisons
// against literals or other fields, conjunctions of those, and tuple
// constructors over them — are compiled once at Open into direct closures
// over value.Value, so the per-row batch loops skip the evaluator's tree
// walk entirely. Everything outside this subset falls back to the generic
// evaluator with a reused environment node (eval.Env.Rebind), which keeps
// semantics and error behavior exactly those of the row engine.
//
// Semantics parity: compiled comparisons go through eval.Apply — the same
// function the evaluator uses — and compiled field selection reproduces the
// evaluator's error messages verbatim, so a query errors identically whether
// its predicate compiled or not. Compiled programs do not advance the
// evaluator's step counter: EvalSteps measures evaluator work performed, and
// compiled batch loops genuinely perform none.

// scalar2 is a compiled scalar expression over up to two row variables.
type scalar2 func(a, b value.Value) (value.Value, error)

// pred2 is a compiled boolean expression over up to two row variables.
type pred2 func(a, b value.Value) (bool, error)

// compileScalar2 compiles e to a direct function of the rows bound to n1 and
// n2 (pass n2 = "" for single-variable contexts), or nil when e falls
// outside the compiled subset: literals, the row variables themselves, and
// field-selection chains over them.
func compileScalar2(e tmql.Expr, n1, n2 string) scalar2 {
	switch n := e.(type) {
	case *tmql.Lit:
		v := n.V
		return func(value.Value, value.Value) (value.Value, error) { return v, nil }
	case *tmql.Var:
		if n.Name == n1 {
			return func(a, _ value.Value) (value.Value, error) { return a, nil }
		}
		if n2 != "" && n.Name == n2 {
			return func(_, b value.Value) (value.Value, error) { return b, nil }
		}
		return nil
	case *tmql.FieldSel:
		x := compileScalar2(n.X, n1, n2)
		if x == nil {
			return nil
		}
		label := n.Label
		return func(a, b value.Value) (value.Value, error) {
			xv, err := x(a, b)
			if err != nil {
				return value.Value{}, err
			}
			if xv.Kind() != value.KindTuple {
				return value.Value{}, fmt.Errorf("eval: field %s of non-tuple %s", label, xv)
			}
			f, ok := xv.Get(label)
			if !ok {
				return value.Value{}, fmt.Errorf("eval: tuple has no field %s", label)
			}
			return f, nil
		}
	}
	return nil
}

// compilePred2 compiles a predicate to a direct boolean function, or nil
// when it falls outside the compiled subset: comparisons between compiled
// scalars and AND/OR combinations of compiled predicates (which always yield
// booleans, so the evaluator's short-circuit truthiness is reproduced
// exactly).
func compilePred2(e tmql.Expr, n1, n2 string) pred2 {
	b, ok := e.(*tmql.Binary)
	if !ok {
		return nil
	}
	switch b.Op {
	case tmql.OpAnd, tmql.OpOr:
		l, r := compilePred2(b.L, n1, n2), compilePred2(b.R, n1, n2)
		if l == nil || r == nil {
			return nil
		}
		and := b.Op == tmql.OpAnd
		return func(a, c value.Value) (bool, error) {
			lb, err := l(a, c)
			if err != nil {
				return false, err
			}
			if lb != and { // false AND _, true OR _ short-circuit
				return lb, nil
			}
			return r(a, c)
		}
	case tmql.OpEq, tmql.OpNe, tmql.OpLt, tmql.OpLe, tmql.OpGt, tmql.OpGe:
		ls, rs := compileScalar2(b.L, n1, n2), compileScalar2(b.R, n1, n2)
		if ls == nil || rs == nil {
			return nil
		}
		op := b.Op
		return func(a, c value.Value) (bool, error) {
			lv, err := ls(a, c)
			if err != nil {
				return false, err
			}
			rv, err := rs(a, c)
			if err != nil {
				return false, err
			}
			v, err := eval.Apply(op, lv, rv)
			if err != nil {
				return false, err
			}
			return v.AsBool(), nil
		}
	}
	return nil
}

// rowPredicate evaluates a single-variable predicate per row: compiled when
// the shape allows, generic evaluation under a reused environment node
// otherwise. Not safe for concurrent use (the environment node is shared
// across rows); parallel workers build their own.
type rowPredicate struct {
	c        *Ctx
	pred     tmql.Expr
	compiled pred2
	env      *eval.Env
}

func newRowPredicate(c *Ctx, pred tmql.Expr, varName string) *rowPredicate {
	p := &rowPredicate{c: c, pred: pred}
	if pred == nil {
		return p
	}
	if p.compiled = compilePred2(pred, varName, ""); p.compiled == nil {
		p.env = env1(varName, value.Value{})
	}
	return p
}

func (p *rowPredicate) eval(row value.Value) (bool, error) {
	if p.pred == nil {
		return true, nil
	}
	if p.compiled != nil {
		return p.compiled(row, value.Value{})
	}
	p.env.Rebind(row)
	return p.c.evalPred(p.pred, p.env)
}

// pairPredicate is rowPredicate over two variables — the join residual form.
type pairPredicate struct {
	c          *Ctx
	pred       tmql.Expr
	compiled   pred2
	envL, envR *eval.Env // envR is the head of the chain, envL its tail node
}

func newPairPredicate(c *Ctx, pred tmql.Expr, lvar, rvar string) *pairPredicate {
	p := &pairPredicate{c: c, pred: pred}
	if pred == nil {
		return p
	}
	if p.compiled = compilePred2(pred, lvar, rvar); p.compiled == nil {
		p.envL = env1(lvar, value.Value{})
		p.envR = p.envL.Bind(rvar, value.Value{})
	}
	return p
}

func (p *pairPredicate) eval(l, r value.Value) (bool, error) {
	if p.pred == nil {
		return true, nil
	}
	if p.compiled != nil {
		return p.compiled(l, r)
	}
	p.envL.Rebind(l)
	p.envR.Rebind(r)
	return p.c.evalPred(p.pred, p.envR)
}

// rowProjector evaluates a Map output expression per row: compiled for
// scalar-subset expressions and tuple constructors over them, generic with a
// reused environment otherwise.
type rowProjector struct {
	c        *Ctx
	out      tmql.Expr
	compiled scalar2
	env      *eval.Env
}

func newRowProjector(c *Ctx, out tmql.Expr, varName string) *rowProjector {
	p := &rowProjector{c: c, out: out}
	if p.compiled = compileProjector(out, varName); p.compiled == nil {
		p.env = env1(varName, value.Value{})
	}
	return p
}

// compileProjector extends the scalar subset with tuple constructors, the
// shape every SELECT projection bottoms out in.
func compileProjector(out tmql.Expr, varName string) scalar2 {
	if s := compileScalar2(out, varName, ""); s != nil {
		return s
	}
	cons, ok := out.(*tmql.TupleCons)
	if !ok {
		return nil
	}
	labels := make([]string, len(cons.Fields))
	scalars := make([]scalar2, len(cons.Fields))
	for i, f := range cons.Fields {
		if scalars[i] = compileScalar2(f.E, varName, ""); scalars[i] == nil {
			return nil
		}
		labels[i] = f.Label
	}
	return func(a, b value.Value) (value.Value, error) {
		fs := make([]value.Field, len(scalars))
		for i, s := range scalars {
			fv, err := s(a, b)
			if err != nil {
				return value.Value{}, err
			}
			fs[i] = value.F(labels[i], fv)
		}
		return value.TupleOf(fs...), nil
	}
}

func (p *rowProjector) eval(row value.Value) (value.Value, error) {
	if p.compiled != nil {
		return p.compiled(row, value.Value{})
	}
	p.env.Rebind(row)
	return p.c.evalIn(p.out, p.env)
}

// keyEncoder appends the encoded join/partition key of a row onto a caller
// scratch buffer: compiled extractors when every key expression is in the
// scalar subset, generic evaluation under a reused environment otherwise.
// countSteps forces the generic path — the parallel exchange uses it so
// serial and parallel row plans report identical EvalSteps, a property the
// parallelism tests pin. Not safe for concurrent use; fork per worker.
type keyEncoder struct {
	c        *Ctx
	keys     []tmql.Expr
	compiled []scalar2
	env      *eval.Env
}

func newKeyEncoder(c *Ctx, keys []tmql.Expr, varName string, countSteps bool) *keyEncoder {
	enc := &keyEncoder{c: c, keys: keys}
	if !countSteps {
		compiled := make([]scalar2, len(keys))
		for i, k := range keys {
			if compiled[i] = compileScalar2(k, varName, ""); compiled[i] == nil {
				compiled = nil
				break
			}
		}
		enc.compiled = compiled
	}
	if enc.compiled == nil {
		enc.env = env1(varName, value.Value{})
	}
	return enc
}

// appendKey appends row's encoded key onto buf and returns the extended
// slice, exactly as appendRowKey does for the row engine.
func (e *keyEncoder) appendKey(buf []byte, row value.Value) ([]byte, error) {
	if e.compiled != nil {
		for _, s := range e.compiled {
			kv, err := s(row, value.Value{})
			if err != nil {
				return nil, err
			}
			buf = value.AppendKey(buf, kv)
		}
		return buf, nil
	}
	e.env.Rebind(row)
	for _, k := range e.keys {
		kv, err := e.c.evalIn(k, e.env)
		if err != nil {
			return nil, err
		}
		buf = value.AppendKey(buf, kv)
	}
	return buf, nil
}
