package exec

import (
	"fmt"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// genRows builds n tuples (<key> = i % keys, <val> = i) — enough rows to
// cross the minParallelRows inline threshold when n is large. Labels differ
// per side so inner-join concatenation has disjoint labels.
func genRows(n, keys int, key, val string) []value.Value {
	out := make([]value.Value, n)
	for i := 0; i < n; i++ {
		out[i] = tup(key, i%keys, val, i)
	}
	return out
}

func parJoinPair(ctx *Ctx, kind algebra.JoinKind, l, r []value.Value, residual tmql.Expr, degree int) (serial, par Iterator) {
	lk := []tmql.Expr{pred("x.k")}
	rk := []tmql.Expr{pred("y.j")}
	relem := types.Tuple(types.F("j", types.Int), types.F("w", types.Int))
	serial = &HashJoin{
		Ctx: ctx, Kind: kind, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
		LVar: "x", RVar: "y", LKeys: lk, RKeys: rk, Residual: residual, RElem: relem,
	}
	par = &ParHashJoin{
		Ctx: ctx, Kind: kind, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
		LVar: "x", RVar: "y", LKeys: lk, RKeys: rk, Residual: residual, RElem: relem,
		Degree: degree,
	}
	return serial, par
}

// TestParHashJoinMatchesSerial runs every flat join kind, with and without a
// residual, at several degrees and sizes (straddling the inline threshold),
// asserting the parallel operator's canonical result equals the serial one.
func TestParHashJoinMatchesSerial(t *testing.T) {
	residuals := map[string]tmql.Expr{"nil": nil, "resid": pred("x.v <= y.w + 250")}
	for _, kind := range []algebra.JoinKind{algebra.JoinInner, algebra.JoinSemi, algebra.JoinAnti, algebra.JoinLeftOuter} {
		for rname, residual := range residuals {
			for _, n := range []int{0, 7, 500} {
				// Dangling left rows: left keys range over 13, right over 7.
				l, r := genRows(n, 13, "k", "v"), genRows(n/2, 7, "j", "w")
				for _, degree := range []int{2, 3, 8} {
					name := fmt.Sprintf("%s/%s/n=%d/p=%d", kind, rname, n, degree)
					ctx := NewCtx(nil)
					serial, par := parJoinPair(ctx, kind, l, r, residual, degree)
					want := collect(t, serial)
					got := collect(t, par)
					if !value.Equal(got, want) {
						t.Errorf("%s: parallel result differs from serial:\nwant %s\ngot  %s", name, want, got)
					}
				}
			}
		}
	}
}

// TestParHashJoinStepsMatchSerial pins the step accounting: the partitioned
// plan performs exactly the same expression evaluations as the serial one
// (keys once per row, residual once per candidate), just sharded per worker.
func TestParHashJoinStepsMatchSerial(t *testing.T) {
	l, r := genRows(400, 13, "k", "v"), genRows(300, 7, "j", "w")
	for _, kind := range []algebra.JoinKind{algebra.JoinInner, algebra.JoinSemi} {
		sctx, pctx := NewCtx(nil), NewCtx(nil)
		serial, _ := parJoinPair(sctx, kind, l, r, pred("x.v <= y.w + 250"), 0)
		_, par := parJoinPair(pctx, kind, l, r, pred("x.v <= y.w + 250"), 4)
		collect(t, serial)
		collect(t, par)
		if sctx.Ev.Steps != pctx.Ev.Steps {
			t.Errorf("%s: serial performed %d eval steps, parallel %d", kind, sctx.Ev.Steps, pctx.Ev.Steps)
		}
		if pctx.Ev.Steps == 0 {
			t.Errorf("%s: parallel run reported zero eval steps", kind)
		}
	}
}

// TestParHashNestJoinMatchesSerial compares the parallel nest join against
// the serial hash nest join on the Table 1 example and larger generated data.
func TestParHashNestJoinMatchesSerial(t *testing.T) {
	type dataset struct {
		name string
		l, r []value.Value
	}
	x, y := xyRows()
	sets := []dataset{
		{"table1", x, y},
		{"generated", genRows(600, 17, "k", "v"), genRows(900, 11, "j", "w")},
	}
	for _, ds := range sets {
		lk, rk := []tmql.Expr{pred("x.k")}, []tmql.Expr{pred("y.j")}
		fn := pred("y")
		if ds.name == "table1" {
			lk, rk = []tmql.Expr{pred("x.d")}, []tmql.Expr{pred("y.b")}
		}
		ctx := NewCtx(nil)
		serial := &HashNestJoin{
			Ctx: ctx, L: &SliceScan{Rows: ds.l}, R: &SliceScan{Rows: ds.r},
			LVar: "x", RVar: "y", LKeys: lk, RKeys: rk, Fn: fn, Label: "s",
		}
		want := collect(t, serial)
		for _, degree := range []int{2, 8} {
			par := &ParHashNestJoin{
				Ctx: NewCtx(nil), L: &SliceScan{Rows: ds.l}, R: &SliceScan{Rows: ds.r},
				LVar: "x", RVar: "y", LKeys: lk, RKeys: rk, Fn: fn, Label: "s",
				Degree: degree,
			}
			got := collect(t, par)
			if !value.Equal(got, want) {
				t.Errorf("%s/p=%d: parallel nest join differs from serial:\nwant %s\ngot  %s",
					ds.name, degree, want, got)
			}
		}
	}
}

// TestParHashJoinErrors pins the failure modes: degree < 2, missing keys,
// and a worker-side evaluation error must surface deterministically.
func TestParHashJoinErrors(t *testing.T) {
	l, r := genRows(300, 5, "k", "v"), genRows(300, 5, "j", "w")
	ctx := NewCtx(nil)
	_, par := parJoinPair(ctx, algebra.JoinInner, l, r, nil, 1)
	if err := par.Open(); err == nil {
		t.Error("Degree=1 should be rejected")
	}
	bad := &ParHashJoin{
		Ctx: NewCtx(nil), Kind: algebra.JoinInner,
		L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r}, LVar: "x", RVar: "y", Degree: 2,
	}
	if err := bad.Open(); err == nil {
		t.Error("empty key lists should be rejected")
	}
	// Residual referencing a missing field fails inside workers; the error
	// must propagate out of Collect.
	_, evalErr := parJoinPair(NewCtx(nil), algebra.JoinInner, l, r, pred("x.missing = y.w"), 4)
	if _, err := Collect(evalErr); err == nil {
		t.Error("worker evaluation error did not propagate")
	}
}

// TestPartitionInputRouting checks the exchange invariant directly: equal
// keys land in the same partition, every row lands somewhere, and the row
// total is preserved at any producer count.
func TestPartitionInputRouting(t *testing.T) {
	rows := genRows(1000, 23, "k", "v")
	for _, nparts := range []int{2, 5, 8} {
		ctx := NewCtx(nil)
		s := NewScheduler(SchedConfig{Workers: nparts})
		ps, err := partitionInput(ctx, s, &RowsToBatch{It: &SliceScan{Rows: rows}}, []tmql.Expr{pred("x.k")}, "x", nparts)
		if err != nil {
			t.Fatal(err)
		}
		if ctx.Ev.Steps <= 0 {
			t.Error("partitioning reported no eval steps")
		}
		total := 0
		keyPart := map[string]int{}
		for p := 0; p < nparts; p++ {
			total += ps.rowCount(p)
			ps.each(p, func(v value.Value, key []byte) error {
				if prev, seen := keyPart[string(key)]; seen && prev != p {
					t.Fatalf("key %x routed to partitions %d and %d", key, prev, p)
				}
				keyPart[string(key)] = p
				return nil
			})
		}
		if total != len(rows) {
			t.Errorf("nparts=%d: %d rows in, %d rows across partitions", nparts, len(rows), total)
		}
		if len(keyPart) != 23 {
			t.Errorf("nparts=%d: expected 23 distinct keys, saw %d", nparts, len(keyPart))
		}
	}
}
