// Package exec implements the physical operators executing the algebra of
// internal/algebra: Volcano-style iterators for scan, filter, map, sort,
// distinct, set operations, the flat join family (nested-loop, hash, and
// sort-merge variants; inner, semi, anti, and left-outer), the restructuring
// operators ν / ν* / μ, and three implementations of the paper's nest join
// (nested-loop, hash, sort-merge).
//
// As §6 ("Implementation") prescribes, the nest join implementations are
// simple modifications of the corresponding join methods with two
// restrictions honored: an output tuple is emitted only after the entire
// matching group is known, and the build/inner side must be the right
// operand so output stays grouped by left tuples.
package exec

import (
	"fmt"

	"tmdb/internal/eval"
	"tmdb/internal/faultinject"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Iterator is the Volcano operator interface. Usage: Open, repeated Next
// until ok=false, Close. Iterators are single-use.
type Iterator interface {
	Open() error
	Next() (v value.Value, ok bool, err error)
	Close() error
}

// Ctx carries what operators need to evaluate embedded TM expressions —
// the database (for table references inside predicates) and a shared
// evaluator (whose step counter aggregates expression-evaluation work) —
// plus the query's Governor, when it is governed at all (see govern.go).
type Ctx struct {
	DB *storage.DB
	Ev *eval.Evaluator
	// Gov enforces cancellation, deadline, and budgets; nil for ungoverned
	// queries (the free fast path). Shared — never forked — across parallel
	// workers, so accounting is query-global.
	Gov *Governor
	// Sched is the query's morsel scheduler (see sched.go): the engine
	// attaches one per query so every partitioned operator of the plan
	// shares the worker pool and the stats counters. Operators fall back to
	// a private scheduler sized from their own Degree/BatchSize hints when
	// nil (exec used standalone).
	Sched *Scheduler
	// ticks spaces out the governor polls of check(); worker-local.
	ticks uint32
}

// NewCtx returns an ungoverned context over db with a fresh evaluator.
func NewCtx(db *storage.DB) *Ctx {
	return &Ctx{DB: db, Ev: eval.New(db)}
}

// NewCtxGoverned returns a context whose operators and naive evaluation
// observe gov (nil gov degrades to NewCtx). The evaluator's Check hook
// covers every eval-driven loop — naive plans, predicate re-checks, key
// evaluation — so deeply nested evaluation cancels without operator help.
func NewCtxGoverned(db *storage.DB, gov *Governor) *Ctx {
	c := &Ctx{DB: db, Ev: eval.New(db), Gov: gov}
	if gov != nil {
		c.Ev.Check = gov.Err
	}
	return c
}

// evalIn evaluates e under the given variable bindings.
func (c *Ctx) evalIn(e tmql.Expr, env *eval.Env) (value.Value, error) {
	return c.Ev.EvalEnv(e, env)
}

// evalPred evaluates a predicate, requiring a boolean.
func (c *Ctx) evalPred(e tmql.Expr, env *eval.Env) (bool, error) {
	if e == nil {
		return true, nil
	}
	v, err := c.Ev.EvalEnv(e, env)
	if err != nil {
		return false, err
	}
	if v.Kind() != value.KindBool {
		return false, fmt.Errorf("exec: predicate yielded %s, not BOOL", v)
	}
	return v.AsBool(), nil
}

// Collect drains an iterator into a canonical set value.
func Collect(it Iterator) (value.Value, error) {
	return CollectGoverned(nil, it)
}

// CollectGoverned is Collect under a governor: every row added to the result
// set is accounted against the row budget (pre-deduplication — the budget
// bounds produced work, not distinct output), and the cancel state is polled
// between rows so plans of cheap streaming operators still cancel promptly.
// A nil governor makes it plain Collect.
func CollectGoverned(gov *Governor, it Iterator) (value.Value, error) {
	if err := it.Open(); err != nil {
		return value.Value{}, err
	}
	defer it.Close()
	b := value.NewSetBuilder(0)
	var ticks uint32
	for {
		v, ok, err := it.Next()
		if err != nil {
			return value.Value{}, err
		}
		if !ok {
			break
		}
		if gov != nil {
			if err := gov.AddRows(1); err != nil {
				return value.Value{}, err
			}
			ticks++
			if ticks&(checkEvery-1) == 0 {
				if err := gov.Err(); err != nil {
					return value.Value{}, err
				}
			}
		}
		b.Add(v)
	}
	return b.Build(), nil
}

// Drain drains an iterator into a slice preserving arrival order (duplicates
// kept); used by operators that materialize inputs and by tests.
func Drain(it Iterator) ([]value.Value, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []value.Value
	for {
		v, ok, err := it.Next()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, v)
	}
}

// --- Leaf iterators ---

// TableScan reads a stored table.
type TableScan struct {
	Ctx   *Ctx
	Table string
	rows  []value.Value
	i     int
}

// Open resolves the table.
func (s *TableScan) Open() error {
	t, ok := s.Ctx.DB.Table(s.Table)
	if !ok {
		return fmt.Errorf("exec: unknown table %s", s.Table)
	}
	s.rows = t.Rows()
	s.i = 0
	return nil
}

// Next returns the next row.
func (s *TableScan) Next() (value.Value, bool, error) {
	if s.i >= len(s.rows) {
		return value.Value{}, false, nil
	}
	if err := s.Ctx.check(); err != nil {
		return value.Value{}, false, err
	}
	if err := faultinject.Hit(faultinject.PointScan); err != nil {
		return value.Value{}, false, err
	}
	v := s.rows[s.i]
	s.i++
	return v, true, nil
}

// Close releases the row slice.
func (s *TableScan) Close() error { s.rows = nil; return nil }

// SliceScan iterates a fixed slice; used by tests and by operators that
// materialize intermediate results.
type SliceScan struct {
	Rows []value.Value
	i    int
}

// Open resets the cursor.
func (s *SliceScan) Open() error { s.i = 0; return nil }

// Next returns the next element.
func (s *SliceScan) Next() (value.Value, bool, error) {
	if s.i >= len(s.Rows) {
		return value.Value{}, false, nil
	}
	v := s.Rows[s.i]
	s.i++
	return v, true, nil
}

// Close is a no-op.
func (s *SliceScan) Close() error { return nil }

// EvalScan evaluates a closed set-typed TM expression with the naive
// evaluator and iterates its elements — the physical form of algebra.EvalNode.
type EvalScan struct {
	Ctx   *Ctx
	Expr  tmql.Expr
	elems []value.Value
	i     int
}

// Open evaluates the expression.
func (s *EvalScan) Open() error {
	v, err := s.Ctx.evalIn(s.Expr, nil)
	if err != nil {
		return err
	}
	if v.Kind() != value.KindSet && v.Kind() != value.KindList {
		return fmt.Errorf("exec: EvalScan expression yielded %s, not a collection", v)
	}
	s.elems = v.Elems()
	s.i = 0
	return nil
}

// Next returns the next element.
func (s *EvalScan) Next() (value.Value, bool, error) {
	if s.i >= len(s.elems) {
		return value.Value{}, false, nil
	}
	v := s.elems[s.i]
	s.i++
	return v, true, nil
}

// Close releases the element slice.
func (s *EvalScan) Close() error { s.elems = nil; return nil }
