package exec

import (
	"fmt"

	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// MergeNestJoin is the sort-merge implementation of the nest join: both
// inputs are sorted by their equi-keys; a single merge pass pairs each run of
// equal-keyed left elements with the matching right run. As §6 requires, the
// output order follows the left operand, each left element appearing exactly
// once with its full group.
//
// Only the nest-join variant of the merge join is provided: the inner merge
// join is subsumed by HashJoin/NLJoin in the planner, while the merge *nest*
// join exists to demonstrate §6's point that any common join method adapts.
type MergeNestJoin struct {
	Ctx *Ctx
	// L/R are the row inputs; BL/BR, when set, replace them with batch-native
	// inputs whose sorted runs are built batch-at-a-time (per-batch
	// governance, no row-adapter hop). Either form feeds the same comparator,
	// so the runs — and the join output — are byte-identical.
	L, R         Iterator
	BL, BR       BatchIterator
	LVar, RVar   string
	LKeys, RKeys []tmql.Expr
	Residual     tmql.Expr
	Fn           tmql.Expr
	Label        string

	left  []sortedRow
	right []sortedRow
	li    int
	rlo   int
}

// Open drains and sorts both inputs by key.
func (j *MergeNestJoin) Open() error {
	if len(j.LKeys) == 0 || len(j.LKeys) != len(j.RKeys) {
		return fmt.Errorf("exec: MergeNestJoin needs matching non-empty key lists")
	}
	var err error
	if j.BL != nil {
		j.left, err = drainSortedBatches(j.Ctx, j.BL, j.LVar, j.LKeys)
	} else {
		j.left, err = drainSorted(j.Ctx, j.L, j.LVar, j.LKeys)
	}
	if err != nil {
		return err
	}
	if j.BR != nil {
		j.right, err = drainSortedBatches(j.Ctx, j.BR, j.RVar, j.RKeys)
	} else {
		j.right, err = drainSorted(j.Ctx, j.R, j.RVar, j.RKeys)
	}
	if err != nil {
		return err
	}
	j.li, j.rlo = 0, 0
	return nil
}

func drainSorted(c *Ctx, in Iterator, varName string, keys []tmql.Expr) ([]sortedRow, error) {
	rows, err := Drain(in)
	if err != nil {
		return nil, err
	}
	out := make([]sortedRow, len(rows))
	for i, v := range rows {
		if err := sortBuildCheck(c); err != nil {
			return nil, err
		}
		k, err := evalKey(c, keys, varName, v)
		if err != nil {
			return nil, err
		}
		out[i] = sortedRow{key: k, v: v}
	}
	sortRowsStable(out)
	return out, nil
}

// Next emits the next left element with its group.
func (j *MergeNestJoin) Next() (value.Value, bool, error) {
	if j.li >= len(j.left) {
		return value.Value{}, false, nil
	}
	if err := j.Ctx.check(); err != nil {
		return value.Value{}, false, err
	}
	l := j.left[j.li]
	j.li++
	// Advance the right cursor to the first key ≥ l.key. Because the left is
	// also sorted, rlo never moves backwards across Next calls.
	for j.rlo < len(j.right) && value.Compare(j.right[j.rlo].key, l.key) < 0 {
		j.rlo++
	}
	group := value.NewSetBuilder(0)
	for ri := j.rlo; ri < len(j.right) && value.Compare(j.right[ri].key, l.key) == 0; ri++ {
		r := j.right[ri]
		env := env2(j.LVar, l.v, j.RVar, r.v)
		match, err := j.Ctx.evalPred(j.Residual, env)
		if err != nil {
			return value.Value{}, false, err
		}
		if !match {
			continue
		}
		g, err := j.Ctx.evalIn(j.Fn, env)
		if err != nil {
			return value.Value{}, false, err
		}
		group.Add(g)
	}
	return l.v.Extend(j.Label, group.Build()), true, nil
}

// Close releases the sorted runs.
func (j *MergeNestJoin) Close() error {
	j.left, j.right = nil, nil
	return nil
}
