package exec

import (
	"sync"
	"sync/atomic"
	"time"

	"tmdb/internal/faultinject"
)

// Morsel-driven scheduling: the query's single execution runtime. Instead of
// dedicating a worker to a whole partition (the PR 2 exchange design), work
// is cut into morsels — batch-sized units, at most MorselSize rows each —
// that start on a home worker's deque and can be stolen by any worker that
// runs dry, in the spirit of HyPer's morsel-driven parallelism. Degree is a
// resource (the pool size), not a plan shape: the same operators run at any
// worker count, and skewed inputs keep every worker busy because idle
// workers pull morsels from loaded deques.
//
// Determinism contract: a morsel's output goes to a statically assigned slot
// (task index, or (partition, fragment) coordinates), and slots are
// concatenated in static order after the pool joins — so which worker ran a
// morsel, and in what interleaving, is invisible in the result. Together
// with the set canonicalization in Collect, output is byte-identical to
// serial execution at any degree and any steal schedule.
//
// Governor contract: the scheduler's morsel loop owns the per-morsel
// cancellation/deadline/budget poll and the sched.morsel fault point
// (morselGate), so every scheduled operator inherits governance and chaos
// coverage for free; operators add only their own per-row points
// (hash.build, hash.probe, sort.build). Workers always drain — an error,
// cancellation, or panic flips a stop flag that makes the remaining morsels
// no-ops, every worker joins, and the first error (by static task index) or
// panic is surfaced on the calling goroutine. No goroutine outlives run().

// SchedConfig sizes a query's morsel Scheduler.
type SchedConfig struct {
	// Workers is the worker-pool size; values below 1 mean 1 (every morsel
	// runs inline on the calling goroutine's forked context).
	Workers int
	// MorselSize is the number of rows per morsel (0 = DefaultBatchSize,
	// clamped to MaxBatchSize). The exchange feeds batches of this size, and
	// probe morsels are at most this many rows by construction.
	MorselSize int
	// NoSteal pins every morsel to its home worker — the partition-dedicated
	// assignment the scheduler replaced. Results are identical either way;
	// the knob exists as an ablation for benchmarks (B10 measures steal vs
	// no-steal under skew) and for debugging.
	NoSteal bool
}

// SchedStats are one query's scheduler counters, exposed on engine.Result
// and aggregated in server /stats.
type SchedStats struct {
	// Dispatched counts morsels run by their home worker, including morsels
	// consumed from the exchange's shared feed queue.
	Dispatched int64 `json:"dispatched"`
	// Stolen counts morsels run by an idle worker that stole them from
	// another worker's deque.
	Stolen int64 `json:"stolen"`
	// BusyNanos is the wall-clock time workers spent running morsels,
	// summed across workers (not elapsed time: at degree N it can approach
	// N× the phase's elapsed time).
	BusyNanos int64 `json:"busy_nanos"`
}

// Scheduler is the query-wide morsel scheduler. It holds configuration and
// stats only — each run()/pump() call spawns and joins its own pool — so it
// is safe for concurrent and reentrant use (nested scheduled operators
// simply run nested pools against the same counters).
type Scheduler struct {
	workers int
	morsel  int
	noSteal bool

	dispatched atomic.Int64
	stolen     atomic.Int64
	busy       atomic.Int64
}

// NewScheduler returns a scheduler for cfg.
func NewScheduler(cfg SchedConfig) *Scheduler {
	w := cfg.Workers
	if w < 1 {
		w = 1
	}
	return &Scheduler{workers: w, morsel: NormalizeBatchSize(cfg.MorselSize), noSteal: cfg.NoSteal}
}

// Stats snapshots the scheduler's counters.
func (s *Scheduler) Stats() SchedStats {
	return SchedStats{
		Dispatched: s.dispatched.Load(),
		Stolen:     s.stolen.Load(),
		BusyNanos:  s.busy.Load(),
	}
}

// Workers returns the configured pool size.
func (s *Scheduler) Workers() int { return s.workers }

// MorselSize returns the effective rows-per-morsel.
func (s *Scheduler) MorselSize() int { return s.morsel }

// scheduler returns the query's shared scheduler, or a private one sized
// from the operator's own hints when the context carries none (exec used
// standalone, as in tests).
func (c *Ctx) scheduler(degree, batchSize int) *Scheduler {
	if c.Sched != nil {
		return c.Sched
	}
	return NewScheduler(SchedConfig{Workers: degree, MorselSize: batchSize})
}

// morselTask is one unit of schedulable work: fn runs on some worker's
// forked context; home names the deque it is enqueued on (mod pool size).
type morselTask struct {
	home int
	fn   func(ctx *Ctx) error
}

// morselGate is the per-morsel governor contract: one cancellation/deadline/
// budget poll plus one pass through the sched.morsel fault point before the
// morsel's work runs.
func morselGate(c *Ctx) error {
	if err := c.checkBatch(); err != nil {
		return err
	}
	return faultinject.Hit(faultinject.PointSchedMorsel)
}

// taskDeque is one worker's queue of task indices. The owner pops the front;
// thieves take the back, so owner and thieves contend only when one task
// remains.
type taskDeque struct {
	mu    sync.Mutex
	tasks []int
}

func (d *taskDeque) popFront() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return 0, false
	}
	t := d.tasks[0]
	d.tasks = d.tasks[1:]
	return t, true
}

func (d *taskDeque) popBack() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.tasks) == 0 {
		return 0, false
	}
	t := d.tasks[len(d.tasks)-1]
	d.tasks = d.tasks[:len(d.tasks)-1]
	return t, true
}

// run executes tasks to completion on the worker pool. Task i starts on
// deque tasks[i].home mod the effective pool size; a worker drains its own
// deque front-first and, when empty, scans the other deques round-robin and
// steals from their backs (unless NoSteal pins assignments). maxWorkers
// caps the pool below the configured size — operators pass 1 for inputs too
// small to pay for a fan-out, which runs every task inline in index order.
//
// Each worker runs on a forked Ctx whose evaluation steps are folded back
// into c after the pool joins, so serial and parallel plans report identical
// EvalSteps. Errors are recorded per static task index and the lowest-index
// error is returned; a panicking morsel stops the pool, lets every worker
// drain, and re-raises on the calling goroutine.
func (s *Scheduler) run(c *Ctx, tasks []morselTask, maxWorkers int) error {
	if len(tasks) == 0 {
		return nil
	}
	workers := s.workers
	if workers > maxWorkers {
		workers = maxWorkers
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	errs := make([]error, len(tasks))
	if workers <= 1 {
		// Inline: same morsels, same gates, no goroutines.
		ctx := c.fork()
		t0 := time.Now()
		var done int64
		for i := range tasks {
			if errs[i] = morselGate(ctx); errs[i] == nil {
				errs[i] = tasks[i].fn(ctx)
			}
			done++
			if errs[i] != nil {
				break
			}
		}
		c.Ev.Steps += ctx.Ev.Steps
		s.dispatched.Add(done)
		s.busy.Add(int64(time.Since(t0)))
		return firstError(errs)
	}

	deques := make([]taskDeque, workers)
	for i := range tasks {
		d := &deques[tasks[i].home%workers]
		d.tasks = append(d.tasks, i)
	}
	var stop atomic.Bool
	steps := make([]int64, workers)
	panics := make([]any, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			ctx := c.fork()
			defer func() {
				steps[w] = ctx.Ev.Steps
				if p := recover(); p != nil {
					panics[w] = p
					stop.Store(true)
				}
			}()
			var disp, stolen, busy int64
			defer func() {
				s.dispatched.Add(disp)
				s.stolen.Add(stolen)
				s.busy.Add(busy)
			}()
			for !stop.Load() {
				ti, ok := deques[w].popFront()
				theft := false
				if !ok && !s.noSteal {
					for v := 1; v < workers && !ok; v++ {
						ti, ok = deques[(w+v)%workers].popBack()
					}
					theft = ok
				}
				if !ok {
					return
				}
				m0 := time.Now()
				if err := morselGate(ctx); err != nil {
					errs[ti] = err
					stop.Store(true)
				} else if err := tasks[ti].fn(ctx); err != nil {
					errs[ti] = err
					stop.Store(true)
				}
				busy += int64(time.Since(m0))
				if theft {
					stolen++
				} else {
					disp++
				}
			}
		}(w)
	}
	wg.Wait()
	for _, st := range steps {
		c.Ev.Steps += st
	}
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return firstError(errs)
}

// pump is the streaming half of the exchange: feed produces morsels on the
// calling goroutine (which owns the source iterator) while pool workers
// consume them from a shared queue. The queue is a channel and therefore
// self-balancing — a busy worker simply takes fewer morsels, so this edge
// needs no stealing and every consumed morsel counts as dispatched. Each
// consumed morsel passes morselGate; consumers run on forked contexts whose
// steps fold back into c after the pool joins.
//
// Error and drain discipline: consumers always drain the channel — even
// after an error or panic — so the feeder can never block on a send; the
// feeder stops on the stop flag, closes the channel, and waits for every
// consumer before returning. Feeder errors take precedence, then consumer
// errors by worker index.
func (s *Scheduler) pump(c *Ctx, feed func() (seqRows, bool, error),
	consume func(w int, ctx *Ctx, sb seqRows) error) error {
	workers := s.workers
	if workers < 1 {
		workers = 1
	}
	ch := make(chan seqRows, workers)
	var stop atomic.Bool
	errs := make([]error, workers)
	steps := make([]int64, workers)
	panics := make([]any, workers)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			ctx := c.fork()
			var disp, busy int64
			for sb := range ch {
				if stop.Load() {
					continue
				}
				m0 := time.Now()
				func() {
					defer func() {
						if p := recover(); p != nil {
							panics[w] = p
							stop.Store(true)
						}
					}()
					if err := morselGate(ctx); err != nil {
						errs[w] = err
						stop.Store(true)
						return
					}
					if err := consume(w, ctx, sb); err != nil {
						errs[w] = err
						stop.Store(true)
						return
					}
					disp++
				}()
				busy += int64(time.Since(m0))
			}
			steps[w] = ctx.Ev.Steps
			s.dispatched.Add(disp)
			s.busy.Add(busy)
		}(w)
	}
	var feedErr error
	for !stop.Load() {
		sb, ok, err := feed()
		if err != nil {
			feedErr = err
			break
		}
		if !ok {
			break
		}
		ch <- sb
	}
	close(ch)
	wg.Wait()
	for _, st := range steps {
		c.Ev.Steps += st
	}
	for _, p := range panics {
		if p != nil {
			panic(p)
		}
	}
	return firstError(append([]error{feedErr}, errs...))
}
