package exec

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// NLJoin is the nested-loop implementation of the flat join family. The right
// input is materialized once in Open and rescanned per left element; the
// predicate may be arbitrary (no equi-key required). Kind selects inner,
// semi, anti, or left-outer behavior.
type NLJoin struct {
	Ctx        *Ctx
	Kind       algebra.JoinKind
	L, R       Iterator
	LVar, RVar string
	Pred       tmql.Expr
	// RElem is needed by the outer join to build the NULL padding; nil
	// otherwise.
	RElem *types.Type

	right      []value.Value
	cur        value.Value
	ri         int
	matchedCur bool
	state      nlState
	pad        value.Value
}

type nlState uint8

const (
	nlNeedLeft nlState = iota
	nlScanRight
	nlDone
)

// Open materializes the right input and opens the left.
func (j *NLJoin) Open() error {
	var err error
	j.right, err = Drain(j.R)
	if err != nil {
		return err
	}
	if j.Kind == algebra.JoinLeftOuter {
		if j.RElem == nil {
			return fmt.Errorf("exec: outer NLJoin needs RElem for NULL padding")
		}
		j.pad = nullTuple(j.RElem)
	}
	j.state = nlNeedLeft
	return j.L.Open()
}

// nullTuple builds a tuple of the given type with NULL in every attribute —
// the relational outerjoin padding (TM itself has no NULLs; this exists for
// the Ganski–Wong baseline).
func nullTuple(t *types.Type) value.Value {
	fs := make([]value.Field, 0, len(t.Fields))
	for _, f := range t.Fields {
		fs = append(fs, value.F(f.Label, value.Null))
	}
	return value.TupleOf(fs...)
}

// Next produces the next output tuple according to the join kind.
func (j *NLJoin) Next() (value.Value, bool, error) {
	for {
		switch j.state {
		case nlDone:
			return value.Value{}, false, nil
		case nlNeedLeft:
			l, ok, err := j.L.Next()
			if err != nil {
				return value.Value{}, false, err
			}
			if !ok {
				j.state = nlDone
				return value.Value{}, false, nil
			}
			if err := j.Ctx.check(); err != nil {
				return value.Value{}, false, err
			}
			j.cur = l
			switch j.Kind {
			case algebra.JoinSemi, algebra.JoinAnti:
				matched, err := j.anyMatch()
				if err != nil {
					return value.Value{}, false, err
				}
				if matched == (j.Kind == algebra.JoinSemi) {
					return j.cur, true, nil
				}
				continue
			default:
				j.ri = 0
				j.matchedCur = false
				j.state = nlScanRight
			}
		case nlScanRight:
			for j.ri < len(j.right) {
				r := j.right[j.ri]
				j.ri++
				ok, err := j.Ctx.evalPred(j.Pred, env2(j.LVar, j.cur, j.RVar, r))
				if err != nil {
					return value.Value{}, false, err
				}
				if ok {
					j.matchedCur = true
					return j.cur.Concat(r), true, nil
				}
			}
			// Right side exhausted for this left element.
			j.state = nlNeedLeft
			if j.Kind == algebra.JoinLeftOuter && !j.matchedCur {
				return j.cur.Concat(j.pad), true, nil
			}
		}
	}
}

// anyMatch reports whether the current left element matches any right
// element (semi/antijoin early-out probe).
func (j *NLJoin) anyMatch() (bool, error) {
	for _, r := range j.right {
		ok, err := j.Ctx.evalPred(j.Pred, env2(j.LVar, j.cur, j.RVar, r))
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// Close closes the left input and releases the materialized right side.
func (j *NLJoin) Close() error {
	j.right = nil
	return j.L.Close()
}

// NLNestJoin is the nested-loop implementation of the paper's nest join
// X △[Q, G; a] Y: per left element the full right side is scanned, matching
// elements pass through the join function G, and the left element is emitted
// exactly once, extended with the (possibly empty) set of G-images. This is
// the implementation of reference — any predicate, no ordering or key
// assumptions — and the baseline the hash and merge variants are verified
// against.
type NLNestJoin struct {
	Ctx        *Ctx
	L, R       Iterator
	LVar, RVar string
	Pred       tmql.Expr
	Fn         tmql.Expr
	Label      string

	right []value.Value
}

// Open materializes the right input and opens the left.
func (j *NLNestJoin) Open() error {
	var err error
	j.right, err = Drain(j.R)
	if err != nil {
		return err
	}
	return j.L.Open()
}

// Next emits the next left element extended with its group.
func (j *NLNestJoin) Next() (value.Value, bool, error) {
	l, ok, err := j.L.Next()
	if err != nil || !ok {
		return value.Value{}, false, err
	}
	if err := j.Ctx.check(); err != nil {
		return value.Value{}, false, err
	}
	group := value.NewSetBuilder(0)
	for _, r := range j.right {
		env := env2(j.LVar, l, j.RVar, r)
		match, err := j.Ctx.evalPred(j.Pred, env)
		if err != nil {
			return value.Value{}, false, err
		}
		if !match {
			continue
		}
		g, err := j.Ctx.evalIn(j.Fn, env)
		if err != nil {
			return value.Value{}, false, err
		}
		group.Add(g)
	}
	return l.Extend(j.Label, group.Build()), true, nil
}

// Close closes the left input and releases the materialized right side.
func (j *NLNestJoin) Close() error {
	j.right = nil
	return j.L.Close()
}
