package exec

import (
	"tmdb/internal/value"
)

// Vectorized execution: operators that move batches of up to N rows per call
// instead of one row per Next(). The batch protocol exists to amortize the
// two per-row costs that dominate B-series profiles — interface dispatch and
// governor polling — into per-batch costs, and to let hot operators run tight
// loops over row slices. Results are byte-identical to row-at-a-time
// execution because every query result passes through the set
// canonicalization in Collect/CollectBatches, which erases arrival order and
// duplicates.
//
// Protocol:
//
//   - A Batch is owned by the operator that returned it and is valid only
//     until the next NextBatch or Close on that operator. Consumers copy the
//     rows they retain (value.Value is an immutable struct, so retaining a
//     row is a struct copy — the batch's backing slice is what gets reused).
//   - NextBatch never returns an empty batch: ok=false is the only
//     end-of-input signal.
//   - Batched operators poll the governor once per batch (Ctx.checkBatch)
//     instead of once per checkEvery rows, and hit their fault-injection
//     points once per batch. MaxBatchSize caps the rows between polls so the
//     cancellation latency bound is preserved at any configured size; slow
//     per-row predicate evaluation is still covered by the evaluator's own
//     Check hook (every 256 eval steps), independent of batch size.
//   - Build-byte budgets are accounted per batch (the sum of the batch's
//     per-row charges), so a budget overrun is detected at the end of the
//     batch that exceeded it rather than on the exact row.

// DefaultBatchSize is the batch row capacity used when a size is not
// explicitly configured (Options.BatchSize = 0 with batching selected).
const DefaultBatchSize = 1024

// MaxBatchSize caps configured batch sizes: it bounds the rows processed
// between governor polls, preserving cancellation latency bounds.
const MaxBatchSize = 4096

// NormalizeBatchSize maps a requested size to an effective one: non-positive
// requests get the default, oversized ones are clamped to MaxBatchSize.
func NormalizeBatchSize(n int) int {
	if n <= 0 {
		return DefaultBatchSize
	}
	if n > MaxBatchSize {
		return MaxBatchSize
	}
	return n
}

// Batch carries up to one batch size worth of rows plus a columnar scratch
// arena for their encoded keys (filled on demand by encodeKeys, reusing the
// value.AppendKey encoding the hash join family keys on). The arena is
// columnar in the sense that all key bytes live in one contiguous buffer
// delimited by offsets, not one allocation per row.
type Batch struct {
	Rows []value.Value
	keys []byte
	offs []uint32
}

// Len returns the number of rows in the batch.
func (b *Batch) Len() int { return len(b.Rows) }

// reset clears the batch for refilling, retaining capacity.
func (b *Batch) reset() {
	b.Rows = b.Rows[:0]
	b.keys = b.keys[:0]
	b.offs = b.offs[:0]
}

// Key returns row i's encoded key bytes; valid only after encodeKeys.
func (b *Batch) Key(i int) []byte { return b.keys[b.offs[i]:b.offs[i+1]] }

// encodeKeys fills the key arena with every row's encoded key. The encoder's
// scratch state and the batch arena are both reused across batches, so a
// steady-state batch encodes keys with zero allocations.
func (b *Batch) encodeKeys(enc *keyEncoder) error {
	b.keys = b.keys[:0]
	b.offs = append(b.offs[:0], 0)
	for _, v := range b.Rows {
		buf, err := enc.appendKey(b.keys, v)
		if err != nil {
			return err
		}
		b.keys = buf
		b.offs = append(b.offs, uint32(len(buf)))
	}
	return nil
}

// BatchIterator is the vectorized operator interface. Usage mirrors
// Iterator: Open, repeated NextBatch until ok=false, Close; single-use.
type BatchIterator interface {
	Open() error
	NextBatch() (b *Batch, ok bool, err error)
	Close() error
}

// checkBatch is the per-batch governance poll of every batched operator
// loop: a direct governor poll (no tick mask — batches already space the
// polls), free for ungoverned queries.
func (c *Ctx) checkBatch() error {
	if c.Gov == nil {
		return nil
	}
	return c.Gov.Err()
}

// RowsToBatch adapts a row iterator to the batch protocol, buffering up to
// Size rows per batch. It is how cold operators (sorts, set operations,
// merge/NL joins) participate in batched plans.
type RowsToBatch struct {
	It   Iterator
	Size int
	b    Batch
}

// Open opens the underlying iterator.
func (a *RowsToBatch) Open() error {
	a.Size = NormalizeBatchSize(a.Size)
	return a.It.Open()
}

// NextBatch buffers up to Size rows from the underlying iterator.
func (a *RowsToBatch) NextBatch() (*Batch, bool, error) {
	a.b.reset()
	for len(a.b.Rows) < a.Size {
		v, ok, err := a.It.Next()
		if err != nil {
			return nil, false, err
		}
		if !ok {
			break
		}
		a.b.Rows = append(a.b.Rows, v)
	}
	if len(a.b.Rows) == 0 {
		return nil, false, nil
	}
	return &a.b, true, nil
}

// Close closes the underlying iterator.
func (a *RowsToBatch) Close() error { return a.It.Close() }

// BatchToRows adapts a batch iterator to the row protocol, letting row-only
// consumers (and cold row operators above a batched subtree) drain it.
type BatchToRows struct {
	In  BatchIterator
	cur *Batch
	i   int
}

// Open opens the underlying batch iterator.
func (a *BatchToRows) Open() error {
	a.cur, a.i = nil, 0
	return a.In.Open()
}

// Next returns the next row of the current batch, fetching the next batch
// when it is exhausted.
func (a *BatchToRows) Next() (value.Value, bool, error) {
	for a.cur == nil || a.i >= a.cur.Len() {
		b, ok, err := a.In.NextBatch()
		if err != nil || !ok {
			return value.Value{}, false, err
		}
		a.cur, a.i = b, 0
	}
	v := a.cur.Rows[a.i]
	a.i++
	return v, true, nil
}

// Close closes the underlying batch iterator.
func (a *BatchToRows) Close() error {
	a.cur = nil
	return a.In.Close()
}

// CollectBatches drains a batch iterator into a canonical set value.
func CollectBatches(it BatchIterator) (value.Value, error) {
	return CollectBatchesGoverned(nil, it)
}

// CollectBatchesGoverned is the batched form of CollectGoverned: every batch
// of rows is accounted against the row budget (pre-deduplication) and the
// cancel state is polled once per batch.
func CollectBatchesGoverned(gov *Governor, it BatchIterator) (value.Value, error) {
	if err := it.Open(); err != nil {
		return value.Value{}, err
	}
	defer it.Close()
	b := value.NewSetBuilder(0)
	for {
		bt, ok, err := it.NextBatch()
		if err != nil {
			return value.Value{}, err
		}
		if !ok {
			break
		}
		if gov != nil {
			if err := gov.AddRows(int64(bt.Len())); err != nil {
				return value.Value{}, err
			}
			if err := gov.Err(); err != nil {
				return value.Value{}, err
			}
		}
		for _, v := range bt.Rows {
			b.Add(v)
		}
	}
	return b.Build(), nil
}

// DrainBatches drains a batch iterator into a row slice preserving arrival
// order (duplicates kept); used by tests and adapters.
func DrainBatches(it BatchIterator) ([]value.Value, error) {
	if err := it.Open(); err != nil {
		return nil, err
	}
	defer it.Close()
	var out []value.Value
	for {
		bt, ok, err := it.NextBatch()
		if err != nil {
			return nil, err
		}
		if !ok {
			return out, nil
		}
		out = append(out, bt.Rows...)
	}
}
