package exec

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/tmql"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

func collectBatches(t *testing.T, it BatchIterator) value.Value {
	t.Helper()
	v, err := CollectBatches(it)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// batchSizes straddles the interesting boundaries: single-row batches, a
// partial final batch, and the default.
var batchSizes = []int{1, 3, 64, DefaultBatchSize}

// TestAdaptersRoundTrip checks rows → batches → rows preserves content and
// order at every batch size.
func TestAdaptersRoundTrip(t *testing.T) {
	rows := genRows(257, 13, "k", "v")
	for _, size := range batchSizes {
		got, err := Drain(&BatchToRows{In: &RowsToBatch{It: &SliceScan{Rows: rows}, Size: size}})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(rows) {
			t.Fatalf("size=%d: %d rows out, want %d", size, len(got), len(rows))
		}
		for i := range rows {
			if !value.Equal(got[i], rows[i]) {
				t.Fatalf("size=%d: row %d differs", size, i)
			}
		}
	}
}

// TestBatchPipelineMatchesRow runs scan → filter → map → distinct in both
// engines at every batch size, with predicates and projections inside and
// outside the compiled subset, asserting canonical equality.
func TestBatchPipelineMatchesRow(t *testing.T) {
	rows := genRows(500, 23, "k", "v")
	cases := []struct {
		name string
		pred string // filter over x
		out  string // projection over x
	}{
		// Compiled: comparisons and field selections only.
		{"compiled", "x.k <= 11", "(a = x.k, b = x.v)"},
		// Conjunction still compiled; projection a bare scalar.
		{"compiled-and", "x.k <= 11 and x.v >= 20", "x.k"},
		// Arithmetic forces the generic fallback on both sides.
		{"generic", "x.v % 3 = 0", "(m = x.v * 2)"},
	}
	for _, tc := range cases {
		ctx := NewCtx(nil)
		row := &Distinct{Ctx: ctx, In: &MapIter{Ctx: ctx, In: &Filter{
			Ctx: ctx, In: &SliceScan{Rows: rows}, Var: "x", Pred: pred(tc.pred)},
			Var: "x", Out: pred(tc.out)}}
		want := collect(t, row)
		for _, size := range batchSizes {
			bctx := NewCtx(nil)
			bat := &BatchDistinct{Ctx: bctx, In: &BatchMap{Ctx: bctx, In: &BatchFilter{
				Ctx: bctx, In: &BatchSliceScan{Rows: rows, Size: size}, Var: "x", Pred: pred(tc.pred)},
				Var: "x", Out: pred(tc.out)}}
			got := collectBatches(t, bat)
			if !value.Equal(got, want) {
				t.Errorf("%s/size=%d: batch differs from row:\nwant %s\ngot  %s", tc.name, size, want, got)
			}
		}
	}
}

// TestBatchHashJoinMatchesRow runs every flat join kind, with and without
// residuals (compiled and generic), at every batch size.
func TestBatchHashJoinMatchesRow(t *testing.T) {
	residuals := map[string]tmql.Expr{
		"nil": nil,
		// In the compiled subset: field-vs-field comparison.
		"compiled": pred("x.v <= y.w"),
		// Arithmetic forces generic residual evaluation.
		"generic": pred("x.v <= y.w + 250"),
	}
	relem := types.Tuple(types.F("j", types.Int), types.F("w", types.Int))
	for _, kind := range []algebra.JoinKind{algebra.JoinInner, algebra.JoinSemi, algebra.JoinAnti, algebra.JoinLeftOuter} {
		for rname, residual := range residuals {
			for _, n := range []int{0, 7, 500} {
				l, r := genRows(n, 13, "k", "v"), genRows(n/2, 7, "j", "w")
				ctx := NewCtx(nil)
				serial := &HashJoin{
					Ctx: ctx, Kind: kind, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
					LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.j")},
					Residual: residual, RElem: relem,
				}
				want := collect(t, serial)
				for _, size := range batchSizes {
					name := fmt.Sprintf("%s/%s/n=%d/size=%d", kind, rname, n, size)
					bctx := NewCtx(nil)
					bj := &BatchHashJoin{
						Ctx: bctx, Kind: kind,
						L: &BatchSliceScan{Rows: l, Size: size}, R: &BatchSliceScan{Rows: r, Size: size},
						LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.j")},
						Residual: residual, RElem: relem,
					}
					got := collectBatches(t, bj)
					if !value.Equal(got, want) {
						t.Errorf("%s: batch join differs from row:\nwant %s\ngot  %s", name, want, got)
					}
				}
			}
		}
	}
}

// TestParHashJoinBatchedInputs feeds the exchange batched inputs directly
// (BL/BR) and streams the output via NextBatch, asserting equality with the
// serial row join.
func TestParHashJoinBatchedInputs(t *testing.T) {
	l, r := genRows(600, 13, "k", "v"), genRows(300, 7, "j", "w")
	relem := types.Tuple(types.F("j", types.Int), types.F("w", types.Int))
	ctx := NewCtx(nil)
	serial := &HashJoin{
		Ctx: ctx, Kind: algebra.JoinInner, L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
		LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.j")},
		RElem: relem,
	}
	want := collect(t, serial)
	for _, size := range batchSizes {
		for _, degree := range []int{2, 4} {
			par := &ParHashJoin{
				Ctx: NewCtx(nil), Kind: algebra.JoinInner,
				BL: &BatchSliceScan{Rows: l, Size: size}, BR: &BatchSliceScan{Rows: r, Size: size},
				LVar: "x", RVar: "y", LKeys: []tmql.Expr{pred("x.k")}, RKeys: []tmql.Expr{pred("y.j")},
				RElem: relem, Degree: degree, BatchSize: size,
			}
			got := collectBatches(t, par)
			if !value.Equal(got, want) {
				t.Errorf("size=%d/p=%d: batched parallel join differs:\nwant %s\ngot  %s", size, degree, want, got)
			}
		}
	}
}

// TestCompiledPredicateErrorsMatchGeneric pins error parity: a predicate
// whose field selection fails must produce the evaluator's exact error
// whether it ran compiled or generic.
func TestCompiledPredicateErrorsMatchGeneric(t *testing.T) {
	rows := []value.Value{tup("k", 1, "v", 2)}
	rowIt := &Filter{Ctx: NewCtx(nil), In: &SliceScan{Rows: rows}, Var: "x", Pred: pred("x.missing = 1")}
	_, rowErr := Collect(rowIt)
	batIt := &BatchFilter{Ctx: NewCtx(nil), In: &BatchSliceScan{Rows: rows}, Var: "x", Pred: pred("x.missing = 1")}
	_, batErr := CollectBatches(batIt)
	if rowErr == nil || batErr == nil {
		t.Fatalf("expected errors, got row=%v batch=%v", rowErr, batErr)
	}
	if rowErr.Error() != batErr.Error() {
		t.Errorf("error mismatch:\nrow   %v\nbatch %v", rowErr, batErr)
	}
}

// TestBatchDistinctIdentity checks BatchDistinct's encoding-based dedup
// agrees with the row Distinct's value.Key dedup on values of every kind.
func TestBatchDistinctIdentity(t *testing.T) {
	rows := []value.Value{
		value.Int(1), value.Float(1), // ints normalize to floats in both identities
		value.Int(2), value.Str("2"),
		tup("a", 1, "b", 2), tup("b", 2, "a", 1), // label-sorted: equal tuples
		value.SetOf(value.Int(1), value.Int(2)), value.SetOf(value.Int(2), value.Int(1)),
	}
	want := collect(t, &Distinct{In: &SliceScan{Rows: rows}})
	got := collectBatches(t, &BatchDistinct{Ctx: NewCtx(nil), In: &BatchSliceScan{Rows: rows, Size: 2}})
	if !value.Equal(got, want) {
		t.Errorf("distinct identity mismatch:\nwant %s\ngot  %s", want, got)
	}
}

// TestSortBatchBuildMatchesRow drains Sort through its batch-native build at
// every batch size and asserts the emitted sequence — not just the set — is
// byte-identical to the row build's.
func TestSortBatchBuildMatchesRow(t *testing.T) {
	rows := genRows(500, 23, "k", "v")
	keys := []tmql.Expr{pred("x.k")}
	want, err := Drain(&Sort{Ctx: NewCtx(nil), In: &SliceScan{Rows: rows}, Var: "x", Keys: keys})
	if err != nil {
		t.Fatal(err)
	}
	for _, size := range batchSizes {
		got, err := Drain(&Sort{Ctx: NewCtx(nil), BIn: &BatchSliceScan{Rows: rows, Size: size}, Var: "x", Keys: keys})
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("size=%d: %d rows out, want %d", size, len(got), len(want))
		}
		for i := range want {
			if value.Key(got[i]) != value.Key(want[i]) {
				t.Fatalf("size=%d: row %d differs from row build", size, i)
			}
		}
	}
}

// TestSortBatchBuildBudget pins the batched sort build's governance: the
// flat per-row build charge is still accounted (summed per batch), so a
// build budget trips exactly as it does on the row path.
func TestSortBatchBuildBudget(t *testing.T) {
	rows := genRows(500, 23, "k", "v")
	gov := NewGovernor(context.Background(), Limits{MaxBuildBytes: 64})
	ctx := NewCtxGoverned(nil, gov)
	s := &Sort{Ctx: ctx, BIn: &BatchSliceScan{Rows: rows, Size: 64}, Var: "x", Keys: []tmql.Expr{pred("x.k")}}
	_, err := Drain(s)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != "build_bytes" {
		t.Fatalf("want build_bytes BudgetError, got %v", err)
	}
}

// TestMergeNestJoinBatchedInputs builds the merge nest join's sorted runs
// from batch inputs (BL/BR) at every batch size and asserts byte-identity
// with the row-input build, with and without a residual.
func TestMergeNestJoinBatchedInputs(t *testing.T) {
	l, r := genRows(400, 13, "k", "v"), genRows(200, 7, "j", "w")
	lk, rk := []tmql.Expr{pred("x.k")}, []tmql.Expr{pred("y.j")}
	for rname, residual := range map[string]tmql.Expr{"nil": nil, "residual": pred("x.v <= y.w")} {
		want := collect(t, &MergeNestJoin{
			Ctx: NewCtx(nil), L: &SliceScan{Rows: l}, R: &SliceScan{Rows: r},
			LVar: "x", RVar: "y", LKeys: lk, RKeys: rk,
			Residual: residual, Fn: pred("y"), Label: "g",
		})
		for _, size := range batchSizes {
			got := collect(t, &MergeNestJoin{
				Ctx: NewCtx(nil), BL: &BatchSliceScan{Rows: l, Size: size}, BR: &BatchSliceScan{Rows: r, Size: size},
				LVar: "x", RVar: "y", LKeys: lk, RKeys: rk,
				Residual: residual, Fn: pred("y"), Label: "g",
			})
			if value.Key(got) != value.Key(want) {
				t.Errorf("%s/size=%d: batched merge nest join differs:\nwant %s\ngot  %s", rname, size, want, got)
			}
		}
	}
}
