// Package schema implements TM schema objects: sorts (named structured
// types), classes with named extensions, and the catalog resolving names to
// types. The paper's running example (§3.2) — classes Employee and Department
// with extensions EMP and DEPT and sort Address — is provided as a ready-made
// catalog for examples and tests.
package schema

import (
	"fmt"
	"sort"

	"tmdb/internal/types"
)

// Sort is a named reusable structured type (e.g. Address, Date).
type Sort struct {
	Name string
	Type *types.Type
}

// Class is a TM class: a named tuple of attributes with an explicitly named
// extension holding its instances.
type Class struct {
	Name      string
	Extension string
	Attrs     *types.Type // tuple type; may reference sorts and classes
}

// Catalog holds the schema: classes (by class and extension name) and sorts.
type Catalog struct {
	classes map[string]*Class
	byExt   map[string]*Class
	sorts   map[string]*Sort
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{
		classes: make(map[string]*Class),
		byExt:   make(map[string]*Class),
		sorts:   make(map[string]*Sort),
	}
}

// AddSort registers a sort; redefinition is an error.
func (c *Catalog) AddSort(name string, t *types.Type) error {
	if _, dup := c.sorts[name]; dup {
		return fmt.Errorf("schema: sort %s already defined", name)
	}
	c.sorts[name] = &Sort{Name: name, Type: t}
	return nil
}

// AddClass registers a class and its extension name.
func (c *Catalog) AddClass(name, extension string, attrs *types.Type) error {
	if attrs == nil || attrs.Kind != types.KTuple {
		return fmt.Errorf("schema: class %s attributes must form a tuple type", name)
	}
	if _, dup := c.classes[name]; dup {
		return fmt.Errorf("schema: class %s already defined", name)
	}
	if _, dup := c.byExt[extension]; dup {
		return fmt.Errorf("schema: extension %s already defined", extension)
	}
	cl := &Class{Name: name, Extension: extension, Attrs: attrs}
	c.classes[name] = cl
	c.byExt[extension] = cl
	return nil
}

// Class returns the class with the given class name.
func (c *Catalog) Class(name string) (*Class, bool) {
	cl, ok := c.classes[name]
	return cl, ok
}

// ClassByExtension returns the class whose extension has the given name.
func (c *Catalog) ClassByExtension(ext string) (*Class, bool) {
	cl, ok := c.byExt[ext]
	return cl, ok
}

// Sort returns the sort with the given name.
func (c *Catalog) Sort(name string) (*Sort, bool) {
	s, ok := c.sorts[name]
	return s, ok
}

// Extensions returns all extension names, sorted.
func (c *Catalog) Extensions() []string {
	out := make([]string, 0, len(c.byExt))
	for e := range c.byExt {
		out = append(out, e)
	}
	sort.Strings(out)
	return out
}

// ElementType returns the fully resolved tuple type of one element of the
// named extension: class attributes with sort references expanded and class
// references replaced by the referenced class's element structure reduced to
// a set of such tuples (one level, which is what the paper's examples use:
// `emps : P Employee`).
func (c *Catalog) ElementType(ext string) (*types.Type, error) {
	cl, ok := c.byExt[ext]
	if !ok {
		return nil, fmt.Errorf("schema: unknown extension %s", ext)
	}
	return c.Resolve(cl.Attrs, map[string]bool{cl.Name: true})
}

// Resolve expands sort and class references inside t. Class references expand
// to the referenced class's resolved attribute tuple; cycles are broken by
// leaving a recursive reference as an opaque Any (complex-object stores
// materialize such references as OIDs; none of the paper's queries traverse
// cycles).
func (c *Catalog) Resolve(t *types.Type, inProgress map[string]bool) (*types.Type, error) {
	if t == nil {
		return nil, fmt.Errorf("schema: nil type")
	}
	switch t.Kind {
	case types.KClass:
		if s, ok := c.sorts[t.Name]; ok {
			return c.Resolve(s.Type, inProgress)
		}
		cl, ok := c.classes[t.Name]
		if !ok {
			return nil, fmt.Errorf("schema: unknown sort or class %s", t.Name)
		}
		if inProgress[t.Name] {
			return types.Any, nil
		}
		inProgress[t.Name] = true
		defer delete(inProgress, t.Name)
		return c.Resolve(cl.Attrs, inProgress)
	case types.KSet:
		e, err := c.Resolve(t.Elem, inProgress)
		if err != nil {
			return nil, err
		}
		return types.SetOf(e), nil
	case types.KList:
		e, err := c.Resolve(t.Elem, inProgress)
		if err != nil {
			return nil, err
		}
		return types.ListOf(e), nil
	case types.KTuple:
		fs := make([]types.Field, len(t.Fields))
		for i, f := range t.Fields {
			e, err := c.Resolve(f.Type, inProgress)
			if err != nil {
				return nil, err
			}
			fs[i] = types.F(f.Label, e)
		}
		return types.Tuple(fs...), nil
	default:
		return t, nil
	}
}

// Company returns the paper's §3.2 example schema:
//
//	SORT Address = (street, nr, city : STRING)
//	CLASS Employee WITH EXTENSION EMP
//	  (name : STRING, address : Address, sal : INT,
//	   children : P (name : STRING, age : INT))
//	CLASS Department WITH EXTENSION DEPT
//	  (name : STRING, address : Address, emps : P Employee)
func Company() *Catalog {
	c := NewCatalog()
	addr := types.Tuple(
		types.F("street", types.String),
		types.F("nr", types.String),
		types.F("city", types.String),
	)
	must(c.AddSort("Address", addr))
	must(c.AddClass("Employee", "EMP", types.Tuple(
		types.F("name", types.String),
		types.F("address", types.Class("Address")),
		types.F("sal", types.Int),
		types.F("children", types.SetOf(types.Tuple(
			types.F("name", types.String),
			types.F("age", types.Int),
		))),
	)))
	must(c.AddClass("Department", "DEPT", types.Tuple(
		types.F("name", types.String),
		types.F("address", types.Class("Address")),
		types.F("emps", types.SetOf(types.Class("Employee"))),
	)))
	return c
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}
