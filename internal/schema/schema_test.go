package schema

import (
	"testing"

	"tmdb/internal/types"
)

func TestCatalogBasics(t *testing.T) {
	c := NewCatalog()
	if err := c.AddSort("Point", types.Tuple(types.F("x", types.Int), types.F("y", types.Int))); err != nil {
		t.Fatal(err)
	}
	if err := c.AddSort("Point", types.Int); err == nil {
		t.Error("duplicate sort should fail")
	}
	attrs := types.Tuple(types.F("name", types.String), types.F("pos", types.Class("Point")))
	if err := c.AddClass("Thing", "THINGS", attrs); err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass("Thing", "OTHER", attrs); err == nil {
		t.Error("duplicate class should fail")
	}
	if err := c.AddClass("Thing2", "THINGS", attrs); err == nil {
		t.Error("duplicate extension should fail")
	}
	if err := c.AddClass("Bad", "BAD", types.Int); err == nil {
		t.Error("non-tuple attributes should fail")
	}

	if _, ok := c.Class("Thing"); !ok {
		t.Error("Class lookup failed")
	}
	if _, ok := c.ClassByExtension("THINGS"); !ok {
		t.Error("ClassByExtension lookup failed")
	}
	if _, ok := c.Sort("Point"); !ok {
		t.Error("Sort lookup failed")
	}
	if got := c.Extensions(); len(got) != 1 || got[0] != "THINGS" {
		t.Errorf("Extensions = %v", got)
	}
}

func TestElementTypeResolvesSorts(t *testing.T) {
	c := NewCatalog()
	addr := types.Tuple(types.F("city", types.String))
	if err := c.AddSort("Addr", addr); err != nil {
		t.Fatal(err)
	}
	if err := c.AddClass("P", "PS", types.Tuple(types.F("a", types.Class("Addr")))); err != nil {
		t.Fatal(err)
	}
	et, err := c.ElementType("PS")
	if err != nil {
		t.Fatal(err)
	}
	want := types.Tuple(types.F("a", addr))
	if !types.Equal(et, want) {
		t.Errorf("ElementType = %s, want %s", et, want)
	}
	if _, err := c.ElementType("NOPE"); err == nil {
		t.Error("unknown extension should fail")
	}
}

func TestElementTypeResolvesClassRefs(t *testing.T) {
	c := Company()
	et, err := c.ElementType("DEPT")
	if err != nil {
		t.Fatal(err)
	}
	emps, ok := et.Field("emps")
	if !ok || emps.Kind != types.KSet || emps.Elem.Kind != types.KTuple {
		t.Fatalf("emps resolved to %v", emps)
	}
	if _, ok := emps.Elem.Field("sal"); !ok {
		t.Errorf("employee structure not expanded: %s", emps.Elem)
	}
}

func TestRecursiveClassBreaksCycle(t *testing.T) {
	c := NewCatalog()
	// Person has a set of friends who are Persons.
	if err := c.AddClass("Person", "PEOPLE", types.Tuple(
		types.F("name", types.String),
		types.F("friends", types.SetOf(types.Class("Person"))),
	)); err != nil {
		t.Fatal(err)
	}
	et, err := c.ElementType("PEOPLE")
	if err != nil {
		t.Fatal(err)
	}
	fr, _ := et.Field("friends")
	if fr.Kind != types.KSet || fr.Elem.Kind != types.KAny {
		t.Errorf("recursive reference should break to Any, got %s", fr)
	}
}

func TestResolveUnknownName(t *testing.T) {
	c := NewCatalog()
	if err := c.AddClass("P", "PS", types.Tuple(types.F("a", types.Class("Ghost")))); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ElementType("PS"); err == nil {
		t.Error("unknown sort/class reference should fail")
	}
}

func TestCompanySchemaShape(t *testing.T) {
	c := Company()
	for _, ext := range []string{"EMP", "DEPT"} {
		if _, err := c.ElementType(ext); err != nil {
			t.Errorf("%s: %v", ext, err)
		}
	}
	emp, _ := c.ElementType("EMP")
	kids, ok := emp.Field("children")
	if !ok || kids.Kind != types.KSet {
		t.Errorf("children type = %v", kids)
	}
	addr, _ := emp.Field("address")
	if addr.Kind != types.KTuple {
		t.Errorf("address should resolve to a tuple, got %s", addr)
	}
}
