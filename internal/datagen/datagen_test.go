package datagen

import (
	"testing"

	"tmdb/internal/types"
	"tmdb/internal/value"
)

func TestCompanyDeterministic(t *testing.T) {
	_, db1 := Company(4, 20, 7)
	_, db2 := Company(4, 20, 7)
	for _, ext := range []string{"EMP", "DEPT"} {
		t1, _ := db1.Table(ext)
		t2, _ := db2.Table(ext)
		if !value.Equal(t1.AsSet(), t2.AsSet()) {
			t.Errorf("%s not deterministic for same seed", ext)
		}
	}
	_, db3 := Company(4, 20, 8)
	t1, _ := db1.Table("EMP")
	t3, _ := db3.Table("EMP")
	if value.Equal(t1.AsSet(), t3.AsSet()) {
		t.Error("different seeds should differ")
	}
}

func TestCompanyConformsToSchema(t *testing.T) {
	cat, db := Company(3, 12, 1)
	for _, ext := range []string{"EMP", "DEPT"} {
		et, err := cat.ElementType(ext)
		if err != nil {
			t.Fatal(err)
		}
		tab, _ := db.Table(ext)
		if tab.Len() == 0 {
			t.Errorf("%s is empty", ext)
		}
		for _, r := range tab.Rows() {
			if !types.Check(r, et) {
				t.Fatalf("%s row %s does not conform to %s", ext, r, et)
			}
		}
	}
}

func TestTable1Exact(t *testing.T) {
	_, db := Table1()
	x, _ := db.Table("X")
	y, _ := db.Table("Y")
	if x.Len() != 3 || y.Len() != 3 {
		t.Fatalf("X=%d Y=%d", x.Len(), y.Len())
	}
	wantX := value.SetOf(
		value.TupleOf(value.F("e", value.Int(1)), value.F("d", value.Int(1))),
		value.TupleOf(value.F("e", value.Int(2)), value.F("d", value.Int(2))),
		value.TupleOf(value.F("e", value.Int(3)), value.F("d", value.Int(3))),
	)
	if !value.Equal(x.AsSet(), wantX) {
		t.Errorf("X = %s", x.AsSet())
	}
}

func TestXYZSpec(t *testing.T) {
	spec := Spec{NX: 50, NY: 100, NZ: 60, Keys: 8, DanglingFrac: 0.4, SetAttrCard: 3, Seed: 2}
	cat, db := XYZ(spec)
	for _, ext := range []string{"X", "Y", "Z"} {
		et, err := cat.ElementType(ext)
		if err != nil {
			t.Fatal(err)
		}
		tab, _ := db.Table(ext)
		for _, r := range tab.Rows() {
			if !types.Check(r, et) {
				t.Fatalf("%s row %s ill-typed", ext, r)
			}
		}
	}
	// Dangling fraction: roughly 40% of X rows have negative b keys.
	x, _ := db.Table("X")
	neg := 0
	for _, r := range x.Rows() {
		if r.MustGet("b").AsInt() < 0 {
			neg++
		}
	}
	if neg == 0 {
		t.Error("no dangling X tuples despite DanglingFrac = 0.4")
	}
	// Seal dedup may shrink counts slightly; sanity bounds only.
	if x.Len() == 0 || x.Len() > spec.NX {
		t.Errorf("X len = %d", x.Len())
	}
	// Zero keys must not panic (degenerate spec).
	XYZ(Spec{NX: 2, NY: 2, NZ: 2, Keys: 0, Seed: 1})
}

func TestRSCountBugInstance(t *testing.T) {
	_, db := RS(40, 80, 8, 0.25, 5)
	r, _ := db.Table("R")
	s, _ := db.Table("S")
	if r.Len() == 0 || s.Len() == 0 {
		t.Fatal("empty RS instance")
	}
	// The generator must produce dangling R tuples with B = 0 (the
	// bug-triggering pattern) and matched R tuples with correct counts.
	sCounts := map[int64]int64{}
	for _, sr := range s.Rows() {
		sCounts[sr.MustGet("C").AsInt()]++
	}
	bugTriggers, inAnswer := 0, 0
	for _, rr := range r.Rows() {
		c := rr.MustGet("C").AsInt()
		b := rr.MustGet("B").AsInt()
		if c < 0 && b == 0 {
			bugTriggers++
		}
		if b == sCounts[c] {
			inAnswer++
		}
	}
	if bugTriggers == 0 {
		t.Error("RS instance has no COUNT-bug triggers")
	}
	if inAnswer == 0 {
		t.Error("RS instance has an empty answer")
	}
}
