// Package datagen builds the databases used by examples, tests, and the
// benchmark harness: the paper's company schema (§3.2) with deterministic
// synthetic instances, the X/Y/Z relations of the paper's running examples
// (§4, §6, §8), and parameterized generators with controllable cardinality,
// fan-out (matches per outer tuple), and dangling fraction (outer tuples with
// no match — the tuples that trigger the COUNT/SUBSETEQ bugs).
package datagen

import (
	"fmt"
	"math/rand"

	"tmdb/internal/schema"
	"tmdb/internal/storage"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// Company populates the paper's §3.2 schema with a small deterministic
// instance: nDept departments and nEmp employees spread over a handful of
// streets and cities so that Q1 and Q2 have non-trivial answers.
func Company(nDept, nEmp int, seed int64) (*schema.Catalog, *storage.DB) {
	cat := schema.Company()
	db := storage.NewDB()
	r := rand.New(rand.NewSource(seed))

	streets := []string{"Main St", "Oak Ave", "Campus Rd", "Mill Ln", "High St"}
	cities := []string{"Enschede", "Hengelo", "Almelo", "Zwolle"}

	empElem, err := cat.ElementType("EMP")
	if err != nil {
		panic(err)
	}
	deptElem, err := cat.ElementType("DEPT")
	if err != nil {
		panic(err)
	}

	emps := make([]value.Value, nEmp)
	empT := db.MustCreate("EMP", empElem)
	for i := 0; i < nEmp; i++ {
		nkids := r.Intn(3)
		kids := make([]value.Value, nkids)
		for k := range kids {
			kids[k] = value.TupleOf(
				value.F("name", value.Str(fmt.Sprintf("kid%d_%d", i, k))),
				value.F("age", value.Int(int64(r.Intn(20)))),
			)
		}
		e := value.TupleOf(
			value.F("name", value.Str(fmt.Sprintf("emp%d", i))),
			value.F("address", address(streets[r.Intn(len(streets))], i, cities[r.Intn(len(cities))])),
			value.F("sal", value.Int(int64(2000+100*r.Intn(40)))),
			value.F("children", value.SetOf(kids...)),
		)
		emps[i] = e
		empT.MustInsert(e)
	}

	deptT := db.MustCreate("DEPT", deptElem)
	for i := 0; i < nDept; i++ {
		var members []value.Value
		for j := 0; j < nEmp; j++ {
			if r.Intn(nDept) == i%nDept {
				members = append(members, emps[j])
			}
		}
		d := value.TupleOf(
			value.F("name", value.Str(fmt.Sprintf("dept%d", i))),
			value.F("address", address(streets[r.Intn(len(streets))], 100+i, cities[r.Intn(len(cities))])),
			value.F("emps", value.SetOf(members...)),
		)
		deptT.MustInsert(d)
	}
	db.SealAll()
	return cat, db
}

func address(street string, nr int, city string) value.Value {
	return value.TupleOf(
		value.F("street", value.Str(street)),
		value.F("nr", value.Str(fmt.Sprintf("%d", nr))),
		value.F("city", value.Str(city)),
	)
}

// Table1 builds the exact X and Y relations of the paper's Table 1:
//
//	X(e, d) = {(1,1), (2,1), (3,3)}      Y(a, b) = {(1,1), (2,1), (3,3)}
//
// The nest equijoin of X and Y on the second attribute must produce
//
//	(1,1,{(1,1),(2,1)}), (2,1,{(1,1),(2,1)}), (3,3,{(3,3)})
//
// — except that the paper's printed table shows row 2 with the empty set,
// because in the paper's layout X's second row is (2, 2) (the OCR of the
// table collapses the column; (2,2) is the only reading consistent with the
// stated result). We follow the semantics: X = {(1,1),(2,2),(3,3)},
// Y = {(1,1),(2,1),(3,3)}, nest join on x.d = y.b gives rows 1 and 3 matched
// and row 2 dangling with ∅.
func Table1() (*schema.Catalog, *storage.DB) {
	cat := schema.NewCatalog()
	xT := types.Tuple(types.F("e", types.Int), types.F("d", types.Int))
	yT := types.Tuple(types.F("a", types.Int), types.F("b", types.Int))
	must(cat.AddClass("XRow", "X", xT))
	must(cat.AddClass("YRow", "Y", yT))
	db := storage.NewDB()
	x := db.MustCreate("X", xT)
	y := db.MustCreate("Y", yT)
	for _, r := range [][2]int64{{1, 1}, {2, 2}, {3, 3}} {
		x.MustInsert(value.TupleOf(value.F("e", value.Int(r[0])), value.F("d", value.Int(r[1]))))
	}
	for _, r := range [][2]int64{{1, 1}, {2, 1}, {3, 3}} {
		y.MustInsert(value.TupleOf(value.F("a", value.Int(r[0])), value.F("b", value.Int(r[1]))))
	}
	db.SealAll()
	return cat, db
}

// Spec parameterizes the synthetic X/Y/Z workloads of the paper's running
// examples: relation sizes, join-key domain (controls fan-out), the fraction
// of dangling outer tuples, and the cardinality of set-valued attributes.
type Spec struct {
	NX, NY, NZ int
	// Keys is the number of distinct join-key values among matched tuples.
	// Average fan-out of Y per X is NY/Keys.
	Keys int
	// DanglingFrac in [0,1) is the fraction of X tuples whose key matches no
	// Y tuple (and of Y tuples matching no Z tuple).
	DanglingFrac float64
	// SetAttrCard is the cardinality of the set-valued attributes x.a, y.c.
	SetAttrCard int
	// SkewFrac in [0,1) is the fraction of matched join keys collapsed onto
	// key 0: with SkewFrac = 0.9, ~90% of the matched rows in every relation
	// share one key, so one hash partition carries almost all the join work —
	// the workload the morsel scheduler's stealing exists for. Zero (the
	// default) leaves the uniform key draw untouched, byte-for-byte.
	SkewFrac float64
	Seed     int64
}

// DefaultSpec returns a small spec suitable for tests.
func DefaultSpec() Spec {
	return Spec{NX: 40, NY: 120, NZ: 90, Keys: 12, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 1}
}

// XYZTypes returns the element types of the synthetic relations:
//
//	X(a : P INT, b : INT)          — outer relation of §4's SUBSETEQ example
//	Y(a : INT, b : INT, c : P INT, d : INT)
//	Z(c : INT, d : INT)
//
// matching the §8 three-block query's attribute usage.
func XYZTypes() (x, y, z *types.Type) {
	x = types.Tuple(types.F("a", types.SetOf(types.Int)), types.F("b", types.Int))
	y = types.Tuple(
		types.F("a", types.Int), types.F("b", types.Int),
		types.F("c", types.SetOf(types.Int)), types.F("d", types.Int),
	)
	z = types.Tuple(types.F("c", types.Int), types.F("d", types.Int))
	return
}

// YRow builds one Y tuple (see XYZTypes) — the shape mutation tests and
// benchmarks insert into sealed Y tables.
func YRow(a, b, c, d int64) value.Value {
	return value.TupleOf(
		value.F("a", value.Int(a)), value.F("b", value.Int(b)),
		value.F("c", value.SetOf(value.Int(c))), value.F("d", value.Int(d)),
	)
}

// XYZ builds the synthetic database. Keys are integers; a dangling X tuple
// gets a key from a disjoint negative range so it matches nothing.
func XYZ(spec Spec) (*schema.Catalog, *storage.DB) {
	if spec.Keys <= 0 {
		spec.Keys = 1
	}
	r := rand.New(rand.NewSource(spec.Seed))
	xT, yT, zT := XYZTypes()
	cat := schema.NewCatalog()
	must(cat.AddClass("XRow", "X", xT))
	must(cat.AddClass("YRow", "Y", yT))
	must(cat.AddClass("ZRow", "Z", zT))
	db := storage.NewDB()
	x := db.MustCreate("X", xT)
	y := db.MustCreate("Y", yT)
	z := db.MustCreate("Z", zT)

	intSet := func(card int) value.Value {
		es := make([]value.Value, card)
		for i := range es {
			es[i] = value.Int(int64(r.Intn(2 * max(1, card))))
		}
		return value.SetOf(es...)
	}
	// matchedKey draws a join key for a matched tuple. SkewFrac collapses
	// that fraction of draws onto key 0; the guard keeps the random sequence
	// untouched byte-for-byte when skew is off, so existing seeded datasets
	// are unchanged.
	matchedKey := func() int64 {
		if spec.SkewFrac > 0 && r.Float64() < spec.SkewFrac {
			return 0
		}
		return int64(r.Intn(spec.Keys))
	}
	// Dangling tuples draw from per-relation disjoint negative ranges so a
	// dangling key never matches anything — in particular a dangling X tuple
	// must not accidentally pair with a dangling Y tuple on x.b = y.d.
	key := func(i, n int, offset int64) int64 {
		if float64(i) < spec.DanglingFrac*float64(n) {
			return -offset - int64(i) - 1
		}
		return matchedKey()
	}

	for i := 0; i < spec.NX; i++ {
		x.MustInsert(value.TupleOf(
			value.F("a", intSet(r.Intn(spec.SetAttrCard+1))),
			value.F("b", value.Int(key(i, spec.NX, 0))),
		))
	}
	for i := 0; i < spec.NY; i++ {
		y.MustInsert(value.TupleOf(
			value.F("a", value.Int(int64(r.Intn(2*max(1, spec.SetAttrCard))))),
			value.F("b", value.Int(matchedKey())),
			value.F("c", intSet(r.Intn(spec.SetAttrCard+1))),
			value.F("d", value.Int(key(i, spec.NY, 1<<30))),
		))
	}
	for i := 0; i < spec.NZ; i++ {
		z.MustInsert(value.TupleOf(
			value.F("c", value.Int(int64(r.Intn(2*max(1, spec.SetAttrCard))))),
			value.F("d", value.Int(matchedKey())),
		))
	}
	db.SealAll()
	return cat, db
}

// RS builds the relational R(A,B,C) / S(C,D) schema of the paper's §2
// COUNT-bug example. B counts how many S tuples share the C value; dangling
// R tuples (C matching no S tuple) get B = 0, so the original nested query
// must return them — the tuples Kim's transformation loses.
func RS(nR, nS, keys int, danglingFrac float64, seed int64) (*schema.Catalog, *storage.DB) {
	if keys <= 0 {
		keys = 1
	}
	r := rand.New(rand.NewSource(seed))
	rT := types.Tuple(types.F("A", types.Int), types.F("B", types.Int), types.F("C", types.Int))
	sT := types.Tuple(types.F("C", types.Int), types.F("D", types.Int))
	cat := schema.NewCatalog()
	must(cat.AddClass("RRow", "R", rT))
	must(cat.AddClass("SRow", "S", sT))
	db := storage.NewDB()
	rTab := db.MustCreate("R", rT)
	sTab := db.MustCreate("S", sT)

	counts := make(map[int64]int64)
	for i := 0; i < nS; i++ {
		c := int64(r.Intn(keys))
		counts[c]++
		sTab.MustInsert(value.TupleOf(
			value.F("C", value.Int(c)),
			value.F("D", value.Int(int64(r.Intn(100)))),
		))
	}
	for i := 0; i < nR; i++ {
		var c int64
		if float64(i) < danglingFrac*float64(nR) {
			c = -int64(i) - 1 // dangling: subquery result is empty, COUNT = 0
		} else {
			c = int64(r.Intn(keys))
		}
		// Half the R tuples get B equal to the true count (they belong to the
		// answer), the rest get a perturbed count.
		b := counts[c]
		if r.Intn(2) == 0 {
			b += int64(r.Intn(3) + 1)
		}
		rTab.MustInsert(value.TupleOf(
			value.F("A", value.Int(int64(i))),
			value.F("B", value.Int(b)),
			value.F("C", value.Int(c)),
		))
	}
	db.SealAll()
	return cat, db
}

func must(err error) {
	if err != nil {
		panic(err)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
