package core

import (
	"fmt"
	"testing"

	"tmdb/internal/tmql"
)

func freshGen() func() string {
	n := 0
	return func() string { n++; return fmt.Sprintf("v%d", n) }
}

// classifyStr classifies the predicate src with subquery variable z.
func classifyStr(t *testing.T, src string) Classification {
	t.Helper()
	e, err := tmql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return Classify(e, "z", freshGen())
}

// TestTable2Classification reproduces the paper's Table 2: each predicate
// form between query blocks and its rewriting (∃ / ¬∃ / grouping).
func TestTable2Classification(t *testing.T) {
	cases := []struct {
		pred  string
		class Class
		inner string // expected P′ rendering ("" for grouping; v1 is the fresh var)
	}{
		// --- upper half: SQL-expressible predicates ---
		{"z = {}", ClassNotExists, "true"},
		{"{} = z", ClassNotExists, "true"},
		{"COUNT(z) = 0", ClassNotExists, "true"},
		{"0 = COUNT(z)", ClassNotExists, "true"},
		{"COUNT(z) <= 0", ClassNotExists, "true"},
		{"COUNT(z) < 1", ClassNotExists, "true"},
		{"z <> {}", ClassExists, "true"},
		{"COUNT(z) <> 0", ClassExists, "true"},
		{"COUNT(z) > 0", ClassExists, "true"},
		{"COUNT(z) >= 1", ClassExists, "true"},
		{"0 < COUNT(z)", ClassExists, "true"},
		{"1 <= COUNT(z)", ClassExists, "true"},
		{"x.a = COUNT(z)", ClassGrouping, ""}, // the COUNT bug's predicate
		{"COUNT(z) = x.a", ClassGrouping, ""},
		{"COUNT(z) = 2", ClassGrouping, ""},
		{"x.a IN z", ClassExists, "v1 = x.a"},
		{"x.a NOT IN z", ClassNotExists, "v1 = x.a"},
		{"NOT (x.a IN z)", ClassNotExists, "v1 = x.a"},
		{"NOT (x.a NOT IN z)", ClassExists, "v1 = x.a"},
		{"x.a + 1 IN z", ClassExists, "v1 = x.a + 1"},
		// --- lower half: TM set-valued predicates ---
		{"x.a SUBSET z", ClassGrouping, ""},
		{"x.a SUBSETEQ z", ClassGrouping, ""}, // the SUBSETEQ bug's predicate
		{"x.a SUPSET z", ClassGrouping, ""},
		{"x.a SUPSETEQ z", ClassNotExists, "v1 NOT IN x.a"},
		{"z SUBSETEQ x.a", ClassNotExists, "v1 NOT IN x.a"},
		{"NOT (x.a SUPSETEQ z)", ClassExists, "v1 NOT IN x.a"},
		{"z SUPSETEQ x.a", ClassGrouping, ""},
		{"x.a = z", ClassGrouping, ""},
		{"z = x.a", ClassGrouping, ""},
		{"x.a <> z", ClassGrouping, ""},
		{"x.a INTERSECT z = {}", ClassNotExists, "v1 IN x.a"},
		{"z INTERSECT x.a = {}", ClassNotExists, "v1 IN x.a"},
		{"x.a INTERSECT z <> {}", ClassExists, "v1 IN x.a"},
		{"NOT (x.a INTERSECT z = {})", ClassExists, "v1 IN x.a"},
		// quantifiers over x.a need grouping; over z they are flat
		{"FORALL w IN x.a (w IN z)", ClassGrouping, ""},
		{"FORALL w IN x.a (w NOT IN z)", ClassGrouping, ""},
		{"EXISTS v IN z (TRUE)", ClassExists, "true"},
		{"NOT EXISTS v IN z (TRUE)", ClassNotExists, "true"},
		{"EXISTS v IN z (v = x.a)", ClassExists, "v = x.a"},
		{"NOT EXISTS v IN z (v = x.a)", ClassNotExists, "v = x.a"},
		{"FORALL v IN z (v <> x.a)", ClassNotExists, "NOT v <> x.a"},
		{"EXISTS v IN z (v IN x.a)", ClassExists, "v IN x.a"},
		// --- outside the table: conservative grouping ---
		{"x.a = SUM(z)", ClassGrouping, ""},
		{"MIN(z) < x.a", ClassGrouping, ""},
		{"x.a IN z OR x.b = 1", ClassGrouping, ""},
		{"COUNT(z) = COUNT(z)", ClassGrouping, ""},
		{"EXISTS v IN z (v IN z)", ClassGrouping, ""}, // double occurrence
	}
	for _, c := range cases {
		got := classifyStr(t, c.pred)
		if got.Class != c.class {
			t.Errorf("Classify(%q) = %s, want %s", c.pred, got.Class, c.class)
			continue
		}
		if c.class == ClassGrouping {
			continue
		}
		if got.Inner == nil {
			t.Errorf("Classify(%q): nil inner predicate", c.pred)
			continue
		}
		if gotInner := tmql.Format(got.Inner); gotInner != c.inner {
			t.Errorf("Classify(%q) inner = %q, want %q", c.pred, gotInner, c.inner)
		}
	}
}

func TestClassifyFreshVarUsage(t *testing.T) {
	got := classifyStr(t, "x.a IN z")
	if got.V != "v1" {
		t.Errorf("fresh variable = %q", got.V)
	}
	// The inner predicate must reference the fresh variable and not z.
	free := tmql.FreeVars(got.Inner)
	if !free["v1"] || free["z"] {
		t.Errorf("inner free vars: %v", free)
	}
}

func TestClassifyQuantKeepsOwnVariable(t *testing.T) {
	got := classifyStr(t, "EXISTS s IN z (s = x.a)")
	if got.Class != ClassExists || got.V != "s" {
		t.Errorf("got %s var %q", got.Class, got.V)
	}
}

func TestClassifyNoZ(t *testing.T) {
	// A predicate not mentioning z should never reach Classify; the
	// conservative answer is grouping.
	if got := classifyStr(t, "x.a = 1"); got.Class != ClassGrouping {
		t.Errorf("got %s", got.Class)
	}
}

func TestClassString(t *testing.T) {
	if ClassExists.String() != "exists" || ClassNotExists.String() != "not-exists" ||
		ClassGrouping.String() != "grouping" {
		t.Error("Class.String broken")
	}
}

func TestSubstVar(t *testing.T) {
	e := tmql.MustParse("x.a IN z AND EXISTS z IN s (z = 1)")
	out := SubstVar(e, "z", tmql.MustParse("q.zs"))
	got := tmql.Format(out)
	// Free z replaced; the quantifier-bound z untouched.
	want := "x.a IN q.zs AND EXISTS z IN s (z = 1)"
	if got != want {
		t.Errorf("SubstVar = %q, want %q", got, want)
	}
}

func TestSubstVarShadowingInSFW(t *testing.T) {
	e := tmql.MustParse("SELECT z FROM z.items z WHERE z.v IN w")
	out := SubstVar(e, "z", tmql.MustParse("other"))
	got := tmql.Format(out)
	// The FROM source's z is free (bound only after), the rest bound.
	want := "SELECT z FROM other.items z WHERE z.v IN w"
	if got != want {
		t.Errorf("SubstVar = %q, want %q", got, want)
	}
}

func TestReplaceNode(t *testing.T) {
	e := tmql.MustParse("x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)").(*tmql.Binary)
	sub := e.R
	out := ReplaceNode(e, sub, &tmql.Var{Name: "z"})
	if got := tmql.Format(out); got != "x.a IN z" {
		t.Errorf("ReplaceNode = %q", got)
	}
}

func TestInlineLets(t *testing.T) {
	e := tmql.MustParse("x.a IN z WITH z = SELECT y.a FROM Y y WHERE x.b = y.b")
	out := InlineLets(e)
	if got := tmql.Format(out); got != "x.a IN (SELECT y.a FROM Y y WHERE x.b = y.b)" {
		t.Errorf("InlineLets = %q", got)
	}
	// Chained WITHs.
	e = tmql.MustParse("a IN w WITH a = 1 + 1, w = {2}")
	if got := tmql.Format(InlineLets(e)); got != "1 + 1 IN {2}" {
		t.Errorf("InlineLets chain = %q", got)
	}
}
