package core

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/schema"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Strategy selects how nested queries are processed.
type Strategy uint8

// Strategies. StrategyAuto (the zero value, so an unset engine.Options
// selects it) defers the choice to the cost-based physical planner, which
// enumerates the correct strategies × join implementations and picks the
// cheapest estimate. StrategyNestJoin is the paper's: classify predicates
// between blocks; flat semijoin/antijoin where Theorem 1 permits, nest join
// otherwise; bottom-up over linear nesting (§8). StrategyNaive is nested-loop
// processing (the correctness oracle). StrategyKim and StrategyOuterJoin are
// the relational baselines of §2. The auto planner never considers
// StrategyKim: it loses dangling tuples (the COUNT bug), so it exists only
// for explicit experiments.
const (
	StrategyAuto Strategy = iota
	StrategyNaive
	StrategyNestJoin
	StrategyKim
	StrategyOuterJoin
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyAuto:
		return "auto"
	case StrategyNaive:
		return "naive"
	case StrategyNestJoin:
		return "nestjoin"
	case StrategyKim:
		return "kim"
	case StrategyOuterJoin:
		return "outerjoin"
	}
	return "strategy?"
}

// ParseStrategy parses a strategy name as printed by String.
func ParseStrategy(name string) (Strategy, error) {
	switch name {
	case "auto":
		return StrategyAuto, nil
	case "naive":
		return StrategyNaive, nil
	case "nestjoin":
		return StrategyNestJoin, nil
	case "kim":
		return StrategyKim, nil
	case "outerjoin":
		return StrategyOuterJoin, nil
	}
	return 0, fmt.Errorf("core: unknown strategy %q", name)
}

// CandidateStrategies returns the strategies the cost-based planner may
// choose among. Kim's transformation is excluded: it is not semantics
// preserving on dangling tuples.
func CandidateStrategies() []Strategy {
	return []Strategy{StrategyNestJoin, StrategyOuterJoin, StrategyNaive}
}

// Translator turns bound TM expressions into algebra plans.
type Translator struct {
	b     *algebra.Builder
	cat   *schema.Catalog
	fresh int
}

// NewTranslator returns a translator over the catalog.
func NewTranslator(cat *schema.Catalog) *Translator {
	return &Translator{b: algebra.NewBuilder(cat), cat: cat}
}

// Builder exposes the underlying plan builder (used by baselines and tests).
func (t *Translator) Builder() *algebra.Builder { return t.b }

func (t *Translator) freshName(prefix string) string {
	t.fresh++
	return fmt.Sprintf("%s_%d", prefix, t.fresh)
}

// Translate compiles a bound, set-typed TM expression to an algebra plan
// under the given strategy. Expressions the strategy cannot flatten fall back
// to naive evaluation (an EvalNode leaf) — the paper's position that queries
// "may always be handled by means of nested-loop processing".
func (t *Translator) Translate(q tmql.Expr, s Strategy) (algebra.Plan, error) {
	switch s {
	case StrategyAuto:
		return nil, fmt.Errorf("core: StrategyAuto must be resolved by the cost-based planner before translation")
	case StrategyNaive:
		return t.b.EvalSet(q)
	case StrategyNestJoin:
		return t.translateNestJoin(q)
	case StrategyKim:
		return t.translateKim(q)
	case StrategyOuterJoin:
		return t.translateOuterJoin(q)
	}
	return nil, fmt.Errorf("core: unknown strategy %d", s)
}

// --- The paper's strategy ---

func (t *Translator) translateNestJoin(q tmql.Expr) (algebra.Plan, error) {
	// §5 special case: UNNEST of a directly nested SELECT collapses to a
	// flat join.
	if u, ok := q.(*tmql.Unnest); ok {
		if p, ok, err := t.tryUnnestCollapse(u); err != nil {
			return nil, err
		} else if ok {
			return p, nil
		}
	}
	if sfw, ok := q.(*tmql.SFW); ok {
		if p, ok, err := t.trySFW(sfw); err != nil {
			return nil, err
		} else if ok {
			return p, nil
		}
	}
	// Not a flattenable shape: nested-loop processing.
	return t.b.EvalSet(q)
}

// trySFW translates a SELECT-FROM-WHERE block whose FROM sources are stored
// extensions. It reports ok=false when the shape is outside the flattenable
// class (the caller then falls back to naive evaluation).
func (t *Translator) trySFW(sfw *tmql.SFW) (algebra.Plan, bool, error) {
	if len(sfw.Froms) == 1 {
		if _, ok := sfw.Froms[0].Src.(*tmql.TableRef); ok {
			p, err := t.translateBlockQuery(sfw)
			if err != nil {
				return nil, false, err
			}
			return p, true, nil
		}
		return nil, false, nil
	}
	// Multi-item FROM: a flat join query (the paper's target form). Only
	// handled when every source is a stored extension and no subqueries over
	// extensions remain in the predicate.
	for _, f := range sfw.Froms {
		if _, ok := f.Src.(*tmql.TableRef); !ok {
			return nil, false, nil
		}
	}
	p, err := t.translateFlatJoin(sfw)
	if err != nil {
		return nil, false, err
	}
	return p, true, nil
}

// translateBlockQuery handles the paper's general single-variable block
//
//	SELECT F(x) FROM X x WHERE P₁ ∧ … ∧ Pₙ
//
// where conjuncts may contain correlated subqueries over stored extensions
// (WHERE-clause nesting, §4) and F may contain them too (SELECT-clause
// nesting, §5). Deeper linear nesting inside the subqueries is translated
// bottom-up as in §8.
func (t *Translator) translateBlockQuery(sfw *tmql.SFW) (algebra.Plan, error) {
	x := sfw.Froms[0].Var
	table := sfw.Froms[0].Src.(*tmql.TableRef)
	plan, err := t.b.Scan(table.Name)
	if err != nil {
		return nil, err
	}
	baseLabels := topLabels(plan)

	where := InlineLets(sfw.Where)
	p, err := t.applyWhere(plan, x, where, baseLabels)
	if err != nil {
		return nil, err
	}

	// SELECT clause: unnest correlated subqueries over extensions into nest
	// joins (§5 — "nesting in the SELECT clause always requires grouping"),
	// then map the (rewritten) result expression.
	result := InlineLets(sfw.Result)
	for {
		sub := findExtensionSubquery(result, x)
		if sub == nil {
			break
		}
		blk, err := t.innerBlock(sub, x)
		if err != nil {
			return nil, err
		}
		if blk == nil {
			// Subquery over an extension but with an unsupported shape:
			// leave it to the evaluator inside the Map below.
			break
		}
		label := t.freshName("nj")
		p, err = t.b.NestJoin(p, blk.plan, x, blk.v, blk.joinPred(), blk.result, label)
		if err != nil {
			return nil, err
		}
		result = ReplaceNode(result, sub, fieldOf(x, label))
	}

	m, err := t.b.Map(p, x, result)
	if err != nil {
		return nil, err
	}
	return m, nil
}

// applyWhere folds the WHERE conjuncts into the plan: plain conjuncts become
// selections; conjuncts containing correlated subqueries over stored
// extensions become semijoins, antijoins, or nest-join + selection according
// to the classification (§7). The plan's element type is restored (nest-join
// labels projected away) after every conjunct, so conjuncts compose — this is
// also what supports multiple subqueries per WHERE clause (paper future
// work).
func (t *Translator) applyWhere(p algebra.Plan, x string, where tmql.Expr, baseLabels []string) (algebra.Plan, error) {
	for _, conjunct := range splitConjuncts(where) {
		sub := findExtensionSubquery(conjunct, x)
		if sub == nil {
			var err error
			p, err = t.b.Select(p, x, conjunct)
			if err != nil {
				return nil, err
			}
			continue
		}
		blk, err := t.innerBlock(sub, x)
		if err != nil {
			return nil, err
		}
		if blk == nil {
			// Unsupported inner shape: evaluate the conjunct naively.
			p, err = t.b.Select(p, x, conjunct)
			if err != nil {
				return nil, err
			}
			continue
		}

		// Name the subquery z and classify P(x, z) — but only when the
		// conjunct contains no other extension subquery (classification
		// covers a single z).
		z := t.freshName("z")
		pz := ReplaceNode(conjunct, sub, &tmql.Var{Name: z})
		cls := Classification{Class: ClassGrouping}
		if findExtensionSubquery(pz, x) == nil {
			cls = Classify(pz, z, func() string { return t.freshName("v") })
		}

		switch cls.Class {
		case ClassExists, ClassNotExists:
			// Flat form: semijoin or antijoin on Q(x,y) ∧ P′(x, G(x,y)).
			inner := SubstVar(cls.Inner, cls.V, blk.result)
			pred := conjoin(append(blk.join, inner))
			kind := algebra.JoinSemi
			if cls.Class == ClassNotExists {
				kind = algebra.JoinAnti
			}
			p, err = t.b.Join(kind, p, blk.plan, x, blk.v, pred)
			if err != nil {
				return nil, err
			}
		default:
			// Grouping: nest join, then select on the grouped attribute,
			// then project the label away to restore the element type.
			label := t.freshName("nj")
			p, err = t.b.NestJoin(p, blk.plan, x, blk.v, blk.joinPred(), blk.result, label)
			if err != nil {
				return nil, err
			}
			selPred := ReplaceNode(conjunct, sub, fieldOf(x, label))
			// If the conjunct held further subqueries they were substituted
			// into selPred untouched; recurse on them first.
			if findExtensionSubquery(selPred, x) != nil {
				p, err = t.applyWhere(p, x, selPred, append(baseLabels, label))
				if err != nil {
					return nil, err
				}
			} else {
				p, err = t.b.Select(p, x, selPred)
				if err != nil {
					return nil, err
				}
			}
			p, err = t.b.Project(p, x, currentLabels(p, baseLabels)...)
			if err != nil {
				return nil, err
			}
		}
	}
	return p, nil
}

// innerBlockInfo describes a translated inner query block
//
//	SELECT G(x,y) FROM Y y WHERE Q(x,y) ∧ local(y)
//
// after bottom-up processing: plan computes the (locally filtered and
// unnested) operand; join holds the conjuncts referencing the outer
// variable; result is G.
type innerBlockInfo struct {
	plan   algebra.Plan
	v      string
	join   []tmql.Expr
	result tmql.Expr
}

func (b *innerBlockInfo) joinPred() tmql.Expr {
	if p := conjoin(b.join); p != nil {
		return p
	}
	return trueExpr()
}

// innerBlock translates the inner block of a nested query bottom-up (§8):
// local conjuncts (including deeper subqueries) fold into the plan; neighbor
// predicates referencing outerVar are returned for the enclosing join. A nil
// result (no error) means the block's shape is unsupported and the caller
// must fall back.
func (t *Translator) innerBlock(sub *tmql.SFW, outerVar string) (*innerBlockInfo, error) {
	if len(sub.Froms) != 1 {
		return nil, nil
	}
	table, ok := sub.Froms[0].Src.(*tmql.TableRef)
	if !ok {
		return nil, nil
	}
	y := sub.Froms[0].Var
	if y == outerVar {
		return nil, nil // shadowing: keep naive semantics
	}
	plan, err := t.b.Scan(table.Name)
	if err != nil {
		return nil, err
	}
	baseLabels := topLabels(plan)

	var join []tmql.Expr
	var local tmql.Expr
	for _, c := range splitConjuncts(InlineLets(sub.Where)) {
		if mentionsVar(c, outerVar) {
			// Neighbor predicate. It must not itself contain an extension
			// subquery (non-linear correlation, out of scope).
			if findExtensionSubquery(c, y) != nil || findExtensionSubquery(c, outerVar) != nil {
				return nil, nil
			}
			join = append(join, c)
			continue
		}
		local = conjoinPair(local, c)
	}
	if local != nil {
		plan2, err := t.applyWhere(plan, y, local, baseLabels)
		if err != nil {
			return nil, err
		}
		// applyWhere may have widened and re-projected; types line up by
		// construction.
		return &innerBlockInfo{plan: plan2, v: y, join: join, result: InlineLets(sub.Result)}, nil
	}
	return &innerBlockInfo{plan: plan, v: y, join: join, result: InlineLets(sub.Result)}, nil
}

// tryUnnestCollapse recognizes §5's special case
//
//	UNNEST(SELECT (SELECT G(x,y) FROM Y y WHERE Q(x,y)) FROM X x [WHERE P(x)])
//
// and produces the equivalent flat join query. Variables are wrapped in
// per-source tuples so the join never suffers label collisions.
func (t *Translator) tryUnnestCollapse(u *tmql.Unnest) (algebra.Plan, bool, error) {
	outer, ok := u.X.(*tmql.SFW)
	if !ok || len(outer.Froms) != 1 {
		return nil, false, nil
	}
	outerTable, ok := outer.Froms[0].Src.(*tmql.TableRef)
	if !ok {
		return nil, false, nil
	}
	inner, ok := InlineLets(outer.Result).(*tmql.SFW)
	if !ok || len(inner.Froms) != 1 {
		return nil, false, nil
	}
	innerTable, ok := inner.Froms[0].Src.(*tmql.TableRef)
	if !ok {
		return nil, false, nil
	}
	x, y := outer.Froms[0].Var, inner.Froms[0].Var
	if x == y {
		return nil, false, nil
	}
	if findExtensionSubquery(inner.Where, y) != nil || findExtensionSubquery(inner.Result, y) != nil {
		return nil, false, nil
	}

	xp, err := t.scanPlan(outerTable.Name)
	if err != nil {
		return nil, false, err
	}
	if outer.Where != nil {
		w := InlineLets(outer.Where)
		if findExtensionSubquery(w, x) != nil {
			return nil, false, nil
		}
		xp, err = t.b.Select(xp, x, w)
		if err != nil {
			return nil, false, err
		}
	}
	yp, err := t.scanPlan(innerTable.Name)
	if err != nil {
		return nil, false, err
	}

	// Wrap both sides: elements become (x = row) and (y = row).
	lw, err := t.b.Map(xp, x, &tmql.TupleCons{Fields: []tmql.TupleField{{Label: x, E: &tmql.Var{Name: x}}}})
	if err != nil {
		return nil, false, err
	}
	rw, err := t.b.Map(yp, y, &tmql.TupleCons{Fields: []tmql.TupleField{{Label: y, E: &tmql.Var{Name: y}}}})
	if err != nil {
		return nil, false, err
	}
	lv, rv := t.freshName("l"), t.freshName("r")
	rebind := func(e tmql.Expr) tmql.Expr {
		e = SubstVar(e, x, fieldOf(lv, x))
		return SubstVar(e, y, fieldOf(rv, y))
	}
	pred := trueExpr()
	if inner.Where != nil {
		pred = rebind(InlineLets(inner.Where))
	}
	jp, err := t.b.Join(algebra.JoinInner, lw, rw, lv, rv, pred)
	if err != nil {
		return nil, false, err
	}
	// After the join the element is (x = …, y = …) addressed through one
	// variable; rewrite the result under that variable.
	jv := t.freshName("j")
	res := SubstVar(SubstVar(InlineLets(inner.Result), x, fieldOf(jv, x)), y, fieldOf(jv, y))
	mp, err := t.b.Map(jp, jv, res)
	if err != nil {
		return nil, false, err
	}
	return mp, true, nil
}

// translateFlatJoin compiles SELECT F FROM X₁ v₁, …, Xₙ vₙ WHERE P as a
// left-deep chain of inner joins. Every source is wrapped into a one-field
// tuple labeled by its iteration variable, so concatenation never collides
// and each conjunct is rewritten to address fields of the accumulated tuple.
// Conjuncts are placed at the lowest join where their variables are
// available; the remainder (e.g. single-table predicates of the first
// source) becomes a final selection.
func (t *Translator) translateFlatJoin(sfw *tmql.SFW) (algebra.Plan, error) {
	where := InlineLets(sfw.Where)
	conjuncts := splitConjuncts(where)
	for _, c := range conjuncts {
		for _, f := range sfw.Froms {
			if findExtensionSubquery(c, f.Var) != nil {
				return nil, fmt.Errorf("core: correlated subqueries in multi-source FROM are not flattenable")
			}
		}
	}
	seen := map[string]bool{}
	for _, f := range sfw.Froms {
		if seen[f.Var] {
			return nil, fmt.Errorf("core: duplicate FROM variable %s", f.Var)
		}
		seen[f.Var] = true
	}

	wrap := func(f tmql.FromItem) (algebra.Plan, error) {
		sp, err := t.b.Scan(f.Src.(*tmql.TableRef).Name)
		if err != nil {
			return nil, err
		}
		return t.b.Map(sp, f.Var, &tmql.TupleCons{
			Fields: []tmql.TupleField{{Label: f.Var, E: &tmql.Var{Name: f.Var}}},
		})
	}

	avail := map[string]bool{sfw.Froms[0].Var: true}
	used := make([]bool, len(conjuncts))
	plan, err := wrap(sfw.Froms[0])
	if err != nil {
		return nil, err
	}

	// decidable reports whether all free variables of c are available given
	// additionally extra (the right side of the join being formed).
	decidable := func(c tmql.Expr, extra string) bool {
		for v := range tmql.FreeVars(c) {
			if !avail[v] && v != extra {
				return false
			}
		}
		return true
	}
	// readdress rewrites conjunct variables to field accesses: available
	// variables through lv, the incoming variable through rv.
	readdress := func(c tmql.Expr, lv, rvVar, rv string) tmql.Expr {
		for v := range avail {
			c = SubstVar(c, v, fieldOf(lv, v))
		}
		if rvVar != "" {
			c = SubstVar(c, rvVar, fieldOf(rv, rvVar))
		}
		return c
	}

	for _, f := range sfw.Froms[1:] {
		wrapped, err := wrap(f)
		if err != nil {
			return nil, err
		}
		lv, rv := t.freshName("l"), t.freshName("r")
		var parts []tmql.Expr
		for ci, c := range conjuncts {
			if !used[ci] && tmql.FreeVars(c)[f.Var] && decidable(c, f.Var) {
				used[ci] = true
				parts = append(parts, readdress(c, lv, f.Var, rv))
			}
		}
		pred := conjoin(parts)
		if pred == nil {
			pred = trueExpr()
		}
		plan, err = t.b.Join(algebra.JoinInner, plan, wrapped, lv, rv, pred)
		if err != nil {
			return nil, err
		}
		avail[f.Var] = true
	}

	// Leftover conjuncts (single-variable on the first source, constants).
	var rest []tmql.Expr
	sv := t.freshName("s")
	for ci, c := range conjuncts {
		if used[ci] {
			continue
		}
		if !decidable(c, "") {
			return nil, fmt.Errorf("core: conjunct %s references unknown variables", tmql.Format(c))
		}
		rest = append(rest, readdress(c, sv, "", ""))
	}
	if p := conjoin(rest); p != nil {
		plan, err = t.b.Select(plan, sv, p)
		if err != nil {
			return nil, err
		}
	}

	rv := t.freshName("f")
	res := InlineLets(sfw.Result)
	for _, f := range sfw.Froms {
		res = SubstVar(res, f.Var, fieldOf(rv, f.Var))
	}
	return t.b.Map(plan, rv, res)
}

// --- helpers ---

// findExtensionSubquery returns the first SFW node inside e (not e itself
// unless it qualifies) whose single FROM source is a stored extension and
// which references outerVar free — a correlated subquery eligible for
// unnesting. Subqueries over set-valued attributes (FROM d.emps e) are never
// returned: the paper keeps those nested (§3.2). Uncorrelated extension
// subqueries are constants and are also left in place.
func findExtensionSubquery(e tmql.Expr, outerVar string) *tmql.SFW {
	var found *tmql.SFW
	tmql.Walk(e, func(n tmql.Expr) bool {
		if found != nil {
			return false
		}
		sfw, ok := n.(*tmql.SFW)
		if !ok {
			return true
		}
		if len(sfw.Froms) == 1 {
			if _, isTable := sfw.Froms[0].Src.(*tmql.TableRef); isTable {
				if tmql.FreeVars(sfw)[outerVar] {
					found = sfw
					return false
				}
			}
		}
		return true
	})
	return found
}

// splitConjuncts flattens an AND tree (nil yields nil).
func splitConjuncts(e tmql.Expr) []tmql.Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*tmql.Binary); ok && b.Op == tmql.OpAnd {
		return append(splitConjuncts(b.L), splitConjuncts(b.R)...)
	}
	return []tmql.Expr{e}
}

func conjoin(parts []tmql.Expr) tmql.Expr {
	var out tmql.Expr
	for _, p := range parts {
		out = conjoinPair(out, p)
	}
	return out
}

func conjoinPair(a, b tmql.Expr) tmql.Expr {
	switch {
	case a == nil:
		return b
	case b == nil:
		return a
	default:
		return &tmql.Binary{Op: tmql.OpAnd, L: a, R: b}
	}
}

func trueExpr() tmql.Expr {
	return &tmql.Lit{V: value.True}
}

// topLabels returns the top-level attribute labels of a plan's tuple-typed
// element.
func topLabels(p algebra.Plan) []string {
	et := p.Elem()
	out := make([]string, 0, len(et.Fields))
	for _, f := range et.Fields {
		out = append(out, f.Label)
	}
	return out
}

// currentLabels returns base labels that still exist on p (projection target
// after nest joins added temporary labels).
func currentLabels(p algebra.Plan, base []string) []string {
	et := p.Elem()
	out := make([]string, 0, len(base))
	for _, l := range base {
		if _, ok := et.Field(l); ok {
			out = append(out, l)
		}
	}
	return out
}

// scanPlan returns a table scan typed as the Plan interface so callers can
// reassign the variable to wrapping operators.
func (t *Translator) scanPlan(name string) (algebra.Plan, error) {
	return t.b.Scan(name)
}
