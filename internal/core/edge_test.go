package core

import (
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

// TestNonNeighborCorrelationFallsBack: the paper restricts §8 to neighbor
// predicates (free variables declared in the immediately surrounding block).
// A subquery referencing its grandparent variable must not be mis-flattened;
// the translator keeps the offending conjunct for naive evaluation and the
// answer must match the oracle.
func TestNonNeighborCorrelationFallsBack(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	q := `SELECT x FROM X x
	 WHERE x.a SUBSETEQ
	   SELECT y.a FROM Y y
	   WHERE x.b = y.b AND
	     y.c SUBSETEQ SELECT z.c FROM Z z WHERE x.b = z.d` // x, not y: grandparent
	want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
	got := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
	if !value.Equal(got, want) {
		t.Errorf("non-neighbor correlation broke semantics:\n got %s\nwant %s", got, want)
	}
}

// TestShadowedVariableStaysNaive: if the inner block reuses the outer
// variable name, flattening would capture; the translator must fall back.
func TestShadowedVariableStaysNaive(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	q := `SELECT x FROM X x WHERE x.b IN SELECT x.d FROM Y x WHERE x.b > 0`
	want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
	got := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
	if !value.Equal(got, want) {
		t.Errorf("shadowing broke semantics:\n got %s\nwant %s", got, want)
	}
}

// TestUncorrelatedSubqueryIsConstant: per §3.2, subqueries without free
// variables are constants and stay in place.
func TestUncorrelatedSubqueryIsConstant(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	q := `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE y.a > 1`
	want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
	got := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
	if !value.Equal(got, want) {
		t.Errorf("uncorrelated subquery broke semantics")
	}
	plan := planFor(t, cat, q, StrategyNestJoin)
	ops := algebra.CountOps(plan)
	if ops["SemiJoin"]+ops["AntiJoin"]+ops["NestJoin"] != 0 {
		t.Errorf("uncorrelated subquery should not be joined:\n%s", algebra.Explain(plan))
	}
}

// TestGroupingWithCorrelatedJoinFunction: the nest join function G(x, y) may
// reference the outer variable (the paper's general form).
func TestGroupingWithCorrelatedJoinFunction(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	q := `SELECT x FROM X x
	 WHERE x.a SUBSETEQ SELECT y.a + x.b - x.b FROM Y y WHERE x.b = y.b`
	want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
	got := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
	if !value.Equal(got, want) {
		t.Errorf("correlated join function broke semantics")
	}
	// Kim cannot pre-group a correlated G and must fall back (decompose
	// rejects it), still agreeing with the oracle.
	kim := run(t, cat, db, q, StrategyKim, planner.ImplAuto)
	if !value.Equal(kim, want) {
		t.Errorf("Kim fallback on correlated G broke semantics")
	}
}

// TestEmptyTables: every strategy on empty inputs.
func TestEmptyTables(t *testing.T) {
	cat, db := datagen.XYZ(datagen.Spec{NX: 0, NY: 0, NZ: 0, Keys: 1, Seed: 1})
	queries := []string{
		`SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
		`SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`,
		`SELECT (b = x.b, ys = SELECT y.a FROM Y y WHERE x.b = y.d) FROM X x`,
	}
	for _, q := range queries {
		for _, s := range []Strategy{StrategyNaive, StrategyNestJoin, StrategyOuterJoin, StrategyKim} {
			got := run(t, cat, db, q, s, planner.ImplAuto)
			if !got.IsEmptySet() {
				t.Errorf("%s on empty DB: %s", s, got)
			}
		}
	}
}

// TestEmptyInnerOnly: X populated, Y empty — every X tuple is dangling. The
// discriminating case: for x.a = ∅ the ⊆ predicate holds against ∅, so the
// answer is non-empty while Kim returns nothing.
func TestEmptyInnerOnly(t *testing.T) {
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 20, NY: 0, NZ: 0, Keys: 4, DanglingFrac: 0, SetAttrCard: 2, Seed: 9,
	})
	q := `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`
	want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
	got := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
	if !value.Equal(got, want) {
		t.Errorf("empty inner: got %s want %s", got, want)
	}
	xTab, _ := db.Table("X")
	emptyA := 0
	for _, x := range xTab.Rows() {
		if x.MustGet("a").IsEmptySet() {
			emptyA++
		}
	}
	if emptyA > 0 && want.Len() == 0 {
		t.Error("instance should have qualifying x.a = ∅ tuples")
	}
	kim := run(t, cat, db, q, StrategyKim, planner.ImplAuto)
	if want.Len() > 0 && kim.Len() != 0 {
		t.Errorf("Kim with empty inner should lose everything, got %d", kim.Len())
	}
}

// TestRewriteOptionOnGeneratedQueries: applying the §6 rewrite rules after
// translation must never change results.
func TestRewriteOptionEquivalence(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	queries := []string{
		section8Query,
		section8FlatVariant,
		`SELECT x.b FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`,
		`SELECT (b = x.b) FROM X x WHERE TRUE AND x.b > 0`,
	}
	for _, q := range queries {
		want := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
		e := mustBind(t, cat, q)
		tr := NewTranslator(cat)
		plan, err := tr.Translate(e, StrategyNestJoin)
		if err != nil {
			t.Fatal(err)
		}
		opt, err := algebra.Optimize(tr.Builder(), plan)
		if err != nil {
			t.Fatalf("Optimize(%s): %v", q, err)
		}
		got := execPlan(t, db, opt)
		if !value.Equal(got, want) {
			t.Errorf("rewrite changed semantics on %s:\nbefore %s\nafter  %s\nplan:\n%s",
				q, want, got, algebra.Explain(opt))
		}
	}
}
