package core

import (
	"tmdb/internal/algebra"
	"tmdb/internal/tmql"
)

// translateOuterJoin implements the relational repair of the COUNT bug in
// the style of Ganski–Wong (§2), expressed with the §6 identity
//
//	X △[Q,G;a] Y  =  ν*[a](X ⟗[Q] Y)
//
// : a left outerjoin preserves dangling outer tuples with NULL padding, the
// NULL-aware nest ν* turns each x's matches (or its padding) back into a set
// — ∅ for dangling x — and the predicate between blocks is then applied to
// that set. The nest join computes the same thing in one operator without
// ever materializing NULLs; benchmarks B3 measure the difference, and the
// property test asserts the equivalence.
//
// Queries outside the canonical two-block form fall back to naive
// evaluation.
func (t *Translator) translateOuterJoin(q tmql.Expr) (algebra.Plan, error) {
	c, ok := decompose(q)
	if !ok {
		return t.b.EvalSet(q)
	}
	sfw := q.(*tmql.SFW)
	if c.selOnly {
		return t.translateNestJoin(q)
	}

	xp, err := t.scanPlan(c.xTable)
	if err != nil {
		return nil, err
	}
	xLabels := topLabels(xp)
	for _, pc := range c.plain {
		if xp, err = t.b.Select(xp, c.x, pc); err != nil {
			return nil, err
		}
	}
	yp, err := t.scanPlan(c.yTable)
	if err != nil {
		return nil, err
	}
	for _, lc := range c.local {
		if yp, err = t.b.Select(yp, c.y, lc); err != nil {
			return nil, err
		}
	}

	// Wrap the inner operand so the outerjoin concatenation cannot collide
	// with outer attributes: elements become (yw = y-row).
	yw := t.freshName("yw")
	wrapped, err := t.b.Map(yp, c.y, &tmql.TupleCons{
		Fields: []tmql.TupleField{{Label: yw, E: &tmql.Var{Name: c.y}}},
	})
	if err != nil {
		return nil, err
	}

	// Left outerjoin on Q with y readdressed through the wrapper.
	rv := t.freshName("r")
	joinPred := conjoin(c.join)
	if joinPred == nil {
		joinPred = trueExpr()
	}
	joinPred = SubstVar(joinPred, c.y, fieldOf(rv, yw))
	oj, err := t.b.Join(algebra.JoinLeftOuter, xp, wrapped, c.x, rv, joinPred)
	if err != nil {
		return nil, err
	}

	// ν*: nest the wrapped attribute; NULL padding nests to ∅.
	zsLabel := t.freshName("zs")
	nested, err := t.b.Nest(oj, []string{yw}, zsLabel, true)
	if err != nil {
		return nil, err
	}

	// The subquery result z is now SELECT G FROM x.zs w (with y ↦ w.yw).
	g := t.freshName("w")
	zExpr := &tmql.SFW{
		Result: SubstVar(c.result, c.y, fieldOf(g, yw)),
		Froms:  []tmql.FromItem{{Var: g, Src: fieldOf(c.x, zsLabel)}},
	}
	selPred := ReplaceNode(c.conjunct, c.sub, zExpr)
	sel, err := t.b.Select(nested, c.x, selPred)
	if err != nil {
		return nil, err
	}

	proj, err := t.b.Project(sel, c.x, xLabels...)
	if err != nil {
		return nil, err
	}
	return t.b.Map(proj, c.x, InlineLets(sfw.Result))
}
