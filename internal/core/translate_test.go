package core

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/exec"
	"tmdb/internal/planner"
	"tmdb/internal/schema"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// run translates and executes src under the strategy, returning the result
// set.
func run(t *testing.T, cat *schema.Catalog, db *storage.DB, src string, s Strategy, ji planner.JoinImpl) value.Value {
	t.Helper()
	v, err := runE(cat, db, src, s, ji)
	if err != nil {
		t.Fatalf("run(%s, %s): %v", s, src, err)
	}
	return v
}

func runE(cat *schema.Catalog, db *storage.DB, src string, s Strategy, ji planner.JoinImpl) (value.Value, error) {
	e, err := tmql.Parse(src)
	if err != nil {
		return value.Value{}, fmt.Errorf("parse: %w", err)
	}
	be, err := tmql.NewBinder(cat).Bind(e)
	if err != nil {
		return value.Value{}, fmt.Errorf("bind: %w", err)
	}
	plan, err := NewTranslator(cat).Translate(be, s)
	if err != nil {
		return value.Value{}, fmt.Errorf("translate: %w", err)
	}
	it, err := planner.New(exec.NewCtx(db), planner.Options{Joins: ji}).Compile(plan)
	if err != nil {
		return value.Value{}, fmt.Errorf("compile: %w", err)
	}
	v, err := exec.Collect(it)
	if err != nil {
		return value.Value{}, fmt.Errorf("exec (%s): %w", algebra.Explain(plan), err)
	}
	return v, nil
}

// planFor translates src under the strategy and returns the logical plan.
func planFor(t *testing.T, cat *schema.Catalog, src string, s Strategy) algebra.Plan {
	t.Helper()
	e, err := tmql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	be, err := tmql.NewBinder(cat).Bind(e)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := NewTranslator(cat).Translate(be, s)
	if err != nil {
		t.Fatalf("translate %s: %v", s, err)
	}
	return plan
}

// assertAllStrategiesAgree checks naive = nestjoin (all physical impls) =
// outerjoin on the query; Kim is checked separately where applicable because
// of its documented bug.
func assertAllStrategiesAgree(t *testing.T, cat *schema.Catalog, db *storage.DB, src string) value.Value {
	t.Helper()
	want := run(t, cat, db, src, StrategyNaive, planner.ImplAuto)
	for _, ji := range []planner.JoinImpl{planner.ImplAuto, planner.ImplNestedLoop} {
		if got := run(t, cat, db, src, StrategyNestJoin, ji); !value.Equal(got, want) {
			t.Errorf("nestjoin/%s differs from naive on %s:\n got %s\nwant %s", ji, src, got, want)
		}
	}
	if got := run(t, cat, db, src, StrategyOuterJoin, planner.ImplAuto); !value.Equal(got, want) {
		t.Errorf("outerjoin differs from naive on %s:\n got %s\nwant %s", src, got, want)
	}
	return want
}

// --- WHERE-clause nesting (§4) ---

func TestWhereNestingStrategies(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	queries := []string{
		// Flat-classifiable predicates (Theorem 1): semijoin/antijoin.
		`SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
		`SELECT x FROM X x WHERE COUNT(SELECT y.a FROM Y y WHERE x.b = y.d) > 0`,
		`SELECT x FROM X x WHERE (SELECT y.a FROM Y y WHERE x.b = y.d) = {}`,
		`SELECT x FROM X x WHERE x.a SUPSETEQ SELECT y.a FROM Y y WHERE x.b = y.d`,
		`SELECT x FROM X x WHERE x.a INTERSECT (SELECT y.a FROM Y y WHERE x.b = y.d) <> {}`,
		`SELECT x FROM X x WHERE EXISTS v IN (SELECT y.a FROM Y y WHERE x.b = y.d) (v IN x.a)`,
		`SELECT x FROM X x WHERE FORALL v IN (SELECT y.a FROM Y y WHERE x.b = y.d) (v > 0)`,
		// WITH form (the paper's notation).
		`SELECT x FROM X x WHERE x.b IN z WITH z = SELECT y.d FROM Y y WHERE x.b = y.d`,
		// Grouping predicates: nest join + selection.
		`SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.d`,
		`SELECT x FROM X x WHERE COUNT(SELECT y.a FROM Y y WHERE x.b = y.d) = 2`,
		`SELECT x FROM X x WHERE x.a = SELECT y.a FROM Y y WHERE x.b = y.d`,
		`SELECT x.b FROM X x WHERE x.a SUBSET SELECT y.a FROM Y y WHERE x.b = y.d`,
		// Non-equi correlation (forces nested-loop physical plans).
		`SELECT x FROM X x WHERE x.b IN SELECT y.a FROM Y y WHERE y.d < x.b`,
		// Mixed plain + subquery conjuncts.
		`SELECT x FROM X x WHERE x.b > 2 AND x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.d) AND COUNT(x.a) < 3`,
		// Result expression other than x.
		`SELECT (b = x.b, n = COUNT(x.a)) FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
	}
	for _, q := range queries {
		assertAllStrategiesAgree(t, cat, db, q)
	}
}

func TestPlanShapes(t *testing.T) {
	cat, _ := datagen.XYZ(datagen.DefaultSpec())
	cases := []struct {
		src    string
		wantOp string
		banOps []string
	}{
		{
			`SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
			"SemiJoin", []string{"NestJoin", "AntiJoin"},
		},
		{
			`SELECT x FROM X x WHERE x.b NOT IN SELECT y.d FROM Y y WHERE x.b = y.d`,
			"AntiJoin", []string{"NestJoin", "SemiJoin"},
		},
		{
			`SELECT x FROM X x WHERE x.a SUPSETEQ SELECT y.a FROM Y y WHERE x.b = y.d`,
			"AntiJoin", []string{"NestJoin"},
		},
		{
			`SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.d`,
			"NestJoin", []string{"SemiJoin", "AntiJoin"},
		},
		{
			`SELECT x FROM X x WHERE x.b = COUNT(SELECT y.a FROM Y y WHERE x.b = y.d)`,
			"NestJoin", []string{"SemiJoin", "AntiJoin"},
		},
	}
	for _, c := range cases {
		plan := planFor(t, cat, c.src, StrategyNestJoin)
		ops := algebra.CountOps(plan)
		if ops[c.wantOp] == 0 {
			t.Errorf("plan for %s lacks %s:\n%s", c.src, c.wantOp, algebra.Explain(plan))
		}
		for _, ban := range c.banOps {
			if ops[ban] != 0 {
				t.Errorf("plan for %s should not contain %s:\n%s", c.src, ban, algebra.Explain(plan))
			}
		}
		if ops["Eval"] != 0 {
			t.Errorf("plan for %s fell back to naive:\n%s", c.src, algebra.Explain(plan))
		}
	}
}

// --- The COUNT bug (§2) ---

func TestCountBug(t *testing.T) {
	cat, db := datagen.RS(30, 60, 6, 0.3, 11)
	q := `SELECT r FROM R r WHERE r.B = COUNT(SELECT s.D FROM S s WHERE r.C = s.C)`

	want := assertAllStrategiesAgree(t, cat, db, q)

	// Kim's transformation must lose exactly the dangling R tuples with
	// B = 0 — the COUNT bug.
	kim := run(t, cat, db, q, StrategyKim, planner.ImplAuto)
	lost := value.Diff(want, kim)
	if lost.Len() == 0 {
		t.Fatal("test instance does not exhibit the COUNT bug (no dangling tuples lost)")
	}
	if extra := value.Diff(kim, want); extra.Len() != 0 {
		t.Errorf("Kim produced spurious tuples: %s", extra)
	}
	sTab, _ := db.Table("S")
	sKeys := map[int64]bool{}
	for _, s := range sTab.Rows() {
		sKeys[s.MustGet("C").AsInt()] = true
	}
	for _, r := range lost.Elems() {
		if r.MustGet("B").AsInt() != 0 {
			t.Errorf("lost tuple %s has B ≠ 0: not the COUNT-bug pattern", r)
		}
		if sKeys[r.MustGet("C").AsInt()] {
			t.Errorf("lost tuple %s is not dangling", r)
		}
	}
}

// TestSubsetEqBug reproduces §4.1's SUBSETEQ bug: X tuples with x.a = ∅ and
// no matching Y tuple are lost by Kim's transformation but kept by the nest
// join (x.a ⊆ ∅ holds for x.a = ∅).
func TestSubsetEqBug(t *testing.T) {
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 30, NY: 60, NZ: 0, Keys: 6, DanglingFrac: 0.3, SetAttrCard: 2, Seed: 3,
	})
	q := `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`

	want := assertAllStrategiesAgree(t, cat, db, q)
	kim := run(t, cat, db, q, StrategyKim, planner.ImplAuto)
	lost := value.Diff(want, kim)
	if lost.Len() == 0 {
		t.Fatal("test instance does not exhibit the SUBSETEQ bug")
	}
	for _, x := range lost.Elems() {
		if !x.MustGet("a").IsEmptySet() {
			t.Errorf("lost tuple %s has a ≠ ∅: not the SUBSETEQ-bug pattern", x)
		}
	}
}

// --- Nesting in the SELECT clause (§5) ---

func TestSelectClauseNesting(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	queries := []string{
		`SELECT (b = x.b, ys = SELECT y.a FROM Y y WHERE x.b = y.d) FROM X x`,
		`SELECT (b = x.b, n = COUNT(SELECT y FROM Y y WHERE x.b = y.d)) FROM X x`,
		`SELECT (b = x.b, ys = SELECT y.a FROM Y y WHERE x.b = y.d) FROM X x WHERE x.b > 0`,
	}
	for _, q := range queries {
		want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
		got := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
		if !value.Equal(got, want) {
			t.Errorf("SELECT nesting differs on %s:\n got %s\nwant %s", q, got, want)
		}
		plan := planFor(t, cat, q, StrategyNestJoin)
		if algebra.CountOps(plan)["NestJoin"] == 0 {
			t.Errorf("SELECT-clause nesting should use a nest join:\n%s", algebra.Explain(plan))
		}
	}
}

// TestQ2Company runs the paper's Q2 on the company schema under both
// strategies.
func TestQ2Company(t *testing.T) {
	cat, db := datagen.Company(5, 25, 9)
	q := `SELECT (dname = d.name,
	        emps = SELECT e.name FROM EMP e WHERE e.address.city = d.address.city)
	      FROM DEPT d`
	want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
	got := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
	if !value.Equal(got, want) {
		t.Errorf("Q2 differs:\n got %s\nwant %s", got, want)
	}
}

// TestQ1CompanyStaysNested: Q1's subquery ranges over the set-valued
// attribute d.emps, so the paper keeps it nested; the translator must fall
// back to evaluating the predicate in place (no join operators).
func TestQ1CompanyStaysNested(t *testing.T) {
	cat, db := datagen.Company(6, 30, 3)
	q := `SELECT d FROM DEPT d
	      WHERE (s = d.address.street, c = d.address.city)
	        IN SELECT (s = e.address.street, c = e.address.city) FROM d.emps e`
	want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
	got := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
	if !value.Equal(got, want) {
		t.Errorf("Q1 differs:\n got %s\nwant %s", got, want)
	}
	plan := planFor(t, cat, q, StrategyNestJoin)
	ops := algebra.CountOps(plan)
	if ops["NestJoin"]+ops["SemiJoin"]+ops["AntiJoin"] != 0 {
		t.Errorf("Q1 must not be flattened (set-valued operand):\n%s", algebra.Explain(plan))
	}
}

// --- UNNEST special case (§5) ---

func TestUnnestCollapse(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	q := `UNNEST(SELECT (SELECT (a = x.b, b = y.a) FROM Y y WHERE x.b = y.d) FROM X x)`
	want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
	got := run(t, cat, db, q, StrategyNestJoin, planner.ImplAuto)
	if !value.Equal(got, want) {
		t.Errorf("UNNEST collapse differs:\n got %s\nwant %s", got, want)
	}
	plan := planFor(t, cat, q, StrategyNestJoin)
	ops := algebra.CountOps(plan)
	if ops["Join"] == 0 || ops["NestJoin"] != 0 || ops["Eval"] != 0 {
		t.Errorf("UNNEST special case should be a flat join:\n%s", algebra.Explain(plan))
	}
}

// --- §8: the three-block linear query ---

const section8Query = `
SELECT x FROM X x
WHERE x.a SUBSETEQ
  SELECT y.a FROM Y y
  WHERE x.b = y.b AND
    y.c SUBSETEQ SELECT z.c FROM Z z WHERE y.d = z.d`

// section8FlatVariant is the paper's closing remark: with ⊆ changed to
// ∈ / ∉ the nest joins become a semijoin and an antijoin.
const section8FlatVariant = `
SELECT x FROM X x
WHERE x.b IN
  SELECT y.a FROM Y y
  WHERE x.b = y.b AND
    y.a NOT IN SELECT z.c FROM Z z WHERE y.d = z.d`

func TestSection8ThreeBlockQuery(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	assertAllStrategiesAgree(t, cat, db, section8Query)

	plan := planFor(t, cat, section8Query, StrategyNestJoin)
	ops := algebra.CountOps(plan)
	if ops["NestJoin"] != 2 {
		t.Errorf("§8 strategy should use exactly 2 nest joins, got %d:\n%s",
			ops["NestJoin"], algebra.Explain(plan))
	}
	if ops["Eval"] != 0 {
		t.Errorf("§8 plan fell back to naive:\n%s", algebra.Explain(plan))
	}
}

func TestSection8FlatVariant(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	assertAllStrategiesAgree(t, cat, db, section8FlatVariant)

	plan := planFor(t, cat, section8FlatVariant, StrategyNestJoin)
	ops := algebra.CountOps(plan)
	if ops["SemiJoin"] != 1 || ops["AntiJoin"] != 1 || ops["NestJoin"] != 0 {
		t.Errorf("flat §8 variant should be semijoin+antijoin, got %v:\n%s",
			ops, algebra.Explain(plan))
	}
}

// --- Flat multi-source FROM queries ---

func TestFlatJoinQueries(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	queries := []string{
		`SELECT (xb = x.b, ya = y.a) FROM X x, Y y WHERE x.b = y.d`,
		`SELECT (xb = x.b, ya = y.a, zc = z.c) FROM X x, Y y, Z z WHERE x.b = y.d AND y.a = z.c`,
		`SELECT (xb = x.b) FROM X x, Y y WHERE x.b = y.d AND y.a > 1 AND x.b > 0`,
		// Non-equi join predicate.
		`SELECT (xb = x.b, ya = y.a) FROM X x, Y y WHERE x.b < y.d AND y.d < 3`,
	}
	for _, q := range queries {
		want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
		for _, ji := range []planner.JoinImpl{planner.ImplAuto, planner.ImplNestedLoop} {
			got := run(t, cat, db, q, StrategyNestJoin, ji)
			if !value.Equal(got, want) {
				t.Errorf("flat join (%s) differs on %s:\n got %s\nwant %s", ji, q, got, want)
			}
		}
	}
}

// --- Multiple subqueries per WHERE (paper future work) ---

func TestMultipleSubqueries(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	queries := []string{
		// Two subquery conjuncts.
		`SELECT x FROM X x
		 WHERE x.b IN (SELECT y.d FROM Y y WHERE x.b = y.d)
		   AND x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b)`,
		// Two subqueries inside one conjunct (forces double nest join).
		`SELECT x FROM X x
		 WHERE COUNT(SELECT y.a FROM Y y WHERE x.b = y.d) =
		       COUNT(SELECT z.c FROM Z z WHERE x.b = z.d)`,
	}
	for _, q := range queries {
		assertAllStrategiesAgree(t, cat, db, q)
	}
}

// --- Property test: random nested queries, all strategies vs the oracle ---

func TestRandomQueriesAllStrategiesQuick(t *testing.T) {
	specs := []datagen.Spec{
		{NX: 15, NY: 40, NZ: 30, Keys: 5, DanglingFrac: 0.3, SetAttrCard: 3, Seed: 2},
		{NX: 25, NY: 25, NZ: 25, Keys: 3, DanglingFrac: 0.0, SetAttrCard: 2, Seed: 5},
		{NX: 10, NY: 80, NZ: 10, Keys: 10, DanglingFrac: 0.5, SetAttrCard: 4, Seed: 8},
	}
	r := rand.New(rand.NewSource(42))
	for si, spec := range specs {
		cat, db := datagen.XYZ(spec)
		for i := 0; i < 40; i++ {
			q := randomNestedQuery(r)
			want, err := runE(cat, db, q, StrategyNaive, planner.ImplAuto)
			if err != nil {
				t.Fatalf("spec %d naive failed on %s: %v", si, q, err)
			}
			got, err := runE(cat, db, q, StrategyNestJoin, planner.ImplAuto)
			if err != nil {
				t.Fatalf("spec %d nestjoin failed on %s: %v", si, q, err)
			}
			if !value.Equal(got, want) {
				t.Fatalf("spec %d: nestjoin differs on %s:\n got %s\nwant %s", si, q, got, want)
			}
			oj, err := runE(cat, db, q, StrategyOuterJoin, planner.ImplAuto)
			if err != nil {
				t.Fatalf("spec %d outerjoin failed on %s: %v", si, q, err)
			}
			if !value.Equal(oj, want) {
				t.Fatalf("spec %d: outerjoin differs on %s:\n got %s\nwant %s", si, q, oj, want)
			}
		}
	}
}

// randomNestedQuery generates a two-block query over the XYZ schema with a
// randomly chosen predicate between blocks, drawn from the forms of Table 2.
func randomNestedQuery(r *rand.Rand) string {
	sub := fmt.Sprintf("SELECT y.a FROM Y y WHERE x.b = y.%s", pick(r, "b", "d"))
	preds := []string{
		"x.b IN (%s)",
		"x.b NOT IN (%s)",
		"(%s) = {}",
		"(%s) <> {}",
		"COUNT(%s) = 0",
		"COUNT(%s) > 0",
		"COUNT(%s) = 2",
		"x.b = COUNT(%s)",
		"x.a SUBSETEQ (%s)",
		"x.a SUPSETEQ (%s)",
		"x.a SUBSET (%s)",
		"x.a SUPSET (%s)",
		"x.a = (%s)",
		"x.a INTERSECT (%s) = {}",
		"x.a INTERSECT (%s) <> {}",
		"EXISTS v IN (%s) (v IN x.a)",
		"FORALL v IN (%s) (v NOT IN x.a)",
		"NOT (x.a SUPSETEQ (%s))",
	}
	pred := fmt.Sprintf(pick(r, preds...), sub)
	extra := ""
	if r.Intn(2) == 0 {
		extra = fmt.Sprintf(" AND x.b %s %d", pick(r, "<", ">", "<=", ">="), r.Intn(6))
	}
	result := pick(r, "x", "x.b", "(b = x.b, n = COUNT(x.a))")
	return fmt.Sprintf("SELECT %s FROM X x WHERE %s%s", result, pred, extra)
}

func pick[T any](r *rand.Rand, xs ...T) T { return xs[r.Intn(len(xs))] }

// --- Kim fallback and error paths ---

func TestKimFallbackAndErrors(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	// Outside canonical form (SELECT-clause nesting): falls back to naive.
	q := `SELECT (b = x.b, ys = SELECT y.a FROM Y y WHERE x.b = y.d) FROM X x`
	want := run(t, cat, db, q, StrategyNaive, planner.ImplAuto)
	got := run(t, cat, db, q, StrategyKim, planner.ImplAuto)
	if !value.Equal(got, want) {
		t.Error("Kim fallback should match naive")
	}
	// Non-equi correlation: Kim cannot group.
	_, err := runE(cat, db,
		`SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE y.d < x.b`,
		StrategyKim, planner.ImplAuto)
	if err == nil || !strings.Contains(err.Error(), "equi-correlation") {
		t.Errorf("Kim on non-equi correlation: %v", err)
	}
}

func TestStrategyString(t *testing.T) {
	for s, want := range map[Strategy]string{
		StrategyNaive: "naive", StrategyNestJoin: "nestjoin",
		StrategyKim: "kim", StrategyOuterJoin: "outerjoin",
	} {
		if s.String() != want {
			t.Errorf("%d.String() = %s", s, s.String())
		}
	}
}

// mustBind parses and binds a query for direct translator access.
func mustBind(t *testing.T, cat *schema.Catalog, src string) tmql.Expr {
	t.Helper()
	e, err := tmql.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	be, err := tmql.NewBinder(cat).Bind(e)
	if err != nil {
		t.Fatal(err)
	}
	return be
}

// execPlan compiles and runs a logical plan, returning its result set.
func execPlan(t *testing.T, db *storage.DB, plan algebra.Plan) value.Value {
	t.Helper()
	it, err := planner.New(exec.NewCtx(db), planner.Options{}).Compile(plan)
	if err != nil {
		t.Fatal(err)
	}
	v, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
