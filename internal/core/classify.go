// Package core implements the paper's primary contribution: the unnesting
// optimizer for nested TM queries. It contains
//
//   - the Table 2 / Theorem 1 predicate classifier deciding whether the
//     predicate between query blocks rewrites to ∃v ∈ z (P′) or ¬∃v ∈ z (P′)
//     — in which case grouping is unnecessary and a flat semijoin/antijoin
//     suffices — or requires grouping (classify.go);
//   - the translator from nested SFW expressions to algebra plans built on
//     the nest join, semijoin, and antijoin, processing linear nested queries
//     bottom-up as in §8 (translate.go);
//   - two relational baselines for the experiments: Kim's group-then-join
//     transformation, which exhibits the (generalized) COUNT bug on dangling
//     tuples (kim.go), and the outerjoin + ν* repair in the style of
//     Ganski–Wong (outerjoin.go).
package core

import (
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Class is the outcome of classifying a predicate P(x, z) with respect to
// the subquery-result variable z.
type Class uint8

// Classification outcomes. ClassExists and ClassNotExists are Theorem 1's
// two flat forms; ClassGrouping means the subquery result must be available
// as a whole (§4.1), so the nest join is required.
const (
	ClassExists    Class = iota // P ⟺ ∃v ∈ z (P′)  → semijoin
	ClassNotExists              // P ⟺ ¬∃v ∈ z (P′) → antijoin
	ClassGrouping               // grouping needed   → nest join
)

// String names the class.
func (c Class) String() string {
	switch c {
	case ClassExists:
		return "exists"
	case ClassNotExists:
		return "not-exists"
	case ClassGrouping:
		return "grouping"
	}
	return "class?"
}

// Classification is the result of Classify. For the two flat classes, V is
// the element variable and Inner the rewritten P′(x, v); Inner never mentions
// z. For ClassGrouping both are zero.
type Classification struct {
	Class Class
	V     string
	Inner tmql.Expr
}

// Classify rewrites the predicate between query blocks, pred, with respect
// to the set variable z into one of Theorem 1's flat forms if possible.
// fresh supplies fresh variable names for the introduced element variable.
//
// The implemented rewrite table extends the paper's Table 2:
//
//	z = ∅, ∅ = z, COUNT(z) = 0, COUNT(z) <= 0   → ¬∃v∈z (true)
//	z <> ∅, COUNT(z) > 0, COUNT(z) >= 1, 0 < COUNT(z), COUNT(z) <> 0
//	                                              → ∃v∈z (true)
//	e IN z                                        → ∃v∈z (v = e)
//	e NOT IN z                                    → ¬∃v∈z (v = e)
//	e SUPSETEQ z, z SUBSETEQ e                    → ¬∃v∈z (v NOT IN e)
//	e INTERSECT z = ∅ (either orientation)        → ¬∃v∈z (v IN e)
//	e INTERSECT z <> ∅                            → ∃v∈z (v IN e)
//	EXISTS v IN z (p)                             → ∃v∈z (p)
//	FORALL v IN z (p)                             → ¬∃v∈z (NOT p)
//	NOT P                                         → complement of P's class
//
// (with e, p free of z). Everything else mentioning z — x.a = COUNT(z),
// x.a SUBSETEQ z, x.a SUBSET z, x.a SUPSET z, x.a = z, arithmetic over
// aggregates, disjunctions, multiple occurrences of z — classifies as
// ClassGrouping, matching the lower half of Table 2. Whether grouping is
// always necessary for those forms is the paper's open question; the
// translator conservatively uses the nest join for all of them.
func Classify(pred tmql.Expr, z string, fresh func() string) Classification {
	if !mentionsVar(pred, z) {
		// No occurrence of z at all: the caller should have handled this as
		// an ordinary selection; treat as grouping-free trivial exists-form
		// conservatively via grouping (never expected in practice).
		return Classification{Class: ClassGrouping}
	}
	switch n := pred.(type) {
	case *tmql.Unary:
		if n.Op == tmql.OpNot {
			inner := Classify(n.X, z, fresh)
			switch inner.Class {
			case ClassExists:
				return Classification{Class: ClassNotExists, V: inner.V, Inner: inner.Inner}
			case ClassNotExists:
				return Classification{Class: ClassExists, V: inner.V, Inner: inner.Inner}
			}
			return Classification{Class: ClassGrouping}
		}

	case *tmql.Quant:
		// Quantification directly over z.
		if isVar(n.Over, z) && !mentionsVar(n.Pred, z) {
			if n.Kind == tmql.QExists {
				return Classification{Class: ClassExists, V: n.Var, Inner: n.Pred}
			}
			// ∀v∈z (p)  ⟺  ¬∃v∈z (¬p)
			return Classification{
				Class: ClassNotExists,
				V:     n.Var,
				Inner: &tmql.Unary{Op: tmql.OpNot, X: n.Pred},
			}
		}

	case *tmql.Binary:
		if c, ok := classifyBinary(n, z, fresh); ok {
			return c
		}
	}
	return Classification{Class: ClassGrouping}
}

func classifyBinary(n *tmql.Binary, z string, fresh func() string) (Classification, bool) {
	trueLit := func() tmql.Expr { return &tmql.Lit{V: value.True} }

	// Emptiness tests: z = ∅, ∅ = z, z <> ∅, ∅ <> z.
	if n.Op == tmql.OpEq || n.Op == tmql.OpNe {
		var other tmql.Expr
		if isVar(n.L, z) {
			other = n.R
		} else if isVar(n.R, z) {
			other = n.L
		}
		if other != nil && isEmptySetLit(other) {
			v := fresh()
			if n.Op == tmql.OpEq {
				return Classification{Class: ClassNotExists, V: v, Inner: trueLit()}, true
			}
			return Classification{Class: ClassExists, V: v, Inner: trueLit()}, true
		}
	}

	// COUNT(z) compared against a constant: emptiness in disguise.
	if n.Op.IsComparison() {
		if c, ok := classifyCountComparison(n, z, fresh); ok {
			return c, true
		}
	}

	// Membership: e IN z / e NOT IN z (e free of z).
	if (n.Op == tmql.OpIn || n.Op == tmql.OpNotIn) && isVar(n.R, z) && !mentionsVar(n.L, z) {
		v := fresh()
		inner := &tmql.Binary{Op: tmql.OpEq, L: &tmql.Var{Name: v}, R: n.L}
		if n.Op == tmql.OpIn {
			return Classification{Class: ClassExists, V: v, Inner: inner}, true
		}
		return Classification{Class: ClassNotExists, V: v, Inner: inner}, true
	}

	// Inclusion: e ⊇ z (either spelled e SUPSETEQ z or z SUBSETEQ e), e free
	// of z: ⟺ ¬∃v∈z (v ∉ e).
	var includer tmql.Expr
	if n.Op == tmql.OpSupsetEq && isVar(n.R, z) && !mentionsVar(n.L, z) {
		includer = n.L
	}
	if n.Op == tmql.OpSubsetEq && isVar(n.L, z) && !mentionsVar(n.R, z) {
		includer = n.R
	}
	if includer != nil {
		v := fresh()
		return Classification{
			Class: ClassNotExists,
			V:     v,
			Inner: &tmql.Binary{Op: tmql.OpNotIn, L: &tmql.Var{Name: v}, R: includer},
		}, true
	}

	// Disjointness: (e INTERSECT z) = ∅ and its complement (either operand
	// order for the intersection).
	if (n.Op == tmql.OpEq || n.Op == tmql.OpNe) && isEmptySetLit(n.R) {
		if inter, ok := n.L.(*tmql.Binary); ok && inter.Op == tmql.OpIntersect {
			var e tmql.Expr
			if isVar(inter.L, z) && !mentionsVar(inter.R, z) {
				e = inter.R
			} else if isVar(inter.R, z) && !mentionsVar(inter.L, z) {
				e = inter.L
			}
			if e != nil {
				v := fresh()
				inner := &tmql.Binary{Op: tmql.OpIn, L: &tmql.Var{Name: v}, R: e}
				if n.Op == tmql.OpEq {
					return Classification{Class: ClassNotExists, V: v, Inner: inner}, true
				}
				return Classification{Class: ClassExists, V: v, Inner: inner}, true
			}
		}
	}

	return Classification{}, false
}

// classifyCountComparison handles COUNT(z) OP k and k OP COUNT(z) for
// constant k where the comparison is equivalent to an emptiness or
// non-emptiness test.
func classifyCountComparison(n *tmql.Binary, z string, fresh func() string) (Classification, bool) {
	countOf := func(e tmql.Expr) bool {
		a, ok := e.(*tmql.Agg)
		return ok && a.Kind == value.AggCount && isVar(a.X, z)
	}
	intLit := func(e tmql.Expr) (int64, bool) {
		l, ok := e.(*tmql.Lit)
		if !ok || l.V.Kind() != value.KindInt {
			return 0, false
		}
		return l.V.AsInt(), true
	}

	var k int64
	var op tmql.Op
	switch {
	case countOf(n.L):
		if v, ok := intLit(n.R); ok {
			k, op = v, n.Op
		} else {
			return Classification{}, false
		}
	case countOf(n.R):
		v, ok := intLit(n.L)
		if !ok {
			return Classification{}, false
		}
		// Mirror: k OP COUNT(z) ⟺ COUNT(z) OP⁻¹ k.
		k = v
		switch n.Op {
		case tmql.OpLt:
			op = tmql.OpGt
		case tmql.OpLe:
			op = tmql.OpGe
		case tmql.OpGt:
			op = tmql.OpLt
		case tmql.OpGe:
			op = tmql.OpLe
		default:
			op = n.Op
		}
	default:
		return Classification{}, false
	}

	trueLit := func() tmql.Expr { return &tmql.Lit{V: value.True} }
	isEmpty := false
	isNonEmpty := false
	switch op {
	case tmql.OpEq:
		isEmpty = k == 0
	case tmql.OpNe:
		isNonEmpty = k == 0
	case tmql.OpLe:
		isEmpty = k == 0 // COUNT ≤ 0
	case tmql.OpLt:
		isEmpty = k == 1 // COUNT < 1
	case tmql.OpGt:
		isNonEmpty = k == 0 // COUNT > 0
	case tmql.OpGe:
		isNonEmpty = k == 1 // COUNT ≥ 1
	}
	v := fresh()
	if isEmpty {
		return Classification{Class: ClassNotExists, V: v, Inner: trueLit()}, true
	}
	if isNonEmpty {
		return Classification{Class: ClassExists, V: v, Inner: trueLit()}, true
	}
	return Classification{}, false
}

// isVar reports whether e is exactly the variable named name.
func isVar(e tmql.Expr, name string) bool {
	v, ok := e.(*tmql.Var)
	return ok && v.Name == name
}

// isEmptySetLit reports whether e is the literal ∅ ({}).
func isEmptySetLit(e tmql.Expr) bool {
	s, ok := e.(*tmql.SetCons)
	return ok && len(s.Elems) == 0
}

// mentionsVar reports whether name occurs free in e.
func mentionsVar(e tmql.Expr, name string) bool {
	return tmql.FreeVars(e)[name]
}
