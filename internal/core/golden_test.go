package core

import (
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
)

// Golden plan snapshots: the exact operator trees the translator emits for
// the paper's canonical queries. Fresh-name counters are deterministic per
// Translator, so the snapshots are stable; if the translation strategy
// changes these tests make the new shape reviewable.
func TestGoldenPlans(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "IN-semijoin",
			src:  `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
			want: `Map[x](x)
  SemiJoin[x.b = y.d AND y.d = x.b](x, y)
    Scan(X)
    Scan(Y)
`,
		},
		{
			name: "NOTIN-antijoin",
			src:  `SELECT x FROM X x WHERE x.b NOT IN SELECT y.d FROM Y y WHERE x.b = y.d`,
			want: `Map[x](x)
  AntiJoin[x.b = y.d AND y.d = x.b](x, y)
    Scan(X)
    Scan(Y)
`,
		},
		{
			name: "SUBSETEQ-nestjoin",
			src:  `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`,
			want: `Map[x](x)
  Map[(a = x.a, b = x.b)](x)
    Select[x.a SUBSETEQ x.nj_2](x)
      NestJoin[x.b = y.b; y.a; nj_2](x, y)
        Scan(X)
        Scan(Y)
`,
		},
		{
			name: "section8",
			src:  section8Query,
			want: `Map[x](x)
  Map[(a = x.a, b = x.b)](x)
    Select[x.a SUBSETEQ x.nj_4](x)
      NestJoin[x.b = y.b; y.a; nj_4](x, y)
        Scan(X)
        Map[(a = y.a, b = y.b, c = y.c, d = y.d)](y)
          Select[y.c SUBSETEQ y.nj_2](y)
            NestJoin[y.d = z.d; z.c; nj_2](y, z)
              Scan(Y)
              Scan(Z)
`,
		},
		{
			name: "section8-flat",
			src:  section8FlatVariant,
			want: `Map[x](x)
  SemiJoin[x.b = y.b AND y.a = x.b](x, y)
    Scan(X)
    AntiJoin[y.d = z.d AND z.c = y.a](y, z)
      Scan(Y)
      Scan(Z)
`,
		},
		{
			name: "select-clause-nesting",
			src:  `SELECT (b = x.b, ys = SELECT y.a FROM Y y WHERE x.b = y.d) FROM X x`,
			want: `Map[(b = x.b, ys = x.nj_1)](x)
  NestJoin[x.b = y.d; y.a; nj_1](x, y)
    Scan(X)
    Scan(Y)
`,
		},
	}
	cat, _ := datagen.XYZ(datagen.DefaultSpec())
	for _, c := range cases {
		plan := planFor(t, cat, c.src, StrategyNestJoin)
		got := algebra.Explain(plan)
		if got != c.want {
			t.Errorf("%s plan drifted:\n--- got ---\n%s--- want ---\n%s", c.name, got, c.want)
		}
	}
}

// TestGoldenKimPlan documents Kim's group-then-join shape: distinct keys,
// grouping nest join, then the regular (bug-carrying) join.
func TestGoldenKimPlan(t *testing.T) {
	cat, _ := datagen.RS(10, 10, 3, 0.3, 1)
	plan := planFor(t, cat,
		`SELECT r FROM R r WHERE r.B = COUNT(SELECT s.D FROM S s WHERE r.C = s.C)`,
		StrategyKim)
	got := algebra.Explain(plan)
	for _, frag := range []string{"Join[", "NestJoin[", "Map[(k_"} {
		if !strings.Contains(got, frag) {
			t.Errorf("Kim plan missing %q:\n%s", frag, got)
		}
	}
	ops := algebra.CountOps(plan)
	if ops["Join"] != 1 || ops["NestJoin"] != 1 {
		t.Errorf("Kim shape: %v\n%s", ops, got)
	}
}

// TestGoldenOuterJoinPlan documents the relational repair's shape:
// outerjoin, ν*, selection, projection.
func TestGoldenOuterJoinPlan(t *testing.T) {
	cat, _ := datagen.RS(10, 10, 3, 0.3, 1)
	plan := planFor(t, cat,
		`SELECT r FROM R r WHERE r.B = COUNT(SELECT s.D FROM S s WHERE r.C = s.C)`,
		StrategyOuterJoin)
	got := algebra.Explain(plan)
	for _, frag := range []string{"OuterJoin[", "Nest*["} {
		if !strings.Contains(got, frag) {
			t.Errorf("outerjoin plan missing %q:\n%s", frag, got)
		}
	}
	ops := algebra.CountOps(plan)
	if ops["OuterJoin"] != 1 || ops["Nest*"] != 1 {
		t.Errorf("outerjoin shape: %v\n%s", ops, got)
	}
}
