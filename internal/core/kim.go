package core

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/tmql"
)

// canonical holds the decomposition of the paper's canonical two-block query
//
//	SELECT F(x) FROM X x
//	WHERE plain(x) ∧ P(x, z)  WITH z = SELECT G(x,y) FROM Y y
//	                                   WHERE Q(x,y) ∧ local(y)
//
// on which the relational baselines (Kim, outerjoin) are defined.
type canonical struct {
	x        string
	xTable   string
	plain    []tmql.Expr // conjuncts of the outer WHERE without the subquery
	conjunct tmql.Expr   // the conjunct containing the subquery, P(x, z)
	sub      *tmql.SFW   // the subquery itself
	y        string
	yTable   string
	join     []tmql.Expr // Q(x,y): inner conjuncts referencing x
	local    []tmql.Expr // inner conjuncts over y only
	result   tmql.Expr   // G(x,y)
	selOnly  bool        // true when there is no WHERE subquery (pure select)
}

// decompose recognizes the canonical two-block form; ok=false if the query
// is outside it (deeper nesting, multiple FROM items, SELECT-clause
// subqueries, non-extension operands).
func decompose(q tmql.Expr) (*canonical, bool) {
	sfw, ok := q.(*tmql.SFW)
	if !ok || len(sfw.Froms) != 1 {
		return nil, false
	}
	xt, ok := sfw.Froms[0].Src.(*tmql.TableRef)
	if !ok {
		return nil, false
	}
	x := sfw.Froms[0].Var
	c := &canonical{x: x, xTable: xt.Name}

	result := InlineLets(sfw.Result)
	if findExtensionSubquery(result, x) != nil {
		return nil, false
	}

	where := InlineLets(sfw.Where)
	for _, conj := range splitConjuncts(where) {
		sub := findExtensionSubquery(conj, x)
		if sub == nil {
			c.plain = append(c.plain, conj)
			continue
		}
		if c.sub != nil {
			return nil, false // multiple subquery conjuncts: out of scope here
		}
		c.conjunct = conj
		c.sub = sub
	}
	if c.sub == nil {
		c.selOnly = true
		return c, true
	}
	if len(c.sub.Froms) != 1 {
		return nil, false
	}
	yt, ok := c.sub.Froms[0].Src.(*tmql.TableRef)
	if !ok {
		return nil, false
	}
	c.y = c.sub.Froms[0].Var
	c.yTable = yt.Name
	if c.y == x {
		return nil, false
	}
	for _, conj := range splitConjuncts(InlineLets(c.sub.Where)) {
		if findExtensionSubquery(conj, c.y) != nil || findExtensionSubquery(conj, x) != nil {
			return nil, false // deeper nesting: not two-block
		}
		if mentionsVar(conj, x) {
			c.join = append(c.join, conj)
		} else {
			c.local = append(c.local, conj)
		}
	}
	c.result = InlineLets(c.sub.Result)
	if mentionsVar(c.result, x) {
		// Kim's T table is built independently of x; a correlated join
		// function cannot be pre-grouped.
		return nil, false
	}
	return c, true
}

// translateKim implements Kim's transformation (§2, form (1)): the inner
// operand is grouped by the correlation attributes into a temporary table T,
// which is then regular-joined with the outer operand. Requires the
// correlation predicate Q to be a conjunction of equi-predicates (Kim's
// assumption). The resulting plan LOSES dangling outer tuples — the
// (generalized) COUNT bug, reproduced here on purpose as the paper's foil.
// Queries outside the canonical two-block form fall back to naive
// evaluation.
func (t *Translator) translateKim(q tmql.Expr) (algebra.Plan, error) {
	c, ok := decompose(q)
	if !ok {
		return t.b.EvalSet(q)
	}
	sfw := q.(*tmql.SFW)
	if c.selOnly {
		return t.translateNestJoin(q)
	}

	// Kim needs pure equi-correlation: split Q into x-side and y-side keys.
	xKeys, yKeys, residual := equiPairs(c.join, c.x, c.y)
	if residual != nil || len(xKeys) == 0 {
		return nil, fmt.Errorf("core: Kim's algorithm needs equi-correlation predicates, got %s",
			tmql.Format(conjoin(c.join)))
	}

	// Outer operand with its plain predicates.
	xp, err := t.scanPlan(c.xTable)
	if err != nil {
		return nil, err
	}
	xLabels := topLabels(xp)
	for _, pc := range c.plain {
		if xp, err = t.b.Select(xp, c.x, pc); err != nil {
			return nil, err
		}
	}

	// Inner operand with local predicates.
	yp, err := t.scanPlan(c.yTable)
	if err != nil {
		return nil, err
	}
	for _, lc := range c.local {
		if yp, err = t.b.Select(yp, c.y, lc); err != nil {
			return nil, err
		}
	}

	// T = the inner operand grouped by its correlation attributes:
	// distinct keys nest-joined with Y itself (the paper's §4.1 rendering of
	// Kim's GROUP BY: SELECT (b = y.b, as = SELECT y'.a FROM Y y' WHERE
	// y'.b = y.b) FROM Y y).
	keyLabels := make([]string, len(yKeys))
	keyFields := make([]tmql.TupleField, len(yKeys))
	for i, yk := range yKeys {
		keyLabels[i] = t.freshName("k")
		keyFields[i] = tmql.TupleField{Label: keyLabels[i], E: yk}
	}
	keys, err := t.b.Map(yp, c.y, &tmql.TupleCons{Fields: keyFields})
	if err != nil {
		return nil, err
	}
	kv := t.freshName("g")
	var groupPredParts []tmql.Expr
	for i, yk := range yKeys {
		groupPredParts = append(groupPredParts, &tmql.Binary{
			Op: tmql.OpEq, L: fieldOf(kv, keyLabels[i]), R: yk,
		})
	}
	zsLabel := t.freshName("zs")
	tTable, err := t.b.NestJoin(keys, yp, kv, c.y, conjoin(groupPredParts), c.result, zsLabel)
	if err != nil {
		return nil, err
	}

	// Regular join X ⋈ T on the correlation keys plus the rewritten
	// predicate P(x, t.zs). Dangling X tuples vanish here: the bug.
	tv := t.freshName("t")
	var joinParts []tmql.Expr
	for i, xk := range xKeys {
		joinParts = append(joinParts, &tmql.Binary{
			Op: tmql.OpEq, L: xk, R: fieldOf(tv, keyLabels[i]),
		})
	}
	joinParts = append(joinParts, ReplaceNode(c.conjunct, c.sub, fieldOf(tv, zsLabel)))
	joined, err := t.b.Join(algebra.JoinInner, xp, tTable, c.x, tv, conjoin(joinParts))
	if err != nil {
		return nil, err
	}

	// Restore the outer element type, then map the result expression.
	proj, err := t.b.Project(joined, c.x, xLabels...)
	if err != nil {
		return nil, err
	}
	return t.b.Map(proj, c.x, InlineLets(sfw.Result))
}

// equiPairs splits conjuncts over (x, y) into equi-key pairs; conjuncts that
// are not clean x-side = y-side equalities are returned as a residual.
func equiPairs(conjuncts []tmql.Expr, x, y string) (xKeys, yKeys []tmql.Expr, residual tmql.Expr) {
	var rest []tmql.Expr
	for _, c := range conjuncts {
		if eq, ok := c.(*tmql.Binary); ok && eq.Op == tmql.OpEq {
			lf, rf := tmql.FreeVars(eq.L), tmql.FreeVars(eq.R)
			switch {
			case subsetOf(lf, x) && subsetOf(rf, y) && lf[x] && rf[y]:
				xKeys = append(xKeys, eq.L)
				yKeys = append(yKeys, eq.R)
				continue
			case subsetOf(lf, y) && subsetOf(rf, x) && lf[y] && rf[x]:
				xKeys = append(xKeys, eq.R)
				yKeys = append(yKeys, eq.L)
				continue
			}
		}
		rest = append(rest, c)
	}
	return xKeys, yKeys, conjoin(rest)
}

func subsetOf(free map[string]bool, v string) bool {
	for name := range free {
		if name != v {
			return false
		}
	}
	return true
}
