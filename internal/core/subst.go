package core

import (
	"tmdb/internal/tmql"
)

// Rewriting utilities over tmql ASTs, thin wrappers around the generic
// rewriter in internal/tmql (shared with the planner's join-order
// extractor). All functions build fresh trees (the input is never mutated)
// and strip inferred types — the algebra builder re-binds every expression
// it receives, so types are recomputed after rewriting.

// SubstVar replaces every free occurrence of the variable name in e by repl.
// Binders that rebind name stop the substitution in their scope. repl is
// inserted by reference; callers pass freshly built or immutable expressions.
func SubstVar(e tmql.Expr, name string, repl tmql.Expr) tmql.Expr {
	return tmql.Subst(e, name, repl)
}

// ReplaceNode replaces the node target (by pointer identity) with repl.
func ReplaceNode(e tmql.Expr, target, repl tmql.Expr) tmql.Expr {
	return tmql.Rewrite(e, func(n tmql.Expr, _ map[string]int) (tmql.Expr, bool) {
		if n == target {
			return repl, true
		}
		return nil, false
	})
}

// InlineLets substitutes WITH-bound names by their definitions, normalizing
// `P(x, z) WITH z = Q` to `P(x, Q)` — the form the translator pattern-matches
// (the paper's WITH is purely notational, §4).
func InlineLets(e tmql.Expr) tmql.Expr {
	for {
		let, ok := e.(*tmql.Let)
		if !ok {
			return e
		}
		e = SubstVar(let.Body, let.V, InlineLets(let.Def))
	}
}

// fieldOf builds the expression varName.label.
func fieldOf(varName, label string) tmql.Expr {
	return &tmql.FieldSel{X: &tmql.Var{Name: varName}, Label: label}
}
