package core

import (
	"tmdb/internal/tmql"
)

// Rewriting utilities over tmql ASTs. All functions build fresh trees (the
// input is never mutated) and strip inferred types — the algebra builder
// re-binds every expression it receives, so types are recomputed after
// rewriting.

// SubstVar replaces every free occurrence of the variable name in e by repl.
// Binders that rebind name stop the substitution in their scope. repl is
// inserted by reference; callers pass freshly built or immutable expressions.
func SubstVar(e tmql.Expr, name string, repl tmql.Expr) tmql.Expr {
	return rewrite(e, func(n tmql.Expr, bound map[string]int) (tmql.Expr, bool) {
		if v, ok := n.(*tmql.Var); ok && v.Name == name && bound[name] == 0 {
			return repl, true
		}
		return nil, false
	})
}

// ReplaceNode replaces the node target (by pointer identity) with repl.
func ReplaceNode(e tmql.Expr, target, repl tmql.Expr) tmql.Expr {
	return rewrite(e, func(n tmql.Expr, _ map[string]int) (tmql.Expr, bool) {
		if n == target {
			return repl, true
		}
		return nil, false
	})
}

// InlineLets substitutes WITH-bound names by their definitions, normalizing
// `P(x, z) WITH z = Q` to `P(x, Q)` — the form the translator pattern-matches
// (the paper's WITH is purely notational, §4).
func InlineLets(e tmql.Expr) tmql.Expr {
	for {
		let, ok := e.(*tmql.Let)
		if !ok {
			return e
		}
		e = SubstVar(let.Body, let.V, InlineLets(let.Def))
	}
}

// rewrite rebuilds e bottom-up; at each node fn may return a replacement.
// bound tracks variable bindings in scope so fn can respect shadowing.
func rewrite(e tmql.Expr, fn func(tmql.Expr, map[string]int) (tmql.Expr, bool)) tmql.Expr {
	return rewriteIn(e, fn, map[string]int{})
}

func rewriteIn(e tmql.Expr, fn func(tmql.Expr, map[string]int) (tmql.Expr, bool), bound map[string]int) tmql.Expr {
	if e == nil {
		return nil
	}
	if repl, ok := fn(e, bound); ok {
		return repl
	}
	switch n := e.(type) {
	case *tmql.Lit, *tmql.Var, *tmql.TableRef:
		return e
	case *tmql.FieldSel:
		return &tmql.FieldSel{X: rewriteIn(n.X, fn, bound), Label: n.Label}
	case *tmql.TupleCons:
		fs := make([]tmql.TupleField, len(n.Fields))
		for i, f := range n.Fields {
			fs[i] = tmql.TupleField{Label: f.Label, E: rewriteIn(f.E, fn, bound)}
		}
		return &tmql.TupleCons{Fields: fs}
	case *tmql.SetCons:
		es := make([]tmql.Expr, len(n.Elems))
		for i, el := range n.Elems {
			es[i] = rewriteIn(el, fn, bound)
		}
		return &tmql.SetCons{Elems: es}
	case *tmql.ListCons:
		es := make([]tmql.Expr, len(n.Elems))
		for i, el := range n.Elems {
			es[i] = rewriteIn(el, fn, bound)
		}
		return &tmql.ListCons{Elems: es}
	case *tmql.Binary:
		return &tmql.Binary{Op: n.Op, L: rewriteIn(n.L, fn, bound), R: rewriteIn(n.R, fn, bound)}
	case *tmql.Unary:
		return &tmql.Unary{Op: n.Op, X: rewriteIn(n.X, fn, bound)}
	case *tmql.Agg:
		return &tmql.Agg{Kind: n.Kind, X: rewriteIn(n.X, fn, bound)}
	case *tmql.Quant:
		over := rewriteIn(n.Over, fn, bound)
		bound[n.Var]++
		pred := rewriteIn(n.Pred, fn, bound)
		bound[n.Var]--
		return &tmql.Quant{Kind: n.Kind, Var: n.Var, Over: over, Pred: pred}
	case *tmql.SFW:
		froms := make([]tmql.FromItem, len(n.Froms))
		pushed := make([]string, 0, len(n.Froms))
		for i, f := range n.Froms {
			froms[i] = tmql.FromItem{Var: f.Var, Src: rewriteIn(f.Src, fn, bound)}
			bound[f.Var]++
			pushed = append(pushed, f.Var)
		}
		where := rewriteIn(n.Where, fn, bound)
		result := rewriteIn(n.Result, fn, bound)
		for _, v := range pushed {
			bound[v]--
		}
		return &tmql.SFW{Result: result, Froms: froms, Where: where}
	case *tmql.Let:
		def := rewriteIn(n.Def, fn, bound)
		bound[n.V]++
		body := rewriteIn(n.Body, fn, bound)
		bound[n.V]--
		return &tmql.Let{V: n.V, Def: def, Body: body}
	case *tmql.Unnest:
		return &tmql.Unnest{X: rewriteIn(n.X, fn, bound)}
	}
	return e
}

// fieldOf builds the expression varName.label.
func fieldOf(varName, label string) tmql.Expr {
	return &tmql.FieldSel{X: &tmql.Var{Name: varName}, Label: label}
}
