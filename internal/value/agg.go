package value

import "fmt"

// Aggregate functions over set and list values — COUNT, SUM, AVG, MIN, MAX —
// as allowed between query blocks in TM predicates (x.a OP H(z), §4.1).

// AggKind identifies an aggregate function.
type AggKind uint8

// The aggregate functions of TM's SFW sublanguage.
const (
	AggCount AggKind = iota
	AggSum
	AggAvg
	AggMin
	AggMax
)

// String returns the TM keyword for the aggregate.
func (a AggKind) String() string {
	switch a {
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	case AggAvg:
		return "AVG"
	case AggMin:
		return "MIN"
	case AggMax:
		return "MAX"
	default:
		return fmt.Sprintf("AGG(%d)", uint8(a))
	}
}

// ParseAggKind maps a TM keyword to its AggKind.
func ParseAggKind(s string) (AggKind, bool) {
	switch s {
	case "COUNT":
		return AggCount, true
	case "SUM":
		return AggSum, true
	case "AVG":
		return AggAvg, true
	case "MIN":
		return AggMin, true
	case "MAX":
		return AggMax, true
	}
	return 0, false
}

// Aggregate applies the aggregate to a set or list value. COUNT of anything
// is its cardinality. SUM/AVG require numeric elements (SUM ∅ = 0; AVG ∅ is
// an error, as is MIN/MAX of ∅ — TM has no NULL to return).
func Aggregate(kind AggKind, coll Value) (Value, error) {
	if coll.kind != KindSet && coll.kind != KindList {
		return Value{}, fmt.Errorf("aggregate %s: operand is %s, not a collection", kind, coll.kind)
	}
	es := coll.elems
	switch kind {
	case AggCount:
		return Int(int64(len(es))), nil
	case AggSum:
		return sum(es)
	case AggAvg:
		if len(es) == 0 {
			return Value{}, fmt.Errorf("AVG of empty collection")
		}
		s, err := sum(es)
		if err != nil {
			return Value{}, err
		}
		return Float(s.AsFloat() / float64(len(es))), nil
	case AggMin, AggMax:
		if len(es) == 0 {
			return Value{}, fmt.Errorf("%s of empty collection", kind)
		}
		best := es[0]
		for _, e := range es[1:] {
			c := Compare(e, best)
			if (kind == AggMin && c < 0) || (kind == AggMax && c > 0) {
				best = e
			}
		}
		return best, nil
	}
	return Value{}, fmt.Errorf("unknown aggregate %d", kind)
}

func sum(es []Value) (Value, error) {
	allInt := true
	var si int64
	var sf float64
	for _, e := range es {
		switch e.kind {
		case KindInt:
			si += e.i
			sf += float64(e.i)
		case KindFloat:
			allInt = false
			sf += e.f
		default:
			return Value{}, fmt.Errorf("SUM: non-numeric element %s", e)
		}
	}
	if allInt {
		return Int(si), nil
	}
	return Float(sf), nil
}
