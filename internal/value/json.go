package value

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// JSON interop for complex-object values, used by tools that export query
// results. The mapping is the natural one:
//
//	tuple → JSON object (labels as keys)
//	set   → JSON array (canonical element order)
//	list  → JSON array
//	bool/int/float/string → the corresponding JSON scalar
//	NULL  → JSON null
//
// Decoding is lossy in two places by necessity — JSON arrays cannot say
// whether they were a set or a list, and JSON numbers whether they were INT
// or REAL — so UnmarshalJSON is guided by a decode mode: arrays become sets
// (TM's dominant collection; duplicates merge) and whole numbers become
// ints. Round-tripping a value therefore yields an Equal value whenever the
// original used sets and no float happens to hold a whole number.

// MarshalJSON implements json.Marshaler.
func (v Value) MarshalJSON() ([]byte, error) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func writeJSON(buf *bytes.Buffer, v Value) error {
	switch v.kind {
	case KindNull:
		buf.WriteString("null")
	case KindBool:
		if v.b {
			buf.WriteString("true")
		} else {
			buf.WriteString("false")
		}
	case KindInt:
		fmt.Fprintf(buf, "%d", v.i)
	case KindFloat:
		if math.IsNaN(v.f) || math.IsInf(v.f, 0) {
			return fmt.Errorf("value: cannot encode %v as JSON", v.f)
		}
		b, err := json.Marshal(v.f)
		if err != nil {
			return err
		}
		buf.Write(b)
	case KindString:
		b, err := json.Marshal(v.s)
		if err != nil {
			return err
		}
		buf.Write(b)
	case KindTuple:
		buf.WriteByte('{')
		for i, f := range v.tuple {
			if i > 0 {
				buf.WriteByte(',')
			}
			kb, err := json.Marshal(f.Label)
			if err != nil {
				return err
			}
			buf.Write(kb)
			buf.WriteByte(':')
			if err := writeJSON(buf, f.V); err != nil {
				return err
			}
		}
		buf.WriteByte('}')
	case KindSet, KindList:
		buf.WriteByte('[')
		for i, e := range v.elems {
			if i > 0 {
				buf.WriteByte(',')
			}
			if err := writeJSON(buf, e); err != nil {
				return err
			}
		}
		buf.WriteByte(']')
	default:
		return fmt.Errorf("value: unknown kind %d", v.kind)
	}
	return nil
}

// FromJSON decodes JSON text into a Value: objects become tuples, arrays
// sets, whole numbers ints.
func FromJSON(data []byte) (Value, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.UseNumber()
	var raw any
	if err := dec.Decode(&raw); err != nil {
		return Value{}, err
	}
	// Reject trailing garbage.
	if dec.More() {
		return Value{}, fmt.Errorf("value: trailing JSON content")
	}
	return fromJSONValue(raw)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	out, err := FromJSON(data)
	if err != nil {
		return err
	}
	*v = out
	return nil
}

func fromJSONValue(raw any) (Value, error) {
	switch x := raw.(type) {
	case nil:
		return Null, nil
	case bool:
		return Bool(x), nil
	case json.Number:
		if i, err := x.Int64(); err == nil {
			return Int(i), nil
		}
		f, err := x.Float64()
		if err != nil {
			return Value{}, fmt.Errorf("value: bad JSON number %q", x)
		}
		return Float(f), nil
	case string:
		return Str(x), nil
	case []any:
		b := NewSetBuilder(len(x))
		for _, e := range x {
			ev, err := fromJSONValue(e)
			if err != nil {
				return Value{}, err
			}
			b.Add(ev)
		}
		return b.Build(), nil
	case map[string]any:
		labels := make([]string, 0, len(x))
		for k := range x {
			labels = append(labels, k)
		}
		sort.Strings(labels)
		fs := make([]Field, 0, len(x))
		for _, k := range labels {
			fv, err := fromJSONValue(x[k])
			if err != nil {
				return Value{}, err
			}
			fs = append(fs, F(k, fv))
		}
		return TupleOf(fs...), nil
	}
	return Value{}, fmt.Errorf("value: unsupported JSON value %T", raw)
}
