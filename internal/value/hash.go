package value

import (
	"encoding/binary"
	"hash/maphash"
	"math"
)

// Hashing of complex-object values, used by the hash-based join family
// (hash join, hash semijoin/antijoin, hash nest join) and by grouping.
//
// The invariant is the usual one: Equal(a, b) ⇒ Hash(seed, a) == Hash(seed, b).
// Because sets and tuples are canonical, structural recursion is sufficient —
// no order-independent mixing is needed.

// Hash returns a 64-bit hash of v under the given seed.
func Hash(seed maphash.Seed, v Value) uint64 {
	var h maphash.Hash
	h.SetSeed(seed)
	writeHash(&h, v)
	return h.Sum64()
}

func writeHash(h *maphash.Hash, v Value) {
	var tag [1]byte
	tag[0] = byte(v.kind)
	// Ints that are exactly representable as themselves and floats with an
	// integral value must hash alike because Compare treats 1 == 1.0.
	if v.kind == KindInt {
		tag[0] = byte(KindFloat)
		h.Write(tag[:])
		writeFloatBits(h, float64(v.i))
		return
	}
	h.Write(tag[:])
	switch v.kind {
	case KindNull:
	case KindBool:
		if v.b {
			h.WriteByte(1)
		} else {
			h.WriteByte(0)
		}
	case KindFloat:
		writeFloatBits(h, v.f)
	case KindString:
		writeLen(h, len(v.s))
		h.WriteString(v.s)
	case KindTuple:
		writeLen(h, len(v.tuple))
		for _, f := range v.tuple {
			writeLen(h, len(f.Label))
			h.WriteString(f.Label)
			writeHash(h, f.V)
		}
	case KindSet, KindList:
		writeLen(h, len(v.elems))
		for _, e := range v.elems {
			writeHash(h, e)
		}
	}
}

func writeFloatBits(h *maphash.Hash, f float64) {
	// Normalize -0.0 to 0.0 and all NaNs to one pattern so that hashing is
	// consistent with Compare.
	if f == 0 {
		f = 0
	}
	bits := math.Float64bits(f)
	if math.IsNaN(f) {
		bits = math.Float64bits(math.NaN())
	}
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], bits)
	h.Write(buf[:])
}

func writeLen(h *maphash.Hash, n int) {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], uint32(n))
	h.Write(buf[:])
}

// Key returns a canonical string encoding of v suitable for use as a Go map
// key. Two values are Equal iff their Keys are identical. Used where exact
// (collision-free) grouping is required.
func Key(v Value) string {
	buf := make([]byte, 0, 64)
	buf = AppendKey(buf, v)
	return string(buf)
}

// AppendKey appends the canonical encoding of v (the same bytes Key returns)
// onto buf and returns the extended slice. The encoding is self-delimiting —
// every variable-length component is length-prefixed — so concatenated
// encodings of a fixed number of values stay injective. Hot paths (the hash
// join family) keep a scratch buffer per iterator and look up Go maps via
// string(buf), which the compiler compiles without allocating; only inserting
// a previously unseen key materializes a string.
func AppendKey(buf []byte, v Value) []byte {
	if v.kind == KindInt {
		// Same normalization as hashing: ints encode as floats.
		return AppendKey(buf, Float(float64(v.i)))
	}
	buf = append(buf, byte(v.kind))
	switch v.kind {
	case KindNull:
	case KindBool:
		if v.b {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
	case KindFloat:
		f := v.f
		if f == 0 {
			f = 0
		}
		bits := math.Float64bits(f)
		if math.IsNaN(f) {
			bits = math.Float64bits(math.NaN())
		}
		buf = binary.LittleEndian.AppendUint64(buf, bits)
	case KindString:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.s)))
		buf = append(buf, v.s...)
	case KindTuple:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.tuple)))
		for _, f := range v.tuple {
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(f.Label)))
			buf = append(buf, f.Label...)
			buf = AppendKey(buf, f.V)
		}
	case KindSet, KindList:
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(v.elems)))
		for _, e := range v.elems {
			buf = AppendKey(buf, e)
		}
	}
	return buf
}
