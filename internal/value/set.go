package value

// Set algebra on canonical set values. All operators exploit the sorted
// canonical representation, giving linear-time merges — these back the TM
// operators ∪, ∩, −, ⊆, ⊂, ⊇, ⊃, ∈ used in predicates between query blocks.

// Contains reports x ∈ s. s must be a set; binary search over the canonical
// order makes membership O(log n).
func Contains(s, x Value) bool {
	s.mustBe(KindSet)
	lo, hi := 0, len(s.elems)
	for lo < hi {
		mid := (lo + hi) / 2
		if Compare(s.elems[mid], x) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(s.elems) && Compare(s.elems[lo], x) == 0
}

// Union returns a ∪ b.
func Union(a, b Value) Value {
	a.mustBe(KindSet)
	b.mustBe(KindSet)
	out := make([]Value, 0, len(a.elems)+len(b.elems))
	i, j := 0, 0
	for i < len(a.elems) && j < len(b.elems) {
		switch c := Compare(a.elems[i], b.elems[j]); {
		case c < 0:
			out = append(out, a.elems[i])
			i++
		case c > 0:
			out = append(out, b.elems[j])
			j++
		default:
			out = append(out, a.elems[i])
			i++
			j++
		}
	}
	out = append(out, a.elems[i:]...)
	out = append(out, b.elems[j:]...)
	return Value{kind: KindSet, elems: out}
}

// Intersect returns a ∩ b.
func Intersect(a, b Value) Value {
	a.mustBe(KindSet)
	b.mustBe(KindSet)
	out := make([]Value, 0)
	i, j := 0, 0
	for i < len(a.elems) && j < len(b.elems) {
		switch c := Compare(a.elems[i], b.elems[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			out = append(out, a.elems[i])
			i++
			j++
		}
	}
	return Value{kind: KindSet, elems: out}
}

// Diff returns a − b.
func Diff(a, b Value) Value {
	a.mustBe(KindSet)
	b.mustBe(KindSet)
	out := make([]Value, 0, len(a.elems))
	i, j := 0, 0
	for i < len(a.elems) && j < len(b.elems) {
		switch c := Compare(a.elems[i], b.elems[j]); {
		case c < 0:
			out = append(out, a.elems[i])
			i++
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	out = append(out, a.elems[i:]...)
	return Value{kind: KindSet, elems: out}
}

// SubsetEq reports a ⊆ b.
func SubsetEq(a, b Value) bool {
	a.mustBe(KindSet)
	b.mustBe(KindSet)
	if len(a.elems) > len(b.elems) {
		return false
	}
	i, j := 0, 0
	for i < len(a.elems) && j < len(b.elems) {
		switch c := Compare(a.elems[i], b.elems[j]); {
		case c < 0:
			return false
		case c > 0:
			j++
		default:
			i++
			j++
		}
	}
	return i == len(a.elems)
}

// Subset reports a ⊂ b (proper subset).
func Subset(a, b Value) bool {
	return len(a.elems) < len(b.elems) && SubsetEq(a, b)
}

// SupersetEq reports a ⊇ b.
func SupersetEq(a, b Value) bool { return SubsetEq(b, a) }

// Superset reports a ⊃ b (proper superset).
func Superset(a, b Value) bool { return Subset(b, a) }

// Disjoint reports a ∩ b = ∅ without materializing the intersection.
func Disjoint(a, b Value) bool {
	a.mustBe(KindSet)
	b.mustBe(KindSet)
	i, j := 0, 0
	for i < len(a.elems) && j < len(b.elems) {
		switch c := Compare(a.elems[i], b.elems[j]); {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			return false
		}
	}
	return true
}

// SetBuilder accumulates elements and produces a canonical set. It is the
// building block of the nest join, ν, and the evaluator's SFW loop: elements
// arrive in arbitrary order and possibly duplicated; Build canonicalizes once.
type SetBuilder struct {
	elems []Value
}

// NewSetBuilder returns a builder with capacity hint n.
func NewSetBuilder(n int) *SetBuilder {
	return &SetBuilder{elems: make([]Value, 0, n)}
}

// Add appends an element (duplicates allowed; removed at Build).
func (b *SetBuilder) Add(v Value) { b.elems = append(b.elems, v) }

// Len returns the number of elements added so far (including duplicates).
func (b *SetBuilder) Len() int { return len(b.elems) }

// Build canonicalizes and returns the set. The builder is reset and may be
// reused.
func (b *SetBuilder) Build() Value {
	s := setFromOwned(b.elems)
	b.elems = nil
	return s
}

// UnnestSet implements UNNEST(S) = ⋃{ s | s ∈ S } for a set of sets, the
// operator the paper uses to collapse SELECT-clause nesting (§5).
func UnnestSet(s Value) Value {
	s.mustBe(KindSet)
	n := 0
	for _, e := range s.elems {
		n += e.Len()
	}
	b := NewSetBuilder(n)
	for _, e := range s.elems {
		e.mustBe(KindSet)
		for _, x := range e.Elems() {
			b.Add(x)
		}
	}
	return b.Build()
}
