package value

import (
	"encoding/json"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestMarshalJSONBasics(t *testing.T) {
	cases := map[string]Value{
		`null`:            Null,
		`true`:            Bool(true),
		`42`:              Int(42),
		`2.5`:             Float(2.5),
		`"hi"`:            Str("hi"),
		`{"a":1,"b":"x"}`: TupleOf(F("a", Int(1)), F("b", Str("x"))),
		`[1,2,3]`:         SetOf(Int(3), Int(1), Int(2)),
		`[1,1]`:           ListOf(Int(1), Int(1)),
		`{"s":[{"k":1}]}`: TupleOf(F("s", SetOf(TupleOf(F("k", Int(1)))))),
		`{}`:              TupleOf(),
		`[]`:              EmptySet,
	}
	for want, v := range cases {
		got, err := json.Marshal(v)
		if err != nil {
			t.Errorf("Marshal(%s): %v", v, err)
			continue
		}
		if string(got) != want {
			t.Errorf("Marshal(%s) = %s, want %s", v, got, want)
		}
	}
}

func TestMarshalJSONRejectsNaN(t *testing.T) {
	if _, err := json.Marshal(Float(math.NaN())); err == nil {
		t.Error("NaN should not marshal")
	}
	if _, err := json.Marshal(Float(math.Inf(1))); err == nil {
		t.Error("Inf should not marshal")
	}
	// Inside a container too.
	if _, err := json.Marshal(SetOf(Float(math.NaN()))); err == nil {
		t.Error("NaN inside a set should not marshal")
	}
}

func TestFromJSON(t *testing.T) {
	cases := map[string]Value{
		`null`:             Null,
		`false`:            Bool(false),
		`7`:                Int(7),
		`7.5`:              Float(7.5),
		`"s"`:              Str("s"),
		`[3,1,2,1]`:        SetOf(Int(1), Int(2), Int(3)), // arrays decode as sets
		`{"b":2,"a":1}`:    TupleOf(F("a", Int(1)), F("b", Int(2))),
		`{"x":[{"y":[]}]}`: TupleOf(F("x", SetOf(TupleOf(F("y", EmptySet))))),
		` 1 `:              Int(1),
	}
	for src, want := range cases {
		got, err := FromJSON([]byte(src))
		if err != nil {
			t.Errorf("FromJSON(%q): %v", src, err)
			continue
		}
		if !Equal(got, want) {
			t.Errorf("FromJSON(%q) = %s, want %s", src, got, want)
		}
	}
}

func TestFromJSONErrors(t *testing.T) {
	bad := []string{``, `{`, `1 2`, `{"a":}`, `[1,]`}
	for _, src := range bad {
		if _, err := FromJSON([]byte(src)); err == nil {
			t.Errorf("FromJSON(%q) should fail", src)
		}
	}
}

func TestUnmarshalJSONInterface(t *testing.T) {
	var v Value
	if err := json.Unmarshal([]byte(`{"a":[1,2]}`), &v); err != nil {
		t.Fatal(err)
	}
	want := TupleOf(F("a", SetOf(Int(1), Int(2))))
	if !Equal(v, want) {
		t.Errorf("Unmarshal = %s", v)
	}
	if err := json.Unmarshal([]byte(`{bad`), &v); err == nil {
		t.Error("bad JSON should fail")
	}
}

// TestJSONRoundTripQuick: for random set-based values without floats,
// marshal∘unmarshal is the identity (the documented lossless fragment).
func TestJSONRoundTripQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300, Values: func(vs []reflect.Value, r *rand.Rand) {
		for i := range vs {
			vs[i] = reflect.ValueOf(randomJSONSafeValue(r, 3))
		}
	}}
	if err := quick.Check(func(v Value) bool {
		data, err := json.Marshal(v)
		if err != nil {
			return false
		}
		back, err := FromJSON(data)
		if err != nil {
			return false
		}
		return Equal(v, back)
	}, cfg); err != nil {
		t.Error(err)
	}
}

// randomJSONSafeValue avoids lists (decode as sets) and floats (whole floats
// decode as ints) so that the round trip is exact.
func randomJSONSafeValue(r *rand.Rand, depth int) Value {
	max := 4
	if depth > 0 {
		max = 6
	}
	switch r.Intn(max) {
	case 0:
		return Bool(r.Intn(2) == 0)
	case 1:
		return Int(int64(r.Intn(40) - 20))
	case 2, 3:
		return Str(string(rune('a' + r.Intn(5))))
	case 4:
		n := r.Intn(3)
		fs := make([]Field, 0, n)
		for i := 0; i < n; i++ {
			fs = append(fs, F(string(rune('p'+i)), randomJSONSafeValue(r, depth-1)))
		}
		return TupleOf(fs...)
	default:
		n := r.Intn(4)
		es := make([]Value, n)
		for i := range es {
			es[i] = randomJSONSafeValue(r, depth-1)
		}
		return SetOf(es...)
	}
}
