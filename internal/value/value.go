// Package value implements the complex-object value model of TM: basic
// values (booleans, integers, floats, strings), labeled tuples, duplicate-free
// sets, and lists, nested to arbitrary depth.
//
// Values are immutable after construction. Sets are kept in a canonical form
// (sorted by the total order Compare, duplicates removed), which makes deep
// equality, hashing, and the set-comparison operators of TM (⊆, ⊂, ⊇, ⊃, ∩,
// ∪, −) cheap and deterministic. Tuples keep their fields sorted by label so
// that two tuples with the same label→value mapping are identical regardless
// of construction order, matching TM's semantics where tuple types are
// unordered label sets.
package value

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind discriminates the variants of a Value.
type Kind uint8

// The kinds of TM values. KindNull is not a TM concept; it exists only so the
// relational outerjoin baseline (Ganski–Wong repair) can be expressed, as the
// paper does when comparing against relational techniques.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindString
	KindTuple
	KindSet
	KindList
)

// String returns the kind name as used in error messages.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "null"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindFloat:
		return "float"
	case KindString:
		return "string"
	case KindTuple:
		return "tuple"
	case KindSet:
		return "set"
	case KindList:
		return "list"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Field is one labeled component of a tuple value.
type Field struct {
	Label string
	V     Value
}

// Value is a TM complex-object value. The zero Value is Null.
type Value struct {
	kind  Kind
	b     bool
	i     int64
	f     float64
	s     string
	tuple []Field // KindTuple: sorted by Label, labels unique
	elems []Value // KindSet: canonical (sorted, deduped); KindList: as given
}

// Null is the NULL value used only by the relational outerjoin baseline.
var Null = Value{kind: KindNull}

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a floating-point value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// True and False are the two boolean values.
var (
	True  = Bool(true)
	False = Bool(false)
)

// TupleOf builds a tuple value from the given fields. Fields are copied and
// canonicalized (sorted by label). It panics on duplicate labels: tuple types
// in TM are label→type maps, so duplicates are a construction error, not a
// data error.
func TupleOf(fields ...Field) Value {
	fs := make([]Field, len(fields))
	copy(fs, fields)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Label < fs[j].Label })
	for i := 1; i < len(fs); i++ {
		if fs[i].Label == fs[i-1].Label {
			panic("value: duplicate tuple label " + fs[i].Label)
		}
	}
	return Value{kind: KindTuple, tuple: fs}
}

// F is shorthand for constructing a tuple field.
func F(label string, v Value) Field { return Field{Label: label, V: v} }

// SetOf builds a set value from the given elements, canonicalizing (sorting
// and removing duplicates). The input slice is not retained.
func SetOf(elems ...Value) Value {
	es := make([]Value, len(elems))
	copy(es, elems)
	return setFromOwned(es)
}

// setFromOwned canonicalizes es in place and wraps it as a set. The caller
// must not use es afterwards.
func setFromOwned(es []Value) Value {
	sort.Slice(es, func(i, j int) bool { return Compare(es[i], es[j]) < 0 })
	out := es[:0]
	for i, e := range es {
		if i == 0 || Compare(e, out[len(out)-1]) != 0 {
			out = append(out, e)
		}
	}
	return Value{kind: KindSet, elems: out}
}

// EmptySet is the empty set value — in TM the empty set is part of the model,
// which is precisely why the nest join needs no NULLs.
var EmptySet = Value{kind: KindSet}

// ListOf builds a list value preserving order and duplicates.
func ListOf(elems ...Value) Value {
	es := make([]Value, len(elems))
	copy(es, elems)
	return Value{kind: KindList, elems: es}
}

// Kind reports the variant of v.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether v is the NULL value.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload; it panics if v is not a bool.
func (v Value) AsBool() bool {
	v.mustBe(KindBool)
	return v.b
}

// AsInt returns the integer payload; it panics if v is not an int.
func (v Value) AsInt() int64 {
	v.mustBe(KindInt)
	return v.i
}

// AsFloat returns the float payload, widening ints; it panics otherwise.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	}
	panic("value: " + v.kind.String() + " is not numeric")
}

// AsString returns the string payload; it panics if v is not a string.
func (v Value) AsString() string {
	v.mustBe(KindString)
	return v.s
}

func (v Value) mustBe(k Kind) {
	if v.kind != k {
		panic("value: " + v.kind.String() + " is not " + k.String())
	}
}

// IsNumeric reports whether v is an int or float.
func (v Value) IsNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// Fields returns the tuple fields in canonical (label-sorted) order. The
// returned slice must not be modified. It panics if v is not a tuple.
func (v Value) Fields() []Field {
	v.mustBe(KindTuple)
	return v.tuple
}

// Arity returns the number of fields of a tuple.
func (v Value) Arity() int {
	v.mustBe(KindTuple)
	return len(v.tuple)
}

// Get returns the field value for label, and whether the label exists. It
// panics if v is not a tuple.
func (v Value) Get(label string) (Value, bool) {
	v.mustBe(KindTuple)
	i := sort.Search(len(v.tuple), func(i int) bool { return v.tuple[i].Label >= label })
	if i < len(v.tuple) && v.tuple[i].Label == label {
		return v.tuple[i].V, true
	}
	return Value{}, false
}

// MustGet returns the field value for label and panics if absent.
func (v Value) MustGet(label string) Value {
	f, ok := v.Get(label)
	if !ok {
		panic("value: tuple has no field " + label)
	}
	return f
}

// HasField reports whether the tuple has a field with the given label.
func (v Value) HasField(label string) bool {
	_, ok := v.Get(label)
	return ok
}

// Labels returns the labels of a tuple in canonical order.
func (v Value) Labels() []string {
	v.mustBe(KindTuple)
	out := make([]string, len(v.tuple))
	for i, f := range v.tuple {
		out[i] = f.Label
	}
	return out
}

// Concat returns the tuple concatenation v ++ w used by the join operators:
// the tuple holding all fields of both. It panics if either is not a tuple or
// if labels collide — the paper requires the nest-join label "not occurring on
// the top level of X", and the algebra validator enforces that statically.
func (v Value) Concat(w Value) Value {
	v.mustBe(KindTuple)
	w.mustBe(KindTuple)
	fs := make([]Field, 0, len(v.tuple)+len(w.tuple))
	fs = append(fs, v.tuple...)
	fs = append(fs, w.tuple...)
	return TupleOf(fs...)
}

// Extend returns v ++ (label = x), the nest-join extension of a tuple with a
// single new field.
func (v Value) Extend(label string, x Value) Value {
	v.mustBe(KindTuple)
	fs := make([]Field, 0, len(v.tuple)+1)
	fs = append(fs, v.tuple...)
	fs = append(fs, Field{Label: label, V: x})
	return TupleOf(fs...)
}

// Project returns the tuple restricted to the given labels. Missing labels
// cause a panic (projection is type-checked upstream).
func (v Value) Project(labels ...string) Value {
	fs := make([]Field, 0, len(labels))
	for _, l := range labels {
		fs = append(fs, Field{Label: l, V: v.MustGet(l)})
	}
	return TupleOf(fs...)
}

// Drop returns the tuple without the given labels.
func (v Value) Drop(labels ...string) Value {
	v.mustBe(KindTuple)
	drop := make(map[string]bool, len(labels))
	for _, l := range labels {
		drop[l] = true
	}
	fs := make([]Field, 0, len(v.tuple))
	for _, f := range v.tuple {
		if !drop[f.Label] {
			fs = append(fs, f)
		}
	}
	return Value{kind: KindTuple, tuple: fs}
}

// Elems returns the elements of a set (in canonical order) or list (in list
// order). The returned slice must not be modified.
func (v Value) Elems() []Value {
	if v.kind != KindSet && v.kind != KindList {
		panic("value: " + v.kind.String() + " has no elements")
	}
	return v.elems
}

// Len returns the number of elements of a set or list, or fields of a tuple.
func (v Value) Len() int {
	switch v.kind {
	case KindSet, KindList:
		return len(v.elems)
	case KindTuple:
		return len(v.tuple)
	}
	panic("value: " + v.kind.String() + " has no length")
}

// IsEmptySet reports whether v is a set with no elements.
func (v Value) IsEmptySet() bool { return v.kind == KindSet && len(v.elems) == 0 }

// String renders the value in TM-ish syntax: tuples as ⟨a = 1, b = {…}⟩
// printed with parentheses, sets in braces, lists in brackets.
func (v Value) String() string {
	var sb strings.Builder
	v.write(&sb)
	return sb.String()
}

func (v Value) write(sb *strings.Builder) {
	switch v.kind {
	case KindNull:
		sb.WriteString("NULL")
	case KindBool:
		if v.b {
			sb.WriteString("true")
		} else {
			sb.WriteString("false")
		}
	case KindInt:
		sb.WriteString(strconv.FormatInt(v.i, 10))
	case KindFloat:
		sb.WriteString(strconv.FormatFloat(v.f, 'g', -1, 64))
	case KindString:
		sb.WriteString(strconv.Quote(v.s))
	case KindTuple:
		sb.WriteByte('(')
		for i, f := range v.tuple {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Label)
			sb.WriteString(" = ")
			f.V.write(sb)
		}
		sb.WriteByte(')')
	case KindSet:
		sb.WriteByte('{')
		for i, e := range v.elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.write(sb)
		}
		sb.WriteByte('}')
	case KindList:
		sb.WriteByte('[')
		for i, e := range v.elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			e.write(sb)
		}
		sb.WriteByte(']')
	}
}

// Compare defines the canonical total order over all values. Values of
// different kinds order by kind; within a kind the order is the natural one
// (lexicographic for tuples by label/value pairs, for sets/lists elementwise).
// Ints and floats compare numerically against each other so that 1 = 1.0, as
// TM treats INT as a subtype of REAL.
func Compare(a, b Value) int {
	ka, kb := a.kind, b.kind
	// Numeric cross-kind comparison.
	if a.IsNumeric() && b.IsNumeric() && ka != kb {
		return compareFloat(a.AsFloat(), b.AsFloat())
	}
	if ka != kb {
		if ka < kb {
			return -1
		}
		return 1
	}
	switch ka {
	case KindNull:
		return 0
	case KindBool:
		switch {
		case a.b == b.b:
			return 0
		case !a.b:
			return -1
		default:
			return 1
		}
	case KindInt:
		switch {
		case a.i < b.i:
			return -1
		case a.i > b.i:
			return 1
		default:
			return 0
		}
	case KindFloat:
		return compareFloat(a.f, b.f)
	case KindString:
		return strings.Compare(a.s, b.s)
	case KindTuple:
		n := len(a.tuple)
		if len(b.tuple) < n {
			n = len(b.tuple)
		}
		for i := 0; i < n; i++ {
			if c := strings.Compare(a.tuple[i].Label, b.tuple[i].Label); c != 0 {
				return c
			}
			if c := Compare(a.tuple[i].V, b.tuple[i].V); c != 0 {
				return c
			}
		}
		return len(a.tuple) - len(b.tuple)
	case KindSet, KindList:
		n := len(a.elems)
		if len(b.elems) < n {
			n = len(b.elems)
		}
		for i := 0; i < n; i++ {
			if c := Compare(a.elems[i], b.elems[i]); c != 0 {
				return c
			}
		}
		return len(a.elems) - len(b.elems)
	}
	panic("value: unreachable kind in Compare")
}

func compareFloat(a, b float64) int {
	// NaN sorts before everything and equals itself so the order stays total.
	an, bn := math.IsNaN(a), math.IsNaN(b)
	switch {
	case an && bn:
		return 0
	case an:
		return -1
	case bn:
		return 1
	case a < b:
		return -1
	case a > b:
		return 1
	default:
		return 0
	}
}

// Equal reports deep value equality, i.e. Compare(a,b) == 0.
func Equal(a, b Value) bool { return Compare(a, b) == 0 }

// Less reports Compare(a,b) < 0.
func Less(a, b Value) bool { return Compare(a, b) < 0 }
