package value

import (
	"hash/maphash"
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicConstructorsAndAccessors(t *testing.T) {
	if got := Int(42).AsInt(); got != 42 {
		t.Errorf("Int(42).AsInt() = %d", got)
	}
	if got := Str("hi").AsString(); got != "hi" {
		t.Errorf("Str round trip: %q", got)
	}
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Error("Bool round trip failed")
	}
	if got := Float(2.5).AsFloat(); got != 2.5 {
		t.Errorf("Float round trip: %v", got)
	}
	if got := Int(3).AsFloat(); got != 3.0 {
		t.Errorf("Int widening: %v", got)
	}
	if !Null.IsNull() || Int(0).IsNull() {
		t.Error("IsNull misbehaves")
	}
}

func TestTupleCanonicalOrder(t *testing.T) {
	a := TupleOf(F("b", Int(2)), F("a", Int(1)))
	b := TupleOf(F("a", Int(1)), F("b", Int(2)))
	if !Equal(a, b) {
		t.Errorf("tuples with same fields in different order differ: %s vs %s", a, b)
	}
	if got := a.Labels(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Labels = %v", got)
	}
	if v, ok := a.Get("b"); !ok || v.AsInt() != 2 {
		t.Errorf("Get(b) = %v, %v", v, ok)
	}
	if _, ok := a.Get("zz"); ok {
		t.Error("Get of missing label returned ok")
	}
}

func TestTupleDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on duplicate labels")
		}
	}()
	TupleOf(F("a", Int(1)), F("a", Int(2)))
}

func TestTupleConcatExtendProjectDrop(t *testing.T) {
	x := TupleOf(F("a", Int(1)), F("b", Int(2)))
	y := TupleOf(F("c", Int(3)))
	xy := x.Concat(y)
	if xy.Arity() != 3 || xy.MustGet("c").AsInt() != 3 {
		t.Errorf("Concat = %s", xy)
	}
	ext := x.Extend("zs", SetOf(Int(9)))
	if !Equal(ext.MustGet("zs"), SetOf(Int(9))) {
		t.Errorf("Extend = %s", ext)
	}
	if got := xy.Project("a", "c"); got.Arity() != 2 {
		t.Errorf("Project = %s", got)
	}
	if got := xy.Drop("b"); got.HasField("b") || got.Arity() != 2 {
		t.Errorf("Drop = %s", got)
	}
}

func TestSetCanonicalization(t *testing.T) {
	s := SetOf(Int(3), Int(1), Int(3), Int(2), Int(1))
	if s.Len() != 3 {
		t.Fatalf("set should dedup: %s", s)
	}
	es := s.Elems()
	for i := 1; i < len(es); i++ {
		if Compare(es[i-1], es[i]) >= 0 {
			t.Errorf("set not sorted: %s", s)
		}
	}
	if !Equal(SetOf(Int(1), Int(2)), SetOf(Int(2), Int(1))) {
		t.Error("set equality is order sensitive")
	}
	if !EmptySet.IsEmptySet() {
		t.Error("EmptySet not empty")
	}
}

func TestIntFloatCrossComparison(t *testing.T) {
	if Compare(Int(1), Float(1.0)) != 0 {
		t.Error("1 != 1.0")
	}
	if Compare(Int(1), Float(1.5)) >= 0 {
		t.Error("1 >= 1.5")
	}
	if Compare(Float(2.5), Int(2)) <= 0 {
		t.Error("2.5 <= 2")
	}
	// Sets must dedup across int/float equality.
	if got := SetOf(Int(1), Float(1.0)).Len(); got != 1 {
		t.Errorf("SetOf(1, 1.0) has %d elements", got)
	}
}

func TestCompareTotalOrderProperties(t *testing.T) {
	vals := sampleValues()
	for _, a := range vals {
		if Compare(a, a) != 0 {
			t.Errorf("not reflexive: %s", a)
		}
		for _, b := range vals {
			if sgn(Compare(a, b)) != -sgn(Compare(b, a)) {
				t.Errorf("not antisymmetric: %s vs %s", a, b)
			}
			for _, c := range vals {
				if Compare(a, b) <= 0 && Compare(b, c) <= 0 && Compare(a, c) > 0 {
					t.Errorf("not transitive: %s ≤ %s ≤ %s but a > c", a, b, c)
				}
			}
		}
	}
}

func sgn(x int) int {
	switch {
	case x < 0:
		return -1
	case x > 0:
		return 1
	}
	return 0
}

func TestCompareNaN(t *testing.T) {
	nan := Float(math.NaN())
	if Compare(nan, nan) != 0 {
		t.Error("NaN != NaN under total order")
	}
	if Compare(nan, Float(-1e300)) >= 0 {
		t.Error("NaN should sort first among floats")
	}
}

func TestString(t *testing.T) {
	v := TupleOf(F("a", Int(1)), F("s", SetOf(Str("x"))), F("l", ListOf(Int(1), Int(1))))
	got := v.String()
	want := `(a = 1, l = [1, 1], s = {"x"})`
	if got != want {
		t.Errorf("String() = %s, want %s", got, want)
	}
	if Null.String() != "NULL" {
		t.Errorf("Null.String() = %s", Null.String())
	}
}

func TestSetOperators(t *testing.T) {
	a := SetOf(Int(1), Int(2), Int(3))
	b := SetOf(Int(2), Int(3), Int(4))
	if got := Union(a, b); !Equal(got, SetOf(Int(1), Int(2), Int(3), Int(4))) {
		t.Errorf("Union = %s", got)
	}
	if got := Intersect(a, b); !Equal(got, SetOf(Int(2), Int(3))) {
		t.Errorf("Intersect = %s", got)
	}
	if got := Diff(a, b); !Equal(got, SetOf(Int(1))) {
		t.Errorf("Diff = %s", got)
	}
	if !Contains(a, Int(2)) || Contains(a, Int(9)) {
		t.Error("Contains misbehaves")
	}
	if !SubsetEq(SetOf(Int(1)), a) || SubsetEq(a, SetOf(Int(1))) {
		t.Error("SubsetEq misbehaves")
	}
	if !Subset(SetOf(Int(1)), a) || Subset(a, a) {
		t.Error("Subset misbehaves (must be proper)")
	}
	if !SupersetEq(a, a) || !Superset(a, SetOf(Int(1))) || Superset(a, a) {
		t.Error("Superset family misbehaves")
	}
	if !Disjoint(SetOf(Int(1)), SetOf(Int(2))) || Disjoint(a, b) {
		t.Error("Disjoint misbehaves")
	}
	// ∅ edge cases.
	if !SubsetEq(EmptySet, EmptySet) || Subset(EmptySet, EmptySet) {
		t.Error("∅ subset edge cases")
	}
	if !Disjoint(EmptySet, a) {
		t.Error("∅ is disjoint from everything")
	}
}

func TestSetAlgebraLawsQuick(t *testing.T) {
	cfg := &quick.Config{MaxCount: 200, Values: func(vs []reflect.Value, r *rand.Rand) {
		for i := range vs {
			vs[i] = reflect.ValueOf(randomIntSet(r))
		}
	}}
	// Union commutative, intersection distributes, De Morgan via Diff.
	if err := quick.Check(func(a, b, c Value) bool {
		if !Equal(Union(a, b), Union(b, a)) {
			return false
		}
		if !Equal(Intersect(a, Union(b, c)), Union(Intersect(a, b), Intersect(a, c))) {
			return false
		}
		if !Equal(Diff(a, Union(b, c)), Intersect(Diff(a, b), Diff(a, c))) {
			return false
		}
		if SubsetEq(a, b) != (Diff(a, b).Len() == 0) {
			return false
		}
		if Disjoint(a, b) != (Intersect(a, b).Len() == 0) {
			return false
		}
		return true
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestHashConsistentWithEqual(t *testing.T) {
	seed := maphash.MakeSeed()
	vals := sampleValues()
	for _, a := range vals {
		for _, b := range vals {
			if Equal(a, b) && Hash(seed, a) != Hash(seed, b) {
				t.Errorf("equal values hash differently: %s vs %s", a, b)
			}
			if Equal(a, b) != (Key(a) == Key(b)) {
				t.Errorf("Key inconsistent with Equal: %s vs %s", a, b)
			}
		}
	}
	if Hash(seed, Int(7)) != Hash(seed, Float(7.0)) {
		t.Error("Int(7) and Float(7) must hash alike (they compare equal)")
	}
	if Key(Int(7)) != Key(Float(7)) {
		t.Error("Key(Int(7)) != Key(Float(7))")
	}
}

func TestHashQuick(t *testing.T) {
	seed := maphash.MakeSeed()
	cfg := &quick.Config{MaxCount: 300, Values: func(vs []reflect.Value, r *rand.Rand) {
		for i := range vs {
			vs[i] = reflect.ValueOf(randomValue(r, 3))
		}
	}}
	if err := quick.Check(func(a, b Value) bool {
		if Equal(a, b) {
			return Hash(seed, a) == Hash(seed, b) && Key(a) == Key(b)
		}
		return Key(a) != Key(b) // Key must be injective on inequality
	}, cfg); err != nil {
		t.Error(err)
	}
}

func TestUnnestSet(t *testing.T) {
	s := SetOf(SetOf(Int(1), Int(2)), SetOf(Int(2), Int(3)), EmptySet)
	if got := UnnestSet(s); !Equal(got, SetOf(Int(1), Int(2), Int(3))) {
		t.Errorf("UnnestSet = %s", got)
	}
	if got := UnnestSet(EmptySet); !got.IsEmptySet() {
		t.Errorf("UnnestSet(∅) = %s", got)
	}
}

func TestSetBuilder(t *testing.T) {
	b := NewSetBuilder(4)
	for _, i := range []int64{5, 1, 5, 3} {
		b.Add(Int(i))
	}
	if b.Len() != 4 {
		t.Errorf("builder Len = %d", b.Len())
	}
	if got := b.Build(); !Equal(got, SetOf(Int(1), Int(3), Int(5))) {
		t.Errorf("Build = %s", got)
	}
	// Reusable after Build.
	b.Add(Int(9))
	if got := b.Build(); !Equal(got, SetOf(Int(9))) {
		t.Errorf("second Build = %s", got)
	}
}

func TestAggregate(t *testing.T) {
	s := SetOf(Int(1), Int(2), Int(3))
	cases := []struct {
		kind AggKind
		want Value
	}{
		{AggCount, Int(3)},
		{AggSum, Int(6)},
		{AggAvg, Float(2)},
		{AggMin, Int(1)},
		{AggMax, Int(3)},
	}
	for _, c := range cases {
		got, err := Aggregate(c.kind, s)
		if err != nil || !Equal(got, c.want) {
			t.Errorf("%s(%s) = %s, %v; want %s", c.kind, s, got, err, c.want)
		}
	}
	if got, err := Aggregate(AggCount, EmptySet); err != nil || got.AsInt() != 0 {
		t.Errorf("COUNT(∅) = %s, %v", got, err)
	}
	if got, err := Aggregate(AggSum, EmptySet); err != nil || got.AsInt() != 0 {
		t.Errorf("SUM(∅) = %s, %v", got, err)
	}
	for _, k := range []AggKind{AggAvg, AggMin, AggMax} {
		if _, err := Aggregate(k, EmptySet); err == nil {
			t.Errorf("%s(∅) should error", k)
		}
	}
	if _, err := Aggregate(AggSum, SetOf(Str("x"))); err == nil {
		t.Error("SUM of strings should error")
	}
	if _, err := Aggregate(AggCount, Int(1)); err == nil {
		t.Error("aggregate of scalar should error")
	}
	if got, err := Aggregate(AggSum, SetOf(Int(1), Float(2.5))); err != nil || got.AsFloat() != 3.5 {
		t.Errorf("mixed SUM = %s, %v", got, err)
	}
	// List aggregation counts duplicates.
	if got, _ := Aggregate(AggCount, ListOf(Int(1), Int(1))); got.AsInt() != 2 {
		t.Errorf("COUNT list = %s", got)
	}
}

func TestAggKindParseAndString(t *testing.T) {
	for _, k := range []AggKind{AggCount, AggSum, AggAvg, AggMin, AggMax} {
		got, ok := ParseAggKind(k.String())
		if !ok || got != k {
			t.Errorf("ParseAggKind(%s) = %v, %v", k, got, ok)
		}
	}
	if _, ok := ParseAggKind("MEDIAN"); ok {
		t.Error("MEDIAN should not parse")
	}
}

func TestKindString(t *testing.T) {
	kinds := []Kind{KindNull, KindBool, KindInt, KindFloat, KindString, KindTuple, KindSet, KindList}
	seen := map[string]bool{}
	for _, k := range kinds {
		s := k.String()
		if s == "" || seen[s] {
			t.Errorf("Kind.String duplicate or empty: %q", s)
		}
		seen[s] = true
	}
}

// --- helpers shared with other value tests ---

func sampleValues() []Value {
	return []Value{
		Null,
		Bool(false), Bool(true),
		Int(-3), Int(0), Int(7),
		Float(-2.5), Float(0), Float(7), Float(math.NaN()),
		Str(""), Str("a"), Str("ab"),
		TupleOf(), TupleOf(F("a", Int(1))), TupleOf(F("a", Int(1)), F("b", Str("x"))),
		EmptySet, SetOf(Int(1)), SetOf(Int(1), Int(2)), SetOf(SetOf(Int(1))),
		ListOf(), ListOf(Int(1)), ListOf(Int(1), Int(1)),
	}
}

func randomIntSet(r *rand.Rand) Value {
	n := r.Intn(8)
	es := make([]Value, n)
	for i := range es {
		es[i] = Int(int64(r.Intn(10)))
	}
	return SetOf(es...)
}

func randomValue(r *rand.Rand, depth int) Value {
	max := 5
	if depth > 0 {
		max = 8
	}
	switch r.Intn(max) {
	case 0:
		return Bool(r.Intn(2) == 0)
	case 1:
		return Int(int64(r.Intn(20) - 10))
	case 2:
		return Float(float64(r.Intn(40))/4 - 5)
	case 3, 4:
		return Str(string(rune('a' + r.Intn(4))))
	case 5:
		n := r.Intn(3)
		fs := make([]Field, 0, n)
		for i := 0; i < n; i++ {
			fs = append(fs, F(string(rune('p'+i)), randomValue(r, depth-1)))
		}
		return TupleOf(fs...)
	case 6:
		n := r.Intn(4)
		es := make([]Value, n)
		for i := range es {
			es[i] = randomValue(r, depth-1)
		}
		return SetOf(es...)
	default:
		n := r.Intn(3)
		es := make([]Value, n)
		for i := range es {
			es[i] = randomValue(r, depth-1)
		}
		return ListOf(es...)
	}
}

func TestSortSliceWithLess(t *testing.T) {
	vs := []Value{Int(3), Str("a"), Int(1), Bool(true)}
	sort.Slice(vs, func(i, j int) bool { return Less(vs[i], vs[j]) })
	for i := 1; i < len(vs); i++ {
		if Compare(vs[i-1], vs[i]) > 0 {
			t.Errorf("not sorted at %d: %v", i, vs)
		}
	}
}

// TestAppendKeyMatchesKey pins the scratch-buffer encoder contract: AppendKey
// produces exactly Key's bytes, appends (preserving prefixes), and stays
// injective for the values the join family encodes.
func TestAppendKeyMatchesKey(t *testing.T) {
	vals := []Value{
		Null, True, False, Int(0), Int(-7), Float(1.0), Float(-0.0), Str(""), Str("ab"),
		TupleOf(F("a", Int(1)), F("b", Str("x"))),
		SetOf(Int(1), Int(2)), ListOf(Int(2), Int(1)),
		SetOf(TupleOf(F("k", Int(1))), TupleOf(F("k", Int(2)))),
	}
	for _, v := range vals {
		if got := string(AppendKey(nil, v)); got != Key(v) {
			t.Errorf("AppendKey(nil, %s) = %q, want %q", v, got, Key(v))
		}
		prefix := []byte("prefix")
		buf := AppendKey(prefix, v)
		if string(buf[:6]) != "prefix" || string(buf[6:]) != Key(v) {
			t.Errorf("AppendKey does not append for %s", v)
		}
	}
	// Int/float normalization: 1 and 1.0 are Equal, so keys must coincide.
	if string(AppendKey(nil, Int(1))) != string(AppendKey(nil, Float(1))) {
		t.Error("AppendKey(1) != AppendKey(1.0)")
	}
	// Injectivity across the sample (distinct values → distinct keys).
	seen := map[string]Value{}
	for _, v := range vals {
		k := Key(v)
		if prev, dup := seen[k]; dup && !Equal(prev, v) {
			t.Errorf("key collision between %s and %s", prev, v)
		}
		seen[k] = v
	}
}
