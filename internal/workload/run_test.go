package workload

import (
	"net/http/httptest"
	"runtime"
	"testing"
	"time"

	"tmdb/internal/server"
)

// smokeRun parses a spec, opens the engine and server it describes, and runs
// it in-process — the same path cmd/tmbench takes.
func smokeRun(t *testing.T, specJSON string) (*Spec, []StageResult) {
	t.Helper()
	spec, err := ParseSpec([]byte(specJSON))
	if err != nil {
		t.Fatalf("spec rejected: %v", err)
	}
	eng, err := OpenEngine(spec)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(server.New(eng, spec.ServerConfig()))
	defer hs.Close()
	r := &Runner{Base: hs.URL, Spec: spec, Logf: t.Logf}
	stages, err := r.Run()
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return spec, stages
}

// TestRunMixedSmoke drives a small mixed read/write workload end to end and
// checks the artifact invariants the acceptance criteria name: per-stage
// throughput, latency percentiles, and zero unexplained error-taxonomy
// entries.
func TestRunMixedSmoke(t *testing.T) {
	before := runtime.NumGoroutine()
	spec, stages := smokeRun(t, `{
	  "version": 1, "name": "smoke-mixed", "seed": 7,
	  "data": {"schema": "xyz", "scale": 0.2},
	  "server": {"max_concurrency": 4},
	  "prepare": [{"name": "point", "query": "SELECT x FROM X x WHERE x.b = 3"}],
	  "stages": [
	    {"name": "reads", "clients": 3, "ops": 60, "mix": [
	      {"op": "query", "weight": 3, "query": "SELECT x FROM X x WHERE x.b = 3"},
	      {"op": "prepared", "weight": 2, "name": "point"},
	      {"op": "stats", "weight": 1}
	    ]},
	    {"name": "writes", "clients": 2, "ops": 40, "mix": [
	      {"op": "insert", "weight": 2, "table": "Y", "value": "(a = $SEQ, b = 7, c = {1}, d = 424242)"},
	      {"op": "delete", "weight": 1, "table": "Y", "var": "y", "predicate": "y.d = 424242"},
	      {"op": "query", "weight": 1, "query": "SELECT y FROM Y y WHERE y.b = 7"}
	    ]}
	  ]
	}`)

	if len(stages) != 2 {
		t.Fatalf("got %d stages, want 2", len(stages))
	}
	for _, st := range stages {
		if st.Ops == 0 || st.OpsPerSec <= 0 {
			t.Errorf("stage %s: ops=%d ops/s=%f", st.Name, st.Ops, st.OpsPerSec)
		}
		if st.Latency.Count != st.Ops {
			t.Errorf("stage %s: histogram count %d != ops %d", st.Name, st.Latency.Count, st.Ops)
		}
		if st.Latency.P50Ns <= 0 || st.Latency.P99Ns < st.Latency.P50Ns || st.Latency.MaxNs < st.Latency.P99Ns {
			t.Errorf("stage %s: implausible latency summary %+v", st.Name, st.Latency)
		}
		if n := st.errorCount(); n != 0 {
			t.Errorf("stage %s: %d unexplained errors: %v", st.Name, n, st.Errors)
		}
	}
	reads, writes := stages[0], stages[1]
	if reads.Stats.Admitted == 0 {
		t.Errorf("reads stage admitted no queries: %+v", reads.Stats)
	}
	if writes.Stats.Inserts == 0 {
		t.Errorf("writes stage recorded no inserts in the /stats delta: %+v", writes.Stats)
	}
	if reads.Stats.SeqSpan == 0 || writes.Stats.SeqSpan == 0 {
		t.Errorf("stats snapshots not ordered: reads seq span %d, writes %d",
			reads.Stats.SeqSpan, writes.Stats.SeqSpan)
	}

	// The artifact assembles and round-trips.
	art := NewArtifact(spec, 1, stages)
	path := t.TempDir() + "/art.json"
	if err := art.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadArtifact(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.SpecHash != spec.Hash() || len(back.Stages) != 2 {
		t.Errorf("round-trip lost identity: %+v", back)
	}

	// Goroutine-leak check: all drivers and the server must be gone.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+2 {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestRunDDLUnderLoadSmoke churns index create/drop while queries that want
// the index run concurrently. The compile-time index snapshot makes this
// race-free: every operation must succeed, with any residual query_error
// explained by allow_errors.
func TestRunDDLUnderLoadSmoke(t *testing.T) {
	_, stages := smokeRun(t, `{
	  "version": 1, "name": "smoke-ddl", "seed": 11,
	  "data": {"schema": "xyz", "scale": 0.2},
	  "server": {"max_concurrency": 4},
	  "stages": [
	    {"name": "ddl-churn", "clients": 4, "ops": 120, "mix": [
	      {"op": "query", "weight": 4, "query": "SELECT x FROM X x WHERE x.b = 3"},
	      {"op": "index_create", "weight": 1, "table": "X", "attrs": ["b"], "allow_errors": ["query_error"]},
	      {"op": "index_drop", "weight": 1, "table": "X", "attrs": ["b"], "allow_errors": ["query_error"]}
	    ]}
	  ]
	}`)
	st := stages[0]
	if n := st.errorCount(); n != 0 {
		t.Fatalf("DDL churn produced %d unexplained errors: %v", n, st.Errors)
	}
	if st.Stats.IndexCreates == 0 && st.Stats.IndexDrops == 0 {
		t.Errorf("no DDL reached the server: %+v", st.Stats)
	}
}

// TestRunDeterministicOps: under a fixed seed and an ops budget (no wall
// clock), two runs draw identical operation sequences, so the server-side
// mutation counters match exactly.
func TestRunDeterministicOps(t *testing.T) {
	const spec = `{
	  "version": 1, "name": "smoke-det", "seed": 3,
	  "data": {"schema": "xyz", "scale": 0.2},
	  "stages": [
	    {"name": "mix", "clients": 1, "ops": 40, "mix": [
	      {"op": "query", "weight": 1, "query": "SELECT x FROM X x WHERE x.b = 3"},
	      {"op": "insert", "weight": 1, "table": "Y", "value": "(a = $SEQ, b = 7, c = {1}, d = 424242)"}
	    ]}
	  ]
	}`
	_, run1 := smokeRun(t, spec)
	_, run2 := smokeRun(t, spec)
	if run1[0].Ops != run2[0].Ops {
		t.Errorf("ops differ under fixed seed: %d vs %d", run1[0].Ops, run2[0].Ops)
	}
	if run1[0].Stats.Inserts != run2[0].Stats.Inserts {
		t.Errorf("insert counts differ under fixed seed: %d vs %d",
			run1[0].Stats.Inserts, run2[0].Stats.Inserts)
	}
	if run1[0].Stats.Inserts == 0 {
		t.Error("deterministic run performed no inserts")
	}
}
