package workload

import (
	"encoding/json"
	"fmt"
	"os"

	"tmdb/internal/server"
)

// ArtifactVersion is the artifact format version (bumped on incompatible
// schema changes; the gate refuses mismatched versions).
const ArtifactVersion = 1

// Artifact is the metadata-stamped result of one workload run — the
// BENCH_workload*.json family (see BENCHMARKS.md). Identity fields let the
// gate refuse meaningless comparisons: SpecHash ties the run to the exact
// workload definition, the HostInfo to the machine class.
type Artifact struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"` // always "workload"
	// Workload identity.
	Name     string  `json:"name"`
	SpecHash string  `json:"spec_hash"`
	Seed     uint64  `json:"seed"`
	Scale    float64 `json:"scale"`
	// Provenance.
	GitRev      string   `json:"git_rev,omitempty"`
	StartUnixNs int64    `json:"start_unix_ns,omitempty"`
	Host        HostInfo `json:"host"`
	// Warning marks a run whose numbers should not gate (e.g. a single-CPU
	// host); the gate turns comparisons against it into explicit skips.
	Warning string `json:"warning,omitempty"`
	// Stages are the per-stage results, in spec order.
	Stages []StageResult `json:"stages"`
}

// StageResult is one stage's measured outcome.
type StageResult struct {
	Name       string `json:"name"`
	Clients    int    `json:"clients"`
	DurationNs int64  `json:"duration_ns"`
	// Ops counts completed operations (successful or failed); OpsPerSec is
	// the stage throughput.
	Ops       int64   `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	// Latency digests the merged per-client histograms.
	Latency LatencySummary `json:"latency"`
	// Errors counts unexplained failures by taxonomy code — a clean run has
	// an empty map. Allowed counts failures the spec declared expected
	// (op.allow_errors), kept separate so they are visible but not alarming.
	Errors  map[string]int64 `json:"errors,omitempty"`
	Allowed map[string]int64 `json:"allowed_errors,omitempty"`
	// Stats is the server-side /stats delta across the stage.
	Stats StatsDelta `json:"stats"`
}

// errorCount sums the unexplained failures.
func (r *StageResult) errorCount() int64 {
	var n int64
	for _, c := range r.Errors {
		n += c
	}
	return n
}

// StatsDelta is the change in the server's cumulative /stats counters across
// a stage — well-defined because every counter is reset-free, and ordered
// because each snapshot carries a strictly increasing seq.
type StatsDelta struct {
	// SeqSpan is how many /stats snapshots the server served between the
	// stage's two scrapes (including other scrapers' — a sanity signal that
	// the two snapshots really are distinct and ordered).
	SeqSpan uint64 `json:"seq_span"`

	Admitted      uint64 `json:"admitted"`
	QueueTimeouts uint64 `json:"queue_timeouts"`
	DrainRejects  uint64 `json:"drain_rejects"`

	ClientGone       uint64 `json:"client_gone"`
	DeadlineExceeded uint64 `json:"deadline_exceeded"`
	BudgetExceeded   uint64 `json:"budget_exceeded"`
	Canceled         uint64 `json:"canceled"`
	Panics           uint64 `json:"panics"`

	PlanCacheHits          uint64 `json:"plan_cache_hits"`
	PlanCacheMisses        uint64 `json:"plan_cache_misses"`
	PlanCacheEvictions     uint64 `json:"plan_cache_evictions"`
	PlanCacheInvalidations uint64 `json:"plan_cache_invalidations"`

	MorselsDispatched int64 `json:"morsels_dispatched"`
	MorselsStolen     int64 `json:"morsels_stolen"`

	Inserts      uint64 `json:"inserts"`
	Deletes      uint64 `json:"deletes"`
	IndexCreates uint64 `json:"index_creates"`
	IndexDrops   uint64 `json:"index_drops"`
}

// statsDelta subtracts two snapshots field by field.
func statsDelta(before, after *server.StatsResponse) StatsDelta {
	return StatsDelta{
		SeqSpan: after.Seq - before.Seq,

		Admitted:      after.Admitted - before.Admitted,
		QueueTimeouts: after.QueueTimeouts - before.QueueTimeouts,
		DrainRejects:  after.DrainRejects - before.DrainRejects,

		ClientGone:       after.ClientGone - before.ClientGone,
		DeadlineExceeded: after.DeadlineExceeded - before.DeadlineExceeded,
		BudgetExceeded:   after.BudgetExceeded - before.BudgetExceeded,
		Canceled:         after.Canceled - before.Canceled,
		Panics:           after.Panics - before.Panics,

		PlanCacheHits:          after.PlanCache.Hits - before.PlanCache.Hits,
		PlanCacheMisses:        after.PlanCache.Misses - before.PlanCache.Misses,
		PlanCacheEvictions:     after.PlanCache.Evictions - before.PlanCache.Evictions,
		PlanCacheInvalidations: after.PlanCache.Invalidations - before.PlanCache.Invalidations,

		MorselsDispatched: after.MorselsDispatched - before.MorselsDispatched,
		MorselsStolen:     after.MorselsStolen - before.MorselsStolen,

		Inserts:      after.Inserts - before.Inserts,
		Deletes:      after.Deletes - before.Deletes,
		IndexCreates: after.IndexCreates - before.IndexCreates,
		IndexDrops:   after.IndexDrops - before.IndexDrops,
	}
}

// NewArtifact assembles an artifact for a finished run (StartUnixNs and
// GitRev are the caller's to stamp — provenance the harness cannot know).
func NewArtifact(spec *Spec, scale float64, stages []StageResult) *Artifact {
	if scale <= 0 {
		scale = 1
	}
	return &Artifact{
		Version:  ArtifactVersion,
		Kind:     "workload",
		Name:     spec.Name,
		SpecHash: spec.Hash(),
		Seed:     spec.Seed,
		Scale:    scale,
		Host:     Host(),
		Stages:   stages,
	}
}

// WriteFile writes the artifact as indented JSON.
func (a *Artifact) WriteFile(path string) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadArtifact reads an artifact file, checking kind and version.
func LoadArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("workload: parsing artifact %s: %w", path, err)
	}
	if a.Kind != "workload" {
		return nil, fmt.Errorf("workload: %s is a %q artifact, want kind \"workload\"", path, a.Kind)
	}
	if a.Version != ArtifactVersion {
		return nil, fmt.Errorf("workload: %s is artifact version %d, this build reads %d", path, a.Version, ArtifactVersion)
	}
	return &a, nil
}
