package workload

import (
	"strings"
	"testing"
)

// goldenSpec is a complete valid v1 spec exercising every section.
const goldenSpec = `{
  "version": 1,
  "name": "golden",
  "seed": 42,
  "data": {"schema": "xyz", "scale": 0.5, "skew": 0.2},
  "server": {"max_concurrency": 4, "queue_timeout_ms": 100},
  "prepare": [
    {"name": "point", "query": "SELECT x FROM X x WHERE x.b = 3"}
  ],
  "stages": [
    {
      "name": "warm",
      "clients": 2,
      "ops": 50,
      "mix": [
        {"op": "query", "weight": 3, "query": "SELECT x FROM X x WHERE x.b = 3"},
        {"op": "prepared", "weight": 2, "name": "point"},
        {"op": "stats", "weight": 1}
      ]
    },
    {
      "name": "churn",
      "clients": 2,
      "duration_ms": 100,
      "mix": [
        {"op": "insert", "weight": 2, "table": "Y", "value": "(a = $SEQ, b = 7, c = {1}, d = 424242)"},
        {"op": "delete", "weight": 1, "table": "Y", "var": "y", "predicate": "y.d = 424242"},
        {"op": "index_create", "weight": 1, "table": "X", "attrs": ["b"]},
        {"op": "index_drop", "weight": 1, "table": "X", "attrs": ["b"], "allow_errors": ["query_error"]},
        {"op": "explain", "weight": 1, "query": "SELECT x FROM X x"}
      ]
    }
  ]
}`

func TestParseGoldenSpec(t *testing.T) {
	s, err := ParseSpec([]byte(goldenSpec))
	if err != nil {
		t.Fatalf("golden spec rejected: %v", err)
	}
	if s.Name != "golden" || s.Seed != 42 || len(s.Stages) != 2 {
		t.Errorf("parsed spec = %+v", s)
	}
	if s.Stages[1].Mix[3].AllowErrors[0] != "query_error" {
		t.Errorf("allow_errors lost: %+v", s.Stages[1].Mix[3])
	}
	// Hash is stable across reformatting: re-parse with different whitespace.
	reformatted := strings.ReplaceAll(goldenSpec, "\n", " ")
	s2, err := ParseSpec([]byte(reformatted))
	if err != nil {
		t.Fatalf("reformatted spec rejected: %v", err)
	}
	if s.Hash() != s2.Hash() {
		t.Errorf("hash depends on source formatting: %s vs %s", s.Hash(), s2.Hash())
	}
	// ...but changes when the workload actually changes.
	s2.Stages[0].Clients = 99
	if s.Hash() == s2.Hash() {
		t.Error("hash did not change with the spec")
	}
}

// TestParseSpecRejectsUnknownFields: a typo'd field must fail parse, not
// silently change the workload.
func TestParseSpecRejectsUnknownFields(t *testing.T) {
	bad := strings.Replace(goldenSpec, `"seed": 42`, `"sede": 42`, 1)
	if _, err := ParseSpec([]byte(bad)); err == nil {
		t.Fatal("unknown field accepted")
	} else if !strings.Contains(err.Error(), "sede") {
		t.Errorf("error does not name the unknown field: %v", err)
	}
}

// TestValidateStructuredErrors: each defect is located by path, and all
// defects surface in one pass.
func TestValidateStructuredErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		path   string // expected ValidationError.Path
		substr string // expected in the message
	}{
		{"bad version", func(s *Spec) { s.Version = 2 }, "version", "this build reads"},
		{"missing name", func(s *Spec) { s.Name = "" }, "name", "missing"},
		{"bad schema", func(s *Spec) { s.Data.Schema = "tpch" }, "data.schema", "unknown schema"},
		{"negative scale", func(s *Spec) { s.Data.Scale = -1 }, "data.scale", "negative"},
		{"skew out of range", func(s *Spec) { s.Data.Skew = 1.5 }, "data.skew", "outside"},
		{"dup prepare", func(s *Spec) { s.Prepare = append(s.Prepare, s.Prepare[0]) }, "prepare[1].name", "duplicate"},
		{"dup stage", func(s *Spec) { s.Stages[1].Name = s.Stages[0].Name }, "stages[1].name", "duplicate"},
		{"zero clients", func(s *Spec) { s.Stages[0].Clients = 0 }, "stages[0].clients", "at least one"},
		{"no budget", func(s *Spec) { s.Stages[0].Ops = 0 }, "stages[0]", "duration_ms or ops"},
		{"empty mix", func(s *Spec) { s.Stages[0].Mix = nil }, "stages[0].mix", "empty"},
		{"unknown op", func(s *Spec) { s.Stages[0].Mix[0].Op = "frobnicate" }, "stages[0].mix[0].op", "unknown op"},
		{"zero weight", func(s *Spec) { s.Stages[0].Mix[0].Weight = 0 }, "stages[0].mix[0].weight", ">= 1"},
		{"query without text", func(s *Spec) { s.Stages[0].Mix[0].Query = "" }, "stages[0].mix[0].query", "needs a query"},
		{"prepared unknown name", func(s *Spec) { s.Stages[0].Mix[1].Name = "ghost" }, "stages[0].mix[1].name", "not in the prepare list"},
		{"insert missing value", func(s *Spec) { s.Stages[1].Mix[0].Value = "" }, "stages[1].mix[0]", "needs table and value"},
		{"delete missing predicate", func(s *Spec) { s.Stages[1].Mix[1].Predicate = "" }, "stages[1].mix[1]", "needs table, var, and predicate"},
		{"index missing attrs", func(s *Spec) { s.Stages[1].Mix[2].Attrs = nil }, "stages[1].mix[2]", "needs table and attrs"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s, err := ParseSpec([]byte(goldenSpec))
			if err != nil {
				t.Fatal(err)
			}
			tc.mutate(s)
			errs := s.Validate()
			if len(errs) == 0 {
				t.Fatal("defect not detected")
			}
			found := false
			for _, e := range errs {
				if e.Path == tc.path && strings.Contains(e.Msg, tc.substr) {
					found = true
				}
			}
			if !found {
				t.Errorf("no error at %q containing %q; got %v", tc.path, tc.substr, errs)
			}
		})
	}
}

// TestValidateReportsAllDefectsAtOnce: validation is single-pass but
// exhaustive — the author sees every problem, not just the first.
func TestValidateReportsAllDefectsAtOnce(t *testing.T) {
	s, err := ParseSpec([]byte(goldenSpec))
	if err != nil {
		t.Fatal(err)
	}
	s.Name = ""
	s.Data.Schema = "bogus"
	s.Stages[0].Clients = -1
	errs := s.Validate()
	if len(errs) < 3 {
		t.Fatalf("expected >= 3 defects reported together, got %d: %v", len(errs), errs)
	}
	msg := errs.Error()
	if !strings.Contains(msg, "3 errors") && !strings.Contains(msg, "errors):") {
		t.Errorf("joined message lost the count: %q", msg)
	}
}
