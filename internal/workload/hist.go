// Package workload is the declarative workload harness behind cmd/tmbench: a
// versioned JSON spec describes staged mixes of operations (queries, prepared
// re-executions, mutations, DDL) run by concurrent clients against the
// HTTP/JSON server, and the runner records per-stage throughput, HDR-style
// latency histograms, an error taxonomy, and server /stats deltas into a
// metadata-stamped artifact cmd/benchdiff can gate on.
package workload

import (
	"fmt"
	"math/bits"
)

// Hist is an HDR-style log-linear latency histogram: values bucket by
// power-of-two exponent, each exponent range split into linear sub-buckets,
// bounding the relative error of any recorded value by ~6% while covering
// nanoseconds to hours in a fixed footprint of a few KiB. The zero value is ready to use. Not safe for concurrent
// use — the runner keeps one per client and merges (Merge is commutative
// and associative, exercised by the unit tests).
type Hist struct {
	counts [histBuckets]int64
	n      int64
	max    int64
	sum    int64
}

const (
	// histSubBits is log2 of the linear sub-buckets per exponent range.
	histSubBits  = 5
	histSub      = 1 << histSubBits // 32
	histExpMax   = 64 - histSubBits // exponent ranges beyond the linear region
	histBuckets  = histSub * histExpMax
	histMaxValue = int64(1)<<62 - 1
)

// bucketOf maps a non-negative value to its bucket index. Values below
// histSub land in the exact linear region (bucket == value); above it, the
// exponent range is bits.Len64(v)-histSubBits and the top histSubBits bits
// select the sub-bucket (only the upper half of each range's sub-buckets is
// populated, which keeps the index monotone in v). Bucket widths are 2^exp,
// so the relative error of any value is at most 1/(histSub/2) ≈ 6%.
func bucketOf(v int64) int {
	if v < histSub {
		return int(v)
	}
	exp := bits.Len64(uint64(v)) - histSubBits // ≥ 1 for v ≥ histSub
	sub := int(v>>uint(exp)) & (histSub - 1)
	return exp*histSub + sub
}

// bucketLow returns the smallest value mapping to bucket i — the
// conservative (under-estimating) representative used by Percentile.
func bucketLow(i int) int64 {
	exp := i / histSub
	sub := int64(i % histSub)
	if exp == 0 {
		return sub
	}
	return sub << uint(exp)
}

// Record adds one observation. Negative values clamp to zero, absurd values
// to the histogram's ceiling — a latency recorder must never panic.
func (h *Hist) Record(v int64) {
	if v < 0 {
		v = 0
	}
	if v > histMaxValue {
		v = histMaxValue
	}
	h.counts[bucketOf(v)]++
	h.n++
	h.sum += v
	if v > h.max {
		h.max = v
	}
}

// Merge folds other into h (commutative: merging a set of histograms in any
// order yields identical counts, max, and percentiles).
func (h *Hist) Merge(other *Hist) {
	if other == nil {
		return
	}
	for i, c := range other.counts {
		h.counts[i] += c
	}
	h.n += other.n
	h.sum += other.sum
	if other.max > h.max {
		h.max = other.max
	}
}

// Count returns the number of recorded observations.
func (h *Hist) Count() int64 { return h.n }

// Max returns the largest recorded value (0 when empty).
func (h *Hist) Max() int64 { return h.max }

// Mean returns the exact arithmetic mean (0 when empty) — the sum is
// tracked exactly, not reconstructed from buckets.
func (h *Hist) Mean() float64 {
	if h.n == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.n)
}

// Percentile returns the value at quantile p in [0, 100]: the lower bound of
// the bucket containing the ceil(p/100·n)-th observation (so the reported
// p99 never exceeds the true p99 by more than the bucket's width, and the
// exact Max is substituted at the top). 0 when empty.
func (h *Hist) Percentile(p float64) int64 {
	if h.n == 0 {
		return 0
	}
	if p < 0 {
		p = 0
	}
	if p > 100 {
		p = 100
	}
	rank := int64(p/100*float64(h.n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank >= h.n {
		return h.max
	}
	var seen int64
	for i, c := range h.counts {
		seen += c
		if seen >= rank {
			return bucketLow(i)
		}
	}
	return h.max
}

// LatencySummary is the artifact-facing digest of a histogram, in
// nanoseconds.
type LatencySummary struct {
	Count  int64   `json:"count"`
	MeanNs float64 `json:"mean_ns"`
	P50Ns  int64   `json:"p50_ns"`
	P95Ns  int64   `json:"p95_ns"`
	P99Ns  int64   `json:"p99_ns"`
	MaxNs  int64   `json:"max_ns"`
}

// Summary digests the histogram for the artifact.
func (h *Hist) Summary() LatencySummary {
	return LatencySummary{
		Count:  h.n,
		MeanNs: h.Mean(),
		P50Ns:  h.Percentile(50),
		P95Ns:  h.Percentile(95),
		P99Ns:  h.Percentile(99),
		MaxNs:  h.max,
	}
}

// String renders a short human-readable digest (for logs and the tmbench
// report).
func (h *Hist) String() string { return h.Summary().String() }

// String renders the digest for logs and the tmbench report.
func (s LatencySummary) String() string {
	return fmt.Sprintf("p50=%s p95=%s p99=%s max=%s",
		fmtNs(s.P50Ns), fmtNs(s.P95Ns), fmtNs(s.P99Ns), fmtNs(s.MaxNs))
}

// fmtNs renders nanoseconds with a human unit.
func fmtNs(ns int64) string {
	switch {
	case ns >= 1e9:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	case ns >= 1e6:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	case ns >= 1e3:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
