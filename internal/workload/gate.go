package workload

import (
	"fmt"
	"io"
)

// Workload gating (cmd/benchdiff -workload): compare two workload artifacts
// stage by stage — a throughput floor (current ops/s must reach a fraction of
// the baseline's) and a p99 ceiling (current p99 must stay within a multiple
// of the baseline's). Mirroring the parallel-speedup gate, the comparison is
// explicit about not running: incomparable hosts, artifact warnings, or
// mismatched spec hashes produce a "skipped"/refused outcome with the reason
// in the gate, never a silent pass.
//
// Regenerating an artifact:
//
//	go run ./cmd/tmbench -spec workloads/mixed.json -out BENCH_workload_mixed.json

// StageGateResult is one compared stage.
type StageGateResult struct {
	Stage string `json:"stage"`
	// Status is "ok", "failed", or "new" (stage present only in the current
	// artifact — reported, never gated).
	Status string `json:"status"`
	// Throughput comparison: current / baseline ops per second.
	BaseOpsPerSec float64 `json:"base_ops_per_sec"`
	CurOpsPerSec  float64 `json:"cur_ops_per_sec"`
	OpsRatio      float64 `json:"ops_ratio"`
	// Latency comparison: current p99 / baseline p99 (0 baseline → not
	// checked).
	BaseP99Ns int64   `json:"base_p99_ns"`
	CurP99Ns  int64   `json:"cur_p99_ns"`
	P99Ratio  float64 `json:"p99_ratio"`
	// Errors is the current stage's unexplained error count — any nonzero
	// value fails the stage regardless of throughput.
	Errors int64 `json:"errors"`
}

// WorkloadGate is the outcome of comparing two workload artifacts.
type WorkloadGate struct {
	// Status is "ok", "failed", or "skipped". Skipped is an explicit outcome,
	// not a pass: the comparison did not run and Reason says why.
	Status string `json:"status"`
	Reason string `json:"reason,omitempty"`
	// MinOpsRatio is the throughput floor (current/baseline), MaxP99Ratio the
	// latency ceiling (current/baseline).
	MinOpsRatio float64           `json:"min_ops_ratio"`
	MaxP99Ratio float64           `json:"max_p99_ratio"`
	Checked     []StageGateResult `json:"checked,omitempty"`
	Failures    int               `json:"failures"`
	// Missing lists baseline stages absent from the current artifact — a
	// failure (losing a stage silently would un-gate it).
	Missing []string `json:"missing,omitempty"`
}

// GateWorkload compares cur against base. The comparison is refused (error)
// when the artifacts measure different workloads — mismatched spec hashes or
// names make every number incomparable — and skipped (explicit status) when
// either artifact carries a warning or the hosts differ in processor count
// enough that throughput ratios are noise.
func GateWorkload(base, cur *Artifact, minOpsRatio, maxP99Ratio float64) (*WorkloadGate, error) {
	if base.SpecHash != cur.SpecHash {
		return nil, fmt.Errorf("artifacts measure different workloads: baseline %s (spec %s) vs current %s (spec %s) — regenerate both from the same spec with: go run ./cmd/tmbench -spec workloads/%s.json",
			base.Name, base.SpecHash, cur.Name, cur.SpecHash, base.Name)
	}
	g := &WorkloadGate{MinOpsRatio: minOpsRatio, MaxP99Ratio: maxP99Ratio}
	switch {
	case base.Warning != "":
		g.Status = "skipped"
		g.Reason = "baseline artifact warning: " + base.Warning
	case cur.Warning != "":
		g.Status = "skipped"
		g.Reason = "current artifact warning: " + cur.Warning
	case base.Host.GOMAXPROCS != cur.Host.GOMAXPROCS:
		g.Status = "skipped"
		g.Reason = fmt.Sprintf("host mismatch: baseline ran at GOMAXPROCS=%d, current at %d — throughput ratios are not comparable",
			base.Host.GOMAXPROCS, cur.Host.GOMAXPROCS)
	case base.Scale != cur.Scale:
		g.Status = "skipped"
		g.Reason = fmt.Sprintf("scale mismatch: baseline ran at scale %g, current at %g",
			base.Scale, cur.Scale)
	}
	if g.Status == "skipped" {
		g.Reason += fmt.Sprintf(" — regenerate both on one host with: go run ./cmd/tmbench -spec workloads/%s.json", base.Name)
		return g, nil
	}

	g.Status = "ok"
	baseStages := map[string]*StageResult{}
	for i := range base.Stages {
		baseStages[base.Stages[i].Name] = &base.Stages[i]
	}
	curNames := map[string]bool{}
	for i := range cur.Stages {
		cs := &cur.Stages[i]
		curNames[cs.Name] = true
		r := StageGateResult{
			Stage:        cs.Name,
			CurOpsPerSec: cs.OpsPerSec,
			CurP99Ns:     cs.Latency.P99Ns,
			Errors:       cs.errorCount(),
		}
		bs, ok := baseStages[cs.Name]
		if !ok {
			r.Status = "new"
			g.Checked = append(g.Checked, r)
			continue
		}
		r.BaseOpsPerSec = bs.OpsPerSec
		r.BaseP99Ns = bs.Latency.P99Ns
		if bs.OpsPerSec > 0 {
			r.OpsRatio = cs.OpsPerSec / bs.OpsPerSec
		}
		if bs.Latency.P99Ns > 0 {
			r.P99Ratio = float64(cs.Latency.P99Ns) / float64(bs.Latency.P99Ns)
		}
		r.Status = "ok"
		if r.Errors > 0 ||
			(bs.OpsPerSec > 0 && r.OpsRatio < minOpsRatio) ||
			(bs.Latency.P99Ns > 0 && r.P99Ratio > maxP99Ratio) {
			r.Status = "failed"
			g.Failures++
		}
		g.Checked = append(g.Checked, r)
	}
	for _, bs := range base.Stages {
		if !curNames[bs.Name] {
			g.Missing = append(g.Missing, bs.Name)
			g.Failures++
		}
	}
	if g.Failures > 0 {
		g.Status = "failed"
	}
	return g, nil
}

// Print renders the gate outcome.
func (g *WorkloadGate) Print(w io.Writer) {
	if g.Status == "skipped" {
		fmt.Fprintf(w, "workload gate: SKIPPED — %s\n", g.Reason)
		return
	}
	fmt.Fprintf(w, "workload gate (ops floor %.2fx, p99 ceiling %.2fx)\n", g.MinOpsRatio, g.MaxP99Ratio)
	fmt.Fprintf(w, "%-14s %12s %12s %7s %9s %9s %6s  %s\n",
		"stage", "base op/s", "cur op/s", "ratio", "base p99", "cur p99", "errs", "status")
	for _, r := range g.Checked {
		fmt.Fprintf(w, "%-14s %12.1f %12.1f %6.2fx %9s %9s %6d  %s\n",
			r.Stage, r.BaseOpsPerSec, r.CurOpsPerSec, r.OpsRatio,
			fmtNs(r.BaseP99Ns), fmtNs(r.CurP99Ns), r.Errors, r.Status)
	}
	for _, name := range g.Missing {
		fmt.Fprintf(w, "%-14s baseline stage missing from current artifact\n", name)
	}
	if g.Failures > 0 {
		fmt.Fprintf(w, "%d stage(s) outside the gate bounds\n", g.Failures)
	}
}
