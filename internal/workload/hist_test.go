package workload

import (
	"math/rand/v2"
	"testing"
)

// TestHistEmpty: the zero histogram reports zeros everywhere.
func TestHistEmpty(t *testing.T) {
	var h Hist
	if h.Count() != 0 || h.Max() != 0 || h.Mean() != 0 {
		t.Errorf("empty hist: count=%d max=%d mean=%f", h.Count(), h.Max(), h.Mean())
	}
	for _, p := range []float64{0, 50, 99, 100} {
		if got := h.Percentile(p); got != 0 {
			t.Errorf("empty hist p%g = %d, want 0", p, got)
		}
	}
	s := h.Summary()
	if s != (LatencySummary{}) {
		t.Errorf("empty summary = %+v", s)
	}
}

// TestHistSingleSample: one observation is every percentile and the max.
func TestHistSingleSample(t *testing.T) {
	var h Hist
	h.Record(1500)
	if h.Count() != 1 || h.Max() != 1500 {
		t.Fatalf("count=%d max=%d", h.Count(), h.Max())
	}
	if h.Mean() != 1500 {
		t.Errorf("mean = %f, want 1500", h.Mean())
	}
	for _, p := range []float64{1, 50, 99, 100} {
		if got := h.Percentile(p); got != 1500 {
			t.Errorf("p%g = %d, want 1500 (rank 1 of 1 is the max)", p, got)
		}
	}
}

// TestHistBucketBoundaries: the linear region is exact, and above it every
// value maps to a bucket whose lower bound is within the documented ~6%
// relative error, monotonically.
func TestHistBucketBoundaries(t *testing.T) {
	// Linear region: exact.
	for v := int64(0); v < histSub; v++ {
		if b := bucketOf(v); bucketLow(b) != v {
			t.Fatalf("linear region v=%d: bucketLow(bucketOf) = %d", v, bucketLow(b))
		}
	}
	// Power-of-two boundaries and their neighbors, plus random values.
	checks := []int64{histSub - 1, histSub, histSub + 1, 63, 64, 65, 127, 128, 1<<20 - 1, 1 << 20, 1<<40 + 12345}
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		checks = append(checks, rng.Int64N(int64(1)<<50))
	}
	prev := -1
	for _, v := range checks {
		b := bucketOf(v)
		low := bucketLow(b)
		if low > v {
			t.Fatalf("v=%d: bucket lower bound %d exceeds the value", v, low)
		}
		if v >= histSub && float64(v-low) > 0.0626*float64(v) {
			t.Errorf("v=%d: lower bound %d off by more than ~6%%", v, low)
		}
		_ = prev
	}
	// Monotonicity: increasing values never map to a smaller bucket.
	last := 0
	for v := int64(0); v < 100000; v += 7 {
		b := bucketOf(v)
		if b < last {
			t.Fatalf("bucketOf not monotone at v=%d: %d after %d", v, b, last)
		}
		last = b
	}
}

// TestHistMergeCommutative: merging a set of histograms in any order yields
// identical counts, max, mean, and percentiles — the property the runner
// relies on when folding per-client histograms into the stage digest.
func TestHistMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 9))
	parts := make([]*Hist, 5)
	for i := range parts {
		parts[i] = &Hist{}
		for j := 0; j < 500; j++ {
			parts[i].Record(rng.Int64N(10_000_000))
		}
	}
	var fwd, rev, interleaved Hist
	for _, p := range parts {
		fwd.Merge(p)
	}
	for i := len(parts) - 1; i >= 0; i-- {
		rev.Merge(parts[i])
	}
	for _, i := range []int{2, 0, 4, 1, 3} {
		interleaved.Merge(parts[i])
	}
	for _, other := range []*Hist{&rev, &interleaved} {
		if fwd.Count() != other.Count() || fwd.Max() != other.Max() || fwd.Mean() != other.Mean() {
			t.Fatalf("merge order changed count/max/mean")
		}
		for _, p := range []float64{50, 95, 99, 100} {
			if fwd.Percentile(p) != other.Percentile(p) {
				t.Errorf("merge order changed p%g: %d vs %d", p, fwd.Percentile(p), other.Percentile(p))
			}
		}
		if fwd.counts != other.counts {
			t.Error("merge order changed bucket counts")
		}
	}
	// Merging nil and merging an empty histogram are no-ops.
	before := fwd.Summary()
	fwd.Merge(nil)
	fwd.Merge(&Hist{})
	if fwd.Summary() != before {
		t.Error("nil/empty merge changed the summary")
	}
}

// TestHistPercentileOrder: percentiles are monotone in p and bracket the
// recorded range.
func TestHistPercentileOrder(t *testing.T) {
	var h Hist
	for v := int64(1); v <= 10000; v++ {
		h.Record(v * 1000)
	}
	prev := int64(-1)
	for p := 0.0; p <= 100; p += 0.5 {
		got := h.Percentile(p)
		if got < prev {
			t.Fatalf("p%g = %d < previous %d", p, got, prev)
		}
		prev = got
	}
	if h.Percentile(100) != h.Max() {
		t.Errorf("p100 = %d, want max %d", h.Percentile(100), h.Max())
	}
	// p50 of the uniform ramp should sit near the middle, within bucket error.
	p50 := h.Percentile(50)
	if p50 < 4_500_000 || p50 > 5_500_000 {
		t.Errorf("p50 = %d, want ≈5_000_000", p50)
	}
	// Clamping: negative and absurd values must not panic.
	h.Record(-5)
	h.Record(int64(1) << 62)
	if h.Max() != histMaxValue {
		t.Errorf("max after clamp = %d, want %d", h.Max(), histMaxValue)
	}
}
