package workload

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strings"

	"tmdb/internal/server"
)

// SpecVersion is the spec format version this package reads and writes.
const SpecVersion = 1

// Spec is the versioned declarative workload: a dataset, optional server
// sizing, named prepared statements registered in every client's session,
// and a sequence of stages each running a weighted operation mix with a
// fixed client count until a duration or operation budget is exhausted.
// Specs are committed under workloads/ and validated in CI; parse with
// ParseSpec, which applies strict decoding and structured validation.
type Spec struct {
	// Version must equal SpecVersion.
	Version int `json:"version"`
	// Name labels the workload in artifacts and reports.
	Name string `json:"name"`
	// Seed drives every pseudo-random choice the runner makes (per-client
	// operation picks), so a fixed seed reproduces the stage configuration
	// byte for byte.
	Seed uint64 `json:"seed"`
	// Data describes the dataset the server is opened over.
	Data DataSpec `json:"data"`
	// Server sizes the in-process server (ignored when benching an external
	// one).
	Server ServerSpec `json:"server"`
	// Prepare lists statements registered in each client's session before
	// the first stage; "prepared" ops reference them by name.
	Prepare []PrepareSpec `json:"prepare,omitempty"`
	// Stages run in order.
	Stages []StageSpec `json:"stages"`
}

// DataSpec names the datagen schema and its sizing.
type DataSpec struct {
	// Schema: xyz | company | table1 | rs (the datagen generators).
	Schema string `json:"schema"`
	// Scale multiplies the schema's base row counts (0 means 1.0).
	Scale float64 `json:"scale,omitempty"`
	// Skew is the xyz generator's hot-key fraction in [0, 1).
	Skew float64 `json:"skew,omitempty"`
}

// ServerSpec sizes the in-process server.
type ServerSpec struct {
	// MaxConcurrency bounds concurrently executing queries (0 = server
	// default).
	MaxConcurrency int `json:"max_concurrency,omitempty"`
	// QueueTimeoutMs is the admission-queue timeout (0 = server default).
	QueueTimeoutMs int64 `json:"queue_timeout_ms,omitempty"`
}

// PrepareSpec is one named prepared statement.
type PrepareSpec struct {
	Name  string `json:"name"`
	Query string `json:"query"`
}

// StageSpec is one workload stage.
type StageSpec struct {
	// Name labels the stage in artifacts; must be unique within the spec.
	Name string `json:"name"`
	// Clients is the number of concurrent driver goroutines.
	Clients int `json:"clients"`
	// DurationMs stops the stage after this long; Ops after this many total
	// operations across clients. At least one must be positive; with both,
	// whichever trips first ends the stage.
	DurationMs int64 `json:"duration_ms,omitempty"`
	Ops        int64 `json:"ops,omitempty"`
	// Mix is the weighted operation mix each client draws from.
	Mix []OpSpec `json:"mix"`
}

// Op kinds accepted in a mix.
const (
	OpQuery       = "query"        // one-shot POST /query
	OpPrepared    = "prepared"     // POST /execute of a Prepare-listed statement
	OpExplain     = "explain"      // POST /explain
	OpInsert      = "insert"       // POST /insert ($SEQ in Value substituted per call)
	OpDelete      = "delete"       // POST /delete ($SEQ in Predicate substituted)
	OpIndexCreate = "index_create" // POST /index/create
	OpIndexDrop   = "index_drop"   // POST /index/drop
	OpStats       = "stats"        // GET /stats (scraper traffic)
)

// OpSpec is one weighted operation in a stage mix. The $SEQ token in Value
// and Predicate is replaced per call by a stage-unique increasing integer,
// so inserts generate distinct tuples and deletes can target them.
type OpSpec struct {
	Op     string `json:"op"`
	Weight int    `json:"weight"`
	// Query feeds query and explain ops.
	Query string `json:"query,omitempty"`
	// Name references a Prepare entry (prepared op).
	Name string `json:"name,omitempty"`
	// Table, Value, Var, Predicate, Attrs feed the mutation ops.
	Table     string   `json:"table,omitempty"`
	Value     string   `json:"value,omitempty"`
	Var       string   `json:"var,omitempty"`
	Predicate string   `json:"predicate,omitempty"`
	Attrs     []string `json:"attrs,omitempty"`
	// Options overrides the engine options for this op's requests —
	// distinct options produce distinct plan-cache keys, which is how the
	// cache-churn workload provokes evictions.
	Options *server.WireOptions `json:"options,omitempty"`
	// AllowErrors lists taxonomy codes this op is expected to produce
	// (e.g. query_error on an index_drop racing another client's drop).
	// Allowed codes are counted separately and do not fail the run's
	// zero-unexplained-errors check.
	AllowErrors []string `json:"allow_errors,omitempty"`
}

// ValidationError locates one spec defect: Path is a JSON-ish pointer
// ("stages[2].mix[0].weight"), Msg says what is wrong.
type ValidationError struct {
	Path string
	Msg  string
}

func (e ValidationError) Error() string { return e.Path + ": " + e.Msg }

// ValidationErrors joins every defect found in one pass, so a spec author
// sees all of them at once.
type ValidationErrors []ValidationError

func (es ValidationErrors) Error() string {
	msgs := make([]string, len(es))
	for i, e := range es {
		msgs[i] = e.Error()
	}
	return fmt.Sprintf("invalid workload spec (%d errors):\n  %s", len(es), strings.Join(msgs, "\n  "))
}

// dataSchemas are the datagen generators a spec may name.
var dataSchemas = map[string]bool{"xyz": true, "company": true, "table1": true, "rs": true}

// opKinds maps each op to its required fields.
var opKinds = map[string]bool{
	OpQuery: true, OpPrepared: true, OpExplain: true, OpInsert: true,
	OpDelete: true, OpIndexCreate: true, OpIndexDrop: true, OpStats: true,
}

// Validate checks the spec in one pass and returns every defect found (nil
// when clean).
func (s *Spec) Validate() ValidationErrors {
	var errs ValidationErrors
	add := func(path, format string, args ...any) {
		errs = append(errs, ValidationError{Path: path, Msg: fmt.Sprintf(format, args...)})
	}
	if s.Version != SpecVersion {
		add("version", "got %d, this build reads version %d", s.Version, SpecVersion)
	}
	if s.Name == "" {
		add("name", "missing workload name")
	}
	if !dataSchemas[s.Data.Schema] {
		add("data.schema", "unknown schema %q (want xyz, company, table1, or rs)", s.Data.Schema)
	}
	if s.Data.Scale < 0 {
		add("data.scale", "negative scale %g", s.Data.Scale)
	}
	if s.Data.Skew < 0 || s.Data.Skew >= 1 {
		if s.Data.Skew != 0 {
			add("data.skew", "skew %g outside [0, 1)", s.Data.Skew)
		}
	}
	if s.Server.MaxConcurrency < 0 {
		add("server.max_concurrency", "negative")
	}
	if s.Server.QueueTimeoutMs < 0 {
		add("server.queue_timeout_ms", "negative")
	}
	prepared := map[string]bool{}
	for i, p := range s.Prepare {
		path := fmt.Sprintf("prepare[%d]", i)
		if p.Name == "" {
			add(path+".name", "missing statement name")
		} else if prepared[p.Name] {
			add(path+".name", "duplicate statement %q", p.Name)
		}
		prepared[p.Name] = true
		if p.Query == "" {
			add(path+".query", "missing query")
		}
	}
	if len(s.Stages) == 0 {
		add("stages", "a workload needs at least one stage")
	}
	stageNames := map[string]bool{}
	for i, st := range s.Stages {
		path := fmt.Sprintf("stages[%d]", i)
		if st.Name == "" {
			add(path+".name", "missing stage name")
		} else if stageNames[st.Name] {
			add(path+".name", "duplicate stage %q (artifact stages are keyed by name)", st.Name)
		}
		stageNames[st.Name] = true
		if st.Clients < 1 {
			add(path+".clients", "need at least one client, got %d", st.Clients)
		}
		if st.DurationMs <= 0 && st.Ops <= 0 {
			add(path, "need a positive duration_ms or ops budget")
		}
		if st.DurationMs < 0 {
			add(path+".duration_ms", "negative")
		}
		if st.Ops < 0 {
			add(path+".ops", "negative")
		}
		if len(st.Mix) == 0 {
			add(path+".mix", "empty operation mix")
		}
		for j, op := range st.Mix {
			opath := fmt.Sprintf("%s.mix[%d]", path, j)
			if !opKinds[op.Op] {
				add(opath+".op", "unknown op %q", op.Op)
				continue
			}
			if op.Weight < 1 {
				add(opath+".weight", "weight must be >= 1, got %d", op.Weight)
			}
			switch op.Op {
			case OpQuery, OpExplain:
				if op.Query == "" {
					add(opath+".query", "%s op needs a query", op.Op)
				}
			case OpPrepared:
				if op.Name == "" {
					add(opath+".name", "prepared op needs a statement name")
				} else if !prepared[op.Name] {
					add(opath+".name", "statement %q is not in the prepare list", op.Name)
				}
			case OpInsert:
				if op.Table == "" || op.Value == "" {
					add(opath, "insert op needs table and value")
				}
			case OpDelete:
				if op.Table == "" || op.Var == "" || op.Predicate == "" {
					add(opath, "delete op needs table, var, and predicate")
				}
			case OpIndexCreate, OpIndexDrop:
				if op.Table == "" || len(op.Attrs) == 0 {
					add(opath, "%s op needs table and attrs", op.Op)
				}
			}
			if op.Options != nil {
				if _, err := op.Options.Engine(); err != nil {
					add(opath+".options", "%v", err)
				}
			}
		}
	}
	return errs
}

// ParseSpec strictly decodes and validates a workload spec. Unknown fields
// are rejected (a typo'd field name must not silently change the workload).
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("workload: parsing spec: %w", err)
	}
	if errs := s.Validate(); len(errs) > 0 {
		return nil, errs
	}
	return &s, nil
}

// Hash returns the spec's identity: the SHA-256 of its canonical JSON
// re-encoding (field order fixed by the struct, independent of the source
// file's formatting). Artifacts carry it so a gate can refuse to compare
// runs of different workloads.
func (s *Spec) Hash() string {
	canon, err := json.Marshal(s)
	if err != nil {
		return "unhashable"
	}
	sum := sha256.Sum256(canon)
	return hex.EncodeToString(sum[:8])
}
