package workload

import (
	"strings"
	"testing"
)

func gateArtifact(hash string, stages ...StageResult) *Artifact {
	return &Artifact{
		Version: ArtifactVersion, Kind: "workload", Name: "mixed",
		SpecHash: hash, Scale: 1,
		Host:   HostInfo{GoVersion: "go1.x", GOMAXPROCS: 4, NumCPU: 4},
		Stages: stages,
	}
}

func gateStage(name string, ops float64, p99 int64) StageResult {
	return StageResult{
		Name: name, Clients: 2, Ops: 100, OpsPerSec: ops,
		Latency: LatencySummary{Count: 100, P50Ns: p99 / 2, P95Ns: p99 - 1, P99Ns: p99, MaxNs: p99 * 2},
	}
}

func TestGateWorkloadOK(t *testing.T) {
	base := gateArtifact("abc", gateStage("warm", 1000, 1_000_000), gateStage("churn", 500, 2_000_000))
	cur := gateArtifact("abc", gateStage("warm", 950, 1_100_000), gateStage("churn", 520, 1_900_000))
	g, err := GateWorkload(base, cur, 0.8, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Status != "ok" || g.Failures != 0 || len(g.Checked) != 2 {
		t.Fatalf("gate = %+v", g)
	}
}

func TestGateWorkloadFailures(t *testing.T) {
	base := gateArtifact("abc", gateStage("warm", 1000, 1_000_000), gateStage("churn", 500, 2_000_000))

	t.Run("throughput below floor", func(t *testing.T) {
		cur := gateArtifact("abc", gateStage("warm", 500, 1_000_000), gateStage("churn", 500, 2_000_000))
		g, _ := GateWorkload(base, cur, 0.8, 1.5)
		if g.Status != "failed" || g.Failures != 1 || g.Checked[0].Status != "failed" {
			t.Fatalf("gate = %+v", g)
		}
	})
	t.Run("p99 above ceiling", func(t *testing.T) {
		cur := gateArtifact("abc", gateStage("warm", 1000, 5_000_000), gateStage("churn", 500, 2_000_000))
		g, _ := GateWorkload(base, cur, 0.8, 1.5)
		if g.Status != "failed" || g.Checked[0].Status != "failed" {
			t.Fatalf("gate = %+v", g)
		}
	})
	t.Run("unexplained errors fail regardless of speed", func(t *testing.T) {
		bad := gateStage("warm", 2000, 500_000)
		bad.Errors = map[string]int64{"internal": 3}
		cur := gateArtifact("abc", bad, gateStage("churn", 500, 2_000_000))
		g, _ := GateWorkload(base, cur, 0.8, 1.5)
		if g.Status != "failed" || g.Checked[0].Errors != 3 {
			t.Fatalf("gate = %+v", g)
		}
	})
	t.Run("missing stage fails", func(t *testing.T) {
		cur := gateArtifact("abc", gateStage("warm", 1000, 1_000_000))
		g, _ := GateWorkload(base, cur, 0.8, 1.5)
		if g.Status != "failed" || len(g.Missing) != 1 || g.Missing[0] != "churn" {
			t.Fatalf("gate = %+v", g)
		}
	})
	t.Run("new stage reported not gated", func(t *testing.T) {
		cur := gateArtifact("abc", gateStage("warm", 1000, 1_000_000),
			gateStage("churn", 500, 2_000_000), gateStage("extra", 1, 1))
		g, _ := GateWorkload(base, cur, 0.8, 1.5)
		if g.Status != "ok" {
			t.Fatalf("new stage should not fail the gate: %+v", g)
		}
		if g.Checked[2].Status != "new" {
			t.Fatalf("extra stage status = %q, want new", g.Checked[2].Status)
		}
	})
}

func TestGateWorkloadRefusesAndSkips(t *testing.T) {
	base := gateArtifact("abc", gateStage("warm", 1000, 1_000_000))

	t.Run("spec hash mismatch refused", func(t *testing.T) {
		cur := gateArtifact("xyz", gateStage("warm", 1000, 1_000_000))
		if _, err := GateWorkload(base, cur, 0.8, 1.5); err == nil {
			t.Fatal("mismatched spec hashes compared")
		} else if !strings.Contains(err.Error(), "different workloads") {
			t.Errorf("error does not explain the refusal: %v", err)
		}
	})
	skips := []struct {
		name   string
		mutate func(b, c *Artifact)
		why    string
	}{
		{"baseline warning", func(b, c *Artifact) { b.Warning = "single CPU" }, "baseline artifact warning"},
		{"current warning", func(b, c *Artifact) { c.Warning = "single CPU" }, "current artifact warning"},
		{"gomaxprocs mismatch", func(b, c *Artifact) { c.Host.GOMAXPROCS = 1 }, "host mismatch"},
		{"scale mismatch", func(b, c *Artifact) { c.Scale = 0.1 }, "scale mismatch"},
	}
	for _, tc := range skips {
		t.Run(tc.name, func(t *testing.T) {
			b := gateArtifact("abc", gateStage("warm", 1000, 1_000_000))
			c := gateArtifact("abc", gateStage("warm", 10, 99_000_000)) // terrible numbers: must still skip
			tc.mutate(b, c)
			g, err := GateWorkload(b, c, 0.8, 1.5)
			if err != nil {
				t.Fatal(err)
			}
			if g.Status != "skipped" {
				t.Fatalf("status = %q, want skipped", g.Status)
			}
			if !strings.Contains(g.Reason, tc.why) {
				t.Errorf("reason %q does not name the cause %q", g.Reason, tc.why)
			}
			if !strings.Contains(g.Reason, "go run ./cmd/tmbench") {
				t.Errorf("reason %q lost the regeneration recipe", g.Reason)
			}
		})
	}
}
