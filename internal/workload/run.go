package workload

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"math/rand/v2"

	"tmdb/internal/datagen"
	"tmdb/internal/engine"
	"tmdb/internal/server"
)

// OpenEngine builds the engine a spec's data section describes. Base sizes
// per schema are fixed; Data.Scale multiplies the row counts and Data.Skew
// passes through to the xyz generator. The spec's Seed seeds the data too,
// so a fixed seed reproduces the dataset exactly.
func OpenEngine(s *Spec) (*engine.Engine, error) {
	scale := s.Data.Scale
	if scale <= 0 {
		scale = 1
	}
	n := func(base int) int {
		v := int(float64(base) * scale)
		if v < 1 {
			v = 1
		}
		return v
	}
	seed := int64(s.Seed)
	switch s.Data.Schema {
	case "xyz":
		cat, db := datagen.XYZ(datagen.Spec{
			NX: n(120), NY: n(360), NZ: n(240), Keys: n(24),
			DanglingFrac: 0.25, SetAttrCard: 3, SkewFrac: s.Data.Skew, Seed: seed,
		})
		return engine.New(cat, db), nil
	case "company":
		cat, db := datagen.Company(n(20), n(160), seed)
		return engine.New(cat, db), nil
	case "table1":
		cat, db := datagen.Table1()
		return engine.New(cat, db), nil
	case "rs":
		cat, db := datagen.RS(n(40), n(100), n(8), 0.3, seed)
		return engine.New(cat, db), nil
	}
	return nil, fmt.Errorf("workload: unknown data schema %q", s.Data.Schema)
}

// ServerConfig maps the spec's server section onto a server.Config.
func (s *Spec) ServerConfig() server.Config {
	return server.Config{
		MaxConcurrency: s.Server.MaxConcurrency,
		QueueTimeout:   time.Duration(s.Server.QueueTimeoutMs) * time.Millisecond,
	}
}

// Runner drives one spec against a server and produces the artifact's stage
// results. Base addresses the server's HTTP API (e.g. an httptest.Server URL
// for in-process runs, or a remote tmserver).
type Runner struct {
	Base string
	Spec *Spec
	// Scale multiplies every stage's duration and ops budget (CI smoke runs
	// use a small fraction). 0 means 1.0.
	Scale float64
	// Logf, when set, receives one progress line per stage.
	Logf func(format string, args ...any)
}

// stageBudget resolves a stage's scaled stop conditions.
func (r *Runner) stageBudget(st *StageSpec) (time.Duration, int64) {
	scale := r.Scale
	if scale <= 0 {
		scale = 1
	}
	var d time.Duration
	if st.DurationMs > 0 {
		d = time.Duration(float64(st.DurationMs)*scale) * time.Millisecond
		if d < time.Millisecond {
			d = time.Millisecond
		}
	}
	var ops int64
	if st.Ops > 0 {
		ops = int64(float64(st.Ops) * scale)
		if ops < 1 {
			ops = 1
		}
	}
	return d, ops
}

// Run executes every stage in order and returns their results. The error is
// non-nil only for harness-level failures (unreachable server, broken
// prepare); operation-level errors are recorded in the stage's taxonomy.
func (r *Runner) Run() ([]StageResult, error) {
	probe := server.NewClient(r.Base, nil)
	if err := probe.Health(); err != nil {
		return nil, fmt.Errorf("workload: server not healthy: %w", err)
	}
	results := make([]StageResult, 0, len(r.Spec.Stages))
	for i := range r.Spec.Stages {
		res, err := r.runStage(i, probe)
		if err != nil {
			return results, err
		}
		if r.Logf != nil {
			r.Logf("stage %-12s %6d ops %8.1f op/s  %s  errors=%d",
				res.Name, res.Ops, res.OpsPerSec, res.Latency, res.errorCount())
		}
		results = append(results, res)
	}
	return results, nil
}

// clientState is one driver goroutine's working set.
type clientState struct {
	c    *server.Client
	rng  *rand.Rand
	hist Hist
	// errs / allowed count failures by taxonomy code.
	errs    map[string]int64
	allowed map[string]int64
	ops     int64
}

func (r *Runner) runStage(idx int, probe *server.Client) (StageResult, error) {
	st := &r.Spec.Stages[idx]
	duration, opsBudget := r.stageBudget(st)
	before, err := probe.Stats()
	if err != nil {
		return StageResult{}, fmt.Errorf("workload: stage %s: pre-stats: %w", st.Name, err)
	}

	// Weighted pick table: cumulative weights over the mix.
	cum := make([]int, len(st.Mix))
	total := 0
	for i, op := range st.Mix {
		total += op.Weight
		cum[i] = total
	}

	var (
		opsDone  atomic.Int64 // shared ops budget
		seq      atomic.Int64 // $SEQ source, unique per call within the stage
		deadline time.Time
	)
	start := time.Now()
	if duration > 0 {
		deadline = start.Add(duration)
	}

	clients := make([]*clientState, st.Clients)
	var wg sync.WaitGroup
	errCh := make(chan error, st.Clients)
	for ci := 0; ci < st.Clients; ci++ {
		cs := &clientState{
			c:       server.NewClient(r.Base, nil),
			rng:     rand.New(rand.NewPCG(r.Spec.Seed, uint64(idx)<<32|uint64(ci))),
			errs:    map[string]int64{},
			allowed: map[string]int64{},
		}
		clients[ci] = cs
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := r.driveClient(cs, st, cum, total, &opsDone, opsBudget, &seq, deadline); err != nil {
				errCh <- err
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(errCh)
	if err := <-errCh; err != nil {
		return StageResult{}, fmt.Errorf("workload: stage %s: %w", st.Name, err)
	}

	after, err := probe.Stats()
	if err != nil {
		return StageResult{}, fmt.Errorf("workload: stage %s: post-stats: %w", st.Name, err)
	}

	res := StageResult{
		Name:       st.Name,
		Clients:    st.Clients,
		DurationNs: elapsed.Nanoseconds(),
		Errors:     map[string]int64{},
		Allowed:    map[string]int64{},
		Stats:      statsDelta(before, after),
	}
	var merged Hist
	for _, cs := range clients {
		merged.Merge(&cs.hist)
		res.Ops += cs.ops
		for code, n := range cs.errs {
			res.Errors[code] += n
		}
		for code, n := range cs.allowed {
			res.Allowed[code] += n
		}
	}
	res.Latency = merged.Summary()
	if secs := elapsed.Seconds(); secs > 0 {
		res.OpsPerSec = float64(res.Ops) / secs
	}
	return res, nil
}

// driveClient is one goroutine's stage loop: open a session, register the
// prepared statements, then draw weighted ops until a stop condition.
// Harness-level failures (session or prepare breakage) abort; per-op errors
// are recorded and the loop continues.
func (r *Runner) driveClient(cs *clientState, st *StageSpec, cum []int, total int,
	opsDone *atomic.Int64, opsBudget int64, seq *atomic.Int64, deadline time.Time) error {
	if _, err := cs.c.NewSession(server.WireOptions{}); err != nil {
		return fmt.Errorf("session: %w", err)
	}
	defer cs.c.CloseSession()
	for _, p := range r.Spec.Prepare {
		if _, err := cs.c.Prepare(p.Name, p.Query); err != nil {
			return fmt.Errorf("prepare %s: %w", p.Name, err)
		}
	}
	for {
		if opsBudget > 0 && opsDone.Add(1) > opsBudget {
			return nil
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil
		}
		op := &st.Mix[pickWeighted(cs.rng, cum, total)]
		t0 := time.Now()
		err := r.execOp(cs.c, op, seq)
		cs.hist.Record(time.Since(t0).Nanoseconds())
		cs.ops++
		if err != nil {
			code := errCode(err)
			if allowedCode(op, code) {
				cs.allowed[code]++
			} else {
				cs.errs[code]++
			}
		}
	}
}

// pickWeighted draws an index from the cumulative weight table.
func pickWeighted(rng *rand.Rand, cum []int, total int) int {
	n := rng.IntN(total)
	for i, c := range cum {
		if n < c {
			return i
		}
	}
	return len(cum) - 1
}

// execOp performs one operation against the server.
func (r *Runner) execOp(c *server.Client, op *OpSpec, seq *atomic.Int64) error {
	switch op.Op {
	case OpQuery:
		_, err := c.Query(op.Query, op.Options)
		return err
	case OpPrepared:
		_, err := c.Execute(op.Name, op.Options)
		return err
	case OpExplain:
		_, err := c.Explain(op.Query, "", op.Options)
		return err
	case OpInsert:
		_, err := c.Insert(op.Table, subSeq(op.Value, seq))
		return err
	case OpDelete:
		_, err := c.Delete(op.Table, op.Var, subSeq(op.Predicate, seq))
		return err
	case OpIndexCreate:
		return c.CreateIndex(op.Table, op.Attrs...)
	case OpIndexDrop:
		return c.DropIndex(op.Table, op.Attrs...)
	case OpStats:
		_, err := c.Stats()
		return err
	}
	return fmt.Errorf("unknown op %q", op.Op)
}

// subSeq substitutes the $SEQ token with a stage-unique increasing integer.
// The counter only advances when the template uses it.
func subSeq(template string, seq *atomic.Int64) string {
	if !strings.Contains(template, "$SEQ") {
		return template
	}
	return strings.ReplaceAll(template, "$SEQ", strconv.FormatInt(seq.Add(1), 10))
}

// errCode maps an operation error onto the taxonomy bucket recorded in the
// artifact: the server's structured code when there is one, "transport"
// for network-level failures.
func errCode(err error) string {
	var se *server.ServerError
	if errors.As(err, &se) {
		return se.Code
	}
	return "transport"
}

// allowedCode reports whether the op's spec explains this error code.
func allowedCode(op *OpSpec, code string) bool {
	for _, a := range op.AllowErrors {
		if a == code {
			return true
		}
	}
	return false
}

// HostInfo captures the machine identity stamped into artifacts.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
}

// Host returns the current process's host info.
func Host() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}
}
