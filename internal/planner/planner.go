// Package planner compiles logical algebra plans into physical exec
// iterators. Its central decision mirrors §6 "Implementation": join-family
// operators get hash implementations whenever an equi-key can be extracted
// from the predicate (with the right operand as build side — mandatory for
// the nest join), falling back to nested loops for arbitrary predicates. The
// nest join may alternatively be compiled to sort-merge for ablation
// experiments.
package planner

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/exec"
	"tmdb/internal/tmql"
)

// JoinImpl selects the physical family used for joins with extractable
// equi-keys.
type JoinImpl uint8

// Physical join implementation choices.
const (
	ImplAuto JoinImpl = iota // hash when keys exist, else nested loop
	ImplNestedLoop
	ImplHash
	ImplMerge // nest join only; others fall back to hash
	// ImplIndex probes a table's persistent hash index (see
	// storage.Table.CreateIndex) instead of building a per-query hash table:
	// join-family operators whose right operand is a direct scan of an
	// indexed equi-key attribute compile to IndexJoin/IndexNestJoin, skipping
	// the build pass entirely; operators without a usable index fall back to
	// the auto mapping (hash when an equi-key exists, else nested loops).
	ImplIndex
)

// String names the implementation choice.
func (ji JoinImpl) String() string {
	switch ji {
	case ImplAuto:
		return "auto"
	case ImplNestedLoop:
		return "nested-loop"
	case ImplHash:
		return "hash"
	case ImplMerge:
		return "sort-merge"
	case ImplIndex:
		return "idxjoin"
	}
	return "impl?"
}

// Options configure physical planning.
type Options struct {
	// Joins picks the implementation family for all join-like operators.
	Joins JoinImpl
	// Parallelism is the scheduler-degree hint for the hash join family:
	// values >= 2 compile hash joins and hash nest joins to their
	// partitioned forms (ParHashJoin, ParHashNestJoin), which exchange both
	// inputs by key hash across that many partitions and run build/probe
	// morsels on the query's morsel scheduler (exec.Scheduler) — one
	// runtime at every degree, not a separate parallel operator family. 0
	// and 1 mean serial streaming execution. Results are byte-identical at
	// any degree and any steal schedule — final results are canonical sets
	// — so the knob only trades latency.
	Parallelism int
	// Access picks the access path for leaf selections: AccessIndex compiles
	// selections whose equality conjuncts cover a live index prefix to
	// exec.IndexScan (per-selection fallback to scans elsewhere); AccessAuto
	// and AccessScan compile full scans — under the cost-based engine path
	// the chooser resolves AccessAuto before compilation.
	Access AccessPath
	// BatchSize is the rows-per-batch capacity CompileBatch builds vectorized
	// operators with (0 = exec.DefaultBatchSize; capped at
	// exec.MaxBatchSize). Compile ignores it — row-at-a-time plans are
	// unchanged.
	BatchSize int
}

// parallel reports whether planning targets the partitioned operators.
func (o Options) parallel() bool { return o.Parallelism >= 2 }

// Planner compiles logical plans to iterators over a context.
type Planner struct {
	ctx  *exec.Ctx
	opts Options
}

// New returns a planner executing against ctx.
func New(ctx *exec.Ctx, opts Options) *Planner {
	return &Planner{ctx: ctx, opts: opts}
}

// Compile turns a logical plan into a physical iterator tree.
func (p *Planner) Compile(plan algebra.Plan) (exec.Iterator, error) {
	switch n := plan.(type) {
	case *algebra.Scan:
		return &exec.TableScan{Ctx: p.ctx, Table: n.Table}, nil

	case *algebra.EvalNode:
		return &exec.EvalScan{Ctx: p.ctx, Expr: n.Expr}, nil

	case *algebra.Select:
		if p.opts.Access == AccessIndex {
			if m, ok := FindIndexScan(n, p.liveIndexes); ok {
				if ix, live := p.resolveIndex(m.Table, m.Name()); live {
					return p.compileIndexScan(n, m, ix)
				}
			}
			// No usable index on this selection (or it vanished before the
			// resolve): scan fallback below.
		}
		in, err := p.Compile(n.In)
		if err != nil {
			return nil, err
		}
		return &exec.Filter{Ctx: p.ctx, In: in, Var: n.Var, Pred: n.Pred}, nil

	case *algebra.Map:
		in, err := p.Compile(n.In)
		if err != nil {
			return nil, err
		}
		// Map may collapse distinct inputs onto one value; a Distinct keeps
		// set semantics downstream.
		return &exec.Distinct{Ctx: p.ctx, In: &exec.MapIter{Ctx: p.ctx, In: in, Var: n.Var, Out: n.Out}}, nil

	case *algebra.Join:
		return p.compileJoin(n)

	case *algebra.NestJoin:
		return p.compileNestJoin(n)

	case *algebra.Nest:
		in, err := p.Compile(n.In)
		if err != nil {
			return nil, err
		}
		return &exec.NestIter{Ctx: p.ctx, In: in, Attrs: n.Attrs, Label: n.Label, NullAware: n.NullAware}, nil

	case *algebra.Unnest:
		in, err := p.Compile(n.In)
		if err != nil {
			return nil, err
		}
		return &exec.UnnestIter{Ctx: p.ctx, In: in, Attr: n.Attr, Scalar: n.Scalar()}, nil

	case *algebra.SetOp:
		l, err := p.Compile(n.L)
		if err != nil {
			return nil, err
		}
		r, err := p.Compile(n.R)
		if err != nil {
			return nil, err
		}
		return &exec.SetOpIter{Ctx: p.ctx, Kind: int(n.Kind), L: l, R: r}, nil
	}
	return nil, fmt.Errorf("planner: unhandled plan node %T", plan)
}

func (p *Planner) compileJoin(n *algebra.Join) (exec.Iterator, error) {
	l, err := p.Compile(n.L)
	if err != nil {
		return nil, err
	}
	lk, rk, residual := ExtractEquiKeys(n.Pred, n.LVar, n.RVar)
	if p.opts.Joins == ImplIndex {
		if pr, ok := FindIndexProbe(n.R, n.RVar, rk, p.liveIndexes); ok {
			if ix, live := p.resolveIndex(pr.Table, pr.Name()); live {
				return &exec.IndexJoin{
					Ctx: p.ctx, Kind: n.Kind, L: l,
					Table: pr.Table, Index: pr.Name(), Ix: ix,
					LVar: n.LVar, RVar: n.RVar,
					LKeys:    probeLKeys(lk, pr),
					Residual: indexResidual(lk, rk, pr, residual),
					RElem:    n.R.Elem(),
				}, nil
			}
		}
		// No usable index on this operator: auto fallback below.
	}
	r, err := p.Compile(n.R)
	if err != nil {
		return nil, err
	}
	useHash := len(lk) > 0
	switch p.opts.Joins {
	case ImplNestedLoop:
		useHash = false
	case ImplHash, ImplMerge:
		if len(lk) == 0 {
			return nil, fmt.Errorf("planner: hash join requested but no equi-key in %s", tmql.Format(n.Pred))
		}
		useHash = true
	}
	if !useHash {
		return &exec.NLJoin{
			Ctx: p.ctx, Kind: n.Kind, L: l, R: r,
			LVar: n.LVar, RVar: n.RVar, Pred: n.Pred, RElem: n.R.Elem(),
		}, nil
	}
	if p.opts.parallel() {
		return &exec.ParHashJoin{
			Ctx: p.ctx, Kind: n.Kind, L: l, R: r,
			LVar: n.LVar, RVar: n.RVar,
			LKeys: lk, RKeys: rk, Residual: residual, RElem: n.R.Elem(),
			Degree: p.opts.Parallelism,
		}, nil
	}
	return &exec.HashJoin{
		Ctx: p.ctx, Kind: n.Kind, L: l, R: r,
		LVar: n.LVar, RVar: n.RVar,
		LKeys: lk, RKeys: rk, Residual: residual, RElem: n.R.Elem(),
	}, nil
}

func (p *Planner) compileNestJoin(n *algebra.NestJoin) (exec.Iterator, error) {
	l, err := p.Compile(n.L)
	if err != nil {
		return nil, err
	}
	lk, rk, residual := ExtractEquiKeys(n.Pred, n.LVar, n.RVar)
	impl := p.opts.Joins
	if impl == ImplIndex {
		if pr, ok := FindIndexProbe(n.R, n.RVar, rk, p.liveIndexes); ok {
			if ix, live := p.resolveIndex(pr.Table, pr.Name()); live {
				return &exec.IndexNestJoin{
					Ctx: p.ctx, L: l,
					Table: pr.Table, Index: pr.Name(), Ix: ix,
					LVar: n.LVar, RVar: n.RVar,
					LKeys:    probeLKeys(lk, pr),
					Residual: indexResidual(lk, rk, pr, residual),
					Fn:       n.Fn, Label: n.Label,
				}, nil
			}
		}
		impl = ImplAuto // no usable index on this operator
	}
	r, err := p.Compile(n.R)
	if err != nil {
		return nil, err
	}
	if impl == ImplAuto {
		if len(lk) > 0 {
			impl = ImplHash
		} else {
			impl = ImplNestedLoop
		}
	}
	if impl != ImplNestedLoop && len(lk) == 0 {
		return nil, fmt.Errorf("planner: %s nest join requested but no equi-key in %s",
			impl, tmql.Format(n.Pred))
	}
	switch impl {
	case ImplNestedLoop:
		return &exec.NLNestJoin{
			Ctx: p.ctx, L: l, R: r, LVar: n.LVar, RVar: n.RVar,
			Pred: n.Pred, Fn: n.Fn, Label: n.Label,
		}, nil
	case ImplMerge:
		return &exec.MergeNestJoin{
			Ctx: p.ctx, L: l, R: r, LVar: n.LVar, RVar: n.RVar,
			LKeys: lk, RKeys: rk, Residual: residual, Fn: n.Fn, Label: n.Label,
		}, nil
	default:
		if p.opts.parallel() {
			return &exec.ParHashNestJoin{
				Ctx: p.ctx, L: l, R: r, LVar: n.LVar, RVar: n.RVar,
				LKeys: lk, RKeys: rk, Residual: residual, Fn: n.Fn, Label: n.Label,
				Degree: p.opts.Parallelism,
			}, nil
		}
		return &exec.HashNestJoin{
			Ctx: p.ctx, L: l, R: r, LVar: n.LVar, RVar: n.RVar,
			LKeys: lk, RKeys: rk, Residual: residual, Fn: n.Fn, Label: n.Label,
		}, nil
	}
}

// ExtractEquiKeys splits a join predicate over (lvar, rvar) into equi-key
// pairs and a residual: every top-level conjunct of the form e1 = e2 with
// FreeVars(e1) ⊆ {lvar} and FreeVars(e2) ⊆ {rvar} (either orientation)
// becomes a key pair; the conjunction of everything else is the residual
// (nil when empty). Constant conjuncts stay in the residual.
func ExtractEquiKeys(pred tmql.Expr, lvar, rvar string) (lkeys, rkeys []tmql.Expr, residual tmql.Expr) {
	conjuncts := SplitConjuncts(pred)
	var rest []tmql.Expr
	for _, c := range conjuncts {
		if eq, ok := c.(*tmql.Binary); ok && eq.Op == tmql.OpEq {
			lf, rf := tmql.FreeVars(eq.L), tmql.FreeVars(eq.R)
			switch {
			case onlyVar(lf, lvar) && onlyVar(rf, rvar) && lf[lvar] && rf[rvar]:
				lkeys = append(lkeys, eq.L)
				rkeys = append(rkeys, eq.R)
				continue
			case onlyVar(lf, rvar) && onlyVar(rf, lvar) && lf[rvar] && rf[lvar]:
				lkeys = append(lkeys, eq.R)
				rkeys = append(rkeys, eq.L)
				continue
			}
		}
		rest = append(rest, c)
	}
	return lkeys, rkeys, JoinConjuncts(rest)
}

// onlyVar reports whether the free-variable set contains nothing but
// (possibly) v.
func onlyVar(free map[string]bool, v string) bool {
	for name := range free {
		if name != v {
			return false
		}
	}
	return true
}

// SplitConjuncts flattens a right- or left-nested AND tree into its
// conjuncts; a nil predicate yields nil. (Delegates to the shared tmql
// helper; kept for the planner's public surface.)
func SplitConjuncts(pred tmql.Expr) []tmql.Expr {
	return tmql.SplitAnd(pred)
}

// JoinConjuncts rebuilds a conjunction from parts (nil for none).
func JoinConjuncts(parts []tmql.Expr) tmql.Expr {
	return tmql.JoinAnd(parts)
}
