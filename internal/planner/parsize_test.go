package planner

import "testing"

// TestPartitionDegree pins the statistics-driven sizing function: ~1k rows
// per partition, floor 2, ceiling maxDegree, pass-through below 2.
func TestPartitionDegree(t *testing.T) {
	for _, tc := range []struct {
		rows float64
		max  int
		want int
	}{
		{0, 8, 2},          // no estimate: minimal parallel degree
		{100, 8, 2},        // tiny input: never below 2
		{1024, 8, 2},       // exactly one target share still partitions in two
		{3000, 8, 3},       // ceil(3000/1024)
		{10000, 8, 8},      // capped at the machine width
		{1 << 20, 16, 16},  // large inputs open the full bound
		{5000, 2, 2},       // cap below the computed degree
		{1 << 20, 1, 1},    // a 1-wide bound cannot partition
		{1 << 20, 0, 0},    // degenerate bounds pass through
		{2049, 4, 3},       // rounding is upward
	} {
		if got := PartitionDegree(tc.rows, tc.max); got != tc.want {
			t.Errorf("PartitionDegree(%v, %d) = %d, want %d", tc.rows, tc.max, got, tc.want)
		}
	}
}
