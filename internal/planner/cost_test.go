package planner

import (
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
)

func costEnv(t *testing.T) (*Estimator, *algebra.Builder) {
	t.Helper()
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 100, NY: 400, NZ: 200, Keys: 20, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 4,
	})
	return NewEstimator(db), algebra.NewBuilder(cat)
}

func TestScanCardinalityFromStats(t *testing.T) {
	est, b := costEnv(t)
	x, _ := b.Scan("X")
	c := est.Estimate(x)
	// Seal dedup may remove a few duplicates; the estimate is the exact
	// stored cardinality.
	if c.Rows <= 0 || c.Rows > 100 {
		t.Errorf("Scan(X) rows = %v", c.Rows)
	}
	if c.Work != c.Rows {
		t.Errorf("scan work should equal rows: %v", c)
	}
}

func TestSelectionReducesRows(t *testing.T) {
	est, b := costEnv(t)
	x, _ := b.Scan("X")
	sel, _ := b.Select(x, "x", tmql.MustParse("x.b = 3"))
	cx, cs := est.Estimate(x), est.Estimate(sel)
	if cs.Rows >= cx.Rows {
		t.Errorf("selection did not reduce rows: %v -> %v", cx.Rows, cs.Rows)
	}
	if cs.Work <= cx.Work {
		t.Error("selection work should exceed input work")
	}
}

func TestHashCheaperThanNLEstimate(t *testing.T) {
	est, b := costEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	equi, _ := b.Join(algebra.JoinInner, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	theta, _ := b.Join(algebra.JoinInner, x, z, "x", "z", tmql.MustParse("x.b < z.d"))
	ce, ct := est.Estimate(equi), est.Estimate(theta)
	if ce.Work >= ct.Work {
		t.Errorf("equi-join should cost less than theta join: %v vs %v", ce, ct)
	}
}

func TestNestJoinRowsEqualLeft(t *testing.T) {
	est, b := costEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	nj, _ := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d"), nil, "s")
	cx, cn := est.Estimate(x), est.Estimate(nj)
	if cn.Rows != cx.Rows {
		t.Errorf("nest join preserves left cardinality: %v vs %v", cn.Rows, cx.Rows)
	}
}

func TestSemijoinCheaperThanNestJoinEstimate(t *testing.T) {
	est, b := costEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	semi, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	nj, _ := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d"), nil, "s")
	cs, cn := est.Estimate(semi), est.Estimate(nj)
	if cs.Work > cn.Work {
		t.Errorf("semijoin estimate should not exceed nest join: %v vs %v", cs, cn)
	}
}

func TestEstimateCoversAllOperators(t *testing.T) {
	est, b := costEnv(t)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	m, _ := b.Map(x, "x", tmql.MustParse("(b = x.b)"))
	n, _ := b.Nest(y, []string{"a"}, "g", false)
	u, _ := b.Unnest(x, "a")
	so, _ := b.SetOp(algebra.SetUnion, x, x)
	ev, _ := b.EvalSet(tmql.MustParse("{1}"))
	z, _ := b.Scan("Z")
	oj, err := b.Join(algebra.JoinLeftOuter, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []algebra.Plan{m, n, u, so, ev, oj} {
		c := est.Estimate(p)
		if c.Rows <= 0 || c.Work <= 0 {
			t.Errorf("%s: degenerate estimate %v", p.Describe(), c)
		}
	}
}

func TestAndOrSelectivity(t *testing.T) {
	est, b := costEnv(t)
	x, _ := b.Scan("X")
	a, _ := b.Select(x, "x", tmql.MustParse("x.b > 1"))
	and, _ := b.Select(x, "x", tmql.MustParse("x.b > 1 AND x.b < 5"))
	or, _ := b.Select(x, "x", tmql.MustParse("x.b > 1 OR x.b < 5"))
	ca, cAnd, cOr := est.Estimate(a), est.Estimate(and), est.Estimate(or)
	if !(cAnd.Rows < ca.Rows && ca.Rows < cOr.Rows) {
		t.Errorf("selectivity ordering broken: and=%v single=%v or=%v",
			cAnd.Rows, ca.Rows, cOr.Rows)
	}
}

func TestExplainCosts(t *testing.T) {
	est, b := costEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	nj, _ := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d"), nil, "s")
	out := est.ExplainCosts(nj)
	if !strings.Contains(out, "rows≈") || !strings.Contains(out, "NestJoin") {
		t.Errorf("ExplainCosts output:\n%s", out)
	}
	if !strings.Contains(out, "  Scan(X)") {
		t.Errorf("children not indented:\n%s", out)
	}
}

func TestEstimatorUnknownTable(t *testing.T) {
	est := NewEstimator(storage.NewDB())
	c := est.tableStats("GHOST")
	if c.Card != 0 {
		t.Error("unknown table should have zero card")
	}
}
