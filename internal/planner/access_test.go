package planner

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/exec"
	"tmdb/internal/schema"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// accessEnv builds the XYZ workload with a single-attribute index on X.b and
// a composite index on Y(b,d).
func accessEnv(t *testing.T) (*Estimator, *algebra.Builder, *storage.DB, *schema.Catalog) {
	t.Helper()
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 120, NY: 400, NZ: 200, Keys: 20, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 9,
	})
	if err := db.CreateIndex("X", "b"); err != nil {
		t.Fatal(err)
	}
	if err := db.CreateIndex("Y", "b", "d"); err != nil {
		t.Fatal(err)
	}
	return NewEstimator(db), algebra.NewBuilder(cat), db, cat
}

// TestFindIndexScanShapes pins the σ-shape matcher: direct scans, chains of
// selections, wrapper Maps, constant-side orientation, and the longest-prefix
// preference.
func TestFindIndexScanShapes(t *testing.T) {
	est, b, _, _ := accessEnv(t)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")

	// Direct σ-over-scan, literal on the right.
	s1, _ := b.Select(x, "x", tmql.MustParse("x.b = 3"))
	m, ok := FindIndexScan(s1, est.statsIndexes)
	if !ok || m.Table != "X" || m.Name() != "b" || m.Depth != 1 || m.Residual != nil {
		t.Fatalf("direct match = %+v, %v", m, ok)
	}
	// Literal on the left.
	s2, _ := b.Select(x, "x", tmql.MustParse("3 = x.b"))
	if _, ok := FindIndexScan(s2, est.statsIndexes); !ok {
		t.Error("flipped orientation not matched")
	}
	// Unindexed attribute: no match.
	s3, _ := b.Select(y, "y", tmql.MustParse("y.a = 1"))
	if _, ok := FindIndexScan(s3, est.statsIndexes); ok {
		t.Error("unindexed attribute matched")
	}
	// Composite coverage: both conjuncts disappear, no residual.
	s4, _ := b.Select(y, "y", tmql.MustParse("y.d = 2 AND y.b = 3"))
	m4, ok := FindIndexScan(s4, est.statsIndexes)
	if !ok || m4.Name() != "b,d" || m4.Depth != 2 || m4.Residual != nil {
		t.Fatalf("composite match = %+v, %v", m4, ok)
	}
	// Prefix coverage with residual: only the leading attribute is equal-to-
	// constant; the rest of the predicate survives.
	s5, _ := b.Select(y, "y", tmql.MustParse("y.b = 3 AND y.a > 0"))
	m5, ok := FindIndexScan(s5, est.statsIndexes)
	if !ok || m5.Depth != 1 || m5.Residual == nil {
		t.Fatalf("prefix match = %+v, %v", m5, ok)
	}
	// Non-leading attribute alone cannot use the composite index.
	s6, _ := b.Select(y, "y", tmql.MustParse("y.d = 2"))
	if _, ok := FindIndexScan(s6, est.statsIndexes); ok {
		t.Error("non-leading composite attribute matched")
	}
	// Non-constant comparison: no match.
	s7, _ := b.Select(x, "x", tmql.MustParse("x.b = x.b"))
	if _, ok := FindIndexScan(s7, est.statsIndexes); ok {
		t.Error("variable-vs-variable equality matched")
	}
	// Chain: σ over σ over scan still matches, the inner selection is kept.
	inner, _ := b.Select(x, "x", tmql.MustParse("x.b > -100"))
	s8, _ := b.Select(inner, "x", tmql.MustParse("x.b = 3"))
	m8, ok := FindIndexScan(s8, est.statsIndexes)
	if !ok || m8.Table != "X" {
		t.Fatalf("chained match = %+v, %v", m8, ok)
	}
	// Wrapper Map: σ[v.w.b = 3](Map[(w = x)](X)) — the flat-join shape.
	wrapped, err := b.Map(x, "x", tmql.MustParse("(w = x)"))
	if err != nil {
		t.Fatal(err)
	}
	s9, err := b.Select(wrapped, "v", tmql.MustParse("v.w.b = 3"))
	if err != nil {
		t.Fatal(err)
	}
	m9, ok := FindIndexScan(s9, est.statsIndexes)
	if !ok || m9.Table != "X" || m9.Depth != 1 {
		t.Fatalf("wrapper match = %+v, %v", m9, ok)
	}
	// A join input is not an access chain.
	z, _ := b.Scan("Z")
	j, err := b.Join(algebra.JoinInner, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	if err != nil {
		t.Fatal(err)
	}
	s10, err := b.Select(j, "v", tmql.MustParse("v.b = 3"))
	if err == nil {
		if _, ok := FindIndexScan(s10, est.statsIndexes); ok {
			t.Error("join input treated as an access chain")
		}
	}
	if !est.HasIndexScan(s1) || est.HasIndexScan(s3) {
		t.Error("HasIndexScan disagrees with FindIndexScan")
	}
}

// TestFindIndexScanMultiPoint pins the multi-point matcher: OR/IN-list
// equality disjuncts over one indexed attribute become one index scan with
// several points, constants deduplicate, mixed attributes and non-literal
// disjuncts stay unmatched, and the point cap stops prefix coverage.
func TestFindIndexScanMultiPoint(t *testing.T) {
	est, b, _, _ := accessEnv(t)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")

	// OR of equalities over one attribute: three points, no residual.
	s1, _ := b.Select(x, "x", tmql.MustParse("x.b = 1 OR x.b = 2 OR 3 = x.b"))
	m, ok := FindIndexScan(s1, est.statsIndexes)
	if !ok || m.Depth != 1 || len(m.Points) != 3 || m.Residual != nil {
		t.Fatalf("or-list match = %+v, %v", m, ok)
	}
	// IN-list: same shape through the membership operator, duplicates fold.
	s2, _ := b.Select(x, "x", tmql.MustParse("x.b IN {1, 2, 2, 3}"))
	m2, ok := FindIndexScan(s2, est.statsIndexes)
	if !ok || len(m2.Points) != 3 {
		t.Fatalf("in-list match = %+v, %v", m2, ok)
	}
	// Composite coverage multiplies out: 2 × 2 points over Y(b,d).
	s3, _ := b.Select(y, "y", tmql.MustParse("y.b IN {1, 2} AND (y.d = 3 OR y.d = 4)"))
	m3, ok := FindIndexScan(s3, est.statsIndexes)
	if !ok || m3.Depth != 2 || len(m3.Points) != 4 || m3.Residual != nil {
		t.Fatalf("composite multi-point match = %+v, %v", m3, ok)
	}
	// Disjuncts over different attributes cannot become points.
	s4, err := b.Select(y, "y", tmql.MustParse("y.b = 1 OR y.a = 2"))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := FindIndexScan(s4, est.statsIndexes); ok {
		t.Error("mixed-attribute OR matched")
	}
	// Closed non-literal constants are evaluated at plan time: 1 + 1 is a
	// point like any literal, and plan-time values — not expression shapes —
	// drive the dedup that keeps the expanded points disjoint.
	s5, _ := b.Select(x, "x", tmql.MustParse("x.b = 1 OR x.b = 1 + 1"))
	m5, ok := FindIndexScan(s5, est.statsIndexes)
	if !ok || m5.Depth != 1 || len(m5.Points) != 2 {
		t.Fatalf("closed-constant OR match = %+v, %v", m5, ok)
	}
	s5b, _ := b.Select(x, "x", tmql.MustParse("x.b IN {2, 1 + 1, 3}"))
	m5b, ok := FindIndexScan(s5b, est.statsIndexes)
	if !ok || len(m5b.Points) != 2 {
		t.Fatalf("value-level dedup of closed constants = %+v, %v", m5b, ok)
	}
	// Open disjunct constants (free variables) still poison the list.
	s5c, err := b.Select(x, "x", tmql.MustParse("x.b = 1 OR x.b = x.a + 1"))
	if err == nil {
		if _, ok := FindIndexScan(s5c, est.statsIndexes); ok {
			t.Error("open OR constant matched")
		}
	}
	// Beyond the cap the attribute stays uncovered.
	elems := make([]string, maxIndexScanPoints+1)
	for i := range elems {
		elems[i] = strconv.Itoa(i)
	}
	s6, _ := b.Select(x, "x", tmql.MustParse("x.b IN {"+strings.Join(elems, ", ")+"}"))
	if _, ok := FindIndexScan(s6, est.statsIndexes); ok {
		t.Errorf("IN-list beyond the %d-point cap matched", maxIndexScanPoints)
	}
	// Multi-point scans cost one probe per point, cardinality unchanged.
	one := est.EstimateAccess(s2, ImplAuto, 1, AccessIndex)
	single, _ := b.Select(x, "x", tmql.MustParse("x.b = 1"))
	base := est.EstimateAccess(single, ImplAuto, 1, AccessIndex)
	if one.Work != 3*base.Work {
		t.Errorf("3-point probe work %v, want 3× single-point %v", one.Work, base.Work)
	}
	// EXPLAIN names the points.
	if out := est.ExplainAccess(s2, ImplAuto, 1, AccessIndex); !strings.Contains(out, "points=3") {
		t.Errorf("multi-point scan not rendered:\n%s", out)
	}
}

// TestCompileIndexScanMultiPointExecutes is the multi-point golden: every
// OR/IN shape compiled through the idxscan path answers byte-identically to
// the full scan, and a seeded sweep of random IN-lists (including constants
// absent from the table) holds the identity property.
func TestCompileIndexScanMultiPointExecutes(t *testing.T) {
	_, b, db, _ := accessEnv(t)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	run := func(t *testing.T, plan algebra.Plan, access AccessPath) value.Value {
		t.Helper()
		it, err := New(exec.NewCtx(db), Options{Access: access}).Compile(plan)
		if err != nil {
			t.Fatal(err)
		}
		v, err := exec.Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for _, tc := range []struct {
		name, pred string
		in         algebra.Plan
		v          string
	}{
		{"or-list", "x.b = 3 OR x.b = 5 OR x.b = 7", x, "x"},
		{"in-list", "x.b IN {3, 5, 7}", x, "x"},
		{"in-missing-keys", "x.b IN {3, 123456, 999}", x, "x"},
		{"composite-cross", "y.b IN {1, 3} AND (y.d = 2 OR y.d = 4)", y, "y"},
		{"multi-point-residual", "y.b IN {1, 3} AND y.a > 0", y, "y"},
		{"closed-const-or", "x.b = 3 OR x.b = 2 + 3", x, "x"},
		{"closed-const-in-dedup", "x.b IN {3, 1 + 2, 5}", x, "x"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s, err := b.Select(tc.in, tc.v, tmql.MustParse(tc.pred))
			if err != nil {
				t.Fatal(err)
			}
			idx, scan := run(t, s, AccessIndex), run(t, s, AccessScan)
			if value.Key(idx) != value.Key(scan) {
				t.Errorf("multi-point idxscan diverged from scan (%d vs %d rows)", idx.Len(), scan.Len())
			}
		})
	}
	// Property sweep: random IN-lists over the indexed attribute.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		elems := make([]string, n)
		for i := range elems {
			elems[i] = strconv.Itoa(rng.Intn(40)) // keys run 0..24: hits and misses both
		}
		s, err := b.Select(x, "x", tmql.MustParse("x.b IN {"+strings.Join(elems, ", ")+"}"))
		if err != nil {
			t.Fatal(err)
		}
		idx, scan := run(t, s, AccessIndex), run(t, s, AccessScan)
		if value.Key(idx) != value.Key(scan) {
			t.Fatalf("trial %d (IN {%s}): idxscan diverged from scan", trial, strings.Join(elems, ", "))
		}
	}
}

// TestCompileIndexScanExecutes compiles the idxscan access path for every
// matched shape and checks byte-identical results against the scan path.
func TestCompileIndexScanExecutes(t *testing.T) {
	_, b, db, _ := accessEnv(t)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	for _, tc := range []struct {
		name string
		plan algebra.Plan
	}{
		{"direct", func() algebra.Plan {
			s, _ := b.Select(x, "x", tmql.MustParse("x.b = 3"))
			return s
		}()},
		{"composite-full", func() algebra.Plan {
			s, _ := b.Select(y, "y", tmql.MustParse("y.b = 3 AND y.d = 2"))
			return s
		}()},
		{"prefix-residual", func() algebra.Plan {
			s, _ := b.Select(y, "y", tmql.MustParse("y.b = 3 AND y.a > 0"))
			return s
		}()},
		{"chain", func() algebra.Plan {
			inner, _ := b.Select(x, "x", tmql.MustParse("x.b > -100"))
			s, _ := b.Select(inner, "x", tmql.MustParse("x.b = 3"))
			return s
		}()},
		{"wrapper", func() algebra.Plan {
			w, _ := b.Map(x, "x", tmql.MustParse("(w = x)"))
			s, _ := b.Select(w, "v", tmql.MustParse("v.w.b = 3"))
			return s
		}()},
		{"fallback-unindexed", func() algebra.Plan {
			s, _ := b.Select(y, "y", tmql.MustParse("y.a = 1"))
			return s
		}()},
		{"missing-key", func() algebra.Plan {
			s, _ := b.Select(x, "x", tmql.MustParse("x.b = 123456"))
			return s
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			run := func(access AccessPath) value.Value {
				it, err := New(exec.NewCtx(db), Options{Access: access}).Compile(tc.plan)
				if err != nil {
					t.Fatal(err)
				}
				v, err := exec.Collect(it)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			idx, scan := run(AccessIndex), run(AccessScan)
			if value.Key(idx) != value.Key(scan) {
				t.Errorf("idxscan result not byte-identical to scan (idx %d rows, scan %d rows)",
					idx.Len(), scan.Len())
			}
		})
	}
}

// TestIndexScanCheaperThanScan pins the cost intuition that makes the
// optimizer pick idxscan, and that cardinality estimates stay
// access-independent.
func TestIndexScanCheaperThanScan(t *testing.T) {
	est, b, _, _ := accessEnv(t)
	x, _ := b.Scan("X")
	s, _ := b.Select(x, "x", tmql.MustParse("x.b = 3"))
	scan := est.EstimateAccess(s, ImplAuto, 1, AccessScan)
	idx := est.EstimateAccess(s, ImplAuto, 1, AccessIndex)
	if idx.Work >= scan.Work {
		t.Errorf("idxscan %v should be cheaper than scan %v", idx, scan)
	}
	if idx.Rows != scan.Rows {
		t.Errorf("access path changed the cardinality estimate: %v vs %v", idx, scan)
	}
	// Unindexed selection: identical costs either way.
	y, _ := b.Scan("Y")
	sy, _ := b.Select(y, "y", tmql.MustParse("y.a = 1"))
	if got, want := est.EstimateAccess(sy, ImplAuto, 1, AccessIndex), est.EstimateAccess(sy, ImplAuto, 1, AccessScan); got != want {
		t.Errorf("fallback cost %v differs from scan %v", got, want)
	}
}

// TestChooseEnumeratesIdxScan: the idxscan access path joins the enumeration
// exactly when an index can serve a selection, wins on cost, and renders in
// the candidate table.
func TestChooseEnumeratesIdxScan(t *testing.T) {
	est, b, _, _ := accessEnv(t)
	x, _ := b.Scan("X")
	s, _ := b.Select(x, "x", tmql.MustParse("x.b = 3"))
	best, all, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: s}}, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Access != AccessIndex {
		t.Errorf("chose access=%s, want idxscan; candidates: %v", best.Access, all)
	}
	seenScan, seenIdx := false, false
	for _, c := range all {
		switch c.Access {
		case AccessScan:
			seenScan = true
		case AccessIndex:
			seenIdx = true
			if !strings.Contains(c.String(), "+idxscan") {
				t.Errorf("idxscan candidate row lacks the access marker: %s", c.String())
			}
		}
	}
	if !seenScan || !seenIdx {
		t.Fatalf("enumeration incomplete: scan=%v idx=%v", seenScan, seenIdx)
	}
	// Without a matching index the access dimension collapses to scans.
	y, _ := b.Scan("Y")
	sy, _ := b.Select(y, "y", tmql.MustParse("y.a = 1"))
	_, all2, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: sy}}, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all2 {
		if c.Access == AccessIndex {
			t.Errorf("idxscan enumerated without a usable index: %v", c)
		}
	}
	// Explicit pins restrict the enumeration.
	bestIdx, _, err := est.ChooseAccess([]StrategyPlan{{Strategy: "nestjoin", Plan: s}}, ImplAuto, 1, AccessIndex)
	if err != nil || bestIdx.Access != AccessIndex {
		t.Errorf("AccessIndex pin: best=%+v err=%v", bestIdx, err)
	}
	bestScan, _, err := est.ChooseAccess([]StrategyPlan{{Strategy: "nestjoin", Plan: s}}, ImplAuto, 1, AccessScan)
	if err != nil || bestScan.Access != AccessScan {
		t.Errorf("AccessScan pin: best=%+v err=%v", bestScan, err)
	}
}

// TestExplainRendersIndexScan: the estimator-aware rendering names the
// index-served selection with its index, prefix, and residual.
func TestExplainRendersIndexScan(t *testing.T) {
	est, b, _, _ := accessEnv(t)
	y, _ := b.Scan("Y")
	s, _ := b.Select(y, "y", tmql.MustParse("y.b = 3 AND y.a > 0"))
	out := est.ExplainAccess(s, ImplAuto, 1, AccessIndex)
	if !strings.Contains(out, "IndexScan(Y) using Y(b,d) prefix=1") || !strings.Contains(out, "residual[") {
		t.Errorf("index scan not rendered:\n%s", out)
	}
	// Scan rendering unchanged under the scan path.
	if out := est.ExplainAccess(s, ImplAuto, 1, AccessScan); strings.Contains(out, "IndexScan") {
		t.Errorf("scan path rendered an IndexScan:\n%s", out)
	}
}

// TestCompositeIndexProbeJoins: the composite-prefix matcher serves
// multi-key equi-joins — both pairs fold into the probe, leaving no
// residual — and compiled results match the hash family.
func TestCompositeIndexProbeJoins(t *testing.T) {
	est, b, db, _ := accessEnv(t)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	j, _ := b.Join(algebra.JoinSemi, x, y, "x", "y", tmql.MustParse("x.b = y.b AND x.b = y.d"))
	pr, ok := est.indexProbeFor(j.R, j.RVar, j.Pred, j.LVar)
	if !ok || pr.Name() != "b,d" || pr.Depth != 2 || len(pr.Pairs) != 2 {
		t.Fatalf("composite probe = %+v, %v", pr, ok)
	}
	lk, rk, residual := ExtractEquiKeys(j.Pred, j.LVar, j.RVar)
	if res := indexResidual(lk, rk, pr, residual); res != nil {
		t.Errorf("covering composite probe left a residual: %s", tmql.Format(res))
	}
	keys := probeLKeys(lk, pr)
	if len(keys) != 2 {
		t.Fatalf("probeLKeys = %d exprs, want 2", len(keys))
	}
	run := func(impl JoinImpl) value.Value {
		it, err := New(exec.NewCtx(db), Options{Joins: impl}).Compile(j)
		if err != nil {
			t.Fatal(err)
		}
		v, err := exec.Collect(it)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	if idx, hash := run(ImplIndex), run(ImplHash); value.Key(idx) != value.Key(hash) {
		t.Errorf("composite idxjoin result not byte-identical to hash (%d vs %d rows)", idx.Len(), hash.Len())
	}
	// Only one pair addressed: depth-1 prefix probe, the other pair residual.
	j1, _ := b.Join(algebra.JoinSemi, x, y, "x", "y", tmql.MustParse("x.b = y.b AND x.b = y.a"))
	pr1, ok := est.indexProbeFor(j1.R, j1.RVar, j1.Pred, j1.LVar)
	if !ok || pr1.Depth != 1 || pr1.Name() != "b,d" {
		t.Fatalf("prefix probe = %+v, %v", pr1, ok)
	}
	lk1, rk1, res1 := ExtractEquiKeys(j1.Pred, j1.LVar, j1.RVar)
	if res := indexResidual(lk1, rk1, pr1, res1); res == nil {
		t.Error("uncovered pair must stay in the residual")
	}
	if idx, hash := run(ImplIndex), run(ImplHash); value.Key(idx) != value.Key(hash) {
		t.Errorf("prefix idxjoin result not byte-identical to hash")
	}
}

// TestIndexDepthStatsDriveCost: deeper prefixes mean smaller buckets and a
// cheaper probe estimate.
func TestIndexDepthStatsDriveCost(t *testing.T) {
	est, _, _, _ := accessEnv(t)
	p1, ok1 := est.Stats().IndexDepth("Y", []string{"b", "d"}, 1)
	p2, ok2 := est.Stats().IndexDepth("Y", []string{"b", "d"}, 2)
	if !ok1 || !ok2 {
		t.Fatalf("IndexDepth unavailable: %v %v", ok1, ok2)
	}
	if p1.Keys >= p2.Keys {
		t.Errorf("depth-1 prefixes (%d) should be fewer than depth-2 keys (%d)", p1.Keys, p2.Keys)
	}
	if p1.AvgBucket <= p2.AvgBucket {
		t.Errorf("depth-1 buckets (%.2f) should be deeper than depth-2 (%.2f)", p1.AvgBucket, p2.AvgBucket)
	}
	if p1.Rows != p2.Rows {
		t.Errorf("row totals disagree across depths: %d vs %d", p1.Rows, p2.Rows)
	}
	if _, ok := est.Stats().IndexDepth("Y", []string{"b", "d"}, 3); ok {
		t.Error("out-of-range depth must report !ok")
	}
	if _, ok := est.Stats().IndexDepth("Y", []string{"a"}, 1); ok {
		t.Error("unregistered index must report !ok")
	}
}
