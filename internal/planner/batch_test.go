package planner

import (
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/exec"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// batchEnv builds a mid-size XYZ instance for compiled-plan equivalence runs.
func batchEnv(t *testing.T) (*algebra.Builder, *exec.Ctx, *Estimator) {
	t.Helper()
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 200, NY: 800, NZ: 400, Keys: 25, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 6,
	})
	return algebra.NewBuilder(cat), exec.NewCtx(db), NewEstimator(db)
}

// TestCompileBatchMatchesCompile runs CompileBatch against Compile on every
// logical operator family, across join implementations, degrees, and batch
// sizes, asserting canonical result equality.
func TestCompileBatchMatchesCompile(t *testing.T) {
	b, ctx, _ := batchEnv(t)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	z, _ := b.Scan("Z")

	plans := map[string]algebra.Plan{}
	j, err := b.Join(algebra.JoinInner, x, z, "x", "z", tmql.MustParse("x.b = z.d AND z.d <= 20"))
	if err != nil {
		t.Fatal(err)
	}
	plans["join-residual"] = j
	sj, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	plans["semijoin"] = sj
	tj, _ := b.Join(algebra.JoinInner, x, z, "x", "z", tmql.MustParse("x.b < z.d"))
	plans["theta-join"] = tj
	nj, _ := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), tmql.MustParse("y.a"), "zs")
	plans["nestjoin"] = nj
	sel, _ := b.Select(x, "x", tmql.MustParse("x.b <= 12"))
	proj, err := b.Project(sel, "x", "a", "b")
	if err != nil {
		t.Fatal(err)
	}
	plans["select-project"] = proj
	u, err := b.SetOp(algebra.SetUnion, x, x)
	if err != nil {
		t.Fatal(err)
	}
	plans["union"] = u
	un, err := b.Unnest(x, "a")
	if err != nil {
		t.Fatal(err)
	}
	plans["unnest"] = un
	nst, err := b.Nest(x, []string{"a"}, "g", false)
	if err != nil {
		t.Fatal(err)
	}
	plans["nest"] = nst

	opts := []Options{
		{},
		{Parallelism: 4},
		{Joins: ImplNestedLoop},
		{Joins: ImplMerge},
	}
	for name, plan := range plans {
		for _, o := range opts {
			// Merge (and pinned hash) is infeasible without an equi-key;
			// Compile and CompileBatch must agree on the error too.
			rowIt, rowErr := New(ctx, o).Compile(plan)
			for _, size := range []int{1, 3, 0} {
				bo := o
				bo.BatchSize = size
				batIt, batErr := New(ctx, bo).CompileBatch(plan)
				if (rowErr == nil) != (batErr == nil) {
					t.Fatalf("%s/%+v: row err %v, batch err %v", name, bo, rowErr, batErr)
				}
				if rowErr != nil {
					continue
				}
				want, err := exec.Collect(rowIt)
				if err != nil {
					t.Fatalf("%s/%+v: row: %v", name, o, err)
				}
				got, err := exec.CollectBatches(batIt)
				if err != nil {
					t.Fatalf("%s/%+v: batch: %v", name, bo, err)
				}
				if !value.Equal(got, want) {
					t.Errorf("%s/%+v: batch result differs from row:\nwant %s\ngot  %s", name, bo, want, got)
				}
				// Row plans are single-use; recompile for the next size.
				rowIt, rowErr = New(ctx, o).Compile(plan)
			}
		}
	}
}

// TestCompileBatchOperatorShapes pins the physical mapping: hash-family flat
// joins are batch-native (serial and partitioned), everything cold comes back
// behind a RowsToBatch adapter.
func TestCompileBatchOperatorShapes(t *testing.T) {
	b, ctx, _ := batchEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	fj, err := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	if err != nil {
		t.Fatal(err)
	}
	nj, _ := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d"), nil, "g")

	it, err := New(ctx, Options{}).CompileBatch(x)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*exec.BatchTableScan); !ok {
		t.Errorf("scan compiled to %T, want *exec.BatchTableScan", it)
	}
	it, err = New(ctx, Options{}).CompileBatch(fj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*exec.BatchHashJoin); !ok {
		t.Errorf("serial equi join compiled to %T, want *exec.BatchHashJoin", it)
	}
	it, err = New(ctx, Options{Parallelism: 4}).CompileBatch(fj)
	if err != nil {
		t.Fatal(err)
	}
	if pj, ok := it.(*exec.ParHashJoin); !ok {
		t.Errorf("par=4 equi join compiled to %T, want *exec.ParHashJoin", it)
	} else if pj.BL == nil || pj.BR == nil {
		t.Error("partitioned join should be fed batched inputs directly")
	}
	it, err = New(ctx, Options{Parallelism: 4}).CompileBatch(nj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*exec.ParHashNestJoin); !ok {
		t.Errorf("par=4 nest join compiled to %T, want *exec.ParHashNestJoin", it)
	}
	// Serial nest join and nested-loop flat join are cold: row operators
	// behind the adapter.
	it, err = New(ctx, Options{}).CompileBatch(nj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*exec.RowsToBatch); !ok {
		t.Errorf("serial nest join compiled to %T, want adapter-wrapped row operator", it)
	}
	it, err = New(ctx, Options{Joins: ImplNestedLoop}).CompileBatch(fj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*exec.RowsToBatch); !ok {
		t.Errorf("NL join compiled to %T, want adapter-wrapped row operator", it)
	}
}

// TestEstimateExecBatchDiscount pins the cost model's shape: batch <= 0 is
// exactly the row estimate, a large plan gets cheaper at the default batch
// size, and a tiny plan stays cheapest row-at-a-time (flat overhead wins).
func TestEstimateExecBatchDiscount(t *testing.T) {
	b, _, est := batchEnv(t)
	plan := equiNestJoinPlan(t, b)
	row := est.EstimateAccess(plan, ImplHash, 1, AccessScan)
	if got := est.EstimateExec(plan, ImplHash, 1, AccessScan, 0); got != row {
		t.Errorf("batch=0 must be the row estimate: %v vs %v", got, row)
	}
	if got := est.EstimateExec(plan, ImplHash, 1, AccessScan, -1); got != row {
		t.Errorf("batch<0 must be the row estimate: %v vs %v", got, row)
	}
	bat := est.EstimateExec(plan, ImplHash, 1, AccessScan, exec.DefaultBatchSize)
	if bat.Work >= row.Work {
		t.Errorf("batching should win at this scale: row=%v batch=%v", row.Work, bat.Work)
	}
	if bat.Rows != row.Rows {
		t.Error("batching must not change cardinality estimates")
	}

	// Tiny-input crossover: work below the flat overhead keeps row cheaper.
	if BatchWorkFactor(exec.DefaultBatchSize)*20+batchStartupWork <= 20 {
		t.Error("flat overhead must keep tiny plans on the row engine")
	}
	if BatchWorkFactor(1) != 1 || BatchWorkFactor(0) != 1 {
		t.Error("factor must be 1 at batch <= 1")
	}
}

// TestChooseExecEnumeratesBatch checks the batch dimension enumerates
// orthogonally: auto doubles the feasible candidates, the batched variant
// wins at scale, pins restrict the set, and the legacy entry points are
// unchanged.
func TestChooseExecEnumeratesBatch(t *testing.T) {
	b, _, est := batchEnv(t)
	plan := equiNestJoinPlan(t, b)
	sp := []StrategyPlan{{Strategy: "nestjoin", Plan: plan}}

	_, legacy, err := est.ChooseAccess(sp, ImplAuto, 1, AccessAuto)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range legacy {
		if c.Batch != 0 {
			t.Errorf("legacy entry point enumerated a batched candidate: %v", c)
		}
	}

	best, all, err := est.ChooseExec(sp, ImplAuto, 1, AccessAuto, 0)
	if err != nil {
		t.Fatal(err)
	}
	feasible, batched := 0, 0
	for _, c := range all {
		if c.Infeasible != "" {
			continue
		}
		feasible++
		if c.Batch > 0 {
			batched++
			if c.Batch != exec.DefaultBatchSize {
				t.Errorf("auto mode should enumerate the default size, got %d", c.Batch)
			}
		}
	}
	if batched == 0 || batched*2 != feasible {
		t.Errorf("auto mode should pair every row candidate with a batched one: %d/%d", batched, feasible)
	}
	if best.Batch != exec.DefaultBatchSize {
		t.Errorf("batched hash should win at this scale, best = %+v", best)
	}

	_, pinned, err := est.ChooseExec(sp, ImplAuto, 1, AccessAuto, 256)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range pinned {
		if c.Infeasible == "" && c.Batch != 256 {
			t.Errorf("pinned size ignored: %v", c)
		}
	}
}

// TestExplainExecRendersBatch pins the EXPLAIN rendering: batch-native
// operators carry [batch=N], cold ones do not, and batch <= 0 is byte-equal
// to the row rendering.
func TestExplainExecRendersBatch(t *testing.T) {
	b, _, est := batchEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	fj, err := b.Join(algebra.JoinInner, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	if err != nil {
		t.Fatal(err)
	}
	out := est.ExplainExec(fj, ImplAuto, 1, AccessScan, 1024)
	if !strings.Contains(out, "[batch=1024]") {
		t.Errorf("no batch annotation:\n%s", out)
	}
	if !strings.Contains(out, "Scan(X)[batch=1024]") {
		t.Errorf("scan should be annotated:\n%s", out)
	}
	nj, _ := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d"), nil, "g")
	serialNest := est.ExplainExec(nj, ImplHash, 1, AccessScan, 1024)
	for _, line := range strings.Split(serialNest, "\n") {
		if strings.Contains(line, "NestJoin") && strings.Contains(line, "[batch=") {
			t.Errorf("serial hash nest join is a row operator, must not be annotated:\n%s", serialNest)
		}
	}
	if got, want := est.ExplainExec(fj, ImplAuto, 4, AccessScan, 0), est.ExplainAccess(fj, ImplAuto, 4, AccessScan); got != want {
		t.Errorf("batch=0 must match the row rendering:\nrow:\n%s\nbatch:\n%s", want, got)
	}

	c := Candidate{Strategy: "flat", Joins: ImplHash, Par: 4, Batch: 1024, Cost: Cost{Work: 9}}
	if s := c.String(); !strings.Contains(s, "hash×4+b1024") {
		t.Errorf("candidate rendering = %q", s)
	}
}
