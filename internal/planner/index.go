package planner

import (
	"tmdb/internal/algebra"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
)

// Index-aware planning support for joins. A join-family operator can be
// served by a persistent table index (storage.Table.CreateIndex) when its
// right operand is a direct scan and a prefix of some live index's attribute
// list is covered by the operator's equi-key pairs: the operator then probes
// the index per left row instead of draining the right input and building a
// hash table. Composite indexes serve multi-key equi-joins — every covered
// pair disappears from the residual, so a covering index removes the
// per-probe residual evaluation single-attribute probes used to pay. The
// shape test is shared between compilation (which asks the storage layer
// which indexes are live) and costing (which asks the statistics catalog),
// so the chooser, EXPLAIN, and the compiled operators cannot drift apart.
//
// (Selections get the analogous treatment in access.go: the same index
// registry serves σ-over-scan shapes through the IndexScan access path.)

// IndexProbe names the persistent index serving a join-family operator's
// right operand and which equi-key pairs its prefix covers.
type IndexProbe struct {
	// Table identifies the scanned extension.
	Table string
	// IndexAttrs is the full ordered attribute list of the chosen index (its
	// canonical registry name is storage.IndexName(IndexAttrs)).
	IndexAttrs []string
	// Depth is the covered prefix length (1 ≤ Depth ≤ len(IndexAttrs)).
	Depth int
	// Pairs lists, for each covered index attribute in order, the position
	// of the equi-key pair that addresses it (len(Pairs) == Depth). The
	// remaining pairs are re-checked as residual predicates.
	Pairs []int
}

// Name returns the index's canonical registry name.
func (pr IndexProbe) Name() string { return storage.IndexName(pr.IndexAttrs) }

// covers reports whether pair i is covered by the probe.
func (pr IndexProbe) covers(i int) bool {
	for _, p := range pr.Pairs {
		if p == i {
			return true
		}
	}
	return false
}

// FindIndexProbe reports how the right operand r (iterated as rvar, with
// right-side equi-key expressions rk) can be probed through a persistent
// index. indexesOf enumerates the live indexes of a table as ordered
// attribute lists — the storage registry at compile time, the statistics
// catalog at costing time. Among the indexes whose leading attributes are
// addressed by equi-key pairs, the longest covered prefix wins (deeper
// probes hit smaller buckets); ties prefer the shorter index, then registry
// order, so the choice is deterministic.
func FindIndexProbe(r algebra.Plan, rvar string, rk []tmql.Expr, indexesOf func(table string) [][]string) (IndexProbe, bool) {
	s, ok := r.(*algebra.Scan)
	if !ok {
		return IndexProbe{}, false
	}
	// Map each right-side attribute addressed as rvar.attr to its pair.
	pairOf := make(map[string]int, len(rk))
	for i, k := range rk {
		fs, ok := k.(*tmql.FieldSel)
		if !ok {
			continue
		}
		v, ok := fs.X.(*tmql.Var)
		if !ok || v.Name != rvar {
			continue
		}
		if _, dup := pairOf[fs.Label]; !dup {
			pairOf[fs.Label] = i
		}
	}
	if len(pairOf) == 0 {
		return IndexProbe{}, false
	}
	var best IndexProbe
	for _, attrs := range indexesOf(s.Table) {
		var pairs []int
		for _, attr := range attrs {
			i, ok := pairOf[attr]
			if !ok {
				break
			}
			pairs = append(pairs, i)
		}
		if len(pairs) == 0 {
			continue
		}
		if len(pairs) > best.Depth || (len(pairs) == best.Depth && len(attrs) < len(best.IndexAttrs)) {
			best = IndexProbe{Table: s.Table, IndexAttrs: attrs, Depth: len(pairs), Pairs: pairs}
		}
	}
	return best, best.Depth > 0
}

// probeLKeys returns the left-side probe-key expressions for the covered
// pairs, in index attribute order — what the exec operators evaluate per
// left row.
func probeLKeys(lk []tmql.Expr, pr IndexProbe) []tmql.Expr {
	out := make([]tmql.Expr, 0, pr.Depth)
	for _, p := range pr.Pairs {
		out = append(out, lk[p])
	}
	return out
}

// indexResidual folds the equi-key pairs not covered by the index probe back
// into the residual predicate: the probe narrows candidates to one bucket,
// and everything else is re-checked per candidate. With a covering composite
// index every pair is consumed and only the original residual (if any)
// survives.
func indexResidual(lk, rk []tmql.Expr, pr IndexProbe, residual tmql.Expr) tmql.Expr {
	var parts []tmql.Expr
	for i := range lk {
		if !pr.covers(i) {
			parts = append(parts, &tmql.Binary{Op: tmql.OpEq, L: lk[i], R: rk[i]})
		}
	}
	if residual != nil {
		parts = append(parts, residual)
	}
	return tmql.JoinAnd(parts)
}

// liveIndexes is the compile-time index oracle: the live indexes of a table
// in the planner's execution context.
func (p *Planner) liveIndexes(table string) [][]string {
	if p.ctx == nil || p.ctx.DB == nil {
		return nil
	}
	t, ok := p.ctx.DB.Table(table)
	if !ok {
		return nil
	}
	return t.Indexes()
}

// resolveIndex fetches the *HashIndex snapshot the compiled operator will
// probe. Resolving at compile time (rather than Open) pins the query to the
// index state it was compiled against — buckets are copy-on-write, so the
// snapshot stays probeable even if the registry entry is dropped mid-query —
// and a miss (the index vanished between the match and this resolve) lets
// the caller fall back to the scan/hash family silently, so concurrent
// CreateIndex/DropIndex churn never fails a query.
func (p *Planner) resolveIndex(table, name string) (*storage.HashIndex, bool) {
	if p.ctx == nil || p.ctx.DB == nil {
		return nil, false
	}
	t, ok := p.ctx.DB.Table(table)
	if !ok {
		return nil, false
	}
	return t.Index(name)
}

// statsIndexes is the costing-side index oracle, backed by the statistics
// catalog (which consults the storage registry).
func (e *Estimator) statsIndexes(table string) [][]string {
	return e.stats.Indexes(table)
}

// indexProbeFor resolves the index probe for a join-family node at costing
// time: the node's equi-keys against the statistics catalog's index view.
func (e *Estimator) indexProbeFor(r algebra.Plan, rvar string, pred tmql.Expr, lvar string) (IndexProbe, bool) {
	_, rk, _ := ExtractEquiKeys(pred, lvar, rvar)
	return FindIndexProbe(r, rvar, rk, e.statsIndexes)
}

// HasIndexProbe reports whether any join-family operator in the plan can be
// served by a live persistent index — the condition under which Choose adds
// the idxjoin family to the candidate enumeration.
func (e *Estimator) HasIndexProbe(p algebra.Plan) bool {
	switch j := p.(type) {
	case *algebra.Join:
		if _, ok := e.indexProbeFor(j.R, j.RVar, j.Pred, j.LVar); ok {
			return true
		}
	case *algebra.NestJoin:
		if _, ok := e.indexProbeFor(j.R, j.RVar, j.Pred, j.LVar); ok {
			return true
		}
	}
	for _, ch := range p.Children() {
		if e.HasIndexProbe(ch) {
			return true
		}
	}
	return false
}
