package planner

import (
	"tmdb/internal/algebra"
	"tmdb/internal/tmql"
)

// Index-aware planning support. A join-family operator can be served by a
// persistent table index (storage.Table.CreateIndex) when its right operand
// is a direct scan and one of its equi-key pairs addresses an indexed
// top-level attribute of that scan: the operator then probes the index per
// left row instead of draining the right input and building a hash table.
// The shape test is shared between compilation (which asks the storage layer
// whether the index is live) and costing (which asks the statistics catalog),
// so the chooser, EXPLAIN, and the compiled operators cannot drift apart.

// IndexProbe names the persistent index serving a join-family operator's
// right operand, and which equi-key pair it covers.
type IndexProbe struct {
	// Table and Attr identify the index: the scanned extension and the
	// indexed top-level attribute.
	Table, Attr string
	// Pair is the position of the covered equi-key pair in the
	// ExtractEquiKeys lists; the remaining pairs are re-checked as
	// residual predicates.
	Pair int
}

// FindIndexProbe reports how the right operand r (iterated as rvar, with
// right-side equi-key expressions rk) can be probed through a persistent
// index. has answers whether an index is registered and live on a
// (table, attribute) pair — the storage registry at compile time, the
// statistics catalog at costing time.
func FindIndexProbe(r algebra.Plan, rvar string, rk []tmql.Expr, has func(table, attr string) bool) (IndexProbe, bool) {
	s, ok := r.(*algebra.Scan)
	if !ok {
		return IndexProbe{}, false
	}
	for i, k := range rk {
		fs, ok := k.(*tmql.FieldSel)
		if !ok {
			continue
		}
		v, ok := fs.X.(*tmql.Var)
		if !ok || v.Name != rvar {
			continue
		}
		if has(s.Table, fs.Label) {
			return IndexProbe{Table: s.Table, Attr: fs.Label, Pair: i}, true
		}
	}
	return IndexProbe{}, false
}

// indexResidual folds the equi-key pairs not covered by the index probe back
// into the residual predicate: the probe narrows candidates to one bucket,
// and everything else is re-checked per candidate.
func indexResidual(lk, rk []tmql.Expr, pair int, residual tmql.Expr) tmql.Expr {
	var parts []tmql.Expr
	for i := range lk {
		if i != pair {
			parts = append(parts, &tmql.Binary{Op: tmql.OpEq, L: lk[i], R: rk[i]})
		}
	}
	if residual != nil {
		parts = append(parts, residual)
	}
	return tmql.JoinAnd(parts)
}

// hasIndex reports whether a live persistent index exists on table.attr in
// the planner's execution context.
func (p *Planner) hasIndex(table, attr string) bool {
	if p.ctx == nil || p.ctx.DB == nil {
		return false
	}
	t, ok := p.ctx.DB.Table(table)
	if !ok {
		return false
	}
	_, ok = t.Index(attr)
	return ok
}

// statsHasIndex is the costing-side index oracle, backed by the statistics
// catalog (which consults the storage registry's O(1) counters).
func (e *Estimator) statsHasIndex(table, attr string) bool {
	_, ok := e.stats.IndexKeys(table, attr)
	return ok
}

// indexProbeFor resolves the index probe for a join-family node at costing
// time: the node's equi-keys against the statistics catalog's index view.
func (e *Estimator) indexProbeFor(r algebra.Plan, rvar string, pred tmql.Expr, lvar string) (IndexProbe, bool) {
	_, rk, _ := ExtractEquiKeys(pred, lvar, rvar)
	return FindIndexProbe(r, rvar, rk, e.statsHasIndex)
}

// HasIndexProbe reports whether any join-family operator in the plan can be
// served by a live persistent index — the condition under which Choose adds
// the idxjoin family to the candidate enumeration.
func (e *Estimator) HasIndexProbe(p algebra.Plan) bool {
	switch j := p.(type) {
	case *algebra.Join:
		if _, ok := e.indexProbeFor(j.R, j.RVar, j.Pred, j.LVar); ok {
			return true
		}
	case *algebra.NestJoin:
		if _, ok := e.indexProbeFor(j.R, j.RVar, j.Pred, j.LVar); ok {
			return true
		}
	}
	for _, ch := range p.Children() {
		if e.HasIndexProbe(ch) {
			return true
		}
	}
	return false
}
