package planner

import (
	"fmt"
	"math"

	"tmdb/internal/algebra"
	"tmdb/internal/stats"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
)

// Cost modeling for logical plans. The model is the classical textbook one —
// cardinality estimates from per-table statistics, per-operator CPU cost in
// abstract "tuple visits" — and exists to (a) explain plans quantitatively,
// (b) let the engine choose strategy × join-implementation combinations by
// estimated cost instead of caller flags, and (c) let Estimate-driven tests
// assert the planner's physical choices match the §6 cost intuitions (hash
// builds on the right operand, nested loops quadratic, semijoin cheaper than
// nest join).
type Cost struct {
	// Rows is the estimated output cardinality.
	Rows float64
	// Work is the estimated total tuple visits to produce the output.
	Work float64
}

// String renders the estimate compactly.
func (c Cost) String() string {
	return fmt.Sprintf("rows≈%.0f work≈%.0f", c.Rows, c.Work)
}

// Estimator derives costs for plans against a database's statistics catalog.
// Statistics are computed lazily per table and cached in the catalog, so an
// estimator (or the engine holding the catalog) amortizes scans across
// queries.
type Estimator struct {
	stats *stats.Catalog
}

// NewEstimator returns an estimator with a fresh lazy statistics catalog
// over db.
func NewEstimator(db *storage.DB) *Estimator {
	return &Estimator{stats: stats.New(db)}
}

// NewEstimatorStats returns an estimator over an existing catalog (shared
// with the engine so per-table scans happen once).
func NewEstimatorStats(sc *stats.Catalog) *Estimator {
	return &Estimator{stats: sc}
}

// Stats returns the backing statistics catalog.
func (e *Estimator) Stats() *stats.Catalog { return e.stats }

func (e *Estimator) tableStats(name string) *stats.TableStats {
	return e.stats.Table(name)
}

// defaultSelectivity is used for predicates the model cannot analyze.
const defaultSelectivity = 0.33

// defaultDangling is the assumed dangling fraction when the operands are not
// direct scans with statistically known key attributes.
const defaultDangling = 0.5

// Parallel-execution cost constants: partitioning pays one extra pass over
// both inputs at parPartitionWork per tuple (key encoding and routing are
// cheaper than a full tuple visit), and every worker costs parStartupWork of
// fixed overhead (goroutine start, per-partition hash table). Small inputs
// therefore keep a serial plan cheapest, matching the runtime's inline
// threshold.
const (
	parPartitionWork = 0.5
	parStartupWork   = 200.0
)

// Estimate computes the cost of a logical plan under the auto physical
// mapping (hash where an equi-key exists, nested loops otherwise).
func (e *Estimator) Estimate(p algebra.Plan) Cost {
	return e.EstimatePhysical(p, ImplAuto)
}

// EstimatePhysical computes the serial cost of a logical plan when its
// join-family operators are compiled with the given implementation choice.
func (e *Estimator) EstimatePhysical(p algebra.Plan, impl JoinImpl) Cost {
	return e.EstimatePhysicalPar(p, impl, 1)
}

// EstimatePhysicalPar computes the cost of a logical plan when its
// join-family operators are compiled with the given implementation choice at
// the given partitioned-execution degree, with leaf selections reading
// through full scans. EstimateAccess is the access-path-aware form the
// candidate enumeration uses. par <= 1 is serial; at higher degrees hash
// probe work divides by par while the partition pass and per-worker startup
// are added, so parallelism only wins where the §7-style cost arguments say
// it should. Infeasible choices (hash without an equi-key) are costed as
// their nested-loop fallback; feasibility is checked separately by
// ImplInfeasible.
func (e *Estimator) EstimatePhysicalPar(p algebra.Plan, impl JoinImpl, par int) Cost {
	return e.EstimateAccess(p, impl, par, AccessScan)
}

// EstimateAccess is EstimatePhysicalPar under an access-path choice: with
// AccessIndex, selections served by a live persistent index are costed as
// point probes (per-bucket depth statistics instead of a scan of the input).
// The output cardinality of a selection is access-independent — only the
// work term changes — mirroring how join implementations share cardinality.
func (e *Estimator) EstimateAccess(p algebra.Plan, impl JoinImpl, par int, access AccessPath) Cost {
	if par < 1 {
		par = 1
	}
	switch n := p.(type) {
	case *algebra.Scan:
		card := float64(e.tableStats(n.Table).Card)
		return Cost{Rows: card, Work: card}

	case *algebra.EvalNode:
		// Naive nested-loop evaluation: costed by walking the expression.
		return e.evalCost(n.Expr)

	case *algebra.Select:
		in := e.EstimateAccess(n.In, impl, par, access)
		sel := e.predicateSelectivity(n.Pred, n.In, n.Var)
		rows := in.Rows * sel
		if access == AccessIndex {
			if m, ok := e.findIndexScanStats(n); ok {
				return Cost{Rows: rows, Work: e.indexScanWork(m)}
			}
		}
		return Cost{Rows: rows, Work: in.Work + in.Rows}

	case *algebra.Map:
		in := e.EstimateAccess(n.In, impl, par, access)
		return Cost{Rows: in.Rows, Work: in.Work + in.Rows}

	case *algebra.Join:
		return e.estimateJoin(n, impl, par, access)

	case *algebra.NestJoin:
		return e.estimateNestJoin(n, impl, par, access)

	case *algebra.Nest:
		in := e.EstimateAccess(n.In, impl, par, access)
		return Cost{Rows: in.Rows * 0.5, Work: in.Work + in.Rows}

	case *algebra.Unnest:
		in := e.EstimateAccess(n.In, impl, par, access)
		fanout := e.unnestFanout(n)
		return Cost{Rows: in.Rows * fanout, Work: in.Work + in.Rows*fanout}

	case *algebra.SetOp:
		l := e.EstimateAccess(n.L, impl, par, access)
		r := e.EstimateAccess(n.R, impl, par, access)
		rows := l.Rows
		switch n.Kind {
		case algebra.SetUnion:
			rows = l.Rows + r.Rows
		case algebra.SetIntersect:
			if r.Rows < rows {
				rows = r.Rows
			}
		}
		return Cost{Rows: rows, Work: l.Work + r.Work + l.Rows + r.Rows}
	}
	return Cost{Rows: 1, Work: 1}
}

// indexScanWork is the probe-cost model for an index-served selection: one
// hash lookup per point, the matched prefix level's expected bucket visited
// once, and each bucket row re-checked against the residual and the chain
// nodes above the leaf. The expected bucket depth comes from the index's
// per-bucket depth statistics (stats.Catalog.IndexDepth); the base scan is
// never paid. Multi-point scans (OR/IN-list disjuncts) pay the per-point
// cost once per point.
func (e *Estimator) indexScanWork(m IndexScanMatch) float64 {
	avg := 1.0
	if prof, ok := e.stats.IndexDepth(m.Table, m.IndexAttrs, m.Depth); ok && prof.AvgBucket > 0 {
		avg = prof.AvgBucket
	}
	// Per point: one lookup + one visit per bucket row + one residual/chain
	// re-check per bucket row.
	return float64(len(m.Points)) * (1 + 2*avg)
}

func (e *Estimator) estimateJoin(n *algebra.Join, impl JoinImpl, par int, access AccessPath) Cost {
	l := e.EstimateAccess(n.L, impl, par, access)
	r := e.EstimateAccess(n.R, impl, par, access)
	lk, rk, _ := ExtractEquiKeys(n.Pred, n.LVar, n.RVar)
	hashable := len(lk) > 0

	var matches float64
	if hashable {
		matches = l.Rows * r.Rows * e.keySelectivity(n.R, n.RVar, rk)
	} else {
		matches = l.Rows * r.Rows * defaultSelectivity
	}

	dang := e.danglingFrac(n.L, n.LVar, lk, n.R, n.RVar, rk)
	rows := matches
	switch n.Kind {
	case algebra.JoinSemi:
		rows = l.Rows * (1 - dang)
	case algebra.JoinAnti:
		rows = l.Rows * dang
	case algebra.JoinLeftOuter:
		if rows < l.Rows {
			rows = l.Rows
		}
	}

	// An index-served operator never drains the right input: the persistent
	// index pre-exists, so neither the right subtree's work nor a build pass
	// is paid — only the per-left-row probe and the emitted matches.
	if impl == ImplIndex {
		if _, ok := FindIndexProbe(n.R, n.RVar, rk, e.statsIndexes); ok {
			return Cost{Rows: rows, Work: l.Work + l.Rows + matches}
		}
	}

	// Flat joins have no merge variant: Compile lowers ImplMerge to hash, so
	// cost what actually runs. An idxjoin operator without a usable index
	// falls back to the auto mapping, exactly as Compile does.
	joinImpl := impl
	if joinImpl == ImplMerge || joinImpl == ImplIndex {
		joinImpl = ImplHash
	}
	probe := e.joinProbeWork(l.Rows, r.Rows, matches, joinImpl, hashable, par)
	return Cost{Rows: rows, Work: l.Work + r.Work + probe}
}

func (e *Estimator) estimateNestJoin(n *algebra.NestJoin, impl JoinImpl, par int, access AccessPath) Cost {
	l := e.EstimateAccess(n.L, impl, par, access)
	r := e.EstimateAccess(n.R, impl, par, access)
	lk, rk, _ := ExtractEquiKeys(n.Pred, n.LVar, n.RVar)
	hashable := len(lk) > 0

	var matches float64
	if hashable {
		matches = l.Rows * r.Rows * e.keySelectivity(n.R, n.RVar, rk)
	} else {
		matches = l.Rows * r.Rows * defaultSelectivity
	}
	// One output tuple per left element, always (dangling survive with ∅).
	if impl == ImplIndex {
		if _, ok := FindIndexProbe(n.R, n.RVar, rk, e.statsIndexes); ok {
			return Cost{Rows: l.Rows, Work: l.Work + l.Rows + matches}
		}
		impl = ImplAuto // no usable index: costed as Compile's fallback
	}
	probe := e.joinProbeWork(l.Rows, r.Rows, matches, impl, hashable, par)
	return Cost{Rows: l.Rows, Work: l.Work + r.Work + probe}
}

// joinProbeWork is the per-implementation cost of pairing the operands:
// nested loops evaluate the predicate over the cross product; hash pays one
// visit per tuple on each side plus the matches emitted; sort-merge adds the
// n·log n ordering passes on top of a hash-like merge. At par >= 2 the hash
// family runs partitioned: probe work divides across the workers, with an
// extra partition pass over both inputs and per-worker startup overhead.
func (e *Estimator) joinProbeWork(lRows, rRows, matches float64, impl JoinImpl, hashable bool, par int) float64 {
	eff := impl
	if eff == ImplAuto {
		if hashable {
			eff = ImplHash
		} else {
			eff = ImplNestedLoop
		}
	}
	if !hashable {
		// Hash/merge without a key cannot run; cost the nested-loop fallback.
		eff = ImplNestedLoop
	}
	switch eff {
	case ImplNestedLoop:
		return lRows * rRows
	case ImplMerge:
		return sortCost(lRows) + sortCost(rRows) + lRows + rRows + matches
	default: // ImplHash
		serial := lRows + rRows + matches
		if par < 2 {
			return serial
		}
		return (lRows+rRows)*parPartitionWork + serial/float64(par) + parStartupWork*float64(par)
	}
}

func sortCost(n float64) float64 {
	if n < 2 {
		return n
	}
	return n * math.Log2(n)
}

// unnestFanout estimates μ fan-out from the average set cardinality of the
// unnested attribute when the input is a direct scan, else a constant 3.
func (e *Estimator) unnestFanout(n *algebra.Unnest) float64 {
	if s, ok := n.In.(*algebra.Scan); ok {
		if avg, ok := e.tableStats(s.Table).AvgSetLen[n.Attr]; ok && avg > 0 {
			return avg
		}
	}
	return 3.0
}

// keySelectivity estimates 1/NDV of the join key on the right operand. When
// the key resolves to a stored attribute (direct scan, filtered scan, or the
// flat-join single-field wrapper over either), that attribute's distinct
// count — exact or sketch-estimated, see internal/stats — is used; otherwise
// fall back to the most selective attribute of a directly scanned table, or
// 0.1.
func (e *Estimator) keySelectivity(r algebra.Plan, rvar string, rkeys []tmql.Expr) float64 {
	if len(rkeys) > 0 {
		if tab, attr, ok := resolveScanAttr(r, rvar, rkeys[0]); ok {
			if d, ok := e.tableStats(tab).Distinct[attr]; ok && d > 0 {
				return 1.0 / float64(d)
			}
		}
	}
	s, ok := r.(*algebra.Scan)
	if !ok {
		return 0.1
	}
	st := e.tableStats(s.Table)
	best := 0.1
	for _, d := range st.Distinct {
		if d > 0 {
			if sel := 1.0 / float64(d); sel < best {
				best = sel
			}
		}
	}
	return best
}

// danglingFrac estimates the fraction of left tuples with no join partner.
// When both key sides resolve to stored attributes the statistics catalog
// answers (exactly below its threshold, by histogram overlap above it);
// otherwise the conventional default 0.5.
func (e *Estimator) danglingFrac(l algebra.Plan, lvar string, lkeys []tmql.Expr,
	r algebra.Plan, rvar string, rkeys []tmql.Expr) float64 {
	if len(lkeys) == 0 || len(rkeys) == 0 {
		return defaultDangling
	}
	lt, la, ok := resolveScanAttr(l, lvar, lkeys[0])
	if !ok {
		return defaultDangling
	}
	rt, ra, ok := resolveScanAttr(r, rvar, rkeys[0])
	if !ok {
		return defaultDangling
	}
	return e.stats.DanglingFrac(lt, la, rt, ra)
}

// resolveScanAttr resolves an attribute expression over varName to the
// underlying stored (table, attribute): either varName.attr with the plan a
// (possibly filtered) scan, or varName.w.attr with the plan containing the
// single-field wrapper Map labeled w over a scan — the shape the flat-join
// translation and the join-order search build for every FROM source. This is
// what threads histogram selectivities through wrapped join chains.
func resolveScanAttr(p algebra.Plan, varName string, e tmql.Expr) (table, attr string, ok bool) {
	fs, isSel := e.(*tmql.FieldSel)
	if !isSel {
		return "", "", false
	}
	switch x := fs.X.(type) {
	case *tmql.Var:
		if x.Name != varName {
			return "", "", false
		}
		if s := unwrapToScan(p); s != nil {
			return s.Table, fs.Label, true
		}
	case *tmql.FieldSel:
		v, isVar := x.X.(*tmql.Var)
		if !isVar || v.Name != varName {
			return "", "", false
		}
		if s := findWrapperScan(p, x.Label); s != nil {
			return s.Table, fs.Label, true
		}
	}
	return "", "", false
}

// unwrapToScan sees through selections to a scan leaf (selections restrict
// rows but keep the stored attribute statistics usable as approximations).
func unwrapToScan(p algebra.Plan) *algebra.Scan {
	for {
		switch n := p.(type) {
		case *algebra.Scan:
			return n
		case *algebra.Select:
			p = n.In
		default:
			return nil
		}
	}
}

// findWrapperScan finds the scan beneath the single-field wrapper Map
// introducing label w anywhere inside p.
func findWrapperScan(p algebra.Plan, w string) *algebra.Scan {
	var found *algebra.Scan
	algebra.Walk(p, func(n algebra.Plan) bool {
		if found != nil {
			return false
		}
		m, ok := n.(*algebra.Map)
		if !ok {
			return true
		}
		cons, ok := m.Out.(*tmql.TupleCons)
		if !ok || len(cons.Fields) != 1 || cons.Fields[0].Label != w {
			return true
		}
		if v, ok := cons.Fields[0].E.(*tmql.Var); ok && v.Name == m.Var {
			if s := unwrapToScan(m.In); s != nil {
				found = s
				return false
			}
		}
		return true
	})
	return found
}

// predicateSelectivity assigns selectivities by predicate shape: equality
// and range comparisons against literals use the attribute's equi-depth
// histogram when the attribute resolves to a stored one; plain equality
// falls back to 1/NDV; anything else gets the defaults.
func (e *Estimator) predicateSelectivity(pred tmql.Expr, in algebra.Plan, varName string) float64 {
	b, ok := pred.(*tmql.Binary)
	if !ok {
		return defaultSelectivity
	}
	switch b.Op {
	case tmql.OpEq, tmql.OpLt, tmql.OpLe, tmql.OpGt, tmql.OpGe:
		if sel, ok := e.compareSelectivity(b, in, varName); ok {
			return sel
		}
		if b.Op == tmql.OpEq {
			if fs, ok := b.L.(*tmql.FieldSel); ok {
				if tab, attr, ok := resolveScanAttr(in, varName, fs); ok {
					return e.tableStats(tab).Selectivity(attr)
				}
			}
			return 0.1
		}
		return defaultSelectivity
	case tmql.OpAnd:
		return e.predicateSelectivity(b.L, in, varName) * e.predicateSelectivity(b.R, in, varName)
	case tmql.OpOr:
		sl := e.predicateSelectivity(b.L, in, varName)
		sr := e.predicateSelectivity(b.R, in, varName)
		return sl + sr - sl*sr
	}
	return defaultSelectivity
}

// compareSelectivity estimates an attribute-vs-literal comparison through
// the attribute's histogram. ok is false when the shape doesn't match or no
// histogram exists.
func (e *Estimator) compareSelectivity(b *tmql.Binary, in algebra.Plan, varName string) (float64, bool) {
	attrE, litE, op := b.L, b.R, b.Op
	if _, isLit := attrE.(*tmql.Lit); isLit {
		attrE, litE = litE, attrE
		op = flipCompare(op)
	}
	lit, isLit := litE.(*tmql.Lit)
	if !isLit {
		return 0, false
	}
	tab, attr, ok := resolveScanAttr(in, varName, attrE)
	if !ok {
		return 0, false
	}
	st := e.tableStats(tab)
	h := st.Histogram(attr)
	if op == tmql.OpEq {
		if h != nil {
			if f := h.EstimateEq(lit.V); f >= 0 {
				return clampSelectivity(f, st.Card), true
			}
		}
		return st.Selectivity(attr), true
	}
	if h == nil {
		return 0, false
	}
	lt := h.EstimateLess(lit.V)
	if lt < 0 {
		return 0, false
	}
	eq := math.Max(0, h.EstimateEq(lit.V))
	var f float64
	switch op {
	case tmql.OpLt:
		f = lt
	case tmql.OpLe:
		f = lt + eq
	case tmql.OpGt:
		f = 1 - lt - eq
	case tmql.OpGe:
		f = 1 - lt
	default:
		return 0, false
	}
	return clampSelectivity(f, st.Card), true
}

// clampSelectivity keeps estimates inside (0, 1]: a zero estimate would zero
// out entire plan costs and turn the candidate comparison into degenerate
// ties, so the floor is half a row.
func clampSelectivity(f float64, card int) float64 {
	lo := 0.0
	if card > 0 {
		lo = 0.5 / float64(card)
	}
	if f < lo {
		f = lo
	}
	if f > 1 {
		f = 1
	}
	return f
}

// flipCompare mirrors a comparison operator for swapped operands.
func flipCompare(op tmql.Op) tmql.Op {
	switch op {
	case tmql.OpLt:
		return tmql.OpGt
	case tmql.OpLe:
		return tmql.OpGe
	case tmql.OpGt:
		return tmql.OpLt
	case tmql.OpGe:
		return tmql.OpLe
	}
	return op
}

// evalCost estimates naive (tuple-at-a-time) evaluation of a TM expression:
// an SFW block costs the product of its FROM cardinalities times the
// per-tuple work of its predicate and result — which makes correlated
// subqueries multiply out to the quadratic blowup the paper's flattening
// avoids, so the auto planner only picks naive evaluation when nothing
// better translates.
func (e *Estimator) evalCost(x tmql.Expr) Cost {
	if x == nil {
		return Cost{Rows: 1, Work: 0}
	}
	switch n := x.(type) {
	case *tmql.Lit, *tmql.Var:
		return Cost{Rows: 1, Work: 1}

	case *tmql.TableRef:
		card := float64(e.tableStats(n.Name).Card)
		return Cost{Rows: card, Work: card}

	case *tmql.FieldSel:
		c := e.evalCost(n.X)
		return Cost{Rows: 1, Work: c.Work + 1}

	case *tmql.TupleCons:
		work := 1.0
		for _, f := range n.Fields {
			work += e.evalCost(f.E).Work
		}
		return Cost{Rows: 1, Work: work}

	case *tmql.SetCons:
		work := 1.0
		for _, el := range n.Elems {
			work += e.evalCost(el).Work
		}
		return Cost{Rows: math.Max(1, float64(len(n.Elems))), Work: work}

	case *tmql.ListCons:
		work := 1.0
		for _, el := range n.Elems {
			work += e.evalCost(el).Work
		}
		return Cost{Rows: math.Max(1, float64(len(n.Elems))), Work: work}

	case *tmql.Binary:
		l, r := e.evalCost(n.L), e.evalCost(n.R)
		return Cost{Rows: 1, Work: l.Work + r.Work + 1}

	case *tmql.Unary:
		c := e.evalCost(n.X)
		return Cost{Rows: 1, Work: c.Work + 1}

	case *tmql.Agg:
		c := e.evalCost(n.X)
		return Cost{Rows: 1, Work: c.Work + c.Rows}

	case *tmql.Quant:
		over := e.evalCost(n.Over)
		pred := e.evalCost(n.Pred)
		return Cost{Rows: 1, Work: over.Work + over.Rows*pred.Work}

	case *tmql.SFW:
		loops := 1.0
		work := 0.0
		for _, f := range n.Froms {
			c := e.evalCost(f.Src)
			work += c.Work
			loops *= math.Max(1, c.Rows)
		}
		perTuple := 1.0 + e.evalCost(n.Where).Work + e.evalCost(n.Result).Work
		rows := loops
		if n.Where != nil {
			rows *= defaultSelectivity
		}
		return Cost{Rows: math.Max(1, rows), Work: work + loops*perTuple}

	case *tmql.Let:
		d, b := e.evalCost(n.Def), e.evalCost(n.Body)
		return Cost{Rows: b.Rows, Work: d.Work + b.Work}

	case *tmql.Unnest:
		c := e.evalCost(n.X)
		return Cost{Rows: c.Rows * 3, Work: c.Work + c.Rows*3}
	}
	return Cost{Rows: 1, Work: 1}
}

// ExplainCosts renders the plan with per-node logical cost annotations
// (auto physical mapping). See ExplainPhysical for the physical rendering
// the engine's EXPLAIN uses.
func (e *Estimator) ExplainCosts(p algebra.Plan) string {
	var out string
	var walk func(n algebra.Plan, depth int)
	walk = func(n algebra.Plan, depth int) {
		c := e.Estimate(n)
		for i := 0; i < depth; i++ {
			out += "  "
		}
		out += fmt.Sprintf("%s  [%s]\n", n.Describe(), c)
		for _, ch := range n.Children() {
			walk(ch, depth+1)
		}
	}
	walk(p, 0)
	return out
}
