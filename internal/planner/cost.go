package planner

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
)

// Cost modeling for logical plans. The model is the classical textbook one —
// cardinality estimates from per-table statistics, per-operator CPU cost in
// abstract "tuple visits" — and exists to (a) explain plans quantitatively
// and (b) let Estimate-driven tests assert the planner's physical choices
// match the §6 cost intuitions (hash builds on the right operand, nested
// loops quadratic, semijoin cheaper than nest join).
type Cost struct {
	// Rows is the estimated output cardinality.
	Rows float64
	// Work is the estimated total tuple visits to produce the output.
	Work float64
}

// String renders the estimate compactly.
func (c Cost) String() string {
	return fmt.Sprintf("rows≈%.0f work≈%.0f", c.Rows, c.Work)
}

// Estimator derives costs for plans against a database's statistics. Stats
// are computed lazily per table and cached.
type Estimator struct {
	db    *storage.DB
	stats map[string]*storage.Stats
}

// NewEstimator returns an estimator over db.
func NewEstimator(db *storage.DB) *Estimator {
	return &Estimator{db: db, stats: make(map[string]*storage.Stats)}
}

func (e *Estimator) tableStats(name string) *storage.Stats {
	if s, ok := e.stats[name]; ok {
		return s
	}
	tab, ok := e.db.Table(name)
	if !ok {
		s := &storage.Stats{Card: 0}
		e.stats[name] = s
		return s
	}
	s := storage.ComputeStats(tab)
	e.stats[name] = s
	return s
}

// defaultSelectivity is used for predicates the model cannot analyze.
const defaultSelectivity = 0.33

// Estimate computes the cost of a logical plan.
func (e *Estimator) Estimate(p algebra.Plan) Cost {
	switch n := p.(type) {
	case *algebra.Scan:
		card := float64(e.tableStats(n.Table).Card)
		return Cost{Rows: card, Work: card}

	case *algebra.EvalNode:
		// Opaque: assume a modest constant (naive evaluation cost is
		// unknowable without running it).
		return Cost{Rows: 100, Work: 1000}

	case *algebra.Select:
		in := e.Estimate(n.In)
		sel := e.predicateSelectivity(n.Pred, n.In)
		return Cost{Rows: in.Rows * sel, Work: in.Work + in.Rows}

	case *algebra.Map:
		in := e.Estimate(n.In)
		return Cost{Rows: in.Rows, Work: in.Work + in.Rows}

	case *algebra.Join:
		l, r := e.Estimate(n.L), e.Estimate(n.R)
		lk, _, _ := ExtractEquiKeys(n.Pred, n.LVar, n.RVar)
		var probe, out float64
		if len(lk) > 0 {
			// Hash: build right, probe left; matches per probe from key NDV.
			fanout := r.Rows * e.keySelectivity(n.R)
			probe = l.Rows + r.Rows
			out = l.Rows * fanout
		} else {
			probe = l.Rows * r.Rows
			out = l.Rows * r.Rows * defaultSelectivity
		}
		switch n.Kind {
		case algebra.JoinSemi, algebra.JoinAnti:
			out = l.Rows * 0.5
		case algebra.JoinLeftOuter:
			if out < l.Rows {
				out = l.Rows
			}
		}
		return Cost{Rows: out, Work: l.Work + r.Work + probe}

	case *algebra.NestJoin:
		l, r := e.Estimate(n.L), e.Estimate(n.R)
		lk, _, _ := ExtractEquiKeys(n.Pred, n.LVar, n.RVar)
		var probe float64
		if len(lk) > 0 {
			probe = l.Rows + r.Rows + l.Rows*r.Rows*e.keySelectivity(n.R)
		} else {
			probe = l.Rows * r.Rows
		}
		// One output tuple per left element, always (dangling survive).
		return Cost{Rows: l.Rows, Work: l.Work + r.Work + probe}

	case *algebra.Nest:
		in := e.Estimate(n.In)
		return Cost{Rows: in.Rows * 0.5, Work: in.Work + in.Rows}

	case *algebra.Unnest:
		in := e.Estimate(n.In)
		fanout := 3.0
		return Cost{Rows: in.Rows * fanout, Work: in.Work + in.Rows*fanout}

	case *algebra.SetOp:
		l, r := e.Estimate(n.L), e.Estimate(n.R)
		rows := l.Rows
		switch n.Kind {
		case algebra.SetUnion:
			rows = l.Rows + r.Rows
		case algebra.SetIntersect:
			if r.Rows < rows {
				rows = r.Rows
			}
		}
		return Cost{Rows: rows, Work: l.Work + r.Work + l.Rows + r.Rows}
	}
	return Cost{Rows: 1, Work: 1}
}

// keySelectivity estimates 1/NDV of the join key on the right operand,
// falling back to a default when the operand is not a direct scan.
func (e *Estimator) keySelectivity(r algebra.Plan) float64 {
	if s, ok := r.(*algebra.Scan); ok {
		st := e.tableStats(s.Table)
		best := 0.1
		for _, d := range st.Distinct {
			if d > 0 {
				if sel := 1.0 / float64(d); sel < best {
					best = sel
				}
			}
		}
		return best
	}
	return 0.1
}

// predicateSelectivity assigns standard selectivities by predicate shape:
// equality 1/NDV (when the attribute is statistically known), range 1/3,
// everything else the default.
func (e *Estimator) predicateSelectivity(pred tmql.Expr, in algebra.Plan) float64 {
	b, ok := pred.(*tmql.Binary)
	if !ok {
		return defaultSelectivity
	}
	switch b.Op {
	case tmql.OpEq:
		if s, ok := in.(*algebra.Scan); ok {
			if fs, ok := b.L.(*tmql.FieldSel); ok {
				st := e.tableStats(s.Table)
				return st.Selectivity(fs.Label)
			}
		}
		return 0.1
	case tmql.OpLt, tmql.OpLe, tmql.OpGt, tmql.OpGe:
		return defaultSelectivity
	case tmql.OpAnd:
		return e.predicateSelectivity(b.L, in) * e.predicateSelectivity(b.R, in)
	case tmql.OpOr:
		sl := e.predicateSelectivity(b.L, in)
		sr := e.predicateSelectivity(b.R, in)
		return sl + sr - sl*sr
	}
	return defaultSelectivity
}

// ExplainCosts renders the plan with per-node cost annotations.
func (e *Estimator) ExplainCosts(p algebra.Plan) string {
	var out string
	var walk func(n algebra.Plan, depth int)
	walk = func(n algebra.Plan, depth int) {
		c := e.Estimate(n)
		for i := 0; i < depth; i++ {
			out += "  "
		}
		out += fmt.Sprintf("%s  [%s]\n", n.Describe(), c)
		for _, ch := range n.Children() {
			walk(ch, depth+1)
		}
	}
	walk(p, 0)
	return out
}
