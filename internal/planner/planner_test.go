package planner

import (
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/exec"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

func TestExtractEquiKeys(t *testing.T) {
	cases := []struct {
		pred     string
		nKeys    int
		residual string // "" for none
	}{
		{"x.b = y.d", 1, ""},
		{"y.d = x.b", 1, ""}, // orientation normalized
		{"x.b = y.d AND x.a = y.c", 2, ""},
		{"x.b = y.d AND y.a > 1", 1, "y.a > 1"},
		{"x.b < y.d", 0, "x.b < y.d"},
		{"x.b = x.b", 0, "x.b = x.b"}, // both sides left: residual
		{"x.b + 1 = y.d * 2", 1, ""},  // expressions allowed as keys
		{"TRUE", 0, "true"},
		{"x.b = y.d AND TRUE AND x.b = 1", 1, "true AND x.b = 1"},
	}
	for _, c := range cases {
		lk, rk, res := ExtractEquiKeys(tmql.MustParse(c.pred), "x", "y")
		if len(lk) != c.nKeys || len(rk) != c.nKeys {
			t.Errorf("ExtractEquiKeys(%q): %d/%d keys, want %d", c.pred, len(lk), len(rk), c.nKeys)
		}
		got := ""
		if res != nil {
			got = tmql.Format(res)
		}
		if got != c.residual {
			t.Errorf("ExtractEquiKeys(%q) residual = %q, want %q", c.pred, got, c.residual)
		}
	}
}

func TestSplitJoinConjuncts(t *testing.T) {
	parts := SplitConjuncts(tmql.MustParse("a = 1 AND b = 2 AND c = 3"))
	if len(parts) != 3 {
		t.Errorf("SplitConjuncts: %d parts", len(parts))
	}
	if SplitConjuncts(nil) != nil {
		t.Error("SplitConjuncts(nil) should be nil")
	}
	if JoinConjuncts(nil) != nil {
		t.Error("JoinConjuncts(nil) should be nil")
	}
	back := JoinConjuncts(parts)
	if got := tmql.Format(back); got != "a = 1 AND b = 2 AND c = 3" {
		t.Errorf("JoinConjuncts = %q", got)
	}
}

// compile builds a small nest-join plan and compiles it under the impl.
func compileNJ(t *testing.T, impl JoinImpl, pred string) (exec.Iterator, *exec.Ctx) {
	t.Helper()
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	b := algebra.NewBuilder(cat)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, err := b.NestJoin(x, y, "x", "y", tmql.MustParse(pred), tmql.MustParse("y.a"), "zs")
	if err != nil {
		t.Fatal(err)
	}
	ctx := exec.NewCtx(db)
	it, err := New(ctx, Options{Joins: impl}).Compile(nj)
	if err != nil {
		t.Fatal(err)
	}
	return it, ctx
}

func TestNestJoinImplEquivalence(t *testing.T) {
	var want value.Value
	for i, impl := range []JoinImpl{ImplNestedLoop, ImplHash, ImplMerge, ImplAuto} {
		it, _ := compileNJ(t, impl, "x.b = y.b")
		got, err := exec.Collect(it)
		if err != nil {
			t.Fatalf("%s: %v", impl, err)
		}
		if i == 0 {
			want = got
			continue
		}
		if !value.Equal(got, want) {
			t.Errorf("%s nest join differs from nested-loop", impl)
		}
	}
}

func TestPhysicalChoice(t *testing.T) {
	// Equi predicate + auto → hash; non-equi + auto → nested loop.
	it, _ := compileNJ(t, ImplAuto, "x.b = y.b")
	if _, ok := it.(*exec.HashNestJoin); !ok {
		t.Errorf("auto with equi-key compiled to %T, want HashNestJoin", it)
	}
	it, _ = compileNJ(t, ImplAuto, "x.b < y.b")
	if _, ok := it.(*exec.NLNestJoin); !ok {
		t.Errorf("auto without equi-key compiled to %T, want NLNestJoin", it)
	}
	it, _ = compileNJ(t, ImplMerge, "x.b = y.b")
	if _, ok := it.(*exec.MergeNestJoin); !ok {
		t.Errorf("merge compiled to %T", it)
	}
}

func TestHashRequestedWithoutKeysFails(t *testing.T) {
	cat, _ := datagen.XYZ(datagen.DefaultSpec())
	b := algebra.NewBuilder(cat)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, _ := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b < y.b"), nil, "zs")
	ctx := exec.NewCtx(nil)
	if _, err := New(ctx, Options{Joins: ImplHash}).Compile(nj); err == nil {
		t.Error("hash without keys should fail")
	}
	j, _ := b.Join(algebra.JoinSemi, x, y, "x", "y", tmql.MustParse("x.b < y.b"))
	if _, err := New(ctx, Options{Joins: ImplHash}).Compile(j); err == nil {
		t.Error("hash join without keys should fail")
	}
}

func TestCompileFullPipeline(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	b := algebra.NewBuilder(cat)
	x, _ := b.Scan("X")
	y, _ := b.Scan("Y")
	nj, _ := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), tmql.MustParse("y.a"), "zs")
	sel, _ := b.Select(nj, "x", tmql.MustParse("x.a SUBSETEQ x.zs"))
	proj, _ := b.Project(sel, "x", "a", "b")
	ctx := exec.NewCtx(db)
	it, err := New(ctx, Options{}).Compile(proj)
	if err != nil {
		t.Fatal(err)
	}
	got, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	// Oracle: direct nested loops.
	xTab, _ := db.Table("X")
	yTab, _ := db.Table("Y")
	want := value.NewSetBuilder(0)
	for _, xr := range xTab.Rows() {
		zs := value.NewSetBuilder(0)
		for _, yr := range yTab.Rows() {
			if value.Equal(xr.MustGet("b"), yr.MustGet("b")) {
				zs.Add(yr.MustGet("a"))
			}
		}
		if value.SubsetEq(xr.MustGet("a"), zs.Build()) {
			want.Add(xr)
		}
	}
	wantV := want.Build()
	if !value.Equal(got, wantV) {
		t.Errorf("pipeline: got %s\nwant %s", got, wantV)
	}
}

func TestSetOpAndUnnestCompile(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	b := algebra.NewBuilder(cat)
	x1, _ := b.Scan("X")
	x2, _ := b.Scan("X")
	u, _ := b.SetOp(algebra.SetIntersect, x1, x2)
	ctx := exec.NewCtx(db)
	it, err := New(ctx, Options{}).Compile(u)
	if err != nil {
		t.Fatal(err)
	}
	got, _ := exec.Collect(it)
	xTab, _ := db.Table("X")
	if got.Len() != xTab.Len() {
		t.Errorf("X ∩ X has %d elements, want %d", got.Len(), xTab.Len())
	}

	un, _ := b.Unnest(x1, "a")
	it2, err := New(ctx, Options{}).Compile(un)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := exec.Collect(it2); err != nil {
		t.Fatal(err)
	}
}

func TestJoinImplString(t *testing.T) {
	for ji, want := range map[JoinImpl]string{
		ImplAuto: "auto", ImplNestedLoop: "nested-loop", ImplHash: "hash", ImplMerge: "sort-merge",
	} {
		if ji.String() != want {
			t.Errorf("%d.String() = %s", ji, ji.String())
		}
	}
}
