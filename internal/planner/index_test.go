package planner

import (
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/exec"
	"tmdb/internal/schema"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// indexEnv builds the XYZ workload with a persistent index on Z.d and
// returns the estimator, plan builder, and database.
func indexEnv(t *testing.T) (*Estimator, *algebra.Builder, *storage.DB, *schema.Catalog) {
	t.Helper()
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 100, NY: 400, NZ: 200, Keys: 20, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 4,
	})
	if err := db.CreateIndex("Z", "d"); err != nil {
		t.Fatal(err)
	}
	return NewEstimator(db), algebra.NewBuilder(cat), db, cat
}

// TestFindIndexProbeShapes pins the shape test: a direct scan with an
// indexed equi-key attribute is probeable, wrapped or unindexed shapes are
// not, and extra equi-key pairs are skipped over to find the covered one.
func TestFindIndexProbeShapes(t *testing.T) {
	est, b, _, _ := indexEnv(t)
	z, _ := b.Scan("Z")
	x, _ := b.Scan("X")
	j, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	pr, ok := est.indexProbeFor(j.R, j.RVar, j.Pred, j.LVar)
	if !ok || pr.Table != "Z" || pr.Name() != "d" || pr.Depth != 1 || len(pr.Pairs) != 1 || pr.Pairs[0] != 0 {
		t.Fatalf("probe = %+v, %v", pr, ok)
	}
	// Unindexed attribute: no probe.
	j2, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.c"))
	if _, ok := est.indexProbeFor(j2.R, j2.RVar, j2.Pred, j2.LVar); ok {
		t.Error("unindexed attribute reported a probe")
	}
	// Multi-pair predicate: the covered pair is found even when it is not
	// first, and HasIndexProbe sees through the tree.
	j3, _ := b.Join(algebra.JoinInner, x, z, "x", "z", tmql.MustParse("x.b = z.c AND x.b = z.d"))
	pr3, ok := est.indexProbeFor(j3.R, j3.RVar, j3.Pred, j3.LVar)
	if !ok || len(pr3.Pairs) != 1 || pr3.Pairs[0] != 1 {
		t.Errorf("multi-pair probe = %+v, %v (want pair 1)", pr3, ok)
	}
	if !est.HasIndexProbe(j3) || est.HasIndexProbe(j2) {
		t.Error("HasIndexProbe disagrees with indexProbeFor")
	}
	// A filtered (non-scan) right operand is not probeable.
	zf, _ := b.Select(z, "z", tmql.MustParse("z.c = 1"))
	j4, _ := b.Join(algebra.JoinSemi, x, zf, "x", "z", tmql.MustParse("x.b = z.d"))
	if _, ok := est.indexProbeFor(j4.R, j4.RVar, j4.Pred, j4.LVar); ok {
		t.Error("filtered right operand reported a probe")
	}
}

// TestIndexJoinCheaperThanHash pins the cost intuition that makes the
// optimizer pick idxjoin: the persistent index removes the right-input
// drain and build pass, so the idxjoin estimate is strictly below hash.
func TestIndexJoinCheaperThanHash(t *testing.T) {
	est, b, _, _ := indexEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	semi, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	hash := est.EstimatePhysical(semi, ImplHash)
	idx := est.EstimatePhysical(semi, ImplIndex)
	if idx.Work >= hash.Work {
		t.Errorf("idxjoin %v should be cheaper than hash %v", idx, hash)
	}
	if idx.Rows != hash.Rows {
		t.Errorf("impl choice changed the cardinality estimate: %v vs %v", idx, hash)
	}
	// Without a usable index the idxjoin family costs as its auto fallback.
	semiC, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.c"))
	if got, want := est.EstimatePhysical(semiC, ImplIndex), est.EstimatePhysical(semiC, ImplHash); got != want {
		t.Errorf("fallback cost %v differs from hash %v", got, want)
	}
	nj, _ := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d"), nil, "s")
	if ih, hh := est.EstimatePhysical(nj, ImplIndex), est.EstimatePhysical(nj, ImplHash); ih.Work >= hh.Work {
		t.Errorf("index nest join %v should be cheaper than hash %v", ih, hh)
	}
}

// TestChooseEnumeratesIdxJoin: the idxjoin family joins the enumeration
// exactly when a live index can serve the plan, and wins on cost.
func TestChooseEnumeratesIdxJoin(t *testing.T) {
	est, b, _, _ := indexEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	semi, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	best, all, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: semi}}, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Joins != ImplIndex {
		t.Errorf("chose %s, want idxjoin; candidates: %v", best.Joins, all)
	}
	seen := false
	for _, c := range all {
		if c.Joins == ImplIndex {
			seen = true
			if c.Infeasible != "" {
				t.Errorf("idxjoin candidate marked infeasible: %s", c.Infeasible)
			}
		}
	}
	if !seen {
		t.Fatal("no idxjoin candidate enumerated")
	}
	// Without an index the family stays out of the enumeration.
	semiC, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.c"))
	_, all2, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: semiC}}, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range all2 {
		if c.Joins == ImplIndex {
			t.Errorf("idxjoin enumerated without a usable index: %v", c)
		}
	}
}

// TestCompileIndexJoinExecutes compiles the idxjoin family and checks the
// operators produce exactly the hash family's results — with the fallback
// engaging on the non-indexable operator.
func TestCompileIndexJoinExecutes(t *testing.T) {
	_, b, db, _ := indexEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	for _, tc := range []struct {
		name string
		mk   func() algebra.Plan
	}{
		{"semi", func() algebra.Plan {
			j, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
			return j
		}},
		{"anti", func() algebra.Plan {
			j, _ := b.Join(algebra.JoinAnti, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
			return j
		}},
		{"inner", func() algebra.Plan {
			j, _ := b.Join(algebra.JoinInner, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
			return j
		}},
		{"outer", func() algebra.Plan {
			j, _ := b.Join(algebra.JoinLeftOuter, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
			return j
		}},
		{"nest", func() algebra.Plan {
			j, _ := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d"), nil, "s")
			return j
		}},
		{"nest-residual", func() algebra.Plan {
			j, _ := b.NestJoin(x, z, "x", "z", tmql.MustParse("x.b = z.d AND z.c > 1"), nil, "s")
			return j
		}},
		{"fallback-no-index", func() algebra.Plan {
			j, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.c"))
			return j
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			plan := tc.mk()
			run := func(impl JoinImpl) value.Value {
				it, err := New(exec.NewCtx(db), Options{Joins: impl}).Compile(plan)
				if err != nil {
					t.Fatal(err)
				}
				v, err := exec.Collect(it)
				if err != nil {
					t.Fatal(err)
				}
				return v
			}
			idx, hash := run(ImplIndex), run(ImplHash)
			if value.Key(idx) != value.Key(hash) {
				t.Errorf("idxjoin result not byte-identical to hash (idx %d rows, hash %d rows)",
					idx.Len(), hash.Len())
			}
		})
	}
}

// TestExplainRendersIdxOperators: the estimator-aware physical rendering
// names index-served operators and their index.
func TestExplainRendersIdxOperators(t *testing.T) {
	est, b, _, _ := indexEnv(t)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	semi, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	out := est.ExplainPhysicalPar(semi, ImplIndex, 1)
	if !strings.Contains(out, "IdxSemiJoin") || !strings.Contains(out, "using Z(d)") {
		t.Errorf("index operator not rendered:\n%s", out)
	}
	if Parallelizable(semi, ImplIndex) {
		t.Error("idxjoin plans must report serial execution")
	}
}
