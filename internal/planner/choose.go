package planner

import (
	"fmt"
	"strings"

	"tmdb/internal/algebra"
	"tmdb/internal/tmql"
)

// Cost-based physical planning: the engine translates the query once per
// candidate unnesting strategy, and Choose enumerates those plans × the
// physical join families, estimates each feasible combination, and returns
// the cheapest. This replaces the seed behavior where the caller had to fix
// Options.Strategy and Options.Joins by hand.

// StrategyPlan is one strategy's translation of a query, labeled by the
// strategy name (the planner stays agnostic of the core package to keep the
// import graph acyclic).
type StrategyPlan struct {
	Strategy string
	Plan     algebra.Plan
}

// Candidate is one strategy × join-implementation combination considered by
// Choose.
type Candidate struct {
	Strategy string
	Joins    JoinImpl
	Plan     algebra.Plan
	Cost     Cost
	// Infeasible is non-empty when the combination cannot execute (e.g. a
	// hash family requested with no equi-key); such candidates are never
	// chosen.
	Infeasible string
	// Chosen marks the winning candidate.
	Chosen bool
}

// String renders the candidate for EXPLAIN output.
func (c Candidate) String() string {
	label := fmt.Sprintf("%-9s × %-11s", c.Strategy, c.Joins)
	switch {
	case c.Infeasible != "":
		return fmt.Sprintf("%s  infeasible: %s", label, c.Infeasible)
	case c.Chosen:
		return fmt.Sprintf("%s  cost≈%.0f  ← chosen", label, c.Cost.Work)
	default:
		return fmt.Sprintf("%s  cost≈%.0f", label, c.Cost.Work)
	}
}

// Choose picks the cheapest feasible strategy × join-implementation
// combination by estimated work. fixed restricts the join family when the
// caller set one explicitly (ImplAuto enumerates all). Plans without
// join-family operators collapse to a single candidate per strategy, since
// the implementation choice cannot matter. The returned slice reports every
// candidate considered (for EXPLAIN); the returned pointer aliases its
// winning entry.
func (e *Estimator) Choose(plans []StrategyPlan, fixed JoinImpl) (*Candidate, []Candidate, error) {
	if len(plans) == 0 {
		return nil, nil, fmt.Errorf("planner: no candidate plans to choose from")
	}
	impls := []JoinImpl{ImplNestedLoop, ImplHash, ImplMerge}
	if fixed != ImplAuto {
		impls = []JoinImpl{fixed}
	}
	var all []Candidate
	best := -1
	for _, sp := range plans {
		implsHere := impls
		if !hasJoinFamily(sp.Plan) {
			implsHere = []JoinImpl{ImplAuto}
		}
		for _, impl := range implsHere {
			c := Candidate{Strategy: sp.Strategy, Joins: impl, Plan: sp.Plan}
			if reason := ImplInfeasible(sp.Plan, impl); reason != "" {
				c.Infeasible = reason
				all = append(all, c)
				continue
			}
			c.Cost = e.EstimatePhysical(sp.Plan, impl)
			all = append(all, c)
			if best < 0 || c.Cost.Work < all[best].Cost.Work {
				best = len(all) - 1
			}
		}
	}
	if best < 0 {
		return nil, all, fmt.Errorf("planner: no feasible strategy × join combination (joins=%s)", fixed)
	}
	all[best].Chosen = true
	return &all[best], all, nil
}

// ImplInfeasible reports why a plan cannot be compiled under the given join
// implementation ("" when it can): the hash and sort-merge families require
// an extractable equi-key on every join-family operator, mirroring the
// errors Compile would raise.
func ImplInfeasible(p algebra.Plan, impl JoinImpl) string {
	if impl != ImplHash && impl != ImplMerge {
		return ""
	}
	var reason string
	var walk func(n algebra.Plan)
	walk = func(n algebra.Plan) {
		if reason != "" {
			return
		}
		switch j := n.(type) {
		case *algebra.Join:
			if lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar); len(lk) == 0 {
				reason = fmt.Sprintf("no equi-key in %s", tmql.Format(j.Pred))
				return
			}
		case *algebra.NestJoin:
			if lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar); len(lk) == 0 {
				reason = fmt.Sprintf("no equi-key in %s", tmql.Format(j.Pred))
				return
			}
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(p)
	return reason
}

// hasJoinFamily reports whether the plan contains any join-family operator,
// i.e. whether the join-implementation choice can affect execution.
func hasJoinFamily(p algebra.Plan) bool {
	switch p.(type) {
	case *algebra.Join, *algebra.NestJoin:
		return true
	}
	for _, ch := range p.Children() {
		if hasJoinFamily(ch) {
			return true
		}
	}
	return false
}

// ExplainPhysical renders the plan as the physical operator tree the given
// implementation choice compiles to, annotated with per-node estimated rows
// and cost — the body of the engine's EXPLAIN.
func (e *Estimator) ExplainPhysical(p algebra.Plan, impl JoinImpl) string {
	var b strings.Builder
	var walk func(n algebra.Plan, depth int)
	walk = func(n algebra.Plan, depth int) {
		c := e.EstimatePhysical(n, impl)
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s  (%s)\n", PhysicalDescribe(n, impl), c)
		for _, ch := range n.Children() {
			walk(ch, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}

// PhysicalDescribe names the physical operator a logical node compiles to
// under the given implementation choice, matching the exec package's
// operator names (NLJoin, HashSemiJoin, MergeNestJoin, …). Non-join nodes
// keep their logical description.
func PhysicalDescribe(n algebra.Plan, impl JoinImpl) string {
	switch j := n.(type) {
	case *algebra.Join:
		lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar)
		eff := effectiveJoinImpl(impl, len(lk) > 0)
		if eff == ImplMerge {
			eff = ImplHash // flat joins have no merge variant; Compile uses hash
		}
		return implPrefix(eff) + j.Describe()
	case *algebra.NestJoin:
		lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar)
		return implPrefix(effectiveJoinImpl(impl, len(lk) > 0)) + j.Describe()
	}
	return n.Describe()
}

func effectiveJoinImpl(impl JoinImpl, hashable bool) JoinImpl {
	if !hashable {
		return ImplNestedLoop
	}
	if impl == ImplAuto {
		return ImplHash
	}
	return impl
}

func implPrefix(impl JoinImpl) string {
	switch impl {
	case ImplNestedLoop:
		return "NL"
	case ImplHash:
		return "Hash"
	case ImplMerge:
		return "Merge"
	}
	return ""
}
