package planner

import (
	"fmt"
	"strings"

	"tmdb/internal/algebra"
	"tmdb/internal/exec"
	"tmdb/internal/tmql"
)

// Cost-based physical planning: the engine translates the query once per
// candidate unnesting strategy, Alternatives expands each translation into
// its logical alternatives (as translated, §6-rewritten, reordered joins),
// and Choose enumerates those plans × the physical join families × the
// parallelism degrees, estimates each feasible combination, and returns the
// cheapest. This replaces the seed behavior where the caller had to fix
// Options.Strategy and Options.Joins by hand and Options.Rewrite was a
// pre-planning toggle the optimizer could not weigh.

// StrategyPlan is one logical candidate plan: a strategy's translation of a
// query, optionally refined into a labeled logical alternative (the planner
// stays agnostic of the core package to keep the import graph acyclic). An
// empty Alt means AltBase, the translation as produced.
type StrategyPlan struct {
	Strategy string
	// Alt labels the logical alternative this plan embodies: AltBase,
	// AltRewrite, or a join-order label ("order:(x (y z))").
	Alt  string
	Plan algebra.Plan
}

// Candidate is one logical alternative × join-implementation × access-path
// × parallelism combination considered by Choose.
type Candidate struct {
	Strategy string
	// Alt is the logical-alternative label (AltBase when the strategy's
	// translation ran unmodified).
	Alt   string
	Joins JoinImpl
	// Access is the access path leaf selections read through (AccessScan
	// unless an index-scan variant was enumerated).
	Access AccessPath
	// Par is the partitioned-execution degree this candidate was costed at
	// (1 = serial).
	Par int
	// Batch is the vectorized batch size this candidate was costed at (0 =
	// row-at-a-time execution).
	Batch int
	Plan  algebra.Plan
	Cost  Cost
	// Infeasible is non-empty when the combination cannot execute (e.g. a
	// hash family requested with no equi-key); such candidates are never
	// chosen.
	Infeasible string
	// Chosen marks the winning candidate.
	Chosen bool
}

// String renders the candidate as one row of EXPLAIN's candidate table:
// strategy, logical alternative (the "rewrite" column), join family with
// degree and access path, and estimated cost.
func (c Candidate) String() string {
	joins := c.Joins.String()
	if c.Par > 1 {
		joins = fmt.Sprintf("%s×%d", joins, c.Par)
	}
	if c.Access == AccessIndex {
		joins += "+idxscan"
	}
	if c.Batch > 0 {
		joins += fmt.Sprintf("+b%d", c.Batch)
	}
	alt := c.Alt
	if alt == "" {
		alt = AltBase
	}
	label := fmt.Sprintf("%-9s %-16s × %-11s", c.Strategy, alt, joins)
	switch {
	case c.Infeasible != "":
		return fmt.Sprintf("%s  infeasible: %s", label, c.Infeasible)
	case c.Chosen:
		return fmt.Sprintf("%s  cost≈%.0f  ← chosen", label, c.Cost.Work)
	default:
		return fmt.Sprintf("%s  cost≈%.0f", label, c.Cost.Work)
	}
}

// Choose picks the cheapest feasible strategy × join-implementation ×
// parallelism combination by estimated work. fixed restricts the join family
// when the caller set one explicitly (ImplAuto enumerates all); par is the
// maximum partitioned-execution degree — combinations that compile to
// partitioned operators are additionally costed at that degree, so EXPLAIN
// shows whether parallelism pays and the winner carries the chosen degree.
// Plans without join-family operators collapse to a single candidate per
// strategy, since the implementation choice cannot matter. The returned
// slice reports every candidate considered (for EXPLAIN); the returned
// pointer aliases its winning entry.
func (e *Estimator) Choose(plans []StrategyPlan, fixed JoinImpl, par int) (*Candidate, []Candidate, error) {
	return e.ChooseAccess(plans, fixed, par, AccessAuto)
}

// ChooseAccess is Choose with an access-path pin: AccessAuto enumerates the
// full-scan variant of every combination plus an index-scan variant for
// plans where a live index can serve a selection; AccessScan and AccessIndex
// restrict the enumeration to that path (AccessIndex still falls back to
// scans per selection at compile time, exactly as ImplIndex falls back per
// join operator).
func (e *Estimator) ChooseAccess(plans []StrategyPlan, fixed JoinImpl, par int, access AccessPath) (*Candidate, []Candidate, error) {
	return e.ChooseExec(plans, fixed, par, access, -1)
}

// ChooseExec is ChooseAccess with a batch-size pin, the full physical
// enumeration the engine uses: batch < 0 restricts the enumeration to
// row-at-a-time execution (the seed behavior ChooseAccess preserves), batch =
// 0 enumerates a vectorized variant at exec.DefaultBatchSize alongside every
// row-at-a-time combination, and batch > 0 pins every candidate to vectorized
// execution at that size (clamped to exec.MaxBatchSize). Batch size is
// orthogonal to the other physical dimensions — every strategy × alternative
// × join family × degree × access combination is costed at every enumerated
// batch size.
func (e *Estimator) ChooseExec(plans []StrategyPlan, fixed JoinImpl, par int, access AccessPath, batch int) (*Candidate, []Candidate, error) {
	if len(plans) == 0 {
		return nil, nil, fmt.Errorf("planner: no candidate plans to choose from")
	}
	batches := []int{0}
	switch {
	case batch == 0:
		batches = []int{0, exec.DefaultBatchSize}
	case batch > 0:
		batches = []int{exec.NormalizeBatchSize(batch)}
	}
	impls := []JoinImpl{ImplNestedLoop, ImplHash, ImplMerge}
	if fixed != ImplAuto {
		impls = []JoinImpl{fixed}
	}
	var all []Candidate
	best := -1
	for _, sp := range plans {
		implsHere := impls
		if !hasJoinFamily(sp.Plan) {
			implsHere = []JoinImpl{ImplAuto}
		} else if fixed == ImplAuto && e.HasIndexProbe(sp.Plan) {
			// A live persistent index can serve at least one join of this
			// plan: the idxjoin family joins the enumeration (it skips the
			// right-input drain and build pass where the index applies and
			// falls back to the auto mapping elsewhere).
			implsHere = append(append([]JoinImpl{}, implsHere...), ImplIndex)
		}
		accesses := []AccessPath{AccessScan}
		switch access {
		case AccessAuto:
			if e.HasIndexScan(sp.Plan) {
				accesses = append(accesses, AccessIndex)
			}
		case AccessIndex:
			accesses = []AccessPath{AccessIndex}
		}
		alt := sp.Alt
		if alt == "" {
			alt = AltBase
		}
		for _, impl := range implsHere {
			// Feasibility does not depend on degree or access path: report an
			// infeasible combination once, not per degree.
			if reason := ImplInfeasible(sp.Plan, impl); reason != "" {
				all = append(all, Candidate{
					Strategy: sp.Strategy, Alt: alt, Joins: impl, Access: AccessScan,
					Par: 1, Plan: sp.Plan, Infeasible: reason,
				})
				continue
			}
			degrees := []int{1}
			if par > 1 && Parallelizable(sp.Plan, impl) {
				degrees = append(degrees, par)
			}
			for _, deg := range degrees {
				for _, acc := range accesses {
					for _, bsz := range batches {
						c := Candidate{Strategy: sp.Strategy, Alt: alt, Joins: impl, Access: acc, Par: deg, Batch: bsz, Plan: sp.Plan}
						c.Cost = e.EstimateExec(sp.Plan, impl, deg, acc, bsz)
						all = append(all, c)
						if best < 0 || c.Cost.Work < all[best].Cost.Work {
							best = len(all) - 1
						}
					}
				}
			}
		}
	}
	if best < 0 {
		return nil, all, fmt.Errorf("planner: no feasible strategy × join combination (joins=%s)", fixed)
	}
	all[best].Chosen = true
	return &all[best], all, nil
}

// Parallelizable reports whether the plan contains a join-family operator
// that the given implementation choice would compile to a partitioned
// parallel operator at degrees >= 2. The idxjoin family is deliberately
// serial: index probes have no build pass to partition, so ImplIndex plans
// report false and run at degree 1. The decision reuses the same
// implementation-resolution rules Compile applies — effectiveJoinImpl plus
// the flat-join merge→hash lowering — so the chooser, the EXPLAIN renderer,
// and compilation cannot drift apart. The engine uses it to report an
// honest Result.Parallelism for fixed-strategy plans.
func Parallelizable(p algebra.Plan, impl JoinImpl) bool {
	switch j := p.(type) {
	case *algebra.Join:
		lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar)
		eff := effectiveJoinImpl(impl, len(lk) > 0)
		if eff == ImplMerge {
			eff = ImplHash // flat joins have no merge variant; Compile uses hash
		}
		if eff == ImplHash {
			return true
		}
	case *algebra.NestJoin:
		lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar)
		if effectiveJoinImpl(impl, len(lk) > 0) == ImplHash {
			return true
		}
	}
	for _, ch := range p.Children() {
		if Parallelizable(ch, impl) {
			return true
		}
	}
	return false
}

// ImplInfeasible reports why a plan cannot be compiled under the given join
// implementation ("" when it can): the hash and sort-merge families require
// an extractable equi-key on every join-family operator, mirroring the
// errors Compile would raise. The idxjoin family is always feasible — an
// operator without a usable index falls back to the auto mapping.
func ImplInfeasible(p algebra.Plan, impl JoinImpl) string {
	if impl != ImplHash && impl != ImplMerge {
		return ""
	}
	var reason string
	var walk func(n algebra.Plan)
	walk = func(n algebra.Plan) {
		if reason != "" {
			return
		}
		switch j := n.(type) {
		case *algebra.Join:
			if lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar); len(lk) == 0 {
				reason = fmt.Sprintf("no equi-key in %s", tmql.Format(j.Pred))
				return
			}
		case *algebra.NestJoin:
			if lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar); len(lk) == 0 {
				reason = fmt.Sprintf("no equi-key in %s", tmql.Format(j.Pred))
				return
			}
		}
		for _, ch := range n.Children() {
			walk(ch)
		}
	}
	walk(p)
	return reason
}

// hasJoinFamily reports whether the plan contains any join-family operator,
// i.e. whether the join-implementation choice can affect execution.
func hasJoinFamily(p algebra.Plan) bool {
	switch p.(type) {
	case *algebra.Join, *algebra.NestJoin:
		return true
	}
	for _, ch := range p.Children() {
		if hasJoinFamily(ch) {
			return true
		}
	}
	return false
}

// ExplainPhysical renders the plan as the physical operator tree the given
// implementation choice compiles to, annotated with per-node estimated rows
// and cost — the body of the engine's EXPLAIN. The deprecated two-argument
// form renders the serial mapping; ExplainPhysicalPar names the partitioned
// operators ("ParHashJoin[4]") at degrees >= 2, and ExplainAccess
// additionally names index-served selections ("IndexScan(X) using X(b)")
// under the idxscan access path.
func (e *Estimator) ExplainPhysical(p algebra.Plan, impl JoinImpl) string {
	return e.ExplainAccess(p, impl, 1, AccessScan)
}

// ExplainPhysicalPar is ExplainPhysical at a partitioned-execution degree.
func (e *Estimator) ExplainPhysicalPar(p algebra.Plan, impl JoinImpl, par int) string {
	return e.ExplainAccess(p, impl, par, AccessScan)
}

// ExplainAccess is the fully physical rendering: implementation choice,
// partitioned-execution degree, and access path.
func (e *Estimator) ExplainAccess(p algebra.Plan, impl JoinImpl, par int, access AccessPath) string {
	var b strings.Builder
	var walk func(n algebra.Plan, depth int)
	walk = func(n algebra.Plan, depth int) {
		c := e.EstimateAccess(n, impl, par, access)
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s  (%s)\n", e.physicalDescribeAccess(n, impl, par, access), c)
		for _, ch := range n.Children() {
			walk(ch, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}

// physicalDescribeAccess is the estimator-aware operator naming: under the
// idxjoin family it consults the index registry to render index-served
// operators as "Idx…" with the probed index (naming the auto fallback for
// the rest), and under the idxscan access path it renders index-served
// selections as "IndexScan" with the probed index and depth; everything else
// delegates to PhysicalDescribePar.
func (e *Estimator) physicalDescribeAccess(n algebra.Plan, impl JoinImpl, par int, access AccessPath) string {
	if access == AccessIndex {
		if sel, ok := n.(*algebra.Select); ok {
			if m, ok := e.findIndexScanStats(sel); ok {
				desc := fmt.Sprintf("IndexScan(%s) using %s(%s)", m.Table, m.Table, m.Name())
				if m.Depth < len(m.IndexAttrs) {
					desc += fmt.Sprintf(" prefix=%d", m.Depth)
				}
				if len(m.Points) > 1 {
					desc += fmt.Sprintf(" points=%d", len(m.Points))
				}
				if m.Residual != nil {
					desc += fmt.Sprintf(" residual[%s]", tmql.Format(m.Residual))
				}
				return desc
			}
		}
	}
	if impl != ImplIndex {
		return PhysicalDescribePar(n, impl, par)
	}
	switch j := n.(type) {
	case *algebra.Join:
		if pr, ok := e.indexProbeFor(j.R, j.RVar, j.Pred, j.LVar); ok {
			return fmt.Sprintf("Idx%s using %s(%s)", j.Describe(), pr.Table, pr.Name())
		}
	case *algebra.NestJoin:
		if pr, ok := e.indexProbeFor(j.R, j.RVar, j.Pred, j.LVar); ok {
			return fmt.Sprintf("Idx%s using %s(%s)", j.Describe(), pr.Table, pr.Name())
		}
	}
	return PhysicalDescribePar(n, ImplAuto, par)
}

// PhysicalDescribe names the physical operator a logical node compiles to
// under the given implementation choice, matching the exec package's
// operator names (NLJoin, HashSemiJoin, MergeNestJoin, …). Non-join nodes
// keep their logical description.
func PhysicalDescribe(n algebra.Plan, impl JoinImpl) string {
	return PhysicalDescribePar(n, impl, 1)
}

// PhysicalDescribePar is PhysicalDescribe at a partitioned-execution degree:
// nodes that compile to the parallel operators render as "ParHash…[degree]".
func PhysicalDescribePar(n algebra.Plan, impl JoinImpl, par int) string {
	switch j := n.(type) {
	case *algebra.Join:
		lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar)
		eff := effectiveJoinImpl(impl, len(lk) > 0)
		if eff == ImplMerge {
			eff = ImplHash // flat joins have no merge variant; Compile uses hash
		}
		return parPrefix(eff, par) + implPrefix(eff) + j.Describe() + parSuffix(eff, par)
	case *algebra.NestJoin:
		lk, _, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar)
		eff := effectiveJoinImpl(impl, len(lk) > 0)
		return parPrefix(eff, par) + implPrefix(eff) + j.Describe() + parSuffix(eff, par)
	}
	return n.Describe()
}

// parPrefix and parSuffix decorate operators that run partitioned: only the
// hash family parallelizes, at degrees >= 2.
func parPrefix(eff JoinImpl, par int) string {
	if par > 1 && eff == ImplHash {
		return "Par"
	}
	return ""
}

func parSuffix(eff JoinImpl, par int) string {
	if par > 1 && eff == ImplHash {
		return fmt.Sprintf("[%d]", par)
	}
	return ""
}

func effectiveJoinImpl(impl JoinImpl, hashable bool) JoinImpl {
	if !hashable {
		return ImplNestedLoop
	}
	if impl == ImplAuto {
		return ImplHash
	}
	return impl
}

func implPrefix(impl JoinImpl) string {
	switch impl {
	case ImplNestedLoop:
		return "NL"
	case ImplHash:
		return "Hash"
	case ImplMerge:
		return "Merge"
	}
	return ""
}
