package planner

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/exec"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
)

// Access-path selection for single-table selections. A selection whose
// input is a direct scan (possibly through further selections and the
// single-field wrapper Maps the flat-join translation introduces) and whose
// equality conjuncts compare stored attributes against plan-time constants
// can be served by a persistent index: the longest index prefix covered by
// those conjuncts is probed point-wise, uncovered conjuncts become a
// residual filter, and the base scan is never materialized. The shape test
// is shared between compilation (storage registry) and costing (statistics
// catalog), exactly like the join-side FindIndexProbe.

// AccessPath selects how leaf selections read their tables.
type AccessPath uint8

// Access-path choices.
const (
	// AccessAuto (the zero value) lets the cost-based enumeration decide:
	// Choose costs both full-scan and index-scan variants when an index
	// matches. At compile time it behaves like AccessScan.
	AccessAuto AccessPath = iota
	// AccessScan forces full scans (the pre-index behavior).
	AccessScan
	// AccessIndex compiles matching selections to exec.IndexScan, falling
	// back to scans where no live index matches. Shown as "idxscan" in
	// EXPLAIN.
	AccessIndex
)

// String names the access-path choice.
func (a AccessPath) String() string {
	switch a {
	case AccessAuto:
		return "auto"
	case AccessScan:
		return "scan"
	case AccessIndex:
		return "idxscan"
	}
	return "access?"
}

// IndexScanMatch describes how a selection node can be answered from a
// persistent index.
type IndexScanMatch struct {
	// Table is the scanned extension at the bottom of the selection's input
	// chain.
	Table string
	// IndexAttrs is the full ordered attribute list of the chosen index.
	IndexAttrs []string
	// Depth is the covered prefix length.
	Depth int
	// Keys holds the constant key expressions, one per covered index
	// attribute in index order — one point lookup.
	Keys []tmql.Expr
	// Residual is the conjunction of the selection's uncovered conjuncts
	// (nil when the index covers the whole predicate).
	Residual tmql.Expr
}

// Name returns the index's canonical registry name.
func (m IndexScanMatch) Name() string { return storage.IndexName(m.IndexAttrs) }

// AccessChain unwraps a selection input down to its scan leaf, accepting
// only the shapes the index scan can reproduce above the bucket rows:
// further selections and the single-field wrapper Maps resolveScanAttr
// already sees through. It returns the intermediate nodes top-down (empty
// for a direct σ-over-scan) and the scan.
func AccessChain(p algebra.Plan) (chain []algebra.Plan, scan *algebra.Scan, ok bool) {
	for {
		switch n := p.(type) {
		case *algebra.Scan:
			return chain, n, true
		case *algebra.Select:
			chain = append(chain, n)
			p = n.In
		case *algebra.Map:
			if wrapperLabel(n) == "" {
				return nil, nil, false
			}
			chain = append(chain, n)
			p = n.In
		default:
			return nil, nil, false
		}
	}
}

// wrapperLabel reports the label of a single-field wrapper Map ((w = var))
// — the shape the flat-join translation builds for every FROM source — or
// "" when the Map is anything else.
func wrapperLabel(m *algebra.Map) string {
	cons, ok := m.Out.(*tmql.TupleCons)
	if !ok || len(cons.Fields) != 1 {
		return ""
	}
	if v, ok := cons.Fields[0].E.(*tmql.Var); ok && v.Name == m.Var {
		return cons.Fields[0].Label
	}
	return ""
}

// FindIndexScan reports how the selection n can be served by a persistent
// index: its input must chain down to a scan, and its equality conjuncts of
// the form attr = const (either orientation; the attribute resolving through
// the chain to a stored attribute of the scanned table, the other side free
// of variables) must cover a non-empty prefix of some live index. The
// longest covered prefix wins, ties prefer the shorter index — the same
// preference FindIndexProbe applies on the join side.
func FindIndexScan(n *algebra.Select, indexesOf func(table string) [][]string) (IndexScanMatch, bool) {
	_, scan, ok := AccessChain(n.In)
	if !ok {
		return IndexScanMatch{}, false
	}
	conjuncts := tmql.SplitAnd(n.Pred)
	// Map each stored attribute with an attr = const conjunct to (constant
	// expression, conjunct position); first conjunct per attribute wins.
	type eqConst struct {
		key tmql.Expr
		pos int
	}
	eq := make(map[string]eqConst)
	for i, c := range conjuncts {
		b, ok := c.(*tmql.Binary)
		if !ok || b.Op != tmql.OpEq {
			continue
		}
		for _, side := range [2][2]tmql.Expr{{b.L, b.R}, {b.R, b.L}} {
			attrE, constE := side[0], side[1]
			if len(tmql.FreeVars(constE)) != 0 {
				continue
			}
			tab, attr, ok := resolveScanAttr(n.In, n.Var, attrE)
			if !ok || tab != scan.Table {
				continue
			}
			if _, dup := eq[attr]; !dup {
				eq[attr] = eqConst{key: constE, pos: i}
			}
			break
		}
	}
	if len(eq) == 0 {
		return IndexScanMatch{}, false
	}
	var best IndexScanMatch
	var bestCovered []int
	for _, attrs := range indexesOf(scan.Table) {
		var keys []tmql.Expr
		var covered []int
		for _, attr := range attrs {
			c, ok := eq[attr]
			if !ok {
				break
			}
			keys = append(keys, c.key)
			covered = append(covered, c.pos)
		}
		if len(keys) == 0 {
			continue
		}
		if len(keys) > best.Depth || (len(keys) == best.Depth && len(attrs) < len(best.IndexAttrs)) {
			best = IndexScanMatch{Table: scan.Table, IndexAttrs: attrs, Depth: len(keys), Keys: keys}
			bestCovered = covered
		}
	}
	if best.Depth == 0 {
		return IndexScanMatch{}, false
	}
	isCovered := make(map[int]bool, len(bestCovered))
	for _, p := range bestCovered {
		isCovered[p] = true
	}
	var rest []tmql.Expr
	for i, c := range conjuncts {
		if !isCovered[i] {
			rest = append(rest, c)
		}
	}
	best.Residual = tmql.JoinAnd(rest)
	return best, true
}

// findIndexScanStats is the costing-side matcher, against the statistics
// catalog's index view.
func (e *Estimator) findIndexScanStats(n *algebra.Select) (IndexScanMatch, bool) {
	return FindIndexScan(n, e.statsIndexes)
}

// HasIndexScan reports whether any selection in the plan can be served by a
// live persistent index — the condition under which Choose adds the idxscan
// access path to the candidate enumeration.
func (e *Estimator) HasIndexScan(p algebra.Plan) bool {
	if sel, ok := p.(*algebra.Select); ok {
		if _, ok := e.findIndexScanStats(sel); ok {
			return true
		}
	}
	for _, ch := range p.Children() {
		if e.HasIndexScan(ch) {
			return true
		}
	}
	return false
}

// compileIndexScan compiles a matched selection to the index-backed access
// path: an IndexScan at the leaf (probing the matched prefix, applying the
// residual when the selection sits directly over the scan) with the
// intermediate chain nodes — further selections and wrapper Maps — rebuilt
// above the bucket rows.
func (p *Planner) compileIndexScan(n *algebra.Select, m IndexScanMatch) (exec.Iterator, error) {
	chain, _, ok := AccessChain(n.In)
	if !ok {
		return nil, fmt.Errorf("planner: index-scan match without an access chain on %s", n.Describe())
	}
	leaf := &exec.IndexScan{
		Ctx: p.ctx, Table: m.Table, Index: m.Name(), Depth: m.Depth,
		Points: [][]tmql.Expr{m.Keys},
	}
	var it exec.Iterator = leaf
	if len(chain) == 0 {
		// Direct σ-over-scan: the operator applies the residual itself.
		leaf.Var, leaf.Residual = n.Var, m.Residual
		return it, nil
	}
	for i := len(chain) - 1; i >= 0; i-- {
		switch c := chain[i].(type) {
		case *algebra.Select:
			it = &exec.Filter{Ctx: p.ctx, In: it, Var: c.Var, Pred: c.Pred}
		case *algebra.Map:
			it = &exec.Distinct{Ctx: p.ctx, In: &exec.MapIter{Ctx: p.ctx, In: it, Var: c.Var, Out: c.Out}}
		}
	}
	if m.Residual != nil {
		it = &exec.Filter{Ctx: p.ctx, In: it, Var: n.Var, Pred: m.Residual}
	}
	return it, nil
}
