package planner

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/eval"
	"tmdb/internal/exec"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Access-path selection for single-table selections. A selection whose
// input is a direct scan (possibly through further selections and the
// single-field wrapper Maps the flat-join translation introduces) and whose
// equality conjuncts compare stored attributes against plan-time constants
// can be served by a persistent index: the longest index prefix covered by
// those conjuncts is probed point-wise, uncovered conjuncts become a
// residual filter, and the base scan is never materialized. The shape test
// is shared between compilation (storage registry) and costing (statistics
// catalog), exactly like the join-side FindIndexProbe.

// AccessPath selects how leaf selections read their tables.
type AccessPath uint8

// Access-path choices.
const (
	// AccessAuto (the zero value) lets the cost-based enumeration decide:
	// Choose costs both full-scan and index-scan variants when an index
	// matches. At compile time it behaves like AccessScan.
	AccessAuto AccessPath = iota
	// AccessScan forces full scans (the pre-index behavior).
	AccessScan
	// AccessIndex compiles matching selections to exec.IndexScan, falling
	// back to scans where no live index matches. Shown as "idxscan" in
	// EXPLAIN.
	AccessIndex
)

// String names the access-path choice.
func (a AccessPath) String() string {
	switch a {
	case AccessAuto:
		return "auto"
	case AccessScan:
		return "scan"
	case AccessIndex:
		return "idxscan"
	}
	return "access?"
}

// IndexScanMatch describes how a selection node can be answered from a
// persistent index.
type IndexScanMatch struct {
	// Table is the scanned extension at the bottom of the selection's input
	// chain.
	Table string
	// IndexAttrs is the full ordered attribute list of the chosen index.
	IndexAttrs []string
	// Depth is the covered prefix length.
	Depth int
	// Points holds the constant key points, each a list of Depth expressions
	// in index order. A plain conjunction of equalities yields one point;
	// OR/IN-list equality disjuncts over covered attributes multiply out into
	// several (capped at maxIndexScanPoints), each addressing a disjoint
	// bucket.
	Points [][]tmql.Expr
	// Residual is the conjunction of the selection's uncovered conjuncts
	// (nil when the index covers the whole predicate).
	Residual tmql.Expr
}

// maxIndexScanPoints bounds the cartesian product of per-attribute constant
// alternatives a multi-point index scan enumerates; coverage stops extending
// the prefix before exceeding it.
const maxIndexScanPoints = 64

// Name returns the index's canonical registry name.
func (m IndexScanMatch) Name() string { return storage.IndexName(m.IndexAttrs) }

// AccessChain unwraps a selection input down to its scan leaf, accepting
// only the shapes the index scan can reproduce above the bucket rows:
// further selections and the single-field wrapper Maps resolveScanAttr
// already sees through. It returns the intermediate nodes top-down (empty
// for a direct σ-over-scan) and the scan.
func AccessChain(p algebra.Plan) (chain []algebra.Plan, scan *algebra.Scan, ok bool) {
	for {
		switch n := p.(type) {
		case *algebra.Scan:
			return chain, n, true
		case *algebra.Select:
			chain = append(chain, n)
			p = n.In
		case *algebra.Map:
			if wrapperLabel(n) == "" {
				return nil, nil, false
			}
			chain = append(chain, n)
			p = n.In
		default:
			return nil, nil, false
		}
	}
}

// wrapperLabel reports the label of a single-field wrapper Map ((w = var))
// — the shape the flat-join translation builds for every FROM source — or
// "" when the Map is anything else.
func wrapperLabel(m *algebra.Map) string {
	cons, ok := m.Out.(*tmql.TupleCons)
	if !ok || len(cons.Fields) != 1 {
		return ""
	}
	if v, ok := cons.Fields[0].E.(*tmql.Var); ok && v.Name == m.Var {
		return cons.Fields[0].Label
	}
	return ""
}

// FindIndexScan reports how the selection n can be served by a persistent
// index: its input must chain down to a scan, and its equality conjuncts —
// attr = const (either orientation; the attribute resolving through the
// chain to a stored attribute of the scanned table, the other side free of
// variables), attr IN {const, …}, or an OR of attr = const equalities over
// one attribute (constants being closed expressions the planner can evaluate
// at plan time, not just literals) — must cover a non-empty prefix of some
// live index. Multi-point
// conjuncts expand into the cartesian product of their constants, one point
// per combination. The longest covered prefix wins, ties prefer the shorter
// index — the same preference FindIndexProbe applies on the join side.
func FindIndexScan(n *algebra.Select, indexesOf func(table string) [][]string) (IndexScanMatch, bool) {
	_, scan, ok := AccessChain(n.In)
	if !ok {
		return IndexScanMatch{}, false
	}
	conjuncts := tmql.SplitAnd(n.Pred)
	// Map each stored attribute to its constant alternatives and conjunct
	// position; first conjunct per attribute wins.
	type eqConsts struct {
		keys []tmql.Expr
		pos  int
	}
	eq := make(map[string]eqConsts)
	for i, c := range conjuncts {
		attr, keys := matchEqConsts(c, n.In, n.Var, scan.Table)
		if len(keys) == 0 {
			continue
		}
		if _, dup := eq[attr]; !dup {
			eq[attr] = eqConsts{keys: keys, pos: i}
		}
	}
	if len(eq) == 0 {
		return IndexScanMatch{}, false
	}
	var best IndexScanMatch
	var bestCovered []int
	for _, attrs := range indexesOf(scan.Table) {
		var lists [][]tmql.Expr
		var covered []int
		points := 1
		for _, attr := range attrs {
			c, ok := eq[attr]
			if !ok || points*len(c.keys) > maxIndexScanPoints {
				break
			}
			points *= len(c.keys)
			lists = append(lists, c.keys)
			covered = append(covered, c.pos)
		}
		if len(lists) == 0 {
			continue
		}
		if len(lists) > best.Depth || (len(lists) == best.Depth && len(attrs) < len(best.IndexAttrs)) {
			best = IndexScanMatch{Table: scan.Table, IndexAttrs: attrs, Depth: len(lists), Points: crossPoints(lists)}
			bestCovered = covered
		}
	}
	if best.Depth == 0 {
		return IndexScanMatch{}, false
	}
	isCovered := make(map[int]bool, len(bestCovered))
	for _, p := range bestCovered {
		isCovered[p] = true
	}
	var rest []tmql.Expr
	for i, c := range conjuncts {
		if !isCovered[i] {
			rest = append(rest, c)
		}
	}
	best.Residual = tmql.JoinAnd(rest)
	return best, true
}

// matchEqConsts matches one conjunct to a stored attribute of table and its
// constant alternatives: attr = const in either orientation (one
// alternative, any closed expression), attr IN {const, …}, or an OR of
// attr = const equalities over a single attribute. Multi-constant shapes
// accept any closed constant expression — literals fast-pathed, the rest
// evaluated at plan time — deduplicated by the canonical key of their
// values, so the expanded points address pairwise-disjoint buckets and the
// concatenating exec.IndexScan never produces a row twice. No match returns
// an empty list.
func matchEqConsts(c tmql.Expr, in algebra.Plan, varName, table string) (string, []tmql.Expr) {
	b, ok := c.(*tmql.Binary)
	if !ok {
		return "", nil
	}
	switch b.Op {
	case tmql.OpEq:
		for _, side := range [2][2]tmql.Expr{{b.L, b.R}, {b.R, b.L}} {
			attrE, constE := side[0], side[1]
			if len(tmql.FreeVars(constE)) != 0 {
				continue
			}
			tab, attr, ok := resolveScanAttr(in, varName, attrE)
			if !ok || tab != table {
				continue
			}
			return attr, []tmql.Expr{constE}
		}
	case tmql.OpIn:
		set, ok := b.R.(*tmql.SetCons)
		if !ok {
			return "", nil
		}
		tab, attr, ok := resolveScanAttr(in, varName, b.L)
		if !ok || tab != table {
			return "", nil
		}
		return attr, dedupConsts(set.Elems)
	case tmql.OpOr:
		var attr string
		var consts []tmql.Expr
		for _, d := range tmql.SplitOr(c) {
			db, ok := d.(*tmql.Binary)
			if !ok || db.Op != tmql.OpEq {
				return "", nil
			}
			matched := false
			for _, side := range [2][2]tmql.Expr{{db.L, db.R}, {db.R, db.L}} {
				attrE, constE := side[0], side[1]
				if _, ok := constKey(constE); !ok {
					continue
				}
				tab, a, ok := resolveScanAttr(in, varName, attrE)
				if !ok || tab != table || (attr != "" && a != attr) {
					continue
				}
				attr, matched = a, true
				consts = append(consts, constE)
				break
			}
			if !matched {
				return "", nil
			}
		}
		return attr, dedupConsts(consts)
	}
	return "", nil
}

// constKey returns the canonical key of a closed constant expression's
// plan-time value. Literals skip the evaluator; any other expression must be
// closed (no free variables) and evaluate against no database — plan-time
// evaluation that fails (say, an extension reference) reports ok=false and
// the caller falls back to the scan path.
func constKey(e tmql.Expr) (string, bool) {
	if lit, ok := e.(*tmql.Lit); ok {
		return value.Key(lit.V), true
	}
	if len(tmql.FreeVars(e)) != 0 {
		return "", false
	}
	v, err := eval.New(nil).Eval(e)
	if err != nil {
		return "", false
	}
	return value.Key(v), true
}

// dedupConsts keeps the closed constant expressions of es deduplicated by
// the canonical key of their plan-time values; any open or unevaluable
// expression poisons the whole list. The expanded points must address
// pairwise-disjoint buckets (the concatenating exec.IndexScan never produces
// a row twice), so an alternative the planner cannot pin disqualifies the
// multi-point expansion.
func dedupConsts(es []tmql.Expr) []tmql.Expr {
	seen := make(map[string]bool, len(es))
	var out []tmql.Expr
	for _, e := range es {
		k, ok := constKey(e)
		if !ok {
			return nil
		}
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	return out
}

// crossPoints expands per-attribute constant alternatives into the cartesian
// product of key points, in index-attribute order.
func crossPoints(lists [][]tmql.Expr) [][]tmql.Expr {
	points := [][]tmql.Expr{nil}
	for _, alts := range lists {
		next := make([][]tmql.Expr, 0, len(points)*len(alts))
		for _, p := range points {
			for _, a := range alts {
				pt := make([]tmql.Expr, len(p), len(p)+1)
				copy(pt, p)
				next = append(next, append(pt, a))
			}
		}
		points = next
	}
	return points
}

// findIndexScanStats is the costing-side matcher, against the statistics
// catalog's index view.
func (e *Estimator) findIndexScanStats(n *algebra.Select) (IndexScanMatch, bool) {
	return FindIndexScan(n, e.statsIndexes)
}

// HasIndexScan reports whether any selection in the plan can be served by a
// live persistent index — the condition under which Choose adds the idxscan
// access path to the candidate enumeration.
func (e *Estimator) HasIndexScan(p algebra.Plan) bool {
	if sel, ok := p.(*algebra.Select); ok {
		if _, ok := e.findIndexScanStats(sel); ok {
			return true
		}
	}
	for _, ch := range p.Children() {
		if e.HasIndexScan(ch) {
			return true
		}
	}
	return false
}

// compileIndexScan compiles a matched selection to the index-backed access
// path: an IndexScan at the leaf (probing the matched prefix, applying the
// residual when the selection sits directly over the scan) with the
// intermediate chain nodes — further selections and wrapper Maps — rebuilt
// above the bucket rows.
func (p *Planner) compileIndexScan(n *algebra.Select, m IndexScanMatch, ix *storage.HashIndex) (exec.Iterator, error) {
	chain, _, ok := AccessChain(n.In)
	if !ok {
		return nil, fmt.Errorf("planner: index-scan match without an access chain on %s", n.Describe())
	}
	leaf := &exec.IndexScan{
		Ctx: p.ctx, Table: m.Table, Index: m.Name(), Ix: ix, Depth: m.Depth,
		Points: m.Points,
	}
	var it exec.Iterator = leaf
	if len(chain) == 0 {
		// Direct σ-over-scan: the operator applies the residual itself.
		leaf.Var, leaf.Residual = n.Var, m.Residual
		return it, nil
	}
	for i := len(chain) - 1; i >= 0; i-- {
		switch c := chain[i].(type) {
		case *algebra.Select:
			it = &exec.Filter{Ctx: p.ctx, In: it, Var: c.Var, Pred: c.Pred}
		case *algebra.Map:
			it = &exec.Distinct{Ctx: p.ctx, In: &exec.MapIter{Ctx: p.ctx, In: it, Var: c.Var, Out: c.Out}}
		}
	}
	if m.Residual != nil {
		it = &exec.Filter{Ctx: p.ctx, In: it, Var: n.Var, Pred: m.Residual}
	}
	return it, nil
}
