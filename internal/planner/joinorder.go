// Join-order search for multi-FROM blocks. The flat-join translation
// (core.translateFlatJoin) joins sources strictly in FROM order; this file
// recovers the join graph from such a plan — base relations, conjuncts, and
// the result expression, all renormalized to the original FROM variables —
// and runs a Selinger-style dynamic program over it: bushy trees by subset
// partitioning, cardinality-based pruning (only the cheapest plan per
// relation subset survives), cross products avoided while a connected split
// exists. Single-relation conjuncts are additionally pushed onto their scan
// leaf, which the FROM-order translation never did. The best bushy tree and
// the best left-deep tree are offered to Choose as logical alternatives
// labeled by their join-tree shape.
package planner

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"

	"tmdb/internal/algebra"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// maxOrderRels caps the DP: 2^n subsets with ~3^n split work is fine through
// eight relations and pathological beyond.
const maxOrderRels = 8

// joinGraph is the recovered multi-FROM block: relations scanned, conjuncts
// and result expression in FROM-variable form.
type joinGraph struct {
	rels      []joinRel
	conjuncts []tmql.Expr
	result    tmql.Expr
}

type joinRel struct {
	v     string // FROM variable, also the wrapper tuple label
	table string
}

// JoinOrders returns reordered logical alternatives for p when it is a
// flat-join chain over ≥ 2 stored extensions: the cheapest bushy tree and
// the cheapest left-deep tree under the estimator's cost model (deduplicated
// against each other; the caller dedups against the original). Plans that
// are not flat-join chains yield nil.
func (e *Estimator) JoinOrders(b *algebra.Builder, p algebra.Plan) []StrategyPlan {
	g, ok := extractJoinGraph(p)
	if !ok {
		return nil
	}
	var out []StrategyPlan
	seen := map[string]bool{}
	for _, leftDeepOnly := range []bool{false, true} {
		ent := e.searchJoinOrder(b, g, leftDeepOnly)
		if ent == nil || seen[ent.label] {
			continue
		}
		seen[ent.label] = true
		plan, err := finishJoinOrder(b, g, ent)
		if err != nil {
			continue
		}
		out = append(out, StrategyPlan{Alt: altOrderPrefix + ent.label, Plan: plan})
		if ent.leftDeep {
			break // the bushy optimum is left-deep; the second DP would repeat it
		}
	}
	return out
}

// --- extraction ---

// extractJoinGraph recognizes the flat-join translation shape
//
//	Map[res](σ[rest]?(Join(…Join(wrap(X₁), wrap(X₂))…, wrap(Xₙ))))
//
// with wrap(Xᵢ) = Map[(vᵢ = vᵢ)](Scan Xᵢ), and returns the join graph with
// every expression renormalized to the FROM variables vᵢ. ok is false for
// any other shape.
func extractJoinGraph(p algebra.Plan) (*joinGraph, bool) {
	m, ok := p.(*algebra.Map)
	if !ok {
		return nil, false
	}
	g := &joinGraph{}
	containers := map[string]bool{m.Var: true}
	var rawConjs []tmql.Expr
	body := m.In
	if s, ok := body.(*algebra.Select); ok {
		containers[s.Var] = true
		rawConjs = append(rawConjs, splitNonTrue(s.Pred)...)
		body = s.In
	}
	var walk func(n algebra.Plan) bool
	walk = func(n algebra.Plan) bool {
		if rel, ok := matchWrapper(n); ok {
			g.rels = append(g.rels, rel)
			return true
		}
		j, ok := n.(*algebra.Join)
		if !ok || j.Kind != algebra.JoinInner {
			return false
		}
		containers[j.LVar] = true
		containers[j.RVar] = true
		rawConjs = append(rawConjs, splitNonTrue(j.Pred)...)
		return walk(j.L) && walk(j.R)
	}
	if !walk(body) {
		return nil, false
	}
	if len(g.rels) < 2 || len(g.rels) > maxOrderRels {
		return nil, false
	}
	relVars := map[string]bool{}
	for _, r := range g.rels {
		if relVars[r.v] || containers[r.v] {
			return nil, false
		}
		relVars[r.v] = true
	}
	normalize := func(e tmql.Expr) (tmql.Expr, bool) {
		n := tmql.SubstFieldSel(e, func(u, l string) tmql.Expr {
			if containers[u] && relVars[l] {
				return &tmql.Var{Name: l}
			}
			return nil
		})
		for v := range tmql.FreeVars(n) {
			if !relVars[v] {
				return nil, false
			}
		}
		return n, true
	}
	for _, c := range rawConjs {
		n, ok := normalize(c)
		if !ok {
			return nil, false
		}
		g.conjuncts = append(g.conjuncts, n)
	}
	res, ok := normalize(m.Out)
	if !ok {
		return nil, false
	}
	g.result = res
	return g, true
}

// matchWrapper matches Map[(v = v)](Scan t) and returns its relation.
func matchWrapper(p algebra.Plan) (joinRel, bool) {
	m, ok := p.(*algebra.Map)
	if !ok {
		return joinRel{}, false
	}
	s, ok := m.In.(*algebra.Scan)
	if !ok {
		return joinRel{}, false
	}
	cons, ok := m.Out.(*tmql.TupleCons)
	if !ok || len(cons.Fields) != 1 || cons.Fields[0].Label != m.Var {
		return joinRel{}, false
	}
	v, ok := cons.Fields[0].E.(*tmql.Var)
	if !ok || v.Name != m.Var {
		return joinRel{}, false
	}
	return joinRel{v: m.Var, table: s.Table}, true
}

func splitNonTrue(pred tmql.Expr) []tmql.Expr {
	var out []tmql.Expr
	for _, c := range SplitConjuncts(pred) {
		if lit, ok := c.(*tmql.Lit); ok && lit.V.Kind() == value.KindBool && lit.V.AsBool() {
			continue
		}
		out = append(out, c)
	}
	return out
}

// --- search ---

// orderEntry is one DP cell: the best plan found covering a relation subset.
type orderEntry struct {
	plan  algebra.Plan
	mask  uint // relation subset
	used  uint // conjunct subset already applied
	work  float64
	label string // join-tree rendering over FROM variables
	// leftDeep tracks whether the tree is left-deep (every right operand a
	// single relation) so the dedicated left-deep search can be skipped when
	// the unrestricted optimum already qualifies.
	leftDeep bool
}

// orderBuilder carries the search state; fresh variable names are local so
// alternative labels and plan shapes are deterministic per search.
type orderBuilder struct {
	e     *Estimator
	b     *algebra.Builder
	g     *joinGraph
	fresh int
}

func (ob *orderBuilder) freshVar() string {
	ob.fresh++
	return fmt.Sprintf("jo_%d", ob.fresh)
}

// searchJoinOrder runs the subset DP and returns the best entry covering all
// relations (nil when any construction step fails to type-check, which the
// translation's invariants should preclude).
func (e *Estimator) searchJoinOrder(b *algebra.Builder, g *joinGraph, leftDeepOnly bool) *orderEntry {
	ob := &orderBuilder{e: e, b: b, g: g}
	n := len(g.rels)
	fvs := make([]uint, len(g.conjuncts))
	varBit := map[string]uint{}
	for i, r := range g.rels {
		varBit[r.v] = 1 << uint(i)
	}
	for i, c := range g.conjuncts {
		for v := range tmql.FreeVars(c) {
			fvs[i] |= varBit[v]
		}
	}
	best := make([]*orderEntry, 1<<uint(n))
	for i := range g.rels {
		ent, err := ob.leaf(i, fvs)
		if err != nil {
			return nil
		}
		best[1<<uint(i)] = ent
	}
	for mask := uint(1); mask < 1<<uint(n); mask++ {
		if bits.OnesCount(mask) < 2 {
			continue
		}
		// Two passes: connected splits only, then (if the subset has no
		// connected split at all) any split — the cross-product fallback.
		for _, requireConn := range []bool{true, false} {
			for s1 := (mask - 1) & mask; s1 > 0; s1 = (s1 - 1) & mask {
				s2 := mask &^ s1
				if best[s1] == nil || best[s2] == nil {
					continue
				}
				if leftDeepOnly && bits.OnesCount(s2) != 1 {
					continue
				}
				if requireConn && !connected(fvs, best[s1].used|best[s2].used, s1, s2, mask) {
					continue
				}
				ent, err := ob.join(best[s1], best[s2], fvs)
				if err != nil {
					continue
				}
				if best[mask] == nil || ent.work < best[mask].work {
					best[mask] = ent
				}
			}
			if best[mask] != nil {
				break
			}
		}
		if best[mask] == nil {
			return nil
		}
	}
	return best[1<<uint(n)-1]
}

// connected reports whether some unapplied conjunct spans the two sides.
func connected(fvs []uint, used uint, s1, s2, mask uint) bool {
	for i, fv := range fvs {
		if used&(1<<uint(i)) != 0 || fv == 0 {
			continue
		}
		if fv&^mask == 0 && fv&s1 != 0 && fv&s2 != 0 {
			return true
		}
	}
	return false
}

// leaf builds wrap(Xᵢ) with every single-relation conjunct pushed onto it.
func (ob *orderBuilder) leaf(i int, fvs []uint) (*orderEntry, error) {
	r := ob.g.rels[i]
	bit := uint(1) << uint(i)
	sp, err := ob.b.Scan(r.table)
	if err != nil {
		return nil, err
	}
	plan, err := ob.b.Map(sp, r.v, &tmql.TupleCons{
		Fields: []tmql.TupleField{{Label: r.v, E: &tmql.Var{Name: r.v}}},
	})
	if err != nil {
		return nil, err
	}
	ent := &orderEntry{mask: bit, label: r.v, leftDeep: true}
	var parts []tmql.Expr
	for ci, fv := range fvs {
		if fv == bit {
			ent.used |= 1 << uint(ci)
			parts = append(parts, ob.g.conjuncts[ci])
		}
	}
	var out algebra.Plan = plan
	if len(parts) > 0 {
		sv := ob.freshVar()
		pred := ob.readdress(JoinConjuncts(parts), map[string]string{r.v: sv})
		out, err = ob.b.Select(plan, sv, pred)
		if err != nil {
			return nil, err
		}
	}
	ent.plan = out
	ent.work = ob.e.Estimate(out).Work
	return ent, nil
}

// join combines two entries, applying every not-yet-used conjunct whose
// variables are covered by the union.
func (ob *orderBuilder) join(l, r *orderEntry, fvs []uint) (*orderEntry, error) {
	mask := l.mask | r.mask
	used := l.used | r.used
	lv, rv := ob.freshVar(), ob.freshVar()
	sides := map[string]string{}
	for i, rel := range ob.g.rels {
		if l.mask&(1<<uint(i)) != 0 {
			sides[rel.v] = lv
		} else if r.mask&(1<<uint(i)) != 0 {
			sides[rel.v] = rv
		}
	}
	var parts []tmql.Expr
	for ci, fv := range fvs {
		if used&(1<<uint(ci)) != 0 || fv == 0 || fv&^mask != 0 {
			continue
		}
		used |= 1 << uint(ci)
		parts = append(parts, ob.readdress(ob.g.conjuncts[ci], sides))
	}
	pred := JoinConjuncts(parts)
	if pred == nil {
		pred = &tmql.Lit{V: value.True}
	}
	jp, err := ob.b.Join(algebra.JoinInner, l.plan, r.plan, lv, rv, pred)
	if err != nil {
		return nil, err
	}
	ent := &orderEntry{
		plan: jp, mask: mask, used: used,
		label:    "(" + l.label + " " + r.label + ")",
		leftDeep: l.leftDeep && bits.OnesCount(r.mask) == 1,
	}
	ent.work = ob.e.Estimate(jp).Work
	return ent, nil
}

// readdress rewrites FROM variables to field accesses through their side's
// join variable: v becomes side.v.
func (ob *orderBuilder) readdress(e tmql.Expr, sides map[string]string) tmql.Expr {
	vars := make([]string, 0, len(sides))
	for v := range sides {
		vars = append(vars, v)
	}
	sort.Strings(vars)
	for _, v := range vars {
		e = tmql.Subst(e, v, &tmql.FieldSel{X: &tmql.Var{Name: sides[v]}, Label: v})
	}
	return e
}

// finishJoinOrder caps the winning join tree: leftover conjuncts (constants
// only — every variable-bearing conjunct is applied inside the tree) become
// a final selection, then the result expression is mapped.
func finishJoinOrder(b *algebra.Builder, g *joinGraph, ent *orderEntry) (algebra.Plan, error) {
	ob := &orderBuilder{b: b, g: g, fresh: 1000} // disjoint from search names
	plan := ent.plan
	var rest []tmql.Expr
	for ci, c := range g.conjuncts {
		if ent.used&(1<<uint(ci)) == 0 {
			rest = append(rest, c)
		}
	}
	all := map[string]string{}
	for _, r := range g.rels {
		all[r.v] = "" // filled per site below
	}
	if len(rest) > 0 {
		sv := ob.freshVar()
		for v := range all {
			all[v] = sv
		}
		pred := ob.readdress(JoinConjuncts(rest), all)
		sel, err := b.Select(plan, sv, pred)
		if err != nil {
			return nil, err
		}
		plan = sel
	}
	mv := ob.freshVar()
	for v := range all {
		all[v] = mv
	}
	res := ob.readdress(g.result, all)
	return b.Map(plan, mv, res)
}

// OrderLabel reports whether alt is a join-order alternative label and, if
// so, its tree rendering.
func OrderLabel(alt string) (string, bool) {
	if strings.HasPrefix(alt, altOrderPrefix) {
		return strings.TrimPrefix(alt, altOrderPrefix), true
	}
	return "", false
}
