package planner

import (
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/tmql"
)

// chooseEnv builds an estimator over a mid-size XYZ instance where the hash
// family clearly beats nested loops.
func chooseEnv(t *testing.T) (*Estimator, *algebra.Builder) {
	t.Helper()
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 200, NY: 800, NZ: 400, Keys: 25, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 6,
	})
	return NewEstimator(db), algebra.NewBuilder(cat)
}

func equiNestJoinPlan(t *testing.T, b *algebra.Builder) algebra.Plan {
	t.Helper()
	x, err := b.Scan("X")
	if err != nil {
		t.Fatal(err)
	}
	y, err := b.Scan("Y")
	if err != nil {
		t.Fatal(err)
	}
	nj, err := b.NestJoin(x, y, "x", "y", tmql.MustParse("x.b = y.b"), nil, "g")
	if err != nil {
		t.Fatal(err)
	}
	return nj
}

func thetaJoinPlan(t *testing.T, b *algebra.Builder) algebra.Plan {
	t.Helper()
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	j, err := b.Join(algebra.JoinInner, x, z, "x", "z", tmql.MustParse("x.b < z.d"))
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestChoosePicksHashOnEquiPlan(t *testing.T) {
	est, b := chooseEnv(t)
	plan := equiNestJoinPlan(t, b)
	best, all, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: plan}}, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Joins != ImplHash {
		t.Errorf("chose %s, want hash; candidates: %v", best.Joins, all)
	}
	if len(all) != 3 {
		t.Errorf("expected 3 join-impl candidates, got %d", len(all))
	}
	if !best.Chosen {
		t.Error("winning candidate not marked Chosen")
	}
}

func TestChoosePrefersFlatStrategyOverNaive(t *testing.T) {
	est, b := chooseEnv(t)
	plan := equiNestJoinPlan(t, b)
	naive, err := b.EvalSet(tmql.MustParse("SELECT x FROM X x WHERE x.b IN SELECT y.b FROM Y y WHERE x.b = y.b"))
	if err != nil {
		t.Fatal(err)
	}
	best, _, err := est.Choose([]StrategyPlan{
		{Strategy: "naive", Plan: naive},
		{Strategy: "nestjoin", Plan: plan},
	}, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Strategy != "nestjoin" {
		t.Errorf("chose %s; naive nested-loop evaluation must cost more than flattening", best.Strategy)
	}
}

func TestChooseRespectsFixedImpl(t *testing.T) {
	est, b := chooseEnv(t)
	plan := equiNestJoinPlan(t, b)
	best, all, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: plan}}, ImplMerge, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Joins != ImplMerge || len(all) != 1 {
		t.Errorf("fixed impl not respected: best=%s candidates=%d", best.Joins, len(all))
	}
}

func TestChooseInfeasibleHashOnThetaJoin(t *testing.T) {
	est, b := chooseEnv(t)
	plan := thetaJoinPlan(t, b)
	// Fixed hash on a theta join: nothing feasible.
	_, all, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: plan}}, ImplHash, 1)
	if err == nil {
		t.Fatal("expected no-feasible-candidate error")
	}
	if len(all) != 1 || all[0].Infeasible == "" {
		t.Errorf("candidates = %+v", all)
	}
	// Auto enumeration still works: nested loops carries it.
	best, _, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: plan}}, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Joins != ImplNestedLoop {
		t.Errorf("theta join must fall to nested loops, chose %s", best.Joins)
	}
}

func TestChooseCollapsesImplsWithoutJoins(t *testing.T) {
	est, b := chooseEnv(t)
	x, _ := b.Scan("X")
	sel, err := b.Select(x, "x", tmql.MustParse("x.b = 3"))
	if err != nil {
		t.Fatal(err)
	}
	_, all, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: sel}}, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 1 {
		t.Errorf("join-free plan should yield one candidate, got %d", len(all))
	}
}

func TestImplInfeasible(t *testing.T) {
	est, b := chooseEnv(t)
	_ = est
	theta := thetaJoinPlan(t, b)
	equi := equiNestJoinPlan(t, b)
	if r := ImplInfeasible(theta, ImplHash); !strings.Contains(r, "no equi-key") {
		t.Errorf("ImplInfeasible(theta, hash) = %q", r)
	}
	if r := ImplInfeasible(theta, ImplNestedLoop); r != "" {
		t.Errorf("nested loop always feasible, got %q", r)
	}
	if r := ImplInfeasible(equi, ImplMerge); r != "" {
		t.Errorf("equi plan feasible under merge, got %q", r)
	}
}

func TestExplainPhysicalNames(t *testing.T) {
	est, b := chooseEnv(t)
	plan := equiNestJoinPlan(t, b)
	hash := est.ExplainPhysical(plan, ImplHash)
	if !strings.Contains(hash, "HashNestJoin") || !strings.Contains(hash, "rows≈") {
		t.Errorf("hash rendering:\n%s", hash)
	}
	nl := est.ExplainPhysical(plan, ImplNestedLoop)
	if !strings.Contains(nl, "NLNestJoin") {
		t.Errorf("nl rendering:\n%s", nl)
	}
	merge := est.ExplainPhysical(plan, ImplMerge)
	if !strings.Contains(merge, "MergeNestJoin") {
		t.Errorf("merge rendering:\n%s", merge)
	}
	// Flat joins have no merge variant: rendered as the hash fallback.
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	j, _ := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	if out := est.ExplainPhysical(j, ImplMerge); !strings.Contains(out, "HashSemiJoin") {
		t.Errorf("flat merge fallback rendering:\n%s", out)
	}
}

func TestEvalCostScalesWithTables(t *testing.T) {
	est, b := chooseEnv(t)
	small, err := b.EvalSet(tmql.MustParse("SELECT z FROM Z z"))
	if err != nil {
		t.Fatal(err)
	}
	nested, err := b.EvalSet(tmql.MustParse(
		"SELECT x FROM X x WHERE x.b IN SELECT y.b FROM Y y WHERE x.b = y.b"))
	if err != nil {
		t.Fatal(err)
	}
	cs, cn := est.Estimate(small), est.Estimate(nested)
	if cs.Work >= cn.Work {
		t.Errorf("correlated nested query must cost more: flat=%v nested=%v", cs, cn)
	}
	// The nested estimate must reflect the |X|·|Y| blowup.
	if cn.Work < 100*400 {
		t.Errorf("nested naive estimate too low: %v", cn)
	}
}

func TestEstimatePhysicalOrdering(t *testing.T) {
	est, b := chooseEnv(t)
	plan := equiNestJoinPlan(t, b)
	nl := est.EstimatePhysical(plan, ImplNestedLoop)
	hash := est.EstimatePhysical(plan, ImplHash)
	merge := est.EstimatePhysical(plan, ImplMerge)
	if !(hash.Work < merge.Work && merge.Work < nl.Work) {
		t.Errorf("expected hash < merge < nl at this scale: hash=%v merge=%v nl=%v",
			hash.Work, merge.Work, nl.Work)
	}
	if nl.Rows != hash.Rows || nl.Rows != merge.Rows {
		t.Error("implementation choice must not change cardinality estimates")
	}
}
