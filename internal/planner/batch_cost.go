// Costing and rendering for the vectorized batch dimension. The model
// follows the B-series profiles that motivated batching: a fixed share of
// row-at-a-time work is per-row dispatch (interface calls, governor polls)
// that vectorized operators pay once per batch instead, plus a small flat
// setup cost (adapters, scratch arenas) that keeps tiny queries on the row
// engine. Row-at-a-time candidates (batch <= 0) are costed by EstimateAccess
// unchanged, so adding the dimension cannot perturb existing plan choices.

package planner

import (
	"fmt"
	"strings"

	"tmdb/internal/algebra"
	"tmdb/internal/exec"
)

const (
	// batchDispatchShare is the fraction of row-at-a-time work attributed to
	// per-row dispatch, which batching amortizes to one dispatch per batch.
	batchDispatchShare = 0.35
	// batchStartupWork is the flat per-plan cost of vectorized execution:
	// adapter layers and per-operator scratch arenas.
	batchStartupWork = 32.0
)

// BatchWorkFactor scales row-at-a-time work for execution at the given batch
// size: the dispatch share divides by the batch size, the rest is per-row
// work batching cannot remove. Factor 1 at batch <= 1.
func BatchWorkFactor(batch int) float64 {
	if batch <= 1 {
		return 1
	}
	return (1 - batchDispatchShare) + batchDispatchShare/float64(batch)
}

// EstimateExec is EstimateAccess under a batch-size choice: batch <= 0 costs
// row-at-a-time execution (identical to EstimateAccess), batch > 1 applies
// the dispatch amortization plus the flat vectorization overhead.
func (e *Estimator) EstimateExec(p algebra.Plan, impl JoinImpl, par int, access AccessPath, batch int) Cost {
	c := e.EstimateAccess(p, impl, par, access)
	if batch > 1 {
		c.Work = c.Work*BatchWorkFactor(batch) + batchStartupWork
	}
	return c
}

// batchNative reports whether CompileBatch compiles the node to a
// batch-native operator (as opposed to a row operator behind adapters), so
// EXPLAIN's [batch=N] annotations cannot drift from compilation: scans,
// non-index-served selections, and maps are always batch-native; flat joins
// are batch-native exactly when they resolve to the hash family
// (BatchHashJoin serially, ParHashJoin partitioned); nest joins only through
// the partitioned exchange (the serial HashNestJoin stays a row operator).
func (e *Estimator) batchNative(n algebra.Plan, impl JoinImpl, par int, access AccessPath) bool {
	switch j := n.(type) {
	case *algebra.Scan, *algebra.Map:
		return true
	case *algebra.Select:
		if access == AccessIndex {
			if _, ok := e.findIndexScanStats(j); ok {
				return false
			}
		}
		return true
	case *algebra.Join:
		lk, rk, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar)
		if impl == ImplIndex {
			if _, ok := FindIndexProbe(j.R, j.RVar, rk, e.statsIndexes); ok {
				return false
			}
			// No usable index: CompileBatch falls back to the auto mapping.
			return len(lk) > 0
		}
		eff := effectiveJoinImpl(impl, len(lk) > 0)
		return eff == ImplHash || eff == ImplMerge // flat-join merge lowers to hash
	case *algebra.NestJoin:
		lk, rk, _ := ExtractEquiKeys(j.Pred, j.LVar, j.RVar)
		eff := impl
		if eff == ImplIndex {
			if _, ok := FindIndexProbe(j.R, j.RVar, rk, e.statsIndexes); ok {
				return false
			}
			eff = ImplAuto
		}
		return effectiveJoinImpl(eff, len(lk) > 0) == ImplHash && par > 1
	}
	return false
}

// ExplainExec is the fully physical EXPLAIN rendering including the batch
// dimension: batch <= 0 is exactly ExplainAccess; batch > 0 annotates every
// batch-native operator with its batch size ("HashJoin[batch=1024]") and
// costs nodes through EstimateExec.
func (e *Estimator) ExplainExec(p algebra.Plan, impl JoinImpl, par int, access AccessPath, batch int) string {
	if batch <= 0 {
		return e.ExplainAccess(p, impl, par, access)
	}
	batch = exec.NormalizeBatchSize(batch)
	var b strings.Builder
	var walk func(n algebra.Plan, depth int)
	walk = func(n algebra.Plan, depth int) {
		c := e.EstimateExec(n, impl, par, access, batch)
		desc := e.physicalDescribeAccess(n, impl, par, access)
		if e.batchNative(n, impl, par, access) {
			desc += fmt.Sprintf("[batch=%d]", batch)
		}
		b.WriteString(strings.Repeat("  ", depth))
		fmt.Fprintf(&b, "%s  (%s)\n", desc, c)
		for _, ch := range n.Children() {
			walk(ch, depth+1)
		}
	}
	walk(p, 0)
	return b.String()
}
