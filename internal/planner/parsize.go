package planner

import "math"

// Statistics-driven scheduler sizing. The degree is a hint to the morsel
// scheduler (exec.Scheduler): it sizes the worker pool and the hash
// partition count together, and the scheduler's work stealing evens out
// whatever imbalance the partitioning produces at runtime. When the caller
// leaves the degree to the planner, the engine does not open the whole
// machine unconditionally: the hint is sized from the row estimates of the
// query's tables so that each partition receives a meaningful share of the
// input. Tiny inputs stop paying pool startup for morsels that would hold a
// handful of rows each (the cost model would usually reject those
// candidates anyway — sizing keeps the enumeration honest and the exchange
// lean when parallelism does win), while large inputs still fan out to the
// machine. Explicit Options.Parallelism pins bypass sizing entirely.

// parTargetRowsPerPartition is the input-row share each partition should
// receive. Below ~1k rows per worker, partition startup and channel traffic
// dominate the probe work a worker saves.
const parTargetRowsPerPartition = 1024

// PartitionDegree sizes the scheduler-degree hint for an input of the given
// estimated rows: one partition per parTargetRowsPerPartition rows (rounded
// up), at least 2 (a single partition is serial execution with exchange
// overhead), capped at maxDegree — the machine width or the caller's bound.
// A maxDegree below 2 cannot partition and passes through.
func PartitionDegree(rows float64, maxDegree int) int {
	if maxDegree < 2 {
		return maxDegree
	}
	d := 2
	if rows > 0 {
		if n := int(math.Ceil(rows / parTargetRowsPerPartition)); n > d {
			d = n
		}
	}
	if d > maxDegree {
		d = maxDegree
	}
	return d
}
