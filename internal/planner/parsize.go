package planner

import "math"

// Statistics-driven partition sizing. When the caller leaves the
// partitioned-execution degree to the planner, the engine no longer opens
// the whole machine unconditionally: the degree is sized from the row
// estimates of the query's tables so that each partition of a parallel hash
// operator receives a meaningful share of the input. Tiny inputs stop
// paying per-worker startup for partitions that would hold a handful of
// rows each (the cost model would usually reject those candidates anyway —
// sizing keeps the enumeration honest and the exchange lean when
// parallelism does win), while large inputs still fan out to the machine.
// Explicit Options.Parallelism pins bypass sizing entirely.

// parTargetRowsPerPartition is the input-row share each partition should
// receive. Below ~1k rows per worker, partition startup and channel traffic
// dominate the probe work a worker saves.
const parTargetRowsPerPartition = 1024

// PartitionDegree sizes the partitioned-execution degree for an input of
// the given estimated rows: one partition per parTargetRowsPerPartition
// rows (rounded up), at least 2 (a single partition is serial execution
// with exchange overhead), capped at maxDegree — the machine width or the
// caller's bound. A maxDegree below 2 cannot partition and passes through.
func PartitionDegree(rows float64, maxDegree int) int {
	if maxDegree < 2 {
		return maxDegree
	}
	d := 2
	if rows > 0 {
		if n := int(math.Ceil(rows / parTargetRowsPerPartition)); n > d {
			d = n
		}
	}
	if d > maxDegree {
		d = maxDegree
	}
	return d
}
