// Logical-alternative generation: the front half of the unified optimizer.
// The engine translates a query once per unnesting strategy; Alternatives
// expands each translation into its peer logical candidates — the plan as
// translated, its §6-rewritten form, and (for multi-FROM flat-join blocks)
// the join orders found by the join-order search — so Choose can weigh
// nested-vs-flattened forms, rewrites, join orders, physical families, and
// parallelism degrees on one cost scale. This replaces the seed design where
// the §6 rules ran as an engine pre-planning pass gated by Options.Rewrite:
// the toggle survives only as a compatibility override that pins the rewrite
// alternative (see PinAlternatives).
package planner

import (
	"fmt"

	"tmdb/internal/algebra"
)

// Logical-alternative labels. Join-order alternatives use "order:" followed
// by the join tree over the FROM variables, e.g. "order:((z y) x)".
const (
	// AltBase is the strategy's translation as produced.
	AltBase = "base"
	// AltRewrite is the §6 rewrite fixpoint of the translation.
	AltRewrite = "rewrite"
	// altOrderPrefix prefixes join-order alternative labels.
	altOrderPrefix = "order:"
)

// Alternatives expands strategy translations into logical alternatives:
// every input plan (labeled AltBase), its §6 rewrite when any rule fires
// (AltRewrite), and reordered join trees for flat multi-FROM chains
// ("order:…"). Structural duplicates are dropped, so the slice enumerates
// genuinely distinct plans; input order is preserved (ties in Choose resolve
// to the earliest candidate, keeping the pre-alternative behavior stable).
func (e *Estimator) Alternatives(b *algebra.Builder, sps []StrategyPlan) []StrategyPlan {
	var out []StrategyPlan
	seen := make(map[string]bool)
	add := func(sp StrategyPlan) {
		fp := sp.Strategy + "\x00" + algebra.Explain(sp.Plan)
		if seen[fp] {
			return
		}
		seen[fp] = true
		out = append(out, sp)
	}
	for _, sp := range sps {
		base := sp
		if base.Alt == "" {
			base.Alt = AltBase
		}
		add(base)
		if rw, err := algebra.Optimize(b, sp.Plan); err == nil {
			add(StrategyPlan{Strategy: sp.Strategy, Alt: AltRewrite, Plan: rw})
		}
		for _, ord := range e.JoinOrders(b, sp.Plan) {
			add(StrategyPlan{Strategy: sp.Strategy, Alt: ord.Alt, Plan: ord.Plan})
		}
	}
	return out
}

// PinAlternatives restricts the generated alternatives to the pinned label
// (the compatibility override behind Options.Rewrite and the conformance
// harness's per-alternative runs). Pinning AltRewrite keeps, per strategy,
// the rewrite when one fired and that strategy's base otherwise — exactly
// the historical Rewrite=true behavior, where a no-op fixpoint left the
// translation in place and the strategy stayed in the running. Pinning any
// other absent label is an error.
func PinAlternatives(alts []StrategyPlan, pin string) ([]StrategyPlan, error) {
	if pin == "" {
		return alts, nil
	}
	var kept []StrategyPlan
	if pin == AltRewrite {
		hasRewrite := map[string]bool{}
		for _, a := range alts {
			if a.Alt == AltRewrite {
				hasRewrite[a.Strategy] = true
			}
		}
		for _, a := range alts {
			if a.Alt == AltRewrite || (a.Alt == AltBase && !hasRewrite[a.Strategy]) {
				kept = append(kept, a)
			}
		}
	} else {
		for _, a := range alts {
			if a.Alt == pin {
				kept = append(kept, a)
			}
		}
	}
	if len(kept) > 0 {
		return kept, nil
	}
	return nil, fmt.Errorf("planner: no candidate matches pinned alternative %q", pin)
}
