package planner

import (
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/datagen"
	"tmdb/internal/exec"
	"tmdb/internal/tmql"
)

// TestCompileParallelOperators pins the physical mapping of the Parallelism
// knob: at degree >= 2 hash joins and hash nest joins compile to their
// partitioned forms, nested-loop and merge nest joins stay serial, and
// degree <= 1 changes nothing.
func TestCompileParallelOperators(t *testing.T) {
	_, b := chooseEnv(t)
	ctx := exec.NewCtx(nil)
	nj := equiNestJoinPlan(t, b)
	x, _ := b.Scan("X")
	z, _ := b.Scan("Z")
	fj, err := b.Join(algebra.JoinSemi, x, z, "x", "z", tmql.MustParse("x.b = z.d"))
	if err != nil {
		t.Fatal(err)
	}

	it, err := New(ctx, Options{Joins: ImplHash, Parallelism: 4}).Compile(fj)
	if err != nil {
		t.Fatal(err)
	}
	if pj, ok := it.(*exec.ParHashJoin); !ok {
		t.Errorf("flat join at par=4 compiled to %T, want *exec.ParHashJoin", it)
	} else if pj.Degree != 4 {
		t.Errorf("ParHashJoin degree = %d, want 4", pj.Degree)
	}

	it, err = New(ctx, Options{Joins: ImplHash, Parallelism: 4}).Compile(nj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*exec.ParHashNestJoin); !ok {
		t.Errorf("nest join at par=4 compiled to %T, want *exec.ParHashNestJoin", it)
	}

	it, err = New(ctx, Options{Joins: ImplHash, Parallelism: 1}).Compile(nj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*exec.HashNestJoin); !ok {
		t.Errorf("nest join at par=1 compiled to %T, want *exec.HashNestJoin", it)
	}

	it, err = New(ctx, Options{Joins: ImplMerge, Parallelism: 4}).Compile(nj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*exec.MergeNestJoin); !ok {
		t.Errorf("merge nest join at par=4 compiled to %T, must stay serial", it)
	}

	it, err = New(ctx, Options{Joins: ImplNestedLoop, Parallelism: 4}).Compile(nj)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := it.(*exec.NLNestJoin); !ok {
		t.Errorf("nested-loop nest join at par=4 compiled to %T, must stay serial", it)
	}
}

// TestEstimateParallelCrossover pins the parallel cost model's shape: at the
// chooseEnv scale (|X|=200, |Y|=800) the partitioned hash nest join must be
// estimated cheaper than serial, while on a tiny instance the startup
// overhead must keep serial cheapest.
func TestEstimateParallelCrossover(t *testing.T) {
	est, b := chooseEnv(t)
	plan := equiNestJoinPlan(t, b)
	serial := est.EstimatePhysical(plan, ImplHash)
	par4 := est.EstimatePhysicalPar(plan, ImplHash, 4)
	if par4.Work >= serial.Work {
		t.Errorf("par=4 should beat serial at this scale: serial=%v par=%v", serial.Work, par4.Work)
	}
	if par4.Rows != serial.Rows {
		t.Error("parallelism must not change cardinality estimates")
	}

	cat, db := datagen.XYZ(datagen.Spec{
		NX: 10, NY: 20, NZ: 10, Keys: 3, DanglingFrac: 0.25, SetAttrCard: 2, Seed: 6,
	})
	tiny := NewEstimator(db)
	tb := algebra.NewBuilder(cat)
	tplan := equiNestJoinPlan(t, tb)
	tserial := tiny.EstimatePhysical(tplan, ImplHash)
	tpar := tiny.EstimatePhysicalPar(tplan, ImplHash, 8)
	if tpar.Work <= tserial.Work {
		t.Errorf("tiny input: serial must stay cheapest: serial=%v par=%v", tserial.Work, tpar.Work)
	}
}

// TestChooseEnumeratesParallelDegrees checks that Choose adds a degree-par
// candidate for partitionable combinations, picks it when it wins, and that
// the merge nest join (serial-only) is not offered a parallel degree.
func TestChooseEnumeratesParallelDegrees(t *testing.T) {
	est, b := chooseEnv(t)
	plan := equiNestJoinPlan(t, b)
	best, all, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: plan}}, ImplAuto, 4)
	if err != nil {
		t.Fatal(err)
	}
	// nl(1), hash(1), hash(4), merge(1): the merge nest join cannot partition.
	if len(all) != 4 {
		t.Errorf("expected 4 candidates, got %d: %v", len(all), all)
	}
	sawPar := false
	for _, c := range all {
		if c.Par > 1 {
			sawPar = true
			if c.Joins != ImplHash {
				t.Errorf("parallel degree offered for %s", c.Joins)
			}
		}
	}
	if !sawPar {
		t.Error("no parallel candidate enumerated")
	}
	if best.Joins != ImplHash || best.Par != 4 {
		t.Errorf("best = %s par=%d, want hash par=4 at this scale", best.Joins, best.Par)
	}
	// Serial cap: par=1 never enumerates degrees.
	_, all1, err := est.Choose([]StrategyPlan{{Strategy: "nestjoin", Plan: plan}}, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all1) != 3 {
		t.Errorf("par=1 should keep 3 candidates, got %d", len(all1))
	}
}

// TestExplainPhysicalParNames pins the parallel EXPLAIN rendering.
func TestExplainPhysicalParNames(t *testing.T) {
	est, b := chooseEnv(t)
	plan := equiNestJoinPlan(t, b)
	out := est.ExplainPhysicalPar(plan, ImplHash, 4)
	if !strings.Contains(out, "ParHashNestJoin") || !strings.Contains(out, "[4]") {
		t.Errorf("parallel rendering:\n%s", out)
	}
	serial := est.ExplainPhysicalPar(plan, ImplHash, 1)
	if strings.Contains(serial, "Par") {
		t.Errorf("serial rendering must not name parallel operators:\n%s", serial)
	}
	// Merge nest joins stay serial even at degree 4.
	if out := est.ExplainPhysicalPar(plan, ImplMerge, 4); strings.Contains(out, "Par") {
		t.Errorf("merge nest join rendering must stay serial:\n%s", out)
	}
}

// TestCandidateStringRendersDegree checks the EXPLAIN candidate table shows
// the degree a candidate was costed at.
func TestCandidateStringRendersDegree(t *testing.T) {
	c := Candidate{Strategy: "nestjoin", Joins: ImplHash, Par: 4, Cost: Cost{Work: 123}}
	if s := c.String(); !strings.Contains(s, "hash×4") {
		t.Errorf("candidate rendering = %q", s)
	}
	c1 := Candidate{Strategy: "nestjoin", Joins: ImplHash, Par: 1, Cost: Cost{Work: 123}}
	if s := c1.String(); strings.Contains(s, "×1") {
		t.Errorf("serial candidate must not render a degree: %q", s)
	}
}
