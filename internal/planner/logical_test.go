package planner

import (
	"strings"
	"testing"

	"tmdb/internal/algebra"
	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/exec"
	"tmdb/internal/schema"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// logicalEnv builds a catalog/db/translator over a mid-size XYZ instance.
func logicalEnv(t *testing.T) (*schema.Catalog, *storage.DB, *core.Translator, *Estimator) {
	t.Helper()
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 80, NY: 240, NZ: 160, Keys: 12, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 31,
	})
	return cat, db, core.NewTranslator(cat), NewEstimator(db)
}

func translate(t *testing.T, tr *core.Translator, q string, s core.Strategy) algebra.Plan {
	t.Helper()
	bound, err := tmql.NewBinder(tr.Builder().Catalog()).Bind(tmql.MustParse(q))
	if err != nil {
		t.Fatal(err)
	}
	p, err := tr.Translate(bound, s)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func runPlan(t *testing.T, db *storage.DB, p algebra.Plan) value.Value {
	t.Helper()
	it, err := New(exec.NewCtx(db), Options{}).Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	v, err := exec.Collect(it)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// TestJoinOrdersReorderAndAgree: a three-table flat join must yield
// join-order alternatives whose plans execute to the same result as the
// FROM-order translation.
func TestJoinOrdersReorderAndAgree(t *testing.T) {
	cat, db, tr, est := logicalEnv(t)
	q := `SELECT (xb = x.b, zc = z.c) FROM X x, Y y, Z z WHERE x.b = y.d AND y.b = z.d`
	base := translate(t, tr, q, core.StrategyNestJoin)
	want := runPlan(t, db, base)

	orders := est.JoinOrders(algebra.NewBuilder(cat), base)
	if len(orders) == 0 {
		t.Fatalf("no join-order alternatives for a three-table chain:\n%s", algebra.Explain(base))
	}
	for _, o := range orders {
		if _, ok := OrderLabel(o.Alt); !ok {
			t.Errorf("alternative label %q is not an order label", o.Alt)
		}
		got := runPlan(t, db, o.Plan)
		if !value.Equal(got, want) {
			t.Errorf("%s: reordered plan changed the result:\n%s", o.Alt, algebra.Explain(o.Plan))
		}
	}
}

// TestJoinOrderPushesLeafSelections: single-relation conjuncts must sit on
// their scan leaf in reordered plans (the FROM-order translation leaves
// first-source conjuncts in a top selection).
func TestJoinOrderPushesLeafSelections(t *testing.T) {
	cat, db, tr, est := logicalEnv(t)
	q := `SELECT (xb = x.b, zc = z.c) FROM X x, Z z WHERE x.b = z.d AND x.b > 3`
	base := translate(t, tr, q, core.StrategyNestJoin)
	want := runPlan(t, db, base)
	orders := est.JoinOrders(algebra.NewBuilder(cat), base)
	if len(orders) == 0 {
		t.Fatal("no alternatives")
	}
	foundLeafSelect := false
	for _, o := range orders {
		algebra.Walk(o.Plan, func(n algebra.Plan) bool {
			if s, ok := n.(*algebra.Select); ok {
				if _, ok := s.In.(*algebra.Map); ok {
					foundLeafSelect = true
				}
			}
			return true
		})
		if got := runPlan(t, db, o.Plan); !value.Equal(got, want) {
			t.Errorf("%s changed the result", o.Alt)
		}
	}
	if !foundLeafSelect {
		t.Error("no reordered plan pushed the single-relation conjunct to its leaf")
	}
}

// TestJoinOrdersNilOffShape: plans that are not flat-join chains produce no
// order alternatives.
func TestJoinOrdersNilOffShape(t *testing.T) {
	cat, _, tr, est := logicalEnv(t)
	nested := translate(t, tr,
		`SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`,
		core.StrategyNestJoin)
	if alts := est.JoinOrders(algebra.NewBuilder(cat), nested); len(alts) != 0 {
		t.Errorf("semijoin plan yielded order alternatives: %v", alts)
	}
}

// TestAlternativesLabelsAndDedup: the generator labels the translation
// AltBase, emits AltRewrite only when a rule fires, and dedups structural
// repeats.
func TestAlternativesLabelsAndDedup(t *testing.T) {
	cat, db, tr, est := logicalEnv(t)
	b := algebra.NewBuilder(cat)

	// A query whose translation has a selection above a nest-join projection
	// (grouping-class subquery conjunct first, plain conjunct second): the
	// rewrite alternative must appear and differ from base.
	q := `SELECT x.b FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b) AND x.b < 0`
	base := translate(t, tr, q, core.StrategyNestJoin)
	alts := est.Alternatives(b, []StrategyPlan{{Strategy: "nestjoin", Plan: base}})
	labels := map[string]bool{}
	for _, a := range alts {
		labels[a.Alt] = true
	}
	if !labels[AltBase] || !labels[AltRewrite] {
		t.Fatalf("expected base+rewrite alternatives, got %v", labels)
	}
	// All alternatives agree on execution.
	want := runPlan(t, db, base)
	for _, a := range alts {
		if got := runPlan(t, db, a.Plan); !value.Equal(got, want) {
			t.Errorf("alternative %s changed the result", a.Alt)
		}
	}

	// A plain scan has nothing to rewrite or reorder: one alternative only.
	flat := translate(t, tr, `SELECT x.b FROM X x`, core.StrategyNestJoin)
	alts = est.Alternatives(b, []StrategyPlan{{Strategy: "nestjoin", Plan: flat}})
	if len(alts) != 1 || alts[0].Alt != AltBase {
		t.Errorf("identity rewrite must dedup away: %v", alts)
	}
}

// TestPinAlternatives covers the compatibility-override semantics.
func TestPinAlternatives(t *testing.T) {
	alts := []StrategyPlan{
		{Strategy: "nestjoin", Alt: AltBase},
		{Strategy: "nestjoin", Alt: AltRewrite},
		{Strategy: "naive", Alt: AltBase},
	}
	free, err := PinAlternatives(alts, "")
	if err != nil || len(free) != 3 {
		t.Errorf("no pin must keep all: %v %v", free, err)
	}
	// The rewrite pin keeps nestjoin's rewrite and, since naive produced no
	// rewrite, naive's base — the strategy stays in the running exactly as
	// the historical Rewrite=true toggle behaved.
	rw, err := PinAlternatives(alts, AltRewrite)
	if err != nil || len(rw) != 2 || rw[0].Alt != AltRewrite || rw[1].Strategy != "naive" {
		t.Errorf("rewrite pin: %v %v", rw, err)
	}
	// Rewrite pin with no rewrite available falls back to base.
	baseOnly := alts[2:]
	fb, err := PinAlternatives(baseOnly, AltRewrite)
	if err != nil || len(fb) != 1 || fb[0].Alt != AltBase {
		t.Errorf("rewrite fallback: %v %v", fb, err)
	}
	if _, err := PinAlternatives(alts, "order:(x y)"); err == nil {
		t.Error("pinning an absent order label must error")
	}
	if _, err := PinAlternatives(alts, "nonsense"); err == nil ||
		!strings.Contains(err.Error(), "pinned alternative") {
		t.Errorf("unknown pin error: %v", err)
	}
}

// TestChooseWeighsRewriteAlternative: with histogram statistics, the
// §6-pushdown rewrite of a selective predicate must win the candidate
// enumeration against the as-translated plan.
func TestChooseWeighsRewriteAlternative(t *testing.T) {
	cat, _, tr, est := logicalEnv(t)
	b := algebra.NewBuilder(cat)
	q := `SELECT x.b FROM X x WHERE x.a SUBSETEQ (SELECT y.a FROM Y y WHERE x.b = y.b) AND x.b < 0`
	base := translate(t, tr, q, core.StrategyNestJoin)
	alts := est.Alternatives(b, []StrategyPlan{{Strategy: "nestjoin", Plan: base}})
	best, all, err := est.Choose(alts, ImplAuto, 1)
	if err != nil {
		t.Fatal(err)
	}
	if best.Alt != AltRewrite {
		t.Errorf("expected the rewrite alternative to win, chose %s; candidates:", best.Alt)
		for _, c := range all {
			t.Logf("  %s", c)
		}
	}
}
