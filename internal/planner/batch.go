// Batched (vectorized) compilation: CompileBatch mirrors Compile but targets
// the exec batch protocol. Hot-path nodes — scans, selections, maps, the hash
// join family — compile to batch-native operators; the merge nest join builds
// its sorted runs batch-natively and only re-enters the row protocol for its
// merge output; the remaining cold nodes (nesting, unnesting, set operations,
// NL/index joins) compile to their row operators over BatchToRows-adapted
// batched subtrees and are re-wrapped in RowsToBatch, so a cold operator in
// the middle of a plan never forces the subtree below it back to
// row-at-a-time execution. Results are identical to Compile's by the set
// canonicalization safety rail (see exec/batch.go).

package planner

import (
	"fmt"

	"tmdb/internal/algebra"
	"tmdb/internal/exec"
	"tmdb/internal/tmql"
)

// CompileBatch turns a logical plan into a physical batch-iterator tree using
// Options.BatchSize rows per batch (0 = exec.DefaultBatchSize).
func (p *Planner) CompileBatch(plan algebra.Plan) (exec.BatchIterator, error) {
	switch n := plan.(type) {
	case *algebra.Scan:
		return &exec.BatchTableScan{Ctx: p.ctx, Table: n.Table, Size: p.opts.BatchSize}, nil

	case *algebra.Select:
		if p.opts.Access == AccessIndex {
			if m, ok := FindIndexScan(n, p.liveIndexes); ok {
				if ix, live := p.resolveIndex(m.Table, m.Name()); live {
					// Index scans are bucket probes, not row loops: keep the row
					// compilation and adapt its output.
					it, err := p.compileIndexScan(n, m, ix)
					if err != nil {
						return nil, err
					}
					return p.rowsToBatch(it), nil
				}
			}
		}
		in, err := p.CompileBatch(n.In)
		if err != nil {
			return nil, err
		}
		return &exec.BatchFilter{Ctx: p.ctx, In: in, Var: n.Var, Pred: n.Pred}, nil

	case *algebra.Map:
		in, err := p.CompileBatch(n.In)
		if err != nil {
			return nil, err
		}
		return &exec.BatchDistinct{Ctx: p.ctx, In: &exec.BatchMap{Ctx: p.ctx, In: in, Var: n.Var, Out: n.Out}}, nil

	case *algebra.Join:
		return p.compileBatchJoin(n)

	case *algebra.NestJoin:
		return p.compileBatchNestJoin(n)

	case *algebra.EvalNode:
		return p.rowsToBatch(&exec.EvalScan{Ctx: p.ctx, Expr: n.Expr}), nil

	case *algebra.Nest:
		in, err := p.batchToRows(n.In)
		if err != nil {
			return nil, err
		}
		return p.rowsToBatch(&exec.NestIter{Ctx: p.ctx, In: in, Attrs: n.Attrs, Label: n.Label, NullAware: n.NullAware}), nil

	case *algebra.Unnest:
		in, err := p.batchToRows(n.In)
		if err != nil {
			return nil, err
		}
		return p.rowsToBatch(&exec.UnnestIter{Ctx: p.ctx, In: in, Attr: n.Attr, Scalar: n.Scalar()}), nil

	case *algebra.SetOp:
		l, err := p.batchToRows(n.L)
		if err != nil {
			return nil, err
		}
		r, err := p.batchToRows(n.R)
		if err != nil {
			return nil, err
		}
		return p.rowsToBatch(&exec.SetOpIter{Ctx: p.ctx, Kind: int(n.Kind), L: l, R: r}), nil
	}
	return nil, fmt.Errorf("planner: unhandled plan node %T", plan)
}

// rowsToBatch re-enters the batch protocol above a row operator.
func (p *Planner) rowsToBatch(it exec.Iterator) exec.BatchIterator {
	return &exec.RowsToBatch{It: it, Size: p.opts.BatchSize}
}

// batchToRows compiles a subtree batched and adapts it for a row consumer.
func (p *Planner) batchToRows(plan algebra.Plan) (exec.Iterator, error) {
	in, err := p.CompileBatch(plan)
	if err != nil {
		return nil, err
	}
	return &exec.BatchToRows{In: in}, nil
}

// compileBatchJoin mirrors compileJoin: hash-family joins are batch-native
// (BatchHashJoin, or ParHashJoin fed batched inputs directly), index and
// nested-loop joins stay row operators behind adapters.
func (p *Planner) compileBatchJoin(n *algebra.Join) (exec.BatchIterator, error) {
	lk, rk, residual := ExtractEquiKeys(n.Pred, n.LVar, n.RVar)
	if p.opts.Joins == ImplIndex {
		if pr, ok := FindIndexProbe(n.R, n.RVar, rk, p.liveIndexes); ok {
			if ix, live := p.resolveIndex(pr.Table, pr.Name()); live {
				l, err := p.batchToRows(n.L)
				if err != nil {
					return nil, err
				}
				return p.rowsToBatch(&exec.IndexJoin{
					Ctx: p.ctx, Kind: n.Kind, L: l,
					Table: pr.Table, Index: pr.Name(), Ix: ix,
					LVar: n.LVar, RVar: n.RVar,
					LKeys:    probeLKeys(lk, pr),
					Residual: indexResidual(lk, rk, pr, residual),
					RElem:    n.R.Elem(),
				}), nil
			}
		}
		// No usable index on this operator: auto fallback below.
	}
	useHash := len(lk) > 0
	switch p.opts.Joins {
	case ImplNestedLoop:
		useHash = false
	case ImplHash, ImplMerge:
		if len(lk) == 0 {
			return nil, fmt.Errorf("planner: hash join requested but no equi-key in %s", tmql.Format(n.Pred))
		}
		useHash = true
	}
	if !useHash {
		l, err := p.batchToRows(n.L)
		if err != nil {
			return nil, err
		}
		r, err := p.batchToRows(n.R)
		if err != nil {
			return nil, err
		}
		return p.rowsToBatch(&exec.NLJoin{
			Ctx: p.ctx, Kind: n.Kind, L: l, R: r,
			LVar: n.LVar, RVar: n.RVar, Pred: n.Pred, RElem: n.R.Elem(),
		}), nil
	}
	bl, err := p.CompileBatch(n.L)
	if err != nil {
		return nil, err
	}
	br, err := p.CompileBatch(n.R)
	if err != nil {
		return nil, err
	}
	if p.opts.parallel() {
		return &exec.ParHashJoin{
			Ctx: p.ctx, Kind: n.Kind, BL: bl, BR: br,
			LVar: n.LVar, RVar: n.RVar,
			LKeys: lk, RKeys: rk, Residual: residual, RElem: n.R.Elem(),
			Degree: p.opts.Parallelism, BatchSize: p.opts.BatchSize,
		}, nil
	}
	return &exec.BatchHashJoin{
		Ctx: p.ctx, Kind: n.Kind, L: bl, R: br,
		LVar: n.LVar, RVar: n.RVar,
		LKeys: lk, RKeys: rk, Residual: residual, RElem: n.R.Elem(),
	}, nil
}

// compileBatchNestJoin mirrors compileNestJoin: the parallel hash nest join
// consumes batches natively (through the exchange), the merge nest join
// builds its sorted runs batch-natively, and the remaining serial forms are
// row operators over batched subtrees.
func (p *Planner) compileBatchNestJoin(n *algebra.NestJoin) (exec.BatchIterator, error) {
	lk, rk, residual := ExtractEquiKeys(n.Pred, n.LVar, n.RVar)
	impl := p.opts.Joins
	if impl == ImplIndex {
		if pr, ok := FindIndexProbe(n.R, n.RVar, rk, p.liveIndexes); ok {
			if ix, live := p.resolveIndex(pr.Table, pr.Name()); live {
				l, err := p.batchToRows(n.L)
				if err != nil {
					return nil, err
				}
				return p.rowsToBatch(&exec.IndexNestJoin{
					Ctx: p.ctx, L: l,
					Table: pr.Table, Index: pr.Name(), Ix: ix,
					LVar: n.LVar, RVar: n.RVar,
					LKeys:    probeLKeys(lk, pr),
					Residual: indexResidual(lk, rk, pr, residual),
					Fn:       n.Fn, Label: n.Label,
				}), nil
			}
		}
		impl = ImplAuto // no usable index on this operator
	}
	if impl == ImplAuto {
		if len(lk) > 0 {
			impl = ImplHash
		} else {
			impl = ImplNestedLoop
		}
	}
	if impl != ImplNestedLoop && len(lk) == 0 {
		return nil, fmt.Errorf("planner: %s nest join requested but no equi-key in %s",
			impl, tmql.Format(n.Pred))
	}
	if impl == ImplHash && p.opts.parallel() {
		bl, err := p.CompileBatch(n.L)
		if err != nil {
			return nil, err
		}
		br, err := p.CompileBatch(n.R)
		if err != nil {
			return nil, err
		}
		return &exec.ParHashNestJoin{
			Ctx: p.ctx, BL: bl, BR: br, LVar: n.LVar, RVar: n.RVar,
			LKeys: lk, RKeys: rk, Residual: residual, Fn: n.Fn, Label: n.Label,
			Degree: p.opts.Parallelism, BatchSize: p.opts.BatchSize,
		}, nil
	}
	if impl == ImplMerge {
		// The merge nest join's sort builds consume batches natively; only
		// its output re-enters the batch protocol through an adapter.
		bl, err := p.CompileBatch(n.L)
		if err != nil {
			return nil, err
		}
		br, err := p.CompileBatch(n.R)
		if err != nil {
			return nil, err
		}
		return p.rowsToBatch(&exec.MergeNestJoin{
			Ctx: p.ctx, BL: bl, BR: br, LVar: n.LVar, RVar: n.RVar,
			LKeys: lk, RKeys: rk, Residual: residual, Fn: n.Fn, Label: n.Label,
		}), nil
	}
	l, err := p.batchToRows(n.L)
	if err != nil {
		return nil, err
	}
	r, err := p.batchToRows(n.R)
	if err != nil {
		return nil, err
	}
	var it exec.Iterator
	switch impl {
	case ImplNestedLoop:
		it = &exec.NLNestJoin{
			Ctx: p.ctx, L: l, R: r, LVar: n.LVar, RVar: n.RVar,
			Pred: n.Pred, Fn: n.Fn, Label: n.Label,
		}
	default:
		it = &exec.HashNestJoin{
			Ctx: p.ctx, L: l, R: r, LVar: n.LVar, RVar: n.RVar,
			LKeys: lk, RKeys: rk, Residual: residual, Fn: n.Fn, Label: n.Label,
		}
	}
	return p.rowsToBatch(it), nil
}
