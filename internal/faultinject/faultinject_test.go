package faultinject

import (
	"errors"
	"sync"
	"testing"
	"time"
)

// trigger runs n hits against a fresh schedule and returns the ordinals that
// drew an error.
func trigger(seed, oneInN uint64, point string, n int) []uint64 {
	defer Activate(Schedule{Seed: seed, Rules: []Rule{
		{Point: point, Kind: Error, OneInN: oneInN},
	}})()
	var hits []uint64
	for i := 0; i < n; i++ {
		if err := Hit(point); err != nil {
			var ie *InjectedError
			if !errors.As(err, &ie) {
				panic("non-injected error from Hit")
			}
			hits = append(hits, ie.Hit)
		}
	}
	return hits
}

// TestDeterminism pins the core contract: for a fixed (seed, point, rule) the
// triggering hit ordinals are identical across activations, different seeds
// draw different ordinals, and OneInN=1 triggers every hit.
func TestDeterminism(t *testing.T) {
	a := trigger(42, 10, PointScan, 1000)
	b := trigger(42, 10, PointScan, 1000)
	if len(a) == 0 {
		t.Fatal("1-in-10 rule never triggered in 1000 hits")
	}
	if len(a) != len(b) {
		t.Fatalf("same seed, different trigger counts: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed, ordinal %d differs: %d vs %d", i, a[i], b[i])
		}
	}
	c := trigger(43, 10, PointScan, 1000)
	if len(c) == len(a) {
		same := true
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical trigger ordinals")
		}
	}
	if every := trigger(1, 1, PointHashBuild, 50); len(every) != 50 {
		t.Fatalf("OneInN=1 triggered %d of 50 hits", len(every))
	}
}

// TestInactiveFastPath pins that Hit is a no-op with no armed schedule and
// with a schedule that names a different point.
func TestInactiveFastPath(t *testing.T) {
	if Enabled() {
		t.Fatal("schedule armed at test start")
	}
	if err := Hit(PointScan); err != nil {
		t.Fatalf("unarmed Hit returned %v", err)
	}
	deactivate := Activate(Schedule{Seed: 9, Rules: []Rule{{Point: PointSortBuild, Kind: Error, OneInN: 1}}})
	if !Enabled() {
		t.Fatal("Enabled false after Activate")
	}
	if err := Hit(PointScan); err != nil {
		t.Fatalf("Hit on un-ruled point returned %v", err)
	}
	deactivate()
	if Enabled() {
		t.Fatal("deactivator did not disarm")
	}
	// A stale deactivator must not disarm a newer schedule.
	d1 := Activate(Schedule{Seed: 1, Rules: []Rule{{Point: PointScan, Kind: Error, OneInN: 1}}})
	d2 := Activate(Schedule{Seed: 2, Rules: []Rule{{Point: PointScan, Kind: Error, OneInN: 1}}})
	d1()
	if !Enabled() {
		t.Fatal("stale deactivator disarmed the newer schedule")
	}
	d2()
}

// TestDelayAndPanicKinds exercises the two non-error kinds.
func TestDelayAndPanicKinds(t *testing.T) {
	defer Activate(Schedule{Seed: 5, Rules: []Rule{
		{Point: PointScan, Kind: Delay, OneInN: 1, Delay: 5 * time.Millisecond},
	}})()
	start := time.Now()
	if err := Hit(PointScan); err != nil {
		t.Fatalf("Delay rule returned error %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("Delay rule slept %v, want >= 5ms", d)
	}

	defer Activate(Schedule{Seed: 5, Rules: []Rule{
		{Point: PointHashProbe, Kind: Panic, OneInN: 1},
	}})()
	defer func() {
		p := recover()
		if p == nil {
			t.Fatal("Panic rule did not panic")
		}
		if _, ok := p.(*InjectedPanic); !ok {
			t.Fatalf("panicked with %T, want *InjectedPanic", p)
		}
	}()
	_ = Hit(PointHashProbe)
}

// TestConcurrentHits hammers one schedule from many goroutines: the per-point
// hit counter must account for every hit exactly once (run under -race this
// also sweeps the atomics).
func TestConcurrentHits(t *testing.T) {
	defer Activate(Schedule{Seed: 11, Rules: []Rule{
		{Point: PointPartitionSend, Kind: Error, OneInN: 1 << 62},
	}})()
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				_ = Hit(PointPartitionSend)
			}
		}()
	}
	wg.Wait()
	st := active.Load()
	if got := st.hits[PointPartitionSend].Load(); got != workers*per {
		t.Fatalf("hit counter %d, want %d", got, workers*per)
	}
}

// TestPointsRegistry pins the registry the docs table documents.
func TestPointsRegistry(t *testing.T) {
	want := map[string]bool{
		PointScan: true, PointHashBuild: true, PointHashProbe: true,
		PointPartitionSend: true, PointSchedMorsel: true,
		PointSortBuild: true, PointMutationEpoch: true,
	}
	pts := Points()
	if len(pts) != len(want) {
		t.Fatalf("Points() returned %d entries, want %d", len(pts), len(want))
	}
	for _, p := range pts {
		if !want[p] {
			t.Fatalf("unregistered point %q", p)
		}
	}
}
