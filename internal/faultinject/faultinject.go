// Package faultinject is a deterministic, seed-addressable fault-injection
// harness for the execution pipeline. Operators and mutation entry points
// call Hit at registered fault points; when a Schedule is active, each hit is
// hashed — seed × point × per-point hit ordinal — into a deterministic
// decision to inject a delay, a typed error, or a panic. With no active
// schedule a hit is a single atomic pointer load, so production and benchmark
// paths pay effectively nothing.
//
// Determinism contract: for a fixed seed and rule set, the set of hit
// ordinals that trigger at each point is a pure function of (seed, point,
// ordinal). Under parallel execution the interleaving decides which worker
// draws a triggering ordinal, but the number of injected faults per point is
// reproducible whenever the per-point hit count is.
package faultinject

import (
	"fmt"
	"sync/atomic"
	"time"
)

// Registered fault points. The names are stable API: tests address them in
// schedules and the ARCHITECTURE.md registry documents them.
const (
	// PointScan fires once per row leaving a table scan.
	PointScan = "scan.next"
	// PointHashBuild fires once per row entering a hash-table build
	// (serial joins and per-partition parallel builds alike).
	PointHashBuild = "hash.build"
	// PointHashProbe fires once per probe-side row in the hash join family.
	PointHashProbe = "hash.probe"
	// PointPartitionSend fires once per batch fed into the parallel
	// exchange (the exchange moves rows in batches, one channel send each).
	PointPartitionSend = "partition.send"
	// PointSchedMorsel fires once per morsel entering the scheduler's
	// morsel loop — exchange consumers, partition builds, and probe
	// fragments alike — the single gate every scheduled operator inherits.
	PointSchedMorsel = "sched.morsel"
	// PointSortBuild fires once per row drained into a sort (Sort operator
	// and the merge joins' sorted runs).
	PointSortBuild = "sort.build"
	// PointMutationEpoch fires once per engine-level mutation that advances a
	// table epoch (insert, delete, index creation).
	PointMutationEpoch = "mutation.epoch"
)

// Points returns the registry of fault points, in documentation order.
func Points() []string {
	return []string{
		PointScan, PointHashBuild, PointHashProbe,
		PointPartitionSend, PointSchedMorsel, PointSortBuild, PointMutationEpoch,
	}
}

// Kind is the action a triggered rule takes.
type Kind int

const (
	// Delay sleeps Rule.Delay, simulating a slow device or a stalled worker.
	Delay Kind = iota
	// Error returns an *InjectedError from the fault point.
	Error
	// Panic panics with an *InjectedPanic from the fault point.
	Panic
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case Delay:
		return "delay"
	case Error:
		return "error"
	case Panic:
		return "panic"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Rule triggers Kind at Point on roughly one in OneInN hits (exactly the
// hits whose deterministic hash lands in the 1/OneInN band; OneInN = 1
// triggers every hit).
type Rule struct {
	Point  string
	Kind   Kind
	OneInN uint64
	// Delay is the sleep duration for Kind == Delay.
	Delay time.Duration
}

// Schedule is a full fault configuration: a seed addressing the
// deterministic hash and the rules to arm.
type Schedule struct {
	Seed  uint64
	Rules []Rule
}

// InjectedError is the error returned by a triggered Error rule. Chaos tests
// match it with errors.As to distinguish injected faults from genuine bugs.
type InjectedError struct {
	Point string
	Hit   uint64
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("faultinject: injected error at %s (hit %d)", e.Point, e.Hit)
}

// InjectedPanic is the value a triggered Panic rule panics with.
type InjectedPanic struct {
	Point string
	Hit   uint64
}

func (p *InjectedPanic) String() string {
	return fmt.Sprintf("faultinject: injected panic at %s (hit %d)", p.Point, p.Hit)
}

// state is one armed schedule. Immutable after construction; hit counters
// are per-point atomics.
type state struct {
	seed  uint64
	rules map[string][]Rule
	hits  map[string]*atomic.Uint64
}

// active is the armed schedule, nil when fault injection is off. The nil
// check in Hit is the production fast path.
var active atomic.Pointer[state]

// Activate arms the schedule and returns its deactivator. Schedules do not
// stack: activating replaces any armed schedule; the deactivator disarms
// only if its own schedule is still the armed one. Intended for tests
// (defer Activate(s)()).
func Activate(s Schedule) (deactivate func()) {
	st := &state{
		seed:  s.Seed,
		rules: make(map[string][]Rule, len(s.Rules)),
		hits:  make(map[string]*atomic.Uint64, len(s.Rules)),
	}
	for _, r := range s.Rules {
		if r.OneInN == 0 {
			r.OneInN = 1
		}
		st.rules[r.Point] = append(st.rules[r.Point], r)
		if st.hits[r.Point] == nil {
			st.hits[r.Point] = new(atomic.Uint64)
		}
	}
	active.Store(st)
	return func() { active.CompareAndSwap(st, nil) }
}

// Enabled reports whether a schedule is armed.
func Enabled() bool { return active.Load() != nil }

// Hit records one pass through the named fault point and applies any
// triggered rule: Delay sleeps and returns nil, Error returns an
// *InjectedError, Panic panics with an *InjectedPanic. With no armed
// schedule (or no rule for the point) it returns nil after one atomic load.
func Hit(point string) error {
	st := active.Load()
	if st == nil {
		return nil
	}
	rules := st.rules[point]
	if len(rules) == 0 {
		return nil
	}
	n := st.hits[point].Add(1)
	for _, r := range rules {
		if splitmix64(st.seed^hashPoint(point)^n)%r.OneInN != 0 {
			continue
		}
		switch r.Kind {
		case Delay:
			time.Sleep(r.Delay)
		case Error:
			return &InjectedError{Point: point, Hit: n}
		case Panic:
			panic(&InjectedPanic{Point: point, Hit: n})
		}
	}
	return nil
}

// hashPoint gives each point a stable 64-bit identity (FNV-1a).
func hashPoint(p string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(p); i++ {
		h ^= uint64(p[i])
		h *= 1099511628211
	}
	return h
}

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix, so
// consecutive hit ordinals decorrelate fully.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
