// Package types implements the TM type system used by the binder and the
// algebra validator: basic types (BOOL, INT, REAL, STRING), labeled tuple
// types, set and list types, and named references to sorts and classes.
//
// TM treats INT as a subtype of REAL; beyond that the paper needs no
// inheritance, so AssignableTo implements only numeric widening.
package types

import (
	"fmt"
	"sort"
	"strings"

	"tmdb/internal/value"
)

// Kind discriminates the type variants.
type Kind uint8

// The kinds of TM types.
const (
	KBool Kind = iota
	KInt
	KFloat
	KString
	KTuple
	KSet
	KList
	KClass // reference to a class; structurally its extension's element type
	KAny   // top type used by the binder before inference completes
)

// Field is one labeled component of a tuple type.
type Field struct {
	Label string
	Type  *Type
}

// Type is a TM type. Types are interned per construction and treated as
// immutable.
type Type struct {
	Kind   Kind
	Elem   *Type   // KSet, KList
	Fields []Field // KTuple, sorted by label
	Name   string  // KClass: class name
}

// Singleton basic types.
var (
	Bool   = &Type{Kind: KBool}
	Int    = &Type{Kind: KInt}
	Float  = &Type{Kind: KFloat}
	String = &Type{Kind: KString}
	Any    = &Type{Kind: KAny}
)

// Tuple constructs a tuple type; fields are canonicalized by label.
func Tuple(fields ...Field) *Type {
	fs := make([]Field, len(fields))
	copy(fs, fields)
	sort.Slice(fs, func(i, j int) bool { return fs[i].Label < fs[j].Label })
	for i := 1; i < len(fs); i++ {
		if fs[i].Label == fs[i-1].Label {
			panic("types: duplicate tuple label " + fs[i].Label)
		}
	}
	return &Type{Kind: KTuple, Fields: fs}
}

// F is shorthand for a tuple type field.
func F(label string, t *Type) Field { return Field{Label: label, Type: t} }

// SetOf constructs the type {elem}.
func SetOf(elem *Type) *Type { return &Type{Kind: KSet, Elem: elem} }

// ListOf constructs the type [elem].
func ListOf(elem *Type) *Type { return &Type{Kind: KList, Elem: elem} }

// Class constructs a named class reference type.
func Class(name string) *Type { return &Type{Kind: KClass, Name: name} }

// IsNumeric reports whether t is INT or REAL.
func (t *Type) IsNumeric() bool { return t.Kind == KInt || t.Kind == KFloat }

// IsCollection reports whether t is a set or list type.
func (t *Type) IsCollection() bool { return t.Kind == KSet || t.Kind == KList }

// Field returns the type of the labeled field of a tuple type.
func (t *Type) Field(label string) (*Type, bool) {
	if t.Kind != KTuple {
		return nil, false
	}
	i := sort.Search(len(t.Fields), func(i int) bool { return t.Fields[i].Label >= label })
	if i < len(t.Fields) && t.Fields[i].Label == label {
		return t.Fields[i].Type, true
	}
	return nil, false
}

// String renders the type in TM-ish notation.
func (t *Type) String() string {
	if t == nil {
		return "<nil>"
	}
	switch t.Kind {
	case KBool:
		return "BOOL"
	case KInt:
		return "INT"
	case KFloat:
		return "REAL"
	case KString:
		return "STRING"
	case KAny:
		return "ANY"
	case KClass:
		return t.Name
	case KSet:
		return "P " + t.Elem.String()
	case KList:
		return "L " + t.Elem.String()
	case KTuple:
		var sb strings.Builder
		sb.WriteByte('(')
		for i, f := range t.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Label)
			sb.WriteString(" : ")
			sb.WriteString(f.Type.String())
		}
		sb.WriteByte(')')
		return sb.String()
	}
	return fmt.Sprintf("type(%d)", t.Kind)
}

// Equal reports structural type equality. Class references compare by name.
func Equal(a, b *Type) bool {
	if a == b {
		return true
	}
	if a == nil || b == nil || a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KBool, KInt, KFloat, KString, KAny:
		return true
	case KClass:
		return a.Name == b.Name
	case KSet, KList:
		return Equal(a.Elem, b.Elem)
	case KTuple:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Label != b.Fields[i].Label || !Equal(a.Fields[i].Type, b.Fields[i].Type) {
				return false
			}
		}
		return true
	}
	return false
}

// AssignableTo reports whether a value of type src may be used where dst is
// expected: structural equality modulo INT ⊑ REAL widening and the Any
// wildcard.
func AssignableTo(src, dst *Type) bool {
	if src == nil || dst == nil {
		return false
	}
	if src.Kind == KAny || dst.Kind == KAny {
		return true
	}
	if src.Kind == KInt && dst.Kind == KFloat {
		return true
	}
	if src.Kind != dst.Kind {
		return false
	}
	switch src.Kind {
	case KSet, KList:
		return AssignableTo(src.Elem, dst.Elem)
	case KTuple:
		if len(src.Fields) != len(dst.Fields) {
			return false
		}
		for i := range src.Fields {
			if src.Fields[i].Label != dst.Fields[i].Label ||
				!AssignableTo(src.Fields[i].Type, dst.Fields[i].Type) {
				return false
			}
		}
		return true
	case KClass:
		return src.Name == dst.Name
	}
	return true
}

// Comparable reports whether values of the two types may be compared with
// =, <, etc.: structurally equal types modulo numeric widening, with Any
// acting as a wildcard at any depth (so ∅ : P ANY compares with any set).
func Comparable(a, b *Type) bool {
	if a == nil || b == nil {
		return false
	}
	if a.Kind == KAny || b.Kind == KAny {
		return true
	}
	if a.IsNumeric() && b.IsNumeric() {
		return true
	}
	if a.Kind != b.Kind {
		return false
	}
	switch a.Kind {
	case KSet, KList:
		return Comparable(a.Elem, b.Elem)
	case KTuple:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if a.Fields[i].Label != b.Fields[i].Label ||
				!Comparable(a.Fields[i].Type, b.Fields[i].Type) {
				return false
			}
		}
		return true
	case KClass:
		return a.Name == b.Name
	}
	return true
}

// Unify returns the least common type of a and b (numeric widening, Any
// absorbing), or nil if none exists. Used to type set literals and UNION.
func Unify(a, b *Type) *Type {
	if a == nil || b == nil {
		return nil
	}
	if a.Kind == KAny {
		return b
	}
	if b.Kind == KAny {
		return a
	}
	if a.IsNumeric() && b.IsNumeric() {
		if a.Kind == KFloat || b.Kind == KFloat {
			return Float
		}
		return Int
	}
	if a.Kind != b.Kind {
		return nil
	}
	switch a.Kind {
	case KSet:
		if e := Unify(a.Elem, b.Elem); e != nil {
			return SetOf(e)
		}
		return nil
	case KList:
		if e := Unify(a.Elem, b.Elem); e != nil {
			return ListOf(e)
		}
		return nil
	case KTuple:
		if len(a.Fields) != len(b.Fields) {
			return nil
		}
		fs := make([]Field, len(a.Fields))
		for i := range a.Fields {
			if a.Fields[i].Label != b.Fields[i].Label {
				return nil
			}
			e := Unify(a.Fields[i].Type, b.Fields[i].Type)
			if e == nil {
				return nil
			}
			fs[i] = Field{Label: a.Fields[i].Label, Type: e}
		}
		return &Type{Kind: KTuple, Fields: fs}
	case KClass:
		if a.Name == b.Name {
			return a
		}
		return nil
	}
	if Equal(a, b) {
		return a
	}
	return nil
}

// TypeOf infers the most specific type of a runtime value. Sets and lists of
// mixed element types unify; an empty collection gets element type Any.
func TypeOf(v value.Value) *Type {
	switch v.Kind() {
	case value.KindBool:
		return Bool
	case value.KindInt:
		return Int
	case value.KindFloat:
		return Float
	case value.KindString:
		return String
	case value.KindNull:
		return Any
	case value.KindTuple:
		fs := make([]Field, 0, v.Arity())
		for _, f := range v.Fields() {
			fs = append(fs, Field{Label: f.Label, Type: TypeOf(f.V)})
		}
		return &Type{Kind: KTuple, Fields: fs}
	case value.KindSet, value.KindList:
		elem := Any
		for _, e := range v.Elems() {
			et := TypeOf(e)
			if u := Unify(elem, et); u != nil {
				elem = u
			} else {
				elem = Any
				break
			}
		}
		if v.Kind() == value.KindSet {
			return SetOf(elem)
		}
		return ListOf(elem)
	}
	return Any
}

// Check reports whether runtime value v conforms to type t (with class
// references resolved by the caller beforehand; unresolved class refs accept
// any tuple).
func Check(v value.Value, t *Type) bool {
	if t == nil {
		return false
	}
	switch t.Kind {
	case KAny:
		return true
	case KBool:
		return v.Kind() == value.KindBool
	case KInt:
		return v.Kind() == value.KindInt
	case KFloat:
		return v.IsNumeric()
	case KString:
		return v.Kind() == value.KindString
	case KClass:
		return v.Kind() == value.KindTuple
	case KSet:
		if v.Kind() != value.KindSet {
			return false
		}
		for _, e := range v.Elems() {
			if !Check(e, t.Elem) {
				return false
			}
		}
		return true
	case KList:
		if v.Kind() != value.KindList {
			return false
		}
		for _, e := range v.Elems() {
			if !Check(e, t.Elem) {
				return false
			}
		}
		return true
	case KTuple:
		if v.Kind() != value.KindTuple {
			return false
		}
		if v.Arity() != len(t.Fields) {
			return false
		}
		for _, f := range t.Fields {
			fv, ok := v.Get(f.Label)
			if !ok || !Check(fv, f.Type) {
				return false
			}
		}
		return true
	}
	return false
}

// ZeroOf returns a canonical zero value of the type, used by generators and
// the outerjoin baseline's NULL padding at typed positions.
func ZeroOf(t *Type) value.Value {
	switch t.Kind {
	case KBool:
		return value.False
	case KInt:
		return value.Int(0)
	case KFloat:
		return value.Float(0)
	case KString:
		return value.Str("")
	case KSet:
		return value.EmptySet
	case KList:
		return value.ListOf()
	case KTuple:
		fs := make([]value.Field, 0, len(t.Fields))
		for _, f := range t.Fields {
			fs = append(fs, value.F(f.Label, ZeroOf(f.Type)))
		}
		return value.TupleOf(fs...)
	default:
		return value.Null
	}
}
