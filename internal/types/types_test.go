package types

import (
	"testing"

	"tmdb/internal/value"
)

func TestStringRendering(t *testing.T) {
	cases := []struct {
		t    *Type
		want string
	}{
		{Bool, "BOOL"},
		{Int, "INT"},
		{Float, "REAL"},
		{String, "STRING"},
		{Any, "ANY"},
		{Class("Employee"), "Employee"},
		{SetOf(Int), "P INT"},
		{ListOf(String), "L STRING"},
		{Tuple(F("b", Int), F("a", String)), "(a : STRING, b : INT)"},
		{SetOf(Tuple(F("x", SetOf(Int)))), "P (x : P INT)"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestEqualAndAssignable(t *testing.T) {
	tup := Tuple(F("a", Int), F("b", SetOf(String)))
	same := Tuple(F("b", SetOf(String)), F("a", Int))
	if !Equal(tup, same) {
		t.Error("field order should not matter")
	}
	if Equal(tup, Tuple(F("a", Int))) {
		t.Error("different arity should differ")
	}
	if Equal(SetOf(Int), ListOf(Int)) {
		t.Error("set vs list")
	}
	if !Equal(Class("C"), Class("C")) || Equal(Class("C"), Class("D")) {
		t.Error("class equality by name")
	}

	if !AssignableTo(Int, Float) {
		t.Error("INT ⊑ REAL")
	}
	if AssignableTo(Float, Int) {
		t.Error("REAL ⋢ INT")
	}
	if !AssignableTo(SetOf(Int), SetOf(Float)) {
		t.Error("covariant set widening")
	}
	if !AssignableTo(Any, Int) || !AssignableTo(Int, Any) {
		t.Error("Any is a wildcard")
	}
	if AssignableTo(Tuple(F("a", Int)), Tuple(F("b", Int))) {
		t.Error("label mismatch must fail")
	}
}

func TestComparableAndUnify(t *testing.T) {
	if !Comparable(Int, Float) || !Comparable(String, String) {
		t.Error("comparable basics")
	}
	if Comparable(Int, String) {
		t.Error("INT vs STRING not comparable")
	}
	if got := Unify(Int, Float); got != Float {
		t.Errorf("Unify(INT, REAL) = %v", got)
	}
	if got := Unify(SetOf(Int), SetOf(Float)); !Equal(got, SetOf(Float)) {
		t.Errorf("Unify sets = %v", got)
	}
	if got := Unify(Int, String); got != nil {
		t.Errorf("Unify(INT, STRING) = %v", got)
	}
	if got := Unify(Any, String); got != String {
		t.Errorf("Unify(Any, STRING) = %v", got)
	}
	got := Unify(Tuple(F("a", Int)), Tuple(F("a", Float)))
	if !Equal(got, Tuple(F("a", Float))) {
		t.Errorf("Unify tuples = %v", got)
	}
	if Unify(Tuple(F("a", Int)), Tuple(F("b", Int))) != nil {
		t.Error("Unify mismatched labels should fail")
	}
	if Unify(SetOf(Int), ListOf(Int)) != nil {
		t.Error("Unify set/list should fail")
	}
	if got := Unify(Class("C"), Class("C")); got == nil || got.Name != "C" {
		t.Error("Unify same classes")
	}
	if Unify(Class("C"), Class("D")) != nil {
		t.Error("Unify distinct classes should fail")
	}
}

func TestFieldLookup(t *testing.T) {
	tup := Tuple(F("a", Int), F("b", String))
	if ft, ok := tup.Field("b"); !ok || ft != String {
		t.Errorf("Field(b) = %v, %v", ft, ok)
	}
	if _, ok := tup.Field("z"); ok {
		t.Error("missing field should not be found")
	}
	if _, ok := Int.Field("a"); ok {
		t.Error("Field on non-tuple")
	}
}

func TestTypeOf(t *testing.T) {
	v := value.TupleOf(
		value.F("a", value.Int(1)),
		value.F("s", value.SetOf(value.Int(1), value.Int(2))),
		value.F("l", value.ListOf(value.Str("x"))),
	)
	got := TypeOf(v)
	want := Tuple(F("a", Int), F("s", SetOf(Int)), F("l", ListOf(String)))
	if !Equal(got, want) {
		t.Errorf("TypeOf = %v, want %v", got, want)
	}
	if got := TypeOf(value.EmptySet); got.Kind != KSet || got.Elem != Any {
		t.Errorf("TypeOf(∅) = %v", got)
	}
	// Mixed numeric set unifies to REAL.
	if got := TypeOf(value.SetOf(value.Int(1), value.Float(2.5))); !Equal(got, SetOf(Float)) {
		t.Errorf("TypeOf mixed numeric = %v", got)
	}
	// Irreconcilable mix degrades to Any.
	if got := TypeOf(value.SetOf(value.Int(1), value.Str("x"))); got.Elem != Any {
		t.Errorf("TypeOf mixed = %v", got)
	}
}

func TestCheck(t *testing.T) {
	tup := Tuple(F("a", Int), F("s", SetOf(Int)))
	v := value.TupleOf(value.F("a", value.Int(1)), value.F("s", value.SetOf(value.Int(2))))
	if !Check(v, tup) {
		t.Error("value should check against its type")
	}
	if Check(v, Tuple(F("a", Int))) {
		t.Error("extra field should fail arity check")
	}
	if !Check(value.Int(1), Float) {
		t.Error("INT value conforms to REAL")
	}
	if Check(value.Float(1.5), Int) {
		t.Error("REAL value does not conform to INT")
	}
	if !Check(value.EmptySet, SetOf(Tuple(F("a", Int)))) {
		t.Error("∅ conforms to any set type")
	}
	if Check(value.ListOf(value.Int(1)), SetOf(Int)) {
		t.Error("list is not a set")
	}
	if !Check(v, Class("Emp")) {
		t.Error("unresolved class ref accepts tuples")
	}
	if !Check(value.Null, Any) {
		t.Error("Any accepts everything")
	}
}

func TestZeroOf(t *testing.T) {
	tt := Tuple(F("a", Int), F("s", SetOf(Int)), F("n", String), F("f", Float), F("b", Bool), F("l", ListOf(Int)))
	z := ZeroOf(tt)
	if !Check(z, tt) {
		t.Errorf("ZeroOf does not typecheck: %s vs %s", z, tt)
	}
	if z.MustGet("a").AsInt() != 0 || !z.MustGet("s").IsEmptySet() {
		t.Errorf("ZeroOf = %s", z)
	}
	if !ZeroOf(Any).IsNull() {
		t.Error("ZeroOf(Any) should be NULL")
	}
}

func TestDuplicateLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Tuple(F("a", Int), F("a", Int))
}
