package tmql

import (
	"fmt"
	"strings"
)

// Format renders an expression back to parsable TM surface syntax. The output
// is fully parenthesized where precedence demands it and round-trips through
// Parse (tested property: Parse(Format(e)) structurally equals e up to
// positions).
func Format(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e, 0)
	return sb.String()
}

// Precedence levels matching the parser, loosest first.
const (
	precWith = iota
	precOr
	precAnd
	precNot
	precCmp
	precSet
	precAdd
	precMul
	precUnary
	precPostfix
)

func opPrec(op Op) int {
	switch op {
	case OpOr:
		return precOr
	case OpAnd:
		return precAnd
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe,
		OpIn, OpNotIn, OpSubset, OpSubsetEq, OpSupset, OpSupsetEq:
		return precCmp
	case OpUnion, OpIntersect, OpDiff:
		return precSet
	case OpAdd, OpSub:
		return precAdd
	case OpMul, OpDiv, OpMod:
		return precMul
	}
	return precUnary
}

func writeExpr(sb *strings.Builder, e Expr, min int) {
	switch n := e.(type) {
	case *Lit:
		sb.WriteString(n.V.String())
	case *Var:
		sb.WriteString(n.Name)
	case *TableRef:
		sb.WriteString(n.Name)
	case *FieldSel:
		writeExpr(sb, n.X, precPostfix)
		sb.WriteByte('.')
		sb.WriteString(n.Label)
	case *TupleCons:
		// Elements print at precOr so a WITH (Let) gets parentheses — the
		// comma would otherwise be swallowed by the WITH-binding list.
		sb.WriteByte('(')
		for i, f := range n.Fields {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(f.Label)
			sb.WriteString(" = ")
			writeExpr(sb, f.E, precOr)
		}
		sb.WriteByte(')')
	case *SetCons:
		sb.WriteByte('{')
		for i, el := range n.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, el, precOr)
		}
		sb.WriteByte('}')
	case *ListCons:
		sb.WriteByte('[')
		for i, el := range n.Elems {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, el, precOr)
		}
		sb.WriteByte(']')
	case *Binary:
		prec := opPrec(n.Op)
		if prec < min {
			sb.WriteByte('(')
		}
		// Comparison is non-associative: children print one level tighter.
		childMin := prec
		if prec == precCmp {
			childMin = precSet
		}
		writeExpr(sb, n.L, childMin)
		sb.WriteByte(' ')
		sb.WriteString(n.Op.String())
		sb.WriteByte(' ')
		writeExpr(sb, n.R, childMin+boolToInt(prec != precCmp && isLeftAssoc(n.Op)))
		if prec < min {
			sb.WriteByte(')')
		}
	case *Unary:
		if n.Op == OpNot {
			if precNot < min {
				sb.WriteByte('(')
			}
			sb.WriteString("NOT ")
			writeExpr(sb, n.X, precNot)
			if precNot < min {
				sb.WriteByte(')')
			}
			return
		}
		if precUnary < min {
			sb.WriteByte('(')
		}
		sb.WriteByte('-')
		// Guard against "--", which the lexer reads as a line comment: a
		// negative literal or nested negation is parenthesized.
		var inner strings.Builder
		writeExpr(&inner, n.X, precUnary)
		if strings.HasPrefix(inner.String(), "-") {
			sb.WriteByte('(')
			sb.WriteString(inner.String())
			sb.WriteByte(')')
		} else {
			sb.WriteString(inner.String())
		}
		if precUnary < min {
			sb.WriteByte(')')
		}
	case *Agg:
		sb.WriteString(n.Kind.String())
		sb.WriteByte('(')
		writeExpr(sb, n.X, 0)
		sb.WriteByte(')')
	case *Quant:
		if precCmp < min {
			sb.WriteByte('(')
		}
		fmt.Fprintf(sb, "%s %s IN ", n.Kind, n.Var)
		writeExpr(sb, n.Over, precAdd)
		sb.WriteString(" (")
		writeExpr(sb, n.Pred, 0)
		sb.WriteByte(')')
		if precCmp < min {
			sb.WriteByte(')')
		}
	case *SFW:
		if min > precWith {
			sb.WriteByte('(')
		}
		sb.WriteString("SELECT ")
		writeExpr(sb, n.Result, precOr)
		sb.WriteString(" FROM ")
		for i, f := range n.Froms {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, f.Src, precPostfix)
			sb.WriteByte(' ')
			sb.WriteString(f.Var)
		}
		if n.Where != nil {
			sb.WriteString(" WHERE ")
			writeExpr(sb, n.Where, 0)
		}
		if min > precWith {
			sb.WriteByte(')')
		}
	case *Let:
		if min > precWith {
			sb.WriteByte('(')
		}
		writeExpr(sb, n.Body, precOr)
		sb.WriteString(" WITH ")
		sb.WriteString(n.V)
		sb.WriteString(" = ")
		writeExpr(sb, n.Def, precOr)
		if min > precWith {
			sb.WriteByte(')')
		}
	case *Unnest:
		sb.WriteString("UNNEST(")
		writeExpr(sb, n.X, 0)
		sb.WriteByte(')')
	default:
		fmt.Fprintf(sb, "<?%T>", e)
	}
}

func isLeftAssoc(op Op) bool {
	switch op {
	case OpAnd, OpOr, OpAdd, OpSub, OpMul, OpDiv, OpMod, OpUnion, OpIntersect, OpDiff:
		return true
	}
	return false
}

func boolToInt(b bool) int {
	if b {
		return 1
	}
	return 0
}
