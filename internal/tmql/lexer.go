package tmql

import (
	"fmt"
	"strings"
	"unicode"
)

// Lexer turns TM query text into tokens. It is a straightforward hand-rolled
// scanner; TM's lexical structure has no surprises beyond case-insensitive
// keywords.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Lex scans the entire input, returning the token stream (terminated by a
// TokEOF token) or the first lexical error.
func Lex(src string) ([]Token, error) {
	lx := NewLexer(src)
	var out []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.Kind == TokEOF {
			return out, nil
		}
	}
}

func (lx *Lexer) peek() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() byte {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *Lexer) pos() Pos { return Pos{Line: lx.line, Col: lx.col} }

func (lx *Lexer) errorf(p Pos, format string, args ...any) error {
	return fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...))
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: p}, nil
	}
	c := lx.peek()
	switch {
	case isIdentStart(c):
		return lx.lexIdent(p), nil
	case c >= '0' && c <= '9':
		return lx.lexNumber(p)
	case c == '"' || c == '\'':
		return lx.lexString(p)
	}
	lx.advance()
	switch c {
	case '(':
		return Token{Kind: TokLParen, Text: "(", Pos: p}, nil
	case ')':
		return Token{Kind: TokRParen, Text: ")", Pos: p}, nil
	case '{':
		return Token{Kind: TokLBrace, Text: "{", Pos: p}, nil
	case '}':
		return Token{Kind: TokRBrace, Text: "}", Pos: p}, nil
	case '[':
		return Token{Kind: TokLBracket, Text: "[", Pos: p}, nil
	case ']':
		return Token{Kind: TokRBracket, Text: "]", Pos: p}, nil
	case ',':
		return Token{Kind: TokComma, Text: ",", Pos: p}, nil
	case '.':
		return Token{Kind: TokDot, Text: ".", Pos: p}, nil
	case '=':
		return Token{Kind: TokEq, Text: "=", Pos: p}, nil
	case '+':
		return Token{Kind: TokPlus, Text: "+", Pos: p}, nil
	case '-':
		return Token{Kind: TokMinus, Text: "-", Pos: p}, nil
	case '*':
		return Token{Kind: TokStar, Text: "*", Pos: p}, nil
	case '/':
		return Token{Kind: TokSlash, Text: "/", Pos: p}, nil
	case '%':
		return Token{Kind: TokPercent, Text: "%", Pos: p}, nil
	case '<':
		switch lx.peek() {
		case '=':
			lx.advance()
			return Token{Kind: TokLe, Text: "<=", Pos: p}, nil
		case '>':
			lx.advance()
			return Token{Kind: TokNe, Text: "<>", Pos: p}, nil
		}
		return Token{Kind: TokLt, Text: "<", Pos: p}, nil
	case '>':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokGe, Text: ">=", Pos: p}, nil
		}
		return Token{Kind: TokGt, Text: ">", Pos: p}, nil
	case '!':
		if lx.peek() == '=' {
			lx.advance()
			return Token{Kind: TokNe, Text: "<>", Pos: p}, nil
		}
	}
	return Token{}, lx.errorf(p, "unexpected character %q", c)
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		c := lx.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			lx.advance()
		case c == '-' && lx.peek2() == '-': // SQL-style line comment
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (lx *Lexer) lexIdent(p Pos) Token {
	start := lx.off
	for lx.off < len(lx.src) && isIdentPart(lx.peek()) {
		lx.advance()
	}
	word := lx.src[start:lx.off]
	upper := strings.ToUpper(word)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: p}
	}
	return Token{Kind: TokIdent, Text: word, Pos: p}
}

func (lx *Lexer) lexNumber(p Pos) (Token, error) {
	start := lx.off
	for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
		lx.advance()
	}
	isFloat := false
	// A dot starts a fraction only if followed by a digit; otherwise it is
	// field selection (e.g. after a parenthesized expression this cannot
	// happen with a bare literal, but "1.x" should be an error, not 1.0 x).
	if lx.peek() == '.' && lx.peek2() >= '0' && lx.peek2() <= '9' {
		isFloat = true
		lx.advance()
		for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
			lx.advance()
		}
	}
	if lx.peek() == 'e' || lx.peek() == 'E' {
		isFloat = true
		lx.advance()
		if lx.peek() == '+' || lx.peek() == '-' {
			lx.advance()
		}
		if !(lx.peek() >= '0' && lx.peek() <= '9') {
			return Token{}, lx.errorf(p, "malformed float exponent")
		}
		for lx.off < len(lx.src) && lx.peek() >= '0' && lx.peek() <= '9' {
			lx.advance()
		}
	}
	text := lx.src[start:lx.off]
	if isFloat {
		return Token{Kind: TokFloat, Text: text, Pos: p}, nil
	}
	return Token{Kind: TokInt, Text: text, Pos: p}, nil
}

func (lx *Lexer) lexString(p Pos) (Token, error) {
	quote := lx.advance()
	var sb strings.Builder
	for {
		if lx.off >= len(lx.src) {
			return Token{}, lx.errorf(p, "unterminated string")
		}
		c := lx.advance()
		if c == quote {
			return Token{Kind: TokString, Text: sb.String(), Pos: p}, nil
		}
		if c == '\\' {
			if lx.off >= len(lx.src) {
				return Token{}, lx.errorf(p, "unterminated string escape")
			}
			e := lx.advance()
			switch e {
			case 'n':
				sb.WriteByte('\n')
			case 't':
				sb.WriteByte('\t')
			case '\\', '\'', '"':
				sb.WriteByte(e)
			default:
				return Token{}, lx.errorf(p, "unknown escape \\%c", e)
			}
			continue
		}
		sb.WriteByte(c)
	}
}
