package tmql

import (
	"strings"
	"testing"

	"tmdb/internal/schema"
	"tmdb/internal/types"
)

func bindStr(t *testing.T, src string) Expr {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	b := NewBinder(schema.Company())
	be, err := b.Bind(e)
	if err != nil {
		t.Fatalf("bind: %v", err)
	}
	return be
}

func bindErr(t *testing.T, src string) error {
	t.Helper()
	e, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = NewBinder(schema.Company()).Bind(e)
	if err == nil {
		t.Fatalf("Bind(%q) should fail", src)
	}
	return err
}

func TestBindResolvesExtensions(t *testing.T) {
	be := bindStr(t, "SELECT d.name FROM DEPT d")
	sfw := be.(*SFW)
	if _, ok := sfw.Froms[0].Src.(*TableRef); !ok {
		t.Fatalf("DEPT not resolved to TableRef: %T", sfw.Froms[0].Src)
	}
	if got := be.Type().String(); got != "P STRING" {
		t.Errorf("result type = %s, want P STRING", got)
	}
}

func TestBindSortExpansion(t *testing.T) {
	be := bindStr(t, "SELECT d.address.city FROM DEPT d")
	if got := be.Type().String(); got != "P STRING" {
		t.Errorf("type = %s", got)
	}
}

func TestBindClassRefExpansion(t *testing.T) {
	// d.emps is P Employee; e.sal must resolve through the class reference.
	be := bindStr(t, "SELECT e.sal FROM DEPT d, d.emps e")
	if got := be.Type().String(); got != "P INT" {
		t.Errorf("type = %s", got)
	}
}

func TestBindPaperQ1Q2(t *testing.T) {
	bindStr(t, `SELECT d FROM DEPT d
		WHERE (s = d.address.street, c = d.address.city)
		  IN SELECT (s = e.address.street, c = e.address.city) FROM d.emps e`)
	be := bindStr(t, `SELECT (dname = d.name,
			emps = SELECT e FROM EMP e WHERE e.address.city = d.address.city)
		FROM DEPT d`)
	tt := be.Type()
	if tt.Kind != types.KSet || tt.Elem.Kind != types.KTuple {
		t.Fatalf("Q2 type = %s", tt)
	}
	if ft, ok := tt.Elem.Field("emps"); !ok || ft.Kind != types.KSet {
		t.Errorf("emps field type = %v", ft)
	}
}

func TestBindWith(t *testing.T) {
	be := bindStr(t, "COUNT(z) WITH z = SELECT e.sal FROM EMP e")
	if be.Type() != types.Int {
		t.Errorf("COUNT type = %s", be.Type())
	}
}

func TestBindQuantifier(t *testing.T) {
	be := bindStr(t, "SELECT e FROM EMP e WHERE EXISTS c IN e.children (c.age < 18)")
	if be.Type().Kind != types.KSet {
		t.Errorf("type = %s", be.Type())
	}
}

func TestBindAggTypes(t *testing.T) {
	cases := map[string]*types.Type{
		"COUNT(SELECT e.sal FROM EMP e)": types.Int,
		"SUM(SELECT e.sal FROM EMP e)":   types.Int,
		"AVG(SELECT e.sal FROM EMP e)":   types.Float,
		"MIN(SELECT e.name FROM EMP e)":  types.String,
	}
	for src, want := range cases {
		be := bindStr(t, src)
		if !types.Equal(be.Type(), want) {
			t.Errorf("%s : %s, want %s", src, be.Type(), want)
		}
	}
}

func TestBindUnnest(t *testing.T) {
	be := bindStr(t, "UNNEST(SELECT e.children FROM EMP e)")
	want := "P (age : INT, name : STRING)"
	if got := be.Type().String(); got != want {
		t.Errorf("UNNEST type = %s, want %s", got, want)
	}
}

func TestBindArithmeticTypes(t *testing.T) {
	cases := map[string]*types.Type{
		"1 + 2":           types.Int,
		"1 + 2.0":         types.Float,
		"1 / 2":           types.Float, // division is real
		"5 % 2":           types.Int,
		"-(3)":            types.Int,
		"1 < 2":           types.Bool,
		"1 IN {2}":        types.Bool,
		"{1} UNION {2.0}": types.SetOf(types.Float),
	}
	for src, want := range cases {
		be := bindStr(t, src)
		if !types.Equal(be.Type(), want) {
			t.Errorf("%s : %s, want %s", src, be.Type(), want)
		}
	}
}

func TestBindErrors(t *testing.T) {
	cases := []struct {
		src, frag string
	}{
		{"nosuch", "unknown name"},
		{"SELECT d.nosuch FROM DEPT d", "no field"},
		{"SELECT d FROM DEPT d WHERE d.name", "WHERE must be BOOL"},
		{"1 AND 2", "needs BOOL"},
		{"1 IN 2", "needs a set"},
		{"{1} SUBSETEQ 3", "needs set operands"},
		{"1 = \"x\"", "cannot compare"},
		{"NOT 3", "needs BOOL"},
		{"-\"x\"", "needs a number"},
		{"COUNT(1)", "needs a collection"},
		{"SUM(SELECT e.name FROM EMP e)", "numeric"},
		{"SELECT x FROM 1 x", "must be a collection"},
		{"EXISTS v IN 3 (TRUE)", "ranges over a collection"},
		{"EXISTS v IN {1} (v)", "must be BOOL"},
		{"{1, \"x\"}", "incompatible"},
		{"(a = 1, a = 2)", "duplicate tuple label"},
		{"UNNEST({1})", "set of sets"},
		{"d.name + 1", "unknown name"},
	}
	for _, c := range cases {
		err := bindErr(t, c.src)
		if !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Bind(%q) error %q does not mention %q", c.src, err, c.frag)
		}
	}
}

func TestBindScopingShadowing(t *testing.T) {
	// Inner e shadows outer e.
	be := bindStr(t, `SELECT (n = e.name, k = SELECT e.age FROM e.children e) FROM EMP e`)
	if be.Type().Kind != types.KSet {
		t.Fatalf("type = %s", be.Type())
	}
	tt := be.Type().Elem
	if ft, _ := tt.Field("k"); !types.Equal(ft, types.SetOf(types.Int)) {
		t.Errorf("k type = %s", ft)
	}
}

func TestBindNilCatalog(t *testing.T) {
	b := NewBinder(nil)
	e := MustParse("1 + 1")
	be, err := b.Bind(e)
	if err != nil || be.Type() != types.Int {
		t.Errorf("bind with nil catalog: %v, %v", be, err)
	}
	if _, err := b.Bind(MustParse("SELECT x FROM EMP x")); err == nil {
		t.Error("EMP should be unknown without catalog")
	}
}
