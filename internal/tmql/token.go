// Package tmql implements the front-end for the TM SELECT-FROM-WHERE
// expression sublanguage used throughout the paper: a lexer, a recursive-
// descent parser producing an AST, a pretty-printer, and a binder performing
// scope resolution, free-variable analysis, and type inference against a
// schema catalog.
//
// The concrete grammar follows the paper's notation, spelled in ASCII:
//
//	SELECT e FROM f1 v1, f2 v2, ... WHERE p WITH z = e', ...
//	EXISTS v IN e (p)     — ∃v ∈ e (p)
//	FORALL v IN e (p)     — ∀v ∈ e (p)
//	e IN s, e NOT IN s, a SUBSET s, a SUBSETEQ s, a SUPSET s, a SUPSETEQ s
//	s1 UNION s2, s1 INTERSECT s2, s1 MINUS s2
//	COUNT(s), SUM(s), AVG(s), MIN(s), MAX(s), UNNEST(s)
//	(l1 = e1, l2 = e2)    — tuple construction
//	{e1, e2, ...}         — set construction
package tmql

import "fmt"

// TokKind classifies lexical tokens.
type TokKind uint8

// Token kinds. Keywords are matched case-insensitively by the lexer and
// reported with canonical upper-case text.
const (
	TokEOF TokKind = iota
	TokIdent
	TokInt
	TokFloat
	TokString
	TokKeyword // SELECT, FROM, WHERE, WITH, IN, NOT, AND, OR, EXISTS, FORALL, ...
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokDot
	TokEq    // =
	TokNe    // <>
	TokLt    // <
	TokLe    // <=
	TokGt    // >
	TokGe    // >=
	TokPlus  // +
	TokMinus // -
	TokStar  // *
	TokSlash // /
	TokPercent
)

// Pos is a 1-based source position.
type Pos struct {
	Line, Col int
}

// String renders the position as line:col.
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // canonical text (keywords upper-cased, strings unescaped)
	Pos  Pos
}

// keywords is the set of reserved words. Everything else is an identifier.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "WITH": true,
	"IN": true, "NOT": true, "AND": true, "OR": true,
	"EXISTS": true, "FORALL": true,
	"UNION": true, "INTERSECT": true, "MINUS": true,
	"SUBSET": true, "SUBSETEQ": true, "SUPSET": true, "SUPSETEQ": true,
	"COUNT": true, "SUM": true, "AVG": true, "MIN": true, "MAX": true,
	"UNNEST": true, "TRUE": true, "FALSE": true,
}

// Is reports whether the token is the given keyword.
func (t Token) Is(kw string) bool { return t.Kind == TokKeyword && t.Text == kw }

// String renders the token for error messages.
func (t Token) String() string {
	switch t.Kind {
	case TokEOF:
		return "end of input"
	case TokString:
		return fmt.Sprintf("%q", t.Text)
	default:
		return t.Text
	}
}
