package tmql

import (
	"fmt"

	"tmdb/internal/schema"
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// Binder resolves names against a schema catalog and infers types. Free
// identifiers that name a class extension become TableRef nodes; all other
// names must be bound by an enclosing FROM, quantifier, or WITH. The binder
// returns a new, fully typed tree (the input is not mutated).
type Binder struct {
	cat *schema.Catalog
}

// NewBinder returns a binder over the catalog (nil means empty catalog).
func NewBinder(cat *schema.Catalog) *Binder {
	if cat == nil {
		cat = schema.NewCatalog()
	}
	return &Binder{cat: cat}
}

// Bind resolves and types a closed expression (no free variables other than
// extension names).
func (b *Binder) Bind(e Expr) (Expr, error) {
	return b.bind(e, &scope{})
}

// VarBinding is a pre-bound variable for BindIn: algebra operators type
// their predicate/function expressions against the element types of their
// operands.
type VarBinding struct {
	Name string
	Type *types.Type
}

// BindIn resolves and types an expression with the given variables in scope.
func (b *Binder) BindIn(e Expr, vars ...VarBinding) (Expr, error) {
	sc := &scope{}
	for _, v := range vars {
		sc = sc.push(v.Name, v.Type)
	}
	return b.bind(e, sc)
}

// scope is a linked-list environment of variable typings.
type scope struct {
	name string
	typ  *types.Type
	next *scope
}

func (s *scope) push(name string, t *types.Type) *scope {
	return &scope{name: name, typ: t, next: s}
}

func (s *scope) lookup(name string) (*types.Type, bool) {
	for c := s; c != nil; c = c.next {
		if c.name == name {
			return c.typ, true
		}
	}
	return nil, false
}

func errAt(p Pos, format string, args ...any) error {
	return fmt.Errorf("bind error at %s: %s", p, fmt.Sprintf(format, args...))
}

func (b *Binder) bind(e Expr, sc *scope) (Expr, error) {
	switch n := e.(type) {
	case *Lit:
		out := &Lit{exprBase: exprBase{pos: n.pos}, V: n.V}
		out.setType(types.TypeOf(n.V))
		return out, nil

	case *Var:
		if t, ok := sc.lookup(n.Name); ok {
			out := &Var{exprBase: exprBase{pos: n.pos}, Name: n.Name}
			out.setType(t)
			return out, nil
		}
		if _, ok := b.cat.ClassByExtension(n.Name); ok {
			elem, err := b.cat.ElementType(n.Name)
			if err != nil {
				return nil, errAt(n.pos, "%v", err)
			}
			out := &TableRef{exprBase: exprBase{pos: n.pos}, Name: n.Name}
			out.setType(types.SetOf(elem))
			return out, nil
		}
		return nil, errAt(n.pos, "unknown name %s", n.Name)

	case *TableRef:
		elem, err := b.cat.ElementType(n.Name)
		if err != nil {
			return nil, errAt(n.pos, "%v", err)
		}
		out := &TableRef{exprBase: exprBase{pos: n.pos}, Name: n.Name}
		out.setType(types.SetOf(elem))
		return out, nil

	case *FieldSel:
		x, err := b.bind(n.X, sc)
		if err != nil {
			return nil, err
		}
		xt := x.Type()
		var ft *types.Type
		switch xt.Kind {
		case types.KTuple:
			f, ok := xt.Field(n.Label)
			if !ok {
				return nil, errAt(n.pos, "tuple %s has no field %s", xt, n.Label)
			}
			ft = f
		case types.KAny:
			ft = types.Any
		default:
			return nil, errAt(n.pos, "cannot select field %s from %s", n.Label, xt)
		}
		out := &FieldSel{exprBase: exprBase{pos: n.pos}, X: x, Label: n.Label}
		out.setType(ft)
		return out, nil

	case *TupleCons:
		fs := make([]TupleField, len(n.Fields))
		tfs := make([]types.Field, len(n.Fields))
		seen := map[string]bool{}
		for i, f := range n.Fields {
			if seen[f.Label] {
				return nil, errAt(n.pos, "duplicate tuple label %s", f.Label)
			}
			seen[f.Label] = true
			fe, err := b.bind(f.E, sc)
			if err != nil {
				return nil, err
			}
			fs[i] = TupleField{Label: f.Label, E: fe}
			tfs[i] = types.F(f.Label, fe.Type())
		}
		out := &TupleCons{exprBase: exprBase{pos: n.pos}, Fields: fs}
		out.setType(types.Tuple(tfs...))
		return out, nil

	case *SetCons:
		elems := make([]Expr, len(n.Elems))
		elemT := types.Any
		for i, el := range n.Elems {
			be, err := b.bind(el, sc)
			if err != nil {
				return nil, err
			}
			elems[i] = be
			if u := types.Unify(elemT, be.Type()); u != nil {
				elemT = u
			} else {
				return nil, errAt(el.Pos(), "set element type %s incompatible with %s", be.Type(), elemT)
			}
		}
		out := &SetCons{exprBase: exprBase{pos: n.pos}, Elems: elems}
		out.setType(types.SetOf(elemT))
		return out, nil

	case *ListCons:
		elems := make([]Expr, len(n.Elems))
		elemT := types.Any
		for i, el := range n.Elems {
			be, err := b.bind(el, sc)
			if err != nil {
				return nil, err
			}
			elems[i] = be
			if u := types.Unify(elemT, be.Type()); u != nil {
				elemT = u
			} else {
				return nil, errAt(el.Pos(), "list element type %s incompatible with %s", be.Type(), elemT)
			}
		}
		out := &ListCons{exprBase: exprBase{pos: n.pos}, Elems: elems}
		out.setType(types.ListOf(elemT))
		return out, nil

	case *Binary:
		return b.bindBinary(n, sc)

	case *Unary:
		x, err := b.bind(n.X, sc)
		if err != nil {
			return nil, err
		}
		out := &Unary{exprBase: exprBase{pos: n.pos}, Op: n.Op, X: x}
		switch n.Op {
		case OpNot:
			if !types.AssignableTo(x.Type(), types.Bool) {
				return nil, errAt(n.pos, "NOT needs BOOL, got %s", x.Type())
			}
			out.setType(types.Bool)
		case OpNeg:
			if !x.Type().IsNumeric() && x.Type().Kind != types.KAny {
				return nil, errAt(n.pos, "unary - needs a number, got %s", x.Type())
			}
			out.setType(x.Type())
		default:
			return nil, errAt(n.pos, "bad unary operator %s", n.Op)
		}
		return out, nil

	case *Agg:
		x, err := b.bind(n.X, sc)
		if err != nil {
			return nil, err
		}
		xt := x.Type()
		if !xt.IsCollection() && xt.Kind != types.KAny {
			return nil, errAt(n.pos, "%s needs a collection, got %s", n.Kind, xt)
		}
		elem := types.Any
		if xt.IsCollection() {
			elem = xt.Elem
		}
		out := &Agg{exprBase: exprBase{pos: n.pos}, Kind: n.Kind, X: x}
		switch n.Kind {
		case value.AggCount:
			out.setType(types.Int)
		case value.AggAvg:
			out.setType(types.Float)
		case value.AggSum, value.AggMin, value.AggMax:
			out.setType(elem)
		}
		if n.Kind == value.AggSum || n.Kind == value.AggAvg {
			if !elem.IsNumeric() && elem.Kind != types.KAny {
				return nil, errAt(n.pos, "%s needs numeric elements, got %s", n.Kind, elem)
			}
		}
		return out, nil

	case *Quant:
		over, err := b.bind(n.Over, sc)
		if err != nil {
			return nil, err
		}
		ot := over.Type()
		if !ot.IsCollection() && ot.Kind != types.KAny {
			return nil, errAt(n.pos, "%s ranges over a collection, got %s", n.Kind, ot)
		}
		elem := types.Any
		if ot.IsCollection() {
			elem = ot.Elem
		}
		pred, err := b.bind(n.Pred, sc.push(n.Var, elem))
		if err != nil {
			return nil, err
		}
		if !types.AssignableTo(pred.Type(), types.Bool) {
			return nil, errAt(n.Pred.Pos(), "quantifier body must be BOOL, got %s", pred.Type())
		}
		out := &Quant{exprBase: exprBase{pos: n.pos}, Kind: n.Kind, Var: n.Var, Over: over, Pred: pred}
		out.setType(types.Bool)
		return out, nil

	case *SFW:
		froms := make([]FromItem, len(n.Froms))
		inner := sc
		for i, f := range n.Froms {
			src, err := b.bind(f.Src, inner)
			if err != nil {
				return nil, err
			}
			st := src.Type()
			if !st.IsCollection() && st.Kind != types.KAny {
				return nil, errAt(f.Src.Pos(), "FROM operand must be a collection, got %s", st)
			}
			elem := types.Any
			if st.IsCollection() {
				elem = st.Elem
			}
			froms[i] = FromItem{Var: f.Var, Src: src}
			inner = inner.push(f.Var, elem)
		}
		var where Expr
		if n.Where != nil {
			w, err := b.bind(n.Where, inner)
			if err != nil {
				return nil, err
			}
			if !types.AssignableTo(w.Type(), types.Bool) {
				return nil, errAt(n.Where.Pos(), "WHERE must be BOOL, got %s", w.Type())
			}
			where = w
		}
		result, err := b.bind(n.Result, inner)
		if err != nil {
			return nil, err
		}
		out := &SFW{exprBase: exprBase{pos: n.pos}, Result: result, Froms: froms, Where: where}
		out.setType(types.SetOf(result.Type()))
		return out, nil

	case *Let:
		def, err := b.bind(n.Def, sc)
		if err != nil {
			return nil, err
		}
		body, err := b.bind(n.Body, sc.push(n.V, def.Type()))
		if err != nil {
			return nil, err
		}
		out := &Let{exprBase: exprBase{pos: n.pos}, V: n.V, Def: def, Body: body}
		out.setType(body.Type())
		return out, nil

	case *Unnest:
		x, err := b.bind(n.X, sc)
		if err != nil {
			return nil, err
		}
		xt := x.Type()
		out := &Unnest{exprBase: exprBase{pos: n.pos}, X: x}
		switch {
		case xt.Kind == types.KSet && xt.Elem.Kind == types.KSet:
			out.setType(xt.Elem)
		case xt.Kind == types.KAny:
			out.setType(types.Any)
		case xt.Kind == types.KSet && xt.Elem.Kind == types.KAny:
			out.setType(types.SetOf(types.Any))
		default:
			return nil, errAt(n.pos, "UNNEST needs a set of sets, got %s", xt)
		}
		return out, nil
	}
	return nil, errAt(e.Pos(), "unhandled node %T", e)
}

func (b *Binder) bindBinary(n *Binary, sc *scope) (Expr, error) {
	l, err := b.bind(n.L, sc)
	if err != nil {
		return nil, err
	}
	r, err := b.bind(n.R, sc)
	if err != nil {
		return nil, err
	}
	lt, rt := l.Type(), r.Type()
	out := &Binary{exprBase: exprBase{pos: n.pos}, Op: n.Op, L: l, R: r}
	switch {
	case n.Op == OpAnd || n.Op == OpOr:
		if !types.AssignableTo(lt, types.Bool) || !types.AssignableTo(rt, types.Bool) {
			return nil, errAt(n.pos, "%s needs BOOL operands, got %s and %s", n.Op, lt, rt)
		}
		out.setType(types.Bool)
	case n.Op.IsComparison():
		if !types.Comparable(lt, rt) {
			return nil, errAt(n.pos, "cannot compare %s with %s", lt, rt)
		}
		out.setType(types.Bool)
	case n.Op == OpIn || n.Op == OpNotIn:
		if rt.Kind != types.KSet && rt.Kind != types.KAny {
			return nil, errAt(n.pos, "%s needs a set on the right, got %s", n.Op, rt)
		}
		if rt.Kind == types.KSet && !types.Comparable(lt, rt.Elem) {
			return nil, errAt(n.pos, "%s: element type %s incompatible with set of %s", n.Op, lt, rt.Elem)
		}
		out.setType(types.Bool)
	case n.Op == OpSubset || n.Op == OpSubsetEq || n.Op == OpSupset || n.Op == OpSupsetEq:
		if (lt.Kind != types.KSet && lt.Kind != types.KAny) || (rt.Kind != types.KSet && rt.Kind != types.KAny) {
			return nil, errAt(n.pos, "%s needs set operands, got %s and %s", n.Op, lt, rt)
		}
		out.setType(types.Bool)
	case n.Op == OpUnion || n.Op == OpIntersect || n.Op == OpDiff:
		if (lt.Kind != types.KSet && lt.Kind != types.KAny) || (rt.Kind != types.KSet && rt.Kind != types.KAny) {
			return nil, errAt(n.pos, "%s needs set operands, got %s and %s", n.Op, lt, rt)
		}
		u := types.Unify(lt, rt)
		if u == nil {
			u = types.SetOf(types.Any)
		}
		out.setType(u)
	case n.Op == OpAdd || n.Op == OpSub || n.Op == OpMul || n.Op == OpDiv || n.Op == OpMod:
		lnum := lt.IsNumeric() || lt.Kind == types.KAny
		rnum := rt.IsNumeric() || rt.Kind == types.KAny
		if !lnum || !rnum {
			return nil, errAt(n.pos, "%s needs numeric operands, got %s and %s", n.Op, lt, rt)
		}
		u := types.Unify(lt, rt)
		if u == nil || !u.IsNumeric() {
			u = types.Float
		}
		if n.Op == OpDiv {
			u = types.Float
		}
		out.setType(u)
	default:
		return nil, errAt(n.pos, "bad binary operator %s", n.Op)
	}
	return out, nil
}
