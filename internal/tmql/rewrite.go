package tmql

import "sort"

// Tables returns the names of every stored extension referenced anywhere in
// e (table references may hide inside subqueries, quantifiers, and
// predicates), sorted and deduplicated. The engine's plan cache uses it to
// key cached plans by the mutation epochs of exactly the tables a query
// depends on.
func Tables(e Expr) []string {
	seen := make(map[string]bool)
	Walk(e, func(n Expr) bool {
		if t, ok := n.(*TableRef); ok {
			seen[t.Name] = true
		}
		return true
	})
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Generic rewriting over TM ASTs. All functions build fresh trees (the input
// is never mutated) and strip inferred types — consumers re-bind rewritten
// expressions, so types are recomputed afterwards. The shared worker tracks
// variable bindings in scope so callbacks can respect shadowing; core's
// translation utilities and the planner's join-order extractor are both built
// on it.

// Rewrite rebuilds e bottom-up; at each node fn may return a replacement.
// The bound map passed to fn counts enclosing binders per variable name, so
// fn can limit itself to free occurrences.
func Rewrite(e Expr, fn func(Expr, map[string]int) (Expr, bool)) Expr {
	return rewriteIn(e, fn, map[string]int{})
}

// Subst replaces every free occurrence of the variable name in e by repl.
// Binders that rebind name stop the substitution in their scope. repl is
// inserted by reference; callers pass freshly built or immutable expressions.
func Subst(e Expr, name string, repl Expr) Expr {
	return Rewrite(e, func(n Expr, bound map[string]int) (Expr, bool) {
		if v, ok := n.(*Var); ok && v.Name == name && bound[name] == 0 {
			return repl, true
		}
		return nil, false
	})
}

// SubstFieldSel replaces free field selections u.l (u a free variable, not
// shadowed at the site) by repl(u, l) wherever repl returns non-nil. The
// planner's join-order extractor uses it to invert the readdressing the flat
// join translation applied (container.var.attr back to var.attr).
func SubstFieldSel(e Expr, repl func(varName, label string) Expr) Expr {
	return Rewrite(e, func(n Expr, bound map[string]int) (Expr, bool) {
		if fs, ok := n.(*FieldSel); ok {
			if v, ok := fs.X.(*Var); ok && bound[v.Name] == 0 {
				if r := repl(v.Name, fs.Label); r != nil {
					return r, true
				}
			}
		}
		return nil, false
	})
}

// SplitAnd flattens a right- or left-nested AND tree into its conjuncts; a
// nil expression yields nil.
func SplitAnd(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpAnd {
		return append(SplitAnd(b.L), SplitAnd(b.R)...)
	}
	return []Expr{e}
}

// SplitOr flattens a right- or left-nested OR tree into its disjuncts; a
// nil expression yields nil.
func SplitOr(e Expr) []Expr {
	if e == nil {
		return nil
	}
	if b, ok := e.(*Binary); ok && b.Op == OpOr {
		return append(SplitOr(b.L), SplitOr(b.R)...)
	}
	return []Expr{e}
}

// JoinAnd rebuilds a conjunction from parts (nil for none).
func JoinAnd(parts []Expr) Expr {
	var out Expr
	for _, p := range parts {
		if out == nil {
			out = p
		} else {
			out = &Binary{Op: OpAnd, L: out, R: p}
		}
	}
	return out
}

func rewriteIn(e Expr, fn func(Expr, map[string]int) (Expr, bool), bound map[string]int) Expr {
	if e == nil {
		return nil
	}
	if repl, ok := fn(e, bound); ok {
		return repl
	}
	switch n := e.(type) {
	case *Lit, *Var, *TableRef:
		return e
	case *FieldSel:
		return &FieldSel{X: rewriteIn(n.X, fn, bound), Label: n.Label}
	case *TupleCons:
		fs := make([]TupleField, len(n.Fields))
		for i, f := range n.Fields {
			fs[i] = TupleField{Label: f.Label, E: rewriteIn(f.E, fn, bound)}
		}
		return &TupleCons{Fields: fs}
	case *SetCons:
		es := make([]Expr, len(n.Elems))
		for i, el := range n.Elems {
			es[i] = rewriteIn(el, fn, bound)
		}
		return &SetCons{Elems: es}
	case *ListCons:
		es := make([]Expr, len(n.Elems))
		for i, el := range n.Elems {
			es[i] = rewriteIn(el, fn, bound)
		}
		return &ListCons{Elems: es}
	case *Binary:
		return &Binary{Op: n.Op, L: rewriteIn(n.L, fn, bound), R: rewriteIn(n.R, fn, bound)}
	case *Unary:
		return &Unary{Op: n.Op, X: rewriteIn(n.X, fn, bound)}
	case *Agg:
		return &Agg{Kind: n.Kind, X: rewriteIn(n.X, fn, bound)}
	case *Quant:
		over := rewriteIn(n.Over, fn, bound)
		bound[n.Var]++
		pred := rewriteIn(n.Pred, fn, bound)
		bound[n.Var]--
		return &Quant{Kind: n.Kind, Var: n.Var, Over: over, Pred: pred}
	case *SFW:
		froms := make([]FromItem, len(n.Froms))
		pushed := make([]string, 0, len(n.Froms))
		for i, f := range n.Froms {
			froms[i] = FromItem{Var: f.Var, Src: rewriteIn(f.Src, fn, bound)}
			bound[f.Var]++
			pushed = append(pushed, f.Var)
		}
		where := rewriteIn(n.Where, fn, bound)
		result := rewriteIn(n.Result, fn, bound)
		for _, v := range pushed {
			bound[v]--
		}
		return &SFW{Result: result, Froms: froms, Where: where}
	case *Let:
		def := rewriteIn(n.Def, fn, bound)
		bound[n.V]++
		body := rewriteIn(n.Body, fn, bound)
		bound[n.V]--
		return &Let{V: n.V, Def: def, Body: body}
	case *Unnest:
		return &Unnest{X: rewriteIn(n.X, fn, bound)}
	}
	return e
}
