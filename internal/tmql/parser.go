package tmql

import (
	"fmt"
	"strconv"

	"tmdb/internal/value"
)

// Parser is a recursive-descent parser with one-token lookahead plus
// backtracking for the FROM-list/tuple-field comma ambiguity.
//
// Disambiguation rule (documented in the package comment): a parenthesized
// group starting with `ident =` is a tuple constructor, as in the paper's
// (s = e.address.street, c = e.address.city); parenthesized equalities occur
// only as quantifier bodies, where the quantifier grammar owns the parens.
type Parser struct {
	toks []Token
	i    int
}

// Parse parses a complete TM expression; trailing input is an error.
func Parse(src string) (Expr, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &Parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().Kind != TokEOF {
		return nil, p.errorf("unexpected %s after expression", p.peek())
	}
	return e, nil
}

// MustParse parses or panics; for tests and examples.
func MustParse(src string) Expr {
	e, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return e
}

func (p *Parser) peek() Token   { return p.toks[p.i] }
func (p *Parser) next() Token   { t := p.toks[p.i]; p.i++; return t }
func (p *Parser) save() int     { return p.i }
func (p *Parser) restore(m int) { p.i = m }

func (p *Parser) errorf(format string, args ...any) error {
	return fmt.Errorf("parse error at %s: %s", p.peek().Pos, fmt.Sprintf(format, args...))
}

func (p *Parser) expect(kind TokKind, what string) (Token, error) {
	if p.peek().Kind != kind {
		return Token{}, p.errorf("expected %s, found %s", what, p.peek())
	}
	return p.next(), nil
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.peek().Is(kw) {
		return p.errorf("expected %s, found %s", kw, p.peek())
	}
	p.next()
	return nil
}

// parseExpr := parseOr (WITH ident = parseOr)*
func (p *Parser) parseExpr() (Expr, error) {
	body, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	for p.peek().Is("WITH") {
		pos := p.next().Pos
		for {
			name, err := p.expect(TokIdent, "identifier after WITH")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokEq, "'=' in WITH binding"); err != nil {
				return nil, err
			}
			def, err := p.parseOr()
			if err != nil {
				return nil, err
			}
			body = &Let{exprBase: exprBase{pos: pos}, V: name.Text, Def: def, Body: body}
			if p.peek().Kind != TokComma {
				break
			}
			// A comma continues the WITH list only if followed by `ident =`.
			mark := p.save()
			p.next()
			if p.peek().Kind == TokIdent && p.toks[p.i+1].Kind == TokEq {
				continue
			}
			p.restore(mark)
			break
		}
	}
	return body, nil
}

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().Is("OR") {
		pos := p.next().Pos
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: pos}, Op: OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.peek().Is("AND") {
		pos := p.next().Pos
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: pos}, Op: OpAnd, L: l, R: r}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.peek().Is("NOT") {
		pos := p.next().Pos
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{pos: pos}, Op: OpNot, X: x}, nil
	}
	return p.parseCmp()
}

// parseCmp := parseSet [cmpOp parseSet]   (non-associative)
func (p *Parser) parseCmp() (Expr, error) {
	l, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	var op Op
	t := p.peek()
	switch {
	case t.Kind == TokEq:
		op = OpEq
	case t.Kind == TokNe:
		op = OpNe
	case t.Kind == TokLt:
		op = OpLt
	case t.Kind == TokLe:
		op = OpLe
	case t.Kind == TokGt:
		op = OpGt
	case t.Kind == TokGe:
		op = OpGe
	case t.Is("IN"):
		op = OpIn
	case t.Is("SUBSET"):
		op = OpSubset
	case t.Is("SUBSETEQ"):
		op = OpSubsetEq
	case t.Is("SUPSET"):
		op = OpSupset
	case t.Is("SUPSETEQ"):
		op = OpSupsetEq
	case t.Is("NOT") && p.toks[p.i+1].Is("IN"):
		p.next() // NOT; IN consumed below
		op = OpNotIn
	default:
		return l, nil
	}
	pos := p.next().Pos
	r, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	return &Binary{exprBase: exprBase{pos: pos}, Op: op, L: l, R: r}, nil
}

func (p *Parser) parseSet() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch {
		case p.peek().Is("UNION"):
			op = OpUnion
		case p.peek().Is("INTERSECT"):
			op = OpIntersect
		case p.peek().Is("MINUS"):
			op = OpDiff
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: pos}, Op: op, L: l, R: r}
	}
}

func (p *Parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.peek().Kind {
		case TokPlus:
			op = OpAdd
		case TokMinus:
			op = OpSub
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: pos}, Op: op, L: l, R: r}
	}
}

func (p *Parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op Op
		switch p.peek().Kind {
		case TokStar:
			op = OpMul
		case TokSlash:
			op = OpDiv
		case TokPercent:
			op = OpMod
		default:
			return l, nil
		}
		pos := p.next().Pos
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{exprBase: exprBase{pos: pos}, Op: op, L: l, R: r}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	if p.peek().Kind == TokMinus {
		pos := p.next().Pos
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{exprBase: exprBase{pos: pos}, Op: OpNeg, X: x}, nil
	}
	return p.parsePostfix()
}

func (p *Parser) parsePostfix() (Expr, error) {
	x, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.peek().Kind == TokDot {
		pos := p.next().Pos
		lbl, err := p.expect(TokIdent, "field label after '.'")
		if err != nil {
			return nil, err
		}
		x = &FieldSel{exprBase: exprBase{pos: pos}, X: x, Label: lbl.Text}
	}
	return x, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch {
	case t.Kind == TokInt:
		p.next()
		n, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, p.errorf("bad integer %s", t.Text)
		}
		return &Lit{exprBase: exprBase{pos: t.Pos}, V: value.Int(n)}, nil
	case t.Kind == TokFloat:
		p.next()
		f, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, p.errorf("bad float %s", t.Text)
		}
		return &Lit{exprBase: exprBase{pos: t.Pos}, V: value.Float(f)}, nil
	case t.Kind == TokString:
		p.next()
		return &Lit{exprBase: exprBase{pos: t.Pos}, V: value.Str(t.Text)}, nil
	case t.Is("TRUE"):
		p.next()
		return &Lit{exprBase: exprBase{pos: t.Pos}, V: value.True}, nil
	case t.Is("FALSE"):
		p.next()
		return &Lit{exprBase: exprBase{pos: t.Pos}, V: value.False}, nil
	case t.Kind == TokIdent:
		p.next()
		return &Var{exprBase: exprBase{pos: t.Pos}, Name: t.Text}, nil
	case t.Is("SELECT"):
		return p.parseSFW()
	case t.Is("EXISTS") || t.Is("FORALL"):
		return p.parseQuant()
	case t.Is("UNNEST"):
		p.next()
		if _, err := p.expect(TokLParen, "'(' after UNNEST"); err != nil {
			return nil, err
		}
		x, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen, "')'"); err != nil {
			return nil, err
		}
		return &Unnest{exprBase: exprBase{pos: t.Pos}, X: x}, nil
	case t.Kind == TokKeyword:
		if kind, ok := value.ParseAggKind(t.Text); ok {
			p.next()
			if _, err := p.expect(TokLParen, "'(' after "+t.Text); err != nil {
				return nil, err
			}
			x, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen, "')'"); err != nil {
				return nil, err
			}
			return &Agg{exprBase: exprBase{pos: t.Pos}, Kind: kind, X: x}, nil
		}
	case t.Kind == TokLBrace:
		return p.parseSetCons()
	case t.Kind == TokLBracket:
		return p.parseListCons()
	case t.Kind == TokLParen:
		return p.parseParenOrTuple()
	}
	return nil, p.errorf("unexpected %s", t)
}

// parseParenOrTuple handles '(' … ')': an empty tuple, a tuple constructor
// (first token pair is `ident =`), or a parenthesized expression.
func (p *Parser) parseParenOrTuple() (Expr, error) {
	open := p.next() // '('
	if p.peek().Kind == TokRParen {
		p.next()
		return &TupleCons{exprBase: exprBase{pos: open.Pos}}, nil
	}
	if p.peek().Kind == TokIdent && p.toks[p.i+1].Kind == TokEq {
		var fields []TupleField
		for {
			lbl, err := p.expect(TokIdent, "tuple field label")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokEq, "'=' in tuple field"); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			fields = append(fields, TupleField{Label: lbl.Text, E: e})
			if p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
		if _, err := p.expect(TokRParen, "')' closing tuple"); err != nil {
			return nil, err
		}
		return &TupleCons{exprBase: exprBase{pos: open.Pos}, Fields: fields}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, "')'"); err != nil {
		return nil, err
	}
	return e, nil
}

func (p *Parser) parseSetCons() (Expr, error) {
	open := p.next() // '{'
	var elems []Expr
	if p.peek().Kind != TokRBrace {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokRBrace, "'}'"); err != nil {
		return nil, err
	}
	return &SetCons{exprBase: exprBase{pos: open.Pos}, Elems: elems}, nil
}

func (p *Parser) parseListCons() (Expr, error) {
	open := p.next() // '['
	var elems []Expr
	if p.peek().Kind != TokRBracket {
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			elems = append(elems, e)
			if p.peek().Kind == TokComma {
				p.next()
				continue
			}
			break
		}
	}
	if _, err := p.expect(TokRBracket, "']'"); err != nil {
		return nil, err
	}
	return &ListCons{exprBase: exprBase{pos: open.Pos}, Elems: elems}, nil
}

// parseQuant := (EXISTS|FORALL) ident IN parseSet '(' expr ')'
func (p *Parser) parseQuant() (Expr, error) {
	kw := p.next()
	kind := QExists
	if kw.Text == "FORALL" {
		kind = QForall
	}
	v, err := p.expect(TokIdent, "quantifier variable")
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("IN"); err != nil {
		return nil, err
	}
	over, err := p.parseSet()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokLParen, "'(' starting quantifier body"); err != nil {
		return nil, err
	}
	pred, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen, "')' closing quantifier body"); err != nil {
		return nil, err
	}
	return &Quant{exprBase: exprBase{pos: kw.Pos}, Kind: kind, Var: v.Text, Over: over, Pred: pred}, nil
}

// parseSFW := SELECT expr FROM fromItem (',' fromItem)* [WHERE expr]
func (p *Parser) parseSFW() (Expr, error) {
	sel := p.next() // SELECT
	result, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	first, err := p.parseFromItem()
	if err != nil {
		return nil, err
	}
	froms := []FromItem{first}
	for p.peek().Kind == TokComma {
		// Backtrack point: the comma may belong to an enclosing tuple
		// constructor or set literal rather than the FROM list.
		mark := p.save()
		p.next()
		item, err := p.parseFromItem()
		if err != nil {
			p.restore(mark)
			break
		}
		froms = append(froms, item)
	}
	var where Expr
	if p.peek().Is("WHERE") {
		p.next()
		where, err = p.parseExpr()
		if err != nil {
			return nil, err
		}
	}
	return &SFW{exprBase: exprBase{pos: sel.Pos}, Result: result, Froms: froms, Where: where}, nil
}

// parseFromItem := parsePostfix ident — a source expression followed by the
// iteration variable, e.g. "DEPT d" or "d.emps e".
func (p *Parser) parseFromItem() (FromItem, error) {
	src, err := p.parsePostfix()
	if err != nil {
		return FromItem{}, err
	}
	v, err := p.expect(TokIdent, "iteration variable in FROM")
	if err != nil {
		return FromItem{}, err
	}
	return FromItem{Var: v.Text, Src: src}, nil
}
