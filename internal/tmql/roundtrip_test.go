package tmql

import (
	"fmt"
	"math/rand"
	"testing"

	"tmdb/internal/value"
)

// TestFormatParseRoundTripRandom generates random expression trees and
// checks that Format output reparses to a tree with identical Format — i.e.
// the printer emits enough parentheses for every shape the AST can take.
func TestFormatParseRoundTripRandom(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	for i := 0; i < 500; i++ {
		e := randomExpr(r, 4)
		s1 := Format(e)
		e2, err := Parse(s1)
		if err != nil {
			t.Fatalf("reparse failed for %q (tree %d): %v", s1, i, err)
		}
		s2 := Format(e2)
		if s1 != s2 {
			t.Fatalf("format not a fixpoint:\n 1: %s\n 2: %s", s1, s2)
		}
	}
}

var rtBinOps = []Op{
	OpEq, OpNe, OpLt, OpLe, OpGt, OpGe, OpAdd, OpSub, OpMul, OpDiv, OpMod,
	OpAnd, OpOr, OpIn, OpNotIn, OpSubset, OpSubsetEq, OpSupset, OpSupsetEq,
	OpUnion, OpIntersect, OpDiff,
}

func randomExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 {
		switch r.Intn(4) {
		case 0:
			return &Lit{V: value.Int(int64(r.Intn(10)))}
		case 1:
			return &Lit{V: value.Str("s")}
		case 2:
			return &Lit{V: value.Bool(r.Intn(2) == 0)}
		default:
			return &Var{Name: fmt.Sprintf("v%d", r.Intn(4))}
		}
	}
	switch r.Intn(12) {
	case 0:
		return &Binary{Op: rtBinOps[r.Intn(len(rtBinOps))],
			L: randomExpr(r, depth-1), R: randomExpr(r, depth-1)}
	case 1:
		return &Unary{Op: OpNot, X: randomExpr(r, depth-1)}
	case 2:
		return &Unary{Op: OpNeg, X: randomExpr(r, depth-1)}
	case 3:
		return &FieldSel{X: &Var{Name: "x"}, Label: fmt.Sprintf("f%d", r.Intn(3))}
	case 4:
		n := r.Intn(3)
		fs := make([]TupleField, 0, n)
		for i := 0; i < n; i++ {
			fs = append(fs, TupleField{Label: fmt.Sprintf("l%d", i), E: randomExpr(r, depth-1)})
		}
		return &TupleCons{Fields: fs}
	case 5:
		n := r.Intn(3)
		es := make([]Expr, n)
		for i := range es {
			es[i] = randomExpr(r, depth-1)
		}
		return &SetCons{Elems: es}
	case 6:
		return &Agg{Kind: value.AggKind(r.Intn(5)), X: randomExpr(r, depth-1)}
	case 7:
		kind := QExists
		if r.Intn(2) == 0 {
			kind = QForall
		}
		return &Quant{Kind: kind, Var: "q", Over: randomExpr(r, depth-1), Pred: randomExpr(r, depth-1)}
	case 8:
		froms := []FromItem{{Var: "a", Src: randomExpr(r, depth-1)}}
		if r.Intn(2) == 0 {
			froms = append(froms, FromItem{Var: "b", Src: randomExpr(r, depth-1)})
		}
		var where Expr
		if r.Intn(2) == 0 {
			where = randomExpr(r, depth-1)
		}
		return &SFW{Result: randomExpr(r, depth-1), Froms: froms, Where: where}
	case 9:
		return &Let{V: "w", Def: randomExpr(r, depth-1), Body: randomExpr(r, depth-1)}
	case 10:
		return &Unnest{X: randomExpr(r, depth-1)}
	default:
		n := r.Intn(3)
		es := make([]Expr, n)
		for i := range es {
			es[i] = randomExpr(r, depth-1)
		}
		return &ListCons{Elems: es}
	}
}
