package tmql

import (
	"strings"
	"testing"
)

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`SELECT x.a FROM X x WHERE x.b <= 10 AND x.c <> 'hi' -- comment
	`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	for _, tok := range toks {
		kinds = append(kinds, tok.Kind)
	}
	want := []TokKind{
		TokKeyword, TokIdent, TokDot, TokIdent, TokKeyword, TokIdent, TokIdent,
		TokKeyword, TokIdent, TokDot, TokIdent, TokLe, TokInt, TokKeyword,
		TokIdent, TokDot, TokIdent, TokNe, TokString, TokEOF,
	}
	if len(kinds) != len(want) {
		t.Fatalf("token count %d, want %d: %v", len(kinds), len(want), toks)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Errorf("token %d = %v (%s), want %v", i, kinds[i], toks[i].Text, want[i])
		}
	}
}

func TestLexCaseInsensitiveKeywords(t *testing.T) {
	toks, err := Lex("select From wHeRe exists")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:4] {
		if tok.Kind != TokKeyword {
			t.Errorf("%s should be keyword", tok.Text)
		}
	}
	if toks[0].Text != "SELECT" {
		t.Errorf("keyword not canonicalized: %s", toks[0].Text)
	}
}

func TestLexStringsAndEscapes(t *testing.T) {
	toks, err := Lex(`"a\"b" 'c\n'`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Text != `a"b` || toks[1].Text != "c\n" {
		t.Errorf("string lexing: %q %q", toks[0].Text, toks[1].Text)
	}
	if _, err := Lex(`"unterminated`); err == nil {
		t.Error("unterminated string should fail")
	}
	if _, err := Lex(`"bad \q"`); err == nil {
		t.Error("bad escape should fail")
	}
}

func TestLexNumbers(t *testing.T) {
	toks, err := Lex("12 3.5 1e3 2.5e-2")
	if err != nil {
		t.Fatal(err)
	}
	wantKind := []TokKind{TokInt, TokFloat, TokFloat, TokFloat}
	for i, k := range wantKind {
		if toks[i].Kind != k {
			t.Errorf("number %d: kind %v, want %v", i, toks[i].Kind, k)
		}
	}
	if _, err := Lex("1e"); err == nil {
		t.Error("malformed exponent should fail")
	}
}

func TestLexBadChar(t *testing.T) {
	if _, err := Lex("a @ b"); err == nil {
		t.Error("@ should fail to lex")
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT",
		"SELECT x FROM",
		"SELECT x FROM X",     // missing iteration variable
		"x IN",                // missing rhs
		"(a = 1",              // unclosed tuple
		"{1, 2",               // unclosed set
		"EXISTS x IN s x = 1", // missing parens around body
		"COUNT 3",             // missing parens
		"x WITH y",            // missing = in WITH
		"1 2",                 // trailing input
		"x..y",                // bad field selection
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	cases := map[string]string{
		"1 + 2 * 3":             "1 + 2 * 3",
		"(1 + 2) * 3":           "(1 + 2) * 3",
		"NOT a AND b":           "NOT a AND b", // NOT binds tighter
		"a OR b AND c":          "a OR b AND c",
		"a = 1 AND b = 2":       "a = 1 AND b = 2",
		"a UNION b INTERSECT c": "a UNION b INTERSECT c",
		"x.a IN s UNION t":      "x.a IN s UNION t", // set ops bind tighter than IN
		"- x.a + 1":             "-x.a + 1",
	}
	for src, want := range cases {
		e, err := Parse(src)
		if err != nil {
			t.Errorf("Parse(%q): %v", src, err)
			continue
		}
		if got := Format(e); got != want {
			t.Errorf("Format(Parse(%q)) = %q, want %q", src, got, want)
		}
	}
}

func TestParsePaperQueries(t *testing.T) {
	queries := []string{
		// Q1 (§3.2)
		`SELECT d FROM DEPT d
		 WHERE (s = d.address.street, c = d.address.city)
		   IN SELECT (s = e.address.street, c = e.address.city) FROM d.emps e`,
		// Q2 (§3.2)
		`SELECT (dname = d.name,
		         emps = SELECT e FROM EMP e WHERE e.address.city = d.address.city)
		 FROM DEPT d`,
		// General two-block WHERE nesting with WITH (§4)
		`SELECT x FROM X x WHERE x.a SUBSETEQ z WITH z = SELECT y.a FROM Y y WHERE x.b = y.b`,
		// COUNT between blocks (§2)
		`SELECT r FROM R r WHERE r.B = COUNT(SELECT s FROM S s WHERE r.C = s.C)`,
		// UNNEST special case (§5)
		`UNNEST(SELECT (SELECT (a = x.a, b = y.b) FROM Y y WHERE x.b = y.a) FROM X x)`,
		// §8 three-block chain
		`SELECT x FROM X x
		 WHERE x.a SUBSETEQ
		   SELECT y.a FROM Y y
		   WHERE x.b = y.b AND
		     y.c SUBSETEQ SELECT z.c FROM Z z WHERE y.d = z.d`,
		// Flat join query with two FROM items
		`SELECT (a = x.a, b = y.b) FROM X x, Y y WHERE x.b = y.a`,
		// Quantifiers
		`SELECT x FROM X x WHERE EXISTS v IN x.a (v = 3) AND FORALL w IN x.b (w > 0)`,
	}
	for _, q := range queries {
		if _, err := Parse(q); err != nil {
			t.Errorf("Parse failed for:\n%s\n%v", q, err)
		}
	}
}

func TestParseTupleVsParen(t *testing.T) {
	// (a = 1) is a tuple constructor by the documented rule.
	e := MustParse("(a = 1)")
	if _, ok := e.(*TupleCons); !ok {
		t.Errorf("(a = 1) parsed as %T, want TupleCons", e)
	}
	// (1 = a) is a parenthesized comparison.
	e = MustParse("(1 = a)")
	if b, ok := e.(*Binary); !ok || b.Op != OpEq {
		t.Errorf("(1 = a) parsed as %T", e)
	}
	// Empty tuple.
	if e := MustParse("()"); e.(*TupleCons).Fields != nil {
		t.Error("() should be the empty tuple")
	}
}

func TestParseNotIn(t *testing.T) {
	e := MustParse("x NOT IN s")
	b, ok := e.(*Binary)
	if !ok || b.Op != OpNotIn {
		t.Fatalf("parsed as %T %v", e, e)
	}
	// NOT (x IN s) is a different tree.
	e2 := MustParse("NOT (x IN s)")
	if u, ok := e2.(*Unary); !ok || u.Op != OpNot {
		t.Fatalf("NOT (x IN s) parsed as %T", e2)
	}
}

func TestParseWithChain(t *testing.T) {
	e := MustParse("x.a IN z WITH z = {1, 2}, w = {3}")
	let1, ok := e.(*Let)
	if !ok {
		t.Fatalf("got %T", e)
	}
	if let1.V != "w" {
		t.Errorf("outer binding %s, want w (later WITH wraps earlier)", let1.V)
	}
	let2, ok := let1.Body.(*Let)
	if !ok || let2.V != "z" {
		t.Fatalf("inner let: %T %v", let1.Body, let1.Body)
	}
}

func TestParseFromListBacktracking(t *testing.T) {
	// The comma belongs to the tuple constructor, not the FROM list.
	e := MustParse("(a = SELECT y FROM Y y, b = 2)")
	tc, ok := e.(*TupleCons)
	if !ok || len(tc.Fields) != 2 {
		t.Fatalf("got %T %s", e, Format(e))
	}
	sfw, ok := tc.Fields[0].E.(*SFW)
	if !ok || len(sfw.Froms) != 1 {
		t.Fatalf("first field: %T", tc.Fields[0].E)
	}
	// And a genuine two-item FROM list still parses.
	e2 := MustParse("SELECT x FROM X x, Y y")
	if got := len(e2.(*SFW).Froms); got != 2 {
		t.Errorf("FROM items = %d, want 2", got)
	}
}

func TestFormatRoundTrip(t *testing.T) {
	queries := []string{
		"SELECT d FROM DEPT d WHERE d.name = \"x\"",
		"SELECT x FROM X x WHERE x.a SUBSETEQ z WITH z = SELECT y.a FROM Y y WHERE x.b = y.b",
		"UNNEST(SELECT (SELECT (a = x.a) FROM Y y WHERE x.b = y.a) FROM X x)",
		"SELECT x FROM X x WHERE NOT EXISTS v IN x.a (v = 1 OR v IN x.b)",
		"COUNT(s) + SUM(s) * 2",
		"{1, 2} UNION {3} MINUS {1}",
		"x.a SUPSET y.b INTERSECT y.c",
		"FORALL w IN x.a (w NOT IN z)",
		"[1, 2, 1]",
		"(x = 1 AND y = 2)",
	}
	for _, q := range queries {
		e1, err := Parse(q)
		if err != nil {
			t.Errorf("Parse(%q): %v", q, err)
			continue
		}
		s1 := Format(e1)
		e2, err := Parse(s1)
		if err != nil {
			t.Errorf("reparse of %q failed: %v", s1, err)
			continue
		}
		s2 := Format(e2)
		if s1 != s2 {
			t.Errorf("format not stable:\n  %q\n  %q", s1, s2)
		}
	}
}

func TestFreeVars(t *testing.T) {
	e := MustParse(`SELECT (s = e.street, c = q) FROM d.emps e WHERE e.city = d.city`)
	fv := FreeVars(e)
	for _, want := range []string{"d", "q"} {
		if !fv[want] {
			t.Errorf("free var %s not found in %v", want, fv)
		}
	}
	if fv["e"] {
		t.Error("e is bound, should not be free")
	}

	// Quantifier and WITH binders.
	e = MustParse("EXISTS v IN z (v = x.a) AND w IN q WITH q = {1}")
	fv = FreeVars(e)
	if fv["v"] || fv["q"] {
		t.Errorf("bound vars leaked: %v", fv)
	}
	if !fv["z"] || !fv["x"] || !fv["w"] {
		t.Errorf("missing frees: %v", fv)
	}
}

func TestIsCorrelated(t *testing.T) {
	sub := MustParse("SELECT y.a FROM Y y WHERE x.b = y.b")
	if !IsCorrelated(sub, map[string]bool{"x": true}) {
		t.Error("subquery referencing x should be correlated on x")
	}
	if IsCorrelated(sub, map[string]bool{"q": true}) {
		t.Error("not correlated on q")
	}
}

func TestOpNegate(t *testing.T) {
	pairs := map[Op]Op{
		OpEq: OpNe, OpNe: OpEq, OpLt: OpGe, OpGe: OpLt, OpGt: OpLe, OpLe: OpGt,
		OpIn: OpNotIn, OpNotIn: OpIn,
	}
	for op, want := range pairs {
		got, ok := op.Negate()
		if !ok || got != want {
			t.Errorf("Negate(%s) = %s, %v", op, got, ok)
		}
	}
	if _, ok := OpSubsetEq.Negate(); ok {
		t.Error("SUBSETEQ has no single-op negation")
	}
}

func TestWalkVisitsEverything(t *testing.T) {
	e := MustParse(`SELECT (a = COUNT(z)) FROM X x WHERE EXISTS v IN x.s (v IN z) WITH z = {1}`)
	var n int
	Walk(e, func(Expr) bool { n++; return true })
	if n < 10 {
		t.Errorf("Walk visited only %d nodes", n)
	}
	// Early cutoff.
	var m int
	Walk(e, func(Expr) bool { m++; return false })
	if m != 1 {
		t.Errorf("Walk with false should visit 1 node, visited %d", m)
	}
}

func TestParseKeywordsAsIdentifiersRejected(t *testing.T) {
	if _, err := Parse("SELECT select FROM X x"); err == nil {
		t.Error("keyword as identifier should fail")
	}
}

func TestPosReporting(t *testing.T) {
	_, err := Parse("SELECT x FROM X x WHERE @")
	if err == nil || !strings.Contains(err.Error(), "1:25") {
		t.Errorf("error should cite position 1:25: %v", err)
	}
}
