package tmql

import (
	"tmdb/internal/types"
	"tmdb/internal/value"
)

// Expr is a TM expression AST node. Nodes carry their source position and,
// after binding, their inferred type.
type Expr interface {
	Pos() Pos
	// Type returns the type inferred by the binder, or nil before binding.
	Type() *types.Type
	isExpr()
}

type exprBase struct {
	pos Pos
	typ *types.Type
}

func (b *exprBase) Pos() Pos              { return b.pos }
func (b *exprBase) Type() *types.Type     { return b.typ }
func (b *exprBase) setType(t *types.Type) { b.typ = t }
func (b *exprBase) isExpr()               {}

// typed lets the binder annotate nodes without a type switch.
type typed interface{ setType(*types.Type) }

// Lit is a literal constant (int, float, string, bool).
type Lit struct {
	exprBase
	V value.Value
}

// Var is a name: a bound iteration variable, a WITH-bound local, or (resolved
// by the binder) a class-extension reference, which is rewritten to TableRef.
type Var struct {
	exprBase
	Name string
}

// TableRef is a resolved reference to a class extension (a stored table).
// Produced by the binder; never by the parser.
type TableRef struct {
	exprBase
	Name string // extension name, e.g. "EMP"
}

// FieldSel is field selection x.a (possibly chained: d.address.city parses as
// FieldSel(FieldSel(Var d, address), city)).
type FieldSel struct {
	exprBase
	X     Expr
	Label string
}

// TupleField is one labeled component of a tuple constructor.
type TupleField struct {
	Label string
	E     Expr
}

// TupleCons constructs a tuple: (a = e1, b = e2).
type TupleCons struct {
	exprBase
	Fields []TupleField
}

// SetCons constructs a set: {e1, e2, ...}.
type SetCons struct {
	exprBase
	Elems []Expr
}

// ListCons constructs a list: [e1, e2, ...].
type ListCons struct {
	exprBase
	Elems []Expr
}

// Op enumerates binary and unary operators.
type Op uint8

// Operators. The set-comparison family mirrors the paper's Table 2 forms.
const (
	OpEq        Op = iota // =
	OpNe                  // <>
	OpLt                  // <
	OpLe                  // <=
	OpGt                  // >
	OpGe                  // >=
	OpAdd                 // +
	OpSub                 // -
	OpMul                 // *
	OpDiv                 // /
	OpMod                 // %
	OpAnd                 // AND
	OpOr                  // OR
	OpNot                 // NOT (unary)
	OpNeg                 // - (unary)
	OpIn                  // e IN s        — e ∈ s
	OpNotIn               // e NOT IN s    — e ∉ s
	OpSubset              // a SUBSET s    — a ⊂ s
	OpSubsetEq            // a SUBSETEQ s  — a ⊆ s
	OpSupset              // a SUPSET s    — a ⊃ s
	OpSupsetEq            // a SUPSETEQ s  — a ⊇ s
	OpUnion               // s1 UNION s2
	OpIntersect           // s1 INTERSECT s2
	OpDiff                // s1 MINUS s2
)

// opNames maps operators to their surface syntax.
var opNames = map[Op]string{
	OpEq: "=", OpNe: "<>", OpLt: "<", OpLe: "<=", OpGt: ">", OpGe: ">=",
	OpAdd: "+", OpSub: "-", OpMul: "*", OpDiv: "/", OpMod: "%",
	OpAnd: "AND", OpOr: "OR", OpNot: "NOT", OpNeg: "-",
	OpIn: "IN", OpNotIn: "NOT IN",
	OpSubset: "SUBSET", OpSubsetEq: "SUBSETEQ",
	OpSupset: "SUPSET", OpSupsetEq: "SUPSETEQ",
	OpUnion: "UNION", OpIntersect: "INTERSECT", OpDiff: "MINUS",
}

// String returns the surface syntax of the operator.
func (o Op) String() string { return opNames[o] }

// IsComparison reports whether the operator yields a boolean from two
// comparable operands.
func (o Op) IsComparison() bool {
	switch o {
	case OpEq, OpNe, OpLt, OpLe, OpGt, OpGe:
		return true
	}
	return false
}

// IsSetComparison reports whether the operator is one of the set-membership /
// inclusion predicates.
func (o Op) IsSetComparison() bool {
	switch o {
	case OpIn, OpNotIn, OpSubset, OpSubsetEq, OpSupset, OpSupsetEq:
		return true
	}
	return false
}

// Negate returns the complemented comparison/set operator and whether one
// exists (e.g. ¬(a = b) ⇝ a <> b, ¬(e IN s) ⇝ e NOT IN s). Used by the
// classifier to push NOT inward.
func (o Op) Negate() (Op, bool) {
	switch o {
	case OpEq:
		return OpNe, true
	case OpNe:
		return OpEq, true
	case OpLt:
		return OpGe, true
	case OpLe:
		return OpGt, true
	case OpGt:
		return OpLe, true
	case OpGe:
		return OpLt, true
	case OpIn:
		return OpNotIn, true
	case OpNotIn:
		return OpIn, true
	}
	return 0, false
}

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   Op
	L, R Expr
}

// Unary is NOT p or -e.
type Unary struct {
	exprBase
	Op Op
	X  Expr
}

// Agg applies an aggregate function to a collection: COUNT(s), SUM(s), ...
type Agg struct {
	exprBase
	Kind value.AggKind
	X    Expr
}

// QuantKind distinguishes EXISTS from FORALL.
type QuantKind uint8

// Quantifier kinds.
const (
	QExists QuantKind = iota
	QForall
)

// String returns the keyword of the quantifier.
func (q QuantKind) String() string {
	if q == QExists {
		return "EXISTS"
	}
	return "FORALL"
}

// Quant is a quantified predicate: EXISTS v IN over (pred).
type Quant struct {
	exprBase
	Kind QuantKind
	Var  string
	Over Expr
	Pred Expr
}

// FromItem is one iterator binding of an SFW block: "FROM src var".
type FromItem struct {
	Var string
	Src Expr
}

// SFW is the SELECT-FROM-WHERE block. Where may be nil (no predicate).
// Multiple FROM items express flat join queries (SELECT ... FROM X x, Y y
// WHERE ...), mirroring the paper's target form for unnested queries.
type SFW struct {
	exprBase
	Result Expr
	Froms  []FromItem
	Where  Expr
}

// Let binds a local name: "body WITH v = def" parses to Let{V:v, Def:def,
// Body:body}. The paper uses WITH to name subqueries in WHERE clauses; the
// binder treats it as a transparent local definition.
type Let struct {
	exprBase
	V    string
	Def  Expr
	Body Expr
}

// Unnest applies UNNEST(S) = ⋃{s | s ∈ S} — §5's special case that turns
// SELECT-clause nesting into a flat join.
type Unnest struct {
	exprBase
	X Expr
}

// Walk calls fn on e and recursively on all children, stopping descent into a
// node when fn returns false.
func Walk(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch n := e.(type) {
	case *Lit, *Var, *TableRef:
	case *FieldSel:
		Walk(n.X, fn)
	case *TupleCons:
		for _, f := range n.Fields {
			Walk(f.E, fn)
		}
	case *SetCons:
		for _, el := range n.Elems {
			Walk(el, fn)
		}
	case *ListCons:
		for _, el := range n.Elems {
			Walk(el, fn)
		}
	case *Binary:
		Walk(n.L, fn)
		Walk(n.R, fn)
	case *Unary:
		Walk(n.X, fn)
	case *Agg:
		Walk(n.X, fn)
	case *Quant:
		Walk(n.Over, fn)
		Walk(n.Pred, fn)
	case *SFW:
		Walk(n.Result, fn)
		for _, f := range n.Froms {
			Walk(f.Src, fn)
		}
		if n.Where != nil {
			Walk(n.Where, fn)
		}
	case *Let:
		Walk(n.Def, fn)
		Walk(n.Body, fn)
	case *Unnest:
		Walk(n.X, fn)
	}
}

// FreeVars returns the set of variable names occurring free in e. Iteration
// variables of SFW blocks and quantifiers, and WITH-bound names, are binders.
func FreeVars(e Expr) map[string]bool {
	out := make(map[string]bool)
	collectFree(e, map[string]int{}, out)
	return out
}

func collectFree(e Expr, bound map[string]int, out map[string]bool) {
	switch n := e.(type) {
	case nil:
		return
	case *Var:
		if bound[n.Name] == 0 {
			out[n.Name] = true
		}
	case *Lit, *TableRef:
	case *FieldSel:
		collectFree(n.X, bound, out)
	case *TupleCons:
		for _, f := range n.Fields {
			collectFree(f.E, bound, out)
		}
	case *SetCons:
		for _, el := range n.Elems {
			collectFree(el, bound, out)
		}
	case *ListCons:
		for _, el := range n.Elems {
			collectFree(el, bound, out)
		}
	case *Binary:
		collectFree(n.L, bound, out)
		collectFree(n.R, bound, out)
	case *Unary:
		collectFree(n.X, bound, out)
	case *Agg:
		collectFree(n.X, bound, out)
	case *Quant:
		collectFree(n.Over, bound, out)
		bound[n.Var]++
		collectFree(n.Pred, bound, out)
		bound[n.Var]--
	case *SFW:
		// FROM sources are evaluated left to right; each variable scopes over
		// later sources, the result, and the predicate (TM is orthogonal, so
		// a later FROM item may reference an earlier variable).
		n2 := 0
		for _, f := range n.Froms {
			collectFree(f.Src, bound, out)
			bound[f.Var]++
			n2++
		}
		collectFree(n.Result, bound, out)
		if n.Where != nil {
			collectFree(n.Where, bound, out)
		}
		for _, f := range n.Froms[:n2] {
			bound[f.Var]--
		}
	case *Let:
		collectFree(n.Def, bound, out)
		bound[n.V]++
		collectFree(n.Body, bound, out)
		bound[n.V]--
	case *Unnest:
		collectFree(n.X, bound, out)
	}
}

// IsCorrelated reports whether expression e references any of the given
// variable names free — the paper's notion of a correlated subquery.
func IsCorrelated(e Expr, vars map[string]bool) bool {
	free := FreeVars(e)
	for v := range vars {
		if free[v] {
			return true
		}
	}
	return false
}
