package eval

import (
	"strings"
	"testing"

	"tmdb/internal/datagen"
	"tmdb/internal/schema"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// evalQ parses, binds, and evaluates a query against the given catalog/db.
func evalQ(t *testing.T, cat *schema.Catalog, db *storage.DB, src string) value.Value {
	t.Helper()
	e, err := tmql.Parse(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	be, err := tmql.NewBinder(cat).Bind(e)
	if err != nil {
		t.Fatalf("bind %q: %v", src, err)
	}
	v, err := New(db).Eval(be)
	if err != nil {
		t.Fatalf("eval %q: %v", src, err)
	}
	return v
}

func TestEvalScalars(t *testing.T) {
	cases := map[string]value.Value{
		"1 + 2 * 3":                  value.Int(7),
		"(1 + 2) * 3":                value.Int(9),
		"7 / 2":                      value.Float(3.5),
		"7 % 3":                      value.Int(1),
		"-(4)":                       value.Int(-4),
		"-2.5":                       value.Float(-2.5),
		"1 < 2":                      value.True,
		"2 <= 1":                     value.False,
		"1 = 1.0":                    value.True,
		"\"a\" <> \"b\"":             value.True,
		"TRUE AND FALSE":             value.False,
		"TRUE OR FALSE":              value.True,
		"NOT TRUE":                   value.False,
		"1 IN {1, 2}":                value.True,
		"3 NOT IN {1, 2}":            value.True,
		"{1} SUBSETEQ {1}":           value.True,
		"{1} SUBSET {1}":             value.False,
		"{1, 2} SUPSET {1}":          value.True,
		"{1} UNION {2}":              value.SetOf(value.Int(1), value.Int(2)),
		"{1, 2} INTERSECT {2, 3}":    value.SetOf(value.Int(2)),
		"{1, 2} MINUS {2}":           value.SetOf(value.Int(1)),
		"COUNT({1, 2, 2})":           value.Int(2),
		"SUM({1, 2})":                value.Int(3),
		"MIN({3, 1})":                value.Int(1),
		"MAX({3, 1})":                value.Int(3),
		"AVG({1, 3})":                value.Float(2),
		"COUNT([1, 1])":              value.Int(2),
		"(a = 1, b = 2).a":           value.Int(1),
		"5 WITH q = 3":               value.Int(5),
		"q + 1 WITH q = 3":           value.Int(4),
		"EXISTS v IN {1, 2} (v = 2)": value.True,
		"EXISTS v IN {} (TRUE)":      value.False,
		"FORALL v IN {1, 2} (v > 0)": value.True,
		"FORALL v IN {} (FALSE)":     value.True,
		"UNNEST({{1, 2}, {2, 3}})":   value.SetOf(value.Int(1), value.Int(2), value.Int(3)),
	}
	for src, want := range cases {
		got := evalQ(t, nil, nil, src)
		if !value.Equal(got, want) {
			t.Errorf("%s = %s, want %s", src, got, want)
		}
	}
}

func TestEvalErrors(t *testing.T) {
	bad := []struct{ src, frag string }{
		{"1 / 0", "division by zero"},
		{"1 % 0", "modulo by zero"},
		{"AVG({})", "AVG of empty"},
		{"MIN({})", "MIN of empty"},
	}
	for _, c := range bad {
		e := tmql.MustParse(c.src)
		be, err := tmql.NewBinder(nil).Bind(e)
		if err != nil {
			t.Fatalf("bind %q: %v", c.src, err)
		}
		_, err = New(nil).Eval(be)
		if err == nil || !strings.Contains(err.Error(), c.frag) {
			t.Errorf("Eval(%q) error = %v, want mention of %q", c.src, err, c.frag)
		}
	}
}

func TestEvalShortCircuit(t *testing.T) {
	// RHS would divide by zero; AND must not evaluate it.
	got := evalQ(t, nil, nil, "FALSE AND 1 / 0 = 1")
	if !value.Equal(got, value.False) {
		t.Errorf("short-circuit AND = %s", got)
	}
	got = evalQ(t, nil, nil, "TRUE OR 1 / 0 = 1")
	if !value.Equal(got, value.True) {
		t.Errorf("short-circuit OR = %s", got)
	}
}

func TestEvalSFWBasics(t *testing.T) {
	cat, db := datagen.Table1()
	got := evalQ(t, cat, db, "SELECT x.e FROM X x WHERE x.d = 1")
	if !value.Equal(got, value.SetOf(value.Int(1))) {
		t.Errorf("got %s", got)
	}
	// Flat join over two FROM items.
	got = evalQ(t, cat, db, "SELECT (e = x.e, a = y.a) FROM X x, Y y WHERE x.d = y.b")
	if got.Len() != 3 {
		t.Errorf("join result %s", got)
	}
}

func TestEvalCorrelatedSubquery(t *testing.T) {
	cat, db := datagen.Table1()
	// For each x, the set of matching y.a values.
	got := evalQ(t, cat, db, `SELECT (e = x.e, as = SELECT y.a FROM Y y WHERE x.d = y.b) FROM X x`)
	want := value.SetOf(
		value.TupleOf(value.F("e", value.Int(1)), value.F("as", value.SetOf(value.Int(1), value.Int(2)))),
		value.TupleOf(value.F("e", value.Int(2)), value.F("as", value.EmptySet)),
		value.TupleOf(value.F("e", value.Int(3)), value.F("as", value.SetOf(value.Int(3)))),
	)
	if !value.Equal(got, want) {
		t.Errorf("got %s\nwant %s", got, want)
	}
}

func TestEvalCountBugSemantics(t *testing.T) {
	// The §2 example: dangling R tuples with B = 0 must be in the answer.
	cat, db := datagen.RS(20, 40, 5, 0.3, 7)
	got := evalQ(t, cat, db,
		`SELECT r FROM R r WHERE r.B = COUNT(SELECT s.D FROM S s WHERE r.C = s.C)`)
	// Independently verify against a hand computation.
	rTab, _ := db.Table("R")
	sTab, _ := db.Table("S")
	want := value.NewSetBuilder(0)
	for _, r := range rTab.Rows() {
		cnt := value.NewSetBuilder(0)
		for _, s := range sTab.Rows() {
			if value.Equal(r.MustGet("C"), s.MustGet("C")) {
				cnt.Add(s.MustGet("D"))
			}
		}
		if r.MustGet("B").AsInt() == int64(cnt.Build().Len()) {
			want.Add(r)
		}
	}
	wantV := want.Build()
	if !value.Equal(got, wantV) {
		t.Errorf("COUNT semantics differ:\n got %s\nwant %s", got, wantV)
	}
	// The bug-triggering tuples must exist in this instance.
	dangling := 0
	for _, r := range rTab.Rows() {
		if r.MustGet("C").AsInt() < 0 && r.MustGet("B").AsInt() == 0 {
			dangling++
		}
	}
	if dangling == 0 {
		t.Fatal("test instance must contain dangling R tuples with B = 0")
	}
}

func TestEvalPaperQ1(t *testing.T) {
	cat, db := datagen.Company(6, 30, 3)
	got := evalQ(t, cat, db, `SELECT d FROM DEPT d
		WHERE (s = d.address.street, c = d.address.city)
		  IN SELECT (s = e.address.street, c = e.address.city) FROM d.emps e`)
	// Oracle: manual loop.
	deptTab, _ := db.Table("DEPT")
	want := value.NewSetBuilder(0)
	for _, d := range deptTab.Rows() {
		dk := value.TupleOf(
			value.F("s", d.MustGet("address").MustGet("street")),
			value.F("c", d.MustGet("address").MustGet("city")),
		)
		for _, e := range d.MustGet("emps").Elems() {
			ek := value.TupleOf(
				value.F("s", e.MustGet("address").MustGet("street")),
				value.F("c", e.MustGet("address").MustGet("city")),
			)
			if value.Equal(dk, ek) {
				want.Add(d)
				break
			}
		}
	}
	wantV := want.Build()
	if !value.Equal(got, wantV) {
		t.Errorf("Q1: got %d depts, want %d", got.Len(), wantV.Len())
	}
}

func TestEvalPaperQ2(t *testing.T) {
	cat, db := datagen.Company(4, 20, 5)
	got := evalQ(t, cat, db, `SELECT (dname = d.name,
			emps = SELECT e.name FROM EMP e WHERE e.address.city = d.address.city)
		FROM DEPT d`)
	if got.Len() != 4 {
		t.Fatalf("Q2 should produce one tuple per department, got %d", got.Len())
	}
	for _, row := range got.Elems() {
		if !row.HasField("dname") || !row.HasField("emps") {
			t.Fatalf("row shape wrong: %s", row)
		}
		if row.MustGet("emps").Kind() != value.KindSet {
			t.Fatalf("emps not a set: %s", row)
		}
	}
}

func TestEvalStepsCounter(t *testing.T) {
	cat, db := datagen.Table1()
	ev := New(db)
	e, _ := tmql.Parse("SELECT x FROM X x")
	be, _ := tmql.NewBinder(cat).Bind(e)
	if _, err := ev.Eval(be); err != nil {
		t.Fatal(err)
	}
	if ev.Steps == 0 {
		t.Error("step counter did not advance")
	}
}

func TestEvalUnboundVariable(t *testing.T) {
	// Construct an unbound Var directly (binder would reject it).
	ev := New(nil)
	_, err := ev.EvalEnv(&tmql.Var{Name: "ghost"}, nil)
	if err == nil || !strings.Contains(err.Error(), "unbound") {
		t.Errorf("err = %v", err)
	}
}

func TestEnvLookup(t *testing.T) {
	var env *Env
	env = env.Bind("a", value.Int(1)).Bind("b", value.Int(2)).Bind("a", value.Int(3))
	if v, ok := env.Lookup("a"); !ok || v.AsInt() != 3 {
		t.Errorf("shadowing failed: %v %v", v, ok)
	}
	if v, ok := env.Lookup("b"); !ok || v.AsInt() != 2 {
		t.Errorf("b = %v %v", v, ok)
	}
	if _, ok := env.Lookup("zz"); ok {
		t.Error("zz should be unbound")
	}
}
