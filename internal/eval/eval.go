// Package eval implements the reference (naive) semantics of TM expressions:
// tuple-at-a-time, nested-loop evaluation with correlated subqueries
// re-evaluated per outer binding — exactly the "nested-loop processing" the
// paper uses as its correctness baseline (§1, §6). Every optimizer strategy
// in internal/core is tested for equivalence against this evaluator.
package eval

import (
	"fmt"

	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Env is an immutable environment binding variable names to values.
type Env struct {
	name string
	val  value.Value
	next *Env
}

// Bind returns an environment extending e with name = v.
func (e *Env) Bind(name string, v value.Value) *Env {
	return &Env{name: name, val: v, next: e}
}

// Rebind replaces the value bound at this node in place. It exists for
// operator loops that bind the same variable once per row: reusing one node
// across rows avoids a per-row allocation. The caller must own the node (have
// created it with Bind) and must not rebind while an evaluation that received
// the environment is still in flight; evaluation never retains environments
// beyond the call, so rebinding between rows is safe.
func (e *Env) Rebind(v value.Value) { e.val = v }

// Lookup returns the binding of name, if any.
func (e *Env) Lookup(name string) (value.Value, bool) {
	for c := e; c != nil; c = c.next {
		if c.name == name {
			return c.val, true
		}
	}
	return value.Value{}, false
}

// Evaluator evaluates bound TM expressions against a database.
type Evaluator struct {
	db *storage.DB
	// Steps counts elementary evaluation steps (node visits); benchmarks use
	// it to report work done by nested-loop processing.
	Steps int64
	// Check, when set, is polled once per checkEverySteps node visits and
	// aborts evaluation with its error — the cancellation hook governed
	// queries install (exec.Governor.Err), reaching arbitrarily deep naive
	// evaluation without per-operator cooperation. Nil costs one compare per
	// visit.
	Check func() error
}

// checkEverySteps spaces out the Check polls; a power of two so the test is
// a mask.
const checkEverySteps = 256

// New returns an evaluator over db (nil db is allowed for closed
// expressions that reference no extensions).
func New(db *storage.DB) *Evaluator {
	return &Evaluator{db: db}
}

// Eval evaluates a closed expression.
func (ev *Evaluator) Eval(e tmql.Expr) (value.Value, error) {
	return ev.EvalEnv(e, nil)
}

// EvalEnv evaluates e under env.
func (ev *Evaluator) EvalEnv(e tmql.Expr, env *Env) (value.Value, error) {
	ev.Steps++
	if ev.Check != nil && ev.Steps&(checkEverySteps-1) == 0 {
		if err := ev.Check(); err != nil {
			return value.Value{}, err
		}
	}
	switch n := e.(type) {
	case *tmql.Lit:
		return n.V, nil

	case *tmql.Var:
		if v, ok := env.Lookup(n.Name); ok {
			return v, nil
		}
		return value.Value{}, fmt.Errorf("eval: unbound variable %s", n.Name)

	case *tmql.TableRef:
		if ev.db == nil {
			return value.Value{}, fmt.Errorf("eval: no database for table %s", n.Name)
		}
		t, ok := ev.db.Table(n.Name)
		if !ok {
			return value.Value{}, fmt.Errorf("eval: unknown table %s", n.Name)
		}
		return t.AsSet(), nil

	case *tmql.FieldSel:
		x, err := ev.EvalEnv(n.X, env)
		if err != nil {
			return value.Value{}, err
		}
		if x.Kind() != value.KindTuple {
			return value.Value{}, fmt.Errorf("eval: field %s of non-tuple %s", n.Label, x)
		}
		f, ok := x.Get(n.Label)
		if !ok {
			return value.Value{}, fmt.Errorf("eval: tuple has no field %s", n.Label)
		}
		return f, nil

	case *tmql.TupleCons:
		fs := make([]value.Field, len(n.Fields))
		for i, f := range n.Fields {
			v, err := ev.EvalEnv(f.E, env)
			if err != nil {
				return value.Value{}, err
			}
			fs[i] = value.F(f.Label, v)
		}
		return value.TupleOf(fs...), nil

	case *tmql.SetCons:
		b := value.NewSetBuilder(len(n.Elems))
		for _, el := range n.Elems {
			v, err := ev.EvalEnv(el, env)
			if err != nil {
				return value.Value{}, err
			}
			b.Add(v)
		}
		return b.Build(), nil

	case *tmql.ListCons:
		es := make([]value.Value, len(n.Elems))
		for i, el := range n.Elems {
			v, err := ev.EvalEnv(el, env)
			if err != nil {
				return value.Value{}, err
			}
			es[i] = v
		}
		return value.ListOf(es...), nil

	case *tmql.Binary:
		return ev.evalBinary(n, env)

	case *tmql.Unary:
		x, err := ev.EvalEnv(n.X, env)
		if err != nil {
			return value.Value{}, err
		}
		switch n.Op {
		case tmql.OpNot:
			return value.Bool(!x.AsBool()), nil
		case tmql.OpNeg:
			if x.Kind() == value.KindInt {
				return value.Int(-x.AsInt()), nil
			}
			return value.Float(-x.AsFloat()), nil
		}
		return value.Value{}, fmt.Errorf("eval: bad unary op %s", n.Op)

	case *tmql.Agg:
		x, err := ev.EvalEnv(n.X, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.Aggregate(n.Kind, x)

	case *tmql.Quant:
		over, err := ev.EvalEnv(n.Over, env)
		if err != nil {
			return value.Value{}, err
		}
		if over.Kind() != value.KindSet && over.Kind() != value.KindList {
			return value.Value{}, fmt.Errorf("eval: quantifier over non-collection %s", over)
		}
		for _, el := range over.Elems() {
			p, err := ev.EvalEnv(n.Pred, env.Bind(n.Var, el))
			if err != nil {
				return value.Value{}, err
			}
			holds := p.AsBool()
			if n.Kind == tmql.QExists && holds {
				return value.True, nil
			}
			if n.Kind == tmql.QForall && !holds {
				return value.False, nil
			}
		}
		return value.Bool(n.Kind == tmql.QForall), nil

	case *tmql.SFW:
		b := value.NewSetBuilder(0)
		if err := ev.evalFroms(n, 0, env, b); err != nil {
			return value.Value{}, err
		}
		return b.Build(), nil

	case *tmql.Let:
		d, err := ev.EvalEnv(n.Def, env)
		if err != nil {
			return value.Value{}, err
		}
		return ev.EvalEnv(n.Body, env.Bind(n.V, d))

	case *tmql.Unnest:
		x, err := ev.EvalEnv(n.X, env)
		if err != nil {
			return value.Value{}, err
		}
		if x.Kind() != value.KindSet {
			return value.Value{}, fmt.Errorf("eval: UNNEST of non-set %s", x)
		}
		for _, el := range x.Elems() {
			if el.Kind() != value.KindSet {
				return value.Value{}, fmt.Errorf("eval: UNNEST element is not a set: %s", el)
			}
		}
		return value.UnnestSet(x), nil
	}
	return value.Value{}, fmt.Errorf("eval: unhandled node %T", e)
}

// evalFroms performs the nested iteration over FROM items i.. of the block,
// appending result values to b — the literal reading of the paper's SFW
// semantics (§3.1).
func (ev *Evaluator) evalFroms(n *tmql.SFW, i int, env *Env, b *value.SetBuilder) error {
	if i == len(n.Froms) {
		ev.Steps++
		if n.Where != nil {
			p, err := ev.EvalEnv(n.Where, env)
			if err != nil {
				return err
			}
			if p.Kind() != value.KindBool {
				return fmt.Errorf("eval: WHERE yielded non-boolean %s", p)
			}
			if !p.AsBool() {
				return nil
			}
		}
		r, err := ev.EvalEnv(n.Result, env)
		if err != nil {
			return err
		}
		b.Add(r)
		return nil
	}
	src, err := ev.EvalEnv(n.Froms[i].Src, env)
	if err != nil {
		return err
	}
	if src.Kind() != value.KindSet && src.Kind() != value.KindList {
		return fmt.Errorf("eval: FROM operand is not a collection: %s", src)
	}
	for _, el := range src.Elems() {
		if err := ev.evalFroms(n, i+1, env.Bind(n.Froms[i].Var, el), b); err != nil {
			return err
		}
	}
	return nil
}

func (ev *Evaluator) evalBinary(n *tmql.Binary, env *Env) (value.Value, error) {
	// Short-circuit booleans first.
	if n.Op == tmql.OpAnd || n.Op == tmql.OpOr {
		l, err := ev.EvalEnv(n.L, env)
		if err != nil {
			return value.Value{}, err
		}
		lb := l.AsBool()
		if n.Op == tmql.OpAnd && !lb {
			return value.False, nil
		}
		if n.Op == tmql.OpOr && lb {
			return value.True, nil
		}
		r, err := ev.EvalEnv(n.R, env)
		if err != nil {
			return value.Value{}, err
		}
		return value.Bool(r.AsBool()), nil
	}

	l, err := ev.EvalEnv(n.L, env)
	if err != nil {
		return value.Value{}, err
	}
	r, err := ev.EvalEnv(n.R, env)
	if err != nil {
		return value.Value{}, err
	}
	return Apply(n.Op, l, r)
}

// Apply applies a non-boolean-connective binary operator to two values.
// Exposed so the physical operators in internal/exec share exactly these
// semantics.
func Apply(op tmql.Op, l, r value.Value) (value.Value, error) {
	switch op {
	case tmql.OpEq:
		return value.Bool(value.Equal(l, r)), nil
	case tmql.OpNe:
		return value.Bool(!value.Equal(l, r)), nil
	case tmql.OpLt:
		return value.Bool(value.Compare(l, r) < 0), nil
	case tmql.OpLe:
		return value.Bool(value.Compare(l, r) <= 0), nil
	case tmql.OpGt:
		return value.Bool(value.Compare(l, r) > 0), nil
	case tmql.OpGe:
		return value.Bool(value.Compare(l, r) >= 0), nil
	case tmql.OpIn:
		if r.Kind() != value.KindSet {
			return value.Value{}, fmt.Errorf("eval: IN over non-set %s", r)
		}
		return value.Bool(value.Contains(r, l)), nil
	case tmql.OpNotIn:
		if r.Kind() != value.KindSet {
			return value.Value{}, fmt.Errorf("eval: NOT IN over non-set %s", r)
		}
		return value.Bool(!value.Contains(r, l)), nil
	case tmql.OpSubset:
		return value.Bool(value.Subset(l, r)), nil
	case tmql.OpSubsetEq:
		return value.Bool(value.SubsetEq(l, r)), nil
	case tmql.OpSupset:
		return value.Bool(value.Superset(l, r)), nil
	case tmql.OpSupsetEq:
		return value.Bool(value.SupersetEq(l, r)), nil
	case tmql.OpUnion:
		return value.Union(l, r), nil
	case tmql.OpIntersect:
		return value.Intersect(l, r), nil
	case tmql.OpDiff:
		return value.Diff(l, r), nil
	case tmql.OpAdd, tmql.OpSub, tmql.OpMul, tmql.OpDiv, tmql.OpMod:
		return applyArith(op, l, r)
	}
	return value.Value{}, fmt.Errorf("eval: bad binary op %s", op)
}

func applyArith(op tmql.Op, l, r value.Value) (value.Value, error) {
	if !l.IsNumeric() || !r.IsNumeric() {
		return value.Value{}, fmt.Errorf("eval: arithmetic on non-numbers %s, %s", l, r)
	}
	bothInt := l.Kind() == value.KindInt && r.Kind() == value.KindInt
	if op == tmql.OpDiv {
		rf := r.AsFloat()
		if rf == 0 {
			return value.Value{}, fmt.Errorf("eval: division by zero")
		}
		return value.Float(l.AsFloat() / rf), nil
	}
	if op == tmql.OpMod {
		if !bothInt {
			return value.Value{}, fmt.Errorf("eval: %% needs integers")
		}
		if r.AsInt() == 0 {
			return value.Value{}, fmt.Errorf("eval: modulo by zero")
		}
		return value.Int(l.AsInt() % r.AsInt()), nil
	}
	if bothInt {
		a, b := l.AsInt(), r.AsInt()
		switch op {
		case tmql.OpAdd:
			return value.Int(a + b), nil
		case tmql.OpSub:
			return value.Int(a - b), nil
		case tmql.OpMul:
			return value.Int(a * b), nil
		}
	}
	a, b := l.AsFloat(), r.AsFloat()
	switch op {
	case tmql.OpAdd:
		return value.Float(a + b), nil
	case tmql.OpSub:
		return value.Float(a - b), nil
	case tmql.OpMul:
		return value.Float(a * b), nil
	}
	return value.Value{}, fmt.Errorf("eval: bad arithmetic op %s", op)
}
