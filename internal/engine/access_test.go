package engine

import (
	"strings"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

func accessEngine(t *testing.T) *Engine {
	t.Helper()
	cat, db := datagen.XYZ(datagen.Spec{
		NX: 120, NY: 360, NZ: 240, Keys: 24, DanglingFrac: 0.25, SetAttrCard: 3, Seed: 3,
	})
	return New(cat, db)
}

// TestIndexScanChosen is the acceptance test for index-backed access paths:
// after CreateIndex on the selection attribute, EXPLAIN lists an idxscan
// candidate, the optimizer picks it, and the result matches the scan path
// byte for byte.
func TestIndexScanChosen(t *testing.T) {
	eng := accessEngine(t)
	const q = `SELECT x FROM X x WHERE x.b = 3`

	before, err := eng.Query(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if before.Access == planner.AccessIndex {
		t.Fatal("index access chosen before any index exists")
	}

	if err := eng.CreateIndex("X", "b"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Access != planner.AccessIndex {
		t.Errorf("auto picked access=%s, want idxscan", res.Access)
	}
	if value.Key(res.Value) != value.Key(before.Value) {
		t.Error("index-scan result differs from scan result")
	}

	out, err := eng.Explain(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "access=idxscan") || !strings.Contains(out, "IndexScan(X) using X(b)") {
		t.Errorf("EXPLAIN does not render the chosen index scan:\n%s", out)
	}
	if !strings.Contains(out, "+idxscan") {
		t.Errorf("candidate table lacks the idxscan access column:\n%s", out)
	}
}

// TestCompositeIndexScanPrefixAndResidual: a composite index serves
// multi-attribute equality conjuncts; a partially covering conjunct set
// probes the prefix and keeps the rest as residual.
func TestCompositeIndexScanPrefixAndResidual(t *testing.T) {
	eng := accessEngine(t)
	if err := eng.CreateIndex("Y", "b", "a"); err != nil {
		t.Fatal(err)
	}

	// Full composite coverage: both conjuncts disappear into the probe.
	const full = `SELECT y.d FROM Y y WHERE y.b = 3 AND y.a = 1`
	scan, err := eng.Query(full, Options{Access: planner.AccessScan})
	if err != nil {
		t.Fatal(err)
	}
	idx, err := eng.Query(full, Options{Access: planner.AccessIndex})
	if err != nil {
		t.Fatal(err)
	}
	if value.Key(scan.Value) != value.Key(idx.Value) {
		t.Error("composite index scan differs from full scan")
	}
	auto, err := eng.Query(full, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Access != planner.AccessIndex {
		t.Errorf("auto picked access=%s on a fully covered composite selection", auto.Access)
	}

	// Prefix coverage with residual: only y.b is a leading index attribute;
	// the range conjunct survives as residual.
	const prefix = `SELECT y.d FROM Y y WHERE y.b = 3 AND y.d > 0`
	scanP, err := eng.Query(prefix, Options{Access: planner.AccessScan})
	if err != nil {
		t.Fatal(err)
	}
	idxP, err := eng.Query(prefix, Options{Access: planner.AccessIndex})
	if err != nil {
		t.Fatal(err)
	}
	if value.Key(scanP.Value) != value.Key(idxP.Value) {
		t.Error("prefix index scan differs from full scan")
	}
	out, err := eng.Explain(prefix, Options{Access: planner.AccessIndex})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "using Y(b,a) prefix=1") || !strings.Contains(out, "residual[") {
		t.Errorf("EXPLAIN does not render prefix/residual:\n%s", out)
	}
}

// TestAccessPinsAndCacheKeys: pinning AccessScan and AccessIndex yields
// distinct cached plans (the option is part of the cache key) and identical
// results; an AccessIndex pin without any usable index falls back to scans.
func TestAccessPinsAndCacheKeys(t *testing.T) {
	eng := accessEngine(t)
	if err := eng.CreateIndex("X", "b"); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT x FROM X x WHERE x.b = 5`
	a, err := eng.Query(q, Options{Access: planner.AccessScan})
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.Query(q, Options{Access: planner.AccessIndex})
	if err != nil {
		t.Fatal(err)
	}
	if b.CacheHit {
		t.Error("differently pinned access paths must not share a cache entry")
	}
	if value.Key(a.Value) != value.Key(b.Value) {
		t.Error("pinned access paths disagree")
	}
	// Unindexable selection under an index pin: per-selection fallback.
	const noIx = `SELECT y.d FROM Y y WHERE y.d = 7`
	c, err := eng.Query(noIx, Options{Access: planner.AccessIndex})
	if err != nil {
		t.Fatal(err)
	}
	d, err := eng.Query(noIx, Options{Access: planner.AccessScan})
	if err != nil {
		t.Fatal(err)
	}
	if value.Key(c.Value) != value.Key(d.Value) {
		t.Error("index-pin fallback differs from scan")
	}
}

// TestIndexScanInvalidatesOnMutation: a mutation of the indexed table
// invalidates the cached index-scan plan (epoch mismatch) and the fresh
// execution sees the new data through the incrementally maintained index.
func TestIndexScanInvalidatesOnMutation(t *testing.T) {
	eng := accessEngine(t)
	if err := eng.CreateIndex("Y", "d"); err != nil {
		t.Fatal(err)
	}
	const q = `SELECT y FROM Y y WHERE y.d = 424242`
	res, err := eng.Query(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value.Len() != 0 {
		t.Fatalf("sentinel key already present: %d rows", res.Value.Len())
	}
	if _, err := eng.InsertValue("Y", datagen.YRow(1, 2, 3, 424242)); err != nil {
		t.Fatal(err)
	}
	res2, err := eng.Query(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CacheHit {
		t.Error("mutation must invalidate the cached plan (epoch mismatch)")
	}
	if res2.Value.Len() != 1 {
		t.Errorf("index scan missed the inserted row: %d rows", res2.Value.Len())
	}
	if res2.Access != planner.AccessIndex {
		t.Errorf("replan abandoned the index scan: access=%s", res2.Access)
	}
}

// TestFixedStrategyStaysOnScans: fixed-strategy paths do not silently adopt
// index scans — the access path remains the caller's choice, keeping
// historical experiment numbers stable under index creation.
func TestFixedStrategyStaysOnScans(t *testing.T) {
	eng := accessEngine(t)
	if err := eng.CreateIndex("X", "b"); err != nil {
		t.Fatal(err)
	}
	res, err := eng.Query(`SELECT x FROM X x WHERE x.b = 3`, Options{Strategy: core.StrategyNestJoin})
	if err != nil {
		t.Fatal(err)
	}
	if res.Access != planner.AccessScan {
		t.Errorf("fixed strategy resolved access=%s, want scan", res.Access)
	}
	res2, err := eng.Query(`SELECT x FROM X x WHERE x.b = 3`,
		Options{Strategy: core.StrategyNestJoin, Access: planner.AccessIndex})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Access != planner.AccessIndex {
		t.Errorf("explicit fixed-path pin resolved access=%s, want idxscan", res2.Access)
	}
	if value.Key(res.Value) != value.Key(res2.Value) {
		t.Error("fixed-path access pin changed the result")
	}
}
