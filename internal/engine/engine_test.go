package engine

import (
	"strings"
	"testing"

	"tmdb/internal/core"
	"tmdb/internal/datagen"
	"tmdb/internal/planner"
	"tmdb/internal/value"
)

func TestQueryEndToEnd(t *testing.T) {
	cat, db := datagen.Table1()
	eng := New(cat, db)
	res, err := eng.Query(`SELECT x.e FROM X x WHERE x.d = 1`, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(res.Value, value.SetOf(value.Int(1))) {
		t.Errorf("result = %s", res.Value)
	}
	if res.Plan == nil || res.Expr == nil {
		t.Error("result missing plan/expr")
	}
	if res.Duration <= 0 {
		t.Error("duration not measured")
	}
}

func TestQueryStrategiesAgree(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	eng := New(cat, db)
	q := `SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`
	var first value.Value
	for i, s := range []core.Strategy{core.StrategyNaive, core.StrategyNestJoin, core.StrategyOuterJoin} {
		res, err := eng.Query(q, Options{Strategy: s})
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if i == 0 {
			first = res.Value
			continue
		}
		if !value.Equal(res.Value, first) {
			t.Errorf("%s differs from naive", s)
		}
	}
}

func TestQueryJoinImplOption(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	eng := New(cat, db)
	q := `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`
	base, err := eng.Query(q, Options{Strategy: core.StrategyNestJoin, Joins: planner.ImplNestedLoop})
	if err != nil {
		t.Fatal(err)
	}
	hash, err := eng.Query(q, Options{Strategy: core.StrategyNestJoin, Joins: planner.ImplHash})
	if err != nil {
		t.Fatal(err)
	}
	if !value.Equal(base.Value, hash.Value) {
		t.Error("join impls disagree")
	}
}

func TestQueryErrors(t *testing.T) {
	cat, db := datagen.Table1()
	eng := New(cat, db)
	if _, err := eng.Query("SELECT", Options{}); err == nil {
		t.Error("parse error should propagate")
	}
	if _, err := eng.Query("SELECT q.a FROM NOPE q", Options{}); err == nil {
		t.Error("bind error should propagate")
	}
	if _, err := eng.Query("1 / 0", Options{}); err == nil {
		t.Error("runtime error should propagate")
	}
}

func TestExplain(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	eng := New(cat, db)
	out, err := eng.Explain(
		`SELECT x FROM X x WHERE x.a SUBSETEQ SELECT y.a FROM Y y WHERE x.b = y.b`,
		Options{Strategy: core.StrategyNestJoin})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "NestJoin") {
		t.Errorf("Explain should show the nest join:\n%s", out)
	}
	if _, err := eng.Explain("SELECT", Options{}); err == nil {
		t.Error("Explain should propagate parse errors")
	}
	if _, err := eng.Explain("nosuchvar", Options{}); err == nil {
		t.Error("Explain should propagate bind errors")
	}
}

func TestEvalStepsReported(t *testing.T) {
	cat, db := datagen.XYZ(datagen.DefaultSpec())
	eng := New(cat, db)
	q := `SELECT x FROM X x WHERE x.b IN SELECT y.d FROM Y y WHERE x.b = y.d`
	naive, err := eng.Query(q, Options{Strategy: core.StrategyNaive})
	if err != nil {
		t.Fatal(err)
	}
	unnested, err := eng.Query(q, Options{Strategy: core.StrategyNestJoin})
	if err != nil {
		t.Fatal(err)
	}
	if naive.EvalSteps == 0 || unnested.EvalSteps == 0 {
		t.Error("EvalSteps not counted")
	}
	if unnested.EvalSteps >= naive.EvalSteps {
		t.Errorf("unnested plan should do less expression work: naive=%d unnested=%d",
			naive.EvalSteps, unnested.EvalSteps)
	}
}

func TestAccessors(t *testing.T) {
	cat, db := datagen.Table1()
	eng := New(cat, db)
	if eng.Catalog() != cat || eng.DB() != db {
		t.Error("accessors broken")
	}
}
