// Package engine wires the full pipeline: parse → bind → translate
// (strategy) → physically plan → execute. It is the implementation behind
// the public tmdb package.
package engine

import (
	"fmt"
	"time"

	"tmdb/internal/algebra"
	"tmdb/internal/core"
	"tmdb/internal/exec"
	"tmdb/internal/planner"
	"tmdb/internal/schema"
	"tmdb/internal/storage"
	"tmdb/internal/tmql"
	"tmdb/internal/value"
)

// Engine executes TM queries against a catalog and database.
type Engine struct {
	cat *schema.Catalog
	db  *storage.DB
}

// New returns an engine over the given schema and data.
func New(cat *schema.Catalog, db *storage.DB) *Engine {
	return &Engine{cat: cat, db: db}
}

// Catalog returns the engine's schema catalog.
func (e *Engine) Catalog() *schema.Catalog { return e.cat }

// DB returns the engine's database.
func (e *Engine) DB() *storage.DB { return e.db }

// Options configure one query execution.
type Options struct {
	// Strategy selects the unnesting strategy (default: the paper's
	// nest-join strategy).
	Strategy core.Strategy
	// Joins selects the physical join family (default: auto — hash when an
	// equi-key exists).
	Joins planner.JoinImpl
	// Rewrite additionally applies the §6 algebraic rewrite rules
	// (selection pushdown through nest joins, dead nest-join elimination,
	// select fusion) after translation. Off by default so strategy
	// comparisons measure the translation alone.
	Rewrite bool
}

// Result is the outcome of a query execution.
type Result struct {
	// Value is the query result (a set for SFW queries).
	Value value.Value
	// Plan is the logical plan that was executed.
	Plan algebra.Plan
	// Expr is the bound query expression.
	Expr tmql.Expr
	// Duration is the wall-clock execution time (translation + execution,
	// excluding parse/bind).
	Duration time.Duration
	// EvalSteps counts elementary expression-evaluation steps performed by
	// operators and naive evaluation — a machine-independent work measure.
	EvalSteps int64
}

// Query parses, binds, translates, and executes a TM query string.
func (e *Engine) Query(src string, opts Options) (*Result, error) {
	expr, err := tmql.Parse(src)
	if err != nil {
		return nil, err
	}
	return e.QueryExpr(expr, opts)
}

// QueryExpr executes an already parsed (possibly already bound) expression.
func (e *Engine) QueryExpr(expr tmql.Expr, opts Options) (*Result, error) {
	bound, err := tmql.NewBinder(e.cat).Bind(expr)
	if err != nil {
		return nil, err
	}
	start := time.Now()
	tr := core.NewTranslator(e.cat)
	plan, err := tr.Translate(bound, opts.Strategy)
	if err != nil {
		return nil, err
	}
	if opts.Rewrite {
		plan, err = algebra.Optimize(tr.Builder(), plan)
		if err != nil {
			return nil, err
		}
	}
	ctx := exec.NewCtx(e.db)
	it, err := planner.New(ctx, planner.Options{Joins: opts.Joins}).Compile(plan)
	if err != nil {
		return nil, err
	}
	v, err := exec.Collect(it)
	if err != nil {
		return nil, fmt.Errorf("engine: executing %s: %w", plan.Describe(), err)
	}
	return &Result{
		Value:     v,
		Plan:      plan,
		Expr:      bound,
		Duration:  time.Since(start),
		EvalSteps: ctx.Ev.Steps,
	}, nil
}

// Explain parses, binds, and translates a query, returning the logical plan
// rendering without executing it.
func (e *Engine) Explain(src string, opts Options) (string, error) {
	expr, err := tmql.Parse(src)
	if err != nil {
		return "", err
	}
	bound, err := tmql.NewBinder(e.cat).Bind(expr)
	if err != nil {
		return "", err
	}
	tr := core.NewTranslator(e.cat)
	plan, err := tr.Translate(bound, opts.Strategy)
	if err != nil {
		return "", err
	}
	if opts.Rewrite {
		plan, err = algebra.Optimize(tr.Builder(), plan)
		if err != nil {
			return "", err
		}
	}
	return algebra.Explain(plan), nil
}

// ExplainCosts renders the logical plan annotated with the cost model's
// per-node estimates.
func (e *Engine) ExplainCosts(src string, opts Options) (string, error) {
	expr, err := tmql.Parse(src)
	if err != nil {
		return "", err
	}
	bound, err := tmql.NewBinder(e.cat).Bind(expr)
	if err != nil {
		return "", err
	}
	tr := core.NewTranslator(e.cat)
	plan, err := tr.Translate(bound, opts.Strategy)
	if err != nil {
		return "", err
	}
	return planner.NewEstimator(e.db).ExplainCosts(plan), nil
}
